(* Transient appointment in an Accident & Emergency department (Sect. 2).

   Run with: dune exec examples/accident_emergency.exe

   "A screening nurse in an A&E Department may allocate a patient to a
   particular doctor. He/she issues an appointment certificate to the doctor
   who may then activate the role treating doctor for that patient."

   The same mechanism covers standing in for a colleague: the appointment is
   transient, and when the shift ends (certificate expiry) or the nurse
   reallocates the patient (revocation), the treating role collapses. This is
   how OASIS subsumes delegation without ever delegating privileges: the
   nurse cannot treat anyone, yet controls who does. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Rule = Oasis_policy.Rule
module Term = Oasis_policy.Term
module Value = Oasis_util.Value

let banner title = Printf.printf "\n=== %s ===\n" title

let attempt label = function
  | Ok _ -> Printf.printf "  %s: granted\n" label
  | Error d -> Printf.printf "  %s: DENIED (%s)\n" label (Protocol.denial_to_string d)

let () =
  let world = World.create ~seed:13 () in
  let aande =
    Service.create world ~name:"aande"
      ~policy:
        {|
          initial screening_nurse(n) <- appt:nurse_shift(n);
          initial on_call_doctor(d) <- appt:medical_register(d);
          treating_doctor(d, pat) <- *on_call_doctor(d), *appt:allocated(d, pat);
          priv treat(d, pat) <- treating_doctor(d, pat);
          initial matron <- env:eq(1, 1);
        |}
      ()
  in
  (* The matron staffs the department; nurses allocate patients. *)
  let appointer kind role =
    Service.set_appointer aande ~kind
      ~rule:
        {
          Rule.privilege = kind;
          priv_args = [ Term.Var "x" ];
          required_roles = [ { Rule.service = None; name = role; args = [] } ];
          constraints = [];
          loc = Rule.no_loc;
        }
  in
  appointer "nurse_shift" "matron";
  appointer "medical_register" "matron";
  Service.set_appointer aande ~kind:"allocated"
    ~rule:
      {
        Rule.privilege = "allocated";
        priv_args = [ Term.Var "d"; Term.Var "pat" ];
        required_roles = [ { Rule.service = None; name = "screening_nurse"; args = [ Term.Var "n" ] } ];
        constraints = [];
        loc = Rule.no_loc;
      };
  let matron = Principal.create world ~name:"matron" in
  let nurse = Principal.create world ~name:"nurse-niamh" in
  let doctor = Principal.create world ~name:"dr-dara" in

  banner "Staffing (long-lived appointments)";
  let msession = Principal.start_session matron in
  World.run_proc world (fun () ->
      attempt "matron on duty" (Principal.activate matron msession aande ~role:"matron" ());
      attempt "nurse_shift for Niamh"
        (Principal.appoint matron msession aande ~kind:"nurse_shift"
           ~args:[ Value.Id (Principal.id nurse) ]
           ~holder:nurse ());
      attempt "medical_register for Dara"
        (Principal.appoint matron msession aande ~kind:"medical_register"
           ~args:[ Value.Id (Principal.id doctor) ]
           ~holder:doctor ()));

  banner "A patient arrives; the nurse screens and allocates";
  let nsession = Principal.start_session nurse in
  let dsession = Principal.start_session doctor in
  let patient = 4711 in
  let allocation =
    World.run_proc world (fun () ->
        attempt "nurse on shift" (Principal.activate nurse nsession aande ~role:"screening_nurse" ());
        (* The nurse is not medically qualified: she cannot treat. *)
        attempt "nurse tries to treat"
          (Principal.invoke nurse nsession aande ~privilege:"treat"
             ~args:[ Value.Id (Principal.id nurse); Value.Int patient ]);
        (* But she can allocate — a transient appointment for this patient.
           The shift's end bounds its life. *)
        match
          Principal.appoint nurse nsession aande ~kind:"allocated"
            ~args:[ Value.Id (Principal.id doctor); Value.Int patient ]
            ~holder:doctor
            ~expires_at:(World.now world +. (8.0 *. 3600.0))
            ()
        with
        | Ok appt ->
            Printf.printf "  allocation certificate: %s\n"
              (Format.asprintf "%a" Oasis_cert.Appointment.pp appt);
            appt
        | Error d -> failwith (Protocol.denial_to_string d))
  in

  banner "The doctor treats the allocated patient";
  World.run_proc world (fun () ->
      attempt "doctor on call" (Principal.activate doctor dsession aande ~role:"on_call_doctor" ());
      attempt "activate treating_doctor"
        (Principal.activate doctor dsession aande ~role:"treating_doctor" ());
      attempt "treat patient 4711"
        (Principal.invoke doctor dsession aande ~privilege:"treat"
           ~args:[ Value.Id (Principal.id doctor); Value.Int patient ]);
      (* Another patient was never allocated. *)
      attempt "treat patient 9999"
        (Principal.invoke doctor dsession aande ~privilege:"treat"
           ~args:[ Value.Id (Principal.id doctor); Value.Int 9999 ]));

  banner "The nurse reallocates: the appointment is revoked";
  ignore
    (Service.revoke_certificate aande allocation.Oasis_cert.Appointment.id
       ~reason:"patient reallocated");
  World.settle world;
  World.run_proc world (fun () ->
      attempt "treat after reallocation"
        (Principal.invoke doctor dsession aande ~privilege:"treat"
           ~args:[ Value.Id (Principal.id doctor); Value.Int patient ]));
  Printf.printf "  (treating_doctor collapsed; on_call_doctor survives: %d roles active)\n"
    (List.length (Service.active_roles aande))
