(* oasisctl — command-line front end to the OASIS reproduction.

   Subcommands:
     policy-check FILE   parse and report a policy file
     lint FILE           static policy lint with located diagnostics
     run FILE            execute a scenario script and check expectations
     trace FILE          execute a scenario, stream its JSONL event timeline
     stats FILE          final metrics of a scenario / summary of a timeline
     cascade             run a revocation-cascade simulation
     trust               run the Sect. 6 web-of-trust simulation
     keygen              generate a simulated key pair
*)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Parser = Oasis_policy.Parser
module Rule = Oasis_policy.Rule
module Simulation = Oasis_trust.Simulation
module Rmc = Oasis_cert.Rmc
module Elgamal = Oasis_crypto.Elgamal

open Cmdliner

(* ---------------- policy-check ---------------- *)

let policy_check file =
  let source =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Parser.parse source with
  | Error e ->
      Format.eprintf "%s: %a\n" file Parser.pp_error e;
      exit 1
  | Ok statements ->
      let activations = Parser.activations statements in
      let authorizations = Parser.authorizations statements in
      Format.printf "%s: %d activation rule(s), %d authorization rule(s)\n" file
        (List.length activations) (List.length authorizations);
      List.iter (fun a -> Format.printf "  %a\n" Rule.pp_activation a) activations;
      List.iter (fun a -> Format.printf "  %a\n" Rule.pp_authorization a) authorizations;
      let initials = List.filter (fun (a : Rule.activation) -> a.initial) activations in
      if initials = [] && activations <> [] then
        Format.printf
          "  note: no initial role — sessions cannot start at this service alone\n";
      let monitored =
        List.fold_left
          (fun acc a -> acc + List.length (Rule.membership_conditions a))
          0 activations
      in
      Format.printf "  %d membership-monitored condition(s)\n" monitored

let policy_check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Policy file to check.")
  in
  Cmd.v
    (Cmd.info "policy-check" ~doc:"Parse an OASIS policy file and summarise its rules")
    Term.(const policy_check $ file)

(* ---------------- analyze ---------------- *)

module Analysis = Oasis_policy.Analysis
module Reach = Oasis_policy.Reach
module PLint = Oasis_policy.Lint

let read_source file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A .scn file carries its whole world (plus the implicit CIV); a .oasis
   file is one service whose name and extra kinds come from the flags. *)
let load_world file svc_name kinds source =
  if Filename.check_suffix file ".scn" then
    match Oasis_script.Scenario.extract_policies source with
    | Error e ->
        Format.eprintf "%a\n" Oasis_script.Scenario.pp_error e;
        exit 1
    | Ok world -> world
  else
    match Oasis_policy.Parser.parse source with
    | Error e ->
        Format.eprintf "%s: %a\n" file Oasis_policy.Parser.pp_error e;
        exit 1
    | Ok statements ->
        [ Analysis.of_statements ~name:svc_name ~appointment_kinds:kinds statements ]

(* --held entries are "kind" (issued by the analysed service, or by the
   implicit CIV for scenarios) or "kind@service". *)
let parse_held ~default_issuer entries =
  List.map
    (fun entry ->
      match String.index_opt entry '@' with
      | Some i ->
          ( String.sub entry (i + 1) (String.length entry - i - 1),
            String.sub entry 0 i )
      | None -> (default_issuer, entry))
    entries

let analyze_core file svc_name kinds held adversary goal pins json =
  let source = read_source file in
  let world = load_world file svc_name kinds source in
  let default_issuer =
    if Filename.check_suffix file ".scn" then "civ" else svc_name
  in
  let held_pairs = parse_held ~default_issuer held in
  (* The footgun fix: --adversary defaults to the EMPTY wallet (the
     adversarial worst case); without it the default stays the most
     permissive principal, which is what dead-role detection wants. *)
  let creds =
    match (held_pairs, adversary) with
    | [], true -> Reach.no_credentials
    | [], false -> Reach.permissive world
    | pairs, _ -> { Reach.held_appointments = pairs; held_roles = [] }
  in
  let result = Reach.analyse ~adversary:creds ~pins world in
  let findings =
    Reach.findings world |> PLint.apply_waivers ~waivers:(PLint.waivers source)
  in
  let count sev = List.length (List.filter (fun f -> f.PLint.severity = sev) findings) in
  match goal with
  | Some g ->
      (* Goal query: verdict-driven exit code so CI can gate on "can the
         adversary reach this role": 0 unreachable, 2 reachable,
         3 env-contingent. *)
      let svc_filter, role =
        match String.index_opt g '@' with
        | Some i ->
            (Some (String.sub g (i + 1) (String.length g - i - 1)), String.sub g 0 i)
        | None -> (None, g)
      in
      let goals =
        List.filter
          (fun gl ->
            String.equal gl.Reach.g_role role
            && match svc_filter with None -> true | Some s -> String.equal gl.Reach.g_service s)
          result.Reach.goals
      in
      if goals = [] then begin
        Format.eprintf "%s: no service defines role %s\n" file g;
        exit 1
      end;
      if json then
        print_endline (Reach.to_json ~findings { result with Reach.goals })
      else List.iter (fun gl -> Format.printf "%a\n" Reach.pp_goal gl) goals;
      let worst =
        List.fold_left
          (fun acc gl ->
            match (acc, gl.Reach.g_verdict) with
            | Reach.Reachable, _ | _, Reach.Reachable -> Reach.Reachable
            | Reach.Env_contingent, _ | _, Reach.Env_contingent -> Reach.Env_contingent
            | v, Reach.Unreachable -> v)
          Reach.Unreachable goals
      in
      exit
        (match worst with
        | Reach.Unreachable -> 0
        | Reach.Reachable -> 2
        | Reach.Env_contingent -> 3)
  | None ->
      if json then print_endline (Reach.to_json ~findings result)
      else begin
        let unresolved =
          if adversary then []
          else begin
            (* Classic report (reachability under the same wallet, dead
               roles, cycles, dangling references), then the R-findings. *)
            let report =
              Analysis.analyse ~held_appointments:creds.Reach.held_appointments world
            in
            Format.printf "%a\n" Analysis.pp_report report;
            report.Analysis.unresolved
          end
        in
        if adversary then Format.printf "%a\n" Reach.pp_result result;
        List.iter (fun f -> Format.printf "%s:%a\n" file PLint.pp_finding f) findings;
        Format.printf "%s: %d error(s), %d warning(s), %d info\n" file (count PLint.Error)
          (count PLint.Warning) (count PLint.Info);
        if count PLint.Error > 0 || unresolved <> [] then exit 2
      end;
      if count PLint.Error > 0 then exit 2

let analyze file svc_name kinds held adversary goal pins json =
  analyze_core file svc_name kinds held adversary goal pins json

let analyze_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Policy file (.oasis) or scenario world (.scn) to analyse.")
  in
  let svc_name =
    Arg.(
      value
      & opt string "service"
      & info [ "name" ] ~doc:"Registered name of the service (single policy files).")
  in
  let kinds =
    Arg.(
      value
      & opt (list string) []
      & info [ "kinds" ] ~doc:"Appointment kinds this service can issue (comma separated).")
  in
  let held =
    Arg.(
      value
      & opt (list string) []
      & info [ "held" ]
          ~doc:
            "Appointment certificates the analysed principal holds, as KIND or KIND@SERVICE \
             (comma separated). Default without $(b,--adversary): every issuable kind (the \
             best-case principal, for dead-role detection). Default with $(b,--adversary): \
             the empty wallet (the worst case).")
  in
  let adversary =
    Arg.(
      value & flag
      & info [ "adversary" ]
          ~doc:
            "Adversarial goal-reachability: three-valued verdicts (reachable, env-contingent, \
             unreachable) with witness derivation trees, starting from an empty credential \
             wallet unless $(b,--held) says otherwise.")
  in
  let goal =
    Arg.(
      value
      & opt (some string) None
      & info [ "goal" ] ~docv:"ROLE[@SERVICE]"
          ~doc:
            "Restrict the verdict to one role. Exit code: 0 unreachable, 2 reachable, \
             3 env-contingent.")
  in
  let pins =
    Arg.(
      value
      & opt (list (pair ~sep:'=' string bool)) []
      & info [ "pin" ] ~docv:"PRED=BOOL,..."
          ~doc:
            "Pin environmental predicates true or false; unpinned predicates stay free \
             (verdicts may be env-contingent).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON report.") in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static policy analysis: reachability, dead roles, cycles, dangling references — plus \
          adversarial symbolic goal-reachability (R001-R003 findings, witness derivations, \
          lint-grade exit codes)")
    Term.(const analyze $ file $ svc_name $ kinds $ held $ adversary $ goal $ pins $ json)

(* ---------------- lint ---------------- *)

module Lint = Oasis_policy.Lint

let read_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint file svc_name kinds json strict max_depth =
  let source = read_file file in
  let scenario = Filename.check_suffix file ".scn" in
  let services =
    if scenario then
      match Oasis_script.Scenario.extract_lint_services source with
      | Error e ->
          Format.eprintf "%a\n" Oasis_script.Scenario.pp_error e;
          exit 1
      | Ok services -> services
    else
      match Parser.parse source with
      | Error e ->
          Format.eprintf "%s: %a\n" file Parser.pp_error e;
          exit 1
      | Ok statements -> [ Lint.of_statements ~name:svc_name ~extra_kinds:kinds statements ]
  in
  (* A scenario carries its whole world, so unresolved services are real
     errors; a lone policy file legitimately references peers. *)
  let findings =
    Lint.check ~closed:scenario ~max_cascade_depth:max_depth services
    |> Lint.apply_waivers ~waivers:(Lint.waivers source)
  in
  let count sev = List.length (List.filter (fun f -> f.Lint.severity = sev) findings) in
  if json then print_endline (Lint.to_json ~depths:(Lint.cascade_depths services) findings)
  else begin
    List.iter (fun f -> Format.printf "%s:%a\n" file Lint.pp_finding f) findings;
    Format.printf "%s: %d error(s), %d warning(s), %d info\n" file (count Lint.Error)
      (count Lint.Warning) (count Lint.Info)
  end;
  if count Lint.Error > 0 || (strict && count Lint.Warning > 0) then exit 2

let lint_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Policy file (.oasis) or scenario (.scn) to lint.")
  in
  let svc_name =
    Arg.(
      value
      & opt string "service"
      & info [ "name" ] ~doc:"Registered name of the service (single policy files).")
  in
  let kinds =
    Arg.(
      value
      & opt (list string) []
      & info [ "kinds" ]
          ~doc:
            "Appointment kinds the service issues through channels other than appoint rules \
             (comma separated).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON report.") in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit non-zero on warnings as well as errors.")
  in
  let max_depth =
    Arg.(
      value
      & opt int 4
      & info [ "max-depth" ]
          ~doc:"Revocation-cascade depth above which L203 is reported.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static policy lint: dataflow, consistency and membership/revocation checks with \
          located diagnostics")
    Term.(const lint $ file $ svc_name $ kinds $ json $ strict $ max_depth)

(* ---------------- cascade ---------------- *)

let cascade depth fanout heartbeats period deadline seed =
  let monitoring =
    if heartbeats then World.Heartbeats { period; deadline } else World.Change_events
  in
  let world = World.create ~seed ~net_latency:0.001 ~notify_latency:0.001 ~monitoring () in
  (* Root service plus a [fanout]-ary dependency tree of depth [depth]. *)
  let counter = ref 0 in
  let nodes = ref [] in
  let root = Service.create world ~name:"root" ~policy:"initial role <- env:eq(1, 1);" () in
  nodes := [ ("root", root, 0) ];
  let rec grow parent level =
    if level <= depth then
      for _ = 1 to fanout do
        incr counter;
        let name = Printf.sprintf "n%d" !counter in
        let service =
          Service.create world ~name ~policy:(Printf.sprintf "role <- *role@%s;" parent) ()
        in
        nodes := (name, service, level) :: !nodes;
        grow name (level + 1)
      done
  in
  grow "root" 1;
  let ordered = List.stable_sort (fun (_, _, a) (_, _, b) -> compare a b) (List.rev !nodes) in
  let p = Principal.create world ~name:"p" in
  let session = Principal.start_session p in
  World.run_proc world (fun () ->
      List.iter
        (fun (_, service, _) ->
          match Principal.activate p session service ~role:"role" () with
          | Ok _ -> ()
          | Error d -> failwith (Protocol.denial_to_string d))
        ordered);
  let alive () =
    List.fold_left (fun acc (_, s, _) -> acc + List.length (Service.active_roles s)) 0 !nodes
  in
  Printf.printf "tree built: %d services, %d active roles\n" (List.length !nodes) (alive ());
  (* Let heartbeat traffic settle for 10 virtual seconds, then cut the root. *)
  World.run_until world (World.now world +. 10.0);
  let root_rmc =
    List.find
      (fun (r : Rmc.t) -> Oasis_util.Ident.equal r.issuer (Service.id root))
      (Principal.session_rmcs session)
  in
  let t0 = World.now world in
  ignore (Service.revoke_certificate root root_rmc.Rmc.id ~reason:"oasisctl cascade");
  let engine = World.engine world in
  let rec drive () = if alive () > 0 && Oasis_sim.Engine.step engine then drive () in
  drive ();
  Printf.printf "collapse completed in %.3f virtual seconds (%s monitoring)\n"
    (World.now world -. t0)
    (if heartbeats then Printf.sprintf "heartbeat %.1fs/%.1fs" period deadline else "change-event");
  let stats = Oasis_event.Broker.stats (World.broker world) in
  Printf.printf "event-channel traffic: %d published, %d notifications delivered\n"
    stats.Oasis_event.Broker.published stats.Oasis_event.Broker.notified

let cascade_cmd =
  let depth =
    Arg.(value & opt int 4 & info [ "depth" ] ~doc:"Depth of the role dependency tree.")
  in
  let fanout = Arg.(value & opt int 2 & info [ "fanout" ] ~doc:"Children per node.") in
  let heartbeats =
    Arg.(value & flag & info [ "heartbeats" ] ~doc:"Monitor by heartbeats instead of change events.")
  in
  let period = Arg.(value & opt float 1.0 & info [ "period" ] ~doc:"Heartbeat period (s).") in
  let deadline =
    Arg.(value & opt float 2.5 & info [ "deadline" ] ~doc:"Heartbeat miss deadline (s).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  Cmd.v
    (Cmd.info "cascade" ~doc:"Simulate a revocation cascade over a role-dependency tree (Fig. 5)")
    Term.(const cascade $ depth $ fanout $ heartbeats $ period $ deadline $ seed)

(* ---------------- trust ---------------- *)

let trust byzantine colluders padding rounds threshold no_discounting favourable seed =
  let params =
    {
      Simulation.default_params with
      byzantine_fraction = byzantine;
      colluder_fraction = colluders;
      colluder_padding = padding;
      rounds;
      threshold;
      discounting = not no_discounting;
      favourable_presentation = favourable;
      seed;
    }
  in
  let result = Simulation.run params in
  Printf.printf "round | accept-good accept-bad refuse-good refuse-bad | accuracy | rogue-weight\n";
  List.iter
    (fun (r : Simulation.round_stats) ->
      Printf.printf "%5d | %11d %10d %11d %10d | %8.3f | %12.3f\n" r.round r.proceeded_with_good
        r.proceeded_with_bad r.refused_good r.refused_bad r.accuracy r.mean_rogue_weight)
    result.Simulation.per_round;
  Printf.printf "final accuracy (last quarter): %.3f\n" result.Simulation.final_accuracy

let trust_cmd =
  let byz =
    Arg.(value & opt float 0.25 & info [ "byzantine" ] ~doc:"Fraction of Byzantine servers.")
  in
  let col =
    Arg.(value & opt float 0.0 & info [ "colluders" ] ~doc:"Fraction of colluding servers.")
  in
  let padding =
    Arg.(value & opt int 2 & info [ "padding" ] ~doc:"Fabricated certificates per colluder per round.")
  in
  let rounds = Arg.(value & opt int 30 & info [ "rounds" ] ~doc:"Rounds to simulate.") in
  let threshold = Arg.(value & opt float 0.5 & info [ "threshold" ] ~doc:"Risk threshold.") in
  let no_disc =
    Arg.(value & flag & info [ "no-discounting" ] ~doc:"Disable registrar discounting.")
  in
  let favourable =
    Arg.(value & flag & info [ "favourable" ] ~doc:"Servers present only favourable certificates.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  Cmd.v
    (Cmd.info "trust" ~doc:"Run the Sect. 6 audit-certificate marketplace simulation")
    Term.(
      const trust $ byz $ col $ padding $ rounds $ threshold $ no_disc $ favourable $ seed)

(* ---------------- analyze-world ---------------- *)

let analyze_world file json = analyze_core file "service" [] [] false None [] json

let analyze_world_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scenario file to analyse.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON report.") in
  Cmd.v
    (Cmd.info "analyze-world"
       ~doc:
         "Static analysis across every service of a scenario file, CIV included (alias for \
          $(b,analyze) on a .scn world)")
    Term.(const analyze_world $ file $ json)

(* ---------------- run (scenario scripts) ---------------- *)

let run_scenario file =
  match Oasis_script.Scenario.run_file file with
  | Error e ->
      Format.eprintf "%a\n" Oasis_script.Scenario.pp_error e;
      exit 1
  | Ok outcome ->
      List.iter print_endline outcome.Oasis_script.Scenario.log;
      (match outcome.Oasis_script.Scenario.failures with
      | [] -> print_endline "all expectations met"
      | failures ->
          List.iter (fun f -> Printf.eprintf "EXPECTATION FAILED: %s\n" f) failures;
          exit 2)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scenario script to run.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a scenario script (.scn) and check its expectations")
    Term.(const run_scenario $ file)

(* ---------------- trace ---------------- *)

module Obs = Oasis_obs.Obs

let trace file output check =
  let oc, close =
    match output with
    | None | Some "-" -> (stdout, fun () -> ())
    | Some path ->
        let oc = open_out path in
        (oc, fun () -> close_out oc)
  in
  let bad = ref 0 in
  let emitted = ref 0 in
  let sink event =
    let line = Obs.event_to_jsonl event in
    (if check then
       match Obs.validate_jsonl_line line with
       | Ok () -> ()
       | Error why ->
           incr bad;
           Printf.eprintf "SCHEMA: %s: %s\n" why line);
    incr emitted;
    output_string oc line;
    output_char oc '\n'
  in
  match Oasis_script.Scenario.run_file ~sink file with
  | Error e ->
      close ();
      Format.eprintf "%a\n" Oasis_script.Scenario.pp_error e;
      exit 1
  | Ok outcome ->
      close ();
      Printf.eprintf "%d event(s)\n" !emitted;
      List.iter (fun f -> Printf.eprintf "EXPECTATION FAILED: %s\n" f) outcome.failures;
      if !bad > 0 then begin
        Printf.eprintf "%d event(s) failed the JSONL schema check\n" !bad;
        exit 2
      end;
      if outcome.failures <> [] then exit 2

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scenario script to trace.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the JSONL timeline here ('-' = stdout).")
  in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Validate every line against the event schema.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Execute a scenario and stream its event timeline (role activations, validation \
          callbacks, env-change revocation cascades) as JSONL")
    Term.(const trace $ file $ output $ check)

(* ---------------- stats ---------------- *)

let print_metrics metrics =
  let is_int v = Float.is_integer v && Float.abs v < 1e15 in
  List.iter
    (fun (key, v) ->
      if is_int v then Printf.printf "%-60s %d\n" key (int_of_float v)
      else Printf.printf "%-60s %g\n" key v)
    metrics

let stats file =
  if Filename.check_suffix file ".scn" then begin
    match Oasis_script.Scenario.run_file file with
    | Error e ->
        Format.eprintf "%a\n" Oasis_script.Scenario.pp_error e;
        exit 1
    | Ok outcome ->
        print_metrics outcome.Oasis_script.Scenario.metrics;
        List.iter (fun f -> Printf.eprintf "EXPECTATION FAILED: %s\n" f) outcome.failures;
        if outcome.failures <> [] then exit 2
  end
  else begin
    (* A JSONL timeline from `oasisctl trace`: summarise event counts. *)
    let counts = Hashtbl.create 32 in
    let ic = open_in file in
    let bad = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match Obs.event_of_jsonl line with
           | Ok event ->
               let key = Hashtbl.find_opt counts event.Obs.name |> Option.value ~default:0 in
               Hashtbl.replace counts event.Obs.name (key + 1)
           | Error why ->
               incr bad;
               Printf.eprintf "SCHEMA: %s: %s\n" why line
       done
     with End_of_file -> close_in ic);
    Hashtbl.fold (fun name n acc -> (name, n) :: acc) counts []
    |> List.sort compare
    |> List.iter (fun (name, n) -> Printf.printf "%-40s %d\n" name n);
    if !bad > 0 then exit 2
  end

let stats_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Scenario (.scn) to run, or a JSONL timeline to summarise.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a scenario and print its final metrics registry, or summarise event counts of a \
          JSONL timeline")
    Term.(const stats $ file)

(* ---------------- audit ---------------- *)

module Dlog = Oasis_trust.Decision_log

(* Runs a scenario for its per-service decision logs; expectation failures
   inside the scenario are reported but do not block auditing — the chains
   are evidence either way. *)
let scenario_chains file =
  match Oasis_script.Scenario.run_file file with
  | Error e ->
      Format.eprintf "%a\n" Oasis_script.Scenario.pp_error e;
      exit 1
  | Ok outcome ->
      List.iter
        (fun f -> Printf.eprintf "note: scenario expectation failed: %s\n" f)
        outcome.Oasis_script.Scenario.failures;
      outcome.Oasis_script.Scenario.chains

let pp_verdict name = function
  | Ok n -> Printf.printf "%-20s %6d record(s)  chain intact\n" name n
  | Error (seq, why) -> Printf.printf "%-20s chain BROKEN at record %d: %s\n" name seq why

let audit_verify file tamper export_dir =
  if Filename.check_suffix file ".scn" then begin
    let chains = scenario_chains file in
    if chains = [] then begin
      Printf.eprintf "no services in %s\n" file;
      exit 1
    end;
    (match export_dir with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (name, log) ->
            let path = Filename.concat dir (name ^ ".audit") in
            let oc = open_out path in
            output_string oc (Dlog.export log);
            close_out oc;
            Printf.printf "exported %s\n" path)
          chains);
    match tamper with
    | None ->
        let ok = ref true in
        List.iter
          (fun (name, log) ->
            let live = Dlog.verify log in
            let offline = Dlog.verify_string (Dlog.export log) in
            (match (live, offline) with
            | Ok _, Error (seq, why) ->
                (* The in-memory chain verifies but its export does not:
                   a codec bug, not a tampered log — still a failure. *)
                pp_verdict name (Error (seq, "export: " ^ why))
            | _ -> pp_verdict name live);
            if Result.is_error live || Result.is_error offline then ok := false)
          chains;
        if not !ok then exit 2
    | Some byte ->
        (* Adversary drill: flip one bit of each exported chain and prove
           verification catches it. Exit 0 only if every flip is caught. *)
        let all_caught = ref true in
        List.iter
          (fun (name, log) ->
            let exported = Dlog.export log in
            match Dlog.verify_string (Dlog.tamper exported ~byte) with
            | Error (seq, why) ->
                Printf.printf "%-20s tampered byte %d detected at record %d: %s\n" name
                  (byte mod String.length exported)
                  seq why
            | Ok n ->
                all_caught := false;
                Printf.printf "%-20s UNDETECTED tamper (byte %d, %d record(s) still verify)\n"
                  name byte n)
          chains;
        if not !all_caught then exit 2
  end
  else begin
    (* A previously exported chain file: offline re-verification. *)
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let s = match tamper with None -> s | Some byte -> Dlog.tamper s ~byte in
    match Dlog.verify_string s with
    | Ok n ->
        Printf.printf "%s: %d record(s), chain intact\n" file n;
        if tamper <> None then begin
          Printf.printf "UNDETECTED tamper\n";
          exit 2
        end
    | Error (seq, why) ->
        Printf.printf "%s: chain broken at record %d: %s\n" file seq why;
        if tamper = None then exit 2
  end

let matches_filter svc_filter decision_filter principal_filter since name (r : Dlog.record) =
  (match svc_filter with None -> true | Some s -> String.equal s name)
  && (match decision_filter with
     | None -> true
     | Some d -> String.equal d (Dlog.decision_label r.Dlog.decision))
  && (match principal_filter with
     | None -> true
     | Some p -> String.equal p (Oasis_util.Ident.to_string r.Dlog.principal))
  && match since with None -> true | Some t -> r.Dlog.at >= t

(* Same escaping as Lint.to_json / Reach.to_json machine output. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let record_json name (r : Dlog.record) =
  Printf.sprintf
    "{\"service\":%s,\"seq\":%d,\"at\":%.3f,\"decision\":%s,\"principal\":%s,\"action\":%s,\"rule\":%s,\"creds\":[%s],\"hash\":%s}"
    (json_string name) r.Dlog.seq r.Dlog.at
    (json_string (Dlog.decision_label r.Dlog.decision))
    (json_string (Oasis_util.Ident.to_string r.Dlog.principal))
    (json_string r.Dlog.action) (json_string r.Dlog.rule)
    (String.concat ","
       (List.map (fun c -> json_string (Oasis_util.Ident.to_string c)) r.Dlog.creds))
    (json_string (Oasis_crypto.Sha256.to_hex r.Dlog.hash))

let audit_query file svc_filter decision_filter principal_filter since limit json =
  let chains = scenario_chains file in
  (match decision_filter with
  | Some d when Dlog.decision_of_label d = None ->
      Printf.eprintf "unknown decision %s (grant|deny|revoke|suspect|reconcile)\n" d;
      exit 1
  | _ -> ());
  let selected = ref [] in
  List.iter
    (fun (name, log) ->
      List.iter
        (fun (r : Dlog.record) ->
          if
            List.length !selected < limit
            && matches_filter svc_filter decision_filter principal_filter since name r
          then selected := (name, r) :: !selected)
        (Dlog.records log))
    chains;
  let selected = List.rev !selected in
  if json then
    print_endline
      (Printf.sprintf "{\"records\":[%s],\"count\":%d}"
         (String.concat "," (List.map (fun (name, r) -> record_json name r) selected))
         (List.length selected))
  else begin
    Printf.printf "%-16s %4s %9s %-9s %-16s %-28s %s\n" "service" "seq" "at" "decision"
      "principal" "action" "rule";
    List.iter
      (fun (name, (r : Dlog.record)) ->
        Printf.printf "%-16s %4d %9.3f %-9s %-16s %-28s %s\n" name r.Dlog.seq r.Dlog.at
          (Dlog.decision_label r.Dlog.decision)
          (Oasis_util.Ident.to_string r.Dlog.principal)
          r.Dlog.action r.Dlog.rule)
      selected;
    Printf.printf "%d record(s)\n" (List.length selected)
  end

let audit_why file svc_filter seq cert =
  let chains = scenario_chains file in
  let chains =
    match svc_filter with
    | None -> chains
    | Some s -> List.filter (fun (name, _) -> String.equal name s) chains
  in
  let wanted (r : Dlog.record) =
    (match seq with None -> cert <> None | Some n -> r.Dlog.seq = n)
    && match cert with
       | None -> true
       | Some id ->
           List.exists (fun c -> String.equal id (Oasis_util.Ident.to_string c)) r.Dlog.creds
  in
  let found = ref false in
  List.iter
    (fun (name, log) ->
      List.iter
        (fun (r : Dlog.record) ->
          if wanted r then begin
            found := true;
            Printf.printf "service:   %s\nseq:       %d\nat:        %.3f\ndecision:  %s\n" name
              r.Dlog.seq r.Dlog.at
              (Dlog.decision_label r.Dlog.decision);
            Printf.printf "principal: %s\naction:    %s\n"
              (Oasis_util.Ident.to_string r.Dlog.principal)
              r.Dlog.action;
            if r.Dlog.args <> [] then
              Printf.printf "args:      %s\n"
                (String.concat ", " (List.map Oasis_util.Value.to_string r.Dlog.args));
            if r.Dlog.rule <> "" then Printf.printf "rule:      %s\n" r.Dlog.rule;
            if r.Dlog.creds <> [] then
              Printf.printf "creds:     %s\n"
                (String.concat ", " (List.map Oasis_util.Ident.to_string r.Dlog.creds));
            if r.Dlog.env_facts <> [] then
              Printf.printf "env:       %s\n" (String.concat "; " r.Dlog.env_facts);
            if r.Dlog.trace_seq > 0 then Printf.printf "trace-seq: %d\n" r.Dlog.trace_seq;
            Printf.printf "prev:      %s\nhash:      %s\n\n"
              (Oasis_crypto.Sha256.to_hex r.Dlog.prev)
              (Oasis_crypto.Sha256.to_hex r.Dlog.hash)
          end)
        (Dlog.records log))
    chains;
  if not !found then begin
    Printf.eprintf "no matching decision record\n";
    exit 1
  end

let scn_arg doc = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let audit_verify_cmd =
  let file =
    scn_arg "Scenario (.scn) to run and audit, or a previously exported chain file."
  in
  let tamper =
    Arg.(
      value
      & opt (some int) None
      & info [ "tamper" ] ~docv:"BYTE"
          ~doc:"Flip one bit of the exported chain at byte $(docv) and prove detection.")
  in
  let export_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "export" ] ~docv:"DIR"
          ~doc:"Also write each service's chain to $(docv)/<service>.audit for offline audit.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Re-derive every hash of each service's decision chain from genesis; any mutated byte \
          breaks verification")
    Term.(const audit_verify $ file $ tamper $ export_dir)

let audit_query_cmd =
  let file = scn_arg "Scenario (.scn) to run and query." in
  let svc =
    Arg.(value & opt (some string) None & info [ "service" ] ~docv:"NAME" ~doc:"Only this service.")
  in
  let decision =
    Arg.(
      value
      & opt (some string) None
      & info [ "decision" ] ~docv:"D" ~doc:"Only grant|deny|revoke|suspect|reconcile records.")
  in
  let principal =
    Arg.(
      value
      & opt (some string) None
      & info [ "principal" ] ~docv:"IDENT" ~doc:"Only decisions about this principal.")
  in
  let since =
    Arg.(
      value
      & opt (some float) None
      & info [ "since" ] ~docv:"TIME"
          ~doc:"Only decisions at or after virtual time $(docv) (seconds).")
  in
  let limit = Arg.(value & opt int 200 & info [ "limit" ] ~docv:"N" ~doc:"At most $(docv) rows.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON report.") in
  Cmd.v
    (Cmd.info "query" ~doc:"List decision records with their firing rule, filtered")
    Term.(const audit_query $ file $ svc $ decision $ principal $ since $ limit $ json)

let audit_why_cmd =
  let file = scn_arg "Scenario (.scn) to run and explain." in
  let svc =
    Arg.(value & opt (some string) None & info [ "service" ] ~docv:"NAME" ~doc:"Only this service.")
  in
  let seq =
    Arg.(
      value
      & opt (some int) None
      & info [ "seq" ] ~docv:"N" ~doc:"The decision record at chain position $(docv).")
  in
  let cert =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert" ] ~docv:"IDENT"
          ~doc:"Every decision supported by (or granting) this certificate.")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "Full provenance of a decision: the rule that fired, supporting credentials, env facts, \
          trace correlation and chain hashes")
    Term.(const audit_why $ file $ svc $ seq $ cert)

let audit_cmd =
  Cmd.group
    (Cmd.info "audit"
       ~doc:
         "Inspect and verify the hash-chained decision logs (DESIGN.md §15) a scenario's services \
          accumulate")
    [ audit_verify_cmd; audit_query_cmd; audit_why_cmd ]

(* ---------------- keygen ---------------- *)

let keygen seed =
  let rng = Oasis_util.Rng.create seed in
  let kp = Elgamal.generate rng in
  Printf.printf "public:  %s\nprivate: (held)\nself-check: %b\n"
    (Elgamal.public_to_string kp.Elgamal.public)
    (Elgamal.proves kp.Elgamal.private_key kp.Elgamal.public)

let keygen_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  Cmd.v
    (Cmd.info "keygen" ~doc:"Generate a simulated principal key pair")
    Term.(const keygen $ seed)

(* ---------------- main ---------------- *)

let () =
  let doc = "OASIS role-based access control — reproduction toolkit" in
  let info = Cmd.info "oasisctl" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ policy_check_cmd; lint_cmd; analyze_cmd; analyze_world_cmd; run_cmd; trace_cmd; stats_cmd; audit_cmd; cascade_cmd; trust_cmd; keygen_cmd ]))
