(* The benchmark harness: regenerates every figure/scenario of the paper as a
   measurable experiment (DESIGN.md §4, results recorded in EXPERIMENTS.md).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- E1 E5   -- run a subset

   The paper is an architecture paper: its "evaluation" is five figures plus
   scenario walkthroughs, so each experiment reproduces a figure's scenario
   and reports the quantities the architecture determines — virtual-time
   latencies, message counts, administrative costs and accuracy shapes.
   Microbenchmarks (E2/E4) use Bechamel on wall-clock time; scenario
   experiments run on the deterministic simulator. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Domain = Oasis_domain.Domain
module Civ = Oasis_domain.Civ
module Sla = Oasis_domain.Sla
module Anonymity = Oasis_domain.Anonymity
module Simulation = Oasis_trust.Simulation
module Audit = Oasis_trust.Audit
module Assess = Oasis_trust.Assess
module Registrar = Oasis_trust.Registrar
module Dlog = Oasis_trust.Decision_log
module Rng = Oasis_util.Rng
module Churn = Oasis_script.Churn
module Rbac96 = Oasis_baseline.Rbac96
module Delegation = Oasis_baseline.Delegation
module Acl = Oasis_baseline.Acl
module Network = Oasis_sim.Network
module Broker = Oasis_event.Broker
module Env = Oasis_policy.Env
module Rule = Oasis_policy.Rule
module Term = Oasis_policy.Term
module Solve = Oasis_policy.Solve
module Rmc = Oasis_cert.Rmc
module Appointment = Oasis_cert.Appointment
module Codec = Oasis_cert.Codec
module Secret = Oasis_crypto.Secret
module Sha256 = Oasis_crypto.Sha256
module Hmac = Oasis_crypto.Hmac
module Fault = Oasis_sim.Fault
module Backoff = Oasis_util.Backoff
module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Obs = Oasis_obs.Obs

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let ok = function
  | Ok v -> v
  | Error d -> failwith ("unexpected denial: " ^ Protocol.denial_to_string d)

(* ------------------------------------------------------------------ *)
(* Bechamel helper: run a set of wall-clock microbenchmarks and print
   one row per test (ns/run, r²).                                      *)
(* ------------------------------------------------------------------ *)

let bechamel_table tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let test = Test.make_grouped ~name:"g" tests in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns = match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan in
        let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
        (name, ns, r2) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "  %-44s %14s %8s\n" "operation" "ns/op" "r2";
  List.iter (fun (name, ns, r2) -> Printf.printf "  %-44s %14.1f %8.3f\n" name ns r2) rows

(* ------------------------------------------------------------------ *)
(* E1 — Fig. 1: role dependency through prerequisite roles             *)
(* ------------------------------------------------------------------ *)

(* Chain of services s0..sd; each si requires s(i-1)'s role (monitored). *)
let build_chain world depth =
  let root = Service.create world ~name:"s0" ~policy:"initial r0 <- env:eq(1, 1);" () in
  let services = Array.make (depth + 1) root in
  for i = 1 to depth do
    services.(i) <-
      Service.create world
        ~name:(Printf.sprintf "s%d" i)
        ~policy:(Printf.sprintf "r%d <- *r%d@s%d;" i (i - 1) (i - 1))
        ()
  done;
  services

let e1 () =
  header "E1 (Fig. 1) Role dependency: activation cost vs prerequisite depth";
  Printf.printf
    "  The principal activates r0..rd in turn; rd's activation presents the whole\n\
    \  session wallet, so the issuing service validates d remote credentials.\n\n";
  Printf.printf "  %5s | %19s | %14s | %12s | %16s\n" "depth" "last act. (virt ms)"
    "msgs last act." "bytes" "session total msgs";
  List.iter
    (fun depth ->
      let world = World.create ~seed:1 ~net_latency:0.001 () in
      let services = build_chain world depth in
      let p = Principal.create world ~name:"p" in
      let net = World.network world in
      let session = Principal.start_session p in
      World.run_proc world (fun () ->
          for i = 0 to depth - 1 do
            ignore
              (ok (Principal.activate p session services.(i) ~role:(Printf.sprintf "r%d" i) ()))
          done);
      let total_before = (Network.stats net).Network.sent in
      Network.reset_stats net;
      let t0 = World.now world in
      World.run_proc world (fun () ->
          ignore
            (ok
               (Principal.activate p session services.(depth) ~role:(Printf.sprintf "r%d" depth) ())));
      let dt = (World.now world -. t0) *. 1000.0 in
      let last = Network.stats net in
      Printf.printf "  %5d | %19.1f | %14d | %12d | %16d\n" depth dt last.Network.sent
        last.Network.bytes_sent
        (total_before + last.Network.sent))
    [ 1; 2; 4; 8; 16; 32 ];
  Printf.printf
    "\n  ablation: selective presentation (only the needed prerequisite RMC)\n";
  Printf.printf "  %5s | %19s | %14s | %18s\n" "depth" "last act. (virt ms)" "msgs last act."
    "session total msgs";
  List.iter
    (fun depth ->
      let world = World.create ~seed:1 ~net_latency:0.001 () in
      let services = build_chain world depth in
      let p = Principal.create world ~name:"p" in
      let net = World.network world in
      let session = Principal.start_session p in
      let selective i =
        (* Present exactly the prerequisite credential the rule needs. *)
        let creds =
          if i = 0 then Protocol.no_credentials
          else
            {
              Protocol.rmcs =
                List.filter
                  (fun (r : Rmc.t) -> r.role = Printf.sprintf "r%d" (i - 1))
                  (Principal.session_rmcs session);
              appointments = [];
            }
        in
        World.run_proc world (fun () ->
            ignore
              (ok
                 (Principal.activate_with p session services.(i)
                    ~role:(Printf.sprintf "r%d" i) ~creds ())))
      in
      for i = 0 to depth - 1 do
        selective i
      done;
      let total_before = (Network.stats net).Network.sent in
      Network.reset_stats net;
      let t0 = World.now world in
      selective depth;
      let dt = (World.now world -. t0) *. 1000.0 in
      let last_msgs = (Network.stats net).Network.sent in
      Printf.printf "  %5d | %19.1f | %14d | %18d\n" depth dt last_msgs (total_before + last_msgs))
    [ 1; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* E2 — Fig. 2: the two service paths, wall-clock                      *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2 (Fig. 2) Service paths: role entry and service use, wall-clock";
  let world = World.create ~seed:2 ~net_latency:0.0 ~notify_latency:0.0 () in
  let svc =
    Service.create world ~name:"svc"
      ~policy:
        {|
          initial plain <- env:eq(1, 1);
          initial fat(a, b, c, d) <- env:four(a, b, c, d);
          priv use(u) <- plain;
        |}
      ()
  in
  Env.register (Service.env svc) "four" (fun args -> List.length args = 4);
  let p = Principal.create world ~name:"p" in
  let session = Principal.start_session p in
  World.run_proc world (fun () -> ignore (ok (Principal.activate p session svc ~role:"plain" ())));
  let pin = Some (Value.Int 7) in
  let open Bechamel in
  bechamel_table
    [
      (* Fresh session per run: the presented wallet stays constant-size. *)
      Test.make ~name:"role entry (unparametrised)"
        (Staged.stage (fun () ->
             World.run_proc world (fun () ->
                 let s = Principal.start_session p in
                 ignore (ok (Principal.activate p s svc ~role:"plain" ())))));
      Test.make ~name:"role entry (4 parameters)"
        (Staged.stage (fun () ->
             World.run_proc world (fun () ->
                 let s = Principal.start_session p in
                 ignore
                   (ok
                      (Principal.activate p s svc ~role:"fat" ~args:[ pin; pin; pin; pin ] ())))));
      Test.make ~name:"service use (authorize + audit)"
        (Staged.stage (fun () ->
             World.run_proc world (fun () ->
                 ignore
                   (ok (Principal.invoke p session svc ~privilege:"use" ~args:[ Value.Int 1 ])))));
    ];
  Printf.printf "\n  solver only: conditions per rule vs evaluation time\n";
  let solver_test n =
    let creds =
      List.init n (fun i ->
          {
            Solve.cred_id = Ident.make "cert" i;
            issuer = Ident.make "svc" 0;
            cred_name = Printf.sprintf "c%d" i;
            cred_args = [ Value.Int i ];
          })
    in
    let ctx =
      {
        Solve.find_rmcs =
          (fun ~service:_ ~name ->
            List.filter (fun (c : Solve.cred) -> String.equal c.cred_name name) creds);
        find_appointments = (fun ~issuer:_ ~name:_ -> []);
        env_check = (fun _ _ -> true);
        env_enumerate = (fun _ -> []);
      }
    in
    let rule =
      Rule.activation ~role:"r"
        ~params:[ Term.Var "x0" ]
        (List.init n (fun i ->
             ( false,
               Rule.Prereq
                 {
                   service = None;
                   name = Printf.sprintf "c%d" i;
                   args = [ Term.Var (Printf.sprintf "x%d" i) ];
                 } )))
    in
    Bechamel.Test.make
      ~name:(Printf.sprintf "solve activation, %2d conditions" n)
      (Bechamel.Staged.stage (fun () -> ignore (Solve.activation ctx rule ())))
  in
  bechamel_table (List.map solver_test [ 1; 2; 4; 8; 16 ])

(* ------------------------------------------------------------------ *)
(* E3 — Fig. 3: the cross-domain EHR session                           *)
(* ------------------------------------------------------------------ *)

let e3_world ~caching =
  let world = World.create ~seed:3 ~net_latency:0.002 () in
  let hospital = Domain.create world ~name:"h" () in
  let config = { Service.default_config with cache_remote_validation = caching } in
  let portal =
    Domain.add_service hospital ~name:"portal"
      ~policy:
        {|
          initial logged_in(u) <- appt:employee(u)@h.civ;
          doctor(u) <- *logged_in(u), *appt:qualified(u)@h.civ;
          treating_doctor(doc, pat) <- *doctor(doc), *env:assigned(doc, pat);
        |}
      ()
  in
  let ehr =
    Domain.add_service hospital ~name:"ehr" ~config
      ~policy:"priv request_ehr(doc, pat) <- treating_doctor(doc, pat)@h.portal;" ()
  in
  let national = Domain.create world ~name:"n" () in
  let records =
    Domain.add_service national ~name:"records" ~config
      ~policy:"priv deliver(h, doc, pat) <- hospital(h);" ()
  in
  ignore
    (Sla.establish world ~name:"sla" ~between:records ~and_:ehr
       ~clauses:
         [
           Sla.Accept_appointment
             {
               at = "n.records";
               role = "hospital";
               params = [ Term.Var "x" ];
               kind = "accredited";
               cert_args = [ Term.Var "x" ];
               issuer = "n.civ";
               monitored = true;
               extra = [];
               initial = true;
             };
         ]);
  Env.declare_fact (Domain.env hospital) "assigned";
  let agent = Principal.create world ~name:"agent" in
  let accreditation =
    Civ.issue (Domain.civ national) ~kind:"accredited"
      ~args:[ Value.Id (Service.id portal) ]
      ~holder:(Principal.id agent) ~holder_key:(Principal.longterm_public agent) ()
  in
  Principal.grant_appointment agent accreditation;
  let agent_session = Principal.start_session agent in
  Service.register_operation ehr "request_ehr" (fun ~principal:_ args ->
      match args with
      | [ Value.Id doc; Value.Int pat ] -> (
          (if
             not
               (List.exists
                  (fun (r : Rmc.t) -> r.role = "hospital")
                  (Principal.session_rmcs agent_session))
           then ignore (ok (Principal.activate agent agent_session records ~role:"hospital" ())));
          match
            Principal.invoke agent agent_session records ~privilege:"deliver"
              ~args:[ Value.Id (Service.id portal); Value.Id doc; Value.Int pat ]
          with
          | Ok r -> r
          | Error d -> failwith (Protocol.denial_to_string d))
      | _ -> None);
  let carol = Principal.create world ~name:"carol" in
  List.iter
    (fun kind ->
      Principal.grant_appointment carol
        (Civ.issue (Domain.civ hospital) ~kind
           ~args:[ Value.Id (Principal.id carol) ]
           ~holder:(Principal.id carol) ~holder_key:(Principal.longterm_public carol) ()))
    [ "employee"; "qualified" ];
  Env.assert_fact (Domain.env hospital) "assigned" [ Value.Id (Principal.id carol); Value.Int 1 ];
  World.settle world;
  let session = Principal.start_session carol in
  World.run_proc world (fun () ->
      List.iter
        (fun role -> ignore (ok (Principal.activate carol session portal ~role ())))
        [ "logged_in"; "doctor"; "treating_doctor" ]);
  (world, ehr, carol, session)

let e3 () =
  header "E3 (Fig. 3) Cross-domain EHR invocation: caching ablation";
  Printf.printf
    "  request-EHR end to end: doctor -> hospital EHR -> national records, with\n\
    \  validation callbacks. Cached verdicts are invalidated via event channels.\n\n";
  Printf.printf "  %-10s | %6s | %10s | %12s | %10s | %13s\n" "config" "call#" "virt ms"
    "network msgs" "bytes" "callbacks out";
  List.iter
    (fun caching ->
      let world, ehr, carol, session = e3_world ~caching in
      let net = World.network world in
      for call = 1 to 5 do
        Network.reset_stats net;
        let cb_before = (Service.stats ehr).Service.callbacks_out in
        let t0 = World.now world in
        World.run_proc world (fun () ->
            ignore
              (ok
                 (Principal.invoke carol session ehr ~privilege:"request_ehr"
                    ~args:[ Value.Id (Principal.id carol); Value.Int 1 ])));
        let dt = (World.now world -. t0) *. 1000.0 in
        let st = Network.stats net in
        let cb = (Service.stats ehr).Service.callbacks_out - cb_before in
        if call <= 2 || call = 5 then
          Printf.printf "  %-10s | %6d | %10.1f | %12d | %10d | %13d\n"
            (if caching then "cached" else "uncached")
            call dt st.Network.sent st.Network.bytes_sent cb
      done)
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* E4 — Fig. 4: RMC engineering microbenchmarks                        *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4 (Fig. 4) Certificate engineering: sign/validate wall-clock";
  let secret = Secret.of_string "bench-secret-0123456789abcdef012" in
  let issuer = Ident.make "svc" 1 in
  let args = [ Value.Id (Ident.make "principal" 1); Value.Int 42 ] in
  let rmc =
    Rmc.issue ~secret ~principal_key:"key" ~id:(Ident.make "cert" 1) ~issuer
      ~role:"treating_doctor" ~args ~issued_at:1.0
  in
  let tampered = Rmc.with_args rmc [ Value.Id (Ident.make "principal" 2); Value.Int 42 ] in
  let appt =
    Appointment.issue ~master_secret:secret ~epoch:3 ~id:(Ident.make "cert" 2) ~issuer
      ~kind:"qualified" ~args ~holder:"holder-key" ~issued_at:1.0 ~expires_at:100.0 ()
  in
  let encoded = Codec.rmc_to_string rmc in
  let payload = String.make 1024 'x' in
  let open Bechamel in
  bechamel_table
    [
      Test.make ~name:"RMC issue (sign)"
        (Staged.stage (fun () ->
             ignore
               (Rmc.issue ~secret ~principal_key:"key" ~id:(Ident.make "cert" 1) ~issuer
                  ~role:"treating_doctor" ~args ~issued_at:1.0)));
      Test.make ~name:"RMC verify (valid)"
        (Staged.stage (fun () -> ignore (Rmc.verify ~secret ~principal_key:"key" rmc)));
      Test.make ~name:"RMC verify (tampered)"
        (Staged.stage (fun () -> ignore (Rmc.verify ~secret ~principal_key:"key" tampered)));
      Test.make ~name:"RMC verify (stolen: wrong key)"
        (Staged.stage (fun () -> ignore (Rmc.verify ~secret ~principal_key:"thief" rmc)));
      Test.make ~name:"appointment verify (epoch+expiry)"
        (Staged.stage (fun () ->
             ignore (Appointment.verify ~master_secret:secret ~current_epoch:3 ~now:5.0 appt)));
      Test.make ~name:"codec encode RMC"
        (Staged.stage (fun () -> ignore (Codec.rmc_to_string rmc)));
      Test.make ~name:"codec decode RMC"
        (Staged.stage (fun () -> ignore (Codec.rmc_of_string encoded)));
      Test.make ~name:"HMAC-SHA256 (1 KiB)"
        (Staged.stage (fun () -> ignore (Hmac.mac ~key:"k" payload)));
      Test.make ~name:"SHA-256 (1 KiB)"
        (Staged.stage (fun () -> ignore (Sha256.digest_string payload)));
    ];
  Printf.printf "\n  certificate size vs parameter count (wire bytes)\n";
  Printf.printf "  %8s | %10s | %12s\n" "params" "RMC" "appointment";
  List.iter
    (fun n ->
      let args = List.init n (fun i -> Value.Int i) in
      let rmc =
        Rmc.issue ~secret ~principal_key:"key" ~id:(Ident.make "cert" 9) ~issuer ~role:"role"
          ~args ~issued_at:1.0
      in
      let appt =
        Appointment.issue ~master_secret:secret ~epoch:0 ~id:(Ident.make "cert" 10) ~issuer
          ~kind:"kind" ~args ~holder:"holder" ~issued_at:1.0 ()
      in
      Printf.printf "  %8d | %10d | %12d\n" n (Rmc.size_bytes rmc) (Appointment.size_bytes appt))
    [ 0; 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* E5 — Fig. 5: the revocation cascade and the monitoring ablation     *)
(* ------------------------------------------------------------------ *)

(* A tree of services: a root plus [fanout] children per node to [depth]
   levels; each node's role depends (monitored) on its parent's. *)
let build_tree world ~depth ~fanout =
  let counter = ref 0 in
  let rec spawn_children parent level acc =
    if level > depth then acc
    else
      List.concat_map
        (fun _ ->
          incr counter;
          let name = Printf.sprintf "t%d" !counter in
          let service =
            Service.create world ~name ~policy:(Printf.sprintf "role <- *role@%s;" parent) ()
          in
          (name, service, level) :: spawn_children name (level + 1) [])
        (List.init fanout Fun.id)
      @ acc
  in
  let root = Service.create world ~name:"troot" ~policy:"initial role <- env:eq(1, 1);" () in
  ("troot", root, 0) :: spawn_children "troot" 1 []

let activate_tree world nodes p =
  let session = Principal.start_session p in
  let sorted = List.stable_sort (fun (_, _, l1) (_, _, l2) -> compare l1 l2) nodes in
  World.run_proc world (fun () ->
      List.iter
        (fun (_, service, _) -> ignore (ok (Principal.activate p session service ~role:"role" ())))
        sorted);
  session

let tree_alive nodes =
  List.fold_left (fun acc (_, s, _) -> acc + List.length (Service.active_roles s)) 0 nodes

let e5 () =
  header "E5 (Fig. 5) Active security: revocation cascade";
  Printf.printf "  change-event monitoring; notification latency 1 ms per hop\n\n";
  Printf.printf "  %5s %6s %6s | %18s | %13s | %10s\n" "depth" "fanout" "roles"
    "collapse (virt ms)" "notifications" "net msgs";
  let cascade ~depth ~fanout =
    let world = World.create ~seed:5 ~net_latency:0.001 ~notify_latency:0.001 () in
    let nodes = build_tree world ~depth ~fanout in
    let p = Principal.create world ~name:"p" in
    let session = activate_tree world nodes p in
    let roles = tree_alive nodes in
    let broker = World.broker world in
    Broker.reset_stats broker;
    Network.reset_stats (World.network world);
    let _, root, _ = List.find (fun (name, _, _) -> name = "troot") nodes in
    let root_rmc =
      List.find
        (fun (r : Rmc.t) -> Ident.equal r.issuer (Service.id root))
        (Principal.session_rmcs session)
    in
    let t0 = World.now world in
    ignore (Service.revoke_certificate root root_rmc.Rmc.id ~reason:"cascade");
    (* Step until the tree is dead, recording the instant it happens. *)
    let engine = World.engine world in
    let rec drive () =
      if tree_alive nodes > 0 && Oasis_sim.Engine.step engine then drive ()
    in
    drive ();
    let dt = (World.now world -. t0) *. 1000.0 in
    World.settle world;
    let stats = Broker.stats broker in
    Printf.printf "  %5d %6d %6d | %18.1f | %13d | %10d\n" depth fanout roles dt
      stats.Broker.notified
      (Network.stats (World.network world)).Network.sent;
    assert (tree_alive nodes = 0)
  in
  List.iter
    (fun (d, f) -> cascade ~depth:d ~fanout:f)
    [ (1, 1); (2, 2); (3, 2); (4, 2); (2, 4); (6, 1); (10, 1) ];

  Printf.printf "\n  monitoring ablation: change events vs heartbeats (chain depth 4)\n";
  Printf.printf "  %-22s | %18s | %17s\n" "mode" "collapse (virt s)" "events over 60 s";
  let ablation monitoring label =
    let world = World.create ~seed:6 ~net_latency:0.001 ~notify_latency:0.001 ~monitoring () in
    let services = build_chain world 4 in
    let p = Principal.create world ~name:"p" in
    let session = Principal.start_session p in
    World.run_proc world (fun () ->
        for i = 0 to 4 do
          ignore (ok (Principal.activate p session services.(i) ~role:(Printf.sprintf "r%d" i) ()))
        done);
    let broker = World.broker world in
    Broker.reset_stats broker;
    World.run_until world (World.now world +. 60.0);
    let steady = (Broker.stats broker).Broker.published in
    let root_rmc = List.find (fun (r : Rmc.t) -> r.role = "r0") (Principal.session_rmcs session) in
    let t0 = World.now world in
    ignore (Service.revoke_certificate services.(0) root_rmc.Rmc.id ~reason:"x");
    let rec until_dead limit =
      if limit <= 0 then ()
      else if Array.for_all (fun s -> List.length (Service.active_roles s) = 0) services then ()
      else begin
        World.run_until world (World.now world +. 0.25);
        until_dead (limit - 1)
      end
    in
    until_dead 400;
    let collapse = World.now world -. t0 in
    Printf.printf "  %-22s | %18.2f | %17d\n" label collapse steady
  in
  ablation World.Change_events "change events";
  ablation (World.Heartbeats { period = 1.0; deadline = 2.5 }) "heartbeats 1s/2.5s";
  ablation (World.Heartbeats { period = 5.0; deadline = 12.5 }) "heartbeats 5s/12.5s"

(* ------------------------------------------------------------------ *)
(* E6 — administrative scalability vs baselines                        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6 Administrative cost: OASIS appointments vs RBAC96 vs ACLs";
  Printf.printf
    "  Workload: N staff join; each may access O objects; 10%% of staff leave.\n\
    \  Counting administrative state-changing operations (Sect. 1's claim).\n\n";
  Printf.printf "  %8s %8s | %12s | %12s | %12s\n" "staff" "objects" "ACL ops" "RBAC96 ops"
    "OASIS certs";
  List.iter
    (fun (n, objects) ->
      let leavers = max 1 (n / 10) in
      let acl = Acl.create () in
      for o = 1 to objects do
        Acl.add_object acl (Printf.sprintf "obj%d" o)
      done;
      for u = 1 to n do
        for o = 1 to objects do
          Acl.grant acl ~principal:(Ident.make "u" u)
            ~obj:(Printf.sprintf "obj%d" o)
            ~operation:"read"
        done
      done;
      for u = 1 to leavers do
        ignore (Acl.offboard acl (Ident.make "u" u))
      done;
      let rbac = Rbac96.create () in
      Rbac96.add_role rbac "staff";
      for o = 1 to objects do
        Rbac96.grant_permission rbac "staff"
          { Rbac96.operation = "read"; target = Printf.sprintf "obj%d" o }
      done;
      for u = 1 to n do
        Rbac96.add_user rbac (Ident.make "u" u);
        Rbac96.assign_user rbac (Ident.make "u" u) "staff"
      done;
      for u = 1 to leavers do
        Rbac96.deassign_user rbac (Ident.make "u" u) "staff"
      done;
      (* OASIS: one appointment per join, one revocation per leave; object
         policy is one authorization rule, not per-object state. *)
      let oasis_ops = n + leavers + 1 in
      Printf.printf "  %8d %8d | %12d | %12d | %12d\n" n objects (Acl.admin_ops acl)
        (Rbac96.admin_ops rbac) oasis_ops)
    [ (100, 50); (1000, 50); (1000, 200); (5000, 200) ];

  Printf.printf "\n  revocation blast radius: RBDM0 delegation chains vs appointments\n";
  Printf.printf "  %14s | %18s | %18s\n" "chain length" "RBDM0 torn down" "OASIS revocations";
  List.iter
    (fun len ->
      let rbac = Rbac96.create () in
      Rbac96.add_role rbac "doctor";
      for u = 0 to len do
        Rbac96.add_user rbac (Ident.make "u" u)
      done;
      Rbac96.assign_user rbac (Ident.make "u" 0) "doctor";
      let del = Delegation.create rbac ~max_depth:(len + 1) in
      for u = 0 to len - 1 do
        match
          Delegation.delegate del ~from_user:(Ident.make "u" u) ~to_user:(Ident.make "u" (u + 1))
            ~role:"doctor"
        with
        | Ok () -> ()
        | Error e -> failwith e
      done;
      let blast =
        Delegation.revoke del ~from_user:(Ident.make "u" 0) ~to_user:(Ident.make "u" 1)
          ~role:"doctor"
      in
      Printf.printf "  %14d | %18d | %18d\n" len blast 1)
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* E7 — Sect. 5 scenarios: validation round trips                      *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7 (Sect. 5) Inter-domain scenarios: validation round trips";
  Printf.printf "  %-34s | %16s | %16s\n" "scenario" "callbacks (1st)" "callbacks (5th)";
  let visiting ~caching =
    let world = World.create ~seed:7 () in
    let home = Domain.create world ~name:"home" () in
    let config = { Service.default_config with cache_remote_validation = caching } in
    let host =
      Service.create world ~name:"host" ~config
        ~policy:"initial visiting(u) <- *appt:employed(u)@home.civ;" ()
    in
    let doctor = Principal.create world ~name:"doc" in
    Principal.grant_appointment doctor
      (Civ.issue (Domain.civ home) ~kind:"employed"
         ~args:[ Value.Id (Principal.id doctor) ]
         ~holder:(Principal.id doctor) ~holder_key:(Principal.longterm_public doctor) ());
    World.settle world;
    let counts =
      List.init 5 (fun _ ->
          let before = (Service.stats host).Service.callbacks_out in
          World.run_proc world (fun () ->
              let s = Principal.start_session doctor in
              ignore (ok (Principal.activate doctor s host ~role:"visiting" ())));
          (Service.stats host).Service.callbacks_out - before)
    in
    (List.nth counts 0, List.nth counts 4)
  in
  let f1, f5 = visiting ~caching:false in
  Printf.printf "  %-34s | %16d | %16d\n" "visiting doctor, no cache" f1 f5;
  let c1, c5 = visiting ~caching:true in
  Printf.printf "  %-34s | %16d | %16d\n" "visiting doctor, cached" c1 c5;
  let world = World.create ~seed:8 () in
  let insurer = Domain.create world ~name:"ins" () in
  let clinic = Service.create world ~name:"clinic" ~policy:"initial noop <- env:eq(1,1);" () in
  Service.add_activation_rule clinic
    (Anonymity.member_role_rule ~scheme:"insured" ~civ_name:"ins.civ" ~role:"patient");
  let member = Principal.create world ~name:"member" in
  let membership =
    Anonymity.enroll ~civ:(Domain.civ insurer) ~member ~scheme:"insured" ~expires_at:1e6
  in
  World.settle world;
  let before = (Service.stats clinic).Service.callbacks_out in
  World.run_proc world (fun () ->
      let s = Principal.start_session member in
      ignore (ok (Anonymity.activate_anonymously member s clinic ~role:"patient" membership)));
  Printf.printf "  %-34s | %16d | %16s\n" "anonymous member at clinic"
    ((Service.stats clinic).Service.callbacks_out - before)
    "-"

(* ------------------------------------------------------------------ *)
(* E8 — Sect. 6: trust despite a Byzantine minority                    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8 (Sect. 6) Web of trust: accuracy vs Byzantine fraction";
  Printf.printf "  40 servers, 40 clients, 80 interactions/round, 40 rounds, threshold 0.5\n\n";
  Printf.printf "  %10s | %16s | %16s\n" "byzantine" "final accuracy" "first-round acc.";
  List.iter
    (fun frac ->
      let r =
        Simulation.run { Simulation.default_params with byzantine_fraction = frac; rounds = 40 }
      in
      let first = List.hd r.Simulation.per_round in
      Printf.printf "  %9.0f%% | %16.3f | %16.3f\n" (frac *. 100.0) r.Simulation.final_accuracy
        first.Simulation.accuracy)
    [ 0.0; 0.1; 0.2; 0.3; 0.4 ];
  Printf.printf "\n  collusion ring (20%% colluders, padding 3/round): discounting ablation\n";
  Printf.printf "  %-24s | %16s | %16s\n" "mode" "final accuracy" "rogue weight";
  List.iter
    (fun discounting ->
      let r =
        Simulation.run
          {
            Simulation.default_params with
            byzantine_fraction = 0.1;
            colluder_fraction = 0.2;
            colluder_padding = 3;
            rounds = 40;
            discounting;
          }
      in
      let last = List.nth r.Simulation.per_round (List.length r.Simulation.per_round - 1) in
      Printf.printf "  %-24s | %16.3f | %16.3f\n"
        (if discounting then "with discounting" else "without discounting")
        r.Simulation.final_accuracy last.Simulation.mean_rogue_weight)
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* E9 — env churn: fact-change propagation cost, indexed vs full scan  *)
(* ------------------------------------------------------------------ *)

(* `--smoke` shrinks every experiment that honours it to a single cheap
   iteration, so `make check` can prove the bench binary still runs without
   paying for a full measurement campaign. *)
let smoke_mode = ref false

(* The active-security hot path: every fact change used to re-scan the
   watch lists of every RMC the service had ever issued. The reverse index
   (predicate base name -> watching RMCs) makes the cost proportional to
   the watchers of the changed predicate. This experiment drives N services
   sharing one environment database, M active roles in total of which a
   small fixed set watches the "hot" predicate, and K flips (assert +
   retract) per measured predicate; it records the number of RMC membership
   re-checks and the CPU time, for the indexed and the legacy linear
   configurations, into BENCH_active_security.json. *)
let e9 () =
  header "E9 Active security: env-churn fact-change propagation (indexed vs scan)";
  let smoke = !smoke_mode in
  let services_n = 4 in
  let hot_watchers = if smoke then 2 else 8 in
  let flips = if smoke then 1 else 2000 in
  let sizes = if smoke then [ 16 ] else [ 100; 400; 1600 ] in
  let churn_policy =
    {|
      initial hotrole(u) <- *env:hot(u);
      initial coldrole(u) <- *env:cold(u);
    |}
  in
  let run_config ~total ~indexed =
    let world = World.create ~seed:9 () in
    let env = Env.create (Oasis_sim.Engine.clock (World.engine world)) in
    Env.declare_fact env "hot";
    Env.declare_fact env "cold";
    Env.declare_fact env "idle";
    let config = { Service.default_config with index_env_watches = indexed } in
    let services =
      Array.init services_n (fun i ->
          Service.create world
            ~name:(Printf.sprintf "churn%d" i)
            ~config ~env ~policy:churn_policy ())
    in
    let p = Principal.create world ~name:"p" in
    World.run_proc world (fun () ->
        let session = Principal.start_session p in
        for i = 0 to total - 1 do
          let svc = services.(i mod services_n) in
          let role, pred = if i < hot_watchers then ("hotrole", "hot") else ("coldrole", "cold") in
          Env.assert_fact env pred [ Value.Int i ];
          ignore (ok (Principal.activate p session svc ~role ~args:[ Some (Value.Int i) ] ()))
        done);
    let active =
      Array.fold_left (fun acc s -> acc + List.length (Service.active_roles s)) 0 services
    in
    assert (active = total);
    (* Flip a sentinel tuple that matches no watcher's ground constraint:
       every change notification pays the propagation cost but deactivates
       nothing, so the same population is re-measured across predicates. *)
    let measure pred =
      Array.iter Service.reset_stats services;
      let t0 = Sys.time () in
      for _ = 1 to flips do
        Env.assert_fact env pred [ Value.Int (-1) ];
        Env.retract_fact env pred [ Value.Int (-1) ]
      done;
      let seconds = Sys.time () -. t0 in
      (* The reported row comes from the shared Obs registry; the legacy
         [Service.stats] view is the same counter, so the two must agree
         exactly — any drift means a module bypassed the registry. *)
      let obs = World.obs world in
      let rechecks = ref 0 in
      Array.iteri
        (fun i s ->
          let key = Printf.sprintf "service.env_rechecks{service=churn%d}" i in
          let from_registry =
            match Obs.value obs key with
            | Some v -> int_of_float v
            | None -> failwith ("E9: metric missing from registry: " ^ key)
          in
          assert (from_registry = (Service.stats s).Service.env_rechecks);
          rechecks := !rechecks + from_registry)
        services;
      (!rechecks, seconds)
    in
    let idle_rechecks, idle_s = measure "idle" in
    let hot_rechecks, hot_s = measure "hot" in
    assert (Array.fold_left (fun acc s -> acc + List.length (Service.active_roles s)) 0 services
            = total);
    if indexed then begin
      (* The tentpole claim, enforced: untouched predicates cost nothing,
         and the hot predicate costs exactly its watchers per change. *)
      assert (idle_rechecks = 0);
      assert (hot_rechecks = 2 * flips * hot_watchers)
    end;
    (idle_rechecks, idle_s, hot_rechecks, hot_s)
  in
  Printf.printf
    "  %d services share one env; %d watchers of 'hot'; %d flips per predicate\n\n"
    services_n hot_watchers flips;
  Printf.printf "  %-12s | %6s | %14s | %10s | %14s | %10s\n" "mode" "roles" "idle rechecks"
    "idle s" "hot rechecks" "hot s";
  let rows =
    List.concat_map
      (fun total ->
        List.map
          (fun indexed ->
            let idle_rechecks, idle_s, hot_rechecks, hot_s = run_config ~total ~indexed in
            let mode = if indexed then "indexed" else "linear-scan" in
            Printf.printf "  %-12s | %6d | %14d | %10.4f | %14d | %10.4f\n" mode total
              idle_rechecks idle_s hot_rechecks hot_s;
            Printf.sprintf
              "    { \"mode\": %S, \"total_active_rmcs\": %d, \"idle_rechecks\": %d,\n\
              \      \"idle_seconds\": %.6f, \"hot_rechecks\": %d, \"hot_seconds\": %.6f }"
              mode total idle_rechecks idle_s hot_rechecks hot_s)
          [ false; true ])
      sizes
  in
  let out = open_out "BENCH_active_security.json" in
  Printf.fprintf out
    "{\n\
    \  \"benchmark\": \"env_churn_active_security\",\n\
    \  \"generated_by\": \"dune exec bench/main.exe -- E9%s\",\n\
    \  \"params\": { \"services\": %d, \"hot_watchers\": %d, \"flips\": %d, \"smoke\": %b },\n\
    \  \"claim\": \"fact-change propagation cost scales with watchers of the changed predicate, not with total active RMCs\",\n\
    \  \"rows\": [\n%s\n  ]\n}\n"
    (if smoke then " --smoke" else "")
    services_n hot_watchers flips smoke
    (String.concat ",\n" rows);
  close_out out;
  Printf.printf "\n  results written to BENCH_active_security.json\n"

(* ------------------------------------------------------------------ *)
(* E11 — the trace pipeline: Fig. 5 causal order and tracing overhead  *)
(* ------------------------------------------------------------------ *)

(* One service with a monitored env watch; a principal holds the role.
   The measured loop flips a sentinel tuple of the watched predicate so
   every flip pays the env-change propagation (and, when a sink is
   attached, event emission) without deactivating anything; the final
   retraction of the real fact drives the Fig. 5 path env.change ->
   svc.recheck -> svc.revoke, which must appear in the trace in causal
   (seq) order. Results go to BENCH_trace.json. *)
let e11 () =
  header "E11 Observability: Fig. 5 cascade in the trace, tracing overhead";
  let smoke = !smoke_mode in
  let flips = if smoke then 50 else 20000 in
  let run ~traced =
    let world = World.create ~seed:11 () in
    let capture =
      if traced then begin
        let sink, captured = Obs.memory_sink () in
        Obs.attach (World.obs world) sink;
        captured
      end
      else fun () -> []
    in
    let svc =
      Service.create world ~name:"ward" ~policy:"initial on_duty(u) <- *env:rostered(u);" ()
    in
    let env = Service.env svc in
    Env.declare_fact env "rostered";
    let p = Principal.create world ~name:"p" in
    World.run_proc world (fun () ->
        let session = Principal.start_session p in
        Env.assert_fact env "rostered" [ Value.Int 0 ];
        ignore (ok (Principal.activate p session svc ~role:"on_duty" ~args:[ Some (Value.Int 0) ] ())));
    assert (List.length (Service.active_roles svc) = 1);
    let t0 = Sys.time () in
    for i = 1 to flips do
      Env.assert_fact env "rostered" [ Value.Int (-i) ];
      Env.retract_fact env "rostered" [ Value.Int (-i) ]
    done;
    let churn_s = Sys.time () -. t0 in
    Env.retract_fact env "rostered" [ Value.Int 0 ];
    World.settle world;
    assert (List.length (Service.active_roles svc) = 0);
    (churn_s, capture ())
  in
  let null_s, null_events = run ~traced:false in
  let sink_s, events = run ~traced:true in
  assert (null_events = []);
  (* The cascade, in causal order: the revocation's seq must be preceded by
     a recheck, itself preceded by the env change that caused it. *)
  let seq_of_first name =
    match List.find_opt (fun (e : Obs.event) -> String.equal e.Obs.name name) events with
    | Some e -> e.Obs.seq
    | None -> failwith ("E11: no " ^ name ^ " event in the trace")
  in
  let revoke_seq = seq_of_first "svc.revoke" in
  let last_before name limit =
    List.fold_left
      (fun acc (e : Obs.event) ->
        if String.equal e.Obs.name name && e.Obs.seq < limit then Some e.Obs.seq else acc)
      None events
  in
  let recheck_seq =
    match last_before "svc.recheck" revoke_seq with
    | Some s -> s
    | None -> failwith "E11: no svc.recheck before the revocation"
  in
  let change_seq =
    match last_before "env.change" recheck_seq with
    | Some s -> s
    | None -> failwith "E11: no env.change before the recheck"
  in
  assert (change_seq < recheck_seq && recheck_seq < revoke_seq);
  let count name =
    List.length (List.filter (fun (e : Obs.event) -> String.equal e.Obs.name name) events)
  in
  Printf.printf "  causal order OK: env.change #%d -> svc.recheck #%d -> svc.revoke #%d\n\n"
    change_seq recheck_seq revoke_seq;
  Printf.printf "  %-12s | %8s | %12s | %14s\n" "mode" "events" "churn s" "us per flip";
  let row mode events_n seconds =
    Printf.printf "  %-12s | %8d | %12.4f | %14.3f\n" mode events_n seconds
      (seconds /. float_of_int flips *. 1e6)
  in
  row "null" 0 null_s;
  row "memory-sink" (List.length events) sink_s;
  let out = open_out "BENCH_trace.json" in
  Printf.fprintf out
    "{\n\
    \  \"benchmark\": \"trace_pipeline\",\n\
    \  \"generated_by\": \"dune exec bench/main.exe -- E11%s\",\n\
    \  \"params\": { \"flips\": %d, \"smoke\": %b },\n\
    \  \"claim\": \"the Fig. 5 cascade appears in the trace in causal order; tracing without a sink costs one branch per event site\",\n\
    \  \"causal_order\": { \"env_change_seq\": %d, \"recheck_seq\": %d, \"revoke_seq\": %d },\n\
    \  \"event_counts\": { \"env_change\": %d, \"svc_recheck\": %d, \"svc_revoke\": %d, \"total\": %d },\n\
    \  \"rows\": [\n\
    \    { \"mode\": \"null\", \"events\": 0, \"churn_seconds\": %.6f },\n\
    \    { \"mode\": \"memory_sink\", \"events\": %d, \"churn_seconds\": %.6f }\n\
    \  ]\n}\n"
    (if smoke then " --smoke" else "")
    flips smoke change_seq recheck_seq revoke_seq (count "env.change") (count "svc.recheck")
    (count "svc.revoke") (List.length events) null_s (List.length events) sink_s;
  close_out out;
  Printf.printf "\n  results written to BENCH_trace.json\n"

(* ------------------------------------------------------------------ *)
(* E12 — fault tolerance: re-validation storms and propagation latency *)
(* ------------------------------------------------------------------ *)

(* Two measurements into BENCH_fault.json (DESIGN.md §11):

   (a) the post-heal re-validation storm: N roles at one relying service go
       suspect behind a partition; on heal, anti-entropy reconciliation
       re-validates all of them against the issuer. The bounded worker pool
       ([reconcile_batch]) is compared with the naive configuration (batch =
       N, every suspect polls concurrently) on wasted retries and dropped
       packets while partitioned, completed status RPCs, and virtual drain
       time after the heal.

   (b) revocation-propagation latency: virtual seconds from revocation at
       the issuer to deactivation at the relying service, across monitoring
       disciplines and partition timings — including the never-healed case,
       where fail-closed degradation bounds the latency at
       detection-deadline + grace with no connectivity at all. *)
let e12 () =
  header "E12 Fault tolerance: reconciliation storms, revocation latency under partition";
  let smoke = !smoke_mode in
  let n_roles = if smoke then 8 else 64 in
  let retry = { Backoff.default with base = 0.02; cap = 0.2; max_attempts = 4 } in

  (* -------- (a) the storm -------- *)
  let storm ~batch =
    let world = World.create ~seed:12 () in
    let issuer =
      Service.create world ~name:"issuer" ~policy:"initial base(u) <- env:enrolled(u);" ()
    in
    Env.declare_fact (Service.env issuer) "enrolled";
    let config =
      {
        Service.default_config with
        retry;
        (* long grace: resolution must come from reconciliation, not the
           fail-closed timer, so drain time measures the worker pool *)
        suspect_grace = 120.0;
        reconcile_batch = batch;
        (* the exhausted validation callback is the failure detector under
           measurement; offline verification would grant without the RPC *)
        offline_verify = false;
      }
    in
    let relying =
      Service.create world ~name:"relying" ~config ~policy:"derived(u) <- *base(u)@issuer;" ()
    in
    for i = 0 to n_roles - 1 do
      let p = Principal.create world ~name:(Printf.sprintf "p%d" i) in
      Env.assert_fact (Service.env issuer) "enrolled" [ Value.Int i ];
      World.run_proc world (fun () ->
          let s = Principal.start_session p in
          ignore
            (ok (Principal.activate p s issuer ~role:"base" ~args:[ Some (Value.Int i) ] ()));
          ignore
            (ok (Principal.activate p s relying ~role:"derived" ~args:[ Some (Value.Int i) ] ())))
    done;
    assert (List.length (Service.active_roles relying) = n_roles);
    Fault.partition (World.fault world) ~name:"wan" [ Service.id relying ] [ Service.id issuer ];
    (* One exhausted validation callback is the failure detector: it marks
       every role depending on the unreachable issuer suspect. *)
    let q = Principal.create world ~name:"q" in
    Env.assert_fact (Service.env issuer) "enrolled" [ Value.Int 999 ];
    World.run_proc world (fun () ->
        let s = Principal.start_session q in
        ignore (ok (Principal.activate q s issuer ~role:"base" ~args:[ Some (Value.Int 999) ] ()));
        match Principal.activate q s relying ~role:"derived" ~args:[ Some (Value.Int 999) ] () with
        | Ok _ -> failwith "E12: derived granted across a partition"
        | Error _ -> ());
    assert (Service.suspect_count relying = n_roles);
    (* Let the pollers hammer the dead link for a fixed window, then heal. *)
    World.run_until world (World.now world +. 2.0);
    let retries_at key =
      match Obs.value (World.obs world) key with Some v -> int_of_float v | None -> 0
    in
    let wasted_retries = retries_at "rpc.retries{site=reconcile}" in
    let wasted_drops = List.assoc "partitioned" (Network.dropped_by_cause (World.network world)) in
    let rpcs_before = (Network.stats (World.network world)).Network.rpcs in
    Fault.heal (World.fault world) "wan";
    let healed_at = World.now world in
    let deadline = healed_at +. 60.0 in
    while Service.suspect_count relying > 0 && World.now world < deadline do
      World.run_until world (World.now world +. 0.05)
    done;
    assert (Service.suspect_count relying = 0);
    assert ((Service.stats relying).Service.reconciled_reinstated = n_roles);
    let drain_s = World.now world -. healed_at in
    let status_rpcs = (Network.stats (World.network world)).Network.rpcs - rpcs_before in
    (wasted_retries, wasted_drops, status_rpcs, drain_s)
  in

  Printf.printf "  (a) %d suspect roles reconcile after a heal\n\n" n_roles;
  Printf.printf "  %-14s | %14s | %13s | %11s | %9s\n" "mode" "wasted retries"
    "wasted drops" "status rpcs" "drain s";
  let storm_rows =
    List.map
      (fun (mode, batch) ->
        let wasted_retries, wasted_drops, status_rpcs, drain_s = storm ~batch in
        Printf.printf "  %-14s | %14d | %13d | %11d | %9.3f\n" mode wasted_retries
          wasted_drops status_rpcs drain_s;
        Printf.sprintf
          "    { \"mode\": %S, \"batch\": %d, \"suspects\": %d, \"wasted_retries\": %d,\n\
          \      \"wasted_drops\": %d, \"status_rpcs\": %d, \"drain_seconds\": %.4f }"
          mode batch n_roles wasted_retries wasted_drops status_rpcs drain_s)
      [ ("batched", Service.default_config.Service.reconcile_batch); ("naive", n_roles) ]
  in

  (* -------- (b) revocation-propagation latency -------- *)
  let period = 0.5 and hb_deadline = 1.5 and grace = 2.0 in
  let latency ~monitoring ~partitioned ~heal_after =
    let world = World.create ~seed:12 ?monitoring () in
    let issuer =
      Service.create world ~name:"issuer" ~policy:"initial base <- env:eq(1, 1);" ()
    in
    let config =
      {
        Service.default_config with
        retry;
        suspect_grace = grace;
        reconcile_batch = 8;
        (* revocation latency here is defined by the callback/heartbeat
           machinery, not the offline tombstone channel *)
        offline_verify = false;
      }
    in
    let relying =
      Service.create world ~name:"relying" ~config ~policy:"derived <- *base@issuer;" ()
    in
    let p = Principal.create world ~name:"p" in
    let base, derived =
      World.run_proc world (fun () ->
          let s = Principal.start_session p in
          let base = ok (Principal.activate p s issuer ~role:"base" ()) in
          let derived = ok (Principal.activate p s relying ~role:"derived" ()) in
          (base, derived))
    in
    World.run_until world 1.0;
    if partitioned then
      Fault.partition (World.fault world) ~name:"wan" [ Service.id relying ]
        [ Service.id issuer ];
    let revoked_at = World.now world in
    ignore (Service.revoke_certificate issuer base.Rmc.id ~reason:"E12");
    (match heal_after with
    | Some d ->
        World.run_until world (revoked_at +. d);
        Fault.heal (World.fault world) "wan"
    | None -> ());
    let limit = revoked_at +. 30.0 in
    while
      Service.is_valid_certificate relying derived.Rmc.id && World.now world < limit
    do
      World.run_until world (World.now world +. 0.01)
    done;
    assert (not (Service.is_valid_certificate relying derived.Rmc.id));
    World.now world -. revoked_at
  in
  let hb = Some (World.Heartbeats { period; deadline = hb_deadline }) in
  let cases =
    [
      ("change-events, connected", None, false, None);
      ("heartbeats, connected", hb, false, None);
      ("heartbeats, heal after 0.5", hb, true, Some 0.5);
      ("heartbeats, heal after 1.5", hb, true, Some 1.5);
      ("heartbeats, never healed", hb, true, None);
    ]
  in
  Printf.printf "\n  (b) revocation -> deactivation latency (virtual s); deadline %.1f, grace %.1f\n\n"
    hb_deadline grace;
  Printf.printf "  %-28s | %10s\n" "case" "latency s";
  let latency_rows =
    List.map
      (fun (case, monitoring, partitioned, heal_after) ->
        let l = latency ~monitoring ~partitioned ~heal_after in
        Printf.printf "  %-28s | %10.3f\n" case l;
        Printf.sprintf "    { \"case\": %S, \"latency_seconds\": %.4f }" case l)
      cases
  in
  let out = open_out "BENCH_fault.json" in
  Printf.fprintf out
    "{\n\
    \  \"benchmark\": \"fault_tolerance\",\n\
    \  \"generated_by\": \"dune exec bench/main.exe -- E12%s\",\n\
    \  \"params\": { \"roles\": %d, \"heartbeat_period\": %.2f, \"heartbeat_deadline\": %.2f,\n\
    \             \"suspect_grace\": %.2f, \"smoke\": %b },\n\
    \  \"claim\": \"bounded reconciliation batches tame the post-heal re-validation storm; fail-closed degradation bounds revocation propagation even without connectivity\",\n\
    \  \"storm_rows\": [\n%s\n  ],\n\
    \  \"latency_rows\": [\n%s\n  ]\n}\n"
    (if smoke then " --smoke" else "")
    n_roles period hb_deadline grace smoke
    (String.concat ",\n" storm_rows)
    (String.concat ",\n" latency_rows);
  close_out out;
  Printf.printf "\n  results written to BENCH_fault.json\n"

(* ------------------------------------------------------------------ *)
(* E13 — offline-verifiable signed credentials: RPCs and latency       *)
(* ------------------------------------------------------------------ *)

(* Two workloads into BENCH_signed.json (DESIGN.md §12), each run with
   offline verification on and off:

   (a) the hospital shape: one CIV domain, principals holding employee and
       qualification appointments log in and step up to doctor — the paper's
       running example, two cross-domain credential checks per principal;

   (b) a synthetic cross-domain storm: many relying services all gated on
       appointments from one CIV, every principal activating at every
       service — the validation traffic the paper says certificates should
       absorb ("validation ... without reference to the issuing service").

   Reported per mode: validation callbacks made by relying services, RPCs
   served by the CIV cluster, local offline verifications, and virtual-time
   activation latency. The claim under test: offline verification drives
   the cross-domain validation RPC count to zero without costing latency
   (signature checks are compute, not round trips). *)
let e13 () =
  header "E13 Signed credentials: zero-RPC validation vs callback validation";
  let smoke = !smoke_mode in
  let n_principals = if smoke then 4 else 40 in
  let n_services = if smoke then 3 else 12 in

  let hospital ~offline =
    let world = World.create ~seed:13 () in
    let civ = Civ.create world ~name:"civ" ~offline_sign:offline () in
    let config = { Service.default_config with Service.offline_verify = offline } in
    let hospital =
      Service.create world ~name:"hospital" ~config
        ~policy:
          {|
            initial logged_in(u) <- *appt:employee(u)@civ ;
            doctor(u) <- *logged_in(u), *appt:qualified(u)@civ ;
          |}
        ()
    in
    let latency = ref 0.0 in
    for i = 0 to n_principals - 1 do
      let p = Principal.create world ~name:(Printf.sprintf "p%d" i) in
      List.iter
        (fun kind ->
          let appt =
            Civ.issue civ ~kind
              ~args:[ Value.Id (Principal.id p) ]
              ~holder:(Principal.id p) ~holder_key:(Principal.longterm_public p) ()
          in
          Principal.grant_appointment p appt)
        [ "employee"; "qualified" ];
      World.settle world;
      let t0 = World.now world in
      World.run_proc world (fun () ->
          let s = Principal.start_session p in
          ignore (ok (Principal.activate p s hospital ~role:"logged_in" ()));
          ignore (ok (Principal.activate p s hospital ~role:"doctor" ())));
      World.settle world;
      latency := !latency +. (World.now world -. t0)
    done;
    let st = Service.stats hospital in
    let civ_rpcs = Array.fold_left ( + ) 0 (Civ.stats civ).Civ.validations_served in
    ( st.Service.callbacks_out,
      civ_rpcs,
      st.Service.offline_validations,
      !latency /. float_of_int n_principals )
  in

  let storm ~offline =
    let world = World.create ~seed:13 () in
    let civ = Civ.create world ~name:"civ" ~offline_sign:offline () in
    let config = { Service.default_config with Service.offline_verify = offline } in
    let services =
      Array.init n_services (fun i ->
          Service.create world ~name:(Printf.sprintf "svc%d" i) ~config
            ~policy:"initial member(u) <- *appt:badge(u)@civ ;" ())
    in
    let latency = ref 0.0 and activations = ref 0 in
    for i = 0 to n_principals - 1 do
      let p = Principal.create world ~name:(Printf.sprintf "p%d" i) in
      let appt =
        Civ.issue civ ~kind:"badge"
          ~args:[ Value.Id (Principal.id p) ]
          ~holder:(Principal.id p) ~holder_key:(Principal.longterm_public p) ()
      in
      Principal.grant_appointment p appt;
      World.settle world;
      let t0 = World.now world in
      World.run_proc world (fun () ->
          let s = Principal.start_session p in
          Array.iter
            (fun svc ->
              incr activations;
              ignore (ok (Principal.activate p s svc ~role:"member" ())))
            services);
      World.settle world;
      latency := !latency +. (World.now world -. t0)
    done;
    let callbacks =
      Array.fold_left (fun acc svc -> acc + (Service.stats svc).Service.callbacks_out) 0 services
    in
    let offline_checks =
      Array.fold_left
        (fun acc svc -> acc + (Service.stats svc).Service.offline_validations)
        0 services
    in
    let civ_rpcs = Array.fold_left ( + ) 0 (Civ.stats civ).Civ.validations_served in
    (callbacks, civ_rpcs, offline_checks, !latency /. float_of_int !activations)
  in

  Printf.printf "  %d principals; storm fan-out %d services\n\n" n_principals n_services;
  Printf.printf "  %-10s %-8s | %13s | %9s | %14s | %12s\n" "scenario" "mode" "callbacks out"
    "civ rpcs" "offline checks" "latency s";
  let rows =
    List.concat_map
      (fun (scenario, run) ->
        List.map
          (fun offline ->
            let callbacks, civ_rpcs, offline_checks, mean_latency = run ~offline in
            let mode = if offline then "offline" else "legacy" in
            Printf.printf "  %-10s %-8s | %13d | %9d | %14d | %12.4f\n" scenario mode callbacks
              civ_rpcs offline_checks mean_latency;
            if offline && callbacks > 0 then
              failwith "E13: offline mode still made validation callbacks";
            Printf.sprintf
              "    { \"scenario\": %S, \"mode\": %S, \"validation_callbacks\": %d,\n\
              \      \"civ_validation_rpcs\": %d, \"offline_validations\": %d,\n\
              \      \"mean_activation_latency_s\": %.6f }"
              scenario mode callbacks civ_rpcs offline_checks mean_latency)
          [ false; true ])
      [ ("hospital", hospital); ("storm", storm) ]
  in
  let out = open_out "BENCH_signed.json" in
  Printf.fprintf out
    "{\n\
    \  \"benchmark\": \"signed_credentials\",\n\
    \  \"generated_by\": \"dune exec bench/main.exe -- E13%s\",\n\
    \  \"params\": { \"principals\": %d, \"storm_services\": %d, \"smoke\": %b },\n\
    \  \"claim\": \"offline-verifiable signed credentials drive cross-domain validation RPCs to zero at no latency cost; freshness machinery is unchanged\",\n\
    \  \"rows\": [\n%s\n  ]\n}\n"
    (if smoke then " --smoke" else "")
    n_principals n_services smoke
    (String.concat ",\n" rows);
  close_out out;
  Printf.printf "\n  results written to BENCH_signed.json\n"

(* ------------------------------------------------------------------ *)
(* E15 — engine/storage scale curve (DESIGN.md §14)                    *)
(* ------------------------------------------------------------------ *)

(* Reads an integer field (in kB) out of /proc/self/status; 0 when the
   field or the file is unavailable (non-Linux). *)
let proc_status_kb field =
  match open_in "/proc/self/status" with
  | exception _ -> 0
  | ic ->
      let prefix = field ^ ":" in
      let plen = String.length prefix in
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line when String.length line > plen && String.sub line 0 plen = prefix ->
            let rest = String.sub line plen (String.length line - plen) in
            (try Scanf.sscanf rest " %d" (fun kb -> kb) with _ -> 0)
        | _ -> scan ()
      in
      let kb = scan () in
      close_in ic;
      kb

(* The scale curve behind the leak fixes (heap slot clearing, tombstone
   compaction, O(1)-allocation broker fan-out, sharded credential stores):
   one full-stack world per session count N —

     enrol N principals with CIV badge appointments, activate all N at a
     relying service (wall-clocked -> activations/sec), run a heartbeat
     period of steady state, revoke sampled badges and drive each cascade
     to the dependent role's collapse (wall + virtual latency), then log
     out 90% of sessions in one storm and assert the physical heap is
     O(live timers) — the acceptance check that cancelled heartbeat
     emitters/monitors do not accumulate as tombstones.

   A separate engine-only section churns 10^6 schedule/cancel pairs to
   place the timer core itself on the curve without per-activation
   crypto dominating. Results go to BENCH_scale.json. *)
let e15 () =
  header "E15 Scale: throughput, cascade latency and memory, 10^3 to 10^6";
  (* At a ~0.5 GB live set the default major-GC pacing (space_overhead 120)
     dominates: measured on this workload it costs 2x in throughput and
     spends half the run in the kernel remapping pages. Trading ~5% RSS for
     slack is the right call at this scale; see EXPERIMENTS.md E15. *)
  Gc.set { (Gc.get ()) with Gc.space_overhead = 200 };
  let smoke = !smoke_mode in
  let counts = if smoke then [ 64; 256 ] else [ 1_000; 5_000; 20_000; 100_000 ] in
  let cascade_samples = if smoke then 4 else 32 in
  let heartbeat_period = 30.0 in

  let session_row n =
    let world =
      World.create ~seed:15
        ~monitoring:(World.Heartbeats { period = heartbeat_period; deadline = 3.0 *. heartbeat_period })
        ()
    in
    let civ = Civ.create world ~name:"civ" () in
    let svc =
      Service.create world ~name:"gate" ~policy:"initial member(u) <- *appt:badge(u)@civ ;" ()
    in
    let principals =
      Array.init n (fun i ->
          let p = Principal.create world ~name:(Printf.sprintf "p%d" i) in
          let appt =
            Civ.issue civ ~kind:"badge"
              ~args:[ Value.Id (Principal.id p) ]
              ~holder:(Principal.id p) ~holder_key:(Principal.longterm_public p) ()
          in
          Principal.grant_appointment p appt;
          (p, appt))
    in
    World.settle world;
    (* Activation storm, wall-clocked. *)
    let t0 = Unix.gettimeofday () in
    let sessions =
      Array.map
        (fun (p, _) ->
          World.run_proc world (fun () ->
              let s = Principal.start_session p in
              let rmc = ok (Principal.activate p s svc ~role:"member" ()) in
              (s, rmc)))
        principals
    in
    World.settle world;
    let activation_wall = Unix.gettimeofday () -. t0 in
    let rate = float_of_int n /. activation_wall in
    (* Steady state: one full heartbeat period of beating for every live
       credential record, wall-clocked as engine events/sec. *)
    let engine = World.engine world in
    let exec0 = Oasis_sim.Engine.events_executed engine in
    let t0 = Unix.gettimeofday () in
    World.run_until world (World.now world +. heartbeat_period);
    let sustain_wall = Unix.gettimeofday () -. t0 in
    let sustained_events =
      float_of_int (Oasis_sim.Engine.events_executed engine - exec0) /. sustain_wall
    in
    let peak_rss_kb = proc_status_kb "VmHWM" in
    let rss_kb = proc_status_kb "VmRSS" in
    (* Revocation cascades: revoke the sampled badges at the CIV in one
       batch, then step until every dependent role at the gate has
       collapsed. In heartbeat mode detection is deadline-bound, so the
       virtual latency should sit at ~deadline regardless of N — the
       flatness claim; the wall cost is amortized over the batch. *)
    let stride = max 1 (n / cascade_samples) in
    let victims = Array.init (min cascade_samples n) (fun k -> k * stride) in
    let n_victims = Array.length victims in
    let v0 = World.now world in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun i ->
        let _, appt = principals.(i) in
        ignore (Civ.revoke civ appt.Oasis_cert.Appointment.id ~reason:"scale-cascade"))
      victims;
    let all_collapsed () =
      Array.for_all
        (fun i ->
          let _, rmc = sessions.(i) in
          not (Service.is_valid_certificate svc rmc.Rmc.id))
        victims
    in
    (* Drive in one-virtual-second chunks: validity is re-checked 90-odd
       times, not once per engine event. *)
    let rec drive limit =
      if limit > 0 && not (all_collapsed ()) then begin
        World.run_until world (World.now world +. 1.0);
        drive (limit - 1)
      end
    in
    drive 400;
    if not (all_collapsed ()) then failwith "E15: sampled cascades did not collapse";
    let cascade_wall_us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int n_victims in
    let cascade_virtual_ms = (World.now world -. v0) *. 1e3 in
    (* Cancel storm: 90% of the surviving sessions log out at once. Every
       logout cancels heartbeat emitters, monitor deadlines and suspect
       timers; the physical heap must end O(live timers), not O(total ever
       scheduled) — the tombstone-compaction acceptance assertion. *)
    let victim = Array.make n false in
    Array.iter (fun i -> victim.(i) <- true) victims;
    let t0 = Unix.gettimeofday () in
    World.run_proc world (fun () ->
        Array.iteri
          (fun i (p, _) ->
            if (not victim.(i)) && i mod 10 <> 0 then
              let s, _ = sessions.(i) in
              Principal.logout p s)
          principals);
    World.settle world;
    let storm_wall = Unix.gettimeofday () -. t0 in
    let pending = Oasis_sim.Engine.pending engine in
    let heap = Oasis_sim.Engine.heap_size engine in
    if heap > (2 * pending) + 256 then
      failwith
        (Printf.sprintf "E15: heap not O(live) after cancel storm: %d slots for %d pending" heap
           pending);
    Printf.printf
      "  %7d | %9.0f act/s | %9.0f ev/s | %7.1f us %6.1f ms | %6.1f MB | %8d/%-8d %5.2fs\n" n
      rate sustained_events cascade_wall_us cascade_virtual_ms
      (float_of_int rss_kb /. 1024.0)
      heap pending storm_wall;
    Printf.sprintf
      "    { \"sessions\": %d, \"activations_per_s\": %.0f, \"activation_wall_s\": %.3f,\n\
      \      \"sustained_events_per_s\": %.0f, \"cascade_wall_us\": %.1f,\n\
      \      \"cascade_virtual_ms\": %.2f, \"rss_mb\": %.1f, \"peak_rss_mb\": %.1f,\n\
      \      \"heap_after_storm\": %d, \"pending_after_storm\": %d }"
      n rate activation_wall sustained_events cascade_wall_us cascade_virtual_ms
      (float_of_int rss_kb /. 1024.0)
      (float_of_int peak_rss_kb /. 1024.0)
      heap pending
  in

  (* Engine-only churn: the timer core at 10^6 without crypto in the way.
     Schedule/cancel pairs in heartbeat-re-arm rhythm with a bounded live
     set; the heap must stay O(live) throughout. *)
  let timer_churn total =
    let engine = Oasis_sim.Engine.create () in
    let live = Queue.create () in
    let t0 = Unix.gettimeofday () in
    for i = 1 to total do
      let h =
        Oasis_sim.Engine.schedule engine ~after:(1.0 +. float_of_int (i land 1023)) (fun () -> ())
      in
      Queue.push h live;
      if Queue.length live > 4096 then Oasis_sim.Engine.cancel engine (Queue.pop live)
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let pending = Oasis_sim.Engine.pending engine in
    let heap = Oasis_sim.Engine.heap_size engine in
    if heap > (2 * pending) + 256 then
      failwith (Printf.sprintf "E15: churn heap %d not O(live %d)" heap pending);
    let ops = float_of_int (2 * total) /. wall in
    Printf.printf "  churn %8d timers: %12.0f schedule+cancel ops/s, heap %d for %d live\n" total
      ops heap pending;
    (total, ops, heap, pending)
  in

  Printf.printf "  full stack, heartbeats %.0fs; cascade over %d sampled revocations\n\n"
    heartbeat_period cascade_samples;
  Printf.printf "  %7s | %11s | %11s | %17s | %9s | %s\n" "N" "activation" "sustained"
    "cascade wall/virt" "rss" "heap/pending, storm";
  let rows = List.map session_row counts in
  Printf.printf "\n";
  let churn_total, churn_ops, churn_heap, churn_pending =
    timer_churn (if smoke then 10_000 else 1_000_000)
  in
  let out = open_out "BENCH_scale.json" in
  Printf.fprintf out
    "{\n\
    \  \"benchmark\": \"scale_curve\",\n\
    \  \"generated_by\": \"dune exec bench/main.exe -- E15%s\",\n\
    \  \"params\": { \"heartbeat_period_s\": %.0f, \"cascade_samples\": %d, \"smoke\": %b },\n\
    \  \"claim\": \"cascade detection stays deadline-bound, memory stays ~5KB/session, and the timer heap stays O(live timers) from 10^3 to 10^5 sessions and 10^6 scheduled timers\",\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"timer_churn\": { \"timers\": %d, \"schedule_cancel_ops_per_s\": %.0f,\n\
    \                   \"heap_final\": %d, \"pending_final\": %d }\n\
     }\n"
    (if smoke then " --smoke" else "")
    heartbeat_period cascade_samples smoke
    (String.concat ",\n" rows)
    churn_total churn_ops churn_heap churn_pending;
  close_out out;
  Printf.printf "\n  results written to BENCH_scale.json\n"

(* ------------------------------------------------------------------ *)
(* E16 — trust: score-gated revocation, collusion ablation, chain scale *)
(* ------------------------------------------------------------------ *)

(* Four measurements into BENCH_trust.json (DESIGN.md §15, Sect. 6):

   (a) live score crossing — a role gated on [env:trust_score(u) >= 0.6]
       collapses when breach certificates push the subject's score under
       the gate, through the same env.change -> svc.recheck -> svc.revoke
       trace path a fact change drives (E11's causal-order assertion);
   (b) collusion ablation — the marketplace simulation with colluders
       padding fabricated histories, with and without registrar
       discounting: discounting collapses the rogue registrar's weight
       and restores decision accuracy;
   (c) Byzantine minority — a minority of breach-reporting registrars
       cannot flip a proceed verdict backed by a majority of genuine
       fulfilments: (s+1)/(s+f+2) > θ whenever s > f at equal weights;
   (d) chain at scale — append 10^4 decisions, verify the full chain
       (in memory and from the textual export), and prove a single
       flipped bit anywhere in the export breaks verification. *)
let e16 () =
  header "E16 Trust: live audit trail, score-gated revocation, collusion ablation";
  let smoke = !smoke_mode in

  (* (a) the live crossing. Two fulfilled interactions lift the vendor to
     (2+1)/(2+2) = 0.75 and the gate admits it; breaches then drag the
     score under 0.6 and the trust-change poke revokes, no request in
     flight. *)
  let world = World.create ~seed:16 () in
  let sink, captured = Obs.memory_sink () in
  Obs.attach (World.obs world) sink;
  let civ = Civ.create world ~name:"civ" () in
  let svc =
    Service.create world ~name:"market"
      ~policy:"initial trusted(u) <- *env:trust_score(u) >= 0.6 ;" ()
  in
  let p = Principal.create world ~name:"vendor" in
  let pid = Principal.id p and sid = Service.id svc in
  let interact outcome =
    ignore
      (Civ.record_interaction civ ~client:pid ~server:sid ~client_outcome:outcome
         ~server_outcome:Audit.Fulfilled);
    World.settle world
  in
  interact Audit.Fulfilled;
  interact Audit.Fulfilled;
  World.run_proc world (fun () ->
      let session = Principal.start_session p in
      ignore
        (ok (Principal.activate p session svc ~role:"trusted" ~args:[ Some (Value.Id pid) ] ())));
  assert (List.length (Service.active_roles svc) = 1);
  let score_at_grant = World.trust_score world pid in
  let breaches = ref 0 in
  while List.length (Service.active_roles svc) > 0 && !breaches < 10 do
    incr breaches;
    interact Audit.Breached
  done;
  assert (List.length (Service.active_roles svc) = 0);
  let score_at_revoke = World.trust_score world pid in
  let events = captured () in
  let seq_of_first name =
    match List.find_opt (fun (e : Obs.event) -> String.equal e.Obs.name name) events with
    | Some e -> e.Obs.seq
    | None -> failwith ("E16: no " ^ name ^ " event in the trace")
  in
  let revoke_seq = seq_of_first "svc.revoke" in
  let last_before name limit =
    List.fold_left
      (fun acc (e : Obs.event) ->
        if String.equal e.Obs.name name && e.Obs.seq < limit then Some e.Obs.seq else acc)
      None events
  in
  let recheck_seq =
    match last_before "svc.recheck" revoke_seq with
    | Some s -> s
    | None -> failwith "E16: no svc.recheck before the revocation"
  in
  let change_seq =
    match last_before "env.change" recheck_seq with
    | Some s -> s
    | None -> failwith "E16: no env.change before the recheck"
  in
  assert (change_seq < recheck_seq && recheck_seq < revoke_seq);
  Printf.printf
    "  live crossing: granted at score %.3f, revoked at %.3f after %d breach(es)\n\
    \  causal order OK: env.change #%d -> svc.recheck #%d -> svc.revoke #%d\n\n"
    score_at_grant score_at_revoke !breaches change_seq recheck_seq revoke_seq;

  (* (b) collusion, with and without discounting. *)
  let rounds = if smoke then 8 else 30 in
  let collusion discounting =
    let params =
      {
        Simulation.default_params with
        colluder_fraction = 0.3;
        colluder_padding = 3;
        rounds;
        discounting;
        seed = 16;
      }
    in
    let r = Simulation.run params in
    let last = List.nth r.Simulation.per_round (rounds - 1) in
    (r.Simulation.final_accuracy, last.Simulation.mean_rogue_weight)
  in
  let acc_disc, rogue_disc = collusion true in
  let acc_nodisc, rogue_nodisc = collusion false in
  Printf.printf "  %-24s | %14s | %12s\n" "collusion (30% padded)" "final accuracy" "rogue weight";
  Printf.printf "  %-24s | %14.3f | %12.3f\n" "discounting on" acc_disc rogue_disc;
  Printf.printf "  %-24s | %14.3f | %12.3f\n\n" "discounting off" acc_nodisc rogue_nodisc;
  assert (acc_disc >= acc_nodisc);
  assert (rogue_disc < rogue_nodisc);

  (* (c) a Byzantine minority of registrars reports breaches; the majority
     history still clears the default 0.5 threshold. *)
  let rng = Rng.create 16 in
  let honest = Registrar.create rng ~name:"honest-dom" () in
  let byz1 = Registrar.create rng ~name:"byz-1" () in
  let byz2 = Registrar.create rng ~name:"byz-2" () in
  let subject = Ident.make "subject" 0 and peer = Ident.make "peer" 0 in
  let record reg outcome at =
    Registrar.record_interaction reg ~client:subject ~server:peer ~at ~client_outcome:outcome
      ~server_outcome:Audit.Fulfilled
  in
  let genuine = List.init 8 (fun i -> record honest Audit.Fulfilled (float_of_int i)) in
  let smears =
    [ record byz1 Audit.Breached 100.0; record byz2 Audit.Breached 101.0;
      record byz1 Audit.Breached 102.0 ]
  in
  let assessor = Assess.create () in
  let validate cert =
    List.exists
      (fun reg -> Ident.equal (Registrar.id reg) cert.Audit.registrar && Registrar.validate reg cert)
      [ honest; byz1; byz2 ]
  in
  let verdict = Assess.assess assessor ~validate ~subject ~presented:(genuine @ smears) in
  Printf.printf
    "  Byzantine minority: 8 genuine fulfilments vs 3 smears -> score %.3f, proceed %b\n\n"
    verdict.Assess.score verdict.Assess.proceed;
  assert verdict.Assess.proceed;

  (* (d) the chain at scale. *)
  let n = if smoke then 1000 else 10000 in
  let log = Dlog.create ~service:(Ident.make "market" 0) in
  let t0 = Sys.time () in
  for i = 0 to n - 1 do
    ignore
      (Dlog.append log ~at:(float_of_int i) ~decision:(if i mod 7 = 0 then Dlog.Deny else Dlog.Grant)
         ~principal:pid
         ~action:(Printf.sprintf "invoke:op%d" (i mod 13))
         ~args:[ Value.Int i ]
         ~rule:"priv op(u) <- trusted(u) ;"
         ~creds:[ Ident.make "cert" i ]
         ~env_facts:[ "trust_score(u, 0.6)" ] ())
  done;
  let append_s = Sys.time () -. t0 in
  let verify_hist = Obs.histogram (World.obs world) "audit.verify_ms" in
  let t0 = Sys.time () in
  let verified = Dlog.verify log in
  let verify_s = Sys.time () -. t0 in
  Obs.Histogram.observe verify_hist (verify_s *. 1e3);
  assert (verified = Ok n);
  let exported = Dlog.export log in
  let t0 = Sys.time () in
  let reverified = Dlog.verify_string exported in
  let reverify_s = Sys.time () -. t0 in
  Obs.Histogram.observe verify_hist (reverify_s *. 1e3);
  assert (reverified = Ok n);
  (* Flip one bit at a handful of positions spread across the export —
     header, early payload, a hash, the tail — every one must be caught. *)
  let len = String.length exported in
  let tamper_checks = [ 3; len / 5; len / 2; (len / 3) * 2; len - 2 ] in
  let caught =
    List.for_all
      (fun byte -> Result.is_error (Dlog.verify_string (Dlog.tamper exported ~byte)))
      tamper_checks
  in
  assert caught;
  Printf.printf "  %-28s | %12s\n" "chain of 10^4 decisions" "seconds";
  Printf.printf "  %-28s | %12.4f\n" (Printf.sprintf "append x%d" n) append_s;
  Printf.printf "  %-28s | %12.4f\n" "verify (in memory)" verify_s;
  Printf.printf "  %-28s | %12.4f\n" "verify (textual export)" reverify_s;
  Printf.printf "  tamper drill: %d single-bit flips, all detected\n" (List.length tamper_checks);

  let out = open_out "BENCH_trust.json" in
  Printf.fprintf out
    "{\n\
    \  \"benchmark\": \"trust_audit\",\n\
    \  \"generated_by\": \"dune exec bench/main.exe -- E16%s\",\n\
    \  \"params\": { \"chain_records\": %d, \"collusion_rounds\": %d, \"smoke\": %b },\n\
    \  \"claim\": \"trust-score crossings revoke live through the Fig. 5 trace path; registrar \
     discounting defeats collusion; a Byzantine minority cannot flip a proceed verdict; one \
     flipped bit anywhere in an exported decision chain breaks verification\",\n\
    \  \"live_crossing\": { \"score_at_grant\": %.4f, \"score_at_revoke\": %.4f, \"breaches\": \
     %d, \"env_change_seq\": %d, \"recheck_seq\": %d, \"revoke_seq\": %d },\n\
    \  \"collusion\": {\n\
    \    \"discounting_on\": { \"final_accuracy\": %.4f, \"rogue_weight\": %.4f },\n\
    \    \"discounting_off\": { \"final_accuracy\": %.4f, \"rogue_weight\": %.4f }\n\
    \  },\n\
    \  \"byzantine_minority\": { \"genuine\": %d, \"smears\": %d, \"score\": %.4f, \"proceed\": \
     %b },\n\
    \  \"chain\": { \"records\": %d, \"append_seconds\": %.6f, \"verify_seconds\": %.6f, \
     \"verify_export_seconds\": %.6f, \"tamper_flips\": %d, \"tamper_detected\": %b }\n\
     }\n"
    (if smoke then " --smoke" else "")
    n rounds smoke score_at_grant score_at_revoke !breaches change_seq recheck_seq revoke_seq
    acc_disc rogue_disc acc_nodisc rogue_nodisc (List.length genuine) (List.length smears)
    verdict.Assess.score verdict.Assess.proceed n append_s verify_s reverify_s
    (List.length tamper_checks) caught;
  close_out out;
  Printf.printf "\n  results written to BENCH_trust.json\n"

(* ------------------------------------------------------------------ *)
(* E17 — trust robustness: O(1) decayed scoring, hysteresis, churn     *)
(* ------------------------------------------------------------------ *)

(* Four measurements into BENCH_trust_decay.json (DESIGN.md §16):

   (a) scoring cost — fold 10^4 interactions into the per-subject running
       aggregate (observe + cached_score each step, both O(1)) and compare
       against the naive quadratic baseline that re-assesses the whole
       wallet per interaction; the cached score must equal a full recompute
       to 1e-9 and beat the naive per-interaction cost by 5x or more;
   (b) hysteresis ablation — the same churn schedules with delta = 0 must
       revoke strictly more often than with the band on;
   (c) chain ablation — with the durable export tampered mid-run,
       fail-closed restarts refuse every corrupted chain while the
       fail-open ablation admits every one of them;
   (d) the churn summary itself — interactions, mid-issuance crashes, gate
       restarts and zero invariant violations across all seeds. *)
let e17 () =
  header "E17 Trust robustness: decayed scoring cost, hysteresis and fail-open ablations";
  let smoke = !smoke_mode in

  (* (a) incremental vs naive quadratic scoring. *)
  let n = 10_000 in
  let n_naive = if smoke then 300 else 2_000 in
  let rng = Rng.create 17 in
  let registrar = Registrar.create rng ~name:"civ-reg" () in
  let subject = Ident.make "subject" 0 and peer = Ident.make "peer" 0 in
  let at i = float_of_int i in
  let certs =
    Array.init n (fun i ->
        Registrar.record_interaction registrar ~client:subject ~server:peer ~at:(at i)
          ~client_outcome:(if i mod 5 = 0 then Audit.Breached else Audit.Fulfilled)
          ~server_outcome:Audit.Fulfilled)
  in
  let validate _ = true in
  let lambda = 0.002 in
  let fast = Assess.create ~decay_rate:lambda () in
  (* A remembered assess over the (still empty) wallet seeds the running
     aggregate; from then on every interaction is one [observe] plus one
     [cached_score] — no wallet traversal. *)
  ignore (Assess.assess_at ~remember:true fast ~now:0.0 ~validate ~subject ~presented:[]);
  let t0 = Sys.time () in
  Array.iteri
    (fun i c ->
      Assess.observe fast ~subject ~now:(at i) c;
      ignore (Assess.cached_score fast ~subject ~now:(at i)))
    certs;
  let incr_s = Sys.time () -. t0 in
  let naive = Assess.create ~decay_rate:lambda () in
  let wallet = ref [] in
  let t0 = Sys.time () in
  for i = 0 to n_naive - 1 do
    wallet := certs.(i) :: !wallet;
    ignore (Assess.assess_at naive ~now:(at i) ~validate ~subject ~presented:!wallet)
  done;
  let naive_s = Sys.time () -. t0 in
  let last = at (n - 1) in
  let cached =
    match Assess.cached_score fast ~subject ~now:last with
    | Some s -> s
    | None -> failwith "E17: no cached score after 10^4 observations"
  in
  let full =
    (Assess.assess_at
       (Assess.create ~decay_rate:lambda ())
       ~now:last ~validate ~subject ~presented:(Array.to_list certs))
      .Assess.score
  in
  let delta = Float.abs (cached -. full) in
  assert (delta < 1e-9);
  let per_incr = incr_s /. float_of_int n in
  let per_naive = naive_s /. float_of_int n_naive in
  (* The non-quadratic claim: the naive baseline's per-interaction cost is
     proportional to the wallet (avg n_naive/2 certificates); the running
     aggregate's is constant. 5x is a very loose floor for that gap. *)
  assert (per_incr *. 5.0 < per_naive);
  Printf.printf "  %-38s | %12s | %14s\n" "scoring 10^4 interactions" "total s" "per-interaction";
  Printf.printf "  %-38s | %12.4f | %14.2e\n"
    (Printf.sprintf "running aggregate (x%d)" n)
    incr_s per_incr;
  Printf.printf "  %-38s | %12.4f | %14.2e\n"
    (Printf.sprintf "naive full re-assess (x%d)" n_naive)
    naive_s per_naive;
  Printf.printf "  cached vs full recompute at t=%.0f: |%.9f - %.9f| = %.1e\n\n" last cached full
    delta;

  (* (b)-(d) the churn harness, banded vs flappy, fail-closed vs fail-open. *)
  let n_seeds = if smoke then 6 else 12 in
  let steps = if smoke then 20 else 30 in
  let seeds = List.init n_seeds (fun i -> i + 1) in
  let churn ~band ~tamper ~fail_open seed =
    Churn.run
      { Churn.default_config with seed; steps; band; tamper; fail_open_chain = fail_open }
  in
  let banded = List.map (churn ~band:0.1 ~tamper:false ~fail_open:false) seeds in
  let flappy = List.map (churn ~band:0.0 ~tamper:false ~fail_open:false) seeds in
  let sum f l = List.fold_left (fun acc s -> acc + f s) 0 l in
  let deacts = sum (fun (s : Churn.summary) -> s.Churn.cascade_deactivations) in
  let violations = sum (fun (s : Churn.summary) -> List.length s.Churn.violations) in
  assert (violations banded = 0);
  assert (violations flappy = 0);
  let banded_deacts = deacts banded and flappy_deacts = deacts flappy in
  let suppressed = sum (fun (s : Churn.summary) -> s.Churn.flaps_suppressed) banded in
  assert (suppressed > 0);
  assert (flappy_deacts > banded_deacts);
  Printf.printf "  %-38s | %12s | %12s\n" "hysteresis ablation" "revocations" "flaps held";
  Printf.printf "  %-38s | %12d | %12d\n" "band 0.10" banded_deacts suppressed;
  Printf.printf "  %-38s | %12d | %12d\n\n" "band 0.00 (ablation)" flappy_deacts 0;
  let closed = List.map (churn ~band:0.1 ~tamper:true ~fail_open:false) seeds in
  let opened = List.map (churn ~band:0.1 ~tamper:true ~fail_open:true) seeds in
  let count f l = List.length (List.filter f l) in
  let tampered_closed = count (fun (s : Churn.summary) -> s.Churn.tampered) closed in
  let detected =
    count (fun (s : Churn.summary) -> s.Churn.tampered && s.Churn.tamper_detected) closed
  in
  let tampered_open = count (fun (s : Churn.summary) -> s.Churn.tampered) opened in
  let admitted =
    count (fun (s : Churn.summary) -> s.Churn.tampered && not s.Churn.tamper_detected) opened
  in
  assert (violations closed = 0);
  assert (tampered_closed > 0);
  assert (detected = tampered_closed);
  assert (tampered_open > 0);
  assert (admitted = tampered_open);
  Printf.printf "  %-38s | %12s | %12s\n" "durable-chain tamper drill" "tampered" "outcome";
  Printf.printf "  %-38s | %12d | %9d refused\n" "fail-closed resume" tampered_closed detected;
  Printf.printf "  %-38s | %12d | %9d admitted\n\n" "fail-open ablation" tampered_open admitted;
  let interactions = sum (fun (s : Churn.summary) -> s.Churn.interactions) banded in
  let mid_crashes = sum (fun (s : Churn.summary) -> s.Churn.mid_crashes) banded in
  let gate_restarts = sum (fun (s : Churn.summary) -> s.Churn.gate_restarts) banded in
  let grants = sum (fun (s : Churn.summary) -> s.Churn.grants) banded in
  Printf.printf
    "  churn over %d seeds x %d steps: %d interactions, %d mid-issuance crashes, %d gate \
     restarts, %d grants, 0 violations\n"
    n_seeds steps interactions mid_crashes gate_restarts grants;

  let out = open_out "BENCH_trust_decay.json" in
  Printf.fprintf out
    "{\n\
    \  \"benchmark\": \"trust_decay\",\n\
    \  \"generated_by\": \"dune exec bench/main.exe -- E17%s\",\n\
    \  \"params\": { \"interactions\": %d, \"naive_interactions\": %d, \"decay_rate\": %.4f, \
     \"seeds\": %d, \"steps\": %d, \"smoke\": %b },\n\
    \  \"claim\": \"per-subject running aggregates score 10^4 decayed interactions in O(1) each \
     and match a full recompute; the hysteresis band strictly reduces revocations under churn; \
     fail-closed restarts refuse every tampered durable chain while the fail-open ablation \
     admits them all\",\n\
    \  \"scoring\": { \"interactions\": %d, \"aggregate_seconds\": %.6f, \
     \"aggregate_per_interaction\": %.3e, \"naive_interactions\": %d, \"naive_seconds\": %.6f, \
     \"naive_per_interaction\": %.3e, \"cached_vs_full_delta\": %.3e },\n\
    \  \"hysteresis\": { \"band\": 0.10, \"banded_revocations\": %d, \"flappy_revocations\": %d, \
     \"flaps_suppressed\": %d },\n\
    \  \"chain\": { \"tampered_runs\": %d, \"fail_closed_refused\": %d, \"fail_open_admitted\": \
     %d },\n\
    \  \"churn\": { \"seeds\": %d, \"steps\": %d, \"interactions\": %d, \"mid_issuance_crashes\": \
     %d, \"gate_restarts\": %d, \"grants\": %d, \"violations\": %d }\n\
     }\n"
    (if smoke then " --smoke" else "")
    n n_naive lambda n_seeds steps smoke n incr_s per_incr n_naive naive_s per_naive delta
    banded_deacts flappy_deacts suppressed tampered_closed detected admitted n_seeds steps
    interactions mid_crashes gate_restarts grants (violations banded);
  close_out out;
  Printf.printf "\n  results written to BENCH_trust_decay.json\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7);
    ("E8", e8); ("E9", e9); ("E11", e11); ("E12", e12); ("E13", e13); ("E15", e15); ("E16", e16);
    ("E17", e17);
  ]

let () =
  let requested =
    List.filter
      (fun arg ->
        if String.equal arg "--smoke" then begin
          smoke_mode := true;
          false
        end
        else true)
      (List.tl (Array.to_list Sys.argv))
  in
  let selected =
    match requested with
    | [] -> experiments
    | names -> List.filter (fun (name, _) -> List.mem name names) experiments
  in
  if selected = [] then begin
    Printf.eprintf "unknown experiment; available: %s\n"
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  Printf.printf "OASIS reproduction benchmark harness (see DESIGN.md section 4, EXPERIMENTS.md)\n";
  List.iter (fun (_, run) -> run ()) selected
