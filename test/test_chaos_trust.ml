(* Trust-churn chaos (DESIGN.md §16), driving the shared Churn core:
   randomised interactions flap a score across a hysteresis-banded gate
   while the registrar crashes mid-issuance, partitions isolate the trust
   owner, and the gate crash/restarts through its durable decision-log
   chain. The real configuration must hold every invariant on every seed;
   the ablations must be caught by the same schedules — a δ=0 gate flaps
   strictly more, and a fail-open chain admits the tampering the
   fail-closed gate refuses. *)

module Churn = Oasis_script.Churn

(* CHAOS_QUICK=1 (make chaos-trust's sub-minute mode) trims seeds and
   steps but keeps every assertion. *)
let quick =
  match Sys.getenv_opt "CHAOS_QUICK" with Some ("1" | "true") -> true | _ -> false

let n_seeds = if quick then 12 else 48
let steps = if quick then 20 else 30

let config seed = { Churn.default_config with seed; steps }

let test_invariants_hold () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:n_seeds ~name:"trust churn keeps gate+chain+anti-entropy"
       QCheck.(int_range 1 100_000)
       (fun seed ->
         let s = Churn.run (config seed) in
         match s.Churn.violations with
         | [] -> true
         | v :: _ -> QCheck.Test.fail_reportf "seed %d: %s" seed v))

(* Hysteresis ablation: the same schedules with δ=0 must revoke at least
   as often on every seed, strictly more in aggregate — and the band must
   actually absorb flaps somewhere (vacuity guard). *)
let test_hysteresis_bounds_revocations () =
  let banded = ref 0 and flappy = ref 0 and suppressed = ref 0 in
  for seed = 1 to n_seeds do
    let with_band = Churn.run (config seed) in
    let without = Churn.run { (config seed) with Churn.band = 0.0 } in
    banded := !banded + with_band.Churn.cascade_deactivations;
    flappy := !flappy + without.Churn.cascade_deactivations;
    suppressed := !suppressed + with_band.Churn.flaps_suppressed
  done;
  Alcotest.(check bool)
    (Printf.sprintf "band suppressed some flaps (%d)" !suppressed)
    true (!suppressed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "δ=0 revokes strictly more (%d banded vs %d flappy)" !banded !flappy)
    true
    (!flappy > !banded)

(* Tamper detection: corrupting the durable export between crash and
   restart must refuse the restart (fail-closed), and the fail-open
   ablation must admit exactly what fail-closed refused. *)
let test_tamper_detected_fail_closed () =
  let detected = ref 0 and tampered = ref 0 in
  for seed = 1 to n_seeds do
    let s = Churn.run { (config seed) with Churn.tamper = true } in
    (match s.Churn.violations with
    | [] -> ()
    | v :: _ -> Alcotest.failf "seed %d: %s" seed v);
    if s.Churn.tampered then begin
      incr tampered;
      if s.Churn.tamper_detected then incr detected
    end
  done;
  Alcotest.(check bool) "some seeds actually tampered" true (!tampered > 0);
  Alcotest.(check int)
    (Printf.sprintf "every tampered chain was refused (%d/%d)" !detected !tampered)
    !tampered !detected

let test_tamper_admitted_fail_open () =
  let admitted = ref 0 and tampered = ref 0 in
  for seed = 1 to n_seeds do
    let s =
      Churn.run { (config seed) with Churn.tamper = true; Churn.fail_open_chain = true }
    in
    if s.Churn.tampered then begin
      incr tampered;
      if not s.Churn.tamper_detected then incr admitted
    end
  done;
  Alcotest.(check bool) "some seeds actually tampered" true (!tampered > 0);
  Alcotest.(check int)
    (Printf.sprintf "fail-open admits every tampered chain (%d/%d)" !admitted !tampered)
    !tampered !admitted

let test_deterministic () =
  let seeds = if quick then [ 5; 23 ] else [ 5; 23; 77 ] in
  let traces =
    List.map
      (fun seed ->
        let a = Churn.trace_line (Churn.run (config seed)) in
        let b = Churn.trace_line (Churn.run (config seed)) in
        Alcotest.(check string) (Printf.sprintf "seed %d replays identically" seed) a b;
        a)
      seeds
  in
  (* Vacuity guard: the schedules must issue certificates and exercise the
     mid-issuance crash path somewhere. *)
  let parsed field t =
    List.exists
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
            String.sub tok 0 i = field
            && (match int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1)) with
               | Some v -> v > 0
               | None -> false)
        | None -> false)
      (String.split_on_char ' ' t)
  in
  Alcotest.(check bool)
    (Printf.sprintf "churn issued certificates (%s)" (String.concat " | " traces))
    true
    (List.exists (parsed "n") traces);
  Alcotest.(check bool)
    (Printf.sprintf "churn crashed mid-issuance somewhere (%s)" (String.concat " | " traces))
    true
    (List.exists (parsed "mid") traces)

let suite =
  ( "chaos-trust",
    [
      Alcotest.test_case "churn schedules keep invariants (qcheck)" `Slow test_invariants_hold;
      Alcotest.test_case "hysteresis bounds revocations vs δ=0" `Slow
        test_hysteresis_bounds_revocations;
      Alcotest.test_case "tampered chain refused fail-closed" `Slow test_tamper_detected_fail_closed;
      Alcotest.test_case "tampered chain admitted fail-open" `Slow test_tamper_admitted_fail_open;
      Alcotest.test_case "churn runs are deterministic" `Quick test_deterministic;
    ] )
