(* End-to-end adversarial scenarios (Sect. 4, 4.1): theft, forgery,
   challenge-response, validation caching. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Env = Oasis_policy.Env
module Value = Oasis_util.Value
module Rmc = Oasis_cert.Rmc
module Appointment = Oasis_cert.Appointment
open Fixtures

let creds_of ?(rmcs = []) ?(appointments = []) () = { Protocol.rmcs; appointments }

let test_stolen_rmc_fails () =
  (* Mallory steals alice's doctor RMC off the wire and presents it under
     her own session: the principal-key binding defeats her. *)
  let t = make () in
  let session = alice_treating t ~patient:7 in
  let doctor_rmc =
    List.find (fun (r : Rmc.t) -> r.role = "doctor") (Principal.session_rmcs session)
  in
  let mallory = Principal.create t.world ~name:"mallory" in
  Env.assert_fact (Service.env t.hospital) "assigned"
    [ Value.Id (Principal.id mallory); Value.Int 7 ];
  World.run_proc t.world (fun () ->
      let sm = Principal.start_session mallory in
      match
        Principal.activate_with mallory sm t.hospital ~role:"treating_doctor"
          ~creds:(creds_of ~rmcs:[ doctor_rmc ] ()) ()
      with
      | Error Protocol.No_proof -> ()
      | Ok _ -> Alcotest.fail "stolen RMC accepted"
      | Error d -> Alcotest.failf "unexpected denial: %s" (Protocol.denial_to_string d));
  Alcotest.(check bool) "validation failure recorded" true
    ((Service.stats t.hospital).Service.validation_failures >= 1)

let test_stolen_rmc_fails_cross_service () =
  (* Same theft, but presented at a *different* service which validates by
     callback to the issuer — the issuer checks the binding. *)
  let t = make () in
  let session = alice_treating t ~patient:7 in
  let doctor_rmc =
    List.find (fun (r : Rmc.t) -> r.role = "doctor") (Principal.session_rmcs session)
  in
  let clinic =
    Service.create t.world ~name:"clinic" ~policy:"consultant(u) <- doctor(u)@hospital;" ()
  in
  let mallory = Principal.create t.world ~name:"mallory" in
  World.run_proc t.world (fun () ->
      let sm = Principal.start_session mallory in
      (match
         Principal.activate_with mallory sm clinic ~role:"consultant"
           ~creds:(creds_of ~rmcs:[ doctor_rmc ] ()) ()
       with
      | Error Protocol.No_proof -> ()
      | Ok _ -> Alcotest.fail "stolen RMC accepted remotely"
      | Error d -> Alcotest.failf "unexpected: %s" (Protocol.denial_to_string d));
      (* Alice herself can use it remotely — same session key. *)
      match
        Principal.activate t.alice session clinic ~role:"consultant" ()
      with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "legitimate remote use denied: %s" (Protocol.denial_to_string d))

let test_forged_rmc_fails () =
  (* Mallory crafts an RMC with her own secret. *)
  let t = make () in
  let mallory = Principal.create t.world ~name:"mallory" in
  World.run_proc t.world (fun () ->
      let sm = Principal.start_session mallory in
      let forged =
        Rmc.issue
          ~secret:(Oasis_crypto.Secret.of_string "guessed-secret")
          ~principal_key:(Principal.session_key sm)
          ~id:(Oasis_util.Ident.make "cert" 424242) ~issuer:(Service.id t.hospital)
          ~role:"doctor"
          ~args:[ Value.Id (Principal.id mallory) ]
          ~issued_at:(World.now t.world)
      in
      Env.assert_fact (Service.env t.hospital) "assigned"
        [ Value.Id (Principal.id mallory); Value.Int 7 ];
      match
        Principal.activate_with mallory sm t.hospital ~role:"treating_doctor"
          ~creds:(creds_of ~rmcs:[ forged ] ()) ()
      with
      | Error Protocol.No_proof -> ()
      | Ok _ -> Alcotest.fail "forged RMC accepted"
      | Error d -> Alcotest.failf "unexpected: %s" (Protocol.denial_to_string d))

let test_stolen_appointment_without_challenge () =
  (* Within a firewall-protected domain OASIS may run without
     challenge-response (Sect. 4.1): then a stolen appointment certificate
     *does* pass — the paper's mitigation is well-designed activation rules.
     Verify the documented behaviour, then the challenge-enabled defence. *)
  let t = make () in
  let mallory = Principal.create t.world ~name:"mallory" in
  Principal.grant_appointment mallory t.alice_qualification;
  World.run_proc t.world (fun () ->
      let sm = Principal.start_session mallory in
      (* logged_in requires an employee appointment for mallory — she only
         stole the qualification, so login fails; steal employee too. *)
      let alice_employee =
        List.find
          (fun (a : Appointment.t) -> a.kind = "employee")
          (Principal.appointments t.alice)
      in
      Principal.grant_appointment mallory alice_employee;
      (* The appointment parametrises roles with *alice's* id, so mallory
         obtains a role claiming to be alice — exactly the exposure the
         paper accepts inside a trusted domain. *)
      match Principal.activate mallory sm t.hospital ~role:"logged_in" () with
      | Ok rmc ->
          Alcotest.(check bool) "role parametrised by victim id" true
            (List.exists (Value.equal (Value.Id (Principal.id t.alice))) rmc.Rmc.args)
      | Error d -> Alcotest.failf "expected acceptance without challenge: %s"
            (Protocol.denial_to_string d))

let test_challenge_blocks_session_key_mismatch () =
  (* With challenge_on_activation, a request claiming a session key whose
     private half the requester lacks is refused. *)
  let config = { Service.default_config with challenge_on_activation = true } in
  let t = make ~config () in
  World.run_proc t.world (fun () ->
      let s = Principal.start_session t.alice in
      (* Honest activation passes the challenge. *)
      (match Principal.activate t.alice s t.hospital ~role:"logged_in" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "honest challenge failed: %s" (Protocol.denial_to_string d));
      (* A raw request with a fabricated session key fails the challenge. *)
      let reply =
        Oasis_sim.Network.rpc (World.network t.world) ~src:(Principal.id t.alice)
          ~dst:(Service.id t.hospital)
          (Protocol.Activate
             {
               principal = Principal.id t.alice;
               session_key = "12345";
               role = "logged_in";
               requested = [];
               creds = { Protocol.rmcs = []; appointments = Principal.appointments t.alice };
             })
      in
      match reply with
      | Protocol.Denied Protocol.Challenge_failed -> ()
      | _ -> Alcotest.fail "expected Challenge_failed")

let test_challenge_on_invocation () =
  let config = { Service.default_config with challenge_on_invocation = true } in
  let t = make ~config () in
  let session = alice_treating t ~patient:7 in
  World.run_proc t.world (fun () ->
      match
        Principal.invoke t.alice session t.hospital ~privilege:"read_record"
          ~args:[ Value.Id (Principal.id t.alice); Value.Int 7 ]
      with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "challenged invocation failed: %s" (Protocol.denial_to_string d))

let test_holder_challenge_blocks_stolen_appointment () =
  (* With challenge_appointment_holders, the Sect. 4.1 defence closes the
     hole demonstrated above: mallory cannot answer a challenge against
     alice's long-lived key, so the stolen certificates are dropped. *)
  let config = { Service.default_config with challenge_appointment_holders = true } in
  let t = make ~config () in
  let mallory = Principal.create t.world ~name:"mallory" in
  List.iter (Principal.grant_appointment mallory) (Principal.appointments t.alice);
  World.run_proc t.world (fun () ->
      let sm = Principal.start_session mallory in
      (match Principal.activate mallory sm t.hospital ~role:"logged_in" () with
      | Error Protocol.No_proof -> ()
      | Ok _ -> Alcotest.fail "stolen appointment passed holder challenge"
      | Error d -> Alcotest.failf "unexpected: %s" (Protocol.denial_to_string d));
      (* Alice, holding the key, still logs in. *)
      let sa = Principal.start_session t.alice in
      match Principal.activate t.alice sa t.hospital ~role:"logged_in" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "rightful holder denied: %s" (Protocol.denial_to_string d))

let test_tampered_rmc_rejected_by_issuer_callback () =
  (* A certificate with edited parameter fields fails validation even when
     presented at a remote service (the issuer recomputes the MAC). *)
  let t = make () in
  let session = alice_treating t ~patient:7 in
  let treating =
    List.find (fun (r : Rmc.t) -> r.role = "treating_doctor") (Principal.session_rmcs session)
  in
  let clinic =
    Service.create t.world ~name:"clinic"
      ~policy:"records_for(p) <- treating_doctor(d, p)@hospital;" ()
  in
  let tampered = Rmc.with_args treating [ Value.Id (Principal.id t.alice); Value.Int 999 ] in
  World.run_proc t.world (fun () ->
      match
        Principal.activate_with t.alice session clinic ~role:"records_for"
          ~creds:(creds_of ~rmcs:[ tampered ] ()) ()
      with
      | Error Protocol.No_proof -> ()
      | Ok _ -> Alcotest.fail "tampered RMC accepted"
      | Error d -> Alcotest.failf "unexpected: %s" (Protocol.denial_to_string d))

(* ---------------- Validation caching (Sect. 4, E3) ---------------- *)

let clinic_policy = "consultant(u) <- *doctor(u)@hospital;"

let test_cache_saves_callbacks () =
  let t = make () in
  let session = alice_treating t ~patient:7 in
  (* Measures the legacy callback economics; offline verification would
     answer every presentation with zero callbacks. *)
  let config = { Service.default_config with offline_verify = false } in
  let clinic = Service.create t.world ~name:"clinic" ~config ~policy:clinic_policy () in
  World.run_proc t.world (fun () ->
      for _ = 1 to 5 do
        match Principal.activate t.alice session clinic ~role:"consultant" () with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "denied: %s" (Protocol.denial_to_string d)
      done);
  let st = Service.stats clinic in
  (* The wallet carries 3 RMCs + 2 appointments; each remote credential needs
     exactly one callback across all 5 requests thanks to the cache. *)
  Alcotest.(check int) "one callback per distinct credential" 5 st.Service.callbacks_out;
  Alcotest.(check bool) "cache hits accrued" true (st.Service.cache.Oasis_cert.Validation_cache.hits >= 20)

let test_cache_disabled_calls_back_every_time () =
  let t = make () in
  let session = alice_treating t ~patient:7 in
  let config =
    { Service.default_config with cache_remote_validation = false; offline_verify = false }
  in
  let clinic = Service.create t.world ~name:"clinic" ~config ~policy:clinic_policy () in
  World.run_proc t.world (fun () ->
      for _ = 1 to 5 do
        match Principal.activate t.alice session clinic ~role:"consultant" () with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "denied: %s" (Protocol.denial_to_string d)
      done);
  let st = Service.stats clinic in
  Alcotest.(check int) "five requests x five credentials" 25 st.Service.callbacks_out

let test_cache_invalidated_by_event () =
  (* Revocation at the issuer reaches the remote cache through the event
     channel; the next presentation is re-validated and refused. *)
  let t = make () in
  let session = alice_treating t ~patient:7 in
  let clinic = Service.create t.world ~name:"clinic" ~policy:clinic_policy () in
  World.run_proc t.world (fun () ->
      match Principal.activate t.alice session clinic ~role:"consultant" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "denied: %s" (Protocol.denial_to_string d));
  let doctor_rmc =
    List.find (fun (r : Rmc.t) -> r.role = "doctor") (Principal.session_rmcs session)
  in
  ignore (Service.revoke_certificate t.hospital doctor_rmc.Rmc.id ~reason:"revoked");
  World.settle t.world;
  Alcotest.(check bool) "cache entry invalidated" true
    ((Service.stats clinic).Service.cache.Oasis_cert.Validation_cache.invalidations >= 1);
  World.run_proc t.world (fun () ->
      match Principal.activate t.alice session clinic ~role:"consultant" () with
      | Error Protocol.No_proof -> ()
      | Ok _ -> Alcotest.fail "revoked credential served from cache"
      | Error d -> Alcotest.failf "unexpected: %s" (Protocol.denial_to_string d))

let test_remote_monitoring_collapses_consultant () =
  (* The clinic's consultant role membership-monitors the hospital's doctor
     RMC (the '*' in the policy): revocation at the hospital collapses the
     clinic role — Fig. 5 across services. *)
  let t = make () in
  let session = alice_treating t ~patient:7 in
  let clinic = Service.create t.world ~name:"clinic" ~policy:clinic_policy () in
  World.run_proc t.world (fun () ->
      match Principal.activate t.alice session clinic ~role:"consultant" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "denied: %s" (Protocol.denial_to_string d));
  Alcotest.(check int) "consultant active" 1 (List.length (Service.active_roles clinic));
  let doctor_rmc =
    List.find (fun (r : Rmc.t) -> r.role = "doctor") (Principal.session_rmcs session)
  in
  ignore (Service.revoke_certificate t.hospital doctor_rmc.Rmc.id ~reason:"revoked");
  World.settle t.world;
  Alcotest.(check int) "consultant collapsed" 0 (List.length (Service.active_roles clinic));
  Alcotest.(check int) "clinic counted the cascade" 1
    (Service.stats clinic).Service.cascade_deactivations

let suite =
  ( "security",
    [
      Alcotest.test_case "stolen RMC (local)" `Quick test_stolen_rmc_fails;
      Alcotest.test_case "stolen RMC (cross-service)" `Quick test_stolen_rmc_fails_cross_service;
      Alcotest.test_case "forged RMC" `Quick test_forged_rmc_fails;
      Alcotest.test_case "stolen appointment, no challenge" `Quick
        test_stolen_appointment_without_challenge;
      Alcotest.test_case "challenge blocks key mismatch" `Quick
        test_challenge_blocks_session_key_mismatch;
      Alcotest.test_case "challenge on invocation" `Quick test_challenge_on_invocation;
      Alcotest.test_case "holder challenge vs theft" `Quick
        test_holder_challenge_blocks_stolen_appointment;
      Alcotest.test_case "tampered RMC via callback" `Quick
        test_tampered_rmc_rejected_by_issuer_callback;
      Alcotest.test_case "cache saves callbacks" `Quick test_cache_saves_callbacks;
      Alcotest.test_case "cache disabled" `Quick test_cache_disabled_calls_back_every_time;
      Alcotest.test_case "cache invalidation" `Quick test_cache_invalidated_by_event;
      Alcotest.test_case "remote monitoring" `Quick test_remote_monitoring_collapses_consultant;
    ] )
