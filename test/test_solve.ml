(* The backtracking rule solver. *)

module Solve = Oasis_policy.Solve
module Rule = Oasis_policy.Rule
module Term = Oasis_policy.Term
module Env = Oasis_policy.Env
module Value = Oasis_util.Value
module Ident = Oasis_util.Ident
module Clock = Oasis_util.Clock

let cred ?(issuer = Ident.make "svc" 0) ~id ~name args =
  { Solve.cred_id = Ident.make "cert" id; issuer; cred_name = name; cred_args = args }

(* A context over in-memory credential lists and a fresh env. All symbolic
   service references resolve to the default issuer "svc#0"; a reference to
   an unknown service yields no candidates, as in the real resolver. *)
let context ?(rmcs = []) ?(appts = []) ?(env_setup = fun _ -> ()) () =
  let env = Env.create (Clock.manual ()) in
  env_setup env;
  let filter ~service ~name creds =
    match service with
    | Some s when s <> "svc" -> []
    | _ -> List.filter (fun (c : Solve.cred) -> String.equal c.cred_name name) creds
  in
  {
    Solve.find_rmcs = (fun ~service ~name -> filter ~service ~name rmcs);
    find_appointments = (fun ~issuer ~name -> filter ~service:issuer ~name appts);
    env_check = Env.check env;
    env_enumerate = Env.enumerate env;
  }

let cref ?service name args : Rule.cred_ref = { service; name; args }

let test_prereq_binds_head () =
  let ctx = context ~rmcs:[ cred ~id:1 ~name:"doctor" [ Value.Int 9 ] ] () in
  let rule =
    Rule.activation ~role:"senior" ~params:[ Term.Var "u" ]
      [ (false, Rule.Prereq (cref "doctor" [ Term.Var "u" ])) ]
  in
  match Solve.activation ctx rule () with
  | Some proof ->
      Alcotest.(check int) "head bound" 1 (List.length proof.Solve.role_args);
      Alcotest.(check bool) "value" true (Value.equal (List.hd proof.Solve.role_args) (Value.Int 9));
      (match proof.Solve.support with
      | [ Solve.By_rmc c ] -> Alcotest.(check string) "support" "doctor" c.Solve.cred_name
      | _ -> Alcotest.fail "wrong support")
  | None -> Alcotest.fail "no proof"

let test_no_candidates_fails () =
  let ctx = context () in
  let rule =
    Rule.activation ~role:"r" ~params:[]
      [ (false, Rule.Prereq (cref "doctor" [ Term.Var "u" ])) ]
  in
  Alcotest.(check bool) "no proof" true (Solve.activation ctx rule () = None)

let test_backtracking_across_candidates () =
  (* First doctor credential fails the later constraint; solver must try the
     second. *)
  let ctx =
    context
      ~rmcs:[ cred ~id:1 ~name:"doctor" [ Value.Int 1 ]; cred ~id:2 ~name:"doctor" [ Value.Int 2 ] ]
      ~env_setup:(fun env -> Env.assert_fact env "on_duty" [ Value.Int 2 ])
      ()
  in
  let rule =
    Rule.activation ~role:"r" ~params:[ Term.Var "u" ]
      [
        (false, Rule.Prereq (cref "doctor" [ Term.Var "u" ]));
        (false, Rule.Constraint ("on_duty", [ Term.Var "u" ]));
      ]
  in
  match Solve.activation ctx rule () with
  | Some proof -> Alcotest.(check bool) "picked second" true
      (Value.equal (List.hd proof.Solve.role_args) (Value.Int 2))
  | None -> Alcotest.fail "no proof"

let test_join_across_conditions () =
  (* Shared variable between two credentials forces a join. *)
  let ctx =
    context
      ~rmcs:[ cred ~id:1 ~name:"a" [ Value.Int 1 ]; cred ~id:2 ~name:"a" [ Value.Int 2 ] ]
      ~appts:[ cred ~id:3 ~name:"b" [ Value.Int 2; Value.Str "ok" ] ]
      ()
  in
  let rule =
    Rule.activation ~role:"r" ~params:[ Term.Var "x"; Term.Var "y" ]
      [
        (false, Rule.Prereq (cref "a" [ Term.Var "x" ]));
        (false, Rule.Appointment (cref "b" [ Term.Var "x"; Term.Var "y" ]));
      ]
  in
  match Solve.activation ctx rule () with
  | Some proof ->
      Alcotest.(check bool) "x=2" true (Value.equal (List.nth proof.Solve.role_args 0) (Value.Int 2));
      Alcotest.(check bool) "y=ok" true
        (Value.equal (List.nth proof.Solve.role_args 1) (Value.Str "ok"))
  | None -> Alcotest.fail "no proof"

let test_env_enumeration_binds () =
  (* Free variable in a fact constraint: enumeration must bind it. *)
  let ctx =
    context
      ~rmcs:[ cred ~id:1 ~name:"doctor" [ Value.Int 5 ] ]
      ~env_setup:(fun env ->
        Env.assert_fact env "assigned" [ Value.Int 5; Value.Int 100 ];
        Env.assert_fact env "assigned" [ Value.Int 6; Value.Int 200 ])
      ()
  in
  let rule =
    Rule.activation ~role:"treating" ~params:[ Term.Var "d"; Term.Var "p" ]
      [
        (false, Rule.Prereq (cref "doctor" [ Term.Var "d" ]));
        (false, Rule.Constraint ("assigned", [ Term.Var "d"; Term.Var "p" ]));
      ]
  in
  match Solve.activation ctx rule () with
  | Some proof ->
      Alcotest.(check bool) "p bound via enumeration" true
        (Value.equal (List.nth proof.Solve.role_args 1) (Value.Int 100))
  | None -> Alcotest.fail "no proof"

let test_negated_constraint_requires_ground () =
  (* '!' predicates cannot enumerate; with the variable bound they check. *)
  let ctx =
    context
      ~rmcs:[ cred ~id:1 ~name:"doctor" [ Value.Int 5 ] ]
      ~env_setup:(fun env -> Env.declare_fact env "excluded")
      ()
  in
  let good =
    Rule.activation ~role:"r" ~params:[ Term.Var "d" ]
      [
        (false, Rule.Prereq (cref "doctor" [ Term.Var "d" ]));
        (false, Rule.Constraint ("!excluded", [ Term.Var "d" ]));
      ]
  in
  Alcotest.(check bool) "ground negation holds" true (Solve.activation ctx good () <> None);
  let ungrounded =
    Rule.activation ~role:"r" ~params:[ Term.Var "z" ]
      [ (false, Rule.Constraint ("!excluded", [ Term.Var "z" ])) ]
  in
  (* A non-ground negation used to yield a silent "no proof"; it is a policy
     configuration error and must fail loudly. *)
  Alcotest.check_raises "non-ground negation raises" (Solve.Nonground_negation "!excluded")
    (fun () -> ignore (Solve.activation ctx ungrounded ()))

let test_exception_pattern () =
  (* The paper's Fred Smith case: doctor excluded from one patient. *)
  let ctx =
    context
      ~rmcs:[ cred ~id:1 ~name:"doctor" [ Value.Str "fred" ] ]
      ~env_setup:(fun env ->
        Env.assert_fact env "assigned" [ Value.Str "fred"; Value.Int 1 ];
        Env.assert_fact env "assigned" [ Value.Str "fred"; Value.Int 2 ];
        Env.assert_fact env "excluded" [ Value.Str "fred"; Value.Int 1 ])
      ()
  in
  let rule patient =
    Rule.activation ~role:"treating" ~params:[ Term.Var "d"; Term.Const (Value.Int patient) ]
      [
        (false, Rule.Prereq (cref "doctor" [ Term.Var "d" ]));
        (false, Rule.Constraint ("assigned", [ Term.Var "d"; Term.Const (Value.Int patient) ]));
        (false, Rule.Constraint ("!excluded", [ Term.Var "d"; Term.Const (Value.Int patient) ]));
      ]
  in
  Alcotest.(check bool) "excluded patient denied" true (Solve.activation ctx (rule 1) () = None);
  Alcotest.(check bool) "other patient allowed" true (Solve.activation ctx (rule 2) () <> None)

let test_seed_pins_parameters () =
  let ctx =
    context
      ~rmcs:[ cred ~id:1 ~name:"doctor" [ Value.Int 1 ]; cred ~id:2 ~name:"doctor" [ Value.Int 2 ] ]
      ()
  in
  let rule =
    Rule.activation ~role:"r" ~params:[ Term.Var "u" ]
      [ (false, Rule.Prereq (cref "doctor" [ Term.Var "u" ])) ]
  in
  let seed = Option.get (Term.Subst.bind Term.Subst.empty "u" (Value.Int 2)) in
  match Solve.activation ctx rule ~seed () with
  | Some proof ->
      Alcotest.(check bool) "seed respected" true
        (Value.equal (List.hd proof.Solve.role_args) (Value.Int 2))
  | None -> Alcotest.fail "no proof"

let test_activation_all () =
  let ctx =
    context
      ~rmcs:[ cred ~id:1 ~name:"doctor" [ Value.Int 1 ]; cred ~id:2 ~name:"doctor" [ Value.Int 2 ] ]
      ()
  in
  let rule =
    Rule.activation ~role:"r" ~params:[ Term.Var "u" ]
      [ (false, Rule.Prereq (cref "doctor" [ Term.Var "u" ])) ]
  in
  Alcotest.(check int) "two proofs" 2 (List.length (Solve.activation_all ctx rule ()))

let test_unbound_head_raises () =
  let ctx = context ~rmcs:[ cred ~id:1 ~name:"doctor" [ Value.Int 1 ] ] () in
  let rule =
    Rule.activation ~role:"r" ~params:[ Term.Var "unbound" ]
      [ (false, Rule.Prereq (cref "doctor" [ Term.Var "u" ])) ]
  in
  Alcotest.(check bool) "raises" true
    (match Solve.activation ctx rule () with
    | _ -> false
    | exception Solve.Unbound_head ("r", "unbound") -> true)

let test_unknown_service_reference () =
  let ctx = context ~rmcs:[ cred ~id:1 ~name:"doctor" [] ] () in
  let rule =
    Rule.activation ~role:"r" ~params:[]
      [ (false, Rule.Prereq { service = Some "nowhere"; name = "doctor"; args = [] }) ]
  in
  Alcotest.(check bool) "no proof via unknown service" true (Solve.activation ctx rule () = None)

let test_authorization () =
  let ctx =
    context
      ~rmcs:[ cred ~id:1 ~name:"treating" [ Value.Int 5; Value.Int 7 ] ]
      ~env_setup:(fun env -> Env.declare_fact env "excluded")
      ()
  in
  let auth =
    {
      Rule.privilege = "read";
      priv_args = [ Term.Var "d"; Term.Var "p" ];
      required_roles = [ cref "treating" [ Term.Var "d"; Term.Var "p" ] ];
      constraints = [ ("!excluded", [ Term.Var "d"; Term.Var "p" ]) ];
      loc = Rule.no_loc;
    }
  in
  let seed =
    Option.get
      (Term.unify_args Term.Subst.empty
         [ Term.Var "d"; Term.Var "p" ]
         [ Value.Int 5; Value.Int 7 ])
  in
  Alcotest.(check bool) "authorized" true (Solve.authorization ctx auth ~seed () <> None);
  let wrong_seed =
    Option.get
      (Term.unify_args Term.Subst.empty
         [ Term.Var "d"; Term.Var "p" ]
         [ Value.Int 5; Value.Int 8 ])
  in
  Alcotest.(check bool) "wrong args denied" true (Solve.authorization ctx auth ~seed:wrong_seed () = None)

let test_condition_order_matters_for_grounding () =
  (* Putting the binding credential first is the documented convention;
     a ground check before binding just fails (computed predicates cannot
     enumerate) rather than looping or raising. *)
  let ctx =
    context
      ~rmcs:[ cred ~id:1 ~name:"doctor" [ Value.Int 3 ] ]
      ()
  in
  let bad_order =
    Rule.activation ~role:"r" ~params:[ Term.Var "u" ]
      [
        (false, Rule.Constraint ("eq", [ Term.Var "u"; Term.Const (Value.Int 3) ]));
        (false, Rule.Prereq (cref "doctor" [ Term.Var "u" ]));
      ]
  in
  Alcotest.(check bool) "unbound computed constraint fails" true
    (Solve.activation ctx bad_order () = None)

(* ------------------------------------------------------------------ *)
(* Property: completeness and soundness on generated instances.        *)
(*                                                                     *)
(* We first draw a satisfying assignment (variables -> values), then   *)
(* build a rule whose conditions are instantiated by it: credentials   *)
(* matching each prereq/appointment condition and facts for each       *)
(* constraint, plus random decoy credentials that do NOT satisfy       *)
(* anything (to force backtracking). The solver must find a proof, the *)
(* head must be bound to the assignment, and every supporting          *)
(* credential must actually match its condition.                       *)
(* ------------------------------------------------------------------ *)

let instance_gen =
  let open QCheck.Gen in
  let value_gen = oneof [ map (fun n -> Value.Int n) (int_range 0 50);
                          map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'c') (int_range 1 2)) ] in
  let* nvars = int_range 1 4 in
  let* assignment = list_repeat nvars value_gen in
  let vars = List.mapi (fun i v -> (Printf.sprintf "v%d" i, v)) assignment in
  let* nconds = int_range 1 5 in
  let cond_gen index =
    let* kind = int_bound 2 in
    (* Each condition mentions a random non-empty subset of variables plus
       possibly a constant. *)
    let* used = list_size (int_range 1 nvars) (int_bound (nvars - 1)) in
    let used = List.sort_uniq compare used in
    let terms = List.map (fun i -> Term.Var (Printf.sprintf "v%d" i)) used in
    let ground = List.map (fun i -> List.nth assignment i) used in
    let name = Printf.sprintf "c%d" index in
    return
      (match kind with
      | 0 -> `Prereq (name, terms, ground)
      | 1 -> `Appt (name, terms, ground)
      | _ -> `Fact (name, terms, ground))
  in
  let* conds = flatten_l (List.init nconds cond_gen) in
  (* Guarantee head boundness: one extra prereq carrying every variable. *)
  let all_terms = List.map (fun (v, _) -> Term.Var v) vars in
  let all_ground = List.map snd vars in
  let conds = `Prereq ("anchor", all_terms, all_ground) :: conds in
  let* decoys = int_bound 4 in
  return (vars, conds, decoys)

let run_instance (vars, conds, decoys) =
  let rmcs = ref [] and appts = ref [] and facts = ref [] in
  let idx = ref 0 in
  let conditions =
    List.map
      (fun c ->
        incr idx;
        match c with
        | `Prereq (name, terms, ground) ->
            rmcs := cred ~id:!idx ~name ground :: !rmcs;
            Rule.Prereq (cref name terms)
        | `Appt (name, terms, ground) ->
            appts := cred ~id:(1000 + !idx) ~name ground :: !appts;
            Rule.Appointment (cref name terms)
        | `Fact (name, terms, ground) ->
            facts := (name, ground) :: !facts;
            Rule.Constraint (name, terms))
      conds
  in
  (* Decoys: same names as real credentials but mismatching arity, so they
     never unify yet must be skipped by backtracking. *)
  for d = 1 to decoys do
    match !rmcs with
    | c :: _ ->
        rmcs :=
          { c with Solve.cred_id = Ident.make "decoy" d;
                   cred_args = Value.Str "decoy" :: c.Solve.cred_args }
          :: !rmcs
    | [] -> ()
  done;
  let ctx =
    context ~rmcs:!rmcs ~appts:!appts
      ~env_setup:(fun env ->
        List.iter (fun (name, ground) -> Env.assert_fact env name ground) !facts)
      ()
  in
  let params = List.map (fun (v, _) -> Term.Var v) vars in
  let rule =
    Rule.activation ~role:"generated" ~params (List.map (fun c -> (false, c)) conditions)
  in
  match Solve.activation ctx rule () with
  | None -> false
  | Some proof ->
      (* Soundness: head bound to the assignment... *)
      List.for_all2 (fun (_, want) got -> Value.equal want got) vars proof.Solve.role_args
      (* ...and every credential support matches its condition's name. *)
      && List.for_all2
           (fun condition support ->
             match (condition, support) with
             | Rule.Prereq r, Solve.By_rmc c -> String.equal r.Rule.name c.Solve.cred_name
             | Rule.Appointment r, Solve.By_appointment c ->
                 String.equal r.Rule.name c.Solve.cred_name
             | Rule.Constraint (n, _), Solve.By_env (n', _) -> String.equal n n'
             | _ -> false)
           conditions proof.Solve.support

let test_completeness_property () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"solver complete and sound on satisfiable instances"
       (QCheck.make instance_gen) run_instance)

let suite =
  ( "solve",
    [
      Alcotest.test_case "prereq binds head" `Quick test_prereq_binds_head;
      Alcotest.test_case "no candidates" `Quick test_no_candidates_fails;
      Alcotest.test_case "backtracking" `Quick test_backtracking_across_candidates;
      Alcotest.test_case "join" `Quick test_join_across_conditions;
      Alcotest.test_case "env enumeration" `Quick test_env_enumeration_binds;
      Alcotest.test_case "negation needs ground" `Quick test_negated_constraint_requires_ground;
      Alcotest.test_case "exception pattern" `Quick test_exception_pattern;
      Alcotest.test_case "seed pins" `Quick test_seed_pins_parameters;
      Alcotest.test_case "activation_all" `Quick test_activation_all;
      Alcotest.test_case "unbound head" `Quick test_unbound_head_raises;
      Alcotest.test_case "unknown service" `Quick test_unknown_service_reference;
      Alcotest.test_case "authorization" `Quick test_authorization;
      Alcotest.test_case "condition order" `Quick test_condition_order_matters_for_grounding;
      Alcotest.test_case "completeness (qcheck)" `Quick test_completeness_property;
    ] )
