(* Property-driven scenario fuzzer: the static analyzer and the live engine
   keep each other honest (ISSUE 7, extending the PR 5 chaos harness).

   Each seed generates a random world — services with random Horn policies
   (prerequisite roles, appointment conditions incl. cross-service kinds
   issued through appoint rules, negated environmental facts), a random set
   of asserted facts and a random wallet — then checks, with every fact
   predicate PINNED to its current truth:

     C1 (exactness): the set of roles a live principal can activate, given
        greedy self-appointment through the real Service/Solve engine,
        equals the analyzer's Reachable set exactly. A concrete activation
        the analyzer calls unreachable means the analyzer is unsound; an
        analyzer-reachable goal the engine refuses means it is incomplete
        (or the engine is broken) — either way a test failure.

     C2 (witnesses execute): for every Reachable goal, Reach.plan of its
        witness replays step by step against a fresh principal holding the
        same wallet, and every step is granted.

     C3 (two-valuedness): with all facts pinned and no timed built-ins in
        the generated grammar, no verdict may be Env_contingent.

   After the initial closure the fuzzer random-walks the world — fact
   flips, appointment revocations (CIV-issued and self-issued both) — and
   re-checks C1 against the surviving wallet each step, so the analyzer is
   also exercised against credential loss and environment drift.

   A diagnostic-stability property rides along: analyzer verdicts must
   survive printing the policy and re-parsing it (mirroring the PR 2 lint
   property). *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Civ = Oasis_domain.Civ
module Env = Oasis_policy.Env
module Parser = Oasis_policy.Parser
module Analysis = Oasis_policy.Analysis
module Reach = Oasis_policy.Reach
module Rng = Oasis_util.Rng
module Value = Oasis_util.Value
module Appointment = Oasis_cert.Appointment

(* ---------------- world specs ---------------- *)

type svc_spec = {
  sv_name : string;
  sv_roles : string list;
  sv_kind : string;  (* the one kind this service issues via an appoint rule *)
  sv_env : string list;  (* fact predicates, unique names across services *)
  sv_policy : string;
}

type spec = {
  services : svc_spec list;
  civ_kinds : string list;
  wallet : string list;  (* CIV kinds granted to the principal up front *)
  facts : (string * string) list;  (* (service, predicate) asserted true *)
  seed : int;
}

let pick rng l = List.nth l (Rng.int rng (List.length l))
let chance rng p = Rng.float rng 1.0 < p

(* Generates one service's policy text. All roles and kinds are arity 1
   over the single variable u (bound by every credential condition), so
   the generated rules always pass the strict-install lint gate. *)
let gen_service rng ~index ~all prior_roles =
  let sv_name = Printf.sprintf "s%d" index in
  let n_roles = 2 + Rng.int rng 3 in
  let sv_roles = List.init n_roles (fun i -> Printf.sprintf "%s_r%d" sv_name i) in
  let sv_kind = Printf.sprintf "%s_k" sv_name in
  let sv_env = List.init 2 (fun i -> Printf.sprintf "%s_e%d" sv_name i) in
  let buf = Buffer.create 256 in
  let all_roles () = prior_roles @ List.mapi (fun i r -> (sv_name, r, i)) sv_roles in
  List.iteri
    (fun j role ->
      let initial = j = 0 || chance rng 0.3 in
      let conds = ref [] in
      let add c = conds := c :: !conds in
      let star () = if chance rng 0.6 then "*" else "" in
      let appt_cond ~grounded =
        (* [grounded] biases towards CIV kinds the wallet may hold, so
           derivations get off the ground; otherwise bias towards kinds a
           service issues through its appoint rule, so chains form. *)
        let service_kind () =
          if chance rng 0.5 then Printf.sprintf "%sappt:%s(u)" (star ()) sv_kind
          else
            let osvc = Printf.sprintf "s%d" (Rng.int rng all) in
            Printf.sprintf "%sappt:%s_k(u)@%s" (star ()) osvc osvc
        in
        let civ_kind () = Printf.sprintf "%sappt:ck%d(u)@civ" (star ()) (Rng.int rng 3) in
        if chance rng (if grounded then 0.75 else 0.35) then civ_kind ()
        else service_kind ()
      in
      (* every rule needs >= 1 credential condition to bind u *)
      if initial then add (appt_cond ~grounded:true)
      else begin
        (match Rng.int rng 3 with
        | 0 -> add (appt_cond ~grounded:false)
        | _ ->
            (* a prerequisite role; bias towards earlier roles so plenty of
               worlds stay derivable, but allow forward/self edges (cycles)
               so the fixpoint gets exercised *)
            let candidates = all_roles () in
            let earlier = List.filter (fun (_, _, i) -> i < j) candidates in
            let pool = if earlier <> [] && chance rng 0.7 then earlier else candidates in
            let psvc, prole, _ = pick rng pool in
            add
              (if String.equal psvc sv_name then Printf.sprintf "%s%s(u)" (star ()) prole
               else Printf.sprintf "%s%s(u)@%s" (star ()) prole psvc));
        if chance rng 0.4 then add (appt_cond ~grounded:false)
      end;
      if chance rng 0.6 then begin
        let pred = pick rng sv_env in
        let neg = if chance rng 0.3 then "!" else "" in
        add (Printf.sprintf "%senv:%s%s(1)" (star ()) neg pred)
      end;
      Buffer.add_string buf
        (Printf.sprintf "%s%s(u) <- %s;\n"
           (if initial then "initial " else "")
           role
           (String.concat ", " (List.rev !conds))))
    sv_roles;
  (* the appoint rule for this service's own kind, sometimes env-gated;
     usually issued from the first role (the most reachable one) so that
     appointment chains actually occur in generated worlds *)
  Buffer.add_string buf
    (Printf.sprintf "appoint %s(u) <- %s(u)%s;\n" sv_kind
       (if chance rng 0.7 then List.hd sv_roles else pick rng sv_roles)
       (if chance rng 0.3 then Printf.sprintf ", env:%s(1)" (pick rng sv_env) else ""));
  { sv_name; sv_roles; sv_kind; sv_env; sv_policy = Buffer.contents buf }

let gen_spec seed =
  let rng = Rng.create ((seed * 2654435761) lxor 0x51ed270b) in
  let all = 2 + Rng.int rng 2 in
  let services =
    let rec go i prior acc =
      if i = all then List.rev acc
      else
        let sv = gen_service rng ~index:i ~all prior in
        let prior = prior @ List.mapi (fun k r -> (sv.sv_name, r, k)) sv.sv_roles in
        go (i + 1) prior (sv :: acc)
    in
    go 0 [] []
  in
  let civ_kinds = [ "ck0"; "ck1"; "ck2" ] in
  let wallet = List.filter (fun _ -> chance rng 0.55) civ_kinds in
  let facts =
    List.concat_map
      (fun sv -> List.filter_map (fun p -> if chance rng 0.5 then Some (sv.sv_name, p) else None) sv.sv_env)
      services
  in
  { services; civ_kinds; wallet; facts; seed }

(* ---------------- the live world ---------------- *)

type live = {
  world : World.t;
  civ : Civ.t;
  by_name : (string * Service.t) list;
  p : Principal.t;
  mutable fact_state : ((string * string) * bool) list;
}

let build spec =
  let world = World.create ~seed:spec.seed () in
  let civ = Civ.create world ~name:"civ" () in
  let by_name =
    List.map
      (fun sv ->
        let service = Service.create world ~name:sv.sv_name ~policy:sv.sv_policy () in
        List.iter (fun pred -> Env.declare_fact (Service.env service) pred) sv.sv_env;
        (sv.sv_name, service))
      spec.services
  in
  let fact_state =
    List.concat_map
      (fun sv ->
        List.map
          (fun pred -> ((sv.sv_name, pred), List.mem (sv.sv_name, pred) spec.facts))
          sv.sv_env)
      spec.services
  in
  List.iter
    (fun ((svc, pred), on) ->
      if on then Env.assert_fact (Service.env (List.assoc svc by_name)) pred [ Value.Int 1 ])
    fact_state;
  let p = Principal.create world ~name:"fuzz" in
  List.iter
    (fun kind ->
      let appt =
        Civ.issue civ ~kind
          ~args:[ Value.Id (Principal.id p) ]
          ~holder:(Principal.id p) ~holder_key:(Principal.longterm_public p) ()
      in
      Principal.grant_appointment p appt)
    spec.wallet;
  { world; civ; by_name; p; fact_state }

(* ---------------- analyzer inputs from live state ---------------- *)

let world_policy spec =
  Analysis.
    {
      sp_name = "civ";
      activations = [];
      authorizations = [];
      appointers = [];
      appointment_kinds = spec.civ_kinds;
    }
  :: List.map
       (fun sv -> Analysis.of_statements ~name:sv.sv_name (Parser.parse_exn sv.sv_policy))
       spec.services

let pins_of live =
  List.map (fun ((_, pred), on) -> (pred, on)) live.fact_state

(* The wallet as the analyzer sees it: every appointment certificate the
   principal still holds whose issuer still vouches for it. *)
let issuer_name live (id : Oasis_util.Ident.t) =
  if Oasis_util.Ident.equal id (Civ.id live.civ) then Some "civ"
  else
    List.find_map
      (fun (name, s) -> if Oasis_util.Ident.equal id (Service.id s) then Some name else None)
      live.by_name

let valid_wallet live principal =
  List.filter_map
    (fun (a : Appointment.t) ->
      match issuer_name live a.Appointment.issuer with
      | Some "civ" when Civ.is_valid live.civ a.Appointment.id -> Some ("civ", a.Appointment.kind)
      | Some name
        when name <> "civ"
             && Service.is_valid_certificate (List.assoc name live.by_name) a.Appointment.id ->
          Some (name, a.Appointment.kind)
      | _ -> None)
    (Principal.appointments principal)

(* ---------------- concrete closure (the live fixpoint) ---------------- *)

(* Greedy closure: keep trying every activation and every self-appointment
   until nothing new is granted. Returns the set of roles activated. *)
let concrete_closure live spec principal =
  let session = World.run_proc live.world (fun () -> Principal.start_session principal) in
  let active = Hashtbl.create 16 in
  let appointed = Hashtbl.create 8 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun sv ->
        let service = List.assoc sv.sv_name live.by_name in
        List.iter
          (fun role ->
            if not (Hashtbl.mem active (sv.sv_name, role)) then
              World.run_proc live.world (fun () ->
                  match Principal.activate principal session service ~role () with
                  | Ok _ ->
                      Hashtbl.replace active (sv.sv_name, role) ();
                      progress := true
                  | Error _ -> ()))
          sv.sv_roles;
        if not (Hashtbl.mem appointed sv.sv_kind) then
          World.run_proc live.world (fun () ->
              match
                Principal.appoint principal session service ~kind:sv.sv_kind
                  ~args:[ Value.Id (Principal.id principal) ]
                  ~holder:principal ()
              with
              | Ok _ ->
                  Hashtbl.replace appointed sv.sv_kind ();
                  progress := true
              | Error _ -> ()))
      spec.services
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) active [] |> List.sort compare

(* ---------------- the cross-check ---------------- *)

let reachable_set result =
  List.filter_map
    (fun g ->
      match g.Reach.g_verdict with
      | Reach.Reachable -> Some (g.Reach.g_service, g.Reach.g_role)
      | _ -> None)
    result.Reach.goals

let check_exactness ~what live spec principal =
  let wp = world_policy spec in
  let adversary =
    { Reach.held_appointments = valid_wallet live principal; held_roles = [] }
  in
  let result = Reach.analyse ~adversary ~pins:(pins_of live) wp in
  List.iter
    (fun g ->
      if g.Reach.g_verdict = Reach.Env_contingent then
        Alcotest.failf "seed %d %s: %s@%s env-contingent under full pinning" spec.seed what
          g.Reach.g_role g.Reach.g_service)
    result.Reach.goals;
  let symbolic = List.sort compare (reachable_set result) in
  let concrete = concrete_closure live spec principal in
  if symbolic <> concrete then begin
    let show set =
      String.concat ", " (List.map (fun (s, r) -> Printf.sprintf "%s@%s" r s) set)
    in
    Alcotest.failf "seed %d %s: analyzer and engine diverge\n  symbolic : %s\n  concrete : %s"
      spec.seed what (show symbolic) (show concrete)
  end;
  result

let replay_witnesses live spec result =
  (* A fresh principal with the same CIV wallet executes each Reachable
     witness plan; every step must be granted. *)
  let q = Principal.create live.world ~name:(Printf.sprintf "replay%d" spec.seed) in
  List.iter
    (fun kind ->
      let appt =
        Civ.issue live.civ ~kind
          ~args:[ Value.Id (Principal.id q) ]
          ~holder:(Principal.id q) ~holder_key:(Principal.longterm_public q) ()
      in
      Principal.grant_appointment q appt)
    spec.wallet;
  List.iter
    (fun g ->
      match (g.Reach.g_verdict, g.Reach.g_witness) with
      | Reach.Reachable, Some w ->
          let session = World.run_proc live.world (fun () -> Principal.start_session q) in
          List.iter
            (fun step ->
              World.run_proc live.world (fun () ->
                  match step with
                  | Reach.Activate { service; role } -> (
                      let s = List.assoc service live.by_name in
                      match Principal.activate q session s ~role () with
                      | Ok _ -> ()
                      | Error d ->
                          Alcotest.failf
                            "seed %d: witness step activate %s@%s refused by the engine (%s)"
                            spec.seed role service
                            (Oasis_core.Protocol.denial_to_string d))
                  | Reach.Self_appoint { issuer; kind } -> (
                      let s = List.assoc issuer live.by_name in
                      match
                        Principal.appoint q session s ~kind
                          ~args:[ Value.Id (Principal.id q) ]
                          ~holder:q ()
                      with
                      | Ok _ -> ()
                      | Error d ->
                          Alcotest.failf
                            "seed %d: witness step appoint %s@%s refused by the engine (%s)"
                            spec.seed kind issuer
                            (Oasis_core.Protocol.denial_to_string d))))
            (Reach.plan w)
      | _ -> ())
    result.Reach.goals

(* Random walk: flip facts and revoke appointments, then re-check. *)
let walk live spec rng steps =
  for step = 1 to steps do
    (match Rng.int rng 3 with
    | 0 | 1 -> (
        (* flip a random fact *)
        match live.fact_state with
        | [] -> ()
        | fs ->
            let (svc, pred), on = pick rng fs in
            let env = Service.env (List.assoc svc live.by_name) in
            if on then Env.retract_fact env pred [ Value.Int 1 ]
            else Env.assert_fact env pred [ Value.Int 1 ];
            live.fact_state <-
              List.map
                (fun ((k, v) as e) -> if k = (svc, pred) then (k, not v) else e)
                fs)
    | _ -> (
        (* revoke a random still-valid appointment (CIV- or self-issued) *)
        let valid =
          List.filter
            (fun (a : Appointment.t) ->
              match issuer_name live a.Appointment.issuer with
              | Some "civ" -> Civ.is_valid live.civ a.Appointment.id
              | Some name -> Service.is_valid_certificate (List.assoc name live.by_name) a.Appointment.id
              | None -> false)
            (Principal.appointments live.p)
        in
        match valid with
        | [] -> ()
        | certs -> (
            let a = pick rng certs in
            match issuer_name live a.Appointment.issuer with
            | Some "civ" -> ignore (Civ.revoke live.civ a.Appointment.id ~reason:"fuzz walk")
            | Some name ->
                ignore
                  (Service.revoke_certificate (List.assoc name live.by_name) a.Appointment.id
                     ~reason:"fuzz walk")
            | None -> ())));
    World.run_until live.world (World.now live.world +. 2.0);
    ignore (check_exactness ~what:(Printf.sprintf "walk step %d" step) live spec live.p)
  done

let run_seed seed =
  let spec = gen_spec seed in
  let live = build spec in
  let result = check_exactness ~what:"initial closure" live spec live.p in
  replay_witnesses live spec result;
  let rng = Rng.create ((seed * 40503) lxor 0x2545f491) in
  walk live spec rng 4

let n_seeds = 48

let test_cross_check () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:n_seeds
       ~name:"symbolic reachability == live engine closure (+witness replay)"
       QCheck.(int_range 1 1_000_000)
       (fun seed ->
         run_seed seed;
         true))

(* Vacuity guard: the generator must actually produce worlds where the
   interesting machinery fires — chained appointments, negation, denials. *)
let test_generator_not_vacuous () =
  let reachable = ref 0 and unreachable = ref 0 and chains = ref 0 and negs = ref 0 in
  for seed = 1 to 40 do
    let spec = gen_spec seed in
    List.iter
      (fun sv ->
        String.iter (fun c -> if c = '!' then incr negs) sv.sv_policy)
      spec.services;
    let wp = world_policy spec in
    let adversary =
      { Reach.held_appointments = List.map (fun k -> ("civ", k)) spec.wallet; held_roles = [] }
    in
    let pins =
      List.concat_map
        (fun sv -> List.map (fun p -> (p, List.mem (sv.sv_name, p) spec.facts)) sv.sv_env)
        spec.services
    in
    let result = Reach.analyse ~adversary ~pins wp in
    List.iter
      (fun g ->
        (match g.Reach.g_verdict with
        | Reach.Reachable -> incr reachable
        | Reach.Unreachable -> incr unreachable
        | Reach.Env_contingent -> ());
        let rec count_chains = function
          | Reach.Held _ -> ()
          | Reach.Fired { premises; _ } ->
              List.iter
                (function
                  | Reach.Role_premise w -> count_chains w
                  | Reach.Appointment_premise { via = Some w; _ } ->
                      incr chains;
                      count_chains w
                  | Reach.Appointment_premise _ | Reach.Env_premise _ -> ())
                premises
        in
        Option.iter count_chains g.Reach.g_witness)
      result.Reach.goals
  done;
  Alcotest.(check bool)
    (Printf.sprintf "generator exercises the machinery (%d reachable, %d unreachable, %d chains, %d negations)"
       !reachable !unreachable !chains !negs)
    true
    (!reachable > 20 && !unreachable > 20 && !chains > 3 && !negs > 3)

(* Verdicts are stable under print -> re-parse of every policy (the same
   diagnostic-stability property PR 2 proves for lint findings). *)
let test_print_reparse_stability () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:30 ~name:"reach verdicts survive print->re-parse"
       QCheck.(int_range 1 1_000_000)
       (fun seed ->
         let spec = gen_spec seed in
         let adversary =
           { Reach.held_appointments = List.map (fun k -> ("civ", k)) spec.wallet; held_roles = [] }
         in
         let verdicts wp =
           List.map
             (fun g -> (g.Reach.g_service, g.Reach.g_role, g.Reach.g_verdict))
             (Reach.analyse ~adversary wp).Reach.goals
         in
         let original = world_policy spec in
         let reprinted =
           Analysis.
             {
               sp_name = "civ";
               activations = [];
               authorizations = [];
               appointers = [];
               appointment_kinds = spec.civ_kinds;
             }
           :: List.map
                (fun sv ->
                  let statements = Parser.parse_exn sv.sv_policy in
                  let printed = Parser.print statements in
                  Analysis.of_statements ~name:sv.sv_name (Parser.parse_exn printed))
                spec.services
         in
         if verdicts original <> verdicts reprinted then
           QCheck.Test.fail_reportf "seed %d: verdicts changed after print->re-parse" seed;
         true))

let test_deterministic () =
  (* Same seed, same divergence-free run — twice. Cheap replay guard. *)
  run_seed 11;
  run_seed 11

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "analyzer vs engine cross-check (qcheck)" `Slow test_cross_check;
      Alcotest.test_case "generator is not vacuous" `Quick test_generator_not_vacuous;
      Alcotest.test_case "print->re-parse verdict stability (qcheck)" `Quick
        test_print_reparse_stability;
      Alcotest.test_case "fuzz runs are deterministic" `Quick test_deterministic;
    ] )
