(* World, Principal and protocol-surface coverage. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Civ = Oasis_domain.Civ
module Audit = Oasis_trust.Audit
module Env = Oasis_policy.Env
module Value = Oasis_util.Value
module Ident = Oasis_util.Ident

let test_registry () =
  let world = World.create () in
  let svc = Service.create world ~name:"alpha" ~policy:"initial r <- env:eq(1, 1);" () in
  Alcotest.(check bool) "resolve" true (World.resolve world "alpha" = Some (Service.id svc));
  Alcotest.(check (option string)) "reverse" (Some "alpha")
    (World.service_name world (Service.id svc));
  Alcotest.(check bool) "unknown" true (World.resolve world "beta" = None);
  Alcotest.(check bool) "rebinding raises" true
    (match World.register_service world ~name:"alpha" (Ident.make "x" 0) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_run_proc_detects_deadlock () =
  let world = World.create () in
  Alcotest.(check bool) "deadlock reported" true
    (match
       World.run_proc world (fun () ->
           (* Block on an ivar nobody will ever fill. *)
           Oasis_sim.Proc.read (Oasis_sim.Proc.ivar () : int Oasis_sim.Proc.ivar))
     with
    | _ -> false
    | exception Failure _ -> true)

let test_settle_leaves_future_timers () =
  let world = World.create () in
  let fired = ref false in
  ignore
    (Oasis_sim.Engine.schedule (World.engine world) ~after:100.0 (fun () -> fired := true));
  World.settle world;
  Alcotest.(check bool) "far timer untouched" false !fired;
  Alcotest.(check bool) "clock advanced ~1s" true (World.now world < 2.0);
  World.run world;
  Alcotest.(check bool) "run drains it" true !fired

let test_fresh_ids_distinct () =
  let world = World.create () in
  let a = World.fresh_cert_id world and b = World.fresh_cert_id world in
  Alcotest.(check bool) "distinct" false (Ident.equal a b);
  let p = World.fresh_principal_id world and q = World.fresh_anon_id world in
  Alcotest.(check bool) "namespaces differ" false (String.equal (Ident.tag p) (Ident.tag q))

let test_multiple_sessions_per_principal () =
  let world = World.create () in
  let svc = Service.create world ~name:"svc" ~policy:"initial r <- env:eq(1, 1);" () in
  let p = Principal.create world ~name:"p" in
  let s1 = Principal.start_session p and s2 = Principal.start_session p in
  Alcotest.(check bool) "distinct session keys" false
    (String.equal (Principal.session_key s1) (Principal.session_key s2));
  World.run_proc world (fun () ->
      (match Principal.activate p s1 svc ~role:"r" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "s1: %s" (Protocol.denial_to_string d));
      match Principal.activate p s2 svc ~role:"r" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "s2: %s" (Protocol.denial_to_string d));
  Alcotest.(check int) "one RMC per session" 1 (List.length (Principal.session_rmcs s1));
  (* RMCs are session-bound: s1's RMC does not verify under s2's key (the
     issuer would refuse it — see test_security for the end-to-end case). *)
  Alcotest.(check int) "two active roles for same principal" 2
    (List.length (Service.active_roles svc))

let test_policy_errors_contained () =
  (* A rule with an unbound head parameter, or an unknown predicate, is a
     configuration bug: the service must refuse with Bad_request and stay
     alive — never crash the node. The strict-install lint gate would
     refuse this policy outright, so it is turned off here to exercise the
     runtime containment path. *)
  let world = World.create () in
  let svc =
    Service.create world ~name:"svc"
      ~config:{ Service.default_config with strict_install = false }
      ~policy:
        {|
          initial broken_head(u) <- env:eq(1, 1);
          initial broken_env <- env:no_such_predicate(1);
          initial fine <- env:eq(1, 1);
          priv broken_priv(u) <- fine, env:also_missing(u);
        |}
      ()
  in
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      (match Principal.activate p s svc ~role:"broken_head" () with
      | Error (Protocol.Bad_request _) -> ()
      | _ -> Alcotest.fail "unbound head not contained");
      (match Principal.activate p s svc ~role:"broken_env" () with
      | Error (Protocol.Bad_request _) -> ()
      | _ -> Alcotest.fail "unknown predicate not contained");
      (* The service is still healthy. *)
      (match Principal.activate p s svc ~role:"fine" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "healthy role broken: %s" (Protocol.denial_to_string d));
      match Principal.invoke p s svc ~privilege:"broken_priv" ~args:[ Value.Int 1 ] with
      | Error (Protocol.Bad_request _) -> ()
      | _ -> Alcotest.fail "privilege policy error not contained")

let test_principal_wallet_management () =
  let world = World.create () in
  let civ = Civ.create world ~name:"civ" () in
  let p = Principal.create world ~name:"p" in
  let appt =
    Civ.issue civ ~kind:"card" ~args:[] ~holder:(Principal.id p)
      ~holder_key:(Principal.longterm_public p) ()
  in
  Principal.grant_appointment p appt;
  Alcotest.(check int) "wallet" 1 (List.length (Principal.appointments p));
  Principal.drop_appointment p appt.Oasis_cert.Appointment.id;
  Alcotest.(check int) "dropped" 0 (List.length (Principal.appointments p))

let test_principal_node_rejects_non_challenge () =
  let world = World.create () in
  let p = Principal.create world ~name:"p" and q = Principal.create world ~name:"q" in
  let reply =
    World.run_proc world (fun () ->
        Oasis_sim.Network.rpc (World.network world) ~src:(Principal.id p) ~dst:(Principal.id q)
          Protocol.Deactivate_ok)
  in
  match reply with
  | Protocol.Denied (Protocol.Bad_request _) -> ()
  | _ -> Alcotest.fail "principals must refuse non-challenge requests"

let test_civ_audit_extension () =
  (* Sect. 6: the domain's CIV issues and validates audit certificates. *)
  let world = World.create () in
  let civ = Civ.create world ~name:"civ" () in
  let client = Ident.make "client" 1 and server = Ident.make "server" 1 in
  let cert =
    Civ.record_interaction civ ~client ~server ~client_outcome:Audit.Fulfilled
      ~server_outcome:Audit.Breached
  in
  Alcotest.(check bool) "validates" true (Civ.validate_audit civ cert);
  Alcotest.(check bool) "records virtual time" true (cert.Audit.at = World.now world);
  let laundered = Audit.with_server_outcome cert Audit.Fulfilled in
  Alcotest.(check bool) "tamper rejected" false (Civ.validate_audit civ laundered);
  (* Honest registrar: no fabrication. *)
  Alcotest.(check bool) "fabricate refused" true
    (match Oasis_trust.Registrar.fabricate (Civ.registrar civ) ~client ~server ~at:0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* Writes follow the primary. *)
  Civ.set_replica_down civ 0 true;
  Alcotest.(check bool) "primary down blocks audit" true
    (match
       Civ.record_interaction civ ~client ~server ~client_outcome:Audit.Fulfilled
         ~server_outcome:Audit.Fulfilled
     with
    | _ -> false
    | exception Civ.Primary_unavailable -> true)

let test_remote_predicate () =
  (* Sect. 2: a constraint answered by database lookup at another service. *)
  let world = World.create () in
  let registry =
    Service.create world ~name:"registry" ~policy:"initial noop <- env:eq(1, 1);" ()
  in
  Env.declare_fact (Service.env registry) "member";
  let club =
    Service.create world ~name:"club"
      ~policy:"initial insider(u) <- env:member_remote(u);" ()
  in
  Service.register_remote_predicate club ~local_name:"member_remote" ~at:(Service.id registry)
    ~remote_name:"member";
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      match
        Principal.activate p s club ~role:"insider" ~args:[ Some (Value.Id (Principal.id p)) ] ()
      with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "non-member admitted");
  Env.assert_fact (Service.env registry) "member" [ Value.Id (Principal.id p) ];
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      match
        Principal.activate p s club ~role:"insider" ~args:[ Some (Value.Id (Principal.id p)) ] ()
      with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "member denied: %s" (Protocol.denial_to_string d));
  (* The lookup really crossed the network. *)
  Alcotest.(check bool) "registry consulted" true
    (let st = Oasis_sim.Network.stats (World.network world) in
     st.Oasis_sim.Network.rpcs >= 3);
  (* A dead registry counts as "does not hold", not a crash. *)
  Oasis_sim.Network.set_down (World.network world) (Service.id registry) true;
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      match
        Principal.activate p s club ~role:"insider" ~args:[ Some (Value.Id (Principal.id p)) ] ()
      with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "dead registry should deny")

let test_hour_window_role_expires () =
  (* A role gated on hour_between collapses when the window closes — purely
     time-driven deactivation (no fact changes, no revocation). Start at
     16:00; window 9-17. *)
  let world = World.create () in
  World.run_until world (16.0 *. 3600.0);
  let svc =
    Service.create world ~name:"svc"
      ~policy:"initial day_shift <- *env:hour_between(9, 17);" ()
  in
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      match Principal.activate p (Principal.start_session p) svc ~role:"day_shift" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "denied: %s" (Protocol.denial_to_string d));
  Alcotest.(check int) "active at 16:00" 1 (List.length (Service.active_roles svc));
  World.run_until world (16.9 *. 3600.0);
  Alcotest.(check int) "active at 16:54" 1 (List.length (Service.active_roles svc));
  World.run_until world (17.1 *. 3600.0);
  World.settle world;
  Alcotest.(check int) "deactivated at 17:06" 0 (List.length (Service.active_roles svc))

let suite =
  ( "world",
    [
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "run_proc deadlock" `Quick test_run_proc_detects_deadlock;
      Alcotest.test_case "settle semantics" `Quick test_settle_leaves_future_timers;
      Alcotest.test_case "fresh ids" `Quick test_fresh_ids_distinct;
      Alcotest.test_case "multiple sessions" `Quick test_multiple_sessions_per_principal;
      Alcotest.test_case "policy errors contained" `Quick test_policy_errors_contained;
      Alcotest.test_case "wallet" `Quick test_principal_wallet_management;
      Alcotest.test_case "node refuses non-challenge" `Quick
        test_principal_node_rejects_non_challenge;
      Alcotest.test_case "civ audit extension" `Quick test_civ_audit_extension;
      Alcotest.test_case "remote predicate" `Quick test_remote_predicate;
      Alcotest.test_case "hour-window deactivation" `Quick test_hour_window_role_expires;
    ] )
