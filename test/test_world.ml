(* World, Principal and protocol-surface coverage. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Durable = Oasis_core.Durable
module Civ = Oasis_domain.Civ
module Audit = Oasis_trust.Audit
module History = Oasis_trust.History
module Dlog = Oasis_trust.Decision_log
module Fault = Oasis_sim.Fault
module Obs = Oasis_obs.Obs
module Env = Oasis_policy.Env
module Value = Oasis_util.Value
module Ident = Oasis_util.Ident

let test_registry () =
  let world = World.create () in
  let svc = Service.create world ~name:"alpha" ~policy:"initial r <- env:eq(1, 1);" () in
  Alcotest.(check bool) "resolve" true (World.resolve world "alpha" = Some (Service.id svc));
  Alcotest.(check (option string)) "reverse" (Some "alpha")
    (World.service_name world (Service.id svc));
  Alcotest.(check bool) "unknown" true (World.resolve world "beta" = None);
  Alcotest.(check bool) "rebinding raises" true
    (match World.register_service world ~name:"alpha" (Ident.make "x" 0) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_run_proc_detects_deadlock () =
  let world = World.create () in
  Alcotest.(check bool) "deadlock reported" true
    (match
       World.run_proc world (fun () ->
           (* Block on an ivar nobody will ever fill. *)
           Oasis_sim.Proc.read (Oasis_sim.Proc.ivar () : int Oasis_sim.Proc.ivar))
     with
    | _ -> false
    | exception Failure _ -> true)

let test_settle_leaves_future_timers () =
  let world = World.create () in
  let fired = ref false in
  ignore
    (Oasis_sim.Engine.schedule (World.engine world) ~after:100.0 (fun () -> fired := true));
  World.settle world;
  Alcotest.(check bool) "far timer untouched" false !fired;
  Alcotest.(check bool) "clock advanced ~1s" true (World.now world < 2.0);
  World.run world;
  Alcotest.(check bool) "run drains it" true !fired

let test_fresh_ids_distinct () =
  let world = World.create () in
  let a = World.fresh_cert_id world and b = World.fresh_cert_id world in
  Alcotest.(check bool) "distinct" false (Ident.equal a b);
  let p = World.fresh_principal_id world and q = World.fresh_anon_id world in
  Alcotest.(check bool) "namespaces differ" false (String.equal (Ident.tag p) (Ident.tag q))

let test_multiple_sessions_per_principal () =
  let world = World.create () in
  let svc = Service.create world ~name:"svc" ~policy:"initial r <- env:eq(1, 1);" () in
  let p = Principal.create world ~name:"p" in
  let s1 = Principal.start_session p and s2 = Principal.start_session p in
  Alcotest.(check bool) "distinct session keys" false
    (String.equal (Principal.session_key s1) (Principal.session_key s2));
  World.run_proc world (fun () ->
      (match Principal.activate p s1 svc ~role:"r" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "s1: %s" (Protocol.denial_to_string d));
      match Principal.activate p s2 svc ~role:"r" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "s2: %s" (Protocol.denial_to_string d));
  Alcotest.(check int) "one RMC per session" 1 (List.length (Principal.session_rmcs s1));
  (* RMCs are session-bound: s1's RMC does not verify under s2's key (the
     issuer would refuse it — see test_security for the end-to-end case). *)
  Alcotest.(check int) "two active roles for same principal" 2
    (List.length (Service.active_roles svc))

let test_policy_errors_contained () =
  (* A rule with an unbound head parameter, or an unknown predicate, is a
     configuration bug: the service must refuse with Bad_request and stay
     alive — never crash the node. The strict-install lint gate would
     refuse this policy outright, so it is turned off here to exercise the
     runtime containment path. *)
  let world = World.create () in
  let svc =
    Service.create world ~name:"svc"
      ~config:{ Service.default_config with strict_install = false }
      ~policy:
        {|
          initial broken_head(u) <- env:eq(1, 1);
          initial broken_env <- env:no_such_predicate(1);
          initial fine <- env:eq(1, 1);
          priv broken_priv(u) <- fine, env:also_missing(u);
        |}
      ()
  in
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      (match Principal.activate p s svc ~role:"broken_head" () with
      | Error (Protocol.Bad_request _) -> ()
      | _ -> Alcotest.fail "unbound head not contained");
      (match Principal.activate p s svc ~role:"broken_env" () with
      | Error (Protocol.Bad_request _) -> ()
      | _ -> Alcotest.fail "unknown predicate not contained");
      (* The service is still healthy. *)
      (match Principal.activate p s svc ~role:"fine" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "healthy role broken: %s" (Protocol.denial_to_string d));
      match Principal.invoke p s svc ~privilege:"broken_priv" ~args:[ Value.Int 1 ] with
      | Error (Protocol.Bad_request _) -> ()
      | _ -> Alcotest.fail "privilege policy error not contained")

let test_principal_wallet_management () =
  let world = World.create () in
  let civ = Civ.create world ~name:"civ" () in
  let p = Principal.create world ~name:"p" in
  let appt =
    Civ.issue civ ~kind:"card" ~args:[] ~holder:(Principal.id p)
      ~holder_key:(Principal.longterm_public p) ()
  in
  Principal.grant_appointment p appt;
  Alcotest.(check int) "wallet" 1 (List.length (Principal.appointments p));
  Principal.drop_appointment p appt.Oasis_cert.Appointment.id;
  Alcotest.(check int) "dropped" 0 (List.length (Principal.appointments p))

let test_principal_node_rejects_non_challenge () =
  let world = World.create () in
  let p = Principal.create world ~name:"p" and q = Principal.create world ~name:"q" in
  let reply =
    World.run_proc world (fun () ->
        Oasis_sim.Network.rpc (World.network world) ~src:(Principal.id p) ~dst:(Principal.id q)
          Protocol.Deactivate_ok)
  in
  match reply with
  | Protocol.Denied (Protocol.Bad_request _) -> ()
  | _ -> Alcotest.fail "principals must refuse non-challenge requests"

let test_civ_audit_extension () =
  (* Sect. 6: the domain's CIV issues and validates audit certificates. *)
  let world = World.create () in
  let civ = Civ.create world ~name:"civ" () in
  let client = Ident.make "client" 1 and server = Ident.make "server" 1 in
  let cert =
    Civ.record_interaction civ ~client ~server ~client_outcome:Audit.Fulfilled
      ~server_outcome:Audit.Breached
  in
  Alcotest.(check bool) "validates" true (Civ.validate_audit civ cert);
  Alcotest.(check bool) "records virtual time" true (cert.Audit.at = World.now world);
  let laundered = Audit.with_server_outcome cert Audit.Fulfilled in
  Alcotest.(check bool) "tamper rejected" false (Civ.validate_audit civ laundered);
  (* Honest registrar: no fabrication. *)
  Alcotest.(check bool) "fabricate refused" true
    (match Oasis_trust.Registrar.fabricate (Civ.registrar civ) ~client ~server ~at:0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* Writes follow the primary. *)
  Civ.set_replica_down civ 0 true;
  Alcotest.(check bool) "primary down blocks audit" true
    (match
       Civ.record_interaction civ ~client ~server ~client_outcome:Audit.Fulfilled
         ~server_outcome:Audit.Fulfilled
     with
    | _ -> false
    | exception Civ.Primary_unavailable -> true)

let test_remote_predicate () =
  (* Sect. 2: a constraint answered by database lookup at another service. *)
  let world = World.create () in
  let registry =
    Service.create world ~name:"registry" ~policy:"initial noop <- env:eq(1, 1);" ()
  in
  Env.declare_fact (Service.env registry) "member";
  let club =
    Service.create world ~name:"club"
      ~policy:"initial insider(u) <- env:member_remote(u);" ()
  in
  Service.register_remote_predicate club ~local_name:"member_remote" ~at:(Service.id registry)
    ~remote_name:"member";
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      match
        Principal.activate p s club ~role:"insider" ~args:[ Some (Value.Id (Principal.id p)) ] ()
      with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "non-member admitted");
  Env.assert_fact (Service.env registry) "member" [ Value.Id (Principal.id p) ];
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      match
        Principal.activate p s club ~role:"insider" ~args:[ Some (Value.Id (Principal.id p)) ] ()
      with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "member denied: %s" (Protocol.denial_to_string d));
  (* The lookup really crossed the network. *)
  Alcotest.(check bool) "registry consulted" true
    (let st = Oasis_sim.Network.stats (World.network world) in
     st.Oasis_sim.Network.rpcs >= 3);
  (* A dead registry counts as "does not hold", not a crash. *)
  Oasis_sim.Network.set_down (World.network world) (Service.id registry) true;
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      match
        Principal.activate p s club ~role:"insider" ~args:[ Some (Value.Id (Principal.id p)) ] ()
      with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "dead registry should deny")

let test_hour_window_role_expires () =
  (* A role gated on hour_between collapses when the window closes — purely
     time-driven deactivation (no fact changes, no revocation). Start at
     16:00; window 9-17. *)
  let world = World.create () in
  World.run_until world (16.0 *. 3600.0);
  let svc =
    Service.create world ~name:"svc"
      ~policy:"initial day_shift <- *env:hour_between(9, 17);" ()
  in
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      match Principal.activate p (Principal.start_session p) svc ~role:"day_shift" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "denied: %s" (Protocol.denial_to_string d));
  Alcotest.(check int) "active at 16:00" 1 (List.length (Service.active_roles svc));
  World.run_until world (16.9 *. 3600.0);
  Alcotest.(check int) "active at 16:54" 1 (List.length (Service.active_roles svc));
  World.run_until world (17.1 *. 3600.0);
  World.settle world;
  Alcotest.(check int) "deactivated at 17:06" 0 (List.length (Service.active_roles svc))

(* ---------------- trust robustness (DESIGN.md §16) ---------------- *)

let trust_gate_world ?(band = 0.15) () =
  let world = World.create () in
  let civ = Civ.create world ~name:"civ" () in
  let policy =
    Printf.sprintf
      "initial customer(u) <- *appt:account(u)@civ ;\n\
       trusted(u) <- *customer(u), *env:trust_score(u) >= 0.6%s ;"
      (if band > 0.0 then Printf.sprintf " ~ %g" band else "")
  in
  let gate = Service.create world ~name:"gate" ~policy () in
  let p = Principal.create world ~name:"subject" in
  let peer = Principal.create world ~name:"peer" in
  let appt =
    Civ.issue civ ~kind:"account"
      ~args:[ Value.Id (Principal.id p) ]
      ~holder:(Principal.id p)
      ~holder_key:(Principal.longterm_public p) ()
  in
  Principal.grant_appointment p appt;
  let s =
    World.run_proc world (fun () ->
        let s = Principal.start_session p in
        (match Principal.activate p s gate ~role:"customer" () with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "customer denied: %s" (Protocol.denial_to_string d));
        s)
  in
  World.settle world;
  (world, civ, gate, p, s, Principal.id peer)

let interact world civ ~client ~server outcome =
  ignore
    (Civ.record_interaction civ ~client ~server ~client_outcome:outcome
       ~server_outcome:Audit.Fulfilled
      : Audit.t);
  World.settle world

let test_hysteresis_band () =
  let world, civ, gate, p, s, peer = trust_gate_world () in
  let me = Principal.id p in
  interact world civ ~client:me ~server:peer Audit.Fulfilled;
  interact world civ ~client:me ~server:peer Audit.Fulfilled;
  (* (2+1)/(2+2) = 0.75 >= 0.6: the gate grants. *)
  World.run_proc world (fun () ->
      match Principal.activate p s gate ~role:"trusted" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "trusted denied at 0.75: %s" (Protocol.denial_to_string d));
  (* Two breaches drop the score to (2+1)/(4+2) = 0.5 — below the 0.6
     grant gate but inside the 0.15 hold band: the role survives, the
     absorbed flap is counted. *)
  interact world civ ~client:me ~server:peer Audit.Breached;
  interact world civ ~client:me ~server:peer Audit.Breached;
  Alcotest.(check int) "role survives inside the band" 2 (List.length (Service.active_roles gate));
  Alcotest.(check bool) "flaps suppressed counted" true
    ((Service.stats gate).Service.flaps_suppressed > 0);
  (* Fresh activations still need the full grant threshold. *)
  World.run_proc world (fun () ->
      match Principal.activate p s gate ~role:"trusted" () with
      | Ok _ -> Alcotest.fail "activation must use the grant threshold, not the hold band"
      | Error _ -> ());
  (* Two more breaches: (2+1)/(6+2) = 0.375 < 0.45 — out of the band. *)
  interact world civ ~client:me ~server:peer Audit.Breached;
  interact world civ ~client:me ~server:peer Audit.Breached;
  Alcotest.(check int) "revoked below the band" 1 (List.length (Service.active_roles gate))

(* The δ=0 gate revokes at 0.5 where the banded gate above held on. *)
let test_no_band_flaps () =
  let world, civ, gate, p, s, peer = trust_gate_world ~band:0.0 () in
  let me = Principal.id p in
  interact world civ ~client:me ~server:peer Audit.Fulfilled;
  interact world civ ~client:me ~server:peer Audit.Fulfilled;
  World.run_proc world (fun () ->
      match Principal.activate p s gate ~role:"trusted" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "trusted denied at 0.75: %s" (Protocol.denial_to_string d));
  interact world civ ~client:me ~server:peer Audit.Breached;
  interact world civ ~client:me ~server:peer Audit.Breached;
  Alcotest.(check int) "no band: revoked at 0.5" 1 (List.length (Service.active_roles gate));
  Alcotest.(check int) "nothing suppressed" 0 (Service.stats gate).Service.flaps_suppressed

(* Anti-entropy re-delivery of an already-filed certificate must not
   cascade: the score did not move, so nobody is poked and no env-watch
   recheck runs. *)
let test_noop_redelivery_suppressed () =
  let world, civ, gate, p, s, peer = trust_gate_world () in
  let me = Principal.id p in
  interact world civ ~client:me ~server:peer Audit.Fulfilled;
  interact world civ ~client:me ~server:peer Audit.Fulfilled;
  World.run_proc world (fun () ->
      match Principal.activate p s gate ~role:"trusted" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "trusted denied: %s" (Protocol.denial_to_string d));
  let cert =
    Civ.record_interaction civ ~client:me ~server:peer ~client_outcome:Audit.Fulfilled
      ~server_outcome:Audit.Fulfilled
  in
  World.settle world;
  let before = (Service.stats gate).Service.env_rechecks in
  Alcotest.(check bool) "genuine certs recheck the watch" true (before > 0);
  Alcotest.(check bool) "duplicate not filed" false
    (World.file_audit_certificate world cert ~party:me);
  World.settle world;
  Alcotest.(check int) "wallet unchanged" 3 (History.size (World.wallet world me));
  Alcotest.(check int) "no recheck cascade on a no-op poke" before
    (Service.stats gate).Service.env_rechecks;
  match Obs.value (World.obs world) "trust.notify_suppressed" with
  | Some v -> Alcotest.(check bool) "suppression counted" true (v >= 1.0)
  | None -> Alcotest.fail "trust.notify_suppressed not registered"

(* Registrar crash between the two wallet filings: exactly one wallet
   updated, repaired idempotently by restart anti-entropy. *)
let test_mid_issuance_crash_heals () =
  let world = World.create () in
  let civ = Civ.create world ~name:"civ" () in
  let a = Ident.make "alice" 1 and b = Ident.make "bob" 1 in
  let cert =
    Civ.record_interaction_crashing civ ~client:a ~server:b ~client_outcome:Audit.Fulfilled
      ~server_outcome:Audit.Fulfilled
  in
  World.settle world;
  Alcotest.(check int) "client wallet filed" 1 (History.size (World.wallet world a));
  Alcotest.(check int) "server wallet missed" 0 (History.size (World.wallet world b));
  Alcotest.(check int) "one pending filing" 1 (Civ.pending_filings civ);
  Alcotest.(check bool) "registrar is down" true
    (match
       Civ.record_interaction civ ~client:a ~server:b ~client_outcome:Audit.Fulfilled
         ~server_outcome:Audit.Fulfilled
     with
    | _ -> false
    | exception Civ.Primary_unavailable -> true);
  Fault.restart (World.fault world) (Civ.id civ);
  World.settle world;
  Alcotest.(check int) "server wallet healed" 1 (History.size (World.wallet world b));
  Alcotest.(check int) "client wallet not double-counted" 1 (History.size (World.wallet world a));
  Alcotest.(check int) "nothing pending" 0 (Civ.pending_filings civ);
  Alcotest.(check bool) "certificate still validates" true (Civ.validate_audit civ cert)

(* Tampering with the durable decision-log export between crash and
   restart: the fail-closed default refuses resume with a distinct error
   and stays down; the fail-open ablation admits the forged chain. *)
let test_chain_tamper_fail_closed () =
  let run_one ~fail_open =
    let world = World.create () in
    let svc =
      Service.create world ~name:"svc"
        ~config:{ Service.default_config with fail_open_chain = fail_open }
        ~policy:"initial r <- env:eq(1, 1);" ()
    in
    let p = Principal.create world ~name:"p" in
    World.run_proc world (fun () ->
        let s = Principal.start_session p in
        match Principal.activate p s svc ~role:"r" () with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "activate: %s" (Protocol.denial_to_string d));
    Alcotest.(check bool) "chain nonempty" true (Dlog.length (Service.decision_log svc) > 0);
    Service.crash svc;
    let key = "dlog:" ^ Ident.to_string (Service.id svc) in
    Alcotest.(check bool) "durable blob corrupted" true
      (Durable.corrupt (World.durable world) key ~byte:60);
    svc
  in
  let svc = run_one ~fail_open:false in
  (match Service.restart svc with
  | () -> Alcotest.fail "tampered chain must refuse resume"
  | exception Service.Chain_tampered { service; _ } ->
      Alcotest.(check string) "refusal names the service" "svc" service);
  Alcotest.(check bool) "stays crashed (rolled back)" true (Service.is_crashed svc);
  let ablation = run_one ~fail_open:true in
  (match Service.restart ablation with
  | () -> ()
  | exception Service.Chain_tampered _ -> Alcotest.fail "fail-open ablation must admit");
  Alcotest.(check bool) "ablation resumed" false (Service.is_crashed ablation)

let suite =
  ( "world",
    [
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "run_proc deadlock" `Quick test_run_proc_detects_deadlock;
      Alcotest.test_case "settle semantics" `Quick test_settle_leaves_future_timers;
      Alcotest.test_case "fresh ids" `Quick test_fresh_ids_distinct;
      Alcotest.test_case "multiple sessions" `Quick test_multiple_sessions_per_principal;
      Alcotest.test_case "policy errors contained" `Quick test_policy_errors_contained;
      Alcotest.test_case "wallet" `Quick test_principal_wallet_management;
      Alcotest.test_case "node refuses non-challenge" `Quick
        test_principal_node_rejects_non_challenge;
      Alcotest.test_case "civ audit extension" `Quick test_civ_audit_extension;
      Alcotest.test_case "remote predicate" `Quick test_remote_predicate;
      Alcotest.test_case "hour-window deactivation" `Quick test_hour_window_role_expires;
      Alcotest.test_case "hysteresis band holds" `Quick test_hysteresis_band;
      Alcotest.test_case "no band flaps" `Quick test_no_band_flaps;
      Alcotest.test_case "no-op re-delivery suppressed" `Quick test_noop_redelivery_suppressed;
      Alcotest.test_case "mid-issuance crash heals" `Quick test_mid_issuance_crash_heals;
      Alcotest.test_case "chain tamper fail-closed" `Quick test_chain_tamper_fail_closed;
    ] )
