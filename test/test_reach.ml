(* Symbolic goal-reachability: adversarial verdicts, witness plans and the
   R-rule findings (lib/policy/reach.ml). The cross-check against the live
   engine lives in test_fuzz.ml; these are the analyzer's own edge cases. *)

module Analysis = Oasis_policy.Analysis
module Reach = Oasis_policy.Reach
module Lint = Oasis_policy.Lint
module Parser = Oasis_policy.Parser

let policy name ?kinds src =
  Analysis.of_statements ~name ?appointment_kinds:kinds (Parser.parse_exn src)

let verdict_t : Reach.verdict Alcotest.testable =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Reach.verdict_to_string v))
    ( = )

let verdict ?adversary ?pins world ~service ~role =
  let result = Reach.analyse ?adversary ?pins world in
  match Reach.goal_for result ~service ~role with
  | Some g -> g.Reach.g_verdict
  | None -> Alcotest.failf "goal %s@%s not in result" role service

let test_empty_wallet_unreachable () =
  let world = [ policy "h" "initial logged_in(u) <- appt:employee(u);" ] in
  Alcotest.check verdict_t "empty wallet" Reach.Unreachable
    (verdict world ~service:"h" ~role:"logged_in");
  Alcotest.check verdict_t "held employee"
    Reach.Reachable
    (verdict
       ~adversary:{ Reach.held_appointments = [ ("h", "employee") ]; held_roles = [] }
       world ~service:"h" ~role:"logged_in")

let test_appointment_chain () =
  (* The adversary holds only is_admin, but hr_admin can self-issue
     employee — the chain the naive analysis misses. *)
  let world =
    [
      policy "h"
        {|
          initial hr_admin(a) <- appt:is_admin(a);
          initial logged_in(u) <- appt:employee(u);
          appoint employee(u) <- hr_admin(_a);
        |};
    ]
  in
  let adversary = { Reach.held_appointments = [ ("h", "is_admin") ]; held_roles = [] } in
  Alcotest.check verdict_t "chained" Reach.Reachable
    (verdict ~adversary world ~service:"h" ~role:"logged_in");
  (* The witness must record the chain, and its plan must order the
     self-appointment after the issuing role and before the goal. *)
  let result = Reach.analyse ~adversary world in
  let g = Option.get (Reach.goal_for result ~service:"h" ~role:"logged_in") in
  let steps = Reach.plan (Option.get g.Reach.g_witness) in
  Alcotest.(check (list string)) "plan order"
    [ "activate hr_admin@h"; "appoint employee@h"; "activate logged_in@h" ]
    (List.map
       (function
         | Reach.Activate { service; role } -> Printf.sprintf "activate %s@%s" role service
         | Reach.Self_appoint { issuer; kind } -> Printf.sprintf "appoint %s@%s" kind issuer)
       steps)

let test_chain_cycle () =
  (* x needs appointment k; k is only appointable from x: a cycle through
     the appointment chain. Nothing is derivable from an empty wallet, but
     holding k breaks the knot. *)
  let world =
    [
      policy "s"
        {|
          x(u) <- appt:k(u);
          appoint k(u) <- x(u);
        |};
    ]
  in
  Alcotest.check verdict_t "cycle unreachable" Reach.Unreachable
    (verdict world ~service:"s" ~role:"x");
  Alcotest.check verdict_t "held k breaks the cycle" Reach.Reachable
    (verdict
       ~adversary:{ Reach.held_appointments = [ ("s", "k") ]; held_roles = [] }
       world ~service:"s" ~role:"x")

let test_prereq_cycle_unsolved () =
  (* Mutual prerequisites: lint flags the cycle; the fixpoint must refuse
     to treat it as reachable. *)
  let world = [ policy "s" "x(u) <- y(u); y(u) <- x(u);" ] in
  Alcotest.check verdict_t "x" Reach.Unreachable (verdict world ~service:"s" ~role:"x");
  Alcotest.check verdict_t "y" Reach.Unreachable (verdict world ~service:"s" ~role:"y");
  (* An insider holding one of them as an RMC unlocks the other. *)
  Alcotest.check verdict_t "insider"
    Reach.Reachable
    (verdict
       ~adversary:{ Reach.held_appointments = []; held_roles = [ ("s", "x") ] }
       world ~service:"s" ~role:"y")

let test_env_three_valued () =
  let world =
    [ policy "s" ~kinds:[ "k" ] "r(u) <- appt:k(u), env:!excluded(u, u);" ]
  in
  let adversary = { Reach.held_appointments = [ ("s", "k") ]; held_roles = [] } in
  Alcotest.check verdict_t "free negation is contingent" Reach.Env_contingent
    (verdict ~adversary world ~service:"s" ~role:"r");
  Alcotest.check verdict_t "pinned-false negation holds" Reach.Reachable
    (verdict ~adversary ~pins:[ ("excluded", false) ] world ~service:"s" ~role:"r");
  Alcotest.check verdict_t "pinned-true negation blocks" Reach.Unreachable
    (verdict ~adversary ~pins:[ ("excluded", true) ] world ~service:"s" ~role:"r");
  (* The contingent witness records the assumption with its polarity. *)
  let result = Reach.analyse ~adversary world in
  let g = Option.get (Reach.goal_for result ~service:"s" ~role:"r") in
  Alcotest.(check (list (pair string bool)))
    "assumption recorded" [ ("excluded", false) ] g.Reach.g_assumptions

let test_pure_builtins_decided () =
  let world =
    [
      policy "s"
        {|
          initial always <- env:eq(1, 1);
          initial never <- env:eq(1, 2);
          initial nocturnal <- env:hour_between(20, 8);
        |};
    ]
  in
  Alcotest.check verdict_t "eq(1,1) decided true" Reach.Reachable
    (verdict world ~service:"s" ~role:"always");
  Alcotest.check verdict_t "eq(1,2) decided false" Reach.Unreachable
    (verdict world ~service:"s" ~role:"never");
  Alcotest.check verdict_t "timed builtin stays contingent" Reach.Env_contingent
    (verdict world ~service:"s" ~role:"nocturnal")

let test_dangling_references () =
  (* Multi-service danglers: unknown service, unknown role, unknown kind —
     all must read as unreachable rather than crash or over-approximate. *)
  let a =
    policy "a"
      {|
        r1(u) <- ghost(u)@nowhere;
        r2(u) <- real(u)@b;
        r3(u) <- appt:unissued(u)@b;
      |}
  in
  let b = policy "b" "initial other <- env:eq(1, 1);" in
  let world = [ a; b ] in
  let adversary = Reach.permissive world in
  List.iter
    (fun role ->
      Alcotest.check verdict_t (role ^ " dangling") Reach.Unreachable
        (verdict ~adversary world ~service:"a" ~role))
    [ "r1"; "r2"; "r3" ]

let test_cross_service_chain () =
  (* The appointment is issued by ANOTHER service, whose appoint rule
     fires from a role reachable there: a chain across services. *)
  let hr = policy "hr" ~kinds:[ "staff_card" ] {|
      initial officer(o) <- appt:staff_card(o);
      appoint employee(u) <- officer(_o);
    |} in
  let hospital = policy "hospital" "initial logged_in(u) <- appt:employee(u)@hr;" in
  let world = [ hr; hospital ] in
  Alcotest.check verdict_t "cross-service chain" Reach.Reachable
    (verdict
       ~adversary:{ Reach.held_appointments = [ ("hr", "staff_card") ]; held_roles = [] }
       world ~service:"hospital" ~role:"logged_in");
  Alcotest.check verdict_t "without the card" Reach.Unreachable
    (verdict world ~service:"hospital" ~role:"logged_in")

let find_codes findings = List.map (fun f -> f.Lint.code) findings |> List.sort_uniq compare

let test_r001_open_privilege () =
  let world = [ policy "s" "initial open_door <- env:eq(1, 1);" ] in
  let findings = Reach.findings world in
  Alcotest.(check (list string)) "R001 fires" [ "R001" ] (find_codes findings);
  let f = List.hd findings in
  Alcotest.(check string) "error grade" "error" (Lint.severity_to_string f.Lint.severity);
  Alcotest.(check bool) "located" true (f.Lint.loc.Oasis_policy.Rule.line > 0);
  (* Env-gated but credential-free is still open: anyone can wait for the
     environment. The message says which assumptions it rides on. *)
  let contingent = [ policy "s" "initial nightly <- env:hour_between(20, 8);" ] in
  match Reach.findings contingent with
  | [ f ] ->
      Alcotest.(check string) "R001" "R001" f.Lint.code;
      Alcotest.(check bool) "mentions the assumption" true
        (let msg = f.Lint.message in
         let has sub =
           let n = String.length sub and m = String.length msg in
           let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
           go 0
         in
         has "hour_between")
  | fs -> Alcotest.failf "expected one R001, got %d findings" (List.length fs)

let test_r002_dead_grant () =
  let world =
    [ policy "s" ~kinds:[ "k" ] "r(u) <- appt:k(u); dead(u) <- appt:nobody_issues(u);" ]
  in
  let findings = Reach.findings world in
  Alcotest.(check (list string)) "R002 fires" [ "R002" ] (find_codes findings);
  let f = List.hd findings in
  Alcotest.(check bool) "names the dead role" true
    (let has sub =
       let msg = f.Lint.message in
       let n = String.length sub and m = String.length msg in
       let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
       go 0
     in
     has "dead")

let test_r003_revocation_exempt () =
  (* An UNmonitored appointment guards a role that guards a privilege:
     revoke the appointment and the privilege-holding role survives. *)
  let world =
    [
      policy "s" ~kinds:[ "badge" ]
        {|
          initial operator(u) <- appt:badge(u);
          priv launch(u) <- operator(u);
        |};
    ]
  in
  (match Reach.findings world with
  | [ f ] ->
      Alcotest.(check string) "R003" "R003" f.Lint.code;
      Alcotest.(check string) "warning grade" "warning" (Lint.severity_to_string f.Lint.severity)
  | fs -> Alcotest.failf "expected exactly R003, got %d" (List.length fs));
  (* Starring the appointment silences it. *)
  let starred =
    [
      policy "s" ~kinds:[ "badge" ]
        {|
          initial operator(u) <- *appt:badge(u);
          priv launch(u) <- operator(u);
        |};
    ]
  in
  Alcotest.(check (list string)) "starred is clean" [] (find_codes (Reach.findings starred));
  (* Unmonitored appointments NOT on a path to anything sensitive are
     L202's business, not R003's. *)
  let benign = [ policy "s" ~kinds:[ "badge" ] "initial lobby(u) <- appt:badge(u);" ] in
  Alcotest.(check (list string)) "no sensitive role, no R003" []
    (find_codes (Reach.findings benign))

let test_waivers_apply () =
  let src = {|// lint:allow R003
initial operator(u) <- appt:badge(u);
priv launch(u) <- operator(u);
|} in
  let world = [ Analysis.of_statements ~name:"s" ~appointment_kinds:[ "badge" ] (Parser.parse_exn src) ] in
  let findings =
    Reach.findings world |> Lint.apply_waivers ~waivers:(Lint.waivers src)
  in
  Alcotest.(check (list string)) "R003 waived" [] (find_codes findings)

let test_json_smoke () =
  let world =
    [ policy "s" ~kinds:[ "k" ] "r(u) <- appt:k(u), env:f(u); dead(u) <- appt:x(u);" ]
  in
  let result = Reach.analyse ~adversary:(Reach.permissive world) world in
  let json = Reach.to_json ~findings:(Reach.findings world) result in
  List.iter
    (fun needle ->
      let has =
        let n = String.length needle and m = String.length json in
        let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Printf.sprintf "json contains %s" needle) true has)
    [
      "\"verdict\":\"env-contingent\"";
      "\"verdict\":\"unreachable\"";
      "\"assumptions\":[{\"pred\":\"f\",\"value\":true}]";
      "\"code\":\"R002\"";
      "\"errors\":1";
    ]

let suite =
  ( "reach",
    [
      Alcotest.test_case "empty wallet" `Quick test_empty_wallet_unreachable;
      Alcotest.test_case "appointment chain + plan" `Quick test_appointment_chain;
      Alcotest.test_case "appointment-chain cycle" `Quick test_chain_cycle;
      Alcotest.test_case "prereq cycle unsolved" `Quick test_prereq_cycle_unsolved;
      Alcotest.test_case "three-valued negation" `Quick test_env_three_valued;
      Alcotest.test_case "pure builtins decided" `Quick test_pure_builtins_decided;
      Alcotest.test_case "dangling references" `Quick test_dangling_references;
      Alcotest.test_case "cross-service chain" `Quick test_cross_service_chain;
      Alcotest.test_case "R001 open privilege" `Quick test_r001_open_privilege;
      Alcotest.test_case "R002 dead grant" `Quick test_r002_dead_grant;
      Alcotest.test_case "R003 revocation exempt" `Quick test_r003_revocation_exempt;
      Alcotest.test_case "waivers apply to R rules" `Quick test_waivers_apply;
      Alcotest.test_case "json smoke" `Quick test_json_smoke;
    ] )
