(* The discrete-event engine: heap, scheduling, processes. *)

module Heap = Oasis_sim.Heap
module Engine = Oasis_sim.Engine
module Proc = Oasis_sim.Proc
module Rng = Oasis_util.Rng

(* ---------------- Heap ---------------- *)

let test_heap_orders_by_time () =
  let h = Heap.create ~dummy:(-1) () in
  let rng = Rng.create 1 in
  for i = 0 to 199 do
    Heap.push h ~time:(Rng.float rng 100.0) ~seq:i i
  done;
  let rec drain last acc =
    match Heap.pop h with
    | None -> acc
    | Some (t, _, _) ->
        if t < last then Alcotest.fail "heap out of order";
        drain t (acc + 1)
  in
  Alcotest.(check int) "drained all" 200 (drain neg_infinity 0)

let test_heap_ties_by_seq () =
  let h = Heap.create ~dummy:(-1) () in
  for i = 0 to 9 do
    Heap.push h ~time:1.0 ~seq:i i
  done;
  for expected = 0 to 9 do
    match Heap.pop h with
    | Some (_, seq, v) ->
        Alcotest.(check int) "seq order" expected seq;
        Alcotest.(check int) "value follows" expected v
    | None -> Alcotest.fail "heap empty early"
  done

let test_heap_empty () =
  let h = Heap.create ~dummy:() () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek_time h = None);
  Heap.push h ~time:5.0 ~seq:0 ();
  Alcotest.(check (option (float 1e-9))) "peek" (Some 5.0) (Heap.peek_time h);
  Alcotest.(check int) "size" 1 (Heap.size h)

(* ---------------- Engine ---------------- *)

let test_engine_ordering () =
  let engine = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule engine ~after:3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule engine ~after:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule engine ~after:2.0 (fun () -> log := 2 :: !log));
  Engine.run engine;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now engine)

let test_engine_same_time_fifo () =
  let engine = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule engine ~after:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo at same instant" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let cancel = Engine.schedule engine ~after:1.0 (fun () -> fired := true) in
  Engine.cancel engine cancel;
  Engine.run engine;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_nested_scheduling () =
  let engine = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule engine ~after:1.0 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule engine ~after:1.0 (fun () -> log := "b" :: !log))));
  Engine.run engine;
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "time" 2.0 (Engine.now engine)

let test_engine_negative_delay_raises () =
  let engine = Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Engine.schedule engine ~after:(-1.0) (fun () -> ())))

let test_engine_run_until () =
  let engine = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule engine ~after:(float_of_int i) (fun () -> incr count))
  done;
  Engine.run_until engine 5.0;
  Alcotest.(check int) "five fired" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at horizon" 5.0 (Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "rest fired" 10 !count

let test_engine_run_until_advances_idle_clock () =
  let engine = Engine.create () in
  Engine.run_until engine 42.0;
  Alcotest.(check (float 1e-9)) "advances without events" 42.0 (Engine.now engine)

let test_engine_every () =
  let engine = Engine.create () in
  let count = ref 0 in
  ignore
    (Engine.every engine ~period:1.0 (fun () ->
         incr count;
         !count < 5));
  Engine.run engine;
  Alcotest.(check int) "stopped at false" 5 !count

let test_engine_every_cancel () =
  let engine = Engine.create () in
  let count = ref 0 in
  let timer =
    Engine.every engine ~period:1.0 (fun () ->
        incr count;
        true)
  in
  ignore (Engine.schedule engine ~after:3.5 (fun () -> Engine.cancel engine timer));
  Engine.run engine;
  Alcotest.(check int) "three ticks then cancelled" 3 !count

let test_engine_every_cancel_from_callback () =
  let engine = Engine.create () in
  let count = ref 0 in
  let handle = ref None in
  let timer =
    Engine.every engine ~period:1.0 (fun () ->
        incr count;
        if !count = 2 then Engine.cancel engine (Option.get !handle);
        true)
  in
  handle := Some timer;
  Engine.run engine;
  Alcotest.(check int) "stops when cancelled from within" 2 !count

let test_engine_stats () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~after:1.0 (fun () -> ()));
  ignore (Engine.schedule engine ~after:2.0 (fun () -> ()));
  Alcotest.(check int) "pending" 2 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "executed" 2 (Engine.events_executed engine)

(* ---------------- Proc ---------------- *)

let test_proc_sleep_ordering () =
  let engine = Engine.create () in
  let log = ref [] in
  Proc.spawn engine (fun () ->
      Proc.sleep 2.0;
      log := "slow" :: !log);
  Proc.spawn engine (fun () ->
      Proc.sleep 1.0;
      log := "fast" :: !log);
  Engine.run engine;
  Alcotest.(check (list string)) "order" [ "fast"; "slow" ] (List.rev !log)

let test_proc_ivar_fill_then_read () =
  let engine = Engine.create () in
  let iv = Proc.ivar () in
  Proc.fill iv 42;
  let got = ref 0 in
  Proc.spawn engine (fun () -> got := Proc.read iv);
  Engine.run engine;
  Alcotest.(check int) "read filled" 42 !got

let test_proc_ivar_read_then_fill () =
  let engine = Engine.create () in
  let iv = Proc.ivar () in
  let got = ref 0 in
  Proc.spawn engine (fun () -> got := Proc.read iv);
  ignore (Engine.schedule engine ~after:1.0 (fun () -> Proc.fill iv 7));
  Engine.run engine;
  Alcotest.(check int) "read woke" 7 !got

let test_proc_ivar_multiple_readers () =
  let engine = Engine.create () in
  let iv = Proc.ivar () in
  let sum = ref 0 in
  for _ = 1 to 3 do
    Proc.spawn engine (fun () -> sum := !sum + Proc.read iv)
  done;
  ignore (Engine.schedule engine ~after:1.0 (fun () -> Proc.fill iv 5));
  Engine.run engine;
  Alcotest.(check int) "all readers woke" 15 !sum

let test_proc_double_fill_raises () =
  let iv = Proc.ivar () in
  Proc.fill iv 1;
  Alcotest.check_raises "double fill" (Invalid_argument "Proc.fill: ivar already filled")
    (fun () -> Proc.fill iv 2)

let test_proc_poll () =
  let iv = Proc.ivar () in
  Alcotest.(check (option int)) "empty" None (Proc.poll iv);
  Proc.fill iv 3;
  Alcotest.(check (option int)) "full" (Some 3) (Proc.poll iv)

let test_proc_read_timeout_fires () =
  let engine = Engine.create () in
  let iv : int Proc.ivar = Proc.ivar () in
  let timed_out = ref false in
  Proc.spawn engine (fun () ->
      match Proc.read_timeout engine iv ~timeout:5.0 with
      | _ -> ()
      | exception Proc.Timeout -> timed_out := true);
  Engine.run engine;
  Alcotest.(check bool) "timeout raised" true !timed_out;
  Alcotest.(check (float 1e-9)) "at deadline" 5.0 (Engine.now engine)

let test_proc_read_timeout_beaten_by_fill () =
  let engine = Engine.create () in
  let iv = Proc.ivar () in
  let got = ref 0 in
  Proc.spawn engine (fun () -> got := Proc.read_timeout engine iv ~timeout:5.0);
  ignore (Engine.schedule engine ~after:1.0 (fun () -> Proc.fill iv 9));
  Engine.run engine;
  Alcotest.(check int) "value before timeout" 9 !got

let test_proc_nested_spawn () =
  let engine = Engine.create () in
  let log = ref [] in
  Proc.spawn engine (fun () ->
      Proc.sleep 1.0;
      Proc.spawn engine (fun () ->
          Proc.sleep 1.0;
          log := "child" :: !log);
      log := "parent" :: !log);
  Engine.run engine;
  Alcotest.(check (list string)) "both ran" [ "parent"; "child" ] (List.rev !log)

let suite =
  ( "sim",
    [
      Alcotest.test_case "heap time order" `Quick test_heap_orders_by_time;
      Alcotest.test_case "heap tie-break" `Quick test_heap_ties_by_seq;
      Alcotest.test_case "heap empty" `Quick test_heap_empty;
      Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
      Alcotest.test_case "engine same-time fifo" `Quick test_engine_same_time_fifo;
      Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
      Alcotest.test_case "engine nested" `Quick test_engine_nested_scheduling;
      Alcotest.test_case "engine negative delay" `Quick test_engine_negative_delay_raises;
      Alcotest.test_case "engine run_until" `Quick test_engine_run_until;
      Alcotest.test_case "engine run_until idle" `Quick test_engine_run_until_advances_idle_clock;
      Alcotest.test_case "engine every" `Quick test_engine_every;
      Alcotest.test_case "engine every cancel" `Quick test_engine_every_cancel;
      Alcotest.test_case "engine every cancel inside" `Quick test_engine_every_cancel_from_callback;
      Alcotest.test_case "engine stats" `Quick test_engine_stats;
      Alcotest.test_case "proc sleep order" `Quick test_proc_sleep_ordering;
      Alcotest.test_case "ivar fill then read" `Quick test_proc_ivar_fill_then_read;
      Alcotest.test_case "ivar read then fill" `Quick test_proc_ivar_read_then_fill;
      Alcotest.test_case "ivar multiple readers" `Quick test_proc_ivar_multiple_readers;
      Alcotest.test_case "ivar double fill" `Quick test_proc_double_fill_raises;
      Alcotest.test_case "ivar poll" `Quick test_proc_poll;
      Alcotest.test_case "read_timeout fires" `Quick test_proc_read_timeout_fires;
      Alcotest.test_case "read_timeout beaten" `Quick test_proc_read_timeout_beaten_by_fill;
      Alcotest.test_case "nested spawn" `Quick test_proc_nested_spawn;
    ] )
