(* Certificates: Fig. 4 security properties, credential records, caching. *)

module Rmc = Oasis_cert.Rmc
module Appointment = Oasis_cert.Appointment
module Cr = Oasis_cert.Credential_record
module Vcache = Oasis_cert.Validation_cache
module Wire = Oasis_cert.Wire
module Secret = Oasis_crypto.Secret
module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Rng = Oasis_util.Rng

let secret = Secret.of_string "test-secret-0123456789abcdef0123"
let other_secret = Secret.of_string "other-secret-123456789abcdef012"
let issuer = Ident.make "service" 1
let cert_id = Ident.make "cert" 1

let sample_rmc ?(args = [ Value.Id (Ident.make "principal" 3); Value.Int 5 ]) ?(key = "session-key") () =
  Rmc.issue ~secret ~principal_key:key ~id:cert_id ~issuer ~role:"treating_doctor" ~args
    ~issued_at:10.0

(* ---------------- RMC (Fig. 4) ---------------- *)

let test_rmc_verify () =
  let rmc = sample_rmc () in
  Alcotest.(check bool) "verifies" true (Rmc.verify ~secret ~principal_key:"session-key" rmc)

let test_rmc_tamper_args () =
  (* Protection from tampering. *)
  let rmc = sample_rmc () in
  let forged = Rmc.with_args rmc [ Value.Id (Ident.make "principal" 4); Value.Int 5 ] in
  Alcotest.(check bool) "tampered fields rejected" false
    (Rmc.verify ~secret ~principal_key:"session-key" forged)

let test_rmc_forgery_without_secret () =
  (* Protection from forgery: signing with a guessed secret fails. *)
  let forged =
    Rmc.issue ~secret:other_secret ~principal_key:"session-key" ~id:cert_id ~issuer
      ~role:"treating_doctor"
      ~args:[ Value.Int 5 ]
      ~issued_at:10.0
  in
  Alcotest.(check bool) "wrong secret rejected" false
    (Rmc.verify ~secret ~principal_key:"session-key" forged)

let test_rmc_theft () =
  (* Protection from theft: a stolen RMC presented under another session key. *)
  let rmc = sample_rmc () in
  Alcotest.(check bool) "thief's key rejected" false
    (Rmc.verify ~secret ~principal_key:"thief-session-key" rmc)

let test_rmc_principal_key_not_carried () =
  (* Fig. 4: the principal id is an argument of the signature, not a field. *)
  let rmc = sample_rmc ~key:"a-very-long-session-principal-key" () in
  let rmc2 = sample_rmc ~key:"x" () in
  Alcotest.(check int) "size independent of key" (Rmc.size_bytes rmc) (Rmc.size_bytes rmc2)

let test_rmc_size_grows_with_params () =
  let small = sample_rmc ~args:[ Value.Int 1 ] () in
  let large = sample_rmc ~args:(List.init 10 (fun i -> Value.Int i)) () in
  Alcotest.(check bool) "more params, bigger cert" true
    (Rmc.size_bytes large > Rmc.size_bytes small)

let test_rmc_crr () =
  let rmc = sample_rmc () in
  let i, c = Rmc.crr rmc in
  Alcotest.(check bool) "issuer" true (Ident.equal i issuer);
  Alcotest.(check bool) "cert id" true (Ident.equal c cert_id)

(* ---------------- Appointment certificates ---------------- *)

let sample_appt ?(epoch = 0) ?expires_at ?(holder = "holder-longterm-key") () =
  Appointment.issue ~master_secret:secret ~epoch ~id:cert_id ~issuer ~kind:"medically_qualified"
    ~args:[ Value.Id (Ident.make "principal" 3) ]
    ~holder ~issued_at:5.0 ?expires_at ()

let test_appt_verify () =
  let appt = sample_appt () in
  Alcotest.(check bool) "verifies" true
    (Appointment.verify ~master_secret:secret ~current_epoch:0 ~now:10.0 appt)

let test_appt_theft_rebind () =
  let appt = sample_appt () in
  let stolen = Appointment.with_holder appt "thief-key" in
  Alcotest.(check bool) "rebound holder rejected" false
    (Appointment.verify ~master_secret:secret ~current_epoch:0 ~now:10.0 stolen)

let test_appt_tamper_args () =
  let appt = sample_appt () in
  let forged = Appointment.with_args appt [ Value.Id (Ident.make "principal" 99) ] in
  Alcotest.(check bool) "tampered rejected" false
    (Appointment.verify ~master_secret:secret ~current_epoch:0 ~now:10.0 forged)

let test_appt_expiry () =
  let appt = sample_appt ~expires_at:100.0 () in
  Alcotest.(check bool) "before expiry" true
    (Appointment.verify ~master_secret:secret ~current_epoch:0 ~now:99.0 appt);
  Alcotest.(check bool) "at expiry" false
    (Appointment.verify ~master_secret:secret ~current_epoch:0 ~now:100.0 appt);
  Alcotest.(check bool) "expired flag" true (Appointment.expired ~now:100.0 appt);
  Alcotest.(check bool) "no expiry never expires" false
    (Appointment.expired ~now:1e12 (sample_appt ()))

let test_appt_epoch_rotation () =
  (* Sect. 4.1: re-issue under a new server secret invalidates old copies. *)
  let appt = sample_appt ~epoch:0 () in
  Alcotest.(check bool) "old epoch rejected" false
    (Appointment.verify ~master_secret:secret ~current_epoch:1 ~now:10.0 appt);
  Alcotest.(check bool) "signature itself still checks" true
    (Appointment.verify_ignoring_epoch ~master_secret:secret ~now:10.0 appt);
  let reissued = sample_appt ~epoch:1 () in
  Alcotest.(check bool) "re-issued verifies" true
    (Appointment.verify ~master_secret:secret ~current_epoch:1 ~now:10.0 reissued)

let test_appt_epoch_secrets_differ () =
  let e0 = sample_appt ~epoch:0 () and e1 = sample_appt ~epoch:1 () in
  Alcotest.(check bool) "epoch changes signature" false
    (Oasis_crypto.Sha256.equal e0.Appointment.signature e1.Appointment.signature)

(* ---------------- Secret rotation ---------------- *)

let test_secret_rotate_deterministic () =
  let r1 = Secret.rotate secret ~epoch:1 and r1' = Secret.rotate secret ~epoch:1 in
  Alcotest.(check bool) "deterministic" true (Secret.equal r1 r1');
  let r2 = Secret.rotate secret ~epoch:2 in
  Alcotest.(check bool) "epochs differ" false (Secret.equal r1 r2)

let test_secret_generate_distinct () =
  let rng = Rng.create 1 in
  Alcotest.(check bool) "distinct" false (Secret.equal (Secret.generate rng) (Secret.generate rng))

(* ---------------- Credential records ---------------- *)

let add_record store n =
  Cr.add store ~cert_id:(Ident.make "cert" n) ~issuer ~kind:Cr.Kind_rmc
    ~principal:(Ident.make "principal" 1) ~name:"doctor" ~args:[] ~issued_at:0.0

let test_cr_lifecycle () =
  let store = Cr.create_store () in
  let record = add_record store 1 in
  Alcotest.(check bool) "valid initially" true (Cr.is_valid record);
  Alcotest.(check bool) "findable" true (Cr.find store (Ident.make "cert" 1) <> None);
  (match Cr.revoke store (Ident.make "cert" 1) ~at:5.0 ~reason:"test" with
  | Some r -> Alcotest.(check bool) "same record" true (Ident.equal r.Cr.cert_id record.Cr.cert_id)
  | None -> Alcotest.fail "revoke should report the record");
  Alcotest.(check bool) "now invalid" false (Cr.is_valid record);
  Alcotest.(check bool) "second revoke is None" true
    (Cr.revoke store (Ident.make "cert" 1) ~at:6.0 ~reason:"again" = None);
  Alcotest.(check bool) "unknown revoke is None" true
    (Cr.revoke store (Ident.make "cert" 99) ~at:6.0 ~reason:"none" = None)

let test_cr_duplicate_raises () =
  let store = Cr.create_store () in
  ignore (add_record store 1);
  Alcotest.(check bool) "duplicate raises" true
    (match add_record store 1 with _ -> false | exception Invalid_argument _ -> true)

let test_cr_counts () =
  let store = Cr.create_store () in
  ignore (add_record store 1);
  ignore (add_record store 2);
  ignore (Cr.revoke store (Ident.make "cert" 1) ~at:1.0 ~reason:"r");
  Alcotest.(check int) "count" 2 (Cr.count store);
  Alcotest.(check int) "valid_count" 1 (Cr.valid_count store)

let test_cr_topic () =
  let store = Cr.create_store () in
  let record = add_record store 7 in
  Alcotest.(check string) "topic" "cr:service#1/cert#7" (Cr.topic record);
  Alcotest.(check string) "topic_of agrees" (Cr.topic record)
    (Cr.topic_of ~issuer ~cert_id:(Ident.make "cert" 7))

(* ---------------- Validation cache ---------------- *)

let verdict_testable =
  Alcotest.testable
    (fun ppf -> function
      | Some Vcache.Valid -> Format.pp_print_string ppf "Some Valid"
      | Some Vcache.Invalid -> Format.pp_print_string ppf "Some Invalid"
      | None -> Format.pp_print_string ppf "None")
    ( = )

let test_cache () =
  let cache = Vcache.create () in
  let id1 = Ident.make "cert" 1 in
  Alcotest.(check verdict_testable) "miss" None (Vcache.lookup cache id1);
  Vcache.cache_valid cache id1;
  Alcotest.(check verdict_testable) "hit" (Some Vcache.Valid) (Vcache.lookup cache id1);
  Vcache.invalidate cache id1;
  (* Invalidation leaves a cached negative verdict, not a hole: the next
     presentation is refused locally instead of re-issuing the callback. *)
  Alcotest.(check verdict_testable) "negative after invalidate" (Some Vcache.Invalid)
    (Vcache.lookup cache id1);
  Vcache.invalidate cache id1;
  let stats = Vcache.stats cache in
  Alcotest.(check int) "hits" 1 stats.Vcache.hits;
  Alcotest.(check int) "negative hits" 1 stats.Vcache.negative_hits;
  Alcotest.(check int) "misses" 1 stats.Vcache.misses;
  Alcotest.(check int) "invalidations idempotent" 1 stats.Vcache.invalidations;
  Alcotest.(check int) "entries" 0 stats.Vcache.entries;
  Alcotest.(check int) "negative entries" 1 stats.Vcache.negative_entries

let test_cache_clear_and_reset () =
  let cache = Vcache.create () in
  Vcache.cache_valid cache (Ident.make "cert" 1);
  Vcache.clear cache;
  Alcotest.(check verdict_testable) "cleared" None (Vcache.lookup cache (Ident.make "cert" 1));
  Vcache.reset_stats cache;
  Alcotest.(check int) "stats reset" 0 (Vcache.stats cache).Vcache.misses

(* ---------------- Wire encoding ---------------- *)

let test_wire_domain_separation () =
  let fields = [ Wire.Fstring "x" ] in
  Alcotest.(check bool) "tags separate kinds" false
    (String.equal (Wire.encode "rmc" fields) (Wire.encode "appt" fields))

let test_wire_field_boundaries () =
  (* ["ab"],["c"] vs ["a"],["bc"] must encode differently. *)
  let e1 = Wire.encode "t" [ Wire.Fstring "ab"; Wire.Fstring "c" ] in
  let e2 = Wire.encode "t" [ Wire.Fstring "a"; Wire.Fstring "bc" ] in
  Alcotest.(check bool) "length prefixes separate" false (String.equal e1 e2)

let suite =
  ( "cert",
    [
      Alcotest.test_case "rmc verify" `Quick test_rmc_verify;
      Alcotest.test_case "rmc tamper" `Quick test_rmc_tamper_args;
      Alcotest.test_case "rmc forgery" `Quick test_rmc_forgery_without_secret;
      Alcotest.test_case "rmc theft" `Quick test_rmc_theft;
      Alcotest.test_case "rmc hidden principal key" `Quick test_rmc_principal_key_not_carried;
      Alcotest.test_case "rmc size" `Quick test_rmc_size_grows_with_params;
      Alcotest.test_case "rmc crr" `Quick test_rmc_crr;
      Alcotest.test_case "appt verify" `Quick test_appt_verify;
      Alcotest.test_case "appt theft" `Quick test_appt_theft_rebind;
      Alcotest.test_case "appt tamper" `Quick test_appt_tamper_args;
      Alcotest.test_case "appt expiry" `Quick test_appt_expiry;
      Alcotest.test_case "appt epoch rotation" `Quick test_appt_epoch_rotation;
      Alcotest.test_case "appt epoch secrets" `Quick test_appt_epoch_secrets_differ;
      Alcotest.test_case "secret rotation" `Quick test_secret_rotate_deterministic;
      Alcotest.test_case "secret generation" `Quick test_secret_generate_distinct;
      Alcotest.test_case "cr lifecycle" `Quick test_cr_lifecycle;
      Alcotest.test_case "cr duplicate" `Quick test_cr_duplicate_raises;
      Alcotest.test_case "cr counts" `Quick test_cr_counts;
      Alcotest.test_case "cr topic" `Quick test_cr_topic;
      Alcotest.test_case "validation cache" `Quick test_cache;
      Alcotest.test_case "cache clear/reset" `Quick test_cache_clear_and_reset;
      Alcotest.test_case "wire domain separation" `Quick test_wire_domain_separation;
      Alcotest.test_case "wire boundaries" `Quick test_wire_field_boundaries;
    ] )
