(* Canonical policy printing: parse . print = id, property-tested over
   randomly generated rules. *)

module Parser = Oasis_policy.Parser
module Rule = Oasis_policy.Rule
module Term = Oasis_policy.Term
module Value = Oasis_util.Value
module Ident = Oasis_util.Ident

(* ---------------- structural equality ---------------- *)

let term_equal = Term.equal

let args_equal a b = List.length a = List.length b && List.for_all2 term_equal a b

let cred_ref_equal (a : Rule.cred_ref) (b : Rule.cred_ref) =
  a.service = b.service && String.equal a.name b.name && args_equal a.args b.args

let condition_equal a b =
  match (a, b) with
  | Rule.Prereq x, Rule.Prereq y | Rule.Appointment x, Rule.Appointment y -> cred_ref_equal x y
  | Rule.Constraint (n1, a1), Rule.Constraint (n2, a2) -> String.equal n1 n2 && args_equal a1 a2
  | _ -> false

let statement_equal a b =
  match (a, b) with
  | Parser.Activation x, Parser.Activation y ->
      String.equal x.Rule.role y.Rule.role
      && args_equal x.Rule.params y.Rule.params
      && x.Rule.initial = y.Rule.initial
      && x.Rule.membership = y.Rule.membership
      && List.length x.Rule.conditions = List.length y.Rule.conditions
      && List.for_all2 condition_equal x.Rule.conditions y.Rule.conditions
  | Parser.Appointer x, Parser.Appointer y
  | Parser.Authorization x, Parser.Authorization y ->
      String.equal x.Rule.privilege y.Rule.privilege
      && args_equal x.Rule.priv_args y.Rule.priv_args
      && List.length x.Rule.required_roles = List.length y.Rule.required_roles
      && List.for_all2 cred_ref_equal x.Rule.required_roles y.Rule.required_roles
      && List.length x.Rule.constraints = List.length y.Rule.constraints
      && List.for_all2
           (fun (n1, a1) (n2, a2) -> String.equal n1 n2 && args_equal a1 a2)
           x.Rule.constraints y.Rule.constraints
  | _ -> false

(* ---------------- generators ---------------- *)

open QCheck.Gen

(* Names that cannot collide with keywords or constants. *)
let name_gen =
  let+ base = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  "n" ^ base

let var_gen =
  let+ base = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  "v" ^ base

let value_gen =
  oneof
    [
      map (fun n -> Value.Int n) (int_range (-1000) 1000);
      map (fun b -> Value.Bool b) bool;
      (* Times expressible exactly in decimal with a dot. *)
      map (fun n -> Value.Time (float_of_int n /. 4.0)) (int_range 0 100_000);
      map2 (fun t n -> Value.Id (Ident.make ("k" ^ t) n))
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 4))
        (int_range 0 999);
      map (fun s -> Value.Str ("s " ^ s)) (string_size ~gen:(char_range 'a' 'z') (int_bound 8));
    ]

let term_gen = oneof [ map (fun v -> Term.Var v) var_gen; map (fun c -> Term.Const c) value_gen ]

let terms_gen = list_size (int_bound 3) term_gen

let cred_ref_gen =
  let* name = name_gen in
  let* args = terms_gen in
  let* service = opt name_gen in
  return { Rule.service; name; args }

let condition_gen ~allow_prereq =
  let constraint_gen =
    let* negated = bool in
    let* name = name_gen in
    let* args = terms_gen in
    return (Rule.Constraint ((if negated then "!" ^ name else name), args))
  in
  let appointment_gen =
    let+ r = cred_ref_gen in
    Rule.Appointment r
  in
  let prereq_gen =
    let+ r = cred_ref_gen in
    Rule.Prereq r
  in
  if allow_prereq then oneof [ constraint_gen; appointment_gen; prereq_gen ]
  else oneof [ constraint_gen; appointment_gen ]

let activation_gen =
  let* initial = bool in
  let* role = name_gen in
  let* params = terms_gen in
  let* n = if initial then int_bound 3 else int_range 1 4 in
  let* conditions = list_repeat n (condition_gen ~allow_prereq:(not initial)) in
  let* membership = list_repeat n bool in
  return (Parser.Activation (Rule.activation ~initial ~role ~params (List.combine membership conditions)))

let authorization_gen =
  let* privilege = name_gen in
  let* priv_args = terms_gen in
  let* required_roles = list_size (int_range 1 3) cred_ref_gen in
  let* constraints =
    list_size (int_bound 2)
      (let* name = name_gen in
       let* args = terms_gen in
       return (name, args))
  in
  return (Parser.Authorization { Rule.privilege; priv_args; required_roles; constraints; loc = Rule.no_loc })

let appointer_gen =
  let+ statement = authorization_gen in
  match statement with
  | Parser.Authorization a -> Parser.Appointer a
  | s -> s

let statement_gen = oneof [ activation_gen; authorization_gen; appointer_gen ]

(* ---------------- properties ---------------- *)

let roundtrip statement =
  let text = Parser.print_statement statement in
  match Parser.parse text with
  | Ok [ parsed ] -> statement_equal statement parsed
  | Ok _ | Error _ -> false

let test_roundtrip_property () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"parse . print = id" (QCheck.make statement_gen) roundtrip)

let test_roundtrip_many_statements () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:50 ~name:"multi-statement roundtrip"
       (QCheck.make (list_size (int_range 1 8) statement_gen))
       (fun statements ->
         match Parser.parse (Parser.print statements) with
         | Ok parsed ->
             List.length parsed = List.length statements
             && List.for_all2 statement_equal statements parsed
         | Error _ -> false))

let test_printer_rejects_unprintable () =
  let statement =
    Parser.Activation
      (Rule.activation ~initial:true ~role:"r" ~params:[ Term.Const (Value.Str "a\"b") ] [])
  in
  Alcotest.(check bool) "quote rejected" true
    (match Parser.print_statement statement with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_printed_form_is_stable () =
  (* print . parse . print = print (canonical form is a fixpoint). *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"canonical fixpoint" (QCheck.make statement_gen)
       (fun statement ->
         let once = Parser.print_statement statement in
         match Parser.parse once with
         | Ok [ parsed ] -> String.equal once (Parser.print_statement parsed)
         | Ok _ | Error _ -> false))

let suite =
  ( "printer",
    [
      Alcotest.test_case "roundtrip (qcheck)" `Quick test_roundtrip_property;
      Alcotest.test_case "multi-statement (qcheck)" `Quick test_roundtrip_many_statements;
      Alcotest.test_case "unprintable rejected" `Quick test_printer_rejects_unprintable;
      Alcotest.test_case "canonical fixpoint (qcheck)" `Quick test_printed_form_is_stable;
    ] )
