(* The shared observability layer: registry semantics, sink ordering,
   JSONL round-trips and the null-configuration cost contract. *)

module Obs = Oasis_obs.Obs

let test_counter_identity_and_labels () =
  let obs = Obs.null () in
  let a = Obs.counter obs "hits" ~labels:[ ("svc", "s1"); ("kind", "x") ] in
  let b = Obs.counter obs "hits" ~labels:[ ("kind", "x"); ("svc", "s1") ] in
  Obs.Counter.inc a;
  Obs.Counter.add b 2;
  Alcotest.(check int) "label order is irrelevant" 3 (Obs.Counter.value a);
  let other = Obs.counter obs "hits" ~labels:[ ("svc", "s2"); ("kind", "x") ] in
  Alcotest.(check int) "distinct labels, distinct counter" 0 (Obs.Counter.value other);
  Alcotest.(check string) "render_key sorts labels" "hits{kind=x,svc=s1}"
    (Obs.render_key "hits" [ ("svc", "s1"); ("kind", "x") ]);
  Alcotest.(check (option (float 1e-9))) "value lookup" (Some 3.0)
    (Obs.value obs "hits{kind=x,svc=s1}");
  Alcotest.(check (option (float 1e-9))) "unknown key" None (Obs.value obs "nope")

let test_kind_mismatch_rejected () =
  let obs = Obs.null () in
  ignore (Obs.counter obs "m");
  (match Obs.gauge obs "m" with
  | _ -> Alcotest.fail "gauge over a counter key accepted"
  | exception Invalid_argument _ -> ());
  match Obs.histogram obs "m" with
  | _ -> Alcotest.fail "histogram over a counter key accepted"
  | exception Invalid_argument _ -> ()

let test_histogram_aggregates_and_expansion () =
  let obs = Obs.null () in
  let h = Obs.histogram obs "lat" ~labels:[ ("op", "solve") ] in
  List.iter (Obs.Histogram.observe h) [ 1.0; 3.0; 2.0 ];
  Alcotest.(check int) "count" 3 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 6.0 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Obs.Histogram.min h);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Obs.Histogram.max h);
  let keys = List.map fst (Obs.metric_values obs) in
  List.iter
    (fun suffix ->
      let key = Printf.sprintf "lat%s{op=solve}" suffix in
      Alcotest.(check bool) (key ^ " derived") true (List.mem key keys))
    [ ".count"; ".sum"; ".mean"; ".max" ]

let test_sink_ordering () =
  let obs = Obs.create () in
  Alcotest.(check bool) "tracing off initially" false (Obs.tracing obs);
  let log = ref [] in
  Obs.attach obs (fun e -> log := ("a", e.Obs.seq) :: !log);
  Obs.attach obs (fun e -> log := ("b", e.Obs.seq) :: !log);
  Alcotest.(check bool) "tracing on" true (Obs.tracing obs);
  Obs.event obs "one";
  Obs.event obs "two" ~labels:[ ("k", "v") ];
  (match List.rev !log with
  | [ ("a", 1); ("b", 1); ("a", 2); ("b", 2) ] -> ()
  | _ -> Alcotest.fail "sinks not called in attach order with increasing seq");
  Obs.detach_all obs;
  Obs.event obs "three";
  Alcotest.(check int) "no delivery after detach" 4 (List.length !log);
  Alcotest.(check bool) "tracing off again" false (Obs.tracing obs)

let test_span_pairs () =
  let sink, captured = Obs.memory_sink () in
  let obs = Obs.create () in
  Obs.attach obs sink;
  let r =
    Obs.span obs "work" ~labels:[ ("rule", "r1") ] (fun () ->
        Obs.event obs "inner";
        42)
  in
  Alcotest.(check int) "result passes through" 42 r;
  match captured () with
  | [ b; i; e ] ->
      Alcotest.(check bool) "begin first" true (b.Obs.phase = Obs.Begin);
      Alcotest.(check string) "span name" "work" b.Obs.name;
      Alcotest.(check bool) "instant inside" true (i.Obs.phase = Obs.Instant);
      Alcotest.(check bool) "end last" true (e.Obs.phase = Obs.End);
      Alcotest.(check int) "begin/end share the span id" b.Obs.span e.Obs.span;
      Alcotest.(check bool) "span id is nonzero" true (b.Obs.span > 0);
      Alcotest.(check int) "instant has span 0" 0 i.Obs.span;
      Alcotest.(check bool) "end reports wall_ms" true (List.mem_assoc "wall_ms" e.Obs.labels)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_span_exception_still_ends () =
  let sink, captured = Obs.memory_sink () in
  let obs = Obs.create () in
  Obs.attach obs sink;
  (match Obs.span obs "boom" (fun () -> failwith "bug") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  match captured () with
  | [ _; e ] ->
      Alcotest.(check bool) "end emitted on the exception path" true (e.Obs.phase = Obs.End);
      Alcotest.(check bool) "end labelled with the error" true
        (List.mem_assoc "error" e.Obs.labels)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_jsonl_roundtrip () =
  let sink, captured = Obs.memory_sink () in
  let obs = Obs.create ~now:(fun () -> 1.25) () in
  Obs.attach obs sink;
  Obs.event obs "net.drop" ~labels:[ ("cause", "link_loss"); ("q", "tricky \"quote\"\\path") ];
  ignore (Obs.span obs "solve.activation" ~labels:[ ("rule", "doctor") ] (fun () -> ()));
  List.iter
    (fun e ->
      let line = Obs.event_to_jsonl e in
      (match Obs.validate_jsonl_line line with
      | Ok () -> ()
      | Error m -> Alcotest.failf "schema-invalid line %s: %s" line m);
      match Obs.event_of_jsonl line with
      | Error m -> Alcotest.failf "unparseable line %s: %s" line m
      | Ok d -> Alcotest.(check bool) ("round-trips: " ^ line) true (d = e))
    (captured ())

let test_jsonl_rejects_malformed () =
  List.iter
    (fun line ->
      match Obs.validate_jsonl_line line with
      | Ok () -> Alcotest.failf "accepted: %s" line
      | Error _ -> ())
    [
      "";
      "not json";
      {|{"seq":0,"ts":1.0,"ph":"I","span":0,"name":"x","labels":{}}|};
      {|{"seq":1,"ts":1.0,"ph":"Q","span":0,"name":"x","labels":{}}|};
      {|{"seq":1,"ts":1.0,"ph":"I","span":0,"name":"","labels":{}}|};
      {|{"seq":1,"ts":1.0,"ph":"I","span":0,"labels":{}}|};
      {|{"seq":1,"ts":1.0,"ph":"I","span":-2,"name":"x","labels":{}}|};
      {|{"seq":1,"ts":1.0,"ph":"I","span":0,"name":"x","labels":{"k":1}}|};
    ]

(* The cost contract (DESIGN.md §10): with no sink attached, a guarded
   event site is one load-and-branch and a counter bump is one field
   update — the loop must not allocate per iteration. The slack absorbs
   one-time noise without masking a per-iteration allocation, which over
   100k iterations would cost at least 200k words. *)
let test_null_config_hot_path_allocates_nothing () =
  let obs = Obs.null () in
  let c = Obs.counter obs "hot.counter" in
  Obs.Counter.inc c;
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Obs.Counter.inc c;
    if Obs.tracing obs then Obs.event obs "hot.event" ~labels:[ ("k", "v") ]
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "no per-iteration allocation (%.0f minor words)" delta)
    true (delta < 100.0);
  Alcotest.(check int) "counter still counted" 100_001 (Obs.Counter.value c)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter identity and labels" `Quick test_counter_identity_and_labels;
      Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
      Alcotest.test_case "histogram aggregates" `Quick test_histogram_aggregates_and_expansion;
      Alcotest.test_case "sink ordering" `Quick test_sink_ordering;
      Alcotest.test_case "span pairs" `Quick test_span_pairs;
      Alcotest.test_case "span ends on exception" `Quick test_span_exception_still_ends;
      Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
      Alcotest.test_case "jsonl rejects malformed" `Quick test_jsonl_rejects_malformed;
      Alcotest.test_case "null config allocates nothing" `Quick
        test_null_config_hot_path_allocates_nothing;
    ] )
