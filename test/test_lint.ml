(* Policy linter: one positive and one negative case per lint rule, the
   install gate, waivers, JSON, and a print/re-parse diagnostic-stability
   property. *)

module Lint = Oasis_policy.Lint
module Parser = Oasis_policy.Parser
module Rule = Oasis_policy.Rule
module Term = Oasis_policy.Term
module Env = Oasis_policy.Env
module World = Oasis_core.World
module Service = Oasis_core.Service
module Value = Oasis_util.Value

let svc ?(name = "svc") ?kinds src = Lint.of_statements ~name ?extra_kinds:kinds (Parser.parse_exn src)

let codes findings = List.map (fun f -> f.Lint.code) findings

let has code findings = List.mem code (codes findings)

let count code findings = List.length (List.filter (String.equal code) (codes findings))

(* ---------------- dataflow ---------------- *)

let test_unbound_head () =
  (* Positive: the head parameter appears in no condition at all. *)
  let f = Lint.check [ svc "initial broken(u) <- env:eq(1, 1);" ] in
  Alcotest.(check int) "L001 reported" 1 (count "L001" f);
  Alcotest.(check bool) "is an error" true
    (List.exists (fun f -> f.Lint.code = "L001" && f.Lint.severity = Lint.Error) f);
  (* Negative: a computed constraint validates the caller-pinned value, and
     credential arguments derive it. *)
  let f =
    Lint.check ~closed:false
      [ svc "initial pinned(u) <- env:eq(u, 10);\ninitial derived(u) <- appt:badge(u)@civ;" ]
  in
  Alcotest.(check bool) "no L001" false (has "L001" f)

let test_singleton_var () =
  (* Positive: a body variable used exactly once is a likely typo. *)
  let f = Lint.check ~closed:false [ svc "appoint allocated(d, p) <- nurse(n)@other;" ] in
  Alcotest.(check int) "L002 reported" 1 (count "L002" f);
  (* Negative: the underscore prefix marks the don't-care. Head variables
     of priv/appoint rules are request-bound and never flagged. *)
  let f = Lint.check ~closed:false [ svc "appoint allocated(d, p) <- nurse(_n)@other;" ] in
  Alcotest.(check bool) "no L002" false (has "L002" f)

let test_nonground_negation () =
  (* Positive: nothing binds [u] before the negation. *)
  let f = Lint.check ~closed:false [ svc "initial risky(u) <- env:!banned(u);" ] in
  Alcotest.(check int) "L003 reported" 1 (count "L003" f);
  (* Negative: the prerequisite binds [u] first (left-to-right), and priv
     arguments are request-bound. *)
  let f =
    Lint.check ~closed:false
      [
        svc
          "safe(u) <- member(u)@other, env:!banned(u);\n\
           priv read(d, p) <- member(d)@other, env:!excluded(d, p);";
      ]
  in
  Alcotest.(check bool) "no L003" false (has "L003" f)

(* ---------------- consistency ---------------- *)

let test_arity_mismatch () =
  (* Positive, all three flavours: definition drift, reference mismatch,
     built-in misuse. *)
  let drift = Lint.check ~closed:false [ svc "r(u) <- appt:k(u)@o;\nr(u, v) <- appt:k(u)@o, appt:j(v)@o;" ] in
  Alcotest.(check bool) "definition drift" true (has "L101" drift);
  let badref =
    Lint.check [ svc "initial base(u) <- env:eq(u, 1);\npriv p(u) <- base(u, u);" ]
  in
  Alcotest.(check bool) "reference mismatch" true (has "L101" badref);
  let badbuiltin = Lint.check ~closed:false [ svc "initial r <- env:before(1, 2);" ] in
  Alcotest.(check bool) "built-in arity" true (has "L101" badbuiltin);
  (* Env fact predicates must be used consistently within one policy. *)
  let factdrift =
    Lint.check ~closed:false
      [ svc "initial a <- env:assigned(1, 2);\ninitial b <- env:assigned(1);" ]
  in
  Alcotest.(check bool) "fact arity drift" true (has "L101" factdrift);
  (* Negative: consistent arities everywhere. *)
  let f =
    Lint.check
      [ svc "initial base(u) <- env:eq(u, 1);\npriv p(u) <- base(u);\ninitial t <- env:before(5);" ]
  in
  Alcotest.(check bool) "no L101" false (has "L101" f)

let test_unknown_role () =
  let f = Lint.check [ svc "initial a <- env:eq(1, 1);\nb(u) <- ghost(u);" ] in
  Alcotest.(check bool) "L102 reported" true (has "L102" f);
  let f = Lint.check [ svc "initial a(u) <- env:eq(u, 1);\nb(u) <- a(u);" ] in
  Alcotest.(check bool) "no L102" false (has "L102" f)

let test_unknown_service () =
  let world = [ svc "r(u) <- staff(u)@partner;" ] in
  Alcotest.(check bool) "L103 in closed world" true (has "L103" (Lint.check world));
  (* Open-world linting of a single file assumes peers resolve. *)
  Alcotest.(check bool) "no L103 open" false (has "L103" (Lint.check ~closed:false world))

let test_unknown_appointment () =
  let f = Lint.check [ svc "initial r(u) <- appt:badge(u);" ] in
  Alcotest.(check bool) "L104 reported" true (has "L104" f);
  (* Negative: declared via extra_kinds (a CIV-style external issuer) or
     defined by an appoint rule. *)
  let f = Lint.check [ svc ~kinds:[ "badge" ] "initial r(u) <- appt:badge(u);" ] in
  Alcotest.(check bool) "no L104 with extra kind" false (has "L104" f);
  let f =
    Lint.check
      [ svc "initial hr(a) <- appt:badge(a);\nappoint badge(u) <- hr(_a);" ]
  in
  Alcotest.(check bool) "no L104 with appoint rule" false (has "L104" f)

(* ---------------- membership / revocation ---------------- *)

let test_unmonitorable_membership () =
  let f = Lint.check ~closed:false [ svc "initial r <- *env:eq(1, 1);" ] in
  Alcotest.(check bool) "L201 on starred pure built-in" true (has "L201" f);
  (* Timed built-ins and fact predicates are monitorable. *)
  let f =
    Lint.check ~closed:false [ svc "initial r <- *env:before(100);\ninitial s(u) <- *env:on_duty(u);" ]
  in
  Alcotest.(check bool) "no L201" false (has "L201" f)

let test_unmonitored_appointment () =
  let f = Lint.check ~closed:false [ svc "initial r(u) <- appt:badge(u)@civ;" ] in
  Alcotest.(check bool) "L202 on unstarred appointment" true (has "L202" f);
  let f = Lint.check ~closed:false [ svc "initial r(u) <- *appt:badge(u)@civ;" ] in
  Alcotest.(check bool) "no L202 when starred" false (has "L202" f)

let test_cascade_depth () =
  let chain =
    svc
      "initial a1 <- env:eq(1, 1);\n\
       a2 <- a1;\na3 <- a2;\na4 <- a3;\na5 <- a4;"
  in
  let depths = Lint.cascade_depths [ chain ] in
  Alcotest.(check (option int)) "a1 depth" (Some 1) (List.assoc_opt ("svc", "a1") depths);
  Alcotest.(check (option int)) "a5 depth" (Some 5) (List.assoc_opt ("svc", "a5") depths);
  let f = Lint.check ~max_cascade_depth:3 [ chain ] in
  Alcotest.(check int) "L203 for a4 and a5" 2 (count "L203" f);
  Alcotest.(check bool) "info severity" true
    (List.for_all (fun f -> f.Lint.severity = Lint.Info)
       (List.filter (fun f -> f.Lint.code = "L203") f));
  (* Under the default threshold (4) only the deepest role is over; cycles
     do not loop the analysis. *)
  Alcotest.(check int) "one L203 at default" 1 (count "L203" (Lint.check [ chain ]));
  let cyclic = svc "x(u) <- y(u);\ny(u) <- x(u);" in
  Alcotest.(check bool) "cycle terminates" true (Lint.cascade_depths [ cyclic ] <> [])

(* ---------------- locations ---------------- *)

let test_locations () =
  let f =
    Lint.check ~closed:false
      [ svc "initial fine <- env:eq(1, 1);\n\ninitial broken(u) <- env:eq(1, 1);" ]
  in
  match List.filter (fun f -> f.Lint.code = "L001") f with
  | [ f ] -> Alcotest.(check int) "line 3" 3 f.Lint.loc.Rule.line
  | other -> Alcotest.failf "expected one L001, got %d" (List.length other)

(* ---------------- install gate ---------------- *)

let test_strict_install_rejects () =
  let world = World.create ~seed:1 () in
  (match
     Service.create world ~name:"bad" ~policy:"initial broken(u) <- env:eq(1, 1);" ()
   with
  | _ -> Alcotest.fail "install-blocking policy accepted"
  | exception Service.Policy_rejected [ f ] ->
      Alcotest.(check string) "L001 blocks" "L001" f.Lint.code
  | exception Service.Policy_rejected _ -> Alcotest.fail "expected a single finding");
  (* Warnings and world-dependent findings do not block: unknown services,
     kinds issued by a CIV, singletons. *)
  let ok =
    Service.create world ~name:"ok"
      ~policy:"initial r(u) <- appt:badge(u)@civ;\nappoint other(u) <- r(_a);" ()
  in
  ignore ok;
  (* The same rejected policy installs with the gate off — the runtime
     containment path (test_world, test_regressions) stays reachable. *)
  let lax =
    Service.create world ~name:"lax"
      ~config:{ Service.default_config with strict_install = false }
      ~policy:"initial broken(u) <- env:eq(1, 1);" ()
  in
  ignore lax

let test_install_blocking_classification () =
  let blocking f = Lint.install_blocking f in
  let one src = List.filter blocking (Lint.check ~closed:false [ svc src ]) in
  Alcotest.(check bool) "L003 blocks" true (one "initial r(u) <- env:!banned(u);" <> []);
  Alcotest.(check bool) "L101 blocks" true (one "initial r <- env:before(1, 2);" <> []);
  Alcotest.(check bool) "L202 does not block" true
    (one "initial r(u) <- appt:badge(u)@civ;" = [])

(* ---------------- waivers ---------------- *)

let test_waivers () =
  let src =
    "// lint:allow L202\n\
     initial r(u) <- appt:badge(u)@civ;\n\
     initial s(u) <- appt:badge(u)@civ; // lint:allow L202,L002\n\
     initial t(u) <- appt:badge(u)@civ;"
  in
  let ws = Lint.waivers src in
  Alcotest.(check int) "two waiver comments" 2 (List.length ws);
  Alcotest.(check (list string)) "codes parsed" [ "L202"; "L002" ] (List.assoc 3 ws);
  let findings = Lint.check ~closed:false [ svc src ] in
  Alcotest.(check int) "three L202 before waiving" 3 (count "L202" findings);
  let kept = Lint.apply_waivers ~waivers:ws findings in
  (* Line 2 is waived by the line above, line 3 by its own suffix. *)
  Alcotest.(check int) "one L202 left" 1 (count "L202" kept);
  Alcotest.(check int) "the unwaived line" 4
    (match List.filter (fun f -> f.Lint.code = "L202") kept with
    | [ f ] -> f.Lint.loc.Rule.line
    | _ -> -1)

(* ---------------- JSON ---------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_json () =
  let s = svc "initial broken(u) <- env:eq(1, 1);" in
  let json = Lint.to_json ~depths:(Lint.cascade_depths [ s ]) (Lint.check ~closed:false [ s ]) in
  Alcotest.(check bool) "findings array" true (contains json "\"code\":\"L001\"");
  Alcotest.(check bool) "error count" true (contains json "\"errors\":1");
  Alcotest.(check bool) "depths" true (contains json "\"role\":\"broken\"");
  (* Strings are escaped. *)
  let f =
    {
      Lint.code = "X";
      check = "x";
      severity = Lint.Info;
      service = "a\"b\nc";
      loc = Rule.no_loc;
      message = "";
    }
  in
  Alcotest.(check bool) "escaping" true
    (contains (Lint.to_json [ f ]) "\"service\":\"a\\\"b\\nc\"")

(* ---------------- print / re-parse stability ---------------- *)

(* Generated rules reuse the canonical printer; diagnostics must not depend
   on layout, only on structure. Sources are built with random blank-line
   padding so locations genuinely differ from the canonical print. *)
open QCheck.Gen

let name_gen =
  let+ base = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  "n" ^ base

let var_gen =
  let+ base = string_size ~gen:(char_range 'a' 'z') (int_range 1 4) in
  "v" ^ base

let term_gen =
  oneof
    [
      map (fun v -> Term.Var v) var_gen;
      map (fun n -> Term.Const (Value.Int n)) (int_range 0 99);
    ]

let terms_gen = list_size (int_bound 3) term_gen

let cred_ref_gen =
  let* name = name_gen in
  let* args = terms_gen in
  let* service = opt name_gen in
  return { Rule.service; name; args }

let condition_gen ~allow_prereq =
  let constraint_gen =
    let* negated = bool in
    let* name = name_gen in
    let* args = terms_gen in
    return (Rule.Constraint ((if negated then "!" ^ name else name), args))
  in
  let appointment_gen = map (fun r -> Rule.Appointment r) cred_ref_gen in
  let prereq_gen = map (fun r -> Rule.Prereq r) cred_ref_gen in
  if allow_prereq then oneof [ constraint_gen; appointment_gen; prereq_gen ]
  else oneof [ constraint_gen; appointment_gen ]

let statement_gen =
  let activation =
    let* initial = bool in
    let* role = name_gen in
    let* params = terms_gen in
    let* n = if initial then int_bound 3 else int_range 1 3 in
    let* conditions = list_repeat n (condition_gen ~allow_prereq:(not initial)) in
    let* membership = list_repeat n bool in
    return (Parser.Activation (Rule.activation ~initial ~role ~params (List.combine membership conditions)))
  in
  let authorization appointer =
    let* privilege = name_gen in
    let* priv_args = terms_gen in
    let* required_roles = list_size (int_range 1 3) cred_ref_gen in
    let* constraints =
      list_size (int_bound 2)
        (let* name = name_gen in
         let* args = terms_gen in
         return (name, args))
    in
    let rule = { Rule.privilege; priv_args; required_roles; constraints; loc = Rule.no_loc } in
    return (if appointer then Parser.Appointer rule else Parser.Authorization rule)
  in
  oneof [ activation; authorization false; authorization true ]

let padded_source_gen =
  let* statements = list_size (int_range 1 6) statement_gen in
  let* pads = list_repeat (List.length statements) (int_bound 3) in
  return
    (String.concat ""
       (List.map2
          (fun s p -> String.make (p + 1) '\n' ^ Parser.print_statement s)
          statements pads))

let diagnostics src =
  match Parser.parse src with
  | Error _ -> None
  | Ok statements ->
      Some
        ( statements,
          Lint.check ~closed:false [ Lint.of_statements ~name:"svc" statements ]
          |> List.map (fun f ->
                 (f.Lint.code, f.Lint.check, f.Lint.severity, f.Lint.service, f.Lint.message))
          |> List.sort compare )

let test_print_reparse_diagnostics () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"diagnostics survive print/re-parse"
       (QCheck.make padded_source_gen)
       (fun src ->
         match diagnostics src with
         | None -> false
         | Some (statements, d1) -> (
             match diagnostics (Parser.print statements) with
             | None -> false
             | Some (_, d2) -> d1 = d2)))

let suite =
  ( "lint",
    [
      Alcotest.test_case "L001 unbound head" `Quick test_unbound_head;
      Alcotest.test_case "L002 singleton var" `Quick test_singleton_var;
      Alcotest.test_case "L003 nonground negation" `Quick test_nonground_negation;
      Alcotest.test_case "L101 arity mismatch" `Quick test_arity_mismatch;
      Alcotest.test_case "L102 unknown role" `Quick test_unknown_role;
      Alcotest.test_case "L103 unknown service" `Quick test_unknown_service;
      Alcotest.test_case "L104 unknown appointment" `Quick test_unknown_appointment;
      Alcotest.test_case "L201 unmonitorable membership" `Quick test_unmonitorable_membership;
      Alcotest.test_case "L202 unmonitored appointment" `Quick test_unmonitored_appointment;
      Alcotest.test_case "L203 cascade depth" `Quick test_cascade_depth;
      Alcotest.test_case "finding locations" `Quick test_locations;
      Alcotest.test_case "strict install gate" `Quick test_strict_install_rejects;
      Alcotest.test_case "install-blocking classification" `Quick test_install_blocking_classification;
      Alcotest.test_case "waivers" `Quick test_waivers;
      Alcotest.test_case "json report" `Quick test_json;
      Alcotest.test_case "print/re-parse (qcheck)" `Quick test_print_reparse_diagnostics;
    ] )
