(* Fault injection: partitions, crash/restart, suspect roles, anti-entropy
   reconciliation, and the shared backoff policy. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Network = Oasis_sim.Network
module Fault = Oasis_sim.Fault
module Broker = Oasis_event.Broker
module Heartbeat = Oasis_event.Heartbeat
module Backoff = Oasis_util.Backoff
module Rng = Oasis_util.Rng

let ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "unexpected denial: %s" (Protocol.denial_to_string d)

(* A grace period long enough that reconciliation (polling every retry.cap)
   always beats the fail-closed timer once the link is back. *)
let fault_config =
  {
    Service.default_config with
    suspect_grace = 5.0;
    retry = { Backoff.default with base = 0.01; cap = 0.2; max_attempts = 3 };
    (* These tests exercise the validation-RPC failure detector and the
       suspect/reconciliation machinery; offline verification would answer
       the presentations locally and never touch the faulty link. *)
    offline_verify = false;
  }

let build ?(seed = 1) ?(config = fault_config) ?monitoring () =
  let world = World.create ~seed ?monitoring () in
  let issuer = Service.create world ~name:"issuer" ~policy:"initial base <- env:eq(1, 1);" () in
  let relying =
    Service.create world ~name:"relying" ~config ~policy:"derived <- *base@issuer;" ()
  in
  (world, issuer, relying)

(* Walks one principal to an active [derived] role backed by a monitored
   remote [base] credential. *)
let establish world issuer relying =
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      let base = ok (Principal.activate p s issuer ~role:"base" ()) in
      let derived = ok (Principal.activate p s relying ~role:"derived" ()) in
      (p, s, base, derived))

(* The Change_events failure detector is an exhausted validation callback:
   a second principal's activation attempt forces one and must be denied
   while the issuer is unreachable. *)
let provoke world issuer relying =
  let q = Principal.create world ~name:"q" in
  World.run_proc world (fun () ->
      let s = Principal.start_session q in
      ignore (ok (Principal.activate q s issuer ~role:"base" ()));
      match Principal.activate q s relying ~role:"derived" () with
      | Ok _ -> Alcotest.fail "derived granted across a partition"
      | Error _ -> ())

let cut world issuer relying =
  Fault.partition (World.fault world) ~name:"wan" [ Service.id relying ] [ Service.id issuer ]

let heal world = Fault.heal (World.fault world) "wan"

let test_partition_suspect_reinstate () =
  let world, issuer, relying = build () in
  let _, _, _, derived = establish world issuer relying in
  cut world issuer relying;
  provoke world issuer relying;
  let dropped = List.assoc "partitioned" (Network.dropped_by_cause (World.network world)) in
  Alcotest.(check bool) "partition drops counted" true (dropped > 0);
  let by_cause = Network.dropped_by_cause (World.network world) in
  Alcotest.(check int)
    "drop causes sum to total"
    (Network.stats (World.network world)).Network.dropped
    (List.fold_left (fun acc (_, n) -> acc + n) 0 by_cause);
  Alcotest.(check int) "role is suspect, not dropped" 1 (Service.suspect_count relying);
  Alcotest.(check bool) "suspect role still active" true
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id);
  heal world;
  World.settle world;
  Alcotest.(check int) "suspect resolved after heal" 0 (Service.suspect_count relying);
  let stats = Service.stats relying in
  Alcotest.(check int) "reinstated by reconciliation" 1 stats.Service.reconciled_reinstated;
  Alcotest.(check int) "nothing revoked" 0 stats.Service.reconciled_revoked;
  Alcotest.(check bool) "role survives" true
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id)

let test_missed_revocation_reconciled () =
  let world, issuer, relying = build () in
  let _, _, base, derived = establish world issuer relying in
  cut world issuer relying;
  ignore (Service.revoke_certificate issuer base.Oasis_cert.Rmc.id ~reason:"gone");
  World.settle world;
  let suppressed =
    List.assoc "partitioned" (Broker.suppressed_by_cause (World.broker world))
  in
  Alcotest.(check bool) "invalidation suppressed by partition" true (suppressed > 0);
  Alcotest.(check bool) "grant is stale while partitioned" true
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id);
  provoke world issuer relying;
  Alcotest.(check int) "stale role suspect" 1 (Service.suspect_count relying);
  heal world;
  World.settle world;
  Alcotest.(check bool) "missed revocation completed" false
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id);
  let stats = Service.stats relying in
  Alcotest.(check int) "reconciled as revoked" 1 stats.Service.reconciled_revoked;
  Alcotest.(check bool) "counted as cascade" true (stats.Service.cascade_deactivations >= 1)

let test_grace_expiry_fail_closed () =
  let world, issuer, relying = build () in
  let _, _, _, derived = establish world issuer relying in
  cut world issuer relying;
  provoke world issuer relying;
  Alcotest.(check int) "suspect" 1 (Service.suspect_count relying);
  (* Never heal: the grace timer must degrade fail-closed. *)
  World.run_until world (World.now world +. fault_config.Service.suspect_grace +. 1.0);
  Alcotest.(check int) "suspect resolved by degradation" 0 (Service.suspect_count relying);
  Alcotest.(check bool) "role conservatively deactivated" false
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id);
  let stats = Service.stats relying in
  Alcotest.(check int) "no reconciliation outcome" 0
    (stats.Service.reconciled_reinstated + stats.Service.reconciled_revoked)

let test_fail_open_keeps_stale_grant () =
  (* The deliberate ablation bug: with [fail_open] the grace expiry keeps
     the unverifiable role active. The chaos harness's test-of-the-test
     relies on this being observably wrong. *)
  let config = { fault_config with Service.fail_open = true } in
  let world, issuer, relying = build ~config () in
  let _, _, base, derived = establish world issuer relying in
  cut world issuer relying;
  ignore (Service.revoke_certificate issuer base.Oasis_cert.Rmc.id ~reason:"gone");
  provoke world issuer relying;
  World.run_until world (World.now world +. config.Service.suspect_grace +. 1.0);
  Alcotest.(check bool) "fail-open keeps the revoked grant" true
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id)

let test_crash_restart_reinstates () =
  let world, issuer, relying = build () in
  let _, _, _, derived = establish world issuer relying in
  Service.crash relying;
  Alcotest.(check bool) "crashed" true (Service.is_crashed relying);
  Alcotest.(check bool) "durable record survives the crash" true
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id);
  Alcotest.(check int) "no suspects while down" 0 (Service.suspect_count relying);
  Service.restart relying;
  Alcotest.(check bool) "restarted" false (Service.is_crashed relying);
  Alcotest.(check bool) "remote deps unverified after restart" true
    (Service.suspect_count relying >= 1);
  World.settle world;
  Alcotest.(check int) "reconciliation resolves the restart" 0
    (Service.suspect_count relying);
  Alcotest.(check bool) "role reinstated" true
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id);
  Alcotest.(check int) "reinstated outcome counted" 1
    (Service.stats relying).Service.reconciled_reinstated

let test_crash_misses_revocation () =
  let world, issuer, relying = build () in
  let _, _, base, derived = establish world issuer relying in
  Service.crash relying;
  ignore (Service.revoke_certificate issuer base.Oasis_cert.Rmc.id ~reason:"gone");
  World.settle world;
  Service.restart relying;
  World.settle world;
  Alcotest.(check bool) "revocation missed while down is completed" false
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id);
  Alcotest.(check int) "reconciled as revoked" 1
    (Service.stats relying).Service.reconciled_revoked

let test_heartbeat_silence_suspect () =
  let monitoring = World.Heartbeats { period = 0.5; deadline = 1.5 } in
  let world, issuer, relying = build ~monitoring () in
  let _, _, _, derived = establish world issuer relying in
  cut world issuer relying;
  (* Beats are suppressed by the partition; the monitor fires Silence. *)
  World.run_until world (World.now world +. 2.5);
  Alcotest.(check int) "silence makes the role suspect" 1 (Service.suspect_count relying);
  Alcotest.(check bool) "still active inside the grace" true
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id);
  heal world;
  World.run_until world (World.now world +. 1.0);
  Alcotest.(check int) "resolved within grace of heal" 0 (Service.suspect_count relying);
  Alcotest.(check bool) "role reinstated" true
    (Service.is_valid_certificate relying derived.Oasis_cert.Rmc.id)

let test_concurrent_monitors_independent () =
  (* Regression: every Heartbeat.watch gets its own owner ident. Two
     monitors on one topic must count beats and fire misses independently;
     cancelling one must not disturb the other. *)
  let world = World.create ~seed:3 () in
  let broker = World.broker world and engine = World.engine world in
  let emitter =
    Heartbeat.start_emitter broker engine ~topic:"shared" ~period:0.5
      ~beat:(Protocol.Beat { issuer = World.fresh_service_id world; cert_id = World.fresh_cert_id world })
  in
  let misses = ref 0 in
  let watch () =
    Heartbeat.watch broker engine ~topic:"shared" ~deadline:1.2 ~on_miss:(fun () -> incr misses)
  in
  let m1 = watch () in
  let m2 = watch () in
  World.run_until world 3.0;
  Alcotest.(check int) "beats keep both monitors quiet" 0 !misses;
  Heartbeat.cancel_watch m1;
  Heartbeat.stop_emitter emitter;
  World.run_until world 6.0;
  Alcotest.(check int) "only the live monitor fires" 1 !misses;
  Alcotest.(check bool) "m2 missed, m1 cancelled" true
    (Heartbeat.missed m2 && not (Heartbeat.missed m1))

let test_backoff_deterministic () =
  let p = Backoff.default in
  let delays rng = List.init 6 (fun i -> Backoff.delay p rng ~attempt:(i + 1)) in
  let a = delays (Rng.create 42) and b = delays (Rng.create 42) in
  Alcotest.(check (list (float 1e-12))) "same seed, same schedule" a b;
  List.iteri
    (fun i d ->
      if d < 0.0 then Alcotest.failf "negative delay %g at attempt %d" d (i + 1);
      if d > p.Backoff.cap then Alcotest.failf "delay %g above cap at attempt %d" d (i + 1))
    a;
  (* Without jitter the schedule is exactly capped exponential. *)
  let exact = { p with Backoff.jitter = 0.0 } in
  let rng = Rng.create 1 in
  Alcotest.(check (float 1e-12)) "base" 0.05 (Backoff.delay exact rng ~attempt:1);
  Alcotest.(check (float 1e-12)) "doubled" 0.1 (Backoff.delay exact rng ~attempt:2);
  Alcotest.(check (float 1e-12)) "capped" 1.0 (Backoff.delay exact rng ~attempt:12)

let test_backoff_retry_semantics () =
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  let calls = ref 0 in
  let retries = ref 0 in
  let fail_twice () =
    incr calls;
    if !calls < 3 then Error "down" else Ok !calls
  in
  let result =
    Backoff.retry Backoff.default (Rng.create 7) ~sleep
      ~on_retry:(fun ~attempt:_ ~delay:_ -> incr retries)
      fail_twice
  in
  Alcotest.(check (result int string)) "first Ok wins" (Ok 3) result;
  Alcotest.(check int) "two retries" 2 !retries;
  Alcotest.(check int) "slept between tries" 2 (List.length !slept);
  (* The legacy fixed policy: n total attempts, no sleeping at all. *)
  let calls = ref 0 in
  let result =
    Backoff.retry (Backoff.fixed 3) (Rng.create 7)
      ~sleep:(fun _ -> Alcotest.fail "fixed policy must not sleep")
      (fun () ->
        incr calls;
        (Error "down" : (unit, string) result))
  in
  Alcotest.(check (result unit string)) "exhaustion returns last error" (Error "down") result;
  Alcotest.(check int) "three attempts" 3 !calls

let suite =
  ( "fault",
    [
      Alcotest.test_case "partition: suspect then reinstate" `Quick
        test_partition_suspect_reinstate;
      Alcotest.test_case "partition: missed revocation reconciled" `Quick
        test_missed_revocation_reconciled;
      Alcotest.test_case "grace expiry degrades fail-closed" `Quick
        test_grace_expiry_fail_closed;
      Alcotest.test_case "fail-open ablation keeps stale grant" `Quick
        test_fail_open_keeps_stale_grant;
      Alcotest.test_case "crash/restart reinstates" `Quick test_crash_restart_reinstates;
      Alcotest.test_case "crash misses revocation" `Quick test_crash_misses_revocation;
      Alcotest.test_case "heartbeat silence under partition" `Quick
        test_heartbeat_silence_suspect;
      Alcotest.test_case "concurrent monitors independent" `Quick
        test_concurrent_monitors_independent;
      Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
      Alcotest.test_case "backoff retry semantics" `Quick test_backoff_retry_semantics;
    ] )
