(* Regression tests for the active-security fixes:
   - non-ground negation is a refused request, not a silent "proved"
   - cancelled heartbeat watches release their engine timer
   - decommission releases cache-invalidation subscriptions and the cache
   - rule installation keeps insertion order (first-installed rule wins)
   - fact-change cost follows the reverse index, not the RMC population
   and for the observability-era network/broker fixes:
   - a raising RPC handler fails the round trip instead of stranding it
   - remove_node purges the node's link overrides in both directions
   - drops are attributed to exactly one cause; broker suppression of
     in-flight deliveries after unsubscribe is visible in the stats *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Civ = Oasis_domain.Civ
module Env = Oasis_policy.Env
module Engine = Oasis_sim.Engine
module Broker = Oasis_event.Broker
module Heartbeat = Oasis_event.Heartbeat
module Cr = Oasis_cert.Credential_record
module Network = Oasis_sim.Network
module Proc = Oasis_sim.Proc
module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng
module Value = Oasis_util.Value
open Fixtures

(* A negated constraint over an unbound variable must be refused as a bad
   request (negation as failure is only sound on ground instances), while
   the same role pinned to a concrete argument activates normally. The
   lint gate rejects this policy at install (L003), so strict_install is
   off: this test proves the runtime path behind the gate stays sound. *)
let test_nonground_negation_denied () =
  let world = World.create ~seed:11 () in
  let svc =
    Service.create world ~name:"risky"
      ~config:{ Service.default_config with strict_install = false }
      ~policy:"initial risky(u) <- env:!banned(u);" ()
  in
  Env.declare_fact (Service.env svc) "banned";
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      (match Principal.activate p s svc ~role:"risky" () with
      | Error (Protocol.Bad_request _) -> ()
      | Ok _ -> Alcotest.fail "non-ground negation granted"
      | Error d ->
          Alcotest.failf "expected Bad_request, got %s" (Protocol.denial_to_string d));
      ignore
        (ok (Principal.activate p s svc ~role:"risky" ~args:[ Some (Value.Int 1) ] ())));
  Alcotest.(check int) "refusal recorded" 1 (Service.stats svc).Service.activations_denied

(* A cancelled watch must cancel its pending engine timer; previously the
   cancel handle was dropped and dead monitors kept a timer in the heap. *)
let test_heartbeat_cancel_releases_timer () =
  let engine = Engine.create () in
  let broker = Broker.create engine (Rng.create 1) ~notify_latency:0.01 () in
  let missed = ref false in
  let monitor =
    Heartbeat.watch broker engine ~topic:"hb" ~deadline:2.5 ~on_miss:(fun () -> missed := true)
  in
  Alcotest.(check bool) "timer armed" true (Engine.pending engine > 0);
  Heartbeat.cancel_watch monitor;
  Engine.run engine;
  Alcotest.(check int) "no timer executed after cancel" 0 (Engine.events_executed engine);
  Alcotest.(check bool) "no miss after cancel" false !missed;
  Alcotest.(check bool) "monitor not missed" false (Heartbeat.missed monitor)

(* Decommissioning a service must drop its validation cache and unsubscribe
   its cache-invalidation watches on other issuers' event channels. *)
let test_decommission_releases_cache_watches () =
  let world = World.create ~seed:13 () in
  let civ = Civ.create world ~name:"authority" () in
  (* The regression is about releasing cache-invalidation watches, which
     only the legacy callback path installs (offline verification does not
     populate the positive cache). *)
  let config = { Service.default_config with offline_verify = false } in
  let svc =
    Service.create world ~name:"club" ~config
      ~policy:"initial member(u) <- *appt:badge(u)@authority;" ()
  in
  let p = Principal.create world ~name:"p" in
  let badge =
    Civ.issue civ ~kind:"badge"
      ~args:[ Value.Id (Principal.id p) ]
      ~holder:(Principal.id p) ~holder_key:(Principal.longterm_public p) ()
  in
  Principal.grant_appointment p badge;
  World.settle world;
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      ignore (ok (Principal.activate p s svc ~role:"member" ())));
  let topic = Cr.topic_of ~issuer:(Civ.id civ) ~cert_id:badge.Oasis_cert.Appointment.id in
  let broker = World.broker world in
  Alcotest.(check bool) "badge topic watched while active" true
    (Broker.subscriber_count broker topic > 0);
  Alcotest.(check bool) "verdict cached" true
    ((Service.stats svc).Service.cache.Oasis_cert.Validation_cache.entries > 0);
  ignore (Service.decommission svc ~reason:"retired");
  World.settle world;
  Alcotest.(check int) "badge topic released" 0 (Broker.subscriber_count broker topic);
  let cache = (Service.stats svc).Service.cache in
  Alcotest.(check int) "cache emptied" 0 cache.Oasis_cert.Validation_cache.entries;
  Alcotest.(check int) "no cached negatives" 0
    cache.Oasis_cert.Validation_cache.negative_entries

(* Rules for the same role must be tried in installation order: the first
   rule binds the unpinned parameter even when a later rule also proves. *)
let test_rule_order_preserved () =
  let world = World.create ~seed:17 () in
  let svc =
    Service.create world ~name:"ordered"
      ~policy:{|
        initial pick(x) <- env:src1(x);
        initial pick(x) <- env:src2(x);
      |}
      ()
  in
  let env = Service.env svc in
  Env.declare_fact env "src1";
  Env.declare_fact env "src2";
  Env.assert_fact env "src1" [ Value.Int 1 ];
  Env.assert_fact env "src2" [ Value.Int 2 ];
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      ignore (ok (Principal.activate p s svc ~role:"pick" ()));
      (* The later rule is still reachable when explicitly pinned. *)
      ignore (ok (Principal.activate p s svc ~role:"pick" ~args:[ Some (Value.Int 2) ] ())));
  let args_granted =
    List.map (fun (_, args, _) -> args) (Service.active_roles_named svc "pick")
  in
  Alcotest.(check bool) "first-installed rule bound the parameter" true
    (List.mem [ Value.Int 1 ] args_granted);
  Alcotest.(check int) "both activations granted" 2 (List.length args_granted)

(* One fact change must re-examine only the RMCs watching that predicate.
   The hospital world holds 5 active RMCs but only treating_doctor watches
   env:assigned; changes to an unwatched predicate must cost nothing. *)
let test_fact_change_cost_indexed () =
  let t = make () in
  let _session = alice_treating t ~patient:7 in
  let env = Service.env t.hospital in
  Env.declare_fact env "unrelated";
  Alcotest.(check int) "one watcher of assigned" 1
    (Service.env_watcher_count t.hospital "assigned");
  Alcotest.(check int) "excluded is unmarked, unwatched" 0
    (Service.env_watcher_count t.hospital "excluded");
  Service.reset_stats t.hospital;
  Env.assert_fact env "unrelated" [ Value.Int 1 ];
  Alcotest.(check int) "unwatched change re-checks nothing" 0
    (Service.stats t.hospital).Service.env_rechecks;
  Env.assert_fact env "assigned" [ Value.Id (Principal.id t.alice); Value.Int 999 ];
  Alcotest.(check int) "watched change re-checks exactly the watcher" 1
    (Service.stats t.hospital).Service.env_rechecks;
  Alcotest.(check int) "role survived the sentinel change" 1
    (List.length (Service.active_roles_named t.hospital "treating_doctor"))

(* The ablation baseline: with indexing off, the same unwatched change
   re-scans every valid RMC — the cost the index removes. *)
let test_fact_change_cost_linear_baseline () =
  let config = { Service.default_config with Service.index_env_watches = false } in
  let t = make ~config () in
  let _session = alice_treating t ~patient:7 in
  let env = Service.env t.hospital in
  Env.declare_fact env "unrelated";
  let active = List.length (Service.active_roles t.hospital) in
  Alcotest.(check int) "five RMCs active" 5 active;
  Service.reset_stats t.hospital;
  Env.assert_fact env "unrelated" [ Value.Int 1 ];
  Alcotest.(check int) "unindexed change re-scans every active RMC" active
    (Service.stats t.hospital).Service.env_rechecks

let counting_handler received =
  { Network.on_oneway = (fun ~src:_ _ -> incr received); on_rpc = (fun ~src:_ m -> m) }

(* A handler that raises used to strand the caller on a never-filled ivar
   (the rpc blocked forever at a fixed virtual time). The round trip must
   fail fast with Rpc_dropped — even under a timeout, since the simulator
   knows the server died — and be accounted under the handler_error cause. *)
let test_rpc_handler_error_fails_fast () =
  let engine = Engine.create () in
  let net = Network.create engine (Rng.create 1) ~default_latency:1.0 () in
  let a = Ident.make "node" 0 and b = Ident.make "node" 1 in
  Network.add_node net a (counting_handler (ref 0));
  Network.add_node net b
    { Network.on_oneway = (fun ~src:_ _ -> ()); on_rpc = (fun ~src:_ _ -> failwith "handler bug") };
  let outcome = ref `Pending in
  Proc.spawn engine (fun () ->
      match Network.rpc net ~src:a ~dst:b () with
      | _ -> outcome := `Replied
      | exception Network.Rpc_dropped -> outcome := `Dropped);
  Engine.run engine;
  (match !outcome with
  | `Dropped -> ()
  | `Replied -> Alcotest.fail "handler exception produced a reply"
  | `Pending -> Alcotest.fail "caller stranded: rpc never completed");
  (* Under a timeout the failure still surfaces when the handler dies, not
     when the timer expires. *)
  let t0 = Engine.now engine in
  let failed_at = ref nan in
  Proc.spawn engine (fun () ->
      match Network.rpc ~timeout:50.0 net ~src:a ~dst:b () with
      | _ -> Alcotest.fail "handler exception produced a reply (timeout mode)"
      | exception Network.Rpc_dropped -> failed_at := Engine.now engine
      | exception Proc.Timeout -> Alcotest.fail "waited for the timeout instead of failing fast");
  Engine.run engine;
  Alcotest.(check bool) "failed as soon as the handler died" true (!failed_at -. t0 < 50.0);
  Alcotest.(check int) "counted as handler_error" 2
    (List.assoc "handler_error" (Network.dropped_by_cause net));
  Alcotest.(check int) "legacy dropped view agrees" 2 (Network.stats net).Network.dropped

(* remove_node used to leave the node's link overrides behind, so a later
   node reusing the ident inherited a dead node's link profile. The purge
   must cover both directions. *)
let test_remove_node_purges_links () =
  let engine = Engine.create () in
  let net = Network.create engine (Rng.create 1) ~default_latency:1.0 () in
  let a = Ident.make "node" 0 and b = Ident.make "node" 1 in
  let got_a = ref 0 and got_b = ref 0 in
  Network.add_node net a (counting_handler got_a);
  Network.add_node net b (counting_handler got_b);
  Network.set_link net a b ~latency:0.1 ~loss:1.0 ();
  Network.set_link net b a ~latency:0.1 ~loss:1.0 ();
  Network.send net ~src:a ~dst:b ();
  Engine.run engine;
  Alcotest.(check int) "fully lossy link drops" 0 !got_b;
  Alcotest.(check int) "loss attributed to link_loss" 1
    (List.assoc "link_loss" (Network.dropped_by_cause net));
  Network.remove_node net b;
  let got_b' = ref 0 in
  Network.add_node net b (counting_handler got_b');
  Network.send net ~src:a ~dst:b ();
  Network.send net ~src:b ~dst:a ();
  Engine.run engine;
  Alcotest.(check int) "reused ident gets the default a->b link" 1 !got_b';
  Alcotest.(check int) "reverse direction purged too" 1 !got_a

(* Every drop carries exactly one cause and the legacy aggregate is their
   sum; conservation (sent = delivered + dropped) still holds. *)
let test_drop_causes_sum_to_legacy_total () =
  let engine = Engine.create () in
  let net = Network.create engine (Rng.create 3) ~default_latency:1.0 () in
  let a = Ident.make "node" 0 and b = Ident.make "node" 1 and c = Ident.make "node" 2 in
  let got = ref 0 in
  Network.add_node net a (counting_handler got);
  Network.add_node net b (counting_handler got);
  Network.add_node net c (counting_handler got);
  Network.send net ~src:a ~dst:(Ident.make "node" 9) ();
  Network.set_down net c true;
  Network.send net ~src:c ~dst:a ();
  Network.set_down net c false;
  Network.send net ~src:a ~dst:c ();
  ignore (Engine.schedule engine ~after:0.5 (fun () -> Network.set_down net c true));
  Network.send net ~src:a ~dst:b ();
  Engine.run engine;
  let causes = Network.dropped_by_cause net in
  Alcotest.(check int) "dst_missing" 1 (List.assoc "dst_missing" causes);
  Alcotest.(check int) "src_down" 1 (List.assoc "src_down" causes);
  Alcotest.(check int) "in_flight_down" 1 (List.assoc "in_flight_down" causes);
  let stats = Network.stats net in
  Alcotest.(check int) "legacy dropped = per-cause sum" 3 stats.Network.dropped;
  Alcotest.(check int) "conservation" stats.Network.sent
    (stats.Network.delivered + stats.Network.dropped)

(* An unsubscribe while a publish is in flight suppresses the delivery;
   the accounting must show it: for each publish, subscribers at publish
   time = notified + suppressed. *)
let test_broker_inflight_unsubscribe_accounted () =
  let engine = Engine.create () in
  let broker = Broker.create engine (Rng.create 1) ~notify_latency:1.0 () in
  let got = ref 0 in
  let owner = Ident.make "svc" 1 in
  let s1 = Broker.subscribe broker "t" ~owner (fun _ _ -> incr got) in
  let _s2 = Broker.subscribe broker "t" ~owner (fun _ _ -> incr got) in
  Broker.publish broker "t" ();
  Broker.unsubscribe broker s1;
  Engine.run engine;
  Alcotest.(check int) "one callback ran" 1 !got;
  let st = Broker.stats broker in
  Alcotest.(check int) "published" 1 st.Broker.published;
  Alcotest.(check int) "notified" 1 st.Broker.notified;
  Alcotest.(check int) "in-flight suppression visible" 1 st.Broker.suppressed

let suite =
  ( "regressions",
    [
      Alcotest.test_case "non-ground negation refused" `Quick test_nonground_negation_denied;
      Alcotest.test_case "heartbeat cancel releases timer" `Quick
        test_heartbeat_cancel_releases_timer;
      Alcotest.test_case "decommission releases cache watches" `Quick
        test_decommission_releases_cache_watches;
      Alcotest.test_case "rule order preserved" `Quick test_rule_order_preserved;
      Alcotest.test_case "fact-change cost, indexed" `Quick test_fact_change_cost_indexed;
      Alcotest.test_case "fact-change cost, linear baseline" `Quick
        test_fact_change_cost_linear_baseline;
      Alcotest.test_case "rpc handler error fails fast" `Quick test_rpc_handler_error_fails_fast;
      Alcotest.test_case "remove_node purges links" `Quick test_remove_node_purges_links;
      Alcotest.test_case "drop causes sum to legacy total" `Quick
        test_drop_causes_sum_to_legacy_total;
      Alcotest.test_case "broker in-flight unsubscribe accounted" `Quick
        test_broker_inflight_unsubscribe_accounted;
    ] )
