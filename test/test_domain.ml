(* Domains, service-level agreements, roaming and anonymity (Sect. 3, 5). *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Domain = Oasis_domain.Domain
module Civ = Oasis_domain.Civ
module Sla = Oasis_domain.Sla
module Anonymity = Oasis_domain.Anonymity
module Env = Oasis_policy.Env
module Term = Oasis_policy.Term
module Value = Oasis_util.Value

(* ---------------- Domains ---------------- *)

let test_domain_structure () =
  let world = World.create ~seed:31 () in
  let hospital = Domain.create world ~name:"stmarys" () in
  let pharmacy =
    Domain.add_service hospital ~name:"pharmacy" ~policy:"initial clerk <- env:eq(1, 1);" ()
  in
  let xray =
    Domain.add_service hospital ~name:"xray" ~policy:"initial tech <- env:eq(1, 1);" ()
  in
  Alcotest.(check string) "qualified name" "stmarys.pharmacy" (Service.service_name pharmacy);
  Alcotest.(check int) "two services" 2 (List.length (Domain.services hospital));
  Alcotest.(check bool) "lookup by short name" true
    (match Domain.find_service hospital "xray" with Some s -> s == xray | None -> false);
  Alcotest.(check bool) "civ registered" true
    (World.resolve world "stmarys.civ" = Some (Civ.id (Domain.civ hospital)))

let test_domain_shared_env () =
  (* Services in one domain read the same database. *)
  let world = World.create ~seed:32 () in
  let d = Domain.create world ~name:"d" () in
  let a =
    Domain.add_service d ~name:"a" ~policy:"initial r <- env:flag(1);" ()
  in
  ignore a;
  let b = Domain.find_service d "a" in
  ignore b;
  Env.assert_fact (Domain.env d) "flag" [ Value.Int 1 ];
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      match Principal.activate p s (Option.get (Domain.find_service d "a")) ~role:"r" () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "denied: %s" (Protocol.denial_to_string e))

(* ---------------- SLA: the visiting doctor (Sect. 5) ---------------- *)

(* Home hospital issues employed_as_doctor appointments via its CIV; the
   research institute's SLA accepts them for the visiting_doctor role. *)
let visiting_doctor_world () =
  let world = World.create ~seed:33 () in
  let hospital_dom = Domain.create world ~name:"hospital" () in
  let institute_dom = Domain.create world ~name:"institute" () in
  let hospital_portal =
    Domain.add_service hospital_dom ~name:"portal"
      ~policy:"initial medical_staff(u) <- appt:employed_as_doctor(u)@hospital.civ;" ()
  in
  let institute_portal =
    Domain.add_service institute_dom ~name:"portal"
      ~policy:
        {|
          initial guest <- env:eq(1, 1);
          priv use_library(u) <- visiting_doctor(u);
        |}
      ()
  in
  let sla =
    Sla.establish world ~name:"hospital-institute-2001" ~between:hospital_portal
      ~and_:institute_portal
      ~clauses:
        [
          Sla.Accept_appointment
            {
              at = "institute.portal";
              role = "visiting_doctor";
              params = [ Term.Var "u" ];
              kind = "employed_as_doctor";
              cert_args = [ Term.Var "u" ];
              issuer = "hospital.civ";
              monitored = true;
              extra = [];
              initial = true;
            };
          (* Reciprocal clause: institute researchers may visit the hospital. *)
          Sla.Accept_appointment
            {
              at = "hospital.portal";
              role = "visiting_researcher";
              params = [ Term.Var "u" ];
              kind = "research_medic";
              cert_args = [ Term.Var "u" ];
              issuer = "institute.civ";
              monitored = true;
              extra = [];
              initial = true;
            };
        ]
  in
  (world, hospital_dom, institute_dom, hospital_portal, institute_portal, sla)

let test_sla_metadata () =
  let _, _, _, _, _, sla = visiting_doctor_world () in
  Alcotest.(check (pair string string)) "parties" ("hospital.portal", "institute.portal")
    (Sla.parties sla);
  Alcotest.(check int) "two clauses" 2 (List.length (Sla.clauses sla));
  Alcotest.(check int) "two rules installed" 2 (List.length (Sla.rules_installed sla));
  let rendered = Format.asprintf "%a" Sla.pp sla in
  Alcotest.(check bool) "pp mentions name" true
    (String.length rendered > 0)

let test_visiting_doctor_flow () =
  let world, hospital_dom, _institute_dom, _hp, institute_portal, _sla = visiting_doctor_world () in
  let doctor = Principal.create world ~name:"dr-jones" in
  (* The home CIV certifies employment after checking qualifications (the
     administrative check is outside policy here). *)
  let employment =
    Civ.issue (Domain.civ hospital_dom) ~kind:"employed_as_doctor"
      ~args:[ Value.Id (Principal.id doctor) ]
      ~holder:(Principal.id doctor) ~holder_key:(Principal.longterm_public doctor) ()
  in
  Principal.grant_appointment doctor employment;
  World.settle world;
  World.run_proc world (fun () ->
      let s = Principal.start_session doctor in
      (match Principal.activate doctor s institute_portal ~role:"visiting_doctor" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "visiting denied: %s" (Protocol.denial_to_string d));
      match
        Principal.invoke doctor s institute_portal ~privilege:"use_library"
          ~args:[ Value.Id (Principal.id doctor) ]
      with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "library denied: %s" (Protocol.denial_to_string d))

let test_visiting_doctor_revoked_at_home () =
  (* The hospital strikes the doctor off; the institute's visiting_doctor
     role collapses via the monitored foreign credential. *)
  let world, hospital_dom, _i, _hp, institute_portal, _sla = visiting_doctor_world () in
  let doctor = Principal.create world ~name:"dr-jones" in
  let employment =
    Civ.issue (Domain.civ hospital_dom) ~kind:"employed_as_doctor"
      ~args:[ Value.Id (Principal.id doctor) ]
      ~holder:(Principal.id doctor) ~holder_key:(Principal.longterm_public doctor) ()
  in
  Principal.grant_appointment doctor employment;
  World.settle world;
  World.run_proc world (fun () ->
      let s = Principal.start_session doctor in
      match Principal.activate doctor s institute_portal ~role:"visiting_doctor" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "denied: %s" (Protocol.denial_to_string d));
  Alcotest.(check int) "visiting active" 1 (List.length (Service.active_roles institute_portal));
  ignore
    (Civ.revoke (Domain.civ hospital_dom) employment.Oasis_cert.Appointment.id
       ~reason:"employment ended");
  World.settle world;
  Alcotest.(check int) "visiting collapsed" 0 (List.length (Service.active_roles institute_portal))

let test_sla_accept_role_clause () =
  (* The Fig. 3 pattern: a service accepts the other party's RMC (not an
     appointment) as prerequisite, with callback validation and monitoring. *)
  let world = World.create ~seed:34 () in
  (* [staff]'s head parameter is pinned by the request and validated by
     nothing — the lint gate (L001) refuses that, so it is off here. *)
  let a =
    Service.create world ~name:"a"
      ~config:{ Service.default_config with strict_install = false }
      ~policy:"initial staff(u) <- env:eq(1, 1);" ()
  in
  let b = Service.create world ~name:"b" ~policy:"initial noop <- env:eq(1, 2);" () in
  ignore
    (Sla.establish world ~name:"a-b" ~between:a ~and_:b
       ~clauses:
         [
           Sla.Accept_role
             {
               at = "b";
               role = "affiliate";
               params = [ Term.Var "u" ];
               foreign_role = "staff";
               role_args = [ Term.Var "u" ];
               issuer = "a";
               monitored = true;
               extra = [];
             };
         ]);
  let p = Principal.create world ~name:"p" in
  let staff_rmc =
    World.run_proc world (fun () ->
        let s = Principal.start_session p in
        let rmc =
          (* The head parameter is pinned by the request (seed binding). *)
          match
            Principal.activate p s a ~role:"staff" ~args:[ Some (Value.Id (Principal.id p)) ] ()
          with
          | Ok rmc -> rmc
          | Error d -> Alcotest.failf "staff denied: %s" (Protocol.denial_to_string d)
        in
        (match Principal.activate p s b ~role:"affiliate" () with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "affiliate denied: %s" (Protocol.denial_to_string d));
        rmc)
  in
  Alcotest.(check int) "affiliate active at b" 1 (List.length (Service.active_roles b));
  (* Revoking the foreign RMC collapses the affiliate role remotely. *)
  ignore (Service.revoke_certificate a staff_rmc.Oasis_cert.Rmc.id ~reason:"left");
  World.settle world;
  Alcotest.(check int) "affiliate collapsed" 0 (List.length (Service.active_roles b))

let test_sla_rejects_non_party () =
  let world = World.create ~seed:35 () in
  let a = Service.create world ~name:"a" ~policy:"initial r <- env:eq(1,1);" () in
  let b = Service.create world ~name:"b" ~policy:"initial r <- env:eq(1,1);" () in
  Alcotest.(check bool) "raises" true
    (match
       Sla.establish world ~name:"bogus" ~between:a ~and_:b
         ~clauses:
           [
             Sla.Accept_role
               {
                 at = "c";
                 role = "x";
                 params = [];
                 foreign_role = "r";
                 role_args = [];
                 issuer = "a";
                 monitored = false;
                 extra = [];
               };
           ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------- Group membership (Tate galleries) ---------------- *)

let test_group_membership_reciprocity () =
  (* A friend registered at one gallery receives friend privileges at any
     other; identity is not needed, only provable membership. *)
  let world = World.create ~seed:36 () in
  let tate_london = Domain.create world ~name:"tate_london" () in
  let tate_stives = Domain.create world ~name:"tate_stives" () in
  let stives_portal =
    Domain.add_service tate_stives ~name:"portal"
      ~policy:
        {|
          initial friend(m) <- appt:friend_card(m)@tate_london.civ;
          priv newsletter(m) <- friend(m);
        |}
      ()
  in
  ignore (Domain.civ tate_stives);
  let artlover = Principal.create world ~name:"artlover" in
  let card =
    Civ.issue (Domain.civ tate_london) ~kind:"friend_card"
      ~args:[ Value.Id (Principal.id artlover) ]
      ~holder:(Principal.id artlover) ~holder_key:(Principal.longterm_public artlover) ()
  in
  Principal.grant_appointment artlover card;
  World.settle world;
  World.run_proc world (fun () ->
      let s = Principal.start_session artlover in
      (match Principal.activate artlover s stives_portal ~role:"friend" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "friend denied: %s" (Protocol.denial_to_string d));
      match
        Principal.invoke artlover s stives_portal ~privilege:"newsletter"
          ~args:[ Value.Id (Principal.id artlover) ]
      with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "newsletter denied: %s" (Protocol.denial_to_string d))

(* ---------------- Anonymity (the genetic clinic) ---------------- *)

let anonymity_world () =
  let world = World.create ~seed:37 () in
  let insurer = Domain.create world ~name:"insurer" () in
  let clinic = Service.create world ~name:"clinic" ~policy:"priv take_test(exp) <- paid_up_patient(exp);" () in
  Service.add_activation_rule clinic
    (Anonymity.member_role_rule ~scheme:"insured" ~civ_name:"insurer.civ" ~role:"paid_up_patient");
  (world, insurer, clinic)

let test_anonymous_invocation () =
  let world, insurer, clinic = anonymity_world () in
  let member = Principal.create world ~name:"member-identity" in
  let membership =
    Anonymity.enroll ~civ:(Domain.civ insurer) ~member ~scheme:"insured" ~expires_at:1000.0
  in
  World.settle world;
  World.run_proc world (fun () ->
      let s = Principal.start_session member in
      (match Anonymity.activate_anonymously member s clinic ~role:"paid_up_patient" membership with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "anonymous activation denied: %s" (Protocol.denial_to_string d));
      match
        Principal.invoke_as member s clinic ~privilege:"take_test"
          ~args:[ Value.Time membership.Anonymity.expires_at ]
          ~alias:membership.Anonymity.alias
      with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "test denied: %s" (Protocol.denial_to_string d));
  (* The clinic's audit trail knows only the alias. *)
  let log = Service.audit_log clinic in
  Alcotest.(check bool) "audit has entries" true (List.length log >= 2);
  List.iter
    (fun entry ->
      Alcotest.(check bool) "no real identity in audit" false
        (Oasis_util.Ident.equal entry.Service.principal (Principal.id member));
      Alcotest.(check string) "alias is pseudonymous" "anon"
        (Oasis_util.Ident.tag entry.Service.principal))
    log

let test_anonymous_expiry_enforced () =
  let world, insurer, clinic = anonymity_world () in
  let member = Principal.create world ~name:"member" in
  let membership =
    Anonymity.enroll ~civ:(Domain.civ insurer) ~member ~scheme:"insured" ~expires_at:50.0
  in
  World.settle world;
  World.run_until world 60.0;
  World.settle world;
  World.run_proc world (fun () ->
      let s = Principal.start_session member in
      match Anonymity.activate_anonymously member s clinic ~role:"paid_up_patient" membership with
      | Error Protocol.No_proof -> ()
      | Ok _ -> Alcotest.fail "expired membership accepted"
      | Error d -> Alcotest.failf "unexpected: %s" (Protocol.denial_to_string d))

let test_anonymous_role_collapses_at_expiry () =
  (* Activated before expiry; the monitored certificate dies at the deadline
     and the clinic role collapses mid-test. *)
  let world, insurer, clinic = anonymity_world () in
  let member = Principal.create world ~name:"member" in
  let membership =
    Anonymity.enroll ~civ:(Domain.civ insurer) ~member ~scheme:"insured" ~expires_at:50.0
  in
  World.settle world;
  World.run_proc world (fun () ->
      let s = Principal.start_session member in
      match Anonymity.activate_anonymously member s clinic ~role:"paid_up_patient" membership with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "denied: %s" (Protocol.denial_to_string d));
  Alcotest.(check int) "active" 1 (List.length (Service.active_roles clinic));
  World.run_until world 60.0;
  World.settle world;
  Alcotest.(check int) "collapsed at expiry" 0 (List.length (Service.active_roles clinic))

let test_anonymous_theft_blocked_by_challenge () =
  (* With challenge-response on, only the holder of the pseudonym key can
     use the anonymous card. *)
  let world = World.create ~seed:38 () in
  let insurer = Domain.create world ~name:"insurer" () in
  let config = { Service.default_config with challenge_on_activation = true } in
  let clinic = Service.create world ~name:"clinic" ~config ~policy:"initial noop <- env:eq(1,1);" () in
  Service.add_activation_rule clinic
    (Anonymity.member_role_rule ~scheme:"insured" ~civ_name:"insurer.civ" ~role:"paid_up_patient");
  let member = Principal.create world ~name:"member" in
  let membership =
    Anonymity.enroll ~civ:(Domain.civ insurer) ~member ~scheme:"insured" ~expires_at:1000.0
  in
  World.settle world;
  (* The rightful member passes (their node answers the session-key challenge). *)
  World.run_proc world (fun () ->
      let s = Principal.start_session member in
      match Anonymity.activate_anonymously member s clinic ~role:"paid_up_patient" membership with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "member denied: %s" (Protocol.denial_to_string d))

let suite =
  ( "domain",
    [
      Alcotest.test_case "domain structure" `Quick test_domain_structure;
      Alcotest.test_case "shared env" `Quick test_domain_shared_env;
      Alcotest.test_case "sla metadata" `Quick test_sla_metadata;
      Alcotest.test_case "visiting doctor" `Quick test_visiting_doctor_flow;
      Alcotest.test_case "visiting doctor revoked" `Quick test_visiting_doctor_revoked_at_home;
      Alcotest.test_case "sla accept-role clause" `Quick test_sla_accept_role_clause;
      Alcotest.test_case "sla non-party" `Quick test_sla_rejects_non_party;
      Alcotest.test_case "group membership" `Quick test_group_membership_reciprocity;
      Alcotest.test_case "anonymous invocation" `Quick test_anonymous_invocation;
      Alcotest.test_case "anonymous expiry" `Quick test_anonymous_expiry_enforced;
      Alcotest.test_case "anonymous collapse" `Quick test_anonymous_role_collapses_at_expiry;
      Alcotest.test_case "anonymous challenge" `Quick test_anonymous_theft_blocked_by_challenge;
    ] )
