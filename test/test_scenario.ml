(* The scenario script runner. *)

module Scenario = Oasis_script.Scenario

let run src =
  match Scenario.run_string src with
  | Ok outcome -> outcome
  | Error e -> Alcotest.failf "scenario error: %a" Scenario.pp_error e

let expect_ok src =
  let outcome = run src in
  if outcome.Scenario.failures <> [] then
    Alcotest.failf "expectations failed:\n%s" (String.concat "\n" outcome.Scenario.failures)

let test_full_flow () =
  expect_ok
    {|
      seed 5
      service hospital {
        initial logged_in(u) <- appt:employee(u)@civ ;
        doctor(u) <- *logged_in(u), *appt:qualified(u)@civ ;
        treating(doc, pat) <- *doctor(doc), *env:assigned(doc, pat), env:!excluded(doc, pat) ;
        priv read(doc, pat) <- treating(doc, pat) ;
      }
      declare hospital assigned
      declare hospital excluded
      principal alice
      grant employee(alice) to alice as emp
      grant qualified(alice) to alice as qual
      session alice s
      activate alice s hospital logged_in expect granted
      activate alice s hospital doctor expect granted
      activate alice s hospital treating expect denied
      fact hospital assigned(alice, 5)
      activate alice s hospital treating expect granted
      invoke alice s hospital read(alice, 5) expect granted
      invoke alice s hospital read(alice, 6) expect denied
      revoke qual
      settle
      expect-active hospital 1
      invoke alice s hospital read(alice, 5) expect denied
      show hospital
    |}

let test_appoint_command () =
  expect_ok
    {|
      service svc {
        initial nurse(n) <- appt:shift(n)@civ ;
        initial doc(d) <- appt:reg(d)@civ ;
        treating(d, pat) <- *doc(d), *appt:alloc(d, pat) ;
        appoint alloc(d, pat) <- nurse(n) ;
      }
      principal niamh
      principal dara
      grant shift(niamh) to niamh
      grant reg(dara) to dara
      session niamh ns
      session dara ds
      activate niamh ns svc nurse expect granted
      activate dara ds svc doc expect granted
      appoint niamh ns svc alloc(dara, 7) to dara as allocation expect granted
      activate dara ds svc treating expect granted
      revoke allocation
      settle
      expect-active svc 2
    |}

let test_pins_and_labels () =
  expect_ok
    {|
      service svc {
        initial member(u, level) <- appt:card(u, level)@civ ;
      }
      principal p
      grant card(p, 1) to p
      grant card(p, 2) to p
      session p s
      activate p s svc member(_, 2) as gold expect granted
      activate p s svc member(_, 3) expect denied
      revoke gold
      settle
      expect-active svc 0
    |}

let test_expiry_and_time () =
  expect_ok
    {|
      service svc {
        initial member(u) <- *appt:card(u)@civ ;
      }
      principal p
      grant card(p) to p expires 100.0
      session p s
      activate p s svc member expect granted
      expect-active svc 1
      run-until 101.0
      settle
      expect-active svc 0
      activate p s svc member expect denied
    |}

let test_logout () =
  expect_ok
    {|
      service svc {
        initial root <- appt:k(u)@civ ;
        leaf <- root ;
      }
      principal p
      grant k(p) to p
      session p s
      activate p s svc root expect granted
      activate p s svc leaf expect granted
      expect-active svc 2
      logout p s
      settle
      expect-active svc 0
    |}

let test_expectation_failures_reported () =
  let outcome =
    run
      {|
        service svc {
          initial r <- env:eq(1, 1) ;
        }
        principal p
        session p s
        activate p s svc r expect denied
        expect-active svc 9
      |}
  in
  Alcotest.(check int) "two failures" 2 (List.length outcome.Scenario.failures)

(* Trust-robustness directives (DESIGN.md §16): half-issuance plus
   anti-entropy heal, the hysteresis hold band, and time decay. *)
let test_trust_churn_directives () =
  expect_ok
    {|
      seed 11
      service gate {
        initial customer(u) <- *appt:account(u)@civ ;
        trusted(u) <- *customer(u), *env:trust_score(u) >= 0.6 ~ 0.15 ;
        priv order(u) <- trusted(u) ;
      }
      principal alice
      principal bob
      grant account(alice) to alice as acct
      session alice s
      activate alice s gate customer expect granted

      # Half-issuance: the registrar crashes between the two wallet
      # filings — exactly one wallet updated.
      interact-crash alice bob fulfilled
      expect-wallet alice == 1
      expect-wallet bob == 0

      # Heal: restart anti-entropy re-delivers the missing half,
      # idempotently (alice's copy is not double-counted).
      fault restart civ
      settle
      expect-wallet alice == 1
      expect-wallet bob == 1

      # Earn trust, activate through the full gate.
      interact alice bob fulfilled
      expect-trust alice >= 0.7
      activate alice s gate trusted expect granted

      # Two breaches: (2+1)/(4+2) = 0.5 — below the grant gate but inside
      # the 0.15 hold band. The role survives; the flap is counted.
      interact alice bob breached fulfilled
      interact alice bob breached fulfilled
      expect-trust alice < 0.6
      expect-active gate 2
      expect-metric trust.flaps_suppressed{service=gate} >= 1

      # Re-activation uses the grant threshold, not the band.
      invoke alice s gate order(alice) expect granted

      # Decay: the score relaxes toward the 0.5 prior, which still sits
      # inside the band — hysteresis keeps the role stable.
      trust-decay 0.05 0.5
      run-until 200.0
      expect-trust alice <= 0.52
      expect-trust alice >= 0.48
      expect-active gate 2
    |}

(* A tight band: decay alone (no new interactions) sinks the score below
   θ - δ, and the periodic re-assessment tick revokes the role. *)
let test_decay_revokes_through_tick () =
  expect_ok
    {|
      seed 3
      service gate {
        initial customer(u) <- *appt:account(u)@civ ;
        trusted(u) <- *customer(u), *env:trust_score(u) >= 0.6 ~ 0.05 ;
      }
      principal alice
      principal bob
      grant account(alice) to alice as acct
      session alice s
      activate alice s gate customer expect granted
      interact alice bob fulfilled
      interact alice bob fulfilled
      expect-trust alice >= 0.7
      activate alice s gate trusted expect granted
      expect-active gate 2
      trust-decay 0.05 0.5
      run-until 100.0
      expect-trust alice < 0.55
      expect-active gate 1
    |}

let expect_error src =
  match Scenario.run_string src with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected scenario error for %s" src

let test_errors () =
  expect_error "frobnicate";
  expect_error "activate ghost s svc r";
  expect_error "service s {\n initial r ;";
  (* unterminated *)
  expect_error "principal p\ngrant k(p) p";
  (* missing 'to' *)
  expect_error "seed x";
  expect_error "service s {\n broken policy (((\n}"

let test_seed_must_be_first () =
  expect_error "principal p\nseed 4"

let test_string_and_bool_args () =
  expect_ok
    {|
      service svc {
        initial member(tag, flag) <- appt:card(tag, flag)@civ ;
      }
      principal p
      grant card("gold tier", true) to p
      session p s
      activate p s svc member("gold tier", true) expect granted
      activate p s svc member("silver", true) expect denied
    |}

let test_extract_policies () =
  let src =
    {|
      service a {
        initial base(u) <- appt:card(u)@civ ;
      }
      principal p
      service b {
        derived(u) <- base(u)@a ;
        orphan(u) <- missing(u)@a ;
      }
    |}
  in
  match Scenario.extract_policies src with
  | Error e -> Alcotest.failf "extract: %a" Scenario.pp_error e
  | Ok world ->
      Alcotest.(check int) "civ + two services" 3 (List.length world);
      let report = Oasis_policy.Analysis.analyse world in
      Alcotest.(check bool) "derived reachable" true
        (List.mem ("b", "derived") report.Oasis_policy.Analysis.reachable_roles);
      Alcotest.(check bool) "orphan dead" true
        (List.mem ("b", "orphan") report.Oasis_policy.Analysis.dead_roles);
      Alcotest.(check bool) "missing flagged" true
        (report.Oasis_policy.Analysis.unresolved <> [])

let test_extract_reports_policy_errors () =
  match Scenario.extract_policies "service a {\n broken ((( \n}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let suite =
  ( "scenario",
    [
      Alcotest.test_case "full flow" `Quick test_full_flow;
      Alcotest.test_case "appoint command" `Quick test_appoint_command;
      Alcotest.test_case "pins and labels" `Quick test_pins_and_labels;
      Alcotest.test_case "expiry" `Quick test_expiry_and_time;
      Alcotest.test_case "logout" `Quick test_logout;
      Alcotest.test_case "failures reported" `Quick test_expectation_failures_reported;
      Alcotest.test_case "trust churn directives" `Quick test_trust_churn_directives;
      Alcotest.test_case "decay revokes via tick" `Quick test_decay_revokes_through_tick;
      Alcotest.test_case "errors" `Quick test_errors;
      Alcotest.test_case "seed placement" `Quick test_seed_must_be_first;
      Alcotest.test_case "string/bool args" `Quick test_string_and_bool_args;
      Alcotest.test_case "extract policies" `Quick test_extract_policies;
      Alcotest.test_case "extract errors" `Quick test_extract_reports_policy_errors;
    ] )
