(* Property suite for the timer core (DESIGN.md §14): the flat heap and the
   engine's cancel/compaction lifecycle under randomised schedule/cancel
   churn — the workload a million heartbeat monitors generate. *)

module Heap = Oasis_sim.Heap
module Engine = Oasis_sim.Engine
module Rng = Oasis_util.Rng

(* ---------------- Heap properties ---------------- *)

(* Random pushes (with deliberate time collisions) always drain in
   (time, seq) lexicographic order. *)
let test_heap_pop_ordering () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"heap drains in (time, seq) order"
       QCheck.(int_range 1 1_000_000)
       (fun seed ->
         let rng = Rng.create seed in
         let h = Heap.create ~dummy:(-1) () in
         let n = 1 + Rng.int rng 300 in
         for seq = 0 to n - 1 do
           (* Few distinct times: ties on seq are the interesting case. *)
           let time = float_of_int (Rng.int rng 8) in
           Heap.push h ~time ~seq seq
         done;
         let last = ref (neg_infinity, -1) in
         for _ = 1 to n do
           match Heap.pop h with
           | None -> QCheck.Test.fail_report "heap drained early"
           | Some (time, seq, value) ->
               if value <> seq then QCheck.Test.fail_report "value does not follow seq";
               let key = (time, seq) in
               if key <= !last then
                 QCheck.Test.fail_reportf "out of order: (%g,%d) after (%g,%d)" time seq
                   (fst !last) (snd !last);
               last := key
         done;
         Heap.is_empty h))

(* Popped and filtered slots hold the dummy, never a stale value: the heap
   must not retain closures after removal. *)
let test_heap_clears_slots () =
  let h = Heap.create ~dummy:"dummy" () in
  for seq = 0 to 99 do
    Heap.push h ~time:(float_of_int (seq mod 10)) ~seq (Printf.sprintf "v%d" seq)
  done;
  for _ = 1 to 100 do
    ignore (Heap.pop h)
  done;
  Alcotest.(check int) "empty" 0 (Heap.size h);
  (* After draining, the backing array must have shrunk back to minimum and
     contain only dummies (observable via capacity; the slots themselves are
     private, so boundedness is the visible contract). *)
  Alcotest.(check bool) "capacity shrunk" true (Heap.capacity h <= 16)

let test_heap_shrinks () =
  let h = Heap.create ~dummy:(-1) () in
  for seq = 0 to 9999 do
    Heap.push h ~time:(float_of_int seq) ~seq seq
  done;
  let high = Heap.capacity h in
  for _ = 1 to 9900 do
    ignore (Heap.pop h)
  done;
  Alcotest.(check int) "100 left" 100 (Heap.size h);
  Alcotest.(check bool)
    (Printf.sprintf "capacity %d shrank from %d" (Heap.capacity h) high)
    true
    (Heap.capacity h < high / 8)

let test_heap_filter_in_place () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:50 ~name:"filter keeps order and drops the rest"
       QCheck.(int_range 1 1_000_000)
       (fun seed ->
         let rng = Rng.create seed in
         let h = Heap.create ~dummy:(-1) () in
         let n = 1 + Rng.int rng 200 in
         for seq = 0 to n - 1 do
           Heap.push h ~time:(Rng.float rng 50.0) ~seq seq
         done;
         Heap.filter_in_place h (fun v -> v mod 3 = 0);
         let expected = ref 0 in
         for v = 0 to n - 1 do
           if v mod 3 = 0 then incr expected
         done;
         if Heap.size h <> !expected then
           QCheck.Test.fail_reportf "filter kept %d, expected %d" (Heap.size h) !expected;
         let last = ref neg_infinity in
         let ok = ref true in
         for _ = 1 to !expected do
           match Heap.pop h with
           | Some (time, _, v) ->
               if v mod 3 <> 0 then ok := false;
               if time < !last then ok := false;
               last := time
           | None -> ok := false
         done;
         !ok && Heap.is_empty h))

(* ---------------- Engine properties ---------------- *)

(* A cancelled event never executes, whatever the interleaving of schedules
   and cancels the rng produces. *)
let test_cancel_never_fires () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"cancel-then-fire never executes"
       QCheck.(int_range 1 1_000_000)
       (fun seed ->
         let rng = Rng.create seed in
         let engine = Engine.create () in
         let n = 50 + Rng.int rng 200 in
         let fired = Array.make n false in
         let handles =
           Array.init n (fun i ->
               Engine.schedule engine ~after:(Rng.float rng 100.0) (fun () -> fired.(i) <- true))
         in
         let cancelled = Array.make n false in
         for i = 0 to n - 1 do
           if Rng.int rng 2 = 0 then begin
             cancelled.(i) <- true;
             Engine.cancel engine handles.(i)
           end
         done;
         Engine.run engine;
         let ok = ref true in
         for i = 0 to n - 1 do
           if cancelled.(i) && fired.(i) then ok := false;
           if (not cancelled.(i)) && not fired.(i) then ok := false
         done;
         !ok))

(* The heap stays O(live timers) under unbounded schedule/cancel churn —
   the tombstone-compaction contract. Without compaction this workload
   (schedule far-future, cancel, repeat: exactly heartbeat re-arm churn)
   grows the heap linearly with total events ever scheduled. *)
let test_heap_bounded_under_churn () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:20 ~name:"heap size O(live) under schedule/cancel churn"
       QCheck.(int_range 1 1_000_000)
       (fun seed ->
         let rng = Rng.create seed in
         let engine = Engine.create () in
         let live = Queue.create () in
         let rounds = 5_000 in
         for _ = 1 to rounds do
           (* Mostly cancel-heavy churn with a bounded live set. *)
           let h =
             Engine.schedule engine ~after:(1000.0 +. Rng.float rng 1000.0) (fun () -> ())
           in
           Queue.push h live;
           if Queue.length live > 64 then Engine.cancel engine (Queue.pop live);
           let bound = (2 * Engine.pending engine) + 128 in
           if Engine.heap_size engine > bound then
             QCheck.Test.fail_reportf "heap %d exceeds bound %d (pending %d)"
               (Engine.heap_size engine) bound (Engine.pending engine)
         done;
         (* Total scheduled: [rounds]; live now: at most 65. The physical
            heap must reflect the latter, not the former. *)
         Engine.pending engine <= 65 && Engine.heap_size engine <= 2 * 65 + 128))

(* A cancel storm (mass decommission) leaves pending-entry count O(live
   timers), not O(total scheduled) — the acceptance assertion, engine-level. *)
let test_cancel_storm_compacts () =
  let engine = Engine.create () in
  let n = 100_000 in
  let handles =
    Array.init n (fun i ->
        Engine.schedule engine ~after:(float_of_int (i + 1)) (fun () -> ()))
  in
  (* Keep 1 in 100; cancel the rest in one storm. *)
  let survivors = ref 0 in
  Array.iteri
    (fun i h -> if i mod 100 = 0 then incr survivors else Engine.cancel engine h)
    handles;
  Alcotest.(check int) "pending = survivors" !survivors (Engine.pending engine);
  Alcotest.(check bool)
    (Printf.sprintf "heap %d vs live %d" (Engine.heap_size engine) !survivors)
    true
    (Engine.heap_size engine <= (2 * !survivors) + 128);
  Engine.run engine;
  Alcotest.(check int) "survivors all fired" !survivors (Engine.events_executed engine)

(* [every] under random cancel points: ticks recorded before the cancel
   instant only, and the engine fully drains (no immortal periodic). *)
let test_every_stops_after_cancel () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"every stops after cancel"
       QCheck.(pair (int_range 1 1_000_000) (int_range 1 40))
       (fun (seed, cancel_after) ->
         let rng = Rng.create seed in
         let engine = Engine.create () in
         let period = 0.5 +. Rng.float rng 2.0 in
         let ticks = ref 0 in
         let timer = Engine.every engine ~period (fun () -> incr ticks; true) in
         (* Cancel at a half-period offset so the cancel instant never ties
            with a tick: ties resolve by seq, where the (earlier-scheduled)
            cancel wins and would tombstone the tied tick. *)
         let cancel_at = (float_of_int cancel_after -. 0.5) *. period in
         ignore (Engine.schedule_at engine ~at:cancel_at (fun () -> Engine.cancel engine timer));
         Engine.run engine;
         (* Without the cancel the run would never terminate; reaching here
            with the expected tick count is the property. *)
         let expected = cancel_after - 1 in
         if !ticks <> expected then
           QCheck.Test.fail_reportf "ticks %d, expected %d (period %g, cancel at %g)" !ticks
             expected period cancel_at;
         Engine.pending engine = 0))

let suite =
  ( "engine-properties",
    [
      Alcotest.test_case "heap pop ordering (qcheck)" `Quick test_heap_pop_ordering;
      Alcotest.test_case "heap clears popped slots" `Quick test_heap_clears_slots;
      Alcotest.test_case "heap shrinks" `Quick test_heap_shrinks;
      Alcotest.test_case "heap filter_in_place (qcheck)" `Quick test_heap_filter_in_place;
      Alcotest.test_case "cancel never fires (qcheck)" `Quick test_cancel_never_fires;
      Alcotest.test_case "heap bounded under churn (qcheck)" `Quick test_heap_bounded_under_churn;
      Alcotest.test_case "cancel storm compacts" `Quick test_cancel_storm_compacts;
      Alcotest.test_case "every stops after cancel (qcheck)" `Quick test_every_stops_after_cancel;
    ] )
