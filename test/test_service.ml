(* The OASIS service: role entry, service use, appointment, denials
   (Fig. 2 paths 1-4). *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Env = Oasis_policy.Env
module Value = Oasis_util.Value
module Rmc = Oasis_cert.Rmc
open Fixtures

let test_initial_role_activation () =
  let t = make () in
  let rmc =
    World.run_proc t.world (fun () ->
        let s = Principal.start_session t.alice in
        ok (Principal.activate t.alice s t.hospital ~role:"logged_in" ()))
  in
  Alcotest.(check string) "role name" "logged_in" rmc.Rmc.role;
  Alcotest.(check bool) "parametrised by principal" true
    (List.exists (Value.equal (Value.Id (Principal.id t.alice))) rmc.Rmc.args);
  Alcotest.(check bool) "issuer is hospital" true
    (Oasis_util.Ident.equal rmc.Rmc.issuer (Service.id t.hospital));
  Alcotest.(check bool) "CR valid" true (Service.is_valid_certificate t.hospital rmc.Rmc.id)

let test_prerequisite_chain () =
  let t = make () in
  World.run_proc t.world (fun () ->
      let s = Principal.start_session t.alice in
      (* doctor requires logged_in: denied first, granted after. *)
      (match Principal.activate t.alice s t.hospital ~role:"doctor" () with
      | Error Protocol.No_proof -> ()
      | Ok _ -> Alcotest.fail "doctor without login"
      | Error d -> Alcotest.failf "unexpected denial: %s" (Protocol.denial_to_string d));
      ignore (ok (Principal.activate t.alice s t.hospital ~role:"logged_in" ()));
      ignore (ok (Principal.activate t.alice s t.hospital ~role:"doctor" ())))

let test_unknown_role () =
  let t = make () in
  World.run_proc t.world (fun () ->
      let s = Principal.start_session t.alice in
      match Principal.activate t.alice s t.hospital ~role:"surgeon" () with
      | Error (Protocol.Unknown_role "surgeon") -> ()
      | _ -> Alcotest.fail "expected Unknown_role")

let test_parametrised_role_from_env () =
  let t = make () in
  let session = alice_treating t ~patient:42 in
  let rmc =
    List.find (fun (r : Rmc.t) -> r.role = "treating_doctor") (Principal.session_rmcs session)
  in
  Alcotest.(check bool) "patient bound" true (List.exists (Value.equal (Value.Int 42)) rmc.Rmc.args)

let test_requested_args_pin () =
  let t = make () in
  let env = Service.env t.hospital in
  Env.assert_fact env "assigned" [ Value.Id (Principal.id t.alice); Value.Int 1 ];
  Env.assert_fact env "assigned" [ Value.Id (Principal.id t.alice); Value.Int 2 ];
  World.run_proc t.world (fun () ->
      let s = Principal.start_session t.alice in
      ignore (ok (Principal.activate t.alice s t.hospital ~role:"logged_in" ()));
      ignore (ok (Principal.activate t.alice s t.hospital ~role:"doctor" ()));
      let rmc =
        ok
          (Principal.activate t.alice s t.hospital ~role:"treating_doctor"
             ~args:[ None; Some (Value.Int 2) ] ())
      in
      Alcotest.(check bool) "pinned patient" true
        (List.exists (Value.equal (Value.Int 2)) rmc.Rmc.args);
      (* Pinning an unassigned patient is refused. *)
      match
        Principal.activate t.alice s t.hospital ~role:"treating_doctor"
          ~args:[ None; Some (Value.Int 9) ] ()
      with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "unassigned patient accepted")

let test_patient_exception () =
  (* "Joe Bloggs' health record may not be accessed by Fred Smith" *)
  let t = make () in
  let env = Service.env t.hospital in
  Env.assert_fact env "assigned" [ Value.Id (Principal.id t.alice); Value.Int 3 ];
  Env.assert_fact env "excluded" [ Value.Id (Principal.id t.alice); Value.Int 3 ];
  World.run_proc t.world (fun () ->
      let s = Principal.start_session t.alice in
      ignore (ok (Principal.activate t.alice s t.hospital ~role:"logged_in" ()));
      ignore (ok (Principal.activate t.alice s t.hospital ~role:"doctor" ()));
      match Principal.activate t.alice s t.hospital ~role:"treating_doctor" () with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "exclusion ignored")

let test_invocation () =
  let t = make () in
  let called = ref None in
  Service.register_operation t.hospital "read_record" (fun ~principal args ->
      called := Some (principal, args);
      Some (Value.Str "record-contents"));
  let session = alice_treating t ~patient:7 in
  let result =
    World.run_proc t.world (fun () ->
        ok
          (Principal.invoke t.alice session t.hospital ~privilege:"read_record"
             ~args:[ Value.Id (Principal.id t.alice); Value.Int 7 ]))
  in
  Alcotest.(check bool) "operation result" true (result = Some (Value.Str "record-contents"));
  match !called with
  | Some (principal, _) ->
      Alcotest.(check bool) "principal passed" true
        (Oasis_util.Ident.equal principal (Principal.id t.alice))
  | None -> Alcotest.fail "operation not called"

let test_invocation_without_operation () =
  let t = make () in
  let session = alice_treating t ~patient:7 in
  let result =
    World.run_proc t.world (fun () ->
        ok
          (Principal.invoke t.alice session t.hospital ~privilege:"read_record"
             ~args:[ Value.Id (Principal.id t.alice); Value.Int 7 ]))
  in
  Alcotest.(check bool) "authorized, no operation" true (result = None)

let test_invocation_denials () =
  let t = make () in
  let session = alice_treating t ~patient:7 in
  World.run_proc t.world (fun () ->
      (match
         Principal.invoke t.alice session t.hospital ~privilege:"delete_everything" ~args:[]
       with
      | Error (Protocol.Unknown_privilege _) -> ()
      | _ -> Alcotest.fail "expected Unknown_privilege");
      (* wrong patient *)
      (match
         Principal.invoke t.alice session t.hospital ~privilege:"read_record"
           ~args:[ Value.Id (Principal.id t.alice); Value.Int 8 ]
       with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "expected No_proof");
      (* wrong arity *)
      match Principal.invoke t.alice session t.hospital ~privilege:"read_record" ~args:[] with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "expected No_proof for arity")

let test_appointment_policy_enforced () =
  let t = make () in
  World.run_proc t.world (fun () ->
      (* Alice (not an admin) cannot appoint. *)
      let s = Principal.start_session t.alice in
      ignore (ok (Principal.activate t.alice s t.hospital ~role:"logged_in" ()));
      (match
         Principal.appoint t.alice s t.hospital ~kind:"qualified"
           ~args:[ Value.Id (Principal.id t.alice) ]
           ~holder:t.alice ()
       with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "self-qualification accepted");
      (* Unknown appointment kind. *)
      match
        Principal.appoint t.admin t.admin_session t.hospital ~kind:"nonexistent" ~args:[]
          ~holder:t.alice ()
      with
      | Error (Protocol.Unknown_privilege _) -> ()
      | _ -> Alcotest.fail "unknown kind accepted")

let test_appointer_needs_no_privilege () =
  (* The hospital administrator is not medically qualified, yet appoints
     doctors (Sect. 2). The admin cannot activate doctor itself. *)
  let t = make () in
  World.run_proc t.world (fun () ->
      match Principal.activate t.admin t.admin_session t.hospital ~role:"doctor" () with
      | Error Protocol.No_proof -> ()
      | Ok _ -> Alcotest.fail "administrator became a doctor"
      | Error d -> Alcotest.failf "unexpected: %s" (Protocol.denial_to_string d))

let test_audit_log () =
  let t = make () in
  let session = alice_treating t ~patient:7 in
  ignore
    (World.run_proc t.world (fun () ->
         ok
           (Principal.invoke t.alice session t.hospital ~privilege:"read_record"
              ~args:[ Value.Id (Principal.id t.alice); Value.Int 7 ])));
  let log = Service.audit_log t.hospital in
  let entry = List.hd log in
  Alcotest.(check string) "latest action" "read_record" entry.Service.action;
  Alcotest.(check bool) "principal recorded" true
    (Oasis_util.Ident.equal entry.Service.principal (Principal.id t.alice));
  Alcotest.(check bool) "supporting certificate recorded" true
    (entry.Service.creds_used <> []);
  (* Activations are audited too. *)
  Alcotest.(check bool) "activation audited" true
    (List.exists (fun e -> e.Service.action = "activate:treating_doctor") log)

let test_stats_counters () =
  let t = make () in
  Service.reset_stats t.hospital;
  let _session = alice_treating t ~patient:7 in
  World.run_proc t.world (fun () ->
      let s = Principal.start_session t.alice in
      match Principal.activate t.alice s t.hospital ~role:"surgeon" () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "surgeon?!");
  let st = Service.stats t.hospital in
  Alcotest.(check int) "granted" 3 st.Service.activations_granted;
  Alcotest.(check int) "denied" 1 st.Service.activations_denied

let test_active_roles_and_introspection () =
  let t = make () in
  let _session = alice_treating t ~patient:7 in
  let roles = Service.active_roles t.hospital in
  let alice_roles =
    List.filter (fun (_, _, _, p) -> Oasis_util.Ident.equal p (Principal.id t.alice)) roles
  in
  Alcotest.(check int) "alice has 3 active roles" 3 (List.length alice_roles);
  Alcotest.(check (list string)) "roles defined"
    [ "bootstrap"; "doctor"; "hr_admin"; "logged_in"; "treating_doctor" ]
    (Service.roles_defined t.hospital);
  Alcotest.(check (list string)) "privileges defined" [ "read_record" ]
    (Service.privileges_defined t.hospital)

let test_multiple_rules_disjunction () =
  (* A role with two activation rules: either suffices. *)
  let world = World.create ~seed:3 () in
  let svc =
    Service.create world ~name:"svc"
      ~policy:
        {|
          initial blue <- env:eq(1, 1);
          initial green <- env:eq(1, 2);
          member(u) <- blue, env:eq(u, 10);
          member(u) <- green, env:eq(u, 20);
        |}
      ()
  in
  ignore svc;
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      ignore (ok (Principal.activate p s svc ~role:"blue" ()));
      (* First rule's env check needs u seeded. *)
      let rmc = ok (Principal.activate p s svc ~role:"member" ~args:[ Some (Value.Int 10) ] ()) in
      Alcotest.(check bool) "via first rule" true
        (List.exists (Value.equal (Value.Int 10)) rmc.Rmc.args);
      (* Second rule requires green, which nobody can activate (1≠2). *)
      match Principal.activate p s svc ~role:"member" ~args:[ Some (Value.Int 20) ] () with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "second rule should fail")

let test_cross_service_prereq () =
  (* Fig. 1: service C requires RMCs issued by A. *)
  let world = World.create ~seed:9 () in
  let a = Service.create world ~name:"a" ~policy:"initial base <- env:eq(1, 1);" () in
  (* The point is the legacy validation callback at the issuer; offline
     verification would prove [base@a] locally without one. *)
  let config = { Service.default_config with offline_verify = false } in
  let c2 = Service.create world ~name:"c2" ~config ~policy:"derived2 <- base@a;" () in
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      (match Principal.activate p s c2 ~role:"derived2" () with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "derived2 without base");
      ignore (ok (Principal.activate p s a ~role:"base" ()));
      ignore (ok (Principal.activate p s c2 ~role:"derived2" ())));
  (* Validation callbacks happened at a. *)
  let st = Service.stats a in
  Alcotest.(check bool) "issuer answered callbacks" true (st.Service.callbacks_in >= 1)

let suite =
  ( "service",
    [
      Alcotest.test_case "initial role" `Quick test_initial_role_activation;
      Alcotest.test_case "prerequisite chain" `Quick test_prerequisite_chain;
      Alcotest.test_case "unknown role" `Quick test_unknown_role;
      Alcotest.test_case "parametrised role" `Quick test_parametrised_role_from_env;
      Alcotest.test_case "requested args" `Quick test_requested_args_pin;
      Alcotest.test_case "patient exception" `Quick test_patient_exception;
      Alcotest.test_case "invocation" `Quick test_invocation;
      Alcotest.test_case "invocation without operation" `Quick test_invocation_without_operation;
      Alcotest.test_case "invocation denials" `Quick test_invocation_denials;
      Alcotest.test_case "appointment policy" `Quick test_appointment_policy_enforced;
      Alcotest.test_case "appointer lacks privilege" `Quick test_appointer_needs_no_privilege;
      Alcotest.test_case "audit log" `Quick test_audit_log;
      Alcotest.test_case "stats" `Quick test_stats_counters;
      Alcotest.test_case "introspection" `Quick test_active_roles_and_introspection;
      Alcotest.test_case "rule disjunction" `Quick test_multiple_rules_disjunction;
      Alcotest.test_case "cross-service prereq" `Quick test_cross_service_prereq;
    ] )
