(* Chaos: randomised fault schedules (partitions, crash/restart, revocation,
   probes) against the two safety properties of DESIGN.md §11:

     S1  no stale grant: once a supporting credential is revoked, the
         dependent role is deactivated within a propagation bound
         (heartbeat deadline + suspect grace + slack) of the revocation —
         or of the relying service's restart, if it was down — regardless
         of partitions, because fail-closed degradation needs no
         connectivity;
     S2  convergence: once every fault heals, all suspect roles resolve
         (reinstated or revoked) within the grace period.

   The same schedules run against the deliberately broken [fail_open]
   ablation, which must violate S1 on some seed — proving the harness can
   actually catch the bug it exists to catch. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Fault = Oasis_sim.Fault
module Backoff = Oasis_util.Backoff
module Rng = Oasis_util.Rng

let period = 0.5
let deadline = 1.5
let grace = 2.0

(* Detection within [deadline] of the beats stopping, resolution within
   [grace] of detection; the slack covers reconciliation polls, notification
   latency and retry jitter. *)
let bound = deadline +. grace +. 1.0

let chaos_config ~fail_open =
  {
    Service.default_config with
    suspect_grace = grace;
    fail_open;
    retry = { Backoff.default with base = 0.02; cap = 0.2; max_attempts = 4 };
  }

type chaos = {
  world : World.t;
  issuer : Service.t;
  relying : Service.t;
  base_id : Oasis_util.Ident.t;
  derived_id : Oasis_util.Ident.t;
  mutable partitioned : bool;
  mutable revoked_at : float option;
  mutable relying_up_since : float;
  mutable probes : int;
}

let ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "chaos setup denied: %s" (Protocol.denial_to_string d)

let build ~fail_open seed =
  let world = World.create ~seed ~monitoring:(World.Heartbeats { period; deadline }) () in
  let issuer = Service.create world ~name:"issuer" ~policy:"initial base <- env:eq(1, 1);" () in
  let relying =
    Service.create world ~name:"relying" ~config:(chaos_config ~fail_open)
      ~policy:"derived <- *base@issuer;" ()
  in
  let p = Principal.create world ~name:"p" in
  let base, derived =
    World.run_proc world (fun () ->
        let s = Principal.start_session p in
        let base = ok (Principal.activate p s issuer ~role:"base" ()) in
        let derived = ok (Principal.activate p s relying ~role:"derived" ()) in
        (base, derived))
  in
  {
    world;
    issuer;
    relying;
    base_id = base.Oasis_cert.Rmc.id;
    derived_id = derived.Oasis_cert.Rmc.id;
    partitioned = false;
    revoked_at = None;
    relying_up_since = 0.0;
    probes = 0;
  }

(* S1, checkable at any instant the relying service is up. *)
let stale_grant c =
  match c.revoked_at with
  | Some t_rev when not (Service.is_crashed c.relying) ->
      let stable_since = Float.max t_rev c.relying_up_since in
      World.now c.world -. stable_since > bound
      && Service.is_valid_certificate c.relying c.derived_id
  | _ -> false

let probe c rng =
  let q = Principal.create c.world ~name:(Printf.sprintf "probe%d" c.probes) in
  c.probes <- c.probes + 1;
  ignore rng;
  World.run_proc c.world (fun () ->
      let s = Principal.start_session q in
      (match Principal.activate q s c.issuer ~role:"base" () with
      | Ok _ | Error _ -> ());
      match Principal.activate q s c.relying ~role:"derived" () with
      | Ok _ | Error _ -> ())

let step c rng =
  World.run_until c.world (World.now c.world +. (0.3 +. Rng.float rng 0.7));
  match Rng.int rng 12 with
  | 0 | 1 ->
      if not c.partitioned then begin
        Fault.partition (World.fault c.world) ~name:"wan"
          [ Service.id c.relying ]
          [ Service.id c.issuer ];
        c.partitioned <- true
      end
  | 2 | 3 ->
      if c.partitioned then begin
        Fault.heal (World.fault c.world) "wan";
        c.partitioned <- false
      end
  | 4 ->
      if not (Service.is_crashed c.relying) then Service.crash c.relying
      else begin
        Service.restart c.relying;
        c.relying_up_since <- World.now c.world
      end
  | 5 ->
      if not (Service.is_crashed c.issuer) then Service.crash c.issuer
      else Service.restart c.issuer
  | 6 | 7 ->
      if c.revoked_at = None then begin
        ignore (Service.revoke_certificate c.issuer c.base_id ~reason:"chaos revoke");
        c.revoked_at <- Some (World.now c.world)
      end
  | 8 | 9 -> probe c rng
  | _ -> ()

let finish c =
  (* Heal everything, then give reconciliation one bound to converge. *)
  Fault.heal_all (World.fault c.world);
  c.partitioned <- false;
  if Service.is_crashed c.issuer then Service.restart c.issuer;
  if Service.is_crashed c.relying then begin
    Service.restart c.relying;
    c.relying_up_since <- World.now c.world
  end;
  World.run_until c.world (World.now c.world +. bound +. 1.0)

(* Runs one seed; returns the violation (if any) instead of asserting, so
   the fail-open ablation can count violations across seeds. *)
let run_schedule ~fail_open seed =
  let c = build ~fail_open seed in
  let rng = Rng.create ((seed * 2654435761) lxor 0x9e3779b9) in
  let steps = 25 + Rng.int rng 15 in
  let violation = ref None in
  for _ = 1 to steps do
    if !violation = None then begin
      step c rng;
      if stale_grant c then
        violation :=
          Some
            (Printf.sprintf "S1: stale grant at t=%.2f (revoked at %.2f)" (World.now c.world)
               (Option.get c.revoked_at))
    end
  done;
  (match !violation with
  | Some _ -> ()
  | None ->
      finish c;
      if stale_grant c then violation := Some "S1: stale grant after final heal";
      if Service.suspect_count c.relying + Service.suspect_count c.issuer > 0 then
        violation := Some "S2: unresolved suspects after heal + grace");
  !violation

let n_seeds = 60

let test_chaos_fail_closed () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:n_seeds ~name:"chaos schedules keep S1+S2"
       QCheck.(int_range 1 100_000)
       (fun seed ->
         match run_schedule ~fail_open:false seed with
         | None -> true
         | Some v -> QCheck.Test.fail_reportf "seed %d: %s" seed v))

let test_chaos_fail_open_detected () =
  (* Test of the test: the same harness must catch the fail-open bug. *)
  let violations = ref 0 in
  for seed = 1 to n_seeds do
    match run_schedule ~fail_open:true seed with
    | Some _ -> incr violations
    | None -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fail-open violates safety (%d/%d seeds)" !violations n_seeds)
    true (!violations > 0)

let test_chaos_deterministic () =
  let trace seed =
    let c = build ~fail_open:false seed in
    let rng = Rng.create ((seed * 2654435761) lxor 0x9e3779b9) in
    for _ = 1 to 20 do
      step c rng
    done;
    finish c;
    let st = Service.stats c.relying in
    Printf.sprintf "t=%.4f sus=%d rein=%d rev=%d probes=%d" (World.now c.world)
      st.Service.suspects st.Service.reconciled_reinstated st.Service.reconciled_revoked
      c.probes
  in
  let traces =
    List.map
      (fun seed ->
        let a = trace seed in
        Alcotest.(check string) (Printf.sprintf "seed %d replays identically" seed) a (trace seed);
        a)
      [ 5; 23; 77 ]
  in
  (* Vacuity guard: the schedules must actually exercise the machinery. *)
  Alcotest.(check bool)
    (Printf.sprintf "chaos produced suspects (%s)" (String.concat " | " traces))
    true
    (List.exists
       (fun t ->
         let contains sub =
           let n = String.length sub and m = String.length t in
           let rec go i = i + n <= m && (String.sub t i n = sub || go (i + 1)) in
           go 0
         in
         not (contains "sus=0"))
       traces)

let suite =
  ( "chaos",
    [
      Alcotest.test_case "fault schedules keep safety (qcheck)" `Slow test_chaos_fail_closed;
      Alcotest.test_case "fail-open ablation is caught" `Slow test_chaos_fail_open_detected;
      Alcotest.test_case "chaos runs are deterministic" `Quick test_chaos_deterministic;
    ] )
