(* Event middleware: broker and heartbeats. *)

module Engine = Oasis_sim.Engine
module Broker = Oasis_event.Broker
module Heartbeat = Oasis_event.Heartbeat
module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng

let owner = Ident.make "svc" 0

let make ?(latency = 1.0) () =
  let engine = Engine.create () in
  let broker = Broker.create engine (Rng.create 1) ~notify_latency:latency () in
  (engine, broker)

let test_pub_sub () =
  let engine, broker = make () in
  let got = ref [] in
  ignore (Broker.subscribe broker "t" ~owner (fun topic v -> got := (topic, v, Engine.now engine) :: !got));
  Broker.publish broker "t" 42;
  Alcotest.(check (list (triple string int (float 1e-9)))) "async" [] !got;
  Engine.run engine;
  Alcotest.(check (list (triple string int (float 1e-9)))) "delivered after latency"
    [ ("t", 42, 1.0) ] !got

let test_topic_isolation () =
  let engine, broker = make () in
  let got = ref 0 in
  ignore (Broker.subscribe broker "a" ~owner (fun _ _ -> incr got));
  Broker.publish broker "b" 1;
  Engine.run engine;
  Alcotest.(check int) "no cross-topic delivery" 0 !got

let test_multiple_subscribers_order () =
  let engine, broker = make () in
  let log = ref [] in
  for i = 1 to 3 do
    ignore (Broker.subscribe broker "t" ~owner (fun _ _ -> log := i :: !log))
  done;
  Broker.publish broker "t" 0;
  Engine.run engine;
  Alcotest.(check (list int)) "subscription order" [ 1; 2; 3 ] (List.rev !log)

let test_unsubscribe () =
  let engine, broker = make () in
  let got = ref 0 in
  let sub = Broker.subscribe broker "t" ~owner (fun _ _ -> incr got) in
  Broker.publish broker "t" 1;
  Engine.run engine;
  Broker.unsubscribe broker sub;
  Broker.publish broker "t" 2;
  Engine.run engine;
  Alcotest.(check int) "one delivery" 1 !got;
  Alcotest.(check int) "count" 0 (Broker.subscriber_count broker "t")

let test_unsubscribe_cancels_in_flight () =
  (* Spec: in-flight publishes are still delivered after unsubscribe?
     No — the subscription flag is checked at delivery; unsubscribing before
     delivery suppresses the callback. The interface promises delivery of
     notifications that already left the broker; our broker checks liveness
     at delivery, which is the conservative behaviour: verify it. *)
  let engine, broker = make () in
  let got = ref 0 in
  let sub = Broker.subscribe broker "t" ~owner (fun _ _ -> incr got) in
  Broker.publish broker "t" 1;
  Broker.unsubscribe broker sub;
  Engine.run engine;
  Alcotest.(check int) "suppressed at delivery" 0 !got

let test_late_subscriber_misses_publish () =
  let engine, broker = make () in
  let got = ref 0 in
  Broker.publish broker "t" 1;
  ignore (Broker.subscribe broker "t" ~owner (fun _ _ -> incr got));
  Engine.run engine;
  Alcotest.(check int) "no retroactive delivery" 0 !got

let test_stats () =
  let engine, broker = make () in
  ignore (Broker.subscribe broker "t" ~owner (fun _ _ -> ()));
  ignore (Broker.subscribe broker "t" ~owner (fun _ _ -> ()));
  Broker.publish broker "t" 1;
  Broker.publish broker "u" 2;
  Engine.run engine;
  let stats = Broker.stats broker in
  Alcotest.(check int) "published" 2 stats.Broker.published;
  Alcotest.(check int) "notified" 2 stats.Broker.notified;
  Broker.reset_stats broker;
  Alcotest.(check int) "reset" 0 (Broker.stats broker).Broker.published

let test_fifo_per_subscriber () =
  let engine, broker = make () in
  let log = ref [] in
  ignore (Broker.subscribe broker "t" ~owner (fun _ v -> log := v :: !log));
  for i = 1 to 5 do
    Broker.publish broker "t" i
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "publish order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

(* ---------------- Heartbeats ---------------- *)

let test_emitter_beats () =
  let engine, broker = make ~latency:0.01 () in
  let beats = ref 0 in
  ignore (Broker.subscribe broker "hb" ~owner (fun _ _ -> incr beats));
  let emitter = Heartbeat.start_emitter broker engine ~topic:"hb" ~period:1.0 ~beat:() in
  Engine.run_until engine 5.5;
  Heartbeat.stop_emitter emitter;
  Engine.run engine;
  Alcotest.(check int) "five beats" 5 !beats;
  Alcotest.(check int) "emitted counter" 5 (Heartbeat.beats_emitted emitter)

let test_monitor_no_miss_while_beating () =
  let engine, broker = make ~latency:0.01 () in
  let emitter = Heartbeat.start_emitter broker engine ~topic:"hb" ~period:1.0 ~beat:() in
  let missed = ref false in
  let monitor =
    Heartbeat.watch broker engine ~topic:"hb" ~deadline:2.5 ~on_miss:(fun () -> missed := true)
  in
  Engine.run_until engine 10.0;
  Alcotest.(check bool) "no miss" false !missed;
  Heartbeat.stop_emitter emitter;
  Heartbeat.cancel_watch monitor;
  Engine.run engine

let test_monitor_miss_after_stop () =
  let engine, broker = make ~latency:0.01 () in
  let emitter = Heartbeat.start_emitter broker engine ~topic:"hb" ~period:1.0 ~beat:() in
  let miss_at = ref nan in
  let monitor =
    Heartbeat.watch broker engine ~topic:"hb" ~deadline:2.5 ~on_miss:(fun () ->
        miss_at := Engine.now engine)
  in
  ignore (Engine.schedule engine ~after:4.0 (fun () -> Heartbeat.stop_emitter emitter));
  Engine.run engine;
  Alcotest.(check bool) "missed" true (Heartbeat.missed monitor);
  (* Last beat delivered at ~3.01 (the 4.0 beat loses the race with the
     stop event); the monitor declares the miss one deadline later. *)
  Alcotest.(check bool)
    (Printf.sprintf "miss at %f" !miss_at)
    true
    (!miss_at > 5.4 && !miss_at < 5.7)

let test_monitor_cancel () =
  let engine, broker = make ~latency:0.01 () in
  let missed = ref false in
  let monitor =
    Heartbeat.watch broker engine ~topic:"hb" ~deadline:1.0 ~on_miss:(fun () -> missed := true)
  in
  Heartbeat.cancel_watch monitor;
  Engine.run engine;
  Alcotest.(check bool) "cancelled before deadline" false !missed

let test_monitor_accept_filter () =
  let engine, broker = make ~latency:0.01 () in
  let missed = ref false in
  ignore
    (Heartbeat.watch broker engine ~topic:"hb" ~deadline:2.0
       ~accept:(fun v -> v = 1)
       ~on_miss:(fun () -> missed := true));
  (* Publish only non-beat payloads: they must not count as beats. *)
  ignore
    (Engine.every engine ~period:0.5 (fun () ->
         Broker.publish broker "hb" 0;
         Engine.now engine < 5.0));
  Engine.run engine;
  Alcotest.(check bool) "filtered payloads miss" true !missed

let suite =
  ( "event",
    [
      Alcotest.test_case "pub/sub" `Quick test_pub_sub;
      Alcotest.test_case "topic isolation" `Quick test_topic_isolation;
      Alcotest.test_case "subscriber order" `Quick test_multiple_subscribers_order;
      Alcotest.test_case "unsubscribe" `Quick test_unsubscribe;
      Alcotest.test_case "unsubscribe in flight" `Quick test_unsubscribe_cancels_in_flight;
      Alcotest.test_case "late subscriber" `Quick test_late_subscriber_misses_publish;
      Alcotest.test_case "stats" `Quick test_stats;
      Alcotest.test_case "fifo per subscriber" `Quick test_fifo_per_subscriber;
      Alcotest.test_case "emitter beats" `Quick test_emitter_beats;
      Alcotest.test_case "monitor healthy" `Quick test_monitor_no_miss_while_beating;
      Alcotest.test_case "monitor miss" `Quick test_monitor_miss_after_stop;
      Alcotest.test_case "monitor cancel" `Quick test_monitor_cancel;
      Alcotest.test_case "monitor accept filter" `Quick test_monitor_accept_filter;
    ] )
