(* Failure injection: validation callbacks over lossy links. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Network = Oasis_sim.Network

let build ~retries ~loss ~seed =
  let world = World.create ~seed () in
  let issuer = Service.create world ~name:"issuer" ~policy:"initial base <- env:eq(1, 1);" () in
  let config =
    {
      Service.default_config with
      retry = Oasis_util.Backoff.fixed (retries + 1);
      (* The suite measures validation-RPC retries over a lossy link;
         offline verification would bypass the link entirely. *)
      offline_verify = false;
    }
  in
  let relying =
    Service.create world ~name:"relying" ~config ~policy:"derived <- base@issuer;" ()
  in
  (* Loss on the callback path only, both directions. *)
  Network.set_link (World.network world) (Service.id relying) (Service.id issuer) ~latency:0.001
    ~loss ();
  Network.set_link (World.network world) (Service.id issuer) (Service.id relying) ~latency:0.001
    ~loss ();
  (world, issuer, relying)

let attempt_once world issuer relying p =
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      (match Principal.activate p s issuer ~role:"base" () with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "base denied: %s" (Protocol.denial_to_string d));
      match Principal.activate p s relying ~role:"derived" () with
      | Ok _ -> true
      | Error Protocol.No_proof -> false
      | Error d -> Alcotest.failf "unexpected: %s" (Protocol.denial_to_string d))

let success_rate ~retries ~loss =
  let successes = ref 0 in
  let n = 40 in
  for seed = 1 to n do
    let world, issuer, relying = build ~retries ~loss ~seed in
    let p = Principal.create world ~name:"p" in
    if attempt_once world issuer relying p then incr successes
  done;
  float_of_int !successes /. float_of_int n

let test_retries_mask_loss () =
  (* 30% per-leg loss: a single callback round trip succeeds with p=0.49;
     with 4 retries the activation should almost always succeed. *)
  let without = success_rate ~retries:0 ~loss:0.3 in
  let with_retries = success_rate ~retries:4 ~loss:0.3 in
  Alcotest.(check bool)
    (Printf.sprintf "retries help (%.2f -> %.2f)" without with_retries)
    true
    (with_retries > without && with_retries > 0.9)

let test_lossless_path_unaffected () =
  Alcotest.(check (float 1e-9)) "no loss, no failures" 1.0 (success_rate ~retries:0 ~loss:0.0)

let test_negative_verdict_not_retried () =
  (* A revoked credential is refused immediately even with many retries:
     only losses are retried, not verdicts. *)
  let world, issuer, relying = build ~retries:5 ~loss:0.0 ~seed:3 in
  let p = Principal.create world ~name:"p" in
  let base_rmc =
    World.run_proc world (fun () ->
        let s = Principal.start_session p in
        match Principal.activate p s issuer ~role:"base" () with
        | Ok rmc -> (s, rmc)
        | Error d -> Alcotest.failf "denied: %s" (Protocol.denial_to_string d))
  in
  let session, rmc = base_rmc in
  ignore (Service.revoke_certificate issuer rmc.Oasis_cert.Rmc.id ~reason:"gone");
  World.settle world;
  let before = (Service.stats relying).Service.callbacks_out in
  World.run_proc world (fun () ->
      match Principal.activate p session relying ~role:"derived" () with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "revoked base accepted");
  Alcotest.(check int) "exactly one callback" 1
    ((Service.stats relying).Service.callbacks_out - before)

let suite =
  ( "lossy",
    [
      Alcotest.test_case "retries mask loss" `Quick test_retries_mask_loss;
      Alcotest.test_case "lossless unaffected" `Quick test_lossless_path_unaffected;
      Alcotest.test_case "verdicts not retried" `Quick test_negative_verdict_not_retried;
    ] )
