(* Offline-verifiable signed credentials (DESIGN.md §12): the Schnorr
   layer, signature packing, the issuer key hierarchy, and the zero-RPC
   validation path end to end. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Civ = Oasis_domain.Civ
module Signed = Oasis_cert.Signed
module Rmc = Oasis_cert.Rmc
module Appointment = Oasis_cert.Appointment
module Codec = Oasis_cert.Codec
module Schnorr = Oasis_crypto.Schnorr
module Elgamal = Oasis_crypto.Elgamal
module Modp = Oasis_crypto.Modp
module Sha256 = Oasis_crypto.Sha256
module Rng = Oasis_util.Rng
module Ident = Oasis_util.Ident
module Value = Oasis_util.Value

let ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "unexpected denial: %s" (Protocol.denial_to_string d)

(* ---------------- Schnorr primitives ---------------- *)

let test_sign_verify () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"sign/verify"
       QCheck.(pair small_nat (string_of_size Gen.(int_bound 200)))
       (fun (seed, msg) ->
         let rng = Rng.create (seed + 1) in
         let kp = Schnorr.generate rng in
         let sg = Schnorr.sign ~secret:kp.Schnorr.secret rng msg in
         Schnorr.verify ~public:kp.Schnorr.public msg sg
         && (not (Schnorr.verify ~public:kp.Schnorr.public (msg ^ "x") sg))
         &&
         let other = Schnorr.generate rng in
         (* The redraw loop guarantees distinct keys are overwhelmingly
            likely; skip the degenerate collision. *)
         Int64.equal other.Schnorr.public kp.Schnorr.public
         || not (Schnorr.verify ~public:other.Schnorr.public msg sg)))

let test_tampered_signature_rejected () =
  let rng = Rng.create 42 in
  let kp = Schnorr.generate rng in
  let sg = Schnorr.sign ~secret:kp.Schnorr.secret rng "credential bytes" in
  Alcotest.(check bool) "genuine verifies" true
    (Schnorr.verify ~public:kp.Schnorr.public "credential bytes" sg);
  Alcotest.(check bool) "flipped e rejected" false
    (Schnorr.verify ~public:kp.Schnorr.public "credential bytes"
       { sg with Schnorr.e = Int64.logxor sg.Schnorr.e 1L });
  Alcotest.(check bool) "flipped s rejected" false
    (Schnorr.verify ~public:kp.Schnorr.public "credential bytes"
       { sg with Schnorr.s = Int64.logxor sg.Schnorr.s 1L });
  Alcotest.(check bool) "out-of-range scalar rejected" false
    (Schnorr.verify ~public:kp.Schnorr.public "credential bytes" { sg with Schnorr.s = -1L })

let test_signature_packing () =
  let rng = Rng.create 7 in
  let kp = Schnorr.generate rng in
  for i = 0 to 19 do
    let sg = Schnorr.sign ~secret:kp.Schnorr.secret rng (string_of_int i) in
    match Schnorr.of_digest (Schnorr.to_digest sg) with
    | Some sg' ->
        Alcotest.(check bool) "packing roundtrip" true
          (Int64.equal sg.Schnorr.e sg'.Schnorr.e && Int64.equal sg.Schnorr.s sg'.Schnorr.s)
    | None -> Alcotest.fail "packed signature did not unpack"
  done;
  (* An HMAC digest is effectively random 32 bytes: its 16-byte pad is
     non-zero, so scheme confusion is caught at unpacking. *)
  let hmac = Sha256.digest_string "any hmac value" in
  Alcotest.(check bool) "HMAC digest rejected as signature" true
    (Schnorr.of_digest hmac = None)

(* ---------------- Public-key parsing (satellite 4) ---------------- *)

let test_public_of_string_strict () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true
        (Elgamal.public_of_string s = None))
    [
      "";
      "abc";
      "+5" (* explicit sign *);
      "0x5" (* hex *);
      "1_0" (* underscore *);
      "007" (* leading zeros *);
      "0" (* out of range *);
      "1" (* identity *);
      Int64.to_string Modp.p (* = p, not a residue *);
      Int64.to_string (Int64.sub Modp.p 1L) (* order-2 element *);
      "-3";
    ];
  List.iter
    (fun s ->
      match Elgamal.public_of_string s with
      | Some v -> Alcotest.(check string) "canonical parse" s (Int64.to_string v)
      | None -> Alcotest.failf "%S refused" s)
    [ "2"; "5"; Int64.to_string (Int64.sub Modp.p 2L) ]

(* ---------------- Key hierarchy ---------------- *)

let test_chain_verifies () =
  let auth = Signed.create_authority (Rng.create 99) in
  let kp = Signed.generate_keypair auth in
  let chain =
    Signed.enrol auth ~subject:(Ident.make "service" 1) ~subject_pk:kp.Schnorr.public
      ~key_epoch:0 ~now:1.0
  in
  Alcotest.(check bool) "chain verifies at root address" true
    (Signed.verify_chain ~address:(Signed.address auth) chain);
  Alcotest.(check bool) "wrong address rejected" false
    (Signed.verify_chain ~address:(String.make 64 '0') chain);
  (* Tampering with any certified field breaks the root signature. *)
  let tampered = { chain with Signed.cert = { chain.Signed.cert with Signed.key_epoch = 1 } } in
  Alcotest.(check bool) "tampered key cert rejected" false
    (Signed.verify_chain ~address:(Signed.address auth) tampered);
  (* A substituted root key changes the address: the trust anchor itself
     cannot be swapped out underneath the verifier. *)
  let evil = Signed.create_authority (Rng.create 100) in
  let evil_kp = Signed.generate_keypair evil in
  let forged =
    Signed.enrol evil ~subject:(Ident.make "service" 1) ~subject_pk:evil_kp.Schnorr.public
      ~key_epoch:0 ~now:1.0
  in
  Alcotest.(check bool) "foreign root rejected" false
    (Signed.verify_chain ~address:(Signed.address auth) forged)

let test_signed_rmc_roundtrip () =
  let auth = Signed.create_authority (Rng.create 5) in
  let kp = Signed.generate_keypair auth in
  let issuer = Ident.make "service" 3 in
  let chain = Signed.enrol auth ~subject:issuer ~subject_pk:kp.Schnorr.public ~key_epoch:0 ~now:0.0 in
  let address = Signed.address auth in
  let rmc =
    Signed.issue_rmc ~keypair:kp ~rng:(Signed.rng auth) ~principal_key:"pk-alice"
      ~id:(Ident.make "cert" 1) ~issuer ~role:"doctor"
      ~args:[ Value.Int 4; Value.Str "ward" ]
      ~issued_at:2.5
  in
  (* sign → encode → decode → verify, all offline *)
  let decoded =
    match Codec.rmc_of_string (Codec.rmc_to_string rmc) with
    | Ok d -> d
    | Error _ -> Alcotest.fail "signed rmc did not decode"
  in
  Alcotest.(check bool) "decoded rmc verifies" true
    (Signed.verify_rmc ~address ~chain ~principal_key:"pk-alice" decoded);
  Alcotest.(check bool) "stolen certificate rejected" false
    (Signed.verify_rmc ~address ~chain ~principal_key:"pk-mallory" decoded);
  Alcotest.(check bool) "tampered args rejected" false
    (Signed.verify_rmc ~address ~chain ~principal_key:"pk-alice"
       (Rmc.with_args decoded [ Value.Int 5 ]));
  (* issuer/chain subject mismatch: a valid chain for another service must
     not vouch for this certificate *)
  let kp2 = Signed.generate_keypair auth in
  let other_chain =
    Signed.enrol auth ~subject:(Ident.make "service" 4) ~subject_pk:kp2.Schnorr.public
      ~key_epoch:0 ~now:0.0
  in
  Alcotest.(check bool) "foreign chain rejected" false
    (Signed.verify_rmc ~address ~chain:other_chain ~principal_key:"pk-alice" decoded)

let test_signed_appointment_roundtrip () =
  let auth = Signed.create_authority (Rng.create 6) in
  let kp = Signed.generate_keypair auth in
  let issuer = Ident.make "service" 8 in
  let chain = Signed.enrol auth ~subject:issuer ~subject_pk:kp.Schnorr.public ~key_epoch:2 ~now:0.0 in
  let address = Signed.address auth in
  let appt =
    Signed.issue_appointment ~keypair:kp ~rng:(Signed.rng auth) ~epoch:2 ~id:(Ident.make "cert" 2)
      ~issuer ~kind:"employee" ~args:[ Value.Int 1 ] ~holder:"hk" ~issued_at:1.0 ~expires_at:10.0 ()
  in
  let decoded =
    match Codec.appointment_of_string (Codec.appointment_to_string appt) with
    | Ok d -> d
    | Error _ -> Alcotest.fail "signed appointment did not decode"
  in
  Alcotest.(check bool) "verifies before expiry" true
    (Signed.verify_appointment ~address ~chain ~now:5.0 decoded);
  Alcotest.(check bool) "expired rejected" false
    (Signed.verify_appointment ~address ~chain ~now:11.0 decoded);
  (* Every byte of the protected fields is covered: flip each one and the
     certificate must either stop decoding or stop verifying. *)
  let bytes = Codec.appointment_to_string appt in
  for i = 0 to String.length bytes - 1 do
    let mutated = Bytes.of_string bytes in
    Bytes.set mutated i (Char.chr (Char.code bytes.[i] lxor 1));
    match Codec.appointment_of_string (Bytes.to_string mutated) with
    | Error _ -> ()
    | Ok d ->
        if Signed.verify_appointment ~address ~chain ~now:5.0 d then
          Alcotest.failf "byte %d flipped yet still verifies" i
  done;
  (* Epoch currency: a rotation re-enrols under a bumped epoch and strands
     certificates signed for the old one. *)
  let chain' = Signed.enrol auth ~subject:issuer ~subject_pk:kp.Schnorr.public ~key_epoch:3 ~now:2.0 in
  Alcotest.(check bool) "stale epoch rejected" false
    (Signed.verify_appointment ~address ~chain:chain' ~now:5.0 decoded)

(* ---------------- The zero-RPC validation path ---------------- *)

let build_pair ~offline () =
  let world = World.create ~seed:23 () in
  let issuer = Service.create world ~name:"issuer" ~policy:"initial base <- env:eq(1, 1);" () in
  let config = { Service.default_config with Service.offline_verify = offline } in
  let relying =
    Service.create world ~name:"relying" ~config ~policy:"derived <- *base@issuer;" ()
  in
  (world, issuer, relying)

let activate_derived world issuer relying =
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      ignore (ok (Principal.activate p s issuer ~role:"base" ()));
      ignore (ok (Principal.activate p s relying ~role:"derived" ())));
  World.settle world

let test_offline_path_zero_rpcs () =
  let world, issuer, relying = build_pair ~offline:true () in
  activate_derived world issuer relying;
  let st = Service.stats relying in
  Alcotest.(check int) "no validation callbacks" 0 st.Service.callbacks_out;
  Alcotest.(check bool) "offline validations counted" true (st.Service.offline_validations >= 1);
  Alcotest.(check int) "issuer answered nothing" 0 (Service.stats issuer).Service.callbacks_in

let test_legacy_path_still_calls_back () =
  let world, issuer, relying = build_pair ~offline:false () in
  activate_derived world issuer relying;
  let st = Service.stats relying in
  Alcotest.(check bool) "callbacks made" true (st.Service.callbacks_out >= 1);
  Alcotest.(check int) "no offline validations" 0 st.Service.offline_validations

let test_unenrolled_issuer_falls_back () =
  (* The issuer runs legacy HMAC signing (no chain with the root); a relying
     service with offline verification on must fall back to the callback and
     still grant. *)
  let world = World.create ~seed:29 () in
  let legacy = { Service.default_config with Service.offline_verify = false } in
  let issuer =
    Service.create world ~name:"issuer" ~config:legacy ~policy:"initial base <- env:eq(1, 1);" ()
  in
  let relying = Service.create world ~name:"relying" ~policy:"derived <- *base@issuer;" () in
  activate_derived world issuer relying;
  let st = Service.stats relying in
  Alcotest.(check bool) "fell back to callbacks" true (st.Service.callbacks_out >= 1);
  Alcotest.(check int) "no offline validations" 0 st.Service.offline_validations;
  Alcotest.(check int) "granted" 1
    (List.length (Service.active_roles_named relying "derived"))

let test_revoked_represented_denied_offline () =
  (* A revocation witnessed over the dependency watch poisons the cache;
     re-presenting the dead certificate is refused locally, still with zero
     callbacks. *)
  let world = World.create ~seed:31 () in
  let civ = Civ.create world ~name:"authority" () in
  let club =
    Service.create world ~name:"club" ~policy:"initial member(u) <- *appt:badge(u)@authority;" ()
  in
  let p = Principal.create world ~name:"p" in
  let badge =
    Civ.issue civ ~kind:"badge"
      ~args:[ Value.Id (Principal.id p) ]
      ~holder:(Principal.id p) ~holder_key:(Principal.longterm_public p) ()
  in
  Principal.grant_appointment p badge;
  World.settle world;
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      ignore (ok (Principal.activate p s club ~role:"member" ())));
  World.settle world;
  ignore (Civ.revoke civ badge.Appointment.id ~reason:"lapsed");
  World.settle world;
  Alcotest.(check int) "watch collapsed the role" 0
    (List.length (Service.active_roles_named club "member"));
  World.run_proc world (fun () ->
      let s2 = Principal.start_session p in
      match Principal.activate p s2 club ~role:"member" () with
      | Error Protocol.No_proof -> ()
      | Ok _ -> Alcotest.fail "revoked badge re-accepted"
      | Error d -> Alcotest.failf "unexpected denial: %s" (Protocol.denial_to_string d));
  Alcotest.(check int) "all of it without callbacks" 0 (Service.stats club).Service.callbacks_out

let test_decommission_revokes_chain () =
  let world = World.create ~seed:37 () in
  let issuer = Service.create world ~name:"issuer" ~policy:"initial base <- env:eq(1, 1);" () in
  let auth = World.authority world in
  Alcotest.(check bool) "enrolled on create" true
    (Signed.chain_for auth (Service.id issuer) <> None);
  ignore (Service.decommission issuer ~reason:"retired");
  Alcotest.(check bool) "chain withdrawn on decommission" true
    (Signed.chain_for auth (Service.id issuer) = None)

let suite =
  ( "signed",
    [
      Alcotest.test_case "sign/verify (qcheck)" `Quick test_sign_verify;
      Alcotest.test_case "tampered signature" `Quick test_tampered_signature_rejected;
      Alcotest.test_case "signature packing" `Quick test_signature_packing;
      Alcotest.test_case "strict public-key parse" `Quick test_public_of_string_strict;
      Alcotest.test_case "key chain" `Quick test_chain_verifies;
      Alcotest.test_case "signed rmc roundtrip" `Quick test_signed_rmc_roundtrip;
      Alcotest.test_case "signed appointment roundtrip" `Quick test_signed_appointment_roundtrip;
      Alcotest.test_case "offline path zero RPCs" `Quick test_offline_path_zero_rpcs;
      Alcotest.test_case "legacy path calls back" `Quick test_legacy_path_still_calls_back;
      Alcotest.test_case "unenrolled issuer falls back" `Quick test_unenrolled_issuer_falls_back;
      Alcotest.test_case "revoked re-presentation" `Quick test_revoked_represented_denied_offline;
      Alcotest.test_case "decommission revokes chain" `Quick test_decommission_revokes_chain;
    ] )
