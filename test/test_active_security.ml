(* The active security environment (Sect. 4, Fig. 5): membership monitoring,
   cascading deactivation, sessions collapsing. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Env = Oasis_policy.Env
module Value = Oasis_util.Value
module Rmc = Oasis_cert.Rmc
open Fixtures

let role_active t session name =
  List.exists
    (fun (r : Rmc.t) -> r.role = name && Service.is_valid_certificate t.hospital r.Rmc.id)
    (Principal.session_rmcs session)

let test_appointment_revocation_cascades () =
  let t = make () in
  let session = alice_treating t ~patient:7 in
  Alcotest.(check bool) "doctor active" true (role_active t session "doctor");
  ignore
    (Service.revoke_certificate t.hospital t.alice_qualification.Oasis_cert.Appointment.id
       ~reason:"struck off");
  World.settle t.world;
  Alcotest.(check bool) "doctor collapsed" false (role_active t session "doctor");
  Alcotest.(check bool) "treating_doctor collapsed" false (role_active t session "treating_doctor");
  Alcotest.(check bool) "logged_in survives" true (role_active t session "logged_in");
  let st = Service.stats t.hospital in
  Alcotest.(check int) "two cascade deactivations" 2 st.Service.cascade_deactivations

let test_env_retraction_cascades () =
  (* Retracting assigned(alice, 7) kills treating_doctor only. *)
  let t = make () in
  let session = alice_treating t ~patient:7 in
  Env.retract_fact (Service.env t.hospital) "assigned"
    [ Value.Id (Principal.id t.alice); Value.Int 7 ];
  World.settle t.world;
  Alcotest.(check bool) "treating collapsed" false (role_active t session "treating_doctor");
  Alcotest.(check bool) "doctor survives" true (role_active t session "doctor")

let test_env_assertion_falsifies_negation () =
  (* Asserting excluded(alice, 7) falsifies the monitored !excluded? No —
     in the fixture policy the exclusion condition is NOT membership-marked
     (checked at activation only), so asserting it later does not deactivate;
     but invocation (which re-checks) is refused. Verify both halves. *)
  let t = make () in
  let session = alice_treating t ~patient:7 in
  Env.assert_fact (Service.env t.hospital) "excluded"
    [ Value.Id (Principal.id t.alice); Value.Int 7 ];
  World.settle t.world;
  Alcotest.(check bool) "role remains (not membership-tagged)" true
    (role_active t session "treating_doctor");
  World.run_proc t.world (fun () ->
      match
        Principal.invoke t.alice session t.hospital ~privilege:"read_record"
          ~args:[ Value.Id (Principal.id t.alice); Value.Int 7 ]
      with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "exclusion not enforced at invocation")

let test_monitored_negation_deactivates () =
  (* A policy where the exclusion IS membership-monitored. The negation is
     only ground when the caller pins [u], which the lint gate (L003)
     conservatively rejects — turned off here to test that runtime path. *)
  let world = World.create ~seed:5 () in
  let svc =
    Service.create world ~name:"svc"
      ~config:{ Service.default_config with strict_install = false }
      ~policy:
        {|
          initial base <- env:eq(1, 1);
          sensitive(u) <- base, *env:!banned(u);
        |}
      ()
  in
  Env.declare_fact (Service.env svc) "banned";
  let p = Principal.create world ~name:"p" in
  let session =
    World.run_proc world (fun () ->
        let s = Principal.start_session p in
        ignore (ok (Principal.activate p s svc ~role:"base" ()));
        ignore
          (ok (Principal.activate p s svc ~role:"sensitive" ~args:[ Some (Value.Int 1) ] ()));
        s)
  in
  ignore session;
  Alcotest.(check int) "active" 2 (List.length (Service.active_roles svc));
  Env.assert_fact (Service.env svc) "banned" [ Value.Int 1 ];
  World.settle world;
  Alcotest.(check int) "sensitive deactivated" 1 (List.length (Service.active_roles svc))

let test_unmarked_prereq_still_collapses () =
  (* Sect. 4's session-tree semantics: prerequisite-role dependencies are
     monitored whether or not policy marks them with '*'. *)
  let world = World.create ~seed:19 () in
  let svc =
    Service.create world ~name:"svc"
      ~policy:{|
        initial root <- env:eq(1, 1);
        leaf <- root;
      |} ()
  in
  let p = Principal.create world ~name:"p" in
  let root_rmc =
    World.run_proc world (fun () ->
        let s = Principal.start_session p in
        let rmc = ok (Principal.activate p s svc ~role:"root" ()) in
        ignore (ok (Principal.activate p s svc ~role:"leaf" ()));
        rmc)
  in
  Alcotest.(check int) "both active" 2 (List.length (Service.active_roles svc));
  ignore (Service.revoke_certificate svc root_rmc.Oasis_cert.Rmc.id ~reason:"logout");
  World.settle world;
  Alcotest.(check int) "leaf collapsed without a star" 0 (List.length (Service.active_roles svc))

let test_logout_collapses_session () =
  let t = make () in
  let session = alice_treating t ~patient:7 in
  World.run_proc t.world (fun () -> Principal.logout t.alice session);
  World.settle t.world;
  let alice_roles =
    List.filter
      (fun (_, _, _, p) -> Oasis_util.Ident.equal p (Principal.id t.alice))
      (Service.active_roles t.hospital)
  in
  Alcotest.(check int) "all roles gone" 0 (List.length alice_roles)

let test_voluntary_deactivate_single_role () =
  let t = make () in
  let session = alice_treating t ~patient:7 in
  let doctor_rmc =
    List.find (fun (r : Rmc.t) -> r.role = "doctor") (Principal.session_rmcs session)
  in
  let okd = World.run_proc t.world (fun () -> Principal.deactivate t.alice session doctor_rmc) in
  Alcotest.(check bool) "deactivated" true okd;
  World.settle t.world;
  Alcotest.(check bool) "dependent treating gone" false (role_active t session "treating_doctor");
  Alcotest.(check bool) "logged_in remains" true (role_active t session "logged_in")

let test_deactivate_wrong_session_key_denied () =
  let t = make () in
  let session = alice_treating t ~patient:7 in
  let doctor_rmc =
    List.find (fun (r : Rmc.t) -> r.role = "doctor") (Principal.session_rmcs session)
  in
  (* Mallory tries to deactivate alice's role from her own session. *)
  let mallory = Principal.create t.world ~name:"mallory" in
  let okd =
    World.run_proc t.world (fun () ->
        let sm = Principal.start_session mallory in
        Principal.deactivate mallory sm doctor_rmc)
  in
  Alcotest.(check bool) "denied" false okd;
  Alcotest.(check bool) "role still active" true (role_active t session "doctor")

let test_expiring_appointment_collapses_roles () =
  (* An appointment with an expiry deadline: dependent roles collapse at the
     deadline without any explicit revocation. *)
  let t = make () in
  World.run_proc t.world (fun () ->
      let temp =
        ok
          (Principal.appoint t.admin t.admin_session t.hospital ~kind:"qualified"
             ~args:[ Value.Id (Principal.id t.admin) ]
             ~holder:t.admin ~expires_at:(World.now t.world +. 100.0) ())
      in
      ignore temp);
  World.settle t.world;
  (* Admin logs in (employee appt? admin has none) — use alice with a temp
     qualification instead: revoke her permanent one and grant a temporary. *)
  let t2 = make ~seed:11 () in
  ignore
    (Service.revoke_certificate t2.hospital t2.alice_qualification.Oasis_cert.Appointment.id
       ~reason:"superseded");
  World.settle t2.world;
  let expiry = World.now t2.world +. 50.0 in
  World.run_proc t2.world (fun () ->
      ignore
        (ok
           (Principal.appoint t2.admin t2.admin_session t2.hospital ~kind:"qualified"
              ~args:[ Value.Id (Principal.id t2.alice) ]
              ~holder:t2.alice ~expires_at:expiry ())));
  let session = alice_treating t2 ~patient:7 in
  Alcotest.(check bool) "doctor active before expiry" true (role_active t2 session "doctor");
  World.run_until t2.world (expiry +. 1.0);
  World.settle t2.world;
  Alcotest.(check bool) "doctor collapsed at expiry" false (role_active t2 session "doctor")

let test_time_constrained_membership () =
  (* A role whose membership rule includes before(t): deactivated when the
     clock passes t, with no fact change at all. *)
  let world = World.create ~seed:13 () in
  let svc =
    Service.create world ~name:"svc"
      ~policy:{|
        initial shift(until) <- *env:before(until);
      |} ()
  in
  let p = Principal.create world ~name:"p" in
  World.run_proc world (fun () ->
      let s = Principal.start_session p in
      ignore (ok (Principal.activate p s svc ~role:"shift" ~args:[ Some (Value.Time 100.0) ] ())));
  Alcotest.(check int) "active" 1 (List.length (Service.active_roles svc));
  World.run_until world 99.0;
  Alcotest.(check int) "still active before deadline" 1 (List.length (Service.active_roles svc));
  World.run_until world 101.0;
  World.settle world;
  Alcotest.(check int) "deactivated after deadline" 0 (List.length (Service.active_roles svc))

let test_stale_rmc_rejected_after_revocation () =
  (* The principal still *holds* the bytes of a revoked RMC; presenting it
     as a credential fails validation. *)
  let t = make () in
  let session = alice_treating t ~patient:7 in
  ignore
    (Service.revoke_certificate t.hospital t.alice_qualification.Oasis_cert.Appointment.id
       ~reason:"struck off");
  World.settle t.world;
  World.run_proc t.world (fun () ->
      match
        Principal.invoke t.alice session t.hospital ~privilege:"read_record"
          ~args:[ Value.Id (Principal.id t.alice); Value.Int 7 ]
      with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "revoked chain still usable")

let test_revoke_unknown_certificate () =
  let t = make () in
  Alcotest.(check bool) "false for unknown" false
    (Service.revoke_certificate t.hospital (Oasis_util.Ident.make "cert" 9999) ~reason:"x");
  (* Idempotence *)
  ignore
    (Service.revoke_certificate t.hospital t.alice_qualification.Oasis_cert.Appointment.id
       ~reason:"once");
  Alcotest.(check bool) "false for already revoked" false
    (Service.revoke_certificate t.hospital t.alice_qualification.Oasis_cert.Appointment.id
       ~reason:"twice")

let test_secret_rotation_invalidates_appointments () =
  let t = make () in
  Service.rotate_secret t.hospital;
  Alcotest.(check int) "epoch bumped" 1 (Service.current_epoch t.hospital);
  World.run_proc t.world (fun () ->
      let s = Principal.start_session t.alice in
      (* employee appointment is now from a stale epoch: login fails. *)
      match Principal.activate t.alice s t.hospital ~role:"logged_in" () with
      | Error Protocol.No_proof -> ()
      | _ -> Alcotest.fail "stale-epoch appointment accepted")

(* ---------------- Heartbeat monitoring mode (Fig. 5 caption) -------- *)

let test_heartbeat_mode_cascade () =
  let monitoring = World.Heartbeats { period = 1.0; deadline = 2.5 } in
  let t = make ~monitoring () in
  let session = alice_treating t ~patient:7 in
  Alcotest.(check bool) "doctor active" true (role_active t session "doctor");
  (* Revocation stops the qualification's beats; the doctor role dies within
     one deadline, and treating_doctor one deadline later. *)
  let revoked_at = World.now t.world in
  ignore
    (Service.revoke_certificate t.hospital t.alice_qualification.Oasis_cert.Appointment.id
       ~reason:"struck off");
  World.run_until t.world (revoked_at +. 10.0);
  Alcotest.(check bool) "doctor collapsed via missed beats" false
    (role_active t session "doctor");
  Alcotest.(check bool) "treating collapsed transitively" false
    (role_active t session "treating_doctor");
  (* Staleness: collapse took at least one deadline, unlike change events. *)
  let st = Service.stats t.hospital in
  Alcotest.(check bool) "cascades recorded" true (st.Service.cascade_deactivations >= 2)

let test_heartbeat_mode_healthy_roles_survive () =
  let monitoring = World.Heartbeats { period = 1.0; deadline = 3.0 } in
  let t = make ~monitoring () in
  let session = alice_treating t ~patient:7 in
  World.run_until t.world (World.now t.world +. 30.0);
  Alcotest.(check bool) "doctor still active under beats" true (role_active t session "doctor");
  Alcotest.(check bool) "treating still active" true (role_active t session "treating_doctor")

let suite =
  ( "active-security",
    [
      Alcotest.test_case "appointment revocation cascades" `Quick
        test_appointment_revocation_cascades;
      Alcotest.test_case "env retraction cascades" `Quick test_env_retraction_cascades;
      Alcotest.test_case "assertion vs unmonitored negation" `Quick
        test_env_assertion_falsifies_negation;
      Alcotest.test_case "monitored negation" `Quick test_monitored_negation_deactivates;
      Alcotest.test_case "unmarked prereq collapses" `Quick test_unmarked_prereq_still_collapses;
      Alcotest.test_case "logout collapses session" `Quick test_logout_collapses_session;
      Alcotest.test_case "voluntary deactivation" `Quick test_voluntary_deactivate_single_role;
      Alcotest.test_case "deactivate wrong key" `Quick test_deactivate_wrong_session_key_denied;
      Alcotest.test_case "expiring appointment" `Quick test_expiring_appointment_collapses_roles;
      Alcotest.test_case "time-constrained membership" `Quick test_time_constrained_membership;
      Alcotest.test_case "stale RMC rejected" `Quick test_stale_rmc_rejected_after_revocation;
      Alcotest.test_case "revoke unknown/again" `Quick test_revoke_unknown_certificate;
      Alcotest.test_case "secret rotation" `Quick test_secret_rotation_invalidates_appointments;
      Alcotest.test_case "heartbeat cascade" `Quick test_heartbeat_mode_cascade;
      Alcotest.test_case "heartbeat healthy" `Quick test_heartbeat_mode_healthy_roles_survive;
    ] )
