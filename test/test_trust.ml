(* Audit certificates, registrars, histories and risk assessment (Sect. 6). *)

module Audit = Oasis_trust.Audit
module Registrar = Oasis_trust.Registrar
module History = Oasis_trust.History
module Assess = Oasis_trust.Assess
module Simulation = Oasis_trust.Simulation
module Dlog = Oasis_trust.Decision_log
module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Rng = Oasis_util.Rng

let client = Ident.make "client" 1
let server = Ident.make "server" 1

let registrar () = Registrar.create (Rng.create 3) ~name:"main" ()
let rogue () = Registrar.create (Rng.create 4) ~name:"rogue" ~honest:false ()

let record ?(at = 1.0) ?(client_outcome = Audit.Fulfilled) ?(server_outcome = Audit.Fulfilled) reg =
  Registrar.record_interaction reg ~client ~server ~at ~client_outcome ~server_outcome

(* ---------------- Audit certificates ---------------- *)

let test_audit_validate () =
  let reg = registrar () in
  let cert = record reg in
  Alcotest.(check bool) "validates" true (Registrar.validate reg cert);
  Alcotest.(check int) "validation counted" 1 (Registrar.validations reg);
  Alcotest.(check int) "issued counted" 1 (Registrar.issued_count reg)

let test_audit_tamper () =
  let reg = registrar () in
  let cert = record reg ~server_outcome:Audit.Breached in
  (* The server would love to flip its outcome. *)
  let laundered = Audit.with_server_outcome cert Audit.Fulfilled in
  Alcotest.(check bool) "tampered rejected" false (Registrar.validate reg laundered)

let test_audit_wrong_registrar () =
  let reg = registrar () in
  let other = Registrar.create (Rng.create 9) ~name:"other" () in
  let cert = record reg in
  Alcotest.(check bool) "unknown issuer rejected" false (Registrar.validate other cert)

let test_audit_outcome_for () =
  let reg = registrar () in
  let cert = record reg ~client_outcome:Audit.Breached ~server_outcome:Audit.Fulfilled in
  Alcotest.(check bool) "client side" true (Audit.outcome_for cert client = Some Audit.Breached);
  Alcotest.(check bool) "server side" true (Audit.outcome_for cert server = Some Audit.Fulfilled);
  Alcotest.(check bool) "stranger" true (Audit.outcome_for cert (Ident.make "x" 9) = None);
  Alcotest.(check bool) "involves" true (Audit.involves cert client && Audit.involves cert server)

let test_rogue_fabricate_and_repudiate () =
  let reg = registrar () in
  Alcotest.(check bool) "honest cannot fabricate" true
    (match Registrar.fabricate reg ~client ~server ~at:1.0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let r = rogue () in
  let fake = Registrar.fabricate r ~client ~server ~at:1.0 in
  Alcotest.(check bool) "fabrication validates at rogue" true (Registrar.validate r fake);
  let genuine = record r in
  Registrar.repudiate r genuine.Audit.id;
  Alcotest.(check bool) "repudiated no longer validates" false (Registrar.validate r genuine)

(* ---------------- Histories ---------------- *)

let test_history () =
  let reg = registrar () in
  let h = History.create server in
  Alcotest.(check bool) "filed" true (History.add h (record reg));
  let dup = record reg ~server_outcome:Audit.Breached in
  Alcotest.(check bool) "filed" true (History.add h dup);
  Alcotest.(check bool) "re-filing is a no-op" false (History.add h dup);
  (* A certificate not involving the owner is ignored. *)
  Alcotest.(check bool) "not involving owner ignored" false
    (History.add h
       (Registrar.record_interaction reg ~client ~server:(Ident.make "other" 1) ~at:2.0
          ~client_outcome:Audit.Fulfilled ~server_outcome:Audit.Fulfilled));
  Alcotest.(check int) "size" 2 (History.size h);
  Alcotest.(check int) "favourable filters breaches" 1
    (List.length (History.present_favourable h))

(* ---------------- Assessment ---------------- *)

let test_assess_no_evidence () =
  let a = Assess.create () in
  let verdict = Assess.assess a ~validate:(fun _ -> true) ~subject:server ~presented:[] in
  Alcotest.(check (float 1e-9)) "prior" 0.5 verdict.Assess.score;
  Alcotest.(check bool) "threshold 0.5 proceeds on prior" true verdict.Assess.proceed

let test_assess_scores () =
  let reg = registrar () in
  let a = Assess.create ~threshold:0.6 () in
  let good = List.init 8 (fun _ -> record reg) in
  let verdict =
    Assess.assess a ~validate:(Registrar.validate reg) ~subject:server ~presented:good
  in
  Alcotest.(check bool) "good history scores high" true (verdict.Assess.score > 0.8);
  Alcotest.(check bool) "proceeds" true verdict.Assess.proceed;
  let bad = List.init 8 (fun _ -> record reg ~server_outcome:Audit.Breached) in
  let verdict2 =
    Assess.assess a ~validate:(Registrar.validate reg) ~subject:server ~presented:bad
  in
  Alcotest.(check bool) "bad history scores low" true (verdict2.Assess.score < 0.2);
  Alcotest.(check bool) "refuses" false verdict2.Assess.proceed

let test_assess_rejects_invalid () =
  let reg = registrar () in
  let a = Assess.create () in
  let cert = record reg in
  let forged = Audit.with_server_outcome (record reg ~server_outcome:Audit.Breached) Audit.Fulfilled in
  let verdict =
    Assess.assess a ~validate:(Registrar.validate reg) ~subject:server
      ~presented:[ cert; forged ]
  in
  Alcotest.(check int) "forged rejected" 1 verdict.Assess.rejected;
  Alcotest.(check int) "one piece of evidence" 1 (List.length verdict.Assess.evidence)

let test_feedback_discounts_vouchers () =
  let r = rogue () in
  (* Threshold above the 0.5 prior: discounted testimony converges to the
     prior, so heavily-discounted fakes stop clearing the bar. *)
  let a = Assess.create ~threshold:0.6 () in
  let fakes = List.init 6 (fun _ -> Registrar.fabricate r ~client ~server ~at:1.0) in
  let verdict = Assess.assess a ~validate:(Registrar.validate r) ~subject:server ~presented:fakes in
  Alcotest.(check bool) "initially fooled" true verdict.Assess.proceed;
  (* The server breaches; the rogue registrar's weight collapses. *)
  Assess.feedback a verdict ~actual:Audit.Breached;
  Alcotest.(check bool) "weight halved" true (Assess.registrar_weight a (Registrar.id r) <= 0.5);
  (* Iterate: the same fakes soon stop clearing the threshold. *)
  let rec hammer n =
    if n = 0 then ()
    else begin
      let v = Assess.assess a ~validate:(Registrar.validate r) ~subject:server ~presented:fakes in
      if v.Assess.proceed then begin
        Assess.feedback a v ~actual:Audit.Breached;
        hammer (n - 1)
      end
    end
  in
  hammer 20;
  let final = Assess.assess a ~validate:(Registrar.validate r) ~subject:server ~presented:fakes in
  Alcotest.(check bool) "eventually refuses" false final.Assess.proceed

let test_feedback_disabled () =
  let r = rogue () in
  let a = Assess.create ~discounting:false () in
  let fakes = List.init 6 (fun _ -> Registrar.fabricate r ~client ~server ~at:1.0) in
  let verdict = Assess.assess a ~validate:(Registrar.validate r) ~subject:server ~presented:fakes in
  Assess.feedback a verdict ~actual:Audit.Breached;
  Alcotest.(check (float 1e-9)) "weight unchanged" 1.0 (Assess.registrar_weight a (Registrar.id r))

let test_assess_invalid_threshold () =
  Alcotest.(check bool) "raises" true
    (match Assess.create ~threshold:1.5 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------- Population simulation ---------------- *)

let test_simulation_deterministic () =
  let params = { Simulation.default_params with rounds = 10; servers = 20; clients = 20 } in
  let r1 = Simulation.run params and r2 = Simulation.run params in
  Alcotest.(check (float 1e-12)) "same final accuracy" r1.Simulation.final_accuracy
    r2.Simulation.final_accuracy;
  Alcotest.(check int) "rounds recorded" 10 (List.length r1.Simulation.per_round)

let test_simulation_honest_population () =
  let params =
    { Simulation.default_params with byzantine_fraction = 0.0; rounds = 10 }
  in
  let r = Simulation.run params in
  Alcotest.(check bool)
    (Printf.sprintf "all accepts correct (%.2f)" r.Simulation.final_accuracy)
    true (r.Simulation.final_accuracy > 0.95)

let test_simulation_detects_byzantine () =
  let params =
    { Simulation.default_params with byzantine_fraction = 0.3; rounds = 40 }
  in
  let r = Simulation.run params in
  let first = List.hd r.Simulation.per_round in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy improves (%.2f -> %.2f)" first.Simulation.accuracy
       r.Simulation.final_accuracy)
    true
    (r.Simulation.final_accuracy > 0.8 && r.Simulation.final_accuracy > first.Simulation.accuracy)

let test_simulation_collusion_needs_discounting () =
  let base =
    {
      Simulation.default_params with
      byzantine_fraction = 0.0;
      colluder_fraction = 0.25;
      colluder_padding = 3;
      rounds = 40;
    }
  in
  let with_disc = Simulation.run { base with discounting = true } in
  let without = Simulation.run { base with discounting = false } in
  Alcotest.(check bool)
    (Printf.sprintf "discounting beats none (%.2f vs %.2f)" with_disc.Simulation.final_accuracy
       without.Simulation.final_accuracy)
    true
    (with_disc.Simulation.final_accuracy > without.Simulation.final_accuracy);
  (* And the rogue registrar's reputation visibly collapses. *)
  let last = List.nth with_disc.Simulation.per_round 39 in
  Alcotest.(check bool)
    (Printf.sprintf "rogue weight fell (%.3f)" last.Simulation.mean_rogue_weight)
    true (last.Simulation.mean_rogue_weight < 0.5)

let test_simulation_validates_params () =
  Alcotest.(check bool) "small population raises" true
    (match Simulation.run { Simulation.default_params with servers = 1 } with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "fractions over 1 raise" true
    (match
       Simulation.run
         { Simulation.default_params with byzantine_fraction = 0.8; colluder_fraction = 0.8 }
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------- deduplication (wallets and assessment) ---------------- *)

(* Re-presenting one favourable certificate ten times must not count it ten
   times — neither in the wallet nor in the assessment. *)
let test_dedup_tenfold () =
  let reg = registrar () in
  let cert = record reg in
  let wallet = History.create client in
  for _ = 1 to 10 do
    ignore (History.add wallet cert : bool)
  done;
  Alcotest.(check int) "wallet keeps one" 1 (History.size wallet);
  let assessor = Assess.create () in
  let validate = Registrar.validate reg in
  let once = Assess.assess assessor ~validate ~subject:client ~presented:[ cert ] in
  let padded =
    Assess.assess assessor ~validate ~subject:client
      ~presented:(List.init 10 (fun _ -> cert))
  in
  Alcotest.(check int) "one piece of evidence" 1 (List.length padded.Assess.evidence);
  Alcotest.(check int) "nine duplicates rejected" 9 padded.Assess.rejected_duplicate;
  Alcotest.(check (float 1e-9)) "score as if presented once" once.Assess.score padded.Assess.score

let test_rejection_causes_split () =
  let reg = registrar () in
  let about_me = record reg in
  let stranger_cert =
    Registrar.record_interaction reg ~client:(Ident.make "x" 7) ~server ~at:2.0
      ~client_outcome:Audit.Fulfilled ~server_outcome:Audit.Fulfilled
  in
  let forged = Audit.with_server_outcome (record reg ~at:3.0) Audit.Breached in
  let v =
    Assess.assess (Assess.create ()) ~validate:(Registrar.validate reg) ~subject:client
      ~presented:[ about_me; about_me; stranger_cert; forged ]
  in
  Alcotest.(check int) "duplicate" 1 v.Assess.rejected_duplicate;
  Alcotest.(check int) "not about subject" 1 v.Assess.rejected_not_about_subject;
  Alcotest.(check int) "validation failed" 1 v.Assess.rejected_validation_failed;
  Alcotest.(check int) "total is the sum" 3 v.Assess.rejected

(* ---------------- decision log ---------------- *)

let sample_log n =
  let log = Dlog.create ~service:(Ident.make "svc" 1) in
  for i = 0 to n - 1 do
    ignore
      (Dlog.append log ~at:(float_of_int i)
         ~decision:(if i mod 3 = 0 then Dlog.Deny else Dlog.Grant)
         ~principal:client
         ~action:(Printf.sprintf "invoke:op%d" i)
         ~args:[ Value.Int i; Value.Str "x" ]
         ~rule:"priv op(u) <- r(u) ;"
         ~creds:[ Ident.make "cert" i ]
         ~env_facts:[ "f(u)" ] ())
  done;
  log

let test_decision_log_roundtrip () =
  let log = sample_log 20 in
  Alcotest.(check bool) "verifies" true (Dlog.verify log = Ok 20);
  let exported = Dlog.export log in
  Alcotest.(check bool) "export verifies" true (Dlog.verify_string exported = Ok 20);
  (match Dlog.find log ~seq:7 with
  | Some r ->
      Alcotest.(check string) "action survives" "invoke:op7" r.Dlog.action;
      Alcotest.(check string) "rule survives" "priv op(u) <- r(u) ;" r.Dlog.rule
  | None -> Alcotest.fail "seq 7 missing");
  Alcotest.(check bool) "empty log verifies" true
    (Dlog.verify (Dlog.create ~service:(Ident.make "svc" 2)) = Ok 0)

(* ---------------- time-decayed assessment (DESIGN.md §16) ---------------- *)

let test_decay_moves_to_prior () =
  let reg = registrar () in
  let a = Assess.create ~decay_rate:0.1 () in
  let history = List.init 6 (fun i -> record reg ~at:(float_of_int i)) in
  let score now =
    (Assess.assess_at a ~now ~validate:(Registrar.validate reg) ~subject:client
       ~presented:history)
      .Assess.score
  in
  let fresh = score 6.0 and aged = score 60.0 and ancient = score 600.0 in
  Alcotest.(check bool) "fresh history scores high" true (fresh > 0.7);
  Alcotest.(check bool) "aged history decays toward the prior" true (aged < fresh && aged > 0.5);
  Alcotest.(check (float 1e-6)) "ancient history is the prior" 0.5 ancient;
  (* decay_rate 0 restores the timeless behaviour *)
  let b = Assess.create () in
  let score_b now =
    (Assess.assess_at b ~now ~validate:(Registrar.validate reg) ~subject:client
       ~presented:history)
      .Assess.score
  in
  Alcotest.(check (float 1e-9)) "no decay: age is irrelevant" (score_b 6.0) (score_b 600.0)

(* The running per-subject aggregate must agree with a full recompute of
   the wallet, through observes and decay advances alike. *)
let test_cached_matches_full () =
  let reg = registrar () in
  let a = Assess.create ~decay_rate:0.05 () in
  let validate = Registrar.validate reg in
  let wallet = History.create client in
  List.iter
    (fun c -> ignore (History.add wallet c : bool))
    (List.init 10 (fun i ->
         record reg ~at:(float_of_int i)
           ~client_outcome:(if i mod 3 = 0 then Audit.Breached else Audit.Fulfilled)));
  let full =
    Assess.assess_at ~remember:true a ~now:10.0 ~validate ~subject:client
      ~presented:(History.present wallet)
  in
  (match Assess.cached_score a ~subject:client ~now:10.0 with
  | Some s -> Alcotest.(check (float 1e-9)) "cached = full at seed time" full.Assess.score s
  | None -> Alcotest.fail "no cached score after remember");
  let c2 = record reg ~at:12.0 in
  ignore (History.add wallet c2 : bool);
  Assess.observe a ~subject:client ~now:12.0 c2;
  let cached =
    match Assess.cached_score a ~subject:client ~now:25.0 with
    | Some s -> s
    | None -> Alcotest.fail "cache lost after observe"
  in
  let full2 =
    Assess.assess_at a ~now:25.0 ~validate ~subject:client ~presented:(History.present wallet)
  in
  Alcotest.(check (float 1e-9)) "cached tracks the full recompute" full2.Assess.score cached

(* ---------------- durable chain resume ---------------- *)

let test_resume_chain () =
  let owner = Ident.make "svc" 1 in
  let log = sample_log 12 in
  let blob = Buffer.create 512 in
  Buffer.add_string blob (Dlog.export_header log);
  List.iter (fun r -> Buffer.add_string blob (Dlog.export_line r)) (Dlog.records log);
  (match Dlog.resume ~service:owner (Buffer.contents blob) with
  | Error (seq, why) -> Alcotest.failf "resume failed at %d: %s" seq why
  | Ok resumed ->
      Alcotest.(check int) "length preserved" 12 (Dlog.length resumed);
      Alcotest.(check int) "prefix is opaque" 12 (Dlog.imported_count resumed);
      Alcotest.(check bool) "heads agree" true (Dlog.head resumed = Dlog.head log);
      Alcotest.(check bool) "resumed chain verifies" true (Dlog.verify resumed = Ok 12);
      (* Appends continue from the verified head, and the incremental
         export line brings the durable blob along. *)
      let r =
        Dlog.append resumed ~at:13.0 ~decision:Dlog.Grant ~principal:client
          ~action:"invoke:post-crash" ~args:[] ~rule:"r" ~creds:[] ~env_facts:[] ()
      in
      Buffer.add_string blob (Dlog.export_line r);
      Alcotest.(check bool) "extended chain verifies" true (Dlog.verify resumed = Ok 13);
      Alcotest.(check bool) "re-exported blob verifies" true
        (Dlog.verify_string (Buffer.contents blob) = Ok 13);
      Alcotest.(check bool) "second resume sees 13" true
        (match Dlog.resume ~service:owner (Buffer.contents blob) with
        | Ok again -> Dlog.length again = 13 && Dlog.head again = Dlog.head resumed
        | Error _ -> false));
  (* Fail closed: a chain naming some other service must not resume. *)
  Alcotest.(check bool) "wrong owner refused" true
    (Result.is_error (Dlog.resume ~service:(Ident.make "svc" 2) (Buffer.contents blob)))

(* ---------------- qcheck properties ---------------- *)

(* Aging the same evidence can only move a score toward the 0.5 prior —
   never past it, never away from it, never out of [0, 1]. *)
let test_prop_decay_monotone () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"decay shrinks |score - prior| monotonically"
       QCheck.(
         pair
           (pair (int_range 0 15) (int_range 0 15))
           (pair (int_range 0 100) (pair (int_range 0 200) (int_range 1 100))))
       (fun ((fulfilled, breached), (d1, (d2, r))) ->
         let reg = registrar () in
         let rate = 0.002 *. float_of_int r in
         let a = Assess.create ~decay_rate:rate () in
         let certs outcome n base =
           List.init n (fun i -> record reg ~at:(base +. float_of_int i) ~client_outcome:outcome)
         in
         let history = certs Audit.Fulfilled fulfilled 0.0 @ certs Audit.Breached breached 5.0 in
         let now1 = 20.0 +. float_of_int d1 in
         let now2 = now1 +. float_of_int d2 in
         let score now =
           (Assess.assess_at a ~now ~validate:(Registrar.validate reg) ~subject:client
              ~presented:history)
             .Assess.score
         in
         let s1 = score now1 and s2 = score now2 in
         let bounded s = s >= 0.0 && s <= 1.0 in
         bounded s1 && bounded s2
         && Float.abs (s2 -. 0.5) <= Float.abs (s1 -. 0.5) +. 1e-12
         && (s1 -. 0.5) *. (s2 -. 0.5) >= -1e-12))

(* One more fulfilled interaction never lowers the subject's score. *)
let test_prop_score_monotone () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"extra fulfilment never lowers the score"
       QCheck.(pair (int_range 0 20) (int_range 0 20))
       (fun (fulfilled, breached) ->
         let reg = registrar () in
         let certs outcome n base =
           List.init n (fun i ->
               record reg ~at:(base +. float_of_int i) ~client_outcome:outcome)
         in
         let history =
           certs Audit.Fulfilled fulfilled 0.0 @ certs Audit.Breached breached 100.0
         in
         let score presented =
           (Assess.assess (Assess.create ()) ~validate:(Registrar.validate reg)
              ~subject:client ~presented)
             .Assess.score
         in
         let base = score history in
         let more = score (record reg ~at:200.0 :: history) in
         more >= base -. 1e-12))

(* Presenting a history twice over changes nothing: dedup is idempotent. *)
let test_prop_dedup_idempotent () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"assessment ignores re-presented certificates"
       QCheck.(list_of_size (Gen.int_range 0 15) bool)
       (fun outcomes ->
         let reg = registrar () in
         let history =
           List.mapi
             (fun i good ->
               record reg ~at:(float_of_int i)
                 ~client_outcome:(if good then Audit.Fulfilled else Audit.Breached))
             outcomes
         in
         let verdict presented =
           Assess.assess (Assess.create ()) ~validate:(Registrar.validate reg)
             ~subject:client ~presented
         in
         let once = verdict history and twice = verdict (history @ history) in
         Float.abs (once.Assess.score -. twice.Assess.score) < 1e-12
         && List.length once.Assess.evidence = List.length twice.Assess.evidence
         && twice.Assess.rejected_duplicate = List.length history))

(* Whatever feedback arrives, a registrar's credibility stays clamped. *)
let test_prop_weight_clamped () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"registrar weight stays within [0.01, 1.0]"
       QCheck.(list_of_size (Gen.int_range 0 40) bool)
       (fun actuals ->
         let reg = registrar () in
         let assessor = Assess.create () in
         let history = [ record reg; record reg ~at:2.0 ] in
         List.for_all
           (fun breached ->
             let v =
               Assess.assess assessor ~validate:(Registrar.validate reg) ~subject:client
                 ~presented:history
             in
             Assess.feedback assessor v
               ~actual:(if breached then Audit.Breached else Audit.Fulfilled);
             let w = Assess.registrar_weight assessor (Registrar.id reg) in
             w >= 0.01 -. 1e-12 && w <= 1.0 +. 1e-12)
           actuals))

(* Flip any one byte of an exported chain and verification must fail. *)
let test_prop_chain_tamper_detected () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"one flipped byte breaks chain verification"
       QCheck.(pair (int_range 1 12) (int_range 0 1_000_000))
       (fun (n, byte) ->
         let exported = Dlog.export (sample_log n) in
         Dlog.verify_string exported = Ok n
         && Result.is_error (Dlog.verify_string (Dlog.tamper exported ~byte))))

let suite =
  ( "trust",
    [
      Alcotest.test_case "audit validate" `Quick test_audit_validate;
      Alcotest.test_case "audit tamper" `Quick test_audit_tamper;
      Alcotest.test_case "audit wrong registrar" `Quick test_audit_wrong_registrar;
      Alcotest.test_case "audit outcome_for" `Quick test_audit_outcome_for;
      Alcotest.test_case "rogue fabricate/repudiate" `Quick test_rogue_fabricate_and_repudiate;
      Alcotest.test_case "history" `Quick test_history;
      Alcotest.test_case "assess prior" `Quick test_assess_no_evidence;
      Alcotest.test_case "assess scores" `Quick test_assess_scores;
      Alcotest.test_case "assess rejects invalid" `Quick test_assess_rejects_invalid;
      Alcotest.test_case "feedback discounts" `Quick test_feedback_discounts_vouchers;
      Alcotest.test_case "feedback disabled" `Quick test_feedback_disabled;
      Alcotest.test_case "invalid threshold" `Quick test_assess_invalid_threshold;
      Alcotest.test_case "simulation deterministic" `Quick test_simulation_deterministic;
      Alcotest.test_case "honest population" `Quick test_simulation_honest_population;
      Alcotest.test_case "byzantine detection" `Slow test_simulation_detects_byzantine;
      Alcotest.test_case "collusion vs discounting" `Slow test_simulation_collusion_needs_discounting;
      Alcotest.test_case "parameter validation" `Quick test_simulation_validates_params;
      Alcotest.test_case "tenfold re-presentation" `Quick test_dedup_tenfold;
      Alcotest.test_case "rejection causes split" `Quick test_rejection_causes_split;
      Alcotest.test_case "decision log roundtrip" `Quick test_decision_log_roundtrip;
      Alcotest.test_case "decay moves to prior" `Quick test_decay_moves_to_prior;
      Alcotest.test_case "cached aggregate = full recompute" `Quick test_cached_matches_full;
      Alcotest.test_case "durable chain resume" `Quick test_resume_chain;
      Alcotest.test_case "decay monotone (qcheck)" `Quick test_prop_decay_monotone;
      Alcotest.test_case "score monotone (qcheck)" `Quick test_prop_score_monotone;
      Alcotest.test_case "dedup idempotent (qcheck)" `Quick test_prop_dedup_idempotent;
      Alcotest.test_case "weight clamped (qcheck)" `Quick test_prop_weight_clamped;
      Alcotest.test_case "chain tamper detected (qcheck)" `Quick test_prop_chain_tamper_detected;
    ] )
