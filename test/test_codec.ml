(* Certificate marshalling: round trips and adversarial bytes. *)

module Codec = Oasis_cert.Codec
module Rmc = Oasis_cert.Rmc
module Appointment = Oasis_cert.Appointment
module Secret = Oasis_crypto.Secret
module Sha256 = Oasis_crypto.Sha256
module Ident = Oasis_util.Ident
module Value = Oasis_util.Value

let secret = Secret.of_string "codec-secret-0123456789abcdef012"

(* qcheck generators for certificate contents *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) small_signed_int;
        map (fun s -> Value.Str s) (string_size (int_bound 20));
        map (fun b -> Value.Bool b) bool;
        map (fun f -> Value.Time (float_of_int f /. 8.0)) (int_bound 10_000);
        map2 (fun t n -> Value.Id (Ident.make ("t" ^ string_of_int t) n)) (int_bound 5) (int_bound 1000);
      ])

let rmc_gen =
  QCheck.Gen.(
    map
      (fun (idn, issn, role, args, t, key) ->
        Rmc.issue ~secret ~principal_key:key ~id:(Ident.make "cert" idn)
          ~issuer:(Ident.make "service" issn) ~role ~args
          ~issued_at:(float_of_int t /. 4.0))
      (tup6 (int_bound 10_000) (int_bound 100) (string_size ~gen:(char_range 'a' 'z') (int_range 1 15))
         (list_size (int_bound 6) value_gen)
         (int_bound 100_000) (string_size (int_bound 40))))

let appt_gen =
  QCheck.Gen.(
    map
      (fun (idn, kind, args, holder, epoch, expiry) ->
        Appointment.issue ~master_secret:secret ~epoch ~id:(Ident.make "cert" idn)
          ~issuer:(Ident.make "service" 7) ~kind ~args ~holder ~issued_at:1.0
          ?expires_at:(if expiry = 0 then None else Some (float_of_int expiry))
          ())
      (tup6 (int_bound 10_000) (string_size ~gen:(char_range 'a' 'z') (int_range 1 15))
         (list_size (int_bound 6) value_gen)
         (string_size (int_bound 30))
         (int_bound 5) (int_bound 1000)))

let rmc_equal (a : Rmc.t) (b : Rmc.t) =
  Ident.equal a.id b.id && Ident.equal a.issuer b.issuer && String.equal a.role b.role
  && List.length a.args = List.length b.args
  && List.for_all2 Value.equal a.args b.args
  && Float.equal a.issued_at b.issued_at
  && Sha256.equal a.signature b.signature

let appt_equal (a : Appointment.t) (b : Appointment.t) =
  Ident.equal a.id b.id && Ident.equal a.issuer b.issuer && String.equal a.kind b.kind
  && List.for_all2 Value.equal a.args b.args
  && String.equal a.holder b.holder
  && Float.equal a.issued_at b.issued_at
  && a.expires_at = b.expires_at && a.epoch = b.epoch
  && Sha256.equal a.signature b.signature

let test_rmc_roundtrip () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"rmc roundtrip" (QCheck.make rmc_gen) (fun rmc ->
         match Codec.rmc_of_string (Codec.rmc_to_string rmc) with
         | Ok decoded -> rmc_equal rmc decoded
         | Error _ -> false))

let test_appt_roundtrip () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"appt roundtrip" (QCheck.make appt_gen) (fun appt ->
         match Codec.appointment_of_string (Codec.appointment_to_string appt) with
         | Ok decoded -> appt_equal appt decoded
         | Error _ -> false))

let test_roundtrip_preserves_verification () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"decoded rmc verifies" (QCheck.make rmc_gen) (fun rmc ->
         (* Verification must not depend on in-memory provenance. *)
         match Codec.rmc_of_string (Codec.rmc_to_string rmc) with
         | Ok decoded ->
             Rmc.verify ~secret ~principal_key:"k" decoded
             = Rmc.verify ~secret ~principal_key:"k" rmc
         | Error _ -> false))

let test_decoder_total_on_truncation () =
  let sample =
    Codec.rmc_to_string
      (Rmc.issue ~secret ~principal_key:"k" ~id:(Ident.make "cert" 1)
         ~issuer:(Ident.make "service" 1) ~role:"doctor"
         ~args:[ Value.Int 1; Value.Str "x" ]
         ~issued_at:3.0)
  in
  for len = 0 to String.length sample - 1 do
    match Codec.rmc_of_string (String.sub sample 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d decoded" len
    | Error _ -> ()
  done

let test_decoder_total_on_mutation () =
  (* Byte flips either decode to different fields or error — never raise.
     (Signature bytes may flip without breaking framing; verification is
     what catches that, not the decoder.) *)
  let sample =
    Codec.appointment_to_string
      (Appointment.issue ~master_secret:secret ~epoch:1 ~id:(Ident.make "cert" 2)
         ~issuer:(Ident.make "service" 1) ~kind:"member"
         ~args:[ Value.Bool true ]
         ~holder:"h" ~issued_at:0.0 ~expires_at:9.0 ())
  in
  for i = 0 to String.length sample - 1 do
    let mutated = Bytes.of_string sample in
    Bytes.set mutated i (Char.chr ((Char.code sample.[i] + 1) land 0xff));
    ignore (Codec.appointment_of_string (Bytes.to_string mutated))
  done

let test_decoder_random_garbage () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"garbage never raises"
       QCheck.(string_of_size Gen.(int_bound 300))
       (fun s ->
         (match Codec.rmc_of_string s with Ok _ | Error _ -> ());
         (match Codec.appointment_of_string s with Ok _ | Error _ -> ());
         true))

let test_kind_confusion_rejected () =
  (* An appointment's bytes must not decode as an RMC. *)
  let appt_bytes =
    Codec.appointment_to_string
      (Appointment.issue ~master_secret:secret ~epoch:0 ~id:(Ident.make "cert" 3)
         ~issuer:(Ident.make "service" 1) ~kind:"member" ~args:[] ~holder:"h" ~issued_at:0.0 ())
  in
  (match Codec.rmc_of_string appt_bytes with
  | Ok _ -> Alcotest.fail "kind confusion"
  | Error _ -> ());
  let rmc_bytes =
    Codec.rmc_to_string
      (Rmc.issue ~secret ~principal_key:"k" ~id:(Ident.make "cert" 4)
         ~issuer:(Ident.make "service" 1) ~role:"r" ~args:[] ~issued_at:0.0)
  in
  match Codec.appointment_of_string rmc_bytes with
  | Ok _ -> Alcotest.fail "kind confusion"
  | Error _ -> ()

let test_trailing_bytes_rejected () =
  let sample =
    Codec.rmc_to_string
      (Rmc.issue ~secret ~principal_key:"k" ~id:(Ident.make "cert" 5)
         ~issuer:(Ident.make "service" 1) ~role:"r" ~args:[] ~issued_at:0.0)
  in
  match Codec.rmc_of_string (sample ^ "extra") with
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error _ -> ()

let test_size_matches_encoding () =
  let rmc =
    Rmc.issue ~secret ~principal_key:"k" ~id:(Ident.make "cert" 6)
      ~issuer:(Ident.make "service" 1) ~role:"doctor"
      ~args:[ Value.Int 1 ]
      ~issued_at:0.0
  in
  (* size_bytes = fields + 32-byte signature; the codec encodes the signature
     as a string field (a few bytes of framing). They must agree closely. *)
  let encoded = String.length (Codec.rmc_to_string rmc) in
  let claimed = Rmc.size_bytes rmc in
  Alcotest.(check bool)
    (Printf.sprintf "within framing slack (%d vs %d)" encoded claimed)
    true
    (abs (encoded - claimed) < 16)

(* ---------------- Canonical-encoding regressions ---------------- *)

(* Replace the unique occurrence of [before] in [s]; the tests below rewrite
   specific TLV frames, so a missing or ambiguous pattern is a test bug. *)
let rewrite s ~before ~after =
  let n = String.length s and m = String.length before in
  let rec find i =
    if i + m > n then Alcotest.failf "pattern %S not found" before
    else if String.equal (String.sub s i m) before then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ after ^ String.sub s (i + m) (n - i - m)

let sample_rmc ?(args = [ Value.Int 1 ]) () =
  Rmc.issue ~secret ~principal_key:"k" ~id:(Ident.make "cert" 11)
    ~issuer:(Ident.make "service" 1) ~role:"doctor" ~args ~issued_at:3.0

let test_noncanonical_lengths_rejected () =
  (* The strict decimal length rule: anything [int_of_string_opt] would also
     admit re-frames the same certificate bytes and must be refused. *)
  let sample = Codec.rmc_to_string (sample_rmc ()) in
  List.iter
    (fun (before, after) ->
      match Codec.rmc_of_string (rewrite sample ~before ~after) with
      | Ok _ -> Alcotest.failf "non-canonical length %S decoded" after
      | Error _ -> ())
    [
      ("T3:rmc", "T0x3:rmc"); (* hex *)
      ("T3:rmc", "T+3:rmc"); (* explicit sign *)
      ("T3:rmc", "T03:rmc"); (* leading zero *)
      ("S32:", "S3_2:"); (* underscore separator, signature field *)
      ("S32:", "S032:"); (* leading zero, two digits *)
    ]

let test_nan_timestamp_rejected () =
  (* A NaN expiry used to decode as "never expires"; now any NaN timestamp
     byte pattern is refused outright. *)
  let appt expires_at =
    Appointment.issue ~master_secret:secret ~epoch:1 ~id:(Ident.make "cert" 12)
      ~issuer:(Ident.make "service" 1) ~kind:"member" ~args:[] ~holder:"h" ~issued_at:1.0
      ~expires_at ()
  in
  let sample = Codec.appointment_to_string (appt 9.0) in
  (match Codec.appointment_of_string (rewrite sample ~before:"F8:0x1.2p+3" ~after:"F3:nan") with
  | Ok _ -> Alcotest.fail "NaN expiry decoded"
  | Error _ -> ());
  (* The encoder itself can be handed NaN; its output must not decode. *)
  (match Codec.appointment_of_string (Codec.appointment_to_string (appt Float.nan)) with
  | Ok _ -> Alcotest.fail "encoded NaN expiry decoded"
  | Error _ -> ());
  (* Non-canonical spellings of real floats are also refused... *)
  (match Codec.appointment_of_string (rewrite sample ~before:"F8:0x1.2p+3" ~after:"F4:-inf") with
  | Ok _ -> Alcotest.fail "non-canonical -inf decoded"
  | Error _ -> ());
  (* ...but the canonical ones keep their meaning: +infinity is "never
     expires", -infinity is "expired since forever", not None. *)
  (match Codec.appointment_of_string (rewrite sample ~before:"F8:0x1.2p+3" ~after:"F8:infinity") with
  | Ok a -> Alcotest.(check bool) "+infinity is None" true (a.Appointment.expires_at = None)
  | Error e -> Alcotest.failf "+infinity refused: %s" (Format.asprintf "%a" Codec.pp_error e));
  match Codec.appointment_of_string (rewrite sample ~before:"F8:0x1.2p+3" ~after:"F9:-infinity") with
  | Ok a ->
      Alcotest.(check bool) "-infinity stays Some" true
        (a.Appointment.expires_at = Some Float.neg_infinity)
  | Error e -> Alcotest.failf "-infinity refused: %s" (Format.asprintf "%a" Codec.pp_error e)

let test_special_floats_roundtrip () =
  (* Every special but representable timestamp survives the round trip. *)
  List.iter
    (fun f ->
      let appt =
        Appointment.issue ~master_secret:secret ~epoch:0 ~id:(Ident.make "cert" 13)
          ~issuer:(Ident.make "service" 1) ~kind:"member" ~args:[ Value.Time f ] ~holder:"h"
          ~issued_at:f ~expires_at:f ()
      in
      match Codec.appointment_of_string (Codec.appointment_to_string appt) with
      | Ok decoded -> Alcotest.(check bool) (Printf.sprintf "roundtrip %h" f) true (appt_equal appt decoded)
      | Error e ->
          Alcotest.failf "special float %h refused: %s" f (Format.asprintf "%a" Codec.pp_error e))
    [
      0.0;
      -0.0;
      Float.min_float;
      Float.max_float;
      4.9e-324 (* subnormal *);
      -1.5e308;
      Float.neg_infinity;
    ]

let test_malformed_bool_rejected () =
  (* A bool body other than "0"/"1" used to decode as false; now only the
     two canonical bodies are values at all. *)
  let sample = Codec.rmc_to_string (sample_rmc ~args:[ Value.Bool true ] ()) in
  List.iter
    (fun (before, after) ->
      match Codec.rmc_of_string (rewrite sample ~before ~after) with
      | Ok _ -> Alcotest.failf "bool body %S decoded" after
      | Error _ -> ())
    [ ("b1:1", "b1:2"); ("b1:1", "b4:true"); ("b1:1", "b0:") ];
  match Codec.rmc_of_string (rewrite sample ~before:"b1:1" ~after:"b1:0") with
  | Ok decoded -> Alcotest.(check bool) "b1:0 is false" true (decoded.Rmc.args = [ Value.Bool false ])
  | Error _ -> Alcotest.fail "canonical false refused"

let test_decode_is_canonical () =
  (* decode ∘ encode is the identity on bytes: anything that decodes at all
     re-encodes byte-identically, so each certificate has exactly one wire
     form and a signature over it covers every decodable presentation. *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:300 ~name:"unique wire form"
       QCheck.(pair (make rmc_gen) (pair small_nat (int_range 0 255)))
       (fun (rmc, (at, replacement)) ->
         let bytes = Codec.rmc_to_string rmc in
         (match Codec.rmc_of_string bytes with
         | Ok decoded -> assert (String.equal (Codec.rmc_to_string decoded) bytes)
         | Error _ -> assert false);
         let mutated = Bytes.of_string bytes in
         Bytes.set mutated (at mod Bytes.length mutated) (Char.chr replacement);
         let mutated = Bytes.to_string mutated in
         match Codec.rmc_of_string mutated with
         | Ok decoded -> String.equal (Codec.rmc_to_string decoded) mutated
         | Error _ -> true))

let suite =
  ( "codec",
    [
      Alcotest.test_case "rmc roundtrip (qcheck)" `Quick test_rmc_roundtrip;
      Alcotest.test_case "appt roundtrip (qcheck)" `Quick test_appt_roundtrip;
      Alcotest.test_case "verification invariant" `Quick test_roundtrip_preserves_verification;
      Alcotest.test_case "truncation totality" `Quick test_decoder_total_on_truncation;
      Alcotest.test_case "mutation totality" `Quick test_decoder_total_on_mutation;
      Alcotest.test_case "garbage totality (qcheck)" `Quick test_decoder_random_garbage;
      Alcotest.test_case "kind confusion" `Quick test_kind_confusion_rejected;
      Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes_rejected;
      Alcotest.test_case "size accounting" `Quick test_size_matches_encoding;
      Alcotest.test_case "non-canonical lengths" `Quick test_noncanonical_lengths_rejected;
      Alcotest.test_case "NaN timestamps" `Quick test_nan_timestamp_rejected;
      Alcotest.test_case "special floats roundtrip" `Quick test_special_floats_roundtrip;
      Alcotest.test_case "malformed bools" `Quick test_malformed_bool_rejected;
      Alcotest.test_case "unique wire form (qcheck)" `Quick test_decode_is_canonical;
    ] )
