(** Static analysis of a service's policy.

    The paper stresses that "the formal expression of policy and its
    automatic deployment" must keep policies consistent as they evolve
    (Sect. 1, ref [1]). This module answers the questions a policy author
    asks before deploying rules — without running anything:

    - which roles are {e reachable} by a principal holding given appointment
      kinds (abstracting over parameters and environmental constraints);
    - which roles are {e dead} (unreachable no matter what the principal
      holds);
    - whether the prerequisite-role graph is acyclic (a cycle among
      non-initial roles means none of them can ever be the first activated);
    - which privileges are grantable, and which are dead;
    - which referenced roles, services or appointment kinds are never
      defined anywhere (likely typos).

    The analysis is sound for reachability-as-possibility: environmental
    constraints are assumed satisfiable (they depend on runtime state), so
    "reachable" means "reachable for some environment". A role reported dead
    is dead in every environment. *)

type service_policy = {
  sp_name : string;  (** registered service name *)
  activations : Rule.activation list;
  authorizations : Rule.authorization list;  (** [priv] rules *)
  appointers : Rule.authorization list;  (** [appoint] rules *)
  appointment_kinds : string list;  (** kinds this service can issue *)
}

type world_policy = service_policy list

(** Where a role/kind reference points. *)
type unresolved =
  | Unknown_service of { at : string; rule : string; service : string }
  | Unknown_role of { at : string; rule : string; service : string; role : string }
  | Unknown_appointment of { at : string; rule : string; issuer : string; kind : string }

val pp_unresolved : Format.formatter -> unresolved -> unit

type report = {
  reachable_roles : (string * string) list;  (** (service, role), lexicographic *)
  dead_roles : (string * string) list;
      (** defined but unreachable even with every appointment kind in hand *)
  grantable_privileges : (string * string) list;
  dead_privileges : (string * string) list;
  prereq_cycles : (string * string) list list;
      (** strongly-connected components of size > 1 (or self-loops) in the
          prerequisite graph, each a list of (service, role) *)
  unresolved : unresolved list;
}

val analyse : ?held_appointments:(string * string) list -> world_policy -> report
(** [analyse ~held_appointments world] computes reachability for a principal
    holding the given [(issuer service, kind)] appointment certificates.
    Defaults to {e all} kinds every service can issue — the most permissive
    principal — which is what dead-role detection wants. *)

val of_statements :
  name:string -> ?appointment_kinds:string list -> Parser.statement list -> service_policy
(** Convenience builder from parsed policy text. *)

val pp_report : Format.formatter -> report -> unit
