(* Symbolic goal-reachability over the world's Horn rules (see reach.mli).

   The fixpoint is a classic monotone least-fixpoint over a two-level
   lattice per goal: unknown < conditionally-derivable < definitely-
   derivable. Negation as failure appears only on environmental
   constraints, never on role atoms, so the rule set is monotone in roles
   and the fixpoint is exact — no stratification subtleties. *)

type adversary = {
  held_appointments : (string * string) list;
  held_roles : (string * string) list;
}

let no_credentials = { held_appointments = []; held_roles = [] }

let permissive (world : Analysis.world_policy) =
  {
    held_appointments =
      List.concat_map
        (fun (sp : Analysis.service_policy) ->
          List.map (fun kind -> (sp.Analysis.sp_name, kind)) sp.Analysis.appointment_kinds)
        world;
    held_roles = [];
  }

type verdict = Reachable | Env_contingent | Unreachable

let verdict_to_string = function
  | Reachable -> "reachable"
  | Env_contingent -> "env-contingent"
  | Unreachable -> "unreachable"

type head = Role of string | Appoint of string

type witness =
  | Held of { service : string; role : string }
  | Fired of { service : string; head : head; loc : Rule.loc; premises : premise list }

and premise =
  | Role_premise of witness
  | Appointment_premise of {
      issuer : string;
      kind : string;
      monitored : bool;
      via : witness option;
    }
  | Env_premise of { pred : string; args : Term.t list; assumed : bool }

type goal = {
  g_service : string;
  g_role : string;
  g_verdict : verdict;
  g_witness : witness option;
  g_assumptions : (string * bool) list;
}

type result = {
  goals : goal list;
  r_adversary : adversary;
  r_pins : (string * bool) list;
}

(* ---------------- three-valued environmental constraints ---------------- *)

(* Ground pure built-ins are evaluated outright; [Env.builtin_predicates]
   marks the comparisons `Pure and the clock-reading predicates `Timed. *)
let pure_builtin base =
  List.exists
    (fun (name, _, kind) -> kind = `Pure && String.equal name base)
    Env.builtin_predicates

let eval_pure base (a : Oasis_util.Value.t) (b : Oasis_util.Value.t) =
  let c = Oasis_util.Value.compare a b in
  match base with
  | "eq" -> Some (c = 0)
  | "ne" -> Some (c <> 0)
  | "lt" -> Some (c < 0)
  | "le" -> Some (c <= 0)
  | "gt" -> Some (c > 0)
  | "ge" -> Some (c >= 0)
  | _ -> None

(* `True / `False are decided (pinned, or a ground pure built-in); `Maybe is
   a free predicate the derivation may assume favourable. *)
let eval_constraint pins pred args =
  let negated = Env.negated pred in
  let base = Env.base_name pred in
  let oriented v = if v <> negated then `True else `False in
  match List.assoc_opt base pins with
  | Some pinned -> oriented pinned
  | None -> (
      match args with
      | [ Term.Const a; Term.Const b ] when pure_builtin base -> (
          match eval_pure base a b with Some v -> oriented v | None -> `Maybe)
      | _ -> `Maybe)

(* ---------------- the fixpoint ---------------- *)

type strength = Conditional | Definite

let min_strength a b = if a = Definite && b = Definite then Definite else Conditional

let better candidate = function
  | None -> true
  | Some (existing, _) -> candidate = Definite && existing = Conditional

let analyse ?(adversary = no_credentials) ?(pins = []) (world : Analysis.world_policy) =
  let service_of name =
    List.find_opt (fun (sp : Analysis.service_policy) -> String.equal sp.Analysis.sp_name name) world
  in
  let table : (string * string, strength * witness) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (service, role) ->
      Hashtbl.replace table (service, role) (Definite, Held { service; role }))
    adversary.held_roles;
  let held_appointment issuer kind =
    List.exists
      (fun (i, k) -> String.equal i issuer && String.equal k kind)
      adversary.held_appointments
  in
  (* Evaluates one body condition under the current table. [None] = not (yet)
     satisfiable; [Some (strength, premise)] otherwise. *)
  let rec eval_condition ~at ~monitored = function
    | Rule.Constraint (pred, args) -> (
        match eval_constraint pins pred args with
        | `True -> Some (Definite, Env_premise { pred; args; assumed = false })
        | `Maybe -> Some (Conditional, Env_premise { pred; args; assumed = true })
        | `False -> None)
    | Rule.Prereq r -> (
        let target = match r.Rule.service with None -> at | Some s -> s in
        match Hashtbl.find_opt table (target, r.Rule.name) with
        | Some (strength, w) -> Some (strength, Role_premise w)
        | None -> None)
    | Rule.Appointment r -> (
        let issuer = match r.Rule.service with None -> at | Some s -> s in
        let kind = r.Rule.name in
        if held_appointment issuer kind then
          Some (Definite, Appointment_premise { issuer; kind; monitored; via = None })
        else
          (* Appointment chain: an [appoint kind <- ...] rule at the issuer
             the adversary can fire grants self-issuance. *)
          match service_of issuer with
          | None -> None
          | Some sp ->
              sp.Analysis.appointers
              |> List.filter (fun (a : Rule.authorization) -> String.equal a.privilege kind)
              |> List.filter_map (fun (a : Rule.authorization) -> eval_appointer ~issuer a)
              |> pick_best
              |> Option.map (fun (strength, w) ->
                     (strength, Appointment_premise { issuer; kind; monitored; via = Some w })))
  and eval_appointer ~issuer (a : Rule.authorization) =
    let roles =
      List.map
        (fun (r : Rule.cred_ref) ->
          eval_condition ~at:issuer ~monitored:false (Rule.Prereq r))
        a.required_roles
    in
    let constraints =
      List.map
        (fun (pred, args) ->
          eval_condition ~at:issuer ~monitored:false (Rule.Constraint (pred, args)))
        a.constraints
    in
    combine (roles @ constraints)
    |> Option.map (fun (strength, premises) ->
           (strength, Fired { service = issuer; head = Appoint a.privilege; loc = a.loc; premises }))
  and combine evaluated =
    List.fold_left
      (fun acc c ->
        match (acc, c) with
        | Some (s, ps), Some (s', p) -> Some (min_strength s s', p :: ps)
        | _ -> None)
      (Some (Definite, []))
      evaluated
    |> Option.map (fun (s, ps) -> (s, List.rev ps))
  and pick_best candidates =
    List.fold_left
      (fun acc c ->
        match (acc, c) with
        | None, c -> Some c
        | Some (Definite, _), _ -> acc
        | Some (Conditional, _), (Definite, _) -> Some c
        | Some _, _ -> acc)
      None candidates
  in
  let sweep () =
    let improved = ref false in
    List.iter
      (fun (sp : Analysis.service_policy) ->
        List.iter
          (fun (a : Rule.activation) ->
            let key = (sp.Analysis.sp_name, a.role) in
            let current = Hashtbl.find_opt table key in
            if current = None || fst (Option.get current) = Conditional then
              let evaluated =
                List.map2
                  (fun monitored c -> eval_condition ~at:sp.Analysis.sp_name ~monitored c)
                  a.membership a.conditions
              in
              match combine evaluated with
              | Some (strength, premises) when better strength current ->
                  Hashtbl.replace table key
                    ( strength,
                      Fired
                        {
                          service = sp.Analysis.sp_name;
                          head = Role a.role;
                          loc = a.loc;
                          premises;
                        } );
                  improved := true
              | _ -> ())
          sp.Analysis.activations)
      world;
    !improved
  in
  while sweep () do
    ()
  done;
  let assumptions_of witness =
    let acc = ref [] in
    let note pred =
      let entry = (Env.base_name pred, not (Env.negated pred)) in
      if not (List.mem entry !acc) then acc := entry :: !acc
    in
    let rec walk = function
      | Held _ -> ()
      | Fired { premises; _ } -> List.iter walk_premise premises
    and walk_premise = function
      | Role_premise w -> walk w
      | Appointment_premise { via; _ } -> Option.iter walk via
      | Env_premise { pred; assumed; _ } -> if assumed then note pred
    in
    walk witness;
    List.sort compare !acc
  in
  let all_roles =
    List.concat_map
      (fun (sp : Analysis.service_policy) ->
        List.map (fun (a : Rule.activation) -> (sp.Analysis.sp_name, a.role)) sp.Analysis.activations)
      world
    |> List.sort_uniq compare
  in
  let goals =
    List.map
      (fun (service, role) ->
        match Hashtbl.find_opt table (service, role) with
        | Some (Definite, w) ->
            {
              g_service = service;
              g_role = role;
              g_verdict = Reachable;
              g_witness = Some w;
              g_assumptions = [];
            }
        | Some (Conditional, w) ->
            {
              g_service = service;
              g_role = role;
              g_verdict = Env_contingent;
              g_witness = Some w;
              g_assumptions = assumptions_of w;
            }
        | None ->
            {
              g_service = service;
              g_role = role;
              g_verdict = Unreachable;
              g_witness = None;
              g_assumptions = [];
            })
      all_roles
  in
  { goals; r_adversary = adversary; r_pins = pins }

let goal_for result ~service ~role =
  List.find_opt
    (fun g -> String.equal g.g_service service && String.equal g.g_role role)
    result.goals

(* ---------------- witness plans ---------------- *)

type step =
  | Activate of { service : string; role : string }
  | Self_appoint of { issuer : string; kind : string }

let plan witness =
  let steps = ref [] in
  let push step = if not (List.mem step !steps) then steps := step :: !steps in
  let rec walk = function
    | Held _ -> ()
    | Fired { service; head; premises; _ } -> (
        List.iter walk_premise premises;
        match head with
        | Role role -> push (Activate { service; role })
        | Appoint kind -> push (Self_appoint { issuer = service; kind }))
  and walk_premise = function
    | Role_premise w -> walk w
    | Appointment_premise { via; _ } -> Option.iter walk via
    | Env_premise _ -> ()
  in
  walk witness;
  List.rev !steps

(* ---------------- R-rule findings ---------------- *)

let first_rule_loc (world : Analysis.world_policy) service role =
  List.find_map
    (fun (sp : Analysis.service_policy) ->
      if String.equal sp.Analysis.sp_name service then
        List.find_map
          (fun (a : Rule.activation) ->
            if String.equal a.role role then Some a.loc else None)
          sp.Analysis.activations
      else None)
    world
  |> Option.value ~default:Rule.no_loc

(* Roles that guard something: required by a privilege or by appointment
   issuance. A revocation-exempt path to one of these is worth a finding. *)
let sensitive_roles (world : Analysis.world_policy) =
  List.concat_map
    (fun (sp : Analysis.service_policy) ->
      List.concat_map
        (fun (auth : Rule.authorization) ->
          List.map
            (fun (r : Rule.cred_ref) ->
              ((match r.Rule.service with None -> sp.Analysis.sp_name | Some s -> s), r.Rule.name))
            auth.required_roles)
        (sp.Analysis.authorizations @ sp.Analysis.appointers))
    world
  |> List.sort_uniq compare

(* The prerequisite closure of a role: every (service, role) some derivation
   of it may rest on, over all rules (conservative — not witness-specific). *)
let prereq_closure (world : Analysis.world_policy) seed =
  let rules_of (service, role) =
    List.concat_map
      (fun (sp : Analysis.service_policy) ->
        if String.equal sp.Analysis.sp_name service then
          List.filter
            (fun (a : Rule.activation) -> String.equal a.role role)
            sp.Analysis.activations
          |> List.map (fun a -> (service, a))
        else [])
      world
  in
  let rec grow closure frontier =
    match frontier with
    | [] -> closure
    | node :: rest ->
        if List.mem node closure then grow closure rest
        else
          let next =
            List.concat_map
              (fun (at, (a : Rule.activation)) ->
                List.filter_map
                  (function
                    | Rule.Prereq r ->
                        Some ((match r.Rule.service with None -> at | Some s -> s), r.Rule.name)
                    | Rule.Appointment _ | Rule.Constraint _ -> None)
                  a.conditions)
              (rules_of node)
          in
          grow (node :: closure) (next @ rest)
  in
  grow [] [ seed ]

let findings (world : Analysis.world_policy) =
  let r_empty = analyse ~adversary:no_credentials world in
  let r_full = analyse ~adversary:(permissive world) world in
  let r001 =
    List.filter_map
      (fun g ->
        match g.g_verdict with
        | Unreachable -> None
        | v ->
            let loc =
              match g.g_witness with
              | Some (Fired { loc; _ }) -> loc
              | _ -> first_rule_loc world g.g_service g.g_role
            in
            Some
              {
                Lint.code = "R001";
                check = "open-privilege";
                severity = Lint.Error;
                service = g.g_service;
                loc;
                message =
                  Printf.sprintf "role %s is activable with an empty credential wallet%s" g.g_role
                    (match v with
                    | Env_contingent ->
                        Printf.sprintf " when the environment cooperates (%s)"
                          (String.concat ", "
                             (List.map
                                (fun (p, v) -> Printf.sprintf "%s=%b" p v)
                                g.g_assumptions))
                    | _ -> "");
              })
      r_empty.goals
  in
  let r002 =
    List.filter_map
      (fun g ->
        if g.g_verdict = Unreachable then
          Some
            {
              Lint.code = "R002";
              check = "dead-grant";
              severity = Lint.Error;
              service = g.g_service;
              loc = first_rule_loc world g.g_service g.g_role;
              message =
                Printf.sprintf
                  "role %s cannot fire under any credential set or environment (dead grant)"
                  g.g_role;
            }
        else None)
      r_full.goals
  in
  let r003 =
    let reachable_sensitive =
      List.filter
        (fun node ->
          match goal_for r_full ~service:(fst node) ~role:(snd node) with
          | Some g -> g.g_verdict <> Unreachable
          | None -> false)
        (sensitive_roles world)
    in
    let seen = Hashtbl.create 16 in
    List.concat_map
      (fun ((s_svc, s_role) as sensitive) ->
        let closure = prereq_closure world sensitive in
        List.concat_map
          (fun (sp : Analysis.service_policy) ->
            List.concat_map
              (fun (a : Rule.activation) ->
                if not (List.mem (sp.Analysis.sp_name, a.role) closure) then []
                else
                  List.filter_map
                    (fun (monitored, condition) ->
                      match condition with
                      | Rule.Appointment r when not monitored ->
                          let issuer =
                            match r.Rule.service with None -> sp.Analysis.sp_name | Some s -> s
                          in
                          let key = (sp.Analysis.sp_name, a.loc, r.Rule.name) in
                          if Hashtbl.mem seen key then None
                          else begin
                            Hashtbl.replace seen key ();
                            Some
                              {
                                Lint.code = "R003";
                                check = "revocation-exempt";
                                severity = Lint.Warning;
                                service = sp.Analysis.sp_name;
                                loc = a.loc;
                                message =
                                  Printf.sprintf
                                    "appointment %s@%s on a path to sensitive role %s@%s is not \
                                     membership-monitored; revoking it never cascades"
                                    r.Rule.name issuer s_role s_svc;
                              }
                          end
                      | _ -> None)
                    (List.combine a.membership a.conditions))
              sp.Analysis.activations)
          world)
      reachable_sensitive
  in
  List.sort
    (fun (a : Lint.finding) (b : Lint.finding) ->
      compare
        (a.service, a.loc.Rule.line, a.loc.Rule.col, a.code)
        (b.service, b.loc.Rule.line, b.loc.Rule.col, b.code))
    (r001 @ r002 @ r003)

(* ---------------- rendering ---------------- *)

let pp_head ppf = function
  | Role r -> Format.pp_print_string ppf r
  | Appoint k -> Format.fprintf ppf "appoint %s" k

let pp_args ppf = function
  | [] -> ()
  | args ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Term.pp)
        args

let rec pp_witness ppf = function
  | Held { service; role } -> Format.fprintf ppf "held RMC %s@%s" role service
  | Fired { service; head; loc; premises } ->
      Format.fprintf ppf "@[<v 2>rule %a@%s [%a]%a@]" pp_head head service Rule.pp_loc loc
        (fun ppf -> List.iter (fun p -> Format.fprintf ppf "@,- %a" pp_premise p))
        premises

and pp_premise ppf = function
  | Role_premise w -> pp_witness ppf w
  | Appointment_premise { issuer; kind; monitored; via } -> (
      let star = if monitored then "*" else "" in
      match via with
      | None -> Format.fprintf ppf "%sappt %s@%s (held)" star kind issuer
      | Some w -> Format.fprintf ppf "@[<v 2>%sappt %s@%s (self-issued)@,- %a@]" star kind issuer pp_witness w)
  | Env_premise { pred; args; assumed } ->
      Format.fprintf ppf "env %s%a (%s)" pred pp_args args
        (if assumed then "assumed" else "decided")

let pp_goal ppf g =
  Format.fprintf ppf "@[<v 2>%-14s %s@%s" (verdict_to_string g.g_verdict) g.g_role g.g_service;
  if g.g_assumptions <> [] then
    Format.fprintf ppf " assuming %s"
      (String.concat ", " (List.map (fun (p, v) -> Printf.sprintf "%s=%b" p v) g.g_assumptions));
  (match g.g_witness with
  | Some w -> Format.fprintf ppf "@,%a" pp_witness w
  | None -> ());
  Format.fprintf ppf "@]"

let pp_result ppf r =
  Format.fprintf ppf "@[<v>adversary: %d appointment(s), %d role(s) held"
    (List.length r.r_adversary.held_appointments)
    (List.length r.r_adversary.held_roles);
  if r.r_adversary.held_appointments <> [] then
    Format.fprintf ppf " — %s"
      (String.concat ", "
         (List.map (fun (i, k) -> Printf.sprintf "%s@%s" k i) r.r_adversary.held_appointments));
  if r.r_pins <> [] then
    Format.fprintf ppf "@,pins: %s"
      (String.concat ", " (List.map (fun (p, v) -> Printf.sprintf "%s=%b" p v) r.r_pins));
  List.iter (fun g -> Format.fprintf ppf "@,%a" pp_goal g) r.goals;
  Format.fprintf ppf "@]"

(* ---------------- JSON ---------------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec witness_json = function
  | Held { service; role } ->
      Printf.sprintf "{\"held\":{\"service\":%s,\"role\":%s}}" (json_string service)
        (json_string role)
  | Fired { service; head; loc; premises } ->
      let kind, name =
        match head with Role r -> ("role", r) | Appoint k -> ("appoint", k)
      in
      Printf.sprintf
        "{\"rule\":{\"service\":%s,\"kind\":%s,\"head\":%s,\"line\":%d,\"col\":%d},\"premises\":[%s]}"
        (json_string service) (json_string kind) (json_string name) loc.Rule.line loc.Rule.col
        (String.concat "," (List.map premise_json premises))

and premise_json = function
  | Role_premise w -> Printf.sprintf "{\"type\":\"role\",\"witness\":%s}" (witness_json w)
  | Appointment_premise { issuer; kind; monitored; via } ->
      Printf.sprintf "{\"type\":\"appointment\",\"issuer\":%s,\"kind\":%s,\"monitored\":%b%s}"
        (json_string issuer) (json_string kind) monitored
        (match via with
        | None -> ",\"held\":true"
        | Some w -> Printf.sprintf ",\"via\":%s" (witness_json w))
  | Env_premise { pred; args; assumed } ->
      Printf.sprintf "{\"type\":\"env\",\"pred\":%s,\"args\":[%s],\"assumed\":%b}"
        (json_string pred)
        (String.concat "," (List.map (fun t -> json_string (Term.to_string t)) args))
        assumed

let finding_json (f : Lint.finding) =
  Printf.sprintf
    "{\"code\":%s,\"check\":%s,\"severity\":%s,\"service\":%s,\"line\":%d,\"col\":%d,\"message\":%s}"
    (json_string f.code) (json_string f.check)
    (json_string (Lint.severity_to_string f.severity))
    (json_string f.service) f.loc.Rule.line f.loc.Rule.col (json_string f.message)

let to_json ?(findings = []) r =
  let goal_json g =
    Printf.sprintf
      "{\"service\":%s,\"role\":%s,\"verdict\":%s,\"assumptions\":[%s],\"witness\":%s}"
      (json_string g.g_service) (json_string g.g_role)
      (json_string (verdict_to_string g.g_verdict))
      (String.concat ","
         (List.map
            (fun (p, v) -> Printf.sprintf "{\"pred\":%s,\"value\":%b}" (json_string p) v)
            g.g_assumptions))
      (match g.g_witness with None -> "null" | Some w -> witness_json w)
  in
  let count sev = List.length (List.filter (fun (f : Lint.finding) -> f.severity = sev) findings) in
  Printf.sprintf
    "{\"adversary\":{\"held_appointments\":[%s],\"held_roles\":[%s]},\"pins\":[%s],\"goals\":[%s],\"findings\":[%s],\"errors\":%d,\"warnings\":%d,\"infos\":%d}"
    (String.concat ","
       (List.map
          (fun (i, k) ->
            Printf.sprintf "{\"issuer\":%s,\"kind\":%s}" (json_string i) (json_string k))
          r.r_adversary.held_appointments))
    (String.concat ","
       (List.map
          (fun (s, role) ->
            Printf.sprintf "{\"service\":%s,\"role\":%s}" (json_string s) (json_string role))
          r.r_adversary.held_roles))
    (String.concat ","
       (List.map
          (fun (p, v) -> Printf.sprintf "{\"pred\":%s,\"value\":%b}" (json_string p) v)
          r.r_pins))
    (String.concat "," (List.map goal_json r.goals))
    (String.concat "," (List.map finding_json findings))
    (count Lint.Error) (count Lint.Warning) (count Lint.Info)
