module Value = Oasis_util.Value
module Ident = Oasis_util.Ident

type statement =
  | Activation of Rule.activation
  | Authorization of Rule.authorization
  | Appointer of Rule.authorization
      (* appoint kind(args) <- role conditions; the privilege field holds
         the appointment kind *)

type error = { line : int; message : string }

let pp_error ppf { line; message } = Format.fprintf ppf "policy syntax error, line %d: %s" line message

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Tident of string (* may contain '#': tag#3 *)
  | Tint of int
  | Tfloat of float
  | Tstring of string
  | Tlparen
  | Trparen
  | Tcomma
  | Tarrow
  | Tat
  | Tstar
  | Tsemi
  | Tcolon
  | Tbang
  | Tge (* '>=' — threshold sugar on env constraints *)
  | Ttilde (* '~' — hysteresis-band sugar after a '>=' threshold *)

exception Lex_error of int * string

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '#'
  || c = '.' (* qualified service names: hospital.civ *)

let tokenize src =
  let tokens = ref [] in
  let line = ref 1 in
  let bol = ref 0 (* index just past the last newline: column = i - bol + 1 *) in
  let n = String.length src in
  let i = ref 0 in
  let tok_start = ref 0 in
  let push t =
    tokens := (t, { Rule.line = !line; col = !tok_start - !bol + 1 }) :: !tokens
  in
  while !i < n do
    let c = src.[!i] in
    tok_start := !i;
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (push Tlparen; incr i)
    else if c = ')' then (push Trparen; incr i)
    else if c = ',' then (push Tcomma; incr i)
    else if c = '@' then (push Tat; incr i)
    else if c = '*' then (push Tstar; incr i)
    else if c = ';' then (push Tsemi; incr i)
    else if c = ':' then (push Tcolon; incr i)
    else if c = '!' then (push Tbang; incr i)
    else if c = '~' then (push Ttilde; incr i)
    else if c = '<' && !i + 1 < n && src.[!i + 1] = '-' then begin
      push Tarrow;
      i := !i + 2
    end
    else if c = '>' && !i + 1 < n && src.[!i + 1] = '=' then begin
      push Tge;
      i := !i + 2
    end
    else if c = '"' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && src.[!j] <> '"' do
        if src.[!j] = '\n' then raise (Lex_error (!line, "unterminated string"));
        incr j
      done;
      if !j >= n then raise (Lex_error (!line, "unterminated string"));
      push (Tstring (String.sub src start (!j - start)));
      i := !j + 1
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      let saw_dot = ref false in
      while !i < n && ((src.[!i] >= '0' && src.[!i] <= '9') || (src.[!i] = '.' && not !saw_dot)) do
        if src.[!i] = '.' then saw_dot := true;
        incr i
      done;
      let text = String.sub src start (!i - start) in
      if !saw_dot then push (Tfloat (float_of_string text)) else push (Tint (int_of_string text))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (Tident (String.sub src start (!i - start)))
    end
    else raise (Lex_error (!line, Printf.sprintf "unexpected character %C" c))
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

type state = { mutable toks : (token * Rule.loc) list; mutable last_loc : Rule.loc }

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t

let pos st = match st.toks with [] -> st.last_loc | (_, l) :: _ -> l

let line st = (pos st).Rule.line

let advance st =
  match st.toks with
  | [] -> ()
  | (_, l) :: rest ->
      st.last_loc <- l;
      st.toks <- rest

let fail st message = raise (Parse_error (line st, message))

let expect st token message =
  match peek st with
  | Some t when t = token -> advance st
  | _ -> fail st message

let ident st =
  match peek st with
  | Some (Tident name) ->
      advance st;
      name
  | _ -> fail st "expected an identifier"

(* A term in argument position. *)
let term st =
  match peek st with
  | Some (Tint n) ->
      advance st;
      Term.Const (Value.Int n)
  | Some (Tfloat f) ->
      advance st;
      Term.Const (Value.Time f)
  | Some (Tstring s) ->
      advance st;
      Term.Const (Value.Str s)
  | Some (Tident "true") ->
      advance st;
      Term.Const (Value.Bool true)
  | Some (Tident "false") ->
      advance st;
      Term.Const (Value.Bool false)
  | Some (Tident name) -> (
      advance st;
      if String.contains name '#' then
        match Ident.of_string name with
        | Some id -> Term.Const (Value.Id id)
        | None -> fail st (Printf.sprintf "malformed identifier constant %s" name)
      else Term.Var name)
  | _ -> fail st "expected a term"

let term_list st =
  match peek st with
  | Some Tlparen ->
      advance st;
      if peek st = Some Trparen then begin
        advance st;
        []
      end
      else begin
        let rec more acc =
          let t = term st in
          match peek st with
          | Some Tcomma ->
              advance st;
              more (t :: acc)
          | Some Trparen ->
              advance st;
              List.rev (t :: acc)
          | _ -> fail st "expected ',' or ')' in argument list"
        in
        more []
      end
  | _ -> []

let service_suffix st =
  match peek st with
  | Some Tat ->
      advance st;
      Some (ident st)
  | _ -> None

(* One body condition, with its membership flag. *)
let condition st =
  let monitored =
    match peek st with
    | Some Tstar ->
        advance st;
        true
    | _ -> false
  in
  let name = ident st in
  match (name, peek st) with
  | "appt", Some Tcolon ->
      advance st;
      let kind = ident st in
      let args = term_list st in
      let service = service_suffix st in
      (monitored, Rule.Appointment { service; name = kind; args })
  | "env", Some Tcolon ->
      advance st;
      let negated =
        match peek st with
        | Some Tbang ->
            advance st;
            true
        | _ -> false
      in
      let pred = ident st in
      let pred = if negated then "!" ^ pred else pred in
      let args = term_list st in
      (* Threshold sugar: [env:trust_score(u) >= 0.6] is exactly
         [env:trust_score(u, 0.6)] — the comparison lives inside the
         predicate, the canonical printer emits the desugared form. An
         optional hysteresis band rides on the threshold:
         [env:trust_score(u) >= 0.6 ~ 0.1] is [env:trust_score(u, 0.6,
         0.1)] — grant at 0.6, hold existing memberships down to 0.5. *)
      let args =
        match peek st with
        | Some Tge ->
            advance st;
            let threshold = term st in
            let band =
              match peek st with
              | Some Ttilde ->
                  advance st;
                  [ term st ]
              | _ -> []
            in
            args @ (threshold :: band)
        | _ -> args
      in
      (monitored, Rule.Constraint (pred, args))
  | _, _ ->
      let args = term_list st in
      let service = service_suffix st in
      (monitored, Rule.Prereq { service; name; args })

let condition_list st =
  let rec more acc =
    let c = condition st in
    match peek st with
    | Some Tcomma ->
        advance st;
        more (c :: acc)
    | _ -> List.rev (c :: acc)
  in
  more []

let authorization_body st ~keyword ~loc =
  let privilege = ident st in
  let priv_args = term_list st in
  expect st Tarrow (Printf.sprintf "expected '<-' after %s head" keyword);
  let body = condition_list st in
  let required_roles, constraints =
    List.fold_left
      (fun (roles, constraints) (monitored, condition) ->
        if monitored then
          fail st (Printf.sprintf "membership marks '*' are not allowed in %s rules" keyword);
        match condition with
        | Rule.Prereq r -> (r :: roles, constraints)
        | Rule.Constraint (name, args) -> (roles, (name, args) :: constraints)
        | Rule.Appointment _ ->
            fail st
              (Printf.sprintf
                 "appointment certificates cannot appear in %s rules; gate a role on them" keyword))
      ([], []) body
  in
  expect st Tsemi "expected ';' at end of statement";
  {
    Rule.privilege;
    priv_args;
    required_roles = List.rev required_roles;
    constraints = List.rev constraints;
    loc;
  }

let statement st =
  let loc = pos st in
  match peek st with
  | Some (Tident "priv") ->
      advance st;
      Authorization (authorization_body st ~keyword:"priv" ~loc)
  | Some (Tident "appoint") ->
      advance st;
      Appointer (authorization_body st ~keyword:"appoint" ~loc)
  | Some (Tident _) ->
      let initial =
        match peek st with
        | Some (Tident "initial") ->
            advance st;
            true
        | _ -> false
      in
      let role = ident st in
      let params = term_list st in
      let body =
        match peek st with
        | Some Tarrow ->
            advance st;
            condition_list st
        | _ -> []
      in
      expect st Tsemi "expected ';' at end of statement";
      (try Activation (Rule.activation ~initial ~loc ~role ~params body)
       with Invalid_argument msg -> fail st msg)
  | _ -> fail st "expected a rule"

let parse src =
  match
    let st = { toks = tokenize src; last_loc = { Rule.line = 1; col = 1 } } in
    let rec loop acc = match peek st with None -> List.rev acc | Some _ -> loop (statement st :: acc) in
    loop []
  with
  | statements -> Ok statements
  | exception Lex_error (line, message) -> Error { line; message }
  | exception Parse_error (line, message) -> Error { line; message }

let parse_exn src =
  match parse src with
  | Ok statements -> statements
  | Error e -> failwith (Format.asprintf "%a" pp_error e)

let activations statements =
  List.filter_map (function Activation a -> Some a | Authorization _ | Appointer _ -> None) statements

let authorizations statements =
  List.filter_map (function Authorization a -> Some a | Activation _ | Appointer _ -> None) statements

let appointers statements =
  List.filter_map (function Appointer a -> Some a | Activation _ | Authorization _ -> None) statements

(* ------------------------------------------------------------------ *)
(* Canonical printer                                                  *)
(* ------------------------------------------------------------------ *)

let print_value = function
  | Value.Int n -> string_of_int n
  | Value.Bool b -> string_of_bool b
  | Value.Time f ->
      (* The lexer reads digits and one dot — no exponents, no hex. %.17g
         is exact for doubles; reject reprs the grammar cannot express and
         ensure a dot so the token lexes as a float. *)
      let s = Printf.sprintf "%.17g" f in
      if String.contains s 'e' || String.contains s 'E' || String.contains s 'n' then
        invalid_arg "Parser.print: time constant not expressible in policy syntax";
      if String.contains s '.' then s else s ^ ".0"
  | Value.Id id -> Ident.to_string id
  | Value.Str s ->
      (* The lexer takes string contents verbatim (no escapes). *)
      if String.exists (fun c -> c = '"' || c = '\n' || c = '\\') s then
        invalid_arg "Parser.print: string constant contains a quote, newline or backslash";
      "\"" ^ s ^ "\""

let print_term = function
  | Term.Var v -> v
  | Term.Const c -> print_value c

let print_args = function
  | [] -> ""
  | args -> "(" ^ String.concat ", " (List.map print_term args) ^ ")"

let print_cred_ref (r : Rule.cred_ref) =
  r.name ^ print_args r.args ^ match r.service with None -> "" | Some s -> "@" ^ s

let print_condition = function
  | Rule.Prereq r -> print_cred_ref r
  | Rule.Appointment r -> "appt:" ^ print_cred_ref r
  | Rule.Constraint (name, args) ->
      let negated, base =
        if String.length name > 0 && name.[0] = '!' then
          (true, String.sub name 1 (String.length name - 1))
        else (false, name)
      in
      "env:" ^ (if negated then "!" else "") ^ base ^ print_args args

let print_authorization ~keyword (auth : Rule.authorization) =
  let body =
    List.map print_cred_ref auth.required_roles
    @ List.map (fun (n, a) -> print_condition (Rule.Constraint (n, a))) auth.constraints
  in
  keyword ^ " " ^ auth.privilege ^ print_args auth.priv_args ^ " <- " ^ String.concat ", " body
  ^ " ;"

let print_statement = function
  | Activation (rule : Rule.activation) ->
      let head = rule.role ^ print_args rule.params in
      let prefix = if rule.initial then "initial " else "" in
      let body =
        List.map2
          (fun monitored condition ->
            (if monitored then "*" else "") ^ print_condition condition)
          rule.membership rule.conditions
      in
      if body = [] then prefix ^ head ^ " ;"
      else prefix ^ head ^ " <- " ^ String.concat ", " body ^ " ;"
  | Authorization auth -> print_authorization ~keyword:"priv" auth
  | Appointer auth -> print_authorization ~keyword:"appoint" auth

let print statements = String.concat "\n" (List.map print_statement statements)
