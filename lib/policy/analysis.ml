type service_policy = {
  sp_name : string;
  activations : Rule.activation list;
  authorizations : Rule.authorization list;
  appointers : Rule.authorization list;
  appointment_kinds : string list;
}

type world_policy = service_policy list

type unresolved =
  | Unknown_service of { at : string; rule : string; service : string }
  | Unknown_role of { at : string; rule : string; service : string; role : string }
  | Unknown_appointment of { at : string; rule : string; issuer : string; kind : string }

let pp_unresolved ppf = function
  | Unknown_service { at; rule; service } ->
      Format.fprintf ppf "%s: rule %s references unknown service %s" at rule service
  | Unknown_role { at; rule; service; role } ->
      Format.fprintf ppf "%s: rule %s references undefined role %s@%s" at rule role service
  | Unknown_appointment { at; rule; issuer; kind } ->
      Format.fprintf ppf "%s: rule %s references appointment kind %s that %s does not issue" at
        rule kind issuer

type report = {
  reachable_roles : (string * string) list;
  dead_roles : (string * string) list;
  grantable_privileges : (string * string) list;
  dead_privileges : (string * string) list;
  prereq_cycles : (string * string) list list;
  unresolved : unresolved list;
}

module Node = struct
  type t = string * string

  let compare = compare
end

module Node_set = Set.Make (Node)
module Node_map = Map.Make (Node)

let of_statements ~name ?(appointment_kinds = []) statements =
  let appointers = Parser.appointers statements in
  {
    sp_name = name;
    activations = Parser.activations statements;
    authorizations = Parser.authorizations statements;
    appointers;
    appointment_kinds =
      List.sort_uniq compare
        (appointment_kinds
        @ List.map (fun (a : Rule.authorization) -> a.privilege) appointers);
  }

(* Reference resolution lives in the linter; this maps its located refs
   onto the report's location-free shape (first occurrence wins). *)
let to_lint_service sp =
  {
    Lint.s_name = sp.sp_name;
    s_activations = sp.activations;
    s_authorizations = sp.authorizations;
    s_appointers = sp.appointers;
    s_extra_kinds = sp.appointment_kinds;
  }

let unresolved_of_refs refs =
  let rec dedup seen = function
    | [] -> List.rev seen
    | u :: rest -> dedup (if List.mem u seen then seen else u :: seen) rest
  in
  List.map
    (function
      | Lint.Ref_service { at; rule; service; _ } -> Unknown_service { at; rule; service }
      | Lint.Ref_role { at; rule; service; role; _ } -> Unknown_role { at; rule; service; role }
      | Lint.Ref_kind { at; rule; issuer; kind; _ } ->
          Unknown_appointment { at; rule; issuer; kind })
    refs
  |> dedup []

let analyse ?held_appointments world =
  let service_of name = List.find_opt (fun sp -> String.equal sp.sp_name name) world in
  let held =
    match held_appointments with
    | Some held -> held
    | None ->
        List.concat_map (fun sp -> List.map (fun kind -> (sp.sp_name, kind)) sp.appointment_kinds) world
  in
  let unresolved =
    unresolved_of_refs (Lint.resolve_refs ~closed:true (List.map to_lint_service world))
  in
  (* Reachability fixpoint over (service, role). Constraints are assumed
     satisfiable; appointments must be held; prerequisites must already be
     reachable. *)
  let condition_ok reachable ~at = function
    | Rule.Constraint _ -> true
    | Rule.Appointment r ->
        let issuer = match r.service with None -> at | Some s -> s in
        List.mem (issuer, r.name) held
        && (match service_of issuer with
           | Some sp -> List.mem r.name sp.appointment_kinds
           | None -> false)
    | Rule.Prereq r ->
        let target = match r.service with None -> at | Some s -> s in
        Node_set.mem (target, r.name) reachable
  in
  let step reachable =
    List.fold_left
      (fun acc sp ->
        List.fold_left
          (fun acc (a : Rule.activation) ->
            if Node_set.mem (sp.sp_name, a.role) acc then acc
            else if List.for_all (condition_ok acc ~at:sp.sp_name) a.conditions then
              Node_set.add (sp.sp_name, a.role) acc
            else acc)
          acc sp.activations)
      reachable world
  in
  let rec fixpoint reachable =
    let next = step reachable in
    if Node_set.equal next reachable then reachable else fixpoint next
  in
  let reachable = fixpoint Node_set.empty in
  let all_roles =
    List.concat_map
      (fun sp ->
        List.sort_uniq compare (List.map (fun (a : Rule.activation) -> (sp.sp_name, a.role)) sp.activations))
      world
    |> List.sort_uniq compare
  in
  let dead_roles = List.filter (fun node -> not (Node_set.mem node reachable)) all_roles in
  (* Privileges. *)
  let priv_ok (sp : service_policy) (auth : Rule.authorization) =
    List.for_all
      (fun (r : Rule.cred_ref) ->
        let target = match r.service with None -> sp.sp_name | Some s -> s in
        Node_set.mem (target, r.name) reachable)
      auth.required_roles
  in
  let all_privs =
    List.concat_map
      (fun sp -> List.map (fun (auth : Rule.authorization) -> (sp, auth)) sp.authorizations)
      world
  in
  let grantable, dead =
    List.partition (fun (sp, auth) -> priv_ok sp auth) all_privs
  in
  let priv_names l =
    List.map (fun (sp, (auth : Rule.authorization)) -> (sp.sp_name, auth.privilege)) l
    |> List.sort_uniq compare
  in
  (* Prerequisite graph cycles (Kosaraju-style SCC on the small graph). *)
  let edges =
    List.concat_map
      (fun sp ->
        List.concat_map
          (fun (a : Rule.activation) ->
            List.filter_map
              (function
                | Rule.Prereq r ->
                    let target = match r.service with None -> sp.sp_name | Some s -> s in
                    Some ((sp.sp_name, a.role), (target, r.name))
                | Rule.Appointment _ | Rule.Constraint _ -> None)
              a.conditions)
          sp.activations)
      world
  in
  let succs node = List.filter_map (fun (a, b) -> if a = node then Some b else None) edges in
  let preds node = List.filter_map (fun (a, b) -> if b = node then Some a else None) edges in
  let nodes = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  let order = ref [] in
  let visited = ref Node_set.empty in
  let rec dfs1 node =
    if not (Node_set.mem node !visited) then begin
      visited := Node_set.add node !visited;
      List.iter dfs1 (succs node);
      order := node :: !order
    end
  in
  List.iter dfs1 nodes;
  let component = ref Node_map.empty in
  let rec dfs2 node id =
    if not (Node_map.mem node !component) then begin
      component := Node_map.add node id !component;
      List.iter (fun p -> dfs2 p id) (preds node)
    end
  in
  List.iteri (fun i node -> dfs2 node i) !order;
  let by_component = Hashtbl.create 8 in
  Node_map.iter
    (fun node id ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_component id) in
      Hashtbl.replace by_component id (node :: cur))
    !component;
  let prereq_cycles =
    Hashtbl.fold
      (fun _ members acc ->
        match members with
        | [ only ] -> if List.mem (only, only) edges then [ only ] :: acc else acc
        | _ :: _ :: _ -> List.sort compare members :: acc
        | [] -> acc)
      by_component []
    |> List.sort compare
  in
  {
    reachable_roles = List.sort compare (Node_set.elements reachable);
    dead_roles;
    grantable_privileges = priv_names grantable;
    dead_privileges = priv_names dead;
    prereq_cycles;
    unresolved;
  }

let pp_pair ppf (service, name) = Format.fprintf ppf "%s@%s" name service

let pp_report ppf r =
  let plist ppf l =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_pair ppf l
  in
  Format.fprintf ppf "@[<v>reachable roles: @[%a@]@," plist r.reachable_roles;
  if r.dead_roles <> [] then Format.fprintf ppf "DEAD roles: @[%a@]@," plist r.dead_roles;
  Format.fprintf ppf "grantable privileges: @[%a@]@," plist r.grantable_privileges;
  if r.dead_privileges <> [] then
    Format.fprintf ppf "DEAD privileges: @[%a@]@," plist r.dead_privileges;
  List.iter
    (fun cycle -> Format.fprintf ppf "prerequisite cycle: @[%a@]@," plist cycle)
    r.prereq_cycles;
  List.iter (fun u -> Format.fprintf ppf "unresolved: %a@," pp_unresolved u) r.unresolved;
  Format.fprintf ppf "@]"
