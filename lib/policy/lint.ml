(* Static policy linting: dataflow, consistency and membership/revocation
   checks over parsed rules, with source-located diagnostics. See lint.mli
   for the rule catalogue. *)

type severity = Error | Warning | Info

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

type finding = {
  code : string;
  check : string;
  severity : severity;
  service : string;
  loc : Rule.loc;
  message : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%a: %s %s [%s] %s (%s)" Rule.pp_loc f.loc
    (severity_to_string f.severity) f.code f.check f.message f.service

type service = {
  s_name : string;
  s_activations : Rule.activation list;
  s_authorizations : Rule.authorization list;
  s_appointers : Rule.authorization list;
  s_extra_kinds : string list;
}

let of_statements ~name ?(extra_kinds = []) statements =
  {
    s_name = name;
    s_activations = Parser.activations statements;
    s_authorizations = Parser.authorizations statements;
    s_appointers = Parser.appointers statements;
    s_extra_kinds = extra_kinds;
  }

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                     *)
(* ------------------------------------------------------------------ *)

let find_service world name = List.find_opt (fun s -> String.equal s.s_name name) world

let builtin name =
  List.find_opt (fun (n, _, _) -> String.equal n name) Env.builtin_predicates

(* A built-in may admit several arities (trust_score with and without its
   hysteresis band); arity checks must accept any of them. *)
let builtin_arities name =
  List.filter_map
    (fun (n, a, _) -> if String.equal n name then Some a else None)
    Env.builtin_predicates

(* Variable occurrences, duplicates preserved (Term.vars dedups). *)
let var_occurrences terms =
  List.filter_map (function Term.Var v -> Some v | Term.Const _ -> None) terms

let condition_args = function
  | Rule.Prereq r | Rule.Appointment r -> r.Rule.args
  | Rule.Constraint (_, args) -> args

(* Variables a condition can bind during proof search: credential arguments
   unify against presented certificates; a non-negated fact constraint
   enumerates tuples. Negated constraints and computed built-ins bind
   nothing (Solve: negation needs ground args; built-ins enumerate []). *)
let binder_vars = function
  | Rule.Prereq r | Rule.Appointment r -> var_occurrences r.Rule.args
  | Rule.Constraint (name, args) ->
      if Env.negated name || builtin (Env.base_name name) <> None then []
      else var_occurrences args

(* An authorization body in the order Solve.authorization evaluates it. *)
let auth_conditions (auth : Rule.authorization) =
  List.map (fun r -> Rule.Prereq r) auth.required_roles
  @ List.map (fun (n, a) -> Rule.Constraint (n, a)) auth.constraints

let dedup l = List.sort_uniq compare l

let intentional v = String.length v > 0 && v.[0] = '_'

let quote_vars vs = String.concat ", " (List.map (fun v -> "'" ^ v ^ "'") vs)

(* ------------------------------------------------------------------ *)
(* Dataflow: L001 unbound-head, L002 singleton-var, L003 nonground     *)
(* ------------------------------------------------------------------ *)

let nonground_negations ~service ~where ~loc ~seed conditions =
  let rec walk bound acc = function
    | [] -> List.rev acc
    | condition :: rest ->
        let acc =
          match condition with
          | Rule.Constraint (name, args) when Env.negated name ->
              let free =
                dedup (var_occurrences args) |> List.filter (fun v -> not (List.mem v bound))
              in
              if free = [] then acc
              else
                {
                  code = "L003";
                  check = "nonground-negation";
                  severity = Error;
                  service;
                  loc;
                  message =
                    Printf.sprintf
                      "negated constraint 'env:%s' in %s is reached with unbound variable(s) \
                       %s; negation as failure is sound only over ground instances, so this \
                       raises Nonground_negation (Bad_request) at request time — bind the \
                       variable(s) in an earlier condition"
                      name where (quote_vars free);
                }
                :: acc
          | _ -> acc
        in
        walk (binder_vars condition @ bound) acc rest
  in
  walk seed [] conditions

let lint_activation s (a : Rule.activation) =
  let body_vars =
    List.concat_map (fun c -> var_occurrences (condition_args c)) a.conditions
  in
  let head_vars = Term.vars a.params in
  (* A head parameter the body never even mentions can neither be derived
     (so unpinned activation raises Unbound_head) nor validated (a pinned
     value is accepted unchecked). Parameters that appear only in computed
     constraints are fine: the caller pins them and the constraint checks
     them ("parameters are related in a specified way", Sect. 2). *)
  let unbound = List.filter (fun v -> not (List.mem v body_vars)) head_vars in
  let l001 =
    List.map
      (fun v ->
        {
          code = "L001";
          check = "unbound-head";
          severity = Error;
          service = s.s_name;
          loc = a.loc;
          message =
            Printf.sprintf
              "head parameter '%s' of role '%s' appears in no condition: the rule can \
               neither derive it (unpinned activation raises Unbound_head) nor validate a \
               caller-supplied value"
              v a.role;
        })
      unbound
  in
  let occurrences =
    var_occurrences a.params @ List.concat_map (fun c -> var_occurrences (condition_args c)) a.conditions
  in
  let l002 =
    dedup occurrences
    |> List.filter (fun v ->
           List.length (List.filter (String.equal v) occurrences) = 1
           && (not (intentional v))
           && not (List.mem v unbound))
    |> List.map (fun v ->
           {
             code = "L002";
             check = "singleton-var";
             severity = Warning;
             service = s.s_name;
             loc = a.loc;
             message =
               Printf.sprintf
                 "variable '%s' occurs exactly once in the rule for role '%s' — likely a \
                  typo; prefix it with '_' if the single occurrence is intentional"
                 v a.role;
           })
  in
  let l003 =
    nonground_negations ~service:s.s_name
      ~where:(Printf.sprintf "the rule for role '%s'" a.role)
      ~loc:a.loc ~seed:[] a.conditions
  in
  l001 @ l002 @ l003

let lint_authorization s ~keyword (auth : Rule.authorization) =
  let conditions = auth_conditions auth in
  let head_vars = Term.vars auth.priv_args in
  let occurrences = List.concat_map (fun c -> var_occurrences (condition_args c)) conditions in
  (* Head parameters of priv/appoint rules are bound by the invocation
     itself, so — unlike activation heads — they need no binder and a
     body-free head variable is idiomatic ("appoint employee(u) ..."). *)
  let l002 =
    dedup occurrences
    |> List.filter (fun v ->
           List.length (List.filter (String.equal v) occurrences) = 1
           && (not (intentional v))
           && not (List.mem v head_vars))
    |> List.map (fun v ->
           {
             code = "L002";
             check = "singleton-var";
             severity = Warning;
             service = s.s_name;
             loc = auth.loc;
             message =
               Printf.sprintf
                 "variable '%s' occurs exactly once in the body of '%s %s' — likely a typo; \
                  prefix it with '_' if the single occurrence is intentional"
                 v keyword auth.privilege;
           })
  in
  let l003 =
    nonground_negations ~service:s.s_name
      ~where:(Printf.sprintf "'%s %s'" keyword auth.privilege)
      ~loc:auth.loc ~seed:head_vars conditions
  in
  l002 @ l003

(* ------------------------------------------------------------------ *)
(* Membership / revocation: L201, L202                                 *)
(* ------------------------------------------------------------------ *)

let lint_membership s (a : Rule.activation) =
  List.concat
    (List.map2
       (fun monitored condition ->
         match condition with
         | Rule.Constraint (name, _) when monitored -> (
             match builtin (Env.base_name name) with
             | Some (_, _, `Pure) ->
                 [
                   {
                     code = "L201";
                     check = "unmonitorable-membership";
                     severity = Warning;
                     service = s.s_name;
                     loc = a.loc;
                     message =
                       Printf.sprintf
                         "membership mark on 'env:%s' in role '%s' is unmonitorable: the \
                          predicate depends only on its arguments, so no fact change or \
                          timer ever re-checks it — the '*' has no effect"
                         name a.role;
                   };
                 ]
             | _ -> [])
         | Rule.Appointment r when not monitored ->
             [
               {
                 code = "L202";
                 check = "unmonitored-appointment";
                 severity = Warning;
                 service = s.s_name;
                 loc = a.loc;
                 message =
                   Printf.sprintf
                     "appointment condition 'appt:%s' of role '%s' is not membership-marked; \
                      revoking the certificate will never deactivate the role, so the \
                      session tree does not collapse (Sect. 4) — mark it '*appt:%s' unless \
                      activation-time checking is intended"
                     r.Rule.name a.role r.Rule.name;
               };
             ]
         | _ -> [])
       a.membership a.conditions)

(* ------------------------------------------------------------------ *)
(* Consistency: L101 arity-mismatch                                    *)
(* ------------------------------------------------------------------ *)

let defines_role s role =
  List.exists (fun (a : Rule.activation) -> String.equal a.role role) s.s_activations

let role_def_arities s role =
  List.filter_map
    (fun (a : Rule.activation) ->
      if String.equal a.role role then Some (List.length a.params) else None)
    s.s_activations
  |> dedup

let kind_def_arities s kind =
  List.filter_map
    (fun (ap : Rule.authorization) ->
      if String.equal ap.privilege kind then Some (List.length ap.priv_args) else None)
    s.s_appointers
  |> dedup

let issues_kind s kind =
  kind_def_arities s kind <> [] || List.mem kind s.s_extra_kinds

let arity_finding ~service ~loc message =
  { code = "L101"; check = "arity-mismatch"; severity = Error; service; loc; message }

(* Several rules defining one name must agree on arity; each rule whose
   arity differs from the first definition's is flagged. *)
let def_drift ~service ~what defs =
  match defs with
  | [] | [ _ ] -> []
  | (_, first_arity, _) :: rest ->
      List.filter_map
        (fun (name, arity, loc) ->
          if arity = first_arity then None
          else
            Some
              (arity_finding ~service ~loc
                 (Printf.sprintf
                    "%s '%s' is defined here with arity %d but with arity %d elsewhere; \
                     requests and references can match only one of them"
                    what name arity first_arity)))
        rest

let group_by_name defs =
  let names = dedup (List.map (fun (n, _, _) -> n) defs) in
  List.map (fun n -> List.filter (fun (n', _, _) -> String.equal n' n) defs) names

let lint_def_arities s =
  let activation_defs =
    List.map (fun (a : Rule.activation) -> (a.role, List.length a.params, a.loc)) s.s_activations
  in
  let priv_defs =
    List.map
      (fun (p : Rule.authorization) -> (p.privilege, List.length p.priv_args, p.loc))
      s.s_authorizations
  in
  let kind_defs =
    List.map
      (fun (p : Rule.authorization) -> (p.privilege, List.length p.priv_args, p.loc))
      s.s_appointers
  in
  List.concat_map (def_drift ~service:s.s_name ~what:"role") (group_by_name activation_defs)
  @ List.concat_map (def_drift ~service:s.s_name ~what:"privilege") (group_by_name priv_defs)
  @ List.concat_map
      (def_drift ~service:s.s_name ~what:"appointment kind")
      (group_by_name kind_defs)

(* References must match the referent's arity. *)
let lint_ref_arities world s =
  let check_cred ~loc ~kind_ref (r : Rule.cred_ref) =
    let target = match r.Rule.service with None -> s.s_name | Some t -> t in
    let arity = List.length r.Rule.args in
    match find_service world target with
    | None -> []
    | Some tsvc ->
        let def_arities =
          if kind_ref then kind_def_arities tsvc r.Rule.name else role_def_arities tsvc r.Rule.name
        in
        if def_arities = [] || List.mem arity def_arities then []
        else
          [
            arity_finding ~service:s.s_name ~loc
              (Printf.sprintf
                 "%s '%s'%s is referenced with arity %d but defined with arity %s; the \
                  reference can never unify"
                 (if kind_ref then "appointment kind" else "role")
                 r.Rule.name
                 (match r.Rule.service with None -> "" | Some t -> "@" ^ t)
                 arity
                 (String.concat "/" (List.map string_of_int def_arities)));
          ]
  in
  let check_condition ~loc = function
    | Rule.Prereq r -> check_cred ~loc ~kind_ref:false r
    | Rule.Appointment r -> check_cred ~loc ~kind_ref:true r
    | Rule.Constraint _ -> []
  in
  List.concat_map
    (fun (a : Rule.activation) -> List.concat_map (check_condition ~loc:a.loc) a.conditions)
    s.s_activations
  @ List.concat_map
      (fun (auth : Rule.authorization) ->
        List.concat_map (check_cred ~loc:auth.loc ~kind_ref:false) auth.required_roles)
      (s.s_authorizations @ s.s_appointers)

(* Environmental predicates: built-ins have fixed arities; fact predicates
   must be used consistently within one service (first use is canonical). *)
let lint_env_arities s =
  let uses =
    List.concat_map
      (fun (a : Rule.activation) ->
        List.filter_map
          (function Rule.Constraint (n, args) -> Some (n, args, a.loc) | _ -> None)
          a.conditions)
      s.s_activations
    @ List.concat_map
        (fun (auth : Rule.authorization) ->
          List.map (fun (n, args) -> (n, args, auth.loc)) auth.constraints)
        (s.s_authorizations @ s.s_appointers)
  in
  let first_seen = Hashtbl.create 8 in
  List.concat_map
    (fun (name, args, loc) ->
      let base = Env.base_name name in
      let arity = List.length args in
      match builtin_arities base with
      | _ :: _ as expected ->
          if List.mem arity expected then []
          else
            [
              arity_finding ~service:s.s_name ~loc
                (Printf.sprintf
                   "built-in predicate 'env:%s' takes %s argument(s) but is used with %d; \
                    the constraint silently never holds"
                   base
                   (String.concat " or " (List.map string_of_int expected))
                   arity);
            ]
      | [] -> (
          match Hashtbl.find_opt first_seen base with
          | None ->
              Hashtbl.add first_seen base arity;
              []
          | Some expected when expected = arity -> []
          | Some expected ->
              [
                arity_finding ~service:s.s_name ~loc
                  (Printf.sprintf
                     "environmental predicate 'env:%s' is used with arity %d here but arity \
                      %d elsewhere in this policy; one of the uses can never hold"
                     base arity expected);
              ]))
    uses

(* ------------------------------------------------------------------ *)
(* Resolution: L102 unknown-role, L103 unknown-service, L104 kind      *)
(* ------------------------------------------------------------------ *)

type unresolved_ref =
  | Ref_service of { at : string; rule : string; service : string; loc : Rule.loc }
  | Ref_role of { at : string; rule : string; service : string; role : string; loc : Rule.loc }
  | Ref_kind of { at : string; rule : string; issuer : string; kind : string; loc : Rule.loc }

let resolve_refs ?(closed = true) world =
  let refs = ref [] in
  let note r = if not (List.mem r !refs) then refs := r :: !refs in
  let check_ref ~at ~rule ~loc ~kind_ref (r : Rule.cred_ref) =
    let target = match r.Rule.service with None -> at | Some t -> t in
    match find_service world target with
    | None -> if closed then note (Ref_service { at; rule; service = target; loc })
    | Some tsvc ->
        if kind_ref then begin
          if not (issues_kind tsvc r.Rule.name) then
            note (Ref_kind { at; rule; issuer = target; kind = r.Rule.name; loc })
        end
        else if not (defines_role tsvc r.Rule.name) then
          note (Ref_role { at; rule; service = target; role = r.Rule.name; loc })
  in
  List.iter
    (fun s ->
      let at = s.s_name in
      List.iter
        (fun (a : Rule.activation) ->
          List.iter
            (function
              | Rule.Prereq r -> check_ref ~at ~rule:a.role ~loc:a.loc ~kind_ref:false r
              | Rule.Appointment r -> check_ref ~at ~rule:a.role ~loc:a.loc ~kind_ref:true r
              | Rule.Constraint _ -> ())
            a.conditions)
        s.s_activations;
      List.iter
        (fun (auth : Rule.authorization) ->
          List.iter
            (check_ref ~at ~rule:("priv " ^ auth.privilege) ~loc:auth.loc ~kind_ref:false)
            auth.required_roles)
        s.s_authorizations;
      List.iter
        (fun (auth : Rule.authorization) ->
          List.iter
            (check_ref ~at ~rule:("appoint " ^ auth.privilege) ~loc:auth.loc ~kind_ref:false)
            auth.required_roles)
        s.s_appointers)
    world;
  List.rev !refs

let resolution_findings refs =
  List.map
    (function
      | Ref_service { at; rule; service; loc } ->
          {
            code = "L103";
            check = "unknown-service";
            severity = Error;
            service = at;
            loc;
            message =
              Printf.sprintf "rule '%s' references service '%s', which is not part of the \
                              analysed world" rule service;
          }
      | Ref_role { at; rule; service; loc; role } ->
          {
            code = "L102";
            check = "unknown-role";
            severity = Error;
            service = at;
            loc;
            message =
              Printf.sprintf "rule '%s' requires role '%s@%s', but service '%s' has no \
                              activation rule for it — likely a typo" rule role service service;
          }
      | Ref_kind { at; rule; issuer; kind; loc } ->
          {
            code = "L104";
            check = "unknown-appointment";
            severity = Error;
            service = at;
            loc;
            message =
              Printf.sprintf
                "rule '%s' requires appointment kind '%s' from '%s', which '%s' neither \
                 defines an appoint rule for nor is declared to issue"
                rule kind issuer issuer;
          })
    refs

(* ------------------------------------------------------------------ *)
(* Revocation cascade depth: L203                                      *)
(* ------------------------------------------------------------------ *)

let cascade_depths world =
  let memo = Hashtbl.create 32 in
  let visiting = Hashtbl.create 8 in
  let rec depth ((sname, role) as node) =
    match Hashtbl.find_opt memo node with
    | Some d -> d
    | None ->
        if Hashtbl.mem visiting node then 0 (* prerequisite cycle: contributes nothing *)
        else begin
          Hashtbl.replace visiting node ();
          let d =
            match find_service world sname with
            | None -> 0
            | Some s ->
                let rules =
                  List.filter (fun (a : Rule.activation) -> String.equal a.role role) s.s_activations
                in
                if rules = [] then 0
                else
                  1
                  + List.fold_left
                      (fun acc (a : Rule.activation) ->
                        List.fold_left
                          (fun acc condition ->
                            match condition with
                            | Rule.Prereq r ->
                                let target =
                                  match r.Rule.service with None -> sname | Some t -> t
                                in
                                max acc (depth (target, r.Rule.name))
                            | Rule.Appointment _ | Rule.Constraint _ -> acc)
                          acc a.conditions)
                      0 rules
          in
          Hashtbl.remove visiting node;
          Hashtbl.replace memo node d;
          d
        end
  in
  List.concat_map
    (fun s -> List.map (fun (a : Rule.activation) -> (s.s_name, a.role)) s.s_activations)
    world
  |> dedup
  |> List.map (fun node -> (node, depth node))

let depth_findings world ~max_cascade_depth =
  List.filter_map
    (fun (((sname, role) as node), d) ->
      if d <= max_cascade_depth then None
      else
        let loc =
          match find_service world sname with
          | None -> Rule.no_loc
          | Some s -> (
              match
                List.find_opt (fun (a : Rule.activation) -> String.equal a.role role) s.s_activations
              with
              | Some a -> a.loc
              | None -> Rule.no_loc)
        in
        ignore node;
        Some
          {
            code = "L203";
            check = "cascade-depth";
            severity = Info;
            service = sname;
            loc;
            message =
              Printf.sprintf
                "role '%s' sits at worst-case revocation cascade depth %d (threshold %d); \
                 revoking its deepest prerequisite crosses %d hops before this role \
                 deactivates (Sect. 4)"
                role d max_cascade_depth (d - 1);
          })
    (cascade_depths world)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let check ?(closed = true) ?(max_cascade_depth = 4) world =
  let per_service s =
    List.concat_map (lint_activation s) s.s_activations
    @ List.concat_map (lint_authorization s ~keyword:"priv") s.s_authorizations
    @ List.concat_map (lint_authorization s ~keyword:"appoint") s.s_appointers
    @ List.concat_map (lint_membership s) s.s_activations
    @ lint_def_arities s
    @ lint_ref_arities world s
    @ lint_env_arities s
  in
  let findings =
    List.concat_map per_service world
    @ resolution_findings (resolve_refs ~closed world)
    @ depth_findings world ~max_cascade_depth
  in
  List.sort
    (fun a b ->
      compare
        (a.service, a.loc.Rule.line, a.loc.Rule.col, a.code, a.message)
        (b.service, b.loc.Rule.line, b.loc.Rule.col, b.code, b.message))
    findings

let install_blocking f =
  f.severity = Error && List.mem f.code [ "L001"; "L003"; "L101" ]

(* ------------------------------------------------------------------ *)
(* Waivers                                                             *)
(* ------------------------------------------------------------------ *)

let find_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let waivers src =
  let marker = "lint:allow" in
  String.split_on_char '\n' src
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (line, text) ->
         match find_substring text marker with
         | None -> None
         | Some at ->
             (* A standalone comment waives the statement on the next line;
                a trailing comment waives its own line. *)
             let comment_start =
               let cand sub =
                 match find_substring text sub with Some i when i <= at -> Some i | _ -> None
               in
               match (cand "//", cand "#") with
               | Some a, Some b -> Some (min a b)
               | (Some _ as s), None | None, (Some _ as s) -> s
               | None, None -> None
             in
             let standalone =
               match comment_start with
               | Some i -> String.trim (String.sub text 0 i) = ""
               | None -> false
             in
             let line = if standalone then line + 1 else line in
             let rest = String.sub text (at + String.length marker) (String.length text - at - String.length marker) in
             let is_code_char c =
               (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
               || c = '_' || c = '-'
             in
             (* Codes: comma-separated tokens immediately after the marker. *)
             let buf = Buffer.create 16 in
             let codes = ref [] in
             let flush () =
               if Buffer.length buf > 0 then begin
                 codes := Buffer.contents buf :: !codes;
                 Buffer.clear buf
               end
             in
             let stop = ref false in
             String.iter
               (fun c ->
                 if not !stop then
                   if is_code_char c then Buffer.add_char buf c
                   else if c = ' ' || c = '\t' then (if Buffer.length buf > 0 then stop := true)
                   else if c = ',' then flush ()
                   else stop := true)
               (String.trim rest);
             flush ();
             let codes = List.rev !codes in
             if codes = [] then None else Some (line, codes))

let apply_waivers ~waivers findings =
  List.filter
    (fun f ->
      not
        (List.exists
           (fun (line, codes) ->
             line = f.loc.Rule.line && (List.mem f.code codes || List.mem f.check codes))
           waivers))
    findings

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json ?(depths = []) findings =
  let finding_json f =
    Printf.sprintf
      "{\"code\":%s,\"check\":%s,\"severity\":%s,\"service\":%s,\"line\":%d,\"col\":%d,\"message\":%s}"
      (json_string f.code) (json_string f.check)
      (json_string (severity_to_string f.severity))
      (json_string f.service) f.loc.Rule.line f.loc.Rule.col (json_string f.message)
  in
  let count sev = List.length (List.filter (fun f -> f.severity = sev) findings) in
  let depth_json ((service, role), d) =
    Printf.sprintf "{\"service\":%s,\"role\":%s,\"depth\":%d}" (json_string service)
      (json_string role) d
  in
  Printf.sprintf
    "{\"findings\":[%s],\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"cascade_depths\":[%s]}"
    (String.concat "," (List.map finding_json findings))
    (count Error) (count Warning) (count Info)
    (String.concat "," (List.map depth_json depths))
