(** Symbolic goal-reachability: the adversarial question the paper's formal
    policies make answerable — {e can a principal holding only these
    credentials ever activate that role, under any environment?}

    {!Analysis} answers the policy author's benign questions (dead roles,
    dangling references) by assuming every environmental constraint
    satisfiable and every appointment in hand. This module answers the
    adversary's question instead: it computes the least fixpoint of
    reachable role activations over the world's Horn rules, starting from
    an explicit credential set, handling

    - {b appointment chains}: an appointment the adversary does not hold is
      still obtainable if an [appoint] rule for the kind fires from roles
      the adversary can reach — self-issuance across services;
    - {b environment lattices}: each environmental predicate is {e free}
      (the adversary may wait for / steer it), {e pinned true} or {e pinned
      false}; verdicts are three-valued accordingly;
    - {b negation as failure} on environmental constraints: a negated
      constraint over a pinned predicate is decided, over a free one it is
      an assumption the witness records;
    - {b ground pure built-ins}: [env:eq(1, 1)] and friends are evaluated,
      not assumed (time-dependent built-ins stay contingent);
    - {b activation cycles}: roles reachable only through each other stay
      unreachable — the fixpoint solves what the linter merely flags.

    Every non-[Unreachable] verdict carries a {e witness}: the derivation
    tree of rule firings, held credentials, chained appointments and
    environment assumptions that realises the goal. {!plan} flattens a
    witness into the concrete activation/appointment steps a live principal
    would take — the scenario fuzzer replays these against the real
    [Service]/[Solve] engine, so the static and dynamic layers keep each
    other honest (test/test_fuzz.ml).

    {!findings} folds the analysis into CI as lint-grade diagnostics:

    - {b R001 open-privilege} (error): a role is activable with an {e empty}
      credential wallet (possibly contingent on environment) — anyone can
      hold it;
    - {b R002 dead-grant} (error): a role no credential set and no
      environment can ever fire — stronger than {!Analysis}'s dead-role
      report because appointment chains are considered before giving up;
    - {b R003 revocation-exempt} (warning): an unmonitored appointment
      condition sits on a derivation path to a {e sensitive} role (one that
      guards a privilege or appointment issuance); revoking that credential
      will never cascade into the role (Sect. 4's active-security guarantee
      silently does not apply).

    [lint:allow R00x] waivers work exactly as for L-rules
    ({!Lint.apply_waivers}). *)

(** The adversary's starting credential set. *)
type adversary = {
  held_appointments : (string * string) list;
      (** [(issuer service, kind)] appointment certificates in the wallet *)
  held_roles : (string * string) list;
      (** [(service, role)] RMCs already held (e.g. an insider's session) *)
}

val no_credentials : adversary
(** The empty wallet — the default adversary, and the R001 probe. *)

val permissive : Analysis.world_policy -> adversary
(** Every appointment kind every service can issue, no roles — the
    best-case principal {!Analysis.analyse} defaults to; the R002 probe. *)

type verdict =
  | Reachable  (** derivable whatever the environment does *)
  | Env_contingent
      (** derivable iff the free environmental predicates recorded in the
          goal's [assumptions] cooperate *)
  | Unreachable  (** underivable under every environment valuation *)

val verdict_to_string : verdict -> string
(** ["reachable"], ["env-contingent"], ["unreachable"]. *)

(** What a rule firing derives. *)
type head = Role of string | Appoint of string

(** A derivation tree for a goal. *)
type witness =
  | Held of { service : string; role : string }
      (** an RMC the adversary started with *)
  | Fired of {
      service : string;  (** service owning the fired rule *)
      head : head;
      loc : Rule.loc;
      premises : premise list;  (** one per satisfied body condition *)
    }

and premise =
  | Role_premise of witness  (** prerequisite role, with its derivation *)
  | Appointment_premise of {
      issuer : string;
      kind : string;
      monitored : bool;  (** the condition's membership mark *)
      via : witness option;
          (** [None]: held by the adversary; [Some w]: self-issued through
              the [appoint]-rule derivation [w] (an appointment chain) *)
    }
  | Env_premise of {
      pred : string;  (** constraint name, ['!']-prefixed when negated *)
      args : Term.t list;
      assumed : bool;
          (** [true]: the predicate is free and the derivation assumes it
              favourable; [false]: pinned or evaluated *)
    }

type goal = {
  g_service : string;
  g_role : string;
  g_verdict : verdict;
  g_witness : witness option;  (** present unless [Unreachable] *)
  g_assumptions : (string * bool) list;
      (** free environmental predicates the witness assumes, as
          [(base name, required truth)]; non-empty iff [Env_contingent] *)
}

type result = {
  goals : goal list;  (** every defined (service, role), sorted *)
  r_adversary : adversary;
  r_pins : (string * bool) list;
}

val analyse :
  ?adversary:adversary ->
  ?pins:(string * bool) list ->
  Analysis.world_policy ->
  result
(** [analyse ~adversary ~pins world] computes the reachability fixpoint.
    [adversary] defaults to {!no_credentials} — the {e worst}-case wallet;
    contrast {!Analysis.analyse}, whose optional [held_appointments]
    defaults to the best case. [pins] maps environmental predicate base
    names to a pinned truth value; unpinned predicates are free. *)

val goal_for : result -> service:string -> role:string -> goal option

(** One concrete step of realising a witness against the live engine. *)
type step =
  | Activate of { service : string; role : string }
  | Self_appoint of { issuer : string; kind : string }

val plan : witness -> step list
(** The witness flattened into dependency order — prerequisites before
    dependents, appointment issuance before use — with duplicates removed.
    Executing the steps in order against a live world (fresh session, the
    adversary's wallet) must grant every one; the fuzzer enforces this. *)

val findings : Analysis.world_policy -> Lint.finding list
(** The R-rule catalogue over the world, sorted like {!Lint.check} output
    and carrying rule positions, so [oasisctl analyze] gates CI exactly as
    [oasisctl lint] does. *)

val pp_witness : Format.formatter -> witness -> unit
(** Indented derivation tree. *)

val pp_goal : Format.formatter -> goal -> unit
val pp_result : Format.formatter -> result -> unit

val to_json : ?findings:Lint.finding list -> result -> string
(** Machine-readable report:
    [{"adversary":{...},"pins":[...],"goals":[{"service","role","verdict",
    "assumptions":[...],"witness":{...}|null}...],"findings":[...],
    "errors":N,"warnings":N,"infos":N}]. Findings use the same shape as
    {!Lint.to_json}. *)
