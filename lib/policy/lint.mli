(** Static analysis (linting) of OASIS policies before deployment.

    The paper's premise is that each service autonomously authors its own
    Horn-clause policy: "the formal expression of policy and its automatic
    deployment" (Sect. 1) is all that stands between a typo and a live
    access-control hole. This module checks rule-level soundness statically,
    producing severity-ranked diagnostics located at the offending
    statement's [file:line:col] — errors that today would only surface as
    request-time [Bad_request] refusals (or not at all).

    {2 Rule catalogue}

    Dataflow (Sect. 2 — rules must issue {e ground} role certificates):
    - {b L001 unbound-head} (error): a head parameter of a parametrised role
      appears in no condition at all. The rule can neither derive the
      parameter (activating without pinning it raises [Solve.Unbound_head])
      nor validate a caller-pinned value — any value is accepted unchecked.
      Parameters bound only by computed constraints ([env:eq(u, 10)]) are
      deliberately accepted: the caller pins them and the constraint checks
      them.
    - {b L002 singleton-var} (warning): a variable occurs exactly once in
      the rule — usually a typo for another variable. Prefix the name with
      ['_'] to mark an intentional don't-care ([hr_admin(_a)]).
    - {b L003 nonground-negation} (error): a negated environmental
      constraint has a variable not bound by an earlier condition in
      left-to-right solve order. Negation as failure is sound only over
      ground instances; at request time this raises
      [Solve.Nonground_negation] and the service answers [Bad_request].

    Consistency:
    - {b L101 arity-mismatch} (error): a role, privilege, appointment kind
      or environmental predicate is used at inconsistent arities across
      rules (and across services); built-in predicates are checked against
      {!Env.builtin_predicates}. Mismatched references can never unify.
    - {b L102 unknown-role} (error): a prerequisite names a role its target
      service never defines.
    - {b L103 unknown-service} (error, closed worlds only): a reference
      names a service outside the analysed world.
    - {b L104 unknown-appointment} (error): an appointment condition names
      a kind its issuer neither defines an [appoint] rule for nor is
      declared to issue externally ([extra_kinds]).

    Membership / revocation (Sect. 4 — active security):
    - {b L201 unmonitorable-membership} (warning): a membership-marked
      constraint over a pure built-in predicate ([*env:eq(...)]); no fact
      change or timer can ever re-trigger it, so the mark is dead.
    - {b L202 unmonitored-appointment} (warning): an appointment condition
      without the ['*'] mark; revoking the certificate will never cascade
      into the role, silently breaking Sect. 4's guarantee that session
      trees collapse.
    - {b L203 cascade-depth} (info): a role's worst-case revocation cascade
      depth (longest prerequisite chain) exceeds the threshold; deep chains
      stretch the paper's "immediate" revocation across many hops.

    Waivers: a comment containing [lint:allow CODE[,CODE...]] on a
    statement's first line, or on the line directly above it, suppresses
    those findings ({!waivers}, {!apply_waivers}). *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

type finding = {
  code : string;  (** stable diagnostic code, e.g. ["L001"] *)
  check : string;  (** human name of the check, e.g. ["unbound-head"] *)
  severity : severity;
  service : string;  (** service whose policy contains the statement *)
  loc : Rule.loc;  (** statement position; {!Rule.no_loc} if programmatic *)
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit
(** [line:col: error L001 [unbound-head] message (service)] — one line,
    compiler-diagnostic style. *)

(** One service's policy, as the linter sees it. *)
type service = {
  s_name : string;
  s_activations : Rule.activation list;
  s_authorizations : Rule.authorization list;  (** [priv] rules *)
  s_appointers : Rule.authorization list;  (** [appoint] rules *)
  s_extra_kinds : string list;
      (** appointment kinds this service issues through channels other than
          [appoint] rules (e.g. a CIV's administrative interface) *)
}

val of_statements : name:string -> ?extra_kinds:string list -> Parser.statement list -> service

(** An unresolved cross-reference, structurally (shared with
    {!Analysis.analyse}'s [unresolved] report). [rule] is the defining
    role name, ["priv p"] or ["appoint k"]. *)
type unresolved_ref =
  | Ref_service of { at : string; rule : string; service : string; loc : Rule.loc }
  | Ref_role of { at : string; rule : string; service : string; role : string; loc : Rule.loc }
  | Ref_kind of { at : string; rule : string; issuer : string; kind : string; loc : Rule.loc }

val resolve_refs : ?closed:bool -> service list -> unresolved_ref list
(** Every dangling reference in the world. [closed] (default [true]) treats
    services outside the list as unknown ([Ref_service]); pass [false] when
    linting a single service out of context — references to other services
    are then assumed resolvable and skipped. *)

val cascade_depths : service list -> ((string * string) * int) list
(** Worst-case revocation cascade depth per defined [(service, role)]:
    1 for roles with no prerequisite roles, else 1 + the deepest
    prerequisite's depth. Roles on a prerequisite cycle, or depending on
    unresolvable prerequisites, are reported at the depth of their
    resolvable part. Sorted. *)

val check : ?closed:bool -> ?max_cascade_depth:int -> service list -> finding list
(** All findings over the world, sorted by service, then position, then
    code. [closed] as in {!resolve_refs}. [max_cascade_depth] (default 4)
    bounds the depth above which L203 is reported. *)

val install_blocking : finding -> bool
(** Whether a finding should block [Service.install_policy] under
    [strict_install]: error-severity findings whose truth does not depend
    on other services' policies (L001, L003, L101) — exactly the class
    that can only ever fail at request time. Cross-service resolution
    (L10x) is a world property, enforced by [oasisctl lint] /
    [analyze-world] instead. *)

val waivers : string -> (int * string list) list
(** Scans policy source text for [lint:allow] comments: each result is
    [(line, codes)] where [line] is the statement line the waiver applies
    to — a standalone comment line waives the line below it, a trailing
    comment waives its own line. [codes] accepts either diagnostic codes
    ([L202]) or check names ([unmonitored-appointment]). *)

val apply_waivers : waivers:(int * string list) list -> finding list -> finding list
(** Drops findings whose code or check name is waived on the finding's
    line. *)

val to_json : ?depths:((string * string) * int) list -> finding list -> string
(** Machine-readable report:
    [{"findings":[{"code","check","severity","service","line","col",
    "message"}...],"errors":N,"warnings":N,"infos":N,
    "cascade_depths":[{"service","role","depth"}...]}]. *)
