(** Backtracking evaluation of activation and authorization rules.

    The solver proves a rule's body from the credentials a principal has
    presented plus the environment, binding role parameters by unification.
    Conditions are tried left to right with backtracking, so policy authors
    order variable-binding conditions (credentials, fact lookups) before
    ground checks — the convention used throughout the examples.

    A successful proof records {e which} credential supported each
    condition: the active-security layer needs exactly this to wire event
    channels for the membership rule (Fig. 5). *)

(** A candidate credential as abstracted by the credential store: the solver
    never sees signatures, only validated content. *)
type cred = {
  cred_id : Oasis_util.Ident.t;  (** certificate identifier *)
  issuer : Oasis_util.Ident.t;  (** issuing service *)
  cred_name : string;  (** role name / appointment kind *)
  cred_args : Oasis_util.Value.t list;
}

(** How the store and environment answer the solver. [service]/[issuer]
    filters carry the {e symbolic} names out of the rule; the store resolves
    them. *)
type context = {
  find_rmcs : service:string option -> name:string -> cred list;
  find_appointments : issuer:string option -> name:string -> cred list;
  env_check : string -> Oasis_util.Value.t list -> bool;
  env_enumerate : string -> Oasis_util.Value.t list list;
}

type support =
  | By_rmc of cred
  | By_appointment of cred
  | By_env of string * Oasis_util.Value.t list
      (** the ground instance that held *)

val pp_support : Format.formatter -> support -> unit

type proof = {
  rule : Rule.activation;
  subst : Term.Subst.t;
  role_args : Oasis_util.Value.t list;  (** ground head parameters *)
  support : support list;  (** one entry per body condition, in order *)
}

exception Unbound_head of string * string
(** [(role, variable)]: the rule proved but left a head parameter unbound —
    a policy bug; RMCs must be ground (Fig. 4 protects concrete fields). *)

exception Nonground_negation of string
(** A negated environmental constraint (e.g. [env:!excluded(doc, pat)]) was
    reached with unbound arguments. Negation as failure cannot enumerate the
    (unbounded) complement of a predicate, so earlier conditions must bind
    every variable it mentions; anything else is a policy configuration
    error that must surface loudly rather than yield "no proof". *)

val activation :
  ?obs:Oasis_obs.Obs.t -> context -> Rule.activation -> ?seed:Term.Subst.t -> unit -> proof option
(** First proof found, or [None]. [seed] pre-binds head variables when the
    principal requests specific parameters (e.g. a particular patient).
    With [obs], condition visits feed the [solve.steps{kind=activation}]
    histogram and tracing brackets the search in a [solve.activation] span
    labelled with the role. *)

val activation_all :
  ?obs:Oasis_obs.Obs.t -> context -> Rule.activation -> ?seed:Term.Subst.t -> unit -> proof list
(** All proofs (distinct supporting-credential combinations); used by tests
    and by the monitor when re-validating after a credential loss. *)

val authorization :
  ?obs:Oasis_obs.Obs.t ->
  context ->
  Rule.authorization ->
  ?seed:Term.Subst.t ->
  unit ->
  (Term.Subst.t * support list) option
(** Proves an invocation rule: required roles first, then constraints. *)
