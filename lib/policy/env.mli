(** Environmental constraints (Sect. 2).

    "Role activation rules may include environmental constraints ... the time
    of day, the location or name of a computer, that the user is a member of
    a group (ascertained by database lookup at some service), that parameters
    are related in a specified way, or that the user is a specified exception
    to a general category."

    An [Env.t] holds two kinds of predicate:
    - {b facts}: extensional ground tuples asserted and retracted at run time
      (database lookups, duty rosters, patient registration, exception lists);
    - {b computed predicates}: intensional checks over bound parameters
      (comparisons, time-of-day windows).

    Fact changes are announced through {!on_change} so the active security
    layer can re-evaluate membership conditions without polling. *)

type t

exception Unknown_predicate of string

val create : Oasis_util.Clock.t -> t
(** A fresh environment with the built-in computed predicates registered:
    [eq], [ne], [lt], [le], [gt], [ge] (binary, over comparable values),
    [before(t)] (now < t), [after(t)] (now ≥ t), [hour_between(lo, hi)]
    (time of day, hours in 0–24, wrapping windows allowed), and
    [trust_score(subject, threshold)] (live assessor score clears the
    threshold; fail-closed [false] until a world bridges in its assessor
    via {!register}). *)

val clock : t -> Oasis_util.Clock.t

val builtin_predicates : (string * int * [ `Pure | `Timed | `Live ]) list
(** The computed predicates {!create} registers, as [(name, arity, kind)].
    [`Pure] predicates depend only on their arguments — their truth value
    never changes spontaneously, so a membership mark on one cannot be
    monitored; [`Timed] predicates read the clock and are re-checked by
    timers ({!next_change_time}); [`Live] predicates read external mutable
    state whose owner announces changes with {!poke} (the trust assessor
    behind [trust_score(subject, threshold)]), so marks on them are
    monitorable without timers. The policy linter keys its
    arity-consistency and unmonitorable-membership checks off this list. *)

val declare_fact : t -> string -> unit
(** Declares a fact predicate that may (for now) have no tuples — e.g. an
    exclusion list with no exclusions. [check] and [enumerate] on undeclared
    names raise {!Unknown_predicate}; declaring keeps typo detection while
    letting empty predicates answer [false] / [[]]. Implied by
    {!assert_fact}. *)

val assert_fact : t -> string -> Oasis_util.Value.t list -> unit
(** Idempotent. Declares the predicate if needed. *)

val retract_fact : t -> string -> Oasis_util.Value.t list -> unit
(** Idempotent. *)

val register : t -> string -> (Oasis_util.Value.t list -> bool) -> unit
(** Registers a computed predicate. Shadows any same-named registration;
    raises [Invalid_argument] if the name is in use by facts. *)

val register_hold : t -> string -> (Oasis_util.Value.t list -> bool) -> unit
(** Registers the {e hold} variant of an already-registered computed
    predicate: the laxer condition an {e existing} membership must satisfy
    to stay active when the predicate is re-checked (gate hysteresis,
    DESIGN.md §16). {!check} keeps answering the grant condition; only
    {!check_hold} consults this. Raises [Invalid_argument] when [name] is
    not a computed predicate. *)

val check : t -> string -> Oasis_util.Value.t list -> bool
(** Evaluates a ground constraint. A leading ['!'] in the name negates the
    underlying predicate (negation as failure, used for patient exceptions
    such as [!excluded(doctor, patient)]). Raises {!Unknown_predicate} for a
    name that is neither a fact predicate nor computed — a policy
    configuration error that must surface loudly. *)

val check_hold : t -> string -> Oasis_util.Value.t list -> bool
(** Like {!check} but answers the hold condition when one is registered
    (falling back to the grant condition otherwise) — what membership
    re-checks ask so a score dithering inside the hysteresis band does not
    flap the revoke cascade. Negation applies to the hold answer of the
    base predicate. New activations must still pass {!check}. *)

val enumerate : t -> string -> Oasis_util.Value.t list list
(** All ground tuples of a fact predicate (for binding free variables during
    rule evaluation). Computed and negated predicates enumerate to [] —
    their variables must be bound by earlier conditions. *)

val fact_predicate : t -> string -> bool
(** Whether the (un-negated) name denotes a fact predicate. *)

val base_name : string -> string
(** The predicate name with any leading ['!'] negation marker removed.
    Change notifications carry base names, so watchers index by this. *)

val negated : string -> bool
(** Whether the name carries the ['!'] negation marker. *)

val next_change_time : t -> string -> Oasis_util.Value.t list -> float option
(** For time-dependent computed predicates, the earliest future instant at
    which the constraint's truth value can change ([before(t)] answers [t]);
    the membership monitor schedules a re-check then. [None] for facts and
    time-independent predicates. *)

val on_change : t -> (string -> Oasis_util.Value.t list -> [ `Asserted | `Retracted ] -> unit) -> unit
(** Registers a listener for fact changes. Listeners run synchronously in
    assertion order; the active-security layer bridges them onto event
    channels. *)

val poke : t -> string -> unit
(** Announces that the truth value of a computed predicate may have
    changed (e.g. live assessor state behind [trust_score] moved).
    Listeners receive the base name with an empty tuple; watchers
    re-evaluate their own stored ground instances, exactly as for fact
    changes. Raises [Invalid_argument] if the name is not a computed
    predicate — facts announce themselves. *)

val fact_count : t -> int
