module Value = Oasis_util.Value
module Ident = Oasis_util.Ident
module Subst = Term.Subst
module Obs = Oasis_obs.Obs

type cred = {
  cred_id : Ident.t;
  issuer : Ident.t;
  cred_name : string;
  cred_args : Value.t list;
}

type context = {
  find_rmcs : service:string option -> name:string -> cred list;
  find_appointments : issuer:string option -> name:string -> cred list;
  env_check : string -> Value.t list -> bool;
  env_enumerate : string -> Value.t list list;
}

type support =
  | By_rmc of cred
  | By_appointment of cred
  | By_env of string * Value.t list

let pp_support ppf = function
  | By_rmc c -> Format.fprintf ppf "rmc:%a=%s" Ident.pp c.cred_id c.cred_name
  | By_appointment c -> Format.fprintf ppf "appt:%a=%s" Ident.pp c.cred_id c.cred_name
  | By_env (name, args) ->
      Format.fprintf ppf "env:%s(%a)" name
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Value.pp)
        args

type proof = {
  rule : Rule.activation;
  subst : Subst.t;
  role_args : Value.t list;
  support : support list;
}

exception Unbound_head of string * string
exception Nonground_negation of string

(* Generic depth-first proof search over the conditions. [emit] receives each
   full solution; it returns [true] to continue searching or [false] to cut.
   [on_step] fires once per condition visit — the proof-search cost metric. *)
let search ?(on_step = fun () -> ()) ctx conditions ~seed ~emit =
  let rec go subst acc = function
    | [] -> emit subst (List.rev acc)
    | condition :: rest ->
        on_step ();
        let try_creds kind candidates (r : Rule.cred_ref) =
          (* Try each candidate credential that unifies with the pattern. *)
          let rec loop = function
            | [] -> true
            | cred :: more -> (
                match Term.unify_args subst r.Rule.args cred.cred_args with
                | None -> loop more
                | Some subst' ->
                    if go subst' (kind cred :: acc) rest then loop more else false)
          in
          loop candidates
        in
        (match condition with
        | Rule.Prereq r ->
            try_creds (fun c -> By_rmc c) (ctx.find_rmcs ~service:r.service ~name:r.name) r
        | Rule.Appointment r ->
            try_creds
              (fun c -> By_appointment c)
              (ctx.find_appointments ~issuer:r.service ~name:r.name)
              r
        | Rule.Constraint (name, args) -> (
            match List.map (Term.ground subst) args with
            | grounded when List.for_all Option.is_some grounded ->
                let values = List.map Option.get grounded in
                if ctx.env_check name values then
                  go subst (By_env (name, values) :: acc) rest
                else true
            | _ when String.length name > 0 && name.[0] = '!' ->
                (* A negated constraint with free variables would enumerate
                   no tuples and "prove" nothing, silently. Negation as
                   failure is only sound over ground instances: refuse. *)
                raise (Nonground_negation name)
            | _ ->
                (* Free variables: enumerate matching facts to bind them. *)
                let rec loop = function
                  | [] -> true
                  | tuple :: more -> (
                      match Term.unify_args subst args tuple with
                      | None -> loop more
                      | Some subst' ->
                          if go subst' (By_env (name, tuple) :: acc) rest then loop more
                          else false)
                in
                loop (ctx.env_enumerate name)))
  in
  ignore (go seed [] conditions)

let ground_head (rule : Rule.activation) subst =
  List.map
    (fun param ->
      match Term.ground subst param with
      | Some v -> v
      | None ->
          let var = match param with Term.Var v -> v | Term.Const _ -> assert false in
          raise (Unbound_head (rule.role, var)))
    rule.params

(* Wraps one solver entry point: counts condition visits into the
   [solve.steps] histogram and (when tracing) brackets the search in a
   [solve.<kind>] span. Without [obs] the search runs untouched. *)
let observed ?obs ~kind ~rule f =
  match obs with
  | None -> f (fun () -> ())
  | Some obs ->
      let steps = ref 0 in
      let run () = f (fun () -> incr steps) in
      let result =
        if Obs.tracing obs then Obs.span obs ("solve." ^ kind) ~labels:[ ("rule", rule) ] run
        else run ()
      in
      Obs.Histogram.observe
        (Obs.histogram obs "solve.steps" ~labels:[ ("kind", kind) ])
        (float_of_int !steps);
      result

let activation ?obs ctx (rule : Rule.activation) ?(seed = Subst.empty) () =
  observed ?obs ~kind:"activation" ~rule:rule.role (fun on_step ->
      let result = ref None in
      search ~on_step ctx rule.conditions ~seed ~emit:(fun subst support ->
          result := Some { rule; subst; role_args = ground_head rule subst; support };
          false);
      !result)

let activation_all ?obs ctx (rule : Rule.activation) ?(seed = Subst.empty) () =
  observed ?obs ~kind:"activation_all" ~rule:rule.role (fun on_step ->
      let results = ref [] in
      search ~on_step ctx rule.conditions ~seed ~emit:(fun subst support ->
          results := { rule; subst; role_args = ground_head rule subst; support } :: !results;
          true);
      List.rev !results)

let authorization ?obs ctx (auth : Rule.authorization) ?(seed = Subst.empty) () =
  observed ?obs ~kind:"authorization" ~rule:auth.privilege (fun on_step ->
      let conditions =
        List.map (fun r -> Rule.Prereq r) auth.required_roles
        @ List.map (fun (name, args) -> Rule.Constraint (name, args)) auth.constraints
      in
      let result = ref None in
      search ~on_step ctx conditions ~seed ~emit:(fun subst support ->
          result := Some (subst, support);
          false);
      !result)
