(** Role activation rules, membership rules and authorization rules.

    Sect. 2: "Activation of any role in OASIS is explicitly controlled by a
    role activation rule [which] specifies, in Horn clause logic, the
    conditions that a user must meet in order to activate the role. The
    conditions may include prerequisite roles, appointment credentials and
    environmental constraints." The membership rule is the subset of those
    conditions that "must continue to be true for the role to remain
    active"; authorization rules guard service invocation. *)

(** Source position of a rule in its policy file: 1-based line and column
    of the statement's first token. Rules built programmatically carry
    {!no_loc} (line 0). The linter reports findings at these positions. *)
type loc = { line : int; col : int }

val no_loc : loc

val pp_loc : Format.formatter -> loc -> unit
(** ["line:col"], or ["<unlocated>"] for {!no_loc}. *)

(** A reference to a credential-shaped condition. [service = None] means the
    rule-owning service itself; [Some name] is a symbolic service name
    resolved against the world's registry when policy is installed. *)
type cred_ref = {
  service : string option;
  name : string;  (** role name or appointment kind *)
  args : Term.t list;
}

type condition =
  | Prereq of cred_ref  (** an RMC for a prerequisite role *)
  | Appointment of cred_ref  (** an appointment certificate *)
  | Constraint of string * Term.t list  (** environmental predicate *)

val pp_condition : Format.formatter -> condition -> unit

(** One activation rule for a role. A role may have several rules; any
    satisfied rule admits the principal (Horn clause disjunction). *)
type activation = {
  role : string;
  params : Term.t list;  (** head parameters, usually variables *)
  conditions : condition list;
  membership : bool list;
      (** same length as [conditions]; [true] marks a membership condition
          that is actively monitored for the life of the role *)
  initial : bool;
      (** an initial role starts a session; its rule has no prerequisite
          roles (Sect. 2) *)
  loc : loc;  (** source position; {!no_loc} for programmatic rules *)
}

val activation :
  ?initial:bool ->
  ?loc:loc ->
  role:string ->
  params:Term.t list ->
  (bool * condition) list ->
  activation
(** [(monitored, condition)] pairs. Raises [Invalid_argument] if [initial]
    is set and a prerequisite role appears, or if a non-initial rule has no
    conditions at all. *)

(** Authorization of a privilege (method invocation) at a service:
    "possession of role membership certificates of this and other services
    together with environmental constraints". *)
type authorization = {
  privilege : string;
  priv_args : Term.t list;
  required_roles : cred_ref list;
  constraints : (string * Term.t list) list;
  loc : loc;  (** source position; {!no_loc} for programmatic rules *)
}

val pp_activation : Format.formatter -> activation -> unit
val pp_authorization : Format.formatter -> authorization -> unit

val head_vars : activation -> string list
(** Variables appearing in the head. *)

val membership_conditions : activation -> (int * condition) list
(** Indexed conditions tagged for monitoring. *)
