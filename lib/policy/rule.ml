type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }

let pp_loc ppf { line; col } =
  if line = 0 then Format.pp_print_string ppf "<unlocated>"
  else Format.fprintf ppf "%d:%d" line col

type cred_ref = { service : string option; name : string; args : Term.t list }

type condition =
  | Prereq of cred_ref
  | Appointment of cred_ref
  | Constraint of string * Term.t list

let pp_args ppf args =
  if args <> [] then
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Term.pp)
      args

let pp_cred_ref ppf { service; name; args } =
  Format.fprintf ppf "%s%a" name pp_args args;
  match service with None -> () | Some s -> Format.fprintf ppf "@@%s" s

let pp_condition ppf = function
  | Prereq r -> pp_cred_ref ppf r
  | Appointment r -> Format.fprintf ppf "appt:%a" pp_cred_ref r
  | Constraint (name, args) -> Format.fprintf ppf "env:%s%a" name pp_args args

type activation = {
  role : string;
  params : Term.t list;
  conditions : condition list;
  membership : bool list;
  initial : bool;
  loc : loc;
}

let activation ?(initial = false) ?(loc = no_loc) ~role ~params tagged =
  let conditions = List.map snd tagged in
  let membership = List.map fst tagged in
  if initial && List.exists (function Prereq _ -> true | _ -> false) conditions then
    invalid_arg
      (Printf.sprintf "Rule.activation: initial role %s cannot require a prerequisite role" role);
  if (not initial) && conditions = [] then
    invalid_arg (Printf.sprintf "Rule.activation: non-initial role %s needs conditions" role);
  { role; params; conditions; membership; initial; loc }

type authorization = {
  privilege : string;
  priv_args : Term.t list;
  required_roles : cred_ref list;
  constraints : (string * Term.t list) list;
  loc : loc;
}

let pp_activation ppf rule =
  let pp_tagged ppf (monitored, condition) =
    Format.fprintf ppf "%s%a" (if monitored then "*" else "") pp_condition condition
  in
  Format.fprintf ppf "%s%a <- %a%s" rule.role pp_args rule.params
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_tagged)
    (List.combine rule.membership rule.conditions)
    (if rule.initial then " [initial]" else "")

let pp_authorization ppf auth =
  Format.fprintf ppf "priv %s%a <- %a" auth.privilege pp_args auth.priv_args
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf c -> pp_condition ppf c))
    (List.map (fun r -> Prereq r) auth.required_roles
    @ List.map (fun (n, a) -> Constraint (n, a)) auth.constraints)

let head_vars rule = Term.vars rule.params

let membership_conditions rule =
  List.filteri (fun i _ -> List.nth rule.membership i) (List.mapi (fun i c -> (i, c)) rule.conditions)
  |> List.map (fun (i, c) -> (i, c))
