module Value = Oasis_util.Value
module Clock = Oasis_util.Clock

exception Unknown_predicate of string

module Tuple = struct
  type t = Value.t list

  let compare = List.compare Value.compare
end

module Tuple_set = Set.Make (Tuple)

type t = {
  clock : Clock.t;
  facts : (string, Tuple_set.t ref) Hashtbl.t;
  computed : (string, Value.t list -> bool) Hashtbl.t;
  holds : (string, Value.t list -> bool) Hashtbl.t;
  mutable listeners : (string -> Value.t list -> [ `Asserted | `Retracted ] -> unit) list;
}

let clock t = t.clock

let seconds_per_hour = 3600.0
let seconds_per_day = 86400.0

let as_float = function
  | Value.Int n -> Some (float_of_int n)
  | Value.Time f -> Some f
  | Value.Str _ | Value.Bool _ | Value.Id _ -> None

let numeric_cmp op = function
  | [ a; b ] -> (
      match (as_float a, as_float b) with
      | Some x, Some y -> op (Float.compare x y) 0
      | _ -> op (Value.compare a b) 0)
  | _ -> false

(* The static shape of the built-ins registered by [create]. `Pure
   predicates depend only on their arguments: their truth value never
   changes spontaneously, so a membership mark on one is unmonitorable
   (nothing ever re-triggers the check). `Timed predicates read the clock
   and are monitored by re-check timers. `Live predicates read external
   mutable state (the trust assessor); their owner announces changes with
   [poke], so marks on them are monitorable without timers. The linter
   consumes this list; keep it in step with [register_builtins]. *)
let builtin_predicates =
  [
    ("eq", 2, `Pure);
    ("ne", 2, `Pure);
    ("lt", 2, `Pure);
    ("le", 2, `Pure);
    ("gt", 2, `Pure);
    ("ge", 2, `Pure);
    ("before", 1, `Timed);
    ("after", 1, `Timed);
    ("hour_between", 2, `Timed);
    ("trust_score", 2, `Live);
    (* With the optional hysteresis band: trust_score(subject, theta, delta)
       grants at score >= theta and holds existing memberships down to
       theta - delta. The parser's [>= theta ~ delta] sugar produces this
       form. *)
    ("trust_score", 3, `Live);
  ]

let register_builtins t =
  let reg name f = Hashtbl.replace t.computed name f in
  reg "eq" (numeric_cmp ( = ));
  reg "ne" (numeric_cmp ( <> ));
  reg "lt" (numeric_cmp ( < ));
  reg "le" (numeric_cmp ( <= ));
  reg "gt" (numeric_cmp ( > ));
  reg "ge" (numeric_cmp ( >= ));
  reg "before" (function
    | [ v ] -> ( match as_float v with Some limit -> Clock.now t.clock < limit | None -> false)
    | _ -> false);
  reg "after" (function
    | [ v ] -> ( match as_float v with Some start -> Clock.now t.clock >= start | None -> false)
    | _ -> false);
  reg "hour_between" (function
    | [ lo; hi ] -> (
        match (as_float lo, as_float hi) with
        | Some lo, Some hi ->
            let hour =
              Float.rem (Clock.now t.clock) seconds_per_day /. seconds_per_hour
            in
            if lo <= hi then lo <= hour && hour < hi else hour >= lo || hour < hi
        | _ -> false)
    | _ -> false);
  (* Fail closed: until a live assessor is bridged in (Service.create
     re-registers over this), no subject clears any trust threshold. *)
  reg "trust_score" (fun _ -> false)

let create clock =
  let t =
    {
      clock;
      facts = Hashtbl.create 64;
      computed = Hashtbl.create 16;
      holds = Hashtbl.create 4;
      listeners = [];
    }
  in
  register_builtins t;
  t

let notify t name args change = List.iter (fun l -> l name args change) (List.rev t.listeners)

let bucket t name =
  match Hashtbl.find_opt t.facts name with
  | Some b -> b
  | None ->
      let b = ref Tuple_set.empty in
      Hashtbl.replace t.facts name b;
      b

let declare_fact t name =
  if Hashtbl.mem t.computed name then
    invalid_arg (Printf.sprintf "Env.declare_fact: %s is a computed predicate" name);
  ignore (bucket t name)

let assert_fact t name args =
  if Hashtbl.mem t.computed name then
    invalid_arg (Printf.sprintf "Env.assert_fact: %s is a computed predicate" name);
  let b = bucket t name in
  if not (Tuple_set.mem args !b) then begin
    b := Tuple_set.add args !b;
    notify t name args `Asserted
  end

let retract_fact t name args =
  match Hashtbl.find_opt t.facts name with
  | None -> ()
  | Some b ->
      if Tuple_set.mem args !b then begin
        b := Tuple_set.remove args !b;
        notify t name args `Retracted
      end

let register t name f =
  if Hashtbl.mem t.facts name then
    invalid_arg (Printf.sprintf "Env.register: %s is already a fact predicate" name);
  Hashtbl.replace t.computed name f

let register_hold t name f =
  if not (Hashtbl.mem t.computed name) then
    invalid_arg (Printf.sprintf "Env.register_hold: %s is not a computed predicate" name);
  Hashtbl.replace t.holds name f

let strip_negation name =
  if String.length name > 0 && name.[0] = '!' then
    (true, String.sub name 1 (String.length name - 1))
  else (false, name)

let base_name name = snd (strip_negation name)
let negated name = fst (strip_negation name)

let check_positive t name args =
  match Hashtbl.find_opt t.computed name with
  | Some f -> f args
  | None -> (
      match Hashtbl.find_opt t.facts name with
      | Some b -> Tuple_set.mem args !b
      | None -> raise (Unknown_predicate name))

let check t name args =
  let negated, base = strip_negation name in
  let holds = check_positive t base args in
  if negated then not holds else holds

let check_hold t name args =
  let negated, base = strip_negation name in
  let holds =
    match Hashtbl.find_opt t.holds base with
    | Some f -> f args
    | None -> check_positive t base args
  in
  if negated then not holds else holds

let enumerate t name =
  let negated, base = strip_negation name in
  if negated || Hashtbl.mem t.computed base then []
  else
    match Hashtbl.find_opt t.facts base with
    | Some b -> Tuple_set.elements !b
    | None ->
        (* Unknown predicates must fail loudly even via enumeration. *)
        raise (Unknown_predicate base)

let fact_predicate t name =
  let _, base = strip_negation name in
  Hashtbl.mem t.facts base && not (Hashtbl.mem t.computed base)

let next_change_time t name args =
  let _, base = strip_negation name in
  match (base, args) with
  | ("before" | "after"), [ v ] -> (
      match as_float v with
      | Some limit when limit > Clock.now t.clock -> Some limit
      | _ -> None)
  | "hour_between", [ lo; hi ] -> (
      match (as_float lo, as_float hi) with
      | Some lo, Some hi ->
          let now = Clock.now t.clock in
          let day_start = now -. Float.rem now seconds_per_day in
          let candidates =
            [
              day_start +. (lo *. seconds_per_hour);
              day_start +. (hi *. seconds_per_hour);
              day_start +. ((lo +. 24.0) *. seconds_per_hour);
              day_start +. ((hi +. 24.0) *. seconds_per_hour);
            ]
          in
          List.filter (fun c -> c > now) candidates |> List.fold_left min infinity
          |> fun m -> if m = infinity then None else Some m
      | _ -> None)
  | _ -> None

let on_change t listener = t.listeners <- listener :: t.listeners

let poke t name =
  if not (Hashtbl.mem t.computed name) then
    invalid_arg (Printf.sprintf "Env.poke: %s is not a computed predicate" name);
  notify t name [] `Asserted

let fact_count t = Hashtbl.fold (fun _ b acc -> acc + Tuple_set.cardinal !b) t.facts 0
