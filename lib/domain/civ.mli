(** Certificate issuing and validation (CIV) service, replicated.

    "It is likely that certificates will not be issued and validated by each
    individual service ... Rather, a domain will contain one highly available
    service to carry out the functions of certificate issuing and validation
    [with] replication for availability together with consistency
    management" (Sect. 4, citing ref [10]; Sect. 6 extends CIV services to
    audit certificates).

    The cluster is a router plus [replicas] replica nodes. The router is the
    stable identifier bound into certificates as issuer (an anycast /
    load-balancer address); it forwards validation callbacks round-robin to
    live replicas and fails over when one is down. Replica 0 is the primary:
    issuance and revocation execute there and reach the other replicas
    through replication events on the event middleware, so replicas serve
    validations from (boundedly stale) local state — real primary–backup
    semantics, measurable replication lag included. *)

type t

(** Consistency management for the replicas (ref [10]):
    - [Async]: writes return immediately; replicas learn through replication
      events on the middleware (bounded staleness, reads may need a primary
      fallback);
    - [Sync]: the primary installs the update at every replica before the
      write returns (no staleness; writes bear the replication cost). *)
type replication = Async | Sync

val create :
  Oasis_core.World.t ->
  name:string ->
  ?replicas:int ->
  ?replication:replication ->
  ?offline_sign:bool ->
  unit ->
  t
(** Default 3 replicas, [Async] replication. The cluster registers its
    router under [name] in the world's service registry, so policy rules can
    say [appt:kind(…)@name]. With [offline_sign] (default on) the CIV
    enrols a Schnorr issuing key with the world's domain root and signs
    appointments offline-verifiably (DESIGN.md §12); relying services with
    [offline_verify] then validate them with zero RPCs to the cluster. Off
    restores epoch-HMAC signing, where every check is a replica callback. *)

val replication : t -> replication

val id : t -> Oasis_util.Ident.t
(** The router identifier: use as certificate issuer. *)

val civ_name : t -> string
val replica_count : t -> int

(** {1 Issuing (administrative API, executes at the primary)} *)

exception Primary_unavailable

val issue :
  t ->
  kind:string ->
  args:Oasis_util.Value.t list ->
  holder:Oasis_util.Ident.t ->
  holder_key:string ->
  ?expires_at:float ->
  unit ->
  Oasis_cert.Appointment.t
(** Issues an appointment certificate (e.g. [employed_as_doctor(hospital)]).
    Raises {!Primary_unavailable} if the primary replica is down — a
    primary–backup cluster keeps reads available but not writes. *)

val reissue : t -> Oasis_cert.Appointment.t -> (Oasis_cert.Appointment.t, string) result
(** Re-issues a certificate under the current epoch secret — Sect. 4.1:
    "it is likely that appointment certificates would be re-issued,
    encrypted with a new server secret, from time to time". The old
    certificate must carry a genuine signature from some epoch and a
    still-valid credential record; its record is revoked (reason
    ["superseded"]) and a fresh certificate with the same content is
    issued. Raises {!Primary_unavailable} when the primary is down. *)

val revoke : t -> Oasis_util.Ident.t -> reason:string -> bool
(** Revokes at the primary; the invalidation reaches dependent roles via the
    certificate's event channel and the replicas via replication events. *)

val rotate_secret : t -> unit
val current_epoch : t -> int

val is_valid : t -> Oasis_util.Ident.t -> bool
(** Primary's authoritative view. *)

val replica_view : t -> int -> Oasis_util.Ident.t -> bool
(** [replica_view t i cert] — replica [i]'s possibly stale view; exposed so
    tests and benches can observe replication lag. *)

(** {1 Audit certificates (Sect. 6)}

    "If a certificate issuing and validation (CIV) service already exists in
    a domain its function might be extended to generate such a certificate."
    The cluster embeds an audit registrar; interactions witnessed in this
    domain are recorded and validated here. *)

val registrar : t -> Oasis_trust.Registrar.t

val record_interaction :
  t ->
  client:Oasis_util.Ident.t ->
  server:Oasis_util.Ident.t ->
  client_outcome:Oasis_trust.Audit.outcome ->
  server_outcome:Oasis_trust.Audit.outcome ->
  Oasis_trust.Audit.t
(** Issues the audit certificate for an interaction completed now (virtual
    time), at the primary, and files it live into each party's wallet in
    turn via {!Oasis_core.World.file_audit_certificate} (trust-gated roles
    re-check). Raises {!Primary_unavailable} when the primary is down or
    the cluster router has been crashed through the fault controller. *)

val record_interaction_crashing :
  t ->
  client:Oasis_util.Ident.t ->
  server:Oasis_util.Ident.t ->
  client_outcome:Oasis_trust.Audit.outcome ->
  server_outcome:Oasis_trust.Audit.outcome ->
  Oasis_trust.Audit.t
(** Like {!record_interaction}, but the registrar crashes between the two
    wallet filings: the client's wallet holds the certificate, the
    server's does not, and the cluster is down. Restarting it (via the
    world's fault controller) runs anti-entropy, which re-delivers the
    certificate to both wallets — filing is idempotent, so only the
    missing half changes anything. Counted as [civ.reconciled]. *)

val pending_filings : t -> int
(** Certificates issued but not yet filed into both wallets — nonzero
    exactly in the window between a mid-issuance crash and the restart
    anti-entropy pass. *)

val validate_audit : t -> Oasis_trust.Audit.t -> bool

(** {1 Failure injection} *)

val set_replica_down : t -> int -> bool -> unit
(** Replica 0 is the primary. *)

type stats = {
  validations_served : int array;  (** per replica *)
  forwarded_to_primary : int;  (** replica-miss fallbacks *)
  issues : int;
  revocations : int;
  failovers : int;  (** router retries past a dead replica *)
  exhausted : int;  (** validations failed: no live replica *)
}

val stats : t -> stats
