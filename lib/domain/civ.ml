module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Engine = Oasis_sim.Engine
module Network = Oasis_sim.Network
module Fault = Oasis_sim.Fault
module Broker = Oasis_event.Broker
module Heartbeat = Oasis_event.Heartbeat
module Appointment = Oasis_cert.Appointment
module Cr = Oasis_cert.Credential_record
module Signed = Oasis_cert.Signed
module Secret = Oasis_crypto.Secret
module Schnorr = Oasis_crypto.Schnorr
module World = Oasis_core.World
module Protocol = Oasis_core.Protocol
module Obs = Oasis_obs.Obs

exception Primary_unavailable

type replication = Async | Sync

type replica = {
  node : Ident.t;
  index : int;
  (* Replica 0 (the primary) reads the authoritative store; others read
     this replicated validity table. *)
  validity : bool Ident.Tbl.t;
  mutable served : int;
}

type t = {
  world : World.t;
  cname : string;
  router : Ident.t;
  mode : replication;
  audit : Oasis_trust.Registrar.t;
  secret : Secret.t;
  signing : Schnorr.keypair option;  (* present iff enrolled with the domain root *)
  mutable epoch : int;
  crs : Cr.store;
  replicas : replica array;
  beats : Heartbeat.emitter Ident.Tbl.t;
  mutable rr : int;
  (* Audit certificates issued but not yet filed into both parties'
     wallets — the window a mid-issuance crash leaves open. Restart
     anti-entropy drains it (re-delivery is idempotent wallet-side). *)
  mutable pending_filings : Oasis_trust.Audit.t list;
  (* Counters in the world's registry, labelled [civ=<name>]. *)
  c_forwarded : Obs.Counter.t;
  c_issues : Obs.Counter.t;
  c_revocations : Obs.Counter.t;
  c_failovers : Obs.Counter.t;
  c_exhausted : Obs.Counter.t;
  c_reconciled : Obs.Counter.t;
}

let id t = t.router

let replication t = t.mode
let civ_name t = t.cname
let replica_count t = Array.length t.replicas
let current_epoch t = t.epoch

let repl_topic t = Printf.sprintf "civ-repl:%s" (Ident.to_string t.router)

let primary t = t.replicas.(0)

let primary_down t =
  let net = World.network t.world in
  Network.is_down net (primary t).node
  || Fault.is_crashed (World.fault t.world) t.router

(* ------------------------------------------------------------------ *)
(* Validation, replica side                                           *)
(* ------------------------------------------------------------------ *)

let signature_ok t appt =
  match t.signing with
  | Some kp ->
      appt.Appointment.epoch = t.epoch
      && (not (Appointment.expired ~now:(World.now t.world) appt))
      && (match Schnorr.of_digest appt.Appointment.signature with
         | Some sg -> Schnorr.verify ~public:kp.Schnorr.public (Appointment.signing_bytes appt) sg
         | None -> false)
  | None ->
      Appointment.verify ~master_secret:t.secret ~current_epoch:t.epoch
        ~now:(World.now t.world) appt

let primary_view t cert_id =
  match Cr.find t.crs cert_id with Some record -> Cr.is_valid record | None -> false

let replica_validate t replica (appt : Appointment.t) =
  replica.served <- replica.served + 1;
  signature_ok t appt
  &&
  if replica.index = 0 then primary_view t appt.id
  else
    match Ident.Tbl.find_opt replica.validity appt.id with
    | Some valid -> valid
    | None -> (
        (* Not replicated yet: ask the primary rather than deny a freshly
           issued certificate. *)
        Obs.Counter.inc t.c_forwarded;
        match
          Network.rpc (World.network t.world) ~src:replica.node ~dst:(primary t).node
            (Protocol.Validate_appt { appt })
        with
        | Protocol.Validate_result ok -> ok
        | _ -> false
        | exception Network.Rpc_dropped -> false)

let replica_handler t replica =
  {
    Network.on_oneway = (fun ~src:_ _ -> ());
    on_rpc =
      (fun ~src:_ msg ->
        match msg with
        | Protocol.Validate_appt { appt } ->
            Protocol.Validate_result
              (Ident.equal appt.Appointment.issuer t.router && replica_validate t replica appt)
        | Protocol.Validate_rmc _ ->
            (* A CIV issues appointment certificates only. *)
            Protocol.Validate_result false
        | _ -> Protocol.Denied (Protocol.Bad_request "CIV replicas only validate"));
  }

(* ------------------------------------------------------------------ *)
(* Router: round-robin with failover                                  *)
(* ------------------------------------------------------------------ *)

let route t msg =
  let n = Array.length t.replicas in
  let start = t.rr in
  t.rr <- (t.rr + 1) mod n;
  let rec try_from attempt =
    if attempt >= n then begin
      Obs.Counter.inc t.c_exhausted;
      Protocol.Validate_result false
    end
    else
      let replica = t.replicas.((start + attempt) mod n) in
      match Network.rpc (World.network t.world) ~src:t.router ~dst:replica.node msg with
      | reply -> reply
      | exception Network.Rpc_dropped ->
          Obs.Counter.inc t.c_failovers;
          try_from (attempt + 1)
  in
  try_from 0

let router_handler t =
  {
    Network.on_oneway = (fun ~src:_ _ -> ());
    on_rpc =
      (fun ~src:_ msg ->
        match msg with
        | Protocol.Validate_appt _ | Protocol.Validate_rmc _ -> route t msg
        | Protocol.Check_cr { cert_id } ->
            (* Anti-entropy status check: answered from the authoritative
               store. With the primary down the truth is unreachable, so the
               handler fails the RPC — "could not determine" must never read
               as "revoked". *)
            if primary_down t then raise Primary_unavailable
            else Protocol.Cr_status { valid = primary_view t cert_id }
        | _ -> Protocol.Denied (Protocol.Bad_request "CIV router only validates"));
  }

(* Anti-entropy after a registrar crash: any certificate that did not
   reach both wallets is re-delivered to both parties. Wallet filing is
   idempotent (dedup by certificate id), so completing the already-filed
   half changes nothing; the missing half lands and pokes its party. *)
let reconcile_filings t =
  let pending = t.pending_filings in
  t.pending_filings <- [];
  List.iter
    (fun (cert : Oasis_trust.Audit.t) ->
      Obs.Counter.inc t.c_reconciled;
      ignore (World.file_audit_certificate t.world cert ~party:cert.Oasis_trust.Audit.client : bool);
      ignore (World.file_audit_certificate t.world cert ~party:cert.Oasis_trust.Audit.server : bool))
    pending

let pending_filings t = List.length t.pending_filings

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let create world ~name ?(replicas = 3) ?(replication = Async) ?(offline_sign = true) () =
  if replicas < 1 then invalid_arg "Civ.create: need at least one replica";
  let router = World.fresh_service_id world in
  let counter cname = Obs.counter (World.obs world) cname ~labels:[ ("civ", name) ] in
  let signing =
    if offline_sign then begin
      let authority = World.authority world in
      let kp = Signed.generate_keypair authority in
      ignore
        (Signed.enrol authority ~subject:router ~subject_pk:kp.Schnorr.public ~key_epoch:0
           ~now:(World.now world));
      Some kp
    end
    else None
  in
  let t =
    {
      world;
      cname = name;
      router;
      mode = replication;
      audit = Oasis_trust.Registrar.create (Oasis_util.Rng.split (World.rng world)) ~name ();
      secret = Secret.generate (World.rng world);
      signing;
      epoch = 0;
      crs = Cr.create_store ();
      replicas =
        Array.init replicas (fun index ->
            {
              node = World.fresh_service_id world;
              index;
              validity = Ident.Tbl.create 64;
              served = 0;
            });
      beats = Ident.Tbl.create 16;
      rr = 0;
      pending_filings = [];
      c_forwarded = counter "civ.forwarded";
      c_issues = counter "civ.issues";
      c_revocations = counter "civ.revocations";
      c_failovers = counter "civ.failovers";
      c_exhausted = counter "civ.exhausted";
      c_reconciled = counter "civ.reconciled";
    }
  in
  World.register_service world ~name router;
  (* Bridge the embedded registrar into the world's trust layer: audit
     certificates naming it validate through it, so wallet presentations
     score live (fail-closed for unknown registrars). *)
  World.register_trust_validator world
    ~registrar:(Oasis_trust.Registrar.id t.audit)
    (fun cert -> Oasis_trust.Registrar.validate t.audit cert);
  Network.add_node (World.network world) router (router_handler t);
  (* Crashing the router (the cluster's stable identity) models the whole
     registrar going down mid-issuance; restart runs wallet anti-entropy. *)
  Fault.set_hooks (World.fault world) router
    ~on_crash:(fun () -> ())
    ~on_restart:(fun () -> reconcile_filings t);
  Array.iter
    (fun replica ->
      Network.add_node (World.network world) replica.node (replica_handler t replica);
      if replica.index > 0 then
        ignore
          (Broker.subscribe (World.broker world) (repl_topic t) ~owner:replica.node
             (fun _topic event ->
               match event with
               | Protocol.Replicated { cert_id; valid; _ } ->
                   Ident.Tbl.replace replica.validity cert_id valid
               | Protocol.Invalidated _ | Protocol.Beat _ -> ())))
    t.replicas;
  t

(* ------------------------------------------------------------------ *)
(* Issuing and revocation (primary)                                   *)
(* ------------------------------------------------------------------ *)

let replicate t cert_id valid =
  match t.mode with
  | Async ->
      Broker.publish (World.broker t.world) (repl_topic t)
        (Protocol.Replicated { issuer = t.router; cert_id; valid })
  | Sync ->
      (* The primary blocks until every replica holds the update; modelled
         as immediate installation. *)
      Array.iter
        (fun replica ->
          if replica.index > 0 then Ident.Tbl.replace replica.validity cert_id valid)
        t.replicas

let revoke t cert_id ~reason =
  if primary_down t then false
  else
    match Cr.revoke t.crs cert_id ~at:(World.now t.world) ~reason with
    | None -> false
    | Some record ->
        Obs.Counter.inc t.c_revocations;
        (match Ident.Tbl.find_opt t.beats cert_id with
        | Some emitter ->
            Heartbeat.stop_emitter emitter;
            Ident.Tbl.remove t.beats cert_id
        | None -> ());
        Broker.publish ~src:t.router ~retain:true (World.broker t.world) (Cr.topic record)
          (Protocol.Invalidated { issuer = t.router; cert_id; reason });
        replicate t cert_id false;
        true

let issue t ~kind ~args ~holder ~holder_key ?expires_at () =
  if primary_down t then raise Primary_unavailable;
  let cert_id = World.fresh_cert_id t.world in
  let now = World.now t.world in
  let appt =
    match t.signing with
    | Some keypair ->
        Signed.issue_appointment ~keypair
          ~rng:(Signed.rng (World.authority t.world))
          ~epoch:t.epoch ~id:cert_id ~issuer:t.router ~kind ~args ~holder:holder_key
          ~issued_at:now ?expires_at ()
    | None ->
        Appointment.issue ~master_secret:t.secret ~epoch:t.epoch ~id:cert_id ~issuer:t.router
          ~kind ~args ~holder:holder_key ~issued_at:now ?expires_at ()
  in
  let record =
    Cr.add t.crs ~cert_id ~issuer:t.router ~kind:Cr.Kind_appointment ~principal:holder ~name:kind
      ~args ~issued_at:now
  in
  Obs.Counter.inc t.c_issues;
  (match World.monitoring t.world with
  | World.Change_events -> ()
  | World.Heartbeats { period; _ } ->
      Ident.Tbl.replace t.beats cert_id
        (Heartbeat.start_emitter ~src:t.router (World.broker t.world) (World.engine t.world)
           ~topic:(Cr.topic record) ~period
           ~beat:(Protocol.Beat { issuer = t.router; cert_id })));
  replicate t cert_id true;
  (match expires_at with
  | Some at when at > now ->
      ignore
        (Engine.schedule_at (World.engine t.world) ~at (fun () ->
             ignore (revoke t cert_id ~reason:"expired")))
  | Some _ | None -> ());
  appt

let reissue t (old : Appointment.t) =
  if primary_down t then raise Primary_unavailable;
  if not (Ident.equal old.Appointment.issuer t.router) then Error "not our certificate"
  else if
    (* Re-issue accepts any epoch (that is its purpose) but never a bad
       signature or an expired certificate, whichever scheme signed it. *)
    not
      (match t.signing with
      | Some kp ->
          (not (Appointment.expired ~now:(World.now t.world) old))
          && (match Schnorr.of_digest old.Appointment.signature with
             | Some sg ->
                 Schnorr.verify ~public:kp.Schnorr.public (Appointment.signing_bytes old) sg
             | None -> false)
      | None ->
          Appointment.verify_ignoring_epoch ~master_secret:t.secret ~now:(World.now t.world) old)
  then Error "signature or expiry check failed"
  else if not (primary_view t old.Appointment.id) then Error "credential record revoked"
  else begin
    let principal =
      match Cr.find t.crs old.Appointment.id with
      | Some record -> record.Cr.principal
      | None -> assert false (* primary_view verified it exists *)
    in
    ignore (revoke t old.Appointment.id ~reason:"superseded");
    Ok
      (issue t ~kind:old.Appointment.kind ~args:old.Appointment.args ~holder:principal
         ~holder_key:old.Appointment.holder ?expires_at:old.Appointment.expires_at ())
  end

let rotate_secret t =
  t.epoch <- t.epoch + 1;
  match t.signing with
  | Some kp ->
      ignore
        (Signed.enrol (World.authority t.world) ~subject:t.router ~subject_pk:kp.Schnorr.public
           ~key_epoch:t.epoch ~now:(World.now t.world))
  | None -> ()

let registrar t = t.audit

let record_interaction_steps t ~client ~server ~client_outcome ~server_outcome ~crash_mid =
  if primary_down t then raise Primary_unavailable;
  let cert =
    Oasis_trust.Registrar.record_interaction t.audit ~client ~server ~at:(World.now t.world)
      ~client_outcome ~server_outcome
  in
  Obs.Counter.inc (Obs.counter (World.obs t.world) "trust.certificates");
  (* Live issuance (Sect. 6): the certificate lands in both parties'
     wallets immediately and trust-gated roles re-check. The two filings
     are separate durable steps; [crash_mid] injects a registrar crash
     between them, leaving exactly one wallet updated until anti-entropy
     runs at restart. *)
  t.pending_filings <- cert :: t.pending_filings;
  ignore (World.file_audit_certificate t.world cert ~party:client : bool);
  if crash_mid then Fault.crash (World.fault t.world) t.router
  else begin
    ignore (World.file_audit_certificate t.world cert ~party:server : bool);
    t.pending_filings <-
      List.filter
        (fun (c : Oasis_trust.Audit.t) -> not (Ident.equal c.Oasis_trust.Audit.id cert.Oasis_trust.Audit.id))
        t.pending_filings
  end;
  cert

let record_interaction t ~client ~server ~client_outcome ~server_outcome =
  record_interaction_steps t ~client ~server ~client_outcome ~server_outcome ~crash_mid:false

let record_interaction_crashing t ~client ~server ~client_outcome ~server_outcome =
  record_interaction_steps t ~client ~server ~client_outcome ~server_outcome ~crash_mid:true

let validate_audit t cert = Oasis_trust.Registrar.validate t.audit cert

let is_valid t cert_id = primary_view t cert_id

let replica_view t i cert_id =
  if i = 0 then primary_view t cert_id
  else
    match Ident.Tbl.find_opt t.replicas.(i).validity cert_id with
    | Some valid -> valid
    | None -> false

let set_replica_down t i down = Network.set_down (World.network t.world) t.replicas.(i).node down

type stats = {
  validations_served : int array;
  forwarded_to_primary : int;
  issues : int;
  revocations : int;
  failovers : int;
  exhausted : int;
}

let stats t =
  {
    validations_served = Array.map (fun r -> r.served) t.replicas;
    forwarded_to_primary = Obs.Counter.value t.c_forwarded;
    issues = Obs.Counter.value t.c_issues;
    revocations = Obs.Counter.value t.c_revocations;
    failovers = Obs.Counter.value t.c_failovers;
    exhausted = Obs.Counter.value t.c_exhausted;
  }
