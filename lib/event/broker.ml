module Engine = Oasis_sim.Engine
module Rng = Oasis_util.Rng
module Ident = Oasis_util.Ident
module Obs = Oasis_obs.Obs

type topic = string

type 'a sub = {
  id : int;
  sub_topic : topic;
  owner : Ident.t;
  callback : topic -> 'a -> unit;
  mutable active : bool;
}

type subscription = { unsub : unit -> unit }

type stats = { published : int; notified : int; suppressed : int }

type 'a t = {
  engine : Engine.t;
  rng : Rng.t;
  obs : Obs.t;
  latency : float;
  jitter : float;
  subs : (topic, 'a sub list ref) Hashtbl.t;
  mutable next_id : int;
  (* Delivery filter consulted when a publish carries a source ident; the
     world wires this to [Fault.is_cut] so named partitions sever event
     channels exactly as they sever the network. *)
  mutable filter : (publisher:Ident.t -> owner:Ident.t -> bool) option;
  c_published : Obs.Counter.t;
  c_notified : Obs.Counter.t;
  c_suppressed : Obs.Counter.t;
  c_suppressed_part : Obs.Counter.t;
}

let create engine rng ~notify_latency ?(jitter = 0.0) ?obs () =
  let obs =
    match obs with
    | Some obs -> obs
    | None -> Obs.create ~now:(fun () -> Engine.now engine) ()
  in
  {
    engine;
    rng;
    obs;
    latency = notify_latency;
    jitter;
    subs = Hashtbl.create 64;
    next_id = 0;
    filter = None;
    c_published = Obs.counter obs "broker.published";
    c_notified = Obs.counter obs "broker.notified";
    c_suppressed = Obs.counter obs "broker.suppressed" ~labels:[ ("cause", "unsubscribed") ];
    c_suppressed_part = Obs.counter obs "broker.suppressed" ~labels:[ ("cause", "partitioned") ];
  }

let obs t = t.obs

let bucket t topic =
  match Hashtbl.find_opt t.subs topic with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.replace t.subs topic b;
      b

let subscribe t topic ~owner callback =
  let sub = { id = t.next_id; sub_topic = topic; owner; callback; active = true } in
  t.next_id <- t.next_id + 1;
  let b = bucket t topic in
  b := sub :: !b;
  {
    unsub =
      (fun () ->
        sub.active <- false;
        b := List.filter (fun s -> s.id <> sub.id) !b);
  }

let unsubscribe _t subscription = subscription.unsub ()

let delay t = t.latency +. (if t.jitter > 0.0 then Rng.float t.rng t.jitter else 0.0)

let set_filter t filter = t.filter <- filter

(* Whether delivery from [src] to [sub] is severed right now. Publishes
   without a source ident predate fault injection and are never filtered. *)
let cut t src sub =
  match (src, t.filter) with
  | Some src, Some f -> f ~publisher:src ~owner:sub.owner
  | _ -> false

let publish ?src t topic payload =
  Obs.Counter.inc t.c_published;
  if Obs.tracing t.obs then Obs.event t.obs "broker.publish" ~labels:[ ("topic", topic) ];
  match Hashtbl.find_opt t.subs topic with
  | None -> ()
  | Some b ->
      (* Snapshot in subscription order; a subscriber added after this
         publish must not see it. *)
      let snapshot = List.rev !b in
      List.iter
        (fun sub ->
          ignore
            (Engine.schedule t.engine ~after:(delay t) (fun () ->
                 if not sub.active then
                   (* The subscriber unsubscribed while this notification was
                      in flight. Account for it so published × subscribers =
                      notified + suppressed always holds. *)
                   Obs.Counter.inc t.c_suppressed
                 else if cut t src sub then begin
                   (* Partitioned at delivery time: the channel is severed,
                      the notification is lost like a network message. *)
                   Obs.Counter.inc t.c_suppressed_part;
                   if Obs.tracing t.obs then
                     Obs.event t.obs "broker.suppress"
                       ~labels:
                         [
                           ("cause", "partitioned");
                           ("topic", topic);
                           ("owner", Ident.to_string sub.owner);
                         ]
                 end
                 else begin
                   Obs.Counter.inc t.c_notified;
                   if Obs.tracing t.obs then
                     Obs.event t.obs "broker.notify"
                       ~labels:[ ("topic", topic); ("owner", Ident.to_string sub.owner) ];
                   sub.callback sub.sub_topic payload
                 end)))
        snapshot

let subscriber_count t topic =
  match Hashtbl.find_opt t.subs topic with None -> 0 | Some b -> List.length !b

let stats t =
  {
    published = Obs.Counter.value t.c_published;
    notified = Obs.Counter.value t.c_notified;
    suppressed = Obs.Counter.value t.c_suppressed + Obs.Counter.value t.c_suppressed_part;
  }

let suppressed_by_cause t =
  [
    ("unsubscribed", Obs.Counter.value t.c_suppressed);
    ("partitioned", Obs.Counter.value t.c_suppressed_part);
  ]

let reset_stats t =
  Obs.Counter.reset t.c_published;
  Obs.Counter.reset t.c_notified;
  Obs.Counter.reset t.c_suppressed;
  Obs.Counter.reset t.c_suppressed_part
