module Engine = Oasis_sim.Engine
module Rng = Oasis_util.Rng
module Ident = Oasis_util.Ident
module Obs = Oasis_obs.Obs

type topic = string

type 'a sub = {
  id : int;
  sub_topic : topic;
  owner : Ident.t;
  callback : topic -> 'a -> unit;
  mutable active : bool;
  (* The broker-wide publish count at unsubscribe time: lets a batched
     delivery decide whether this subscriber was still active when the
     publish it carries was issued (counts as suppressed) or had already
     left (not addressed at all). *)
  mutable unsub_pub : int;
}

(* Subscribers per topic in a growable array, appended in subscription
   order. Unsubscribe only flags the entry (O(1)); flagged entries are
   swept out by rebuilding the array once they outnumber the live ones.
   In-flight deliveries keep the array they snapshotted — rebuilds install
   a fresh array, never mutate the old one — so a publish's audience is
   fixed at publish time without allocating a list copy. *)
type 'a bucket = {
  mutable arr : 'a sub array;
  mutable blen : int;
  mutable dead : int;
}

type subscription = { unsub : unit -> unit }

type stats = { published : int; notified : int; suppressed : int }

type 'a t = {
  engine : Engine.t;
  rng : Rng.t;
  obs : Obs.t;
  latency : float;
  jitter : float;
  subs : (topic, 'a bucket) Hashtbl.t;
  (* Last retained publish per topic (source, payload): a tombstone a late
     subscriber can ask to have replayed. OASIS retains exactly one kind of
     event — a credential record's Invalidated notice, which is true forever
     once published. *)
  retained : (topic, Ident.t option * 'a) Hashtbl.t;
  mutable next_id : int;
  mutable pub_count : int;
  (* Delivery filter consulted when a publish carries a source ident; the
     world wires this to [Fault.is_cut] so named partitions sever event
     channels exactly as they sever the network. *)
  mutable filter : (publisher:Ident.t -> owner:Ident.t -> bool) option;
  c_published : Obs.Counter.t;
  c_notified : Obs.Counter.t;
  c_suppressed : Obs.Counter.t;
  c_suppressed_part : Obs.Counter.t;
}

let create engine rng ~notify_latency ?(jitter = 0.0) ?obs () =
  let obs =
    match obs with
    | Some obs -> obs
    | None -> Obs.create ~now:(fun () -> Engine.now engine) ()
  in
  {
    engine;
    rng;
    obs;
    latency = notify_latency;
    jitter;
    subs = Hashtbl.create 64;
    retained = Hashtbl.create 16;
    next_id = 0;
    pub_count = 0;
    filter = None;
    c_published = Obs.counter obs "broker.published";
    c_notified = Obs.counter obs "broker.notified";
    c_suppressed = Obs.counter obs "broker.suppressed" ~labels:[ ("cause", "unsubscribed") ];
    c_suppressed_part = Obs.counter obs "broker.suppressed" ~labels:[ ("cause", "partitioned") ];
  }

let obs t = t.obs

let dummy_owner = Ident.make "sub" (-1)

let dummy_sub : unit -> 'a sub =
 fun () ->
  {
    id = -1;
    sub_topic = "";
    owner = dummy_owner;
    callback = (fun _ _ -> ());
    active = false;
    unsub_pub = 0;
  }

let bucket t topic =
  match Hashtbl.find_opt t.subs topic with
  | Some b -> b
  | None ->
      let b = { arr = [||]; blen = 0; dead = 0 } in
      Hashtbl.replace t.subs topic b;
      b

let bucket_push b sub =
  let cap = Array.length b.arr in
  if b.blen = cap then begin
    let narr = Array.make (max 4 (2 * cap)) (dummy_sub ()) in
    Array.blit b.arr 0 narr 0 b.blen;
    b.arr <- narr
  end;
  b.arr.(b.blen) <- sub;
  b.blen <- b.blen + 1

(* Rebuild with only the live subscribers (fresh array: snapshots held by
   in-flight deliveries must not shift under them). An emptied bucket is
   dropped from the table entirely — topics are per-certificate, so dead
   buckets would otherwise accumulate one per certificate ever watched. *)
let compact_bucket t topic b =
  let live = b.blen - b.dead in
  if live = 0 then Hashtbl.remove t.subs topic
  else begin
    let narr = Array.make (max 4 live) (dummy_sub ()) in
    let j = ref 0 in
    for i = 0 to b.blen - 1 do
      if b.arr.(i).active then begin
        narr.(!j) <- b.arr.(i);
        incr j
      end
    done;
    b.arr <- narr;
    b.blen <- live;
    b.dead <- 0
  end

let unsubscribe _t subscription = subscription.unsub ()

let delay t = t.latency +. (if t.jitter > 0.0 then Rng.float t.rng t.jitter else 0.0)

let set_filter t filter = t.filter <- filter

(* Whether delivery from [src] to [sub] is severed right now. Publishes
   without a source ident predate fault injection and are never filtered. *)
let cut t src sub =
  match (src, t.filter) with
  | Some src, Some f -> f ~publisher:src ~owner:sub.owner
  | _ -> false

(* The at-delivery-time body shared by the batched and per-subscriber
   paths: partition filtering, accounting, callback. The caller has already
   established that the subscriber was active when the publish was issued. *)
let deliver t src sub payload =
  if not sub.active then
    (* The subscriber unsubscribed while this notification was in flight.
       Account for it so published × subscribers = notified + suppressed
       always holds. *)
    Obs.Counter.inc t.c_suppressed
  else if cut t src sub then begin
    (* Partitioned at delivery time: the channel is severed, the
       notification is lost like a network message. *)
    Obs.Counter.inc t.c_suppressed_part;
    if Obs.tracing t.obs then
      Obs.event t.obs "broker.suppress"
        ~labels:
          [
            ("cause", "partitioned");
            ("topic", sub.sub_topic);
            ("owner", Ident.to_string sub.owner);
          ]
  end
  else begin
    Obs.Counter.inc t.c_notified;
    if Obs.tracing t.obs then
      Obs.event t.obs "broker.notify"
        ~labels:[ ("topic", sub.sub_topic); ("owner", Ident.to_string sub.owner) ];
    sub.callback sub.sub_topic payload
  end

let schedule_delivery t src sub payload =
  ignore (Engine.schedule t.engine ~after:(delay t) (fun () -> deliver t src sub payload))

let subscribe ?(replay_retained = false) t topic ~owner callback =
  let sub =
    { id = t.next_id; sub_topic = topic; owner; callback; active = true; unsub_pub = 0 }
  in
  t.next_id <- t.next_id + 1;
  let b = bucket t topic in
  bucket_push b sub;
  (* A late subscriber asking for replay receives the topic's retained
     event as if it had just been published: same latency, same partition
     filtering at delivery time. *)
  if replay_retained then begin
    match Hashtbl.find_opt t.retained topic with
    | Some (src, payload) -> schedule_delivery t src sub payload
    | None -> ()
  end;
  {
    unsub =
      (fun () ->
        if sub.active then begin
          sub.active <- false;
          sub.unsub_pub <- t.pub_count;
          b.dead <- b.dead + 1;
          if b.dead >= 8 && 2 * b.dead > b.blen then compact_bucket t topic b
        end);
  }

let retained t topic ~reader =
  match Hashtbl.find_opt t.retained topic with
  | None -> None
  | Some (src, payload) ->
      (* The tombstone lives on the publisher's side of the fabric: a reader
         currently partitioned from it cannot see it, exactly as it would
         miss the live notification. *)
      let severed =
        match (src, t.filter) with
        | Some src, Some f -> f ~publisher:src ~owner:reader
        | _ -> false
      in
      if severed then None else Some payload

let publish ?src ?(retain = false) t topic payload =
  Obs.Counter.inc t.c_published;
  t.pub_count <- t.pub_count + 1;
  if Obs.tracing t.obs then Obs.event t.obs "broker.publish" ~labels:[ ("topic", topic) ];
  if retain then Hashtbl.replace t.retained topic (src, payload);
  match Hashtbl.find_opt t.subs topic with
  | None -> ()
  | Some b ->
      (* The audience is the bucket prefix [0, blen) as of now; a subscriber
         added after this publish must not see it (unless it opts into
         retained replay), and rebuilds never touch a snapshotted array. *)
      let arr = b.arr and n = b.blen in
      if n > 0 then
        if t.jitter > 0.0 then
          (* Jittered brokers draw an independent delay per delivery; keep
             the per-subscriber events so the rng stream and the delivery
             interleavings are unchanged. *)
          for i = 0 to n - 1 do
            let sub = arr.(i) in
            if sub.active then schedule_delivery t src sub payload
          done
        else begin
          (* Zero jitter: all deliveries land at the same instant anyway, so
             fan out under one engine event instead of one per subscriber. *)
          let pub_id = t.pub_count in
          ignore
            (Engine.schedule t.engine ~after:t.latency (fun () ->
                 for i = 0 to n - 1 do
                   let sub = arr.(i) in
                   if sub.active then deliver t src sub payload
                   else if sub.unsub_pub >= pub_id then
                     (* Active when published, gone now: suppressed in
                        flight. (If it left before this publish, it was
                        never addressed.) *)
                     Obs.Counter.inc t.c_suppressed
                 done))
        end

let subscriber_count t topic =
  match Hashtbl.find_opt t.subs topic with None -> 0 | Some b -> b.blen - b.dead

let stats t =
  {
    published = Obs.Counter.value t.c_published;
    notified = Obs.Counter.value t.c_notified;
    suppressed = Obs.Counter.value t.c_suppressed + Obs.Counter.value t.c_suppressed_part;
  }

let suppressed_by_cause t =
  [
    ("unsubscribed", Obs.Counter.value t.c_suppressed);
    ("partitioned", Obs.Counter.value t.c_suppressed_part);
  ]

let reset_stats t =
  Obs.Counter.reset t.c_published;
  Obs.Counter.reset t.c_notified;
  Obs.Counter.reset t.c_suppressed;
  Obs.Counter.reset t.c_suppressed_part
