module Engine = Oasis_sim.Engine
module Rng = Oasis_util.Rng
module Ident = Oasis_util.Ident
module Obs = Oasis_obs.Obs

type topic = string

type 'a sub = {
  id : int;
  sub_topic : topic;
  owner : Ident.t;
  callback : topic -> 'a -> unit;
  mutable active : bool;
}

type subscription = { unsub : unit -> unit }

type stats = { published : int; notified : int; suppressed : int }

type 'a t = {
  engine : Engine.t;
  rng : Rng.t;
  obs : Obs.t;
  latency : float;
  jitter : float;
  subs : (topic, 'a sub list ref) Hashtbl.t;
  (* Last retained publish per topic (source, payload): a tombstone a late
     subscriber can ask to have replayed. OASIS retains exactly one kind of
     event — a credential record's Invalidated notice, which is true forever
     once published. *)
  retained : (topic, Ident.t option * 'a) Hashtbl.t;
  mutable next_id : int;
  (* Delivery filter consulted when a publish carries a source ident; the
     world wires this to [Fault.is_cut] so named partitions sever event
     channels exactly as they sever the network. *)
  mutable filter : (publisher:Ident.t -> owner:Ident.t -> bool) option;
  c_published : Obs.Counter.t;
  c_notified : Obs.Counter.t;
  c_suppressed : Obs.Counter.t;
  c_suppressed_part : Obs.Counter.t;
}

let create engine rng ~notify_latency ?(jitter = 0.0) ?obs () =
  let obs =
    match obs with
    | Some obs -> obs
    | None -> Obs.create ~now:(fun () -> Engine.now engine) ()
  in
  {
    engine;
    rng;
    obs;
    latency = notify_latency;
    jitter;
    subs = Hashtbl.create 64;
    retained = Hashtbl.create 16;
    next_id = 0;
    filter = None;
    c_published = Obs.counter obs "broker.published";
    c_notified = Obs.counter obs "broker.notified";
    c_suppressed = Obs.counter obs "broker.suppressed" ~labels:[ ("cause", "unsubscribed") ];
    c_suppressed_part = Obs.counter obs "broker.suppressed" ~labels:[ ("cause", "partitioned") ];
  }

let obs t = t.obs

let bucket t topic =
  match Hashtbl.find_opt t.subs topic with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.replace t.subs topic b;
      b

let unsubscribe _t subscription = subscription.unsub ()

let delay t = t.latency +. (if t.jitter > 0.0 then Rng.float t.rng t.jitter else 0.0)

let set_filter t filter = t.filter <- filter

(* Whether delivery from [src] to [sub] is severed right now. Publishes
   without a source ident predate fault injection and are never filtered. *)
let cut t src sub =
  match (src, t.filter) with
  | Some src, Some f -> f ~publisher:src ~owner:sub.owner
  | _ -> false

let schedule_delivery t src sub payload =
  let topic = sub.sub_topic in
  ignore
    (Engine.schedule t.engine ~after:(delay t) (fun () ->
         if not sub.active then
           (* The subscriber unsubscribed while this notification was
              in flight. Account for it so published × subscribers =
              notified + suppressed always holds. *)
           Obs.Counter.inc t.c_suppressed
         else if cut t src sub then begin
           (* Partitioned at delivery time: the channel is severed,
              the notification is lost like a network message. *)
           Obs.Counter.inc t.c_suppressed_part;
           if Obs.tracing t.obs then
             Obs.event t.obs "broker.suppress"
               ~labels:
                 [
                   ("cause", "partitioned");
                   ("topic", topic);
                   ("owner", Ident.to_string sub.owner);
                 ]
         end
         else begin
           Obs.Counter.inc t.c_notified;
           if Obs.tracing t.obs then
             Obs.event t.obs "broker.notify"
               ~labels:[ ("topic", topic); ("owner", Ident.to_string sub.owner) ];
           sub.callback sub.sub_topic payload
         end))

let subscribe ?(replay_retained = false) t topic ~owner callback =
  let sub = { id = t.next_id; sub_topic = topic; owner; callback; active = true } in
  t.next_id <- t.next_id + 1;
  let b = bucket t topic in
  b := sub :: !b;
  (* A late subscriber asking for replay receives the topic's retained
     event as if it had just been published: same latency, same partition
     filtering at delivery time. *)
  if replay_retained then begin
    match Hashtbl.find_opt t.retained topic with
    | Some (src, payload) -> schedule_delivery t src sub payload
    | None -> ()
  end;
  {
    unsub =
      (fun () ->
        sub.active <- false;
        b := List.filter (fun s -> s.id <> sub.id) !b);
  }

let retained t topic ~reader =
  match Hashtbl.find_opt t.retained topic with
  | None -> None
  | Some (src, payload) ->
      (* The tombstone lives on the publisher's side of the fabric: a reader
         currently partitioned from it cannot see it, exactly as it would
         miss the live notification. *)
      let severed =
        match (src, t.filter) with
        | Some src, Some f -> f ~publisher:src ~owner:reader
        | _ -> false
      in
      if severed then None else Some payload

let publish ?src ?(retain = false) t topic payload =
  Obs.Counter.inc t.c_published;
  if Obs.tracing t.obs then Obs.event t.obs "broker.publish" ~labels:[ ("topic", topic) ];
  if retain then Hashtbl.replace t.retained topic (src, payload);
  match Hashtbl.find_opt t.subs topic with
  | None -> ()
  | Some b ->
      (* Snapshot in subscription order; a subscriber added after this
         publish must not see it (unless it opts into retained replay). *)
      let snapshot = List.rev !b in
      List.iter (fun sub -> schedule_delivery t src sub payload) snapshot

let subscriber_count t topic =
  match Hashtbl.find_opt t.subs topic with None -> 0 | Some b -> List.length !b

let stats t =
  {
    published = Obs.Counter.value t.c_published;
    notified = Obs.Counter.value t.c_notified;
    suppressed = Obs.Counter.value t.c_suppressed + Obs.Counter.value t.c_suppressed_part;
  }

let suppressed_by_cause t =
  [
    ("unsubscribed", Obs.Counter.value t.c_suppressed);
    ("partitioned", Obs.Counter.value t.c_suppressed_part);
  ]

let reset_stats t =
  Obs.Counter.reset t.c_published;
  Obs.Counter.reset t.c_notified;
  Obs.Counter.reset t.c_suppressed;
  Obs.Counter.reset t.c_suppressed_part
