(** Topic-based publish/subscribe event middleware.

    OASIS "is closely integrated with an active, event-based middleware
    infrastructure ... one service can be notified of a change of state at
    another without any requirement for periodic polling" (Sect. 1, 4;
    ref [2] is the Cambridge Event Architecture). This broker supplies the
    two primitives OASIS needs: asynchronous change notification on named
    event channels, and (via {!Heartbeat}) liveness beats.

    Notifications are delivered after a configurable latency through the
    simulation engine, and counted, so experiments can report event-channel
    traffic separately from RPC traffic. *)

type 'a t
(** A broker carrying payloads of type ['a]. *)

type topic = string
(** Event channels are named; OASIS uses one channel per credential record
    (e.g. ["cr:rmc#17"]). *)

type subscription

val create :
  Oasis_sim.Engine.t ->
  Oasis_util.Rng.t ->
  notify_latency:float ->
  ?jitter:float ->
  ?obs:Oasis_obs.Obs.t ->
  unit ->
  'a t
(** [obs] is the registry publish/notify counters and trace events report
    into — normally the world's shared instance; defaults to a private one
    so standalone brokers behave as before. *)

val obs : 'a t -> Oasis_obs.Obs.t
(** The registry this broker reports into. *)

val subscribe :
  ?replay_retained:bool ->
  'a t ->
  topic ->
  owner:Oasis_util.Ident.t ->
  (topic -> 'a -> unit) ->
  subscription
(** The callback fires once per matching publish, after the notification
    latency. [owner] identifies the subscribing service for statistics and
    debugging. With [replay_retained] (default off) the topic's retained
    event, if any, is also delivered to this subscriber as though it had
    just been published — same latency, same partition filtering. Offline
    credential verification relies on this: a service that installs a
    dependency watch without first asking the issuer must still learn that
    the certificate's channel already carries a revocation tombstone. *)

val unsubscribe : 'a t -> subscription -> unit
(** Idempotent, O(1) amortised: the entry is flagged and swept out of the
    topic bucket once flagged entries outnumber live ones. Publishes in
    flight at unsubscribe time are suppressed at delivery and counted under
    [stats.suppressed], so every scheduled notification is accounted for:
    for each publish, subscribers-at-publish-time = notified + suppressed. *)

val publish : ?src:Oasis_util.Ident.t -> ?retain:bool -> 'a t -> topic -> 'a -> unit
(** Callable from any context. Delivery order to distinct subscribers of one
    publish follows subscription order; distinct publishes to one subscriber
    arrive in publish order (FIFO per link latency). [src] names the
    publishing node; when given, deliveries are subject to the partition
    filter ({!set_filter}) — publishes without a source are never
    filtered. With [retain] (default off) the event also becomes the
    topic's retained event, replacing any previous one, for subscribers who
    ask for replay; retain it only for events that stay true forever, such
    as a credential record's [Invalidated] notice.

    A publish allocates O(1): the audience is snapshotted by (array, length)
    rather than a list copy, and on jitter-free brokers the whole fan-out
    rides a single engine event instead of one per subscriber. *)

val set_filter : 'a t -> (publisher:Oasis_util.Ident.t -> owner:Oasis_util.Ident.t -> bool) option -> unit
(** Installs a delivery filter, consulted at delivery time for publishes
    that carry a [src]: [true] means the channel from publisher to
    subscriber owner is severed and the notification is suppressed (counted
    under [broker.suppressed{cause=partitioned}]). The world wires this to
    [Fault.is_cut] so partitions cut event channels alongside the
    network. *)

val retained : 'a t -> topic -> reader:Oasis_util.Ident.t -> 'a option
(** The topic's retained event as visible to [reader] right now: [None] if
    nothing was retained or if the partition filter currently severs the
    channel from the retaining publisher to [reader] — a partitioned
    verifier misses the tombstone exactly as it misses the live
    notification. Offline credential verification reads this at
    presentation time, treating the certificate's event channel as a
    push-based revocation list. *)

val subscriber_count : 'a t -> topic -> int

type stats = {
  published : int;  (** publish calls *)
  notified : int;  (** subscriber callbacks actually run *)
  suppressed : int;  (** in-flight unsubscribes + partition suppressions *)
}

val stats : 'a t -> stats

val suppressed_by_cause : 'a t -> (string * int) list
(** Per-cause suppression counts ([unsubscribed], [partitioned]); the
    registry keys are [broker.suppressed{cause=...}]. [stats.suppressed] is
    their sum. *)

val reset_stats : 'a t -> unit
