(** Topic-based publish/subscribe event middleware.

    OASIS "is closely integrated with an active, event-based middleware
    infrastructure ... one service can be notified of a change of state at
    another without any requirement for periodic polling" (Sect. 1, 4;
    ref [2] is the Cambridge Event Architecture). This broker supplies the
    two primitives OASIS needs: asynchronous change notification on named
    event channels, and (via {!Heartbeat}) liveness beats.

    Notifications are delivered after a configurable latency through the
    simulation engine, and counted, so experiments can report event-channel
    traffic separately from RPC traffic. *)

type 'a t
(** A broker carrying payloads of type ['a]. *)

type topic = string
(** Event channels are named; OASIS uses one channel per credential record
    (e.g. ["cr:rmc#17"]). *)

type subscription

val create :
  Oasis_sim.Engine.t ->
  Oasis_util.Rng.t ->
  notify_latency:float ->
  ?jitter:float ->
  ?obs:Oasis_obs.Obs.t ->
  unit ->
  'a t
(** [obs] is the registry publish/notify counters and trace events report
    into — normally the world's shared instance; defaults to a private one
    so standalone brokers behave as before. *)

val obs : 'a t -> Oasis_obs.Obs.t
(** The registry this broker reports into. *)

val subscribe : 'a t -> topic -> owner:Oasis_util.Ident.t -> (topic -> 'a -> unit) -> subscription
(** The callback fires once per matching publish, after the notification
    latency. [owner] identifies the subscribing service for statistics and
    debugging. *)

val unsubscribe : 'a t -> subscription -> unit
(** Idempotent. Publishes in flight at unsubscribe time are suppressed at
    delivery and counted under [stats.suppressed], so every scheduled
    notification is accounted for: for each publish,
    subscribers-at-publish-time = notified + suppressed. *)

val publish : ?src:Oasis_util.Ident.t -> 'a t -> topic -> 'a -> unit
(** Callable from any context. Delivery order to distinct subscribers of one
    publish follows subscription order; distinct publishes to one subscriber
    arrive in publish order (FIFO per link latency). [src] names the
    publishing node; when given, deliveries are subject to the partition
    filter ({!set_filter}) — publishes without a source are never
    filtered. *)

val set_filter : 'a t -> (publisher:Oasis_util.Ident.t -> owner:Oasis_util.Ident.t -> bool) option -> unit
(** Installs a delivery filter, consulted at delivery time for publishes
    that carry a [src]: [true] means the channel from publisher to
    subscriber owner is severed and the notification is suppressed (counted
    under [broker.suppressed{cause=partitioned}]). The world wires this to
    [Fault.is_cut] so partitions cut event channels alongside the
    network. *)

val subscriber_count : 'a t -> topic -> int

type stats = {
  published : int;  (** publish calls *)
  notified : int;  (** subscriber callbacks actually run *)
  suppressed : int;  (** in-flight unsubscribes + partition suppressions *)
}

val stats : 'a t -> stats

val suppressed_by_cause : 'a t -> (string * int) list
(** Per-cause suppression counts ([unsubscribed], [partitioned]); the
    registry keys are [broker.suppressed{cause=...}]. [stats.suppressed] is
    their sum. *)

val reset_stats : 'a t -> unit
