module Engine = Oasis_sim.Engine
module Obs = Oasis_obs.Obs

type emitter = {
  mutable running : bool;
  mutable beats : int;
  mutable stop_timer : unit -> unit;
}

let start_emitter ?src broker engine ~topic ~period ~beat =
  let emitter = { running = true; beats = 0; stop_timer = (fun () -> ()) } in
  let c_beats = Obs.counter (Broker.obs broker) "hb.beats" in
  let timer =
    Engine.every engine ~period (fun () ->
        if emitter.running then begin
          emitter.beats <- emitter.beats + 1;
          Obs.Counter.inc c_beats;
          Broker.publish ?src broker topic beat
        end;
        emitter.running)
  in
  emitter.stop_timer <- (fun () -> Engine.cancel engine timer);
  emitter

(* Cancelling the recurring timer (not just flagging [running]) is what
   keeps a decommissioned issuer from leaking one live periodic closure per
   certificate it ever issued. *)
let stop_emitter emitter =
  if emitter.running then begin
    emitter.running <- false;
    emitter.stop_timer ();
    emitter.stop_timer <- (fun () -> ())
  end

let beats_emitted emitter = emitter.beats

type monitor = {
  mutable alive : bool;
  mutable miss_fired : bool;
  mutable last_beat : float;
  mutable unsub : unit -> unit;
  mutable cancel_pending : unit -> unit;
}

(* Fresh default owner per monitor: sharing one ident across monitors made
   every owner-scoped broker operation (partition filtering, per-owner
   accounting) collide between unrelated watches. *)
let monitor_idents = Oasis_util.Ident.generator "hb-monitor"

let watch ?(accept = fun _ -> true) ?owner broker engine ~topic ~deadline ~on_miss =
  if deadline <= 0.0 then invalid_arg "Heartbeat.watch: deadline must be positive";
  let owner =
    match owner with Some o -> o | None -> Oasis_util.Ident.fresh monitor_idents
  in
  let m =
    {
      alive = true;
      miss_fired = false;
      last_beat = Engine.now engine;
      unsub = (fun () -> ());
      cancel_pending = (fun () -> ());
    }
  in
  let subscription =
    Broker.subscribe broker topic ~owner (fun _topic beat ->
        if m.alive && accept beat then m.last_beat <- Engine.now engine)
  in
  m.unsub <- (fun () -> Broker.unsubscribe broker subscription);
  (* Re-arm a timer for the earliest instant a miss could be declared. The
     miss test compares last_beat against the snapshot taken when arming —
     never a float subtraction against the deadline, which can disagree with
     the scheduled instant by an ulp and loop at a fixed virtual time. *)
  let rec arm () =
    let snapshot = m.last_beat in
    let fire_at = Float.max (snapshot +. deadline) (Engine.now engine) in
    let handle =
      Engine.schedule_at engine ~at:fire_at (fun () ->
          m.cancel_pending <- (fun () -> ());
          if m.alive then
            if m.last_beat = snapshot then begin
              (* No beat since arming: the deadline has truly lapsed. *)
              m.alive <- false;
              m.miss_fired <- true;
              m.unsub ();
              let obs = Broker.obs broker in
              Obs.Counter.inc (Obs.counter obs "hb.misses");
              if Obs.tracing obs then Obs.event obs "hb.miss" ~labels:[ ("topic", topic) ];
              on_miss ()
            end
            else arm ())
    in
    m.cancel_pending <- (fun () -> Engine.cancel engine handle)
  in
  arm ();
  m

let cancel_watch m =
  if m.alive then begin
    m.alive <- false;
    m.unsub ();
    m.cancel_pending ();
    m.cancel_pending <- (fun () -> ())
  end

let missed m = m.miss_fired
