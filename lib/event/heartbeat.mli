(** Heartbeat emitters and liveness monitors.

    Fig. 5 labels its event channels "heartbeats or change events": instead
    of (or in addition to) explicit invalidation events, an issuing service
    may emit periodic beats asserting a credential record is still valid, and
    a dependent service treats a missed beat as revocation. This module
    provides both halves, so the E5 ablation can compare the two monitoring
    disciplines (DESIGN.md §6). *)

type emitter

val start_emitter :
  ?src:Oasis_util.Ident.t ->
  'a Broker.t ->
  Oasis_sim.Engine.t ->
  topic:Broker.topic ->
  period:float ->
  beat:'a ->
  emitter
(** Publishes [beat] on [topic] every [period] until {!stop_emitter}. The
    first beat fires one period after the start. [src] names the emitting
    node so beats are subject to the broker's partition filter; without it
    beats pass through partitions (legacy behaviour). *)

val stop_emitter : emitter -> unit
(** Stopping models the issuer withdrawing the credential: beats cease and
    monitors fire after their deadline. Idempotent. Cancels the underlying
    recurring engine timer, so a stopped emitter holds no live closure — a
    decommissioned issuer with 10^6 certificates frees all of them. *)

val beats_emitted : emitter -> int

type monitor

val watch :
  ?accept:('a -> bool) ->
  ?owner:Oasis_util.Ident.t ->
  'a Broker.t ->
  Oasis_sim.Engine.t ->
  topic:Broker.topic ->
  deadline:float ->
  on_miss:(unit -> unit) ->
  monitor
(** Calls [on_miss] once if no beat arrives on [topic] for [deadline]
    virtual seconds (measured from the start of the watch, then from each
    beat). After a miss the monitor stops. [accept] filters which payloads
    count as beats (default: all) — channels may carry other event kinds.
    [owner] identifies the watching node for owner-scoped broker operations
    (partition filtering); each monitor defaults to its own fresh ident, so
    concurrent monitors never collide. *)

val cancel_watch : monitor -> unit
(** Stops the monitor without firing [on_miss]. Idempotent. *)

val missed : monitor -> bool
