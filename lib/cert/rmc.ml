module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Secret = Oasis_crypto.Secret
module Hmac = Oasis_crypto.Hmac
module Sha256 = Oasis_crypto.Sha256

type t = {
  id : Ident.t;
  issuer : Ident.t;
  role : string;
  args : Value.t list;
  issued_at : float;
  signature : Sha256.digest;
}

let tag = "rmc"

let protected_fields ~principal_key t =
  [
    Wire.Fstring principal_key;
    Wire.Fident t.id;
    Wire.Fident t.issuer;
    Wire.Fstring t.role;
    Wire.Fvalues t.args;
    Wire.Ffloat t.issued_at;
  ]

let signing_bytes ~principal_key t = Wire.encode tag (protected_fields ~principal_key t)

let sign ~secret ~principal_key t =
  Hmac.mac ~key:(Secret.to_key secret) (signing_bytes ~principal_key t)

let issue ~secret ~principal_key ~id ~issuer ~role ~args ~issued_at =
  let unsigned =
    { id; issuer; role; args; issued_at; signature = Sha256.digest_string "" }
  in
  { unsigned with signature = sign ~secret ~principal_key unsigned }

let verify ~secret ~principal_key t =
  Sha256.equal t.signature (sign ~secret ~principal_key t)

let of_parts ~id ~issuer ~role ~args ~issued_at ~signature =
  { id; issuer; role; args; issued_at; signature }

let with_args t args = { t with args }

let crr t = (t.issuer, t.id)

let size_bytes t =
  (* The principal key is not carried in the certificate. *)
  Wire.size_bytes tag
    [
      Wire.Fident t.id;
      Wire.Fident t.issuer;
      Wire.Fstring t.role;
      Wire.Fvalues t.args;
      Wire.Ffloat t.issued_at;
    ]

let pp ppf t =
  Format.fprintf ppf "RMC[%a %s(%a) by %a]" Ident.pp t.id t.role
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Value.pp)
    t.args Ident.pp t.issuer
