module Ident = Oasis_util.Ident

type verdict = Valid | Invalid

type t = {
  table : verdict Ident.Tbl.t;
  mutable hits : int;
  mutable negative_hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create () =
  { table = Ident.Tbl.create 64; hits = 0; negative_hits = 0; misses = 0; invalidations = 0 }

let cache_valid t cert_id = Ident.Tbl.replace t.table cert_id Valid

let lookup t cert_id =
  match Ident.Tbl.find_opt t.table cert_id with
  | Some Valid as v ->
      t.hits <- t.hits + 1;
      v
  | Some Invalid as v ->
      t.negative_hits <- t.negative_hits + 1;
      v
  | None ->
      t.misses <- t.misses + 1;
      None

let invalidate t cert_id =
  match Ident.Tbl.find_opt t.table cert_id with
  | Some Invalid -> ()
  | Some Valid | None ->
      (* Revocation is permanent (the issuer never resurrects a certificate
         id), so the invalidation event is itself a cachable negative
         verdict: later presentations of the dead certificate answer [false]
         locally instead of re-issuing the callback. *)
      Ident.Tbl.replace t.table cert_id Invalid;
      t.invalidations <- t.invalidations + 1

let clear t = Ident.Tbl.reset t.table

type stats = {
  hits : int;
  negative_hits : int;
  misses : int;
  invalidations : int;
  entries : int;
  negative_entries : int;
}

let stats (t : t) =
  let entries, negative_entries =
    Ident.Tbl.fold
      (fun _ verdict (pos, neg) ->
        match verdict with Valid -> (pos + 1, neg) | Invalid -> (pos, neg + 1))
      t.table (0, 0)
  in
  {
    hits = t.hits;
    negative_hits = t.negative_hits;
    misses = t.misses;
    invalidations = t.invalidations;
    entries;
    negative_entries;
  }

let reset_stats (t : t) =
  t.hits <- 0;
  t.negative_hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0
