module Ident = Oasis_util.Ident
module Obs = Oasis_obs.Obs

type verdict = Valid | Invalid

type t = {
  table : verdict Ident.Tbl.t;
  c_hits : Obs.Counter.t;
  c_negative_hits : Obs.Counter.t;
  c_misses : Obs.Counter.t;
  c_invalidations : Obs.Counter.t;
}

let create ?obs ?(labels = []) () =
  let obs = match obs with Some obs -> obs | None -> Obs.create () in
  let counter name = Obs.counter obs name ~labels in
  {
    table = Ident.Tbl.create 64;
    c_hits = counter "vcache.hits";
    c_negative_hits = counter "vcache.negative_hits";
    c_misses = counter "vcache.misses";
    c_invalidations = counter "vcache.invalidations";
  }

let cache_valid t cert_id = Ident.Tbl.replace t.table cert_id Valid

let lookup t cert_id =
  match Ident.Tbl.find_opt t.table cert_id with
  | Some Valid as v ->
      Obs.Counter.inc t.c_hits;
      v
  | Some Invalid as v ->
      Obs.Counter.inc t.c_negative_hits;
      v
  | None ->
      Obs.Counter.inc t.c_misses;
      None

let invalidate t cert_id =
  match Ident.Tbl.find_opt t.table cert_id with
  | Some Invalid -> ()
  | Some Valid | None ->
      (* Revocation is permanent (the issuer never resurrects a certificate
         id), so the invalidation event is itself a cachable negative
         verdict: later presentations of the dead certificate answer [false]
         locally instead of re-issuing the callback. *)
      Ident.Tbl.replace t.table cert_id Invalid;
      Obs.Counter.inc t.c_invalidations

let drop t cert_id =
  match Ident.Tbl.find_opt t.table cert_id with
  | Some Valid -> Ident.Tbl.remove t.table cert_id
  | Some Invalid | None -> ()

let clear t = Ident.Tbl.reset t.table

type stats = {
  hits : int;
  negative_hits : int;
  misses : int;
  invalidations : int;
  entries : int;
  negative_entries : int;
}

let stats (t : t) =
  let entries, negative_entries =
    Ident.Tbl.fold
      (fun _ verdict (pos, neg) ->
        match verdict with Valid -> (pos + 1, neg) | Invalid -> (pos, neg + 1))
      t.table (0, 0)
  in
  {
    hits = Obs.Counter.value t.c_hits;
    negative_hits = Obs.Counter.value t.c_negative_hits;
    misses = Obs.Counter.value t.c_misses;
    invalidations = Obs.Counter.value t.c_invalidations;
    entries;
    negative_entries;
  }

let reset_stats (t : t) =
  Obs.Counter.reset t.c_hits;
  Obs.Counter.reset t.c_negative_hits;
  Obs.Counter.reset t.c_misses;
  Obs.Counter.reset t.c_invalidations
