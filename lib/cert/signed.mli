(** Offline-verifiable signed credentials (DESIGN.md §12).

    The paper's credentials are public-key certificates, but the repo's
    validation path was a callback RPC to the issuer on every cross-domain
    check. This module supplies the missing signature layer: a domain root
    key certifies per-service issuing keys ({!key_cert}), and any holder of
    the root's {!address} verifies an issuer chain plus a certificate
    signature with zero network round trips. Freshness (revocation) is out
    of scope here — it stays with the heartbeat / anti-entropy machinery of
    DESIGN.md §11; this layer answers only "was this certificate genuinely
    issued, unmodified, for this principal, and is it unexpired?" *)

type key_cert = {
  subject : Oasis_util.Ident.t;  (** the issuing service *)
  subject_pk : Oasis_crypto.Elgamal.public;  (** its Schnorr issuing key *)
  key_epoch : int;  (** the issuer secret epoch this key certifies *)
  issued_at : float;
  ksig : Oasis_crypto.Schnorr.signature;  (** root signature over the canonical encoding *)
}

val key_cert_bytes : key_cert -> string
(** The canonical encoding the root signs ([ksig] excluded). *)

type chain = { root_pk : Oasis_crypto.Elgamal.public; cert : key_cert }
(** Everything a verifier needs besides the trusted root address. *)

type authority
(** The domain root: holds the root keypair and the directory of enrolled
    issuer chains (the simulation's stand-in for certificate
    pre-distribution). *)

val create_authority : Oasis_util.Rng.t -> authority

val address : authority -> string
(** Hex SHA-256 of the root public key — the only value a relying service
    must know out of band, following the address-based-identity pattern. *)

val rng : authority -> Oasis_util.Rng.t
(** The authority's private randomness stream; issuing services draw their
    signature nonces here so that worlds stay deterministic without
    perturbing the main simulation stream. *)

val generate_keypair : authority -> Oasis_crypto.Schnorr.keypair

val enrol :
  authority ->
  subject:Oasis_util.Ident.t ->
  subject_pk:Oasis_crypto.Elgamal.public ->
  key_epoch:int ->
  now:float ->
  chain
(** Certify [subject_pk] as [subject]'s issuing key for [key_epoch],
    replacing any previous chain for [subject] (re-enrolment after a secret
    rotation bumps the epoch and invalidates older appointments offline). *)

val chain_for : authority -> Oasis_util.Ident.t -> chain option

val revoke_chain : authority -> Oasis_util.Ident.t -> unit
(** Withdraws [subject]'s chain (e.g. on decommission): its certificates
    stop verifying offline and relying services fall back to callbacks. *)

val verify_chain : address:string -> chain -> bool
(** The root public key hashes to the trusted [address] and the key
    certificate carries a valid root signature. *)

val issue_rmc :
  keypair:Oasis_crypto.Schnorr.keypair ->
  rng:Oasis_util.Rng.t ->
  principal_key:string ->
  id:Oasis_util.Ident.t ->
  issuer:Oasis_util.Ident.t ->
  role:string ->
  args:Oasis_util.Value.t list ->
  issued_at:float ->
  Rmc.t
(** As {!Rmc.issue}, but the 32-byte signature field carries a packed
    Schnorr signature over {!Rmc.signing_bytes} (same principal binding,
    same canonical bytes) instead of an HMAC. *)

val verify_rmc : address:string -> chain:chain -> principal_key:string -> Rmc.t -> bool
(** Zero-RPC verification: chain validity, issuer/chain subject match, and
    the signature over the presented fields under the presented principal
    key. Tampered fields, forged signatures, stolen certificates and
    non-canonical encodings (rejected upstream in {!Codec}) all fail. *)

val issue_appointment :
  keypair:Oasis_crypto.Schnorr.keypair ->
  rng:Oasis_util.Rng.t ->
  epoch:int ->
  id:Oasis_util.Ident.t ->
  issuer:Oasis_util.Ident.t ->
  kind:string ->
  args:Oasis_util.Value.t list ->
  holder:string ->
  issued_at:float ->
  ?expires_at:float ->
  unit ->
  Appointment.t

val verify_appointment : address:string -> chain:chain -> now:float -> Appointment.t -> bool
(** Chain + signature + expiry + epoch currency (the chain's [key_epoch]
    plays the role the HMAC scheme's [current_epoch] does). *)
