module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Sha256 = Oasis_crypto.Sha256

type error = { offset : int; reason : string }

let pp_error ppf { offset; reason } =
  Format.fprintf ppf "certificate decode error at byte %d: %s" offset reason

exception Decode of error

let fail offset reason = raise (Decode { offset; reason })

(* ------------------------------------------------------------------ *)
(* Reader for the tag-length-value stream produced by {!Wire}.        *)
(* ------------------------------------------------------------------ *)

type reader = { src : string; mutable pos : int }

let read_tlv r =
  let n = String.length r.src in
  if r.pos >= n then fail r.pos "unexpected end of input";
  let tag = r.src.[r.pos] in
  let len_start = r.pos + 1 in
  let colon = ref len_start in
  while !colon < n && r.src.[!colon] <> ':' do
    incr colon
  done;
  if !colon >= n then fail r.pos "missing length separator";
  let len =
    (* Strict canonical decimal: digits only, no leading zeros. Anything
       [int_of_string_opt] would also admit ("0x10", "+5", "1_0", "010")
       gives one certificate several encodings, which a signature over the
       canonical bytes must not allow. *)
    let s = String.sub r.src len_start (!colon - len_start) in
    let canonical =
      String.length s > 0
      && String.for_all (fun c -> c >= '0' && c <= '9') s
      && (String.length s = 1 || s.[0] <> '0')
    in
    if not canonical then fail len_start "malformed length"
    else
      match int_of_string_opt s with
      | Some l -> l
      | None -> fail len_start "length out of range"
  in
  if !colon + 1 + len > n then fail !colon "payload truncated";
  let payload = String.sub r.src (!colon + 1) len in
  r.pos <- !colon + 1 + len;
  (tag, payload)

let expect_tag r want =
  let at = r.pos in
  let tag, payload = read_tlv r in
  if tag <> want then fail at (Printf.sprintf "expected field %C, found %C" want tag);
  payload

(* Every field decoder below enforces canonicity by re-encoding: a payload
   is accepted only if it is byte-identical to how the encoder would write
   the decoded value. decode ∘ encode is then the identity, and any
   non-canonical re-encoding of a signed certificate is rejected before the
   signature is even checked. *)

let decode_ident at s =
  match Ident.of_string s with
  | Some id when String.equal (Ident.to_string id) s -> id
  | Some _ | None -> fail at (Printf.sprintf "malformed identifier %S" s)

let decode_float at s =
  match float_of_string_opt s with
  | Some f when Float.is_nan f -> fail at "NaN is not a valid certificate timestamp"
  | Some f when String.equal (Printf.sprintf "%h" f) s -> f
  | Some _ | None -> fail at (Printf.sprintf "malformed float %S" s)

let decode_int at s =
  match int_of_string_opt s with
  | Some n when String.equal (string_of_int n) s -> n
  | Some _ | None -> fail at (Printf.sprintf "malformed int %S" s)

(* Values were encoded by {!Oasis_util.Value.encode}: a nested TLV stream. *)
let decode_values at payload =
  let r = { src = payload; pos = 0 } in
  let values = ref [] in
  while r.pos < String.length payload do
    let tag, body = read_tlv r in
    let value =
      match tag with
      | 'i' -> Value.Int (decode_int at body)
      | 's' -> Value.Str body
      | 'b' -> (
          match body with
          | "1" -> Value.Bool true
          | "0" -> Value.Bool false
          | _ -> fail at (Printf.sprintf "malformed bool %S" body))
      | 't' -> Value.Time (decode_float at body)
      | 'd' -> Value.Id (decode_ident at body)
      | c -> fail at (Printf.sprintf "unknown value tag %C" c)
    in
    values := value :: !values
  done;
  List.rev !values

let decode_signature at s =
  match Sha256.of_raw_string s with
  | Some d -> d
  | None -> fail at "signature must be 32 bytes"

(* ------------------------------------------------------------------ *)
(* RMC                                                                *)
(* ------------------------------------------------------------------ *)

let rmc_to_string (rmc : Rmc.t) =
  Wire.encode "rmc"
    [
      Wire.Fident rmc.id;
      Wire.Fident rmc.issuer;
      Wire.Fstring rmc.role;
      Wire.Fvalues rmc.args;
      Wire.Ffloat rmc.issued_at;
      Wire.Fstring (Sha256.to_raw_string rmc.signature);
    ]

let run_decoder f s =
  match f { src = s; pos = 0 } with
  | v -> Ok v
  | exception Decode e -> Error e

let decode_header r want =
  let at = r.pos in
  let kind = expect_tag r 'T' in
  if kind <> want then fail at (Printf.sprintf "expected a %s certificate, found %S" want kind)

let rmc_of_string s =
  run_decoder
    (fun r ->
      decode_header r "rmc";
      let id = decode_ident r.pos (expect_tag r 'I') in
      let issuer = decode_ident r.pos (expect_tag r 'I') in
      let role = expect_tag r 'S' in
      let args = decode_values r.pos (expect_tag r 'L') in
      let issued_at = decode_float r.pos (expect_tag r 'F') in
      let signature = decode_signature r.pos (expect_tag r 'S') in
      if r.pos <> String.length s then fail r.pos "trailing bytes after certificate";
      Rmc.of_parts ~id ~issuer ~role ~args ~issued_at ~signature)
    s

(* ------------------------------------------------------------------ *)
(* Appointment                                                        *)
(* ------------------------------------------------------------------ *)

let appointment_to_string (appt : Appointment.t) =
  Wire.encode "appt"
    [
      Wire.Fident appt.id;
      Wire.Fident appt.issuer;
      Wire.Fstring appt.kind;
      Wire.Fvalues appt.args;
      Wire.Fstring appt.holder;
      Wire.Ffloat appt.issued_at;
      Wire.Ffloat (match appt.expires_at with Some e -> e | None -> Float.infinity);
      Wire.Fint appt.epoch;
      Wire.Fstring (Sha256.to_raw_string appt.signature);
    ]

let appointment_of_string s =
  run_decoder
    (fun r ->
      decode_header r "appt";
      let id = decode_ident r.pos (expect_tag r 'I') in
      let issuer = decode_ident r.pos (expect_tag r 'I') in
      let kind = expect_tag r 'S' in
      let args = decode_values r.pos (expect_tag r 'L') in
      let holder = expect_tag r 'S' in
      let issued_at = decode_float r.pos (expect_tag r 'F') in
      let expiry_raw = decode_float r.pos (expect_tag r 'F') in
      (* Only +infinity (the encoder's spelling of None) means "never
         expires"; NaN is already rejected in [decode_float], and
         −infinity stays [Some] — a certificate expired since forever,
         not one that never expires. *)
      let expires_at = if expiry_raw = Float.infinity then None else Some expiry_raw in
      let epoch = decode_int r.pos (expect_tag r 'N') in
      let signature = decode_signature r.pos (expect_tag r 'S') in
      if r.pos <> String.length s then fail r.pos "trailing bytes after certificate";
      Appointment.of_parts ~id ~issuer ~kind ~args ~holder ~issued_at ~expires_at ~epoch ~signature)
    s
