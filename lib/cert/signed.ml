module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng
module Sha256 = Oasis_crypto.Sha256
module Schnorr = Oasis_crypto.Schnorr
module Elgamal = Oasis_crypto.Elgamal

(* A per-service issuing key, certified by the domain root. The signature
   covers the canonical wire encoding of the other fields, so a key
   certificate has exactly one byte representation, like every other
   certificate in lib/cert. *)
type key_cert = {
  subject : Ident.t;
  subject_pk : Elgamal.public;
  key_epoch : int;
  issued_at : float;
  ksig : Schnorr.signature;
}

let key_cert_bytes kc =
  Wire.encode "keycert"
    [
      Wire.Fident kc.subject;
      Wire.Fstring (Elgamal.public_to_string kc.subject_pk);
      Wire.Fint kc.key_epoch;
      Wire.Ffloat kc.issued_at;
    ]

type chain = { root_pk : Elgamal.public; cert : key_cert }

let address_of_public pk =
  Sha256.to_hex (Sha256.digest_string ("oasis-root\x00" ^ Elgamal.public_to_string pk))

type authority = {
  rng : Rng.t;
  root : Schnorr.keypair;
  chains : chain Ident.Tbl.t;
}

let create_authority rng = { rng; root = Schnorr.generate rng; chains = Ident.Tbl.create 16 }

let address a = address_of_public a.root.Schnorr.public

let rng a = a.rng

let generate_keypair a = Schnorr.generate a.rng

let null_sig = { Schnorr.e = 0L; s = 0L }

let enrol a ~subject ~subject_pk ~key_epoch ~now =
  let unsigned = { subject; subject_pk; key_epoch; issued_at = now; ksig = null_sig } in
  let ksig = Schnorr.sign ~secret:a.root.Schnorr.secret a.rng (key_cert_bytes unsigned) in
  let chain = { root_pk = a.root.Schnorr.public; cert = { unsigned with ksig } } in
  Ident.Tbl.replace a.chains subject chain;
  chain

let chain_for a subject = Ident.Tbl.find_opt a.chains subject

let revoke_chain a subject = Ident.Tbl.remove a.chains subject

let verify_chain ~address:addr chain =
  String.equal (address_of_public chain.root_pk) addr
  && Schnorr.verify ~public:chain.root_pk (key_cert_bytes chain.cert) chain.cert.ksig

(* ------------------------------------------------------------------ *)
(* Offline-verifiable certificates                                    *)
(* ------------------------------------------------------------------ *)

let issue_rmc ~keypair ~rng ~principal_key ~id ~issuer ~role ~args ~issued_at =
  let unsigned =
    Rmc.of_parts ~id ~issuer ~role ~args ~issued_at ~signature:(Schnorr.to_digest null_sig)
  in
  let sg =
    Schnorr.sign ~secret:keypair.Schnorr.secret rng (Rmc.signing_bytes ~principal_key unsigned)
  in
  Rmc.of_parts ~id ~issuer ~role ~args ~issued_at ~signature:(Schnorr.to_digest sg)

let verify_rmc ~address:addr ~chain ~principal_key (rmc : Rmc.t) =
  verify_chain ~address:addr chain
  && Ident.equal rmc.issuer chain.cert.subject
  &&
  match Schnorr.of_digest rmc.signature with
  | Some sg ->
      Schnorr.verify ~public:chain.cert.subject_pk (Rmc.signing_bytes ~principal_key rmc) sg
  | None -> false

let issue_appointment ~keypair ~rng ~epoch ~id ~issuer ~kind ~args ~holder ~issued_at ?expires_at
    () =
  let parts signature =
    Appointment.of_parts ~id ~issuer ~kind ~args ~holder ~issued_at ~expires_at ~epoch ~signature
  in
  let unsigned = parts (Schnorr.to_digest null_sig) in
  let sg = Schnorr.sign ~secret:keypair.Schnorr.secret rng (Appointment.signing_bytes unsigned) in
  parts (Schnorr.to_digest sg)

let verify_appointment ~address:addr ~chain ~now (appt : Appointment.t) =
  verify_chain ~address:addr chain
  && Ident.equal appt.issuer chain.cert.subject
  (* The key certificate pins the issuer's current epoch: after a secret
     rotation the root re-certifies the key under the new epoch, and
     certificates of older epochs must be re-issued — the same semantics
     the epoch-HMAC scheme enforces with [current_epoch]. *)
  && appt.epoch = chain.cert.key_epoch
  && (not (Appointment.expired ~now appt))
  &&
  match Schnorr.of_digest appt.signature with
  | Some sg -> Schnorr.verify ~public:chain.cert.subject_pk (Appointment.signing_bytes appt) sg
  | None -> false
