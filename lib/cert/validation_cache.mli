(** Remote validation caching (Sect. 4).

    "An OASIS-aware service will validate a certificate presented as an
    argument via callback to the issuer. The service may cache the
    certificate and the result of validation in order to reduce the
    communication overhead of repeated callback. This requires an event
    channel so that the issuer can notify the service should the certificate
    be invalidated for any reason."

    Two kinds of verdict are cached:
    - {b positive}: a callback answered "valid"; the caller must hold an
      invalidation watch on the issuer's event channel so the entry can be
      retired when the certificate dies.
    - {b negative}: the issuer announced invalidation over that very watch.
      Revocation is permanent in OASIS (re-activation mints a fresh
      certificate id), so the negative verdict is final and later
      presentations of the dead certificate are refused without any further
      callback.

    A plain [false] callback answer is {e not} cached: RMC validation
    depends on the presenter's session key (a stolen certificate presented
    by a thief fails, while the owner's presentation would succeed), so a
    negative wire verdict is not a property of the certificate id alone.
    Experiment E3 measures the round trips this cache saves. *)

type t

type verdict = Valid | Invalid

val create : ?obs:Oasis_obs.Obs.t -> ?labels:Oasis_obs.Obs.label list -> unit -> t
(** Hit/miss/invalidation counters register into [obs] (default: a private
    registry) under [vcache.*] with the given [labels] — callers owning
    several caches distinguish them with e.g. [("service", name)]. *)

val cache_valid : t -> Oasis_util.Ident.t -> unit
(** Records a positive callback verdict for a certificate id. *)

val lookup : t -> Oasis_util.Ident.t -> verdict option
(** [Some Valid] / [Some Invalid] if a verdict is cached (counts a hit /
    negative hit); [None] means the caller must perform the callback
    (counts a miss). *)

val invalidate : t -> Oasis_util.Ident.t -> unit
(** Called on an invalidation event from the issuer's channel. Converts the
    entry (present or not) into a cached negative verdict. Idempotent. *)

val drop : t -> Oasis_util.Ident.t -> unit
(** Retires a positive entry without recording a negative verdict: the
    verdict became {e unknown} (issuer unreachable, heartbeat silence), not
    {e false}. The next presentation performs the callback again. Cached
    negatives are left in place — revocation stays permanent. *)

val clear : t -> unit

type stats = {
  hits : int;  (** positive-verdict cache hits *)
  negative_hits : int;  (** callbacks suppressed by a cached invalidation *)
  misses : int;
  invalidations : int;
  entries : int;  (** positive entries currently cached *)
  negative_entries : int;  (** invalidated certificates remembered *)
}

val stats : t -> stats
val reset_stats : t -> unit
