module Ident = Oasis_util.Ident
module Value = Oasis_util.Value

type status = Valid | Revoked of { at : float; reason : string }

type kind = Kind_rmc | Kind_appointment

type t = {
  cert_id : Ident.t;
  issuer : Ident.t;
  kind : kind;
  principal : Ident.t;
  name : string;
  args : Value.t list;
  issued_at : float;
  mutable status : status;
}

let topic_of ~issuer ~cert_id =
  Printf.sprintf "cr:%s/%s" (Ident.to_string issuer) (Ident.to_string cert_id)

let topic t = topic_of ~issuer:t.issuer ~cert_id:t.cert_id

let is_valid t = match t.status with Valid -> true | Revoked _ -> false

(* Records keyed by certificate id, with a secondary index keyed by
   (issuer, name) so "every record for role r" — the solver-candidate and
   introspection queries — costs the matching records, not a scan of the
   whole store. The valid count is maintained incrementally for the same
   reason. *)
type store = {
  records : t Ident.Tbl.t;
  by_name : (string, t Ident.Tbl.t) Hashtbl.t;
  mutable valid : int;
}

let name_key ~issuer ~name = Ident.to_string issuer ^ "\x00" ^ name

let create_store () = { records = Ident.Tbl.create 256; by_name = Hashtbl.create 64; valid = 0 }

let add store ~cert_id ~issuer ~kind ~principal ~name ~args ~issued_at =
  if Ident.Tbl.mem store.records cert_id then
    invalid_arg
      (Printf.sprintf "Credential_record.add: duplicate certificate %s" (Ident.to_string cert_id));
  let record = { cert_id; issuer; kind; principal; name; args; issued_at; status = Valid } in
  Ident.Tbl.replace store.records cert_id record;
  let key = name_key ~issuer ~name in
  let bucket =
    match Hashtbl.find_opt store.by_name key with
    | Some b -> b
    | None ->
        let b = Ident.Tbl.create 8 in
        Hashtbl.replace store.by_name key b;
        b
  in
  Ident.Tbl.replace bucket cert_id record;
  store.valid <- store.valid + 1;
  record

let find store cert_id = Ident.Tbl.find_opt store.records cert_id

let find_named store ~issuer ~name =
  match Hashtbl.find_opt store.by_name (name_key ~issuer ~name) with
  | None -> []
  | Some bucket -> Ident.Tbl.fold (fun _ record acc -> record :: acc) bucket []

let revoke store cert_id ~at ~reason =
  match Ident.Tbl.find_opt store.records cert_id with
  | Some record when is_valid record ->
      record.status <- Revoked { at; reason };
      store.valid <- store.valid - 1;
      Some record
  | Some _ | None -> None

let count store = Ident.Tbl.length store.records

let valid_count store = store.valid

let iter store f = Ident.Tbl.iter (fun _ record -> f record) store.records
