module Ident = Oasis_util.Ident
module Value = Oasis_util.Value

type status = Valid | Revoked of { at : float; reason : string }

type kind = Kind_rmc | Kind_appointment

type t = {
  cert_id : Ident.t;
  issuer : Ident.t;
  kind : kind;
  principal : Ident.t;
  name : string;
  args : Value.t list;
  issued_at : float;
  mutable status : status;
}

let topic_of ~issuer ~cert_id =
  Printf.sprintf "cr:%s/%s" (Ident.to_string issuer) (Ident.to_string cert_id)

let topic t = topic_of ~issuer:t.issuer ~cert_id:t.cert_id

let is_valid t = match t.status with Valid -> true | Revoked _ -> false

(* Records keyed by certificate id, with a secondary index keyed by
   (issuer, name) so "every record for role r" — the solver-candidate and
   introspection queries — costs the matching records, not a scan of the
   whole store. The valid count is maintained incrementally for the same
   reason.

   The store is sharded: primary records by certificate-id hash, the name
   index by (issuer, name)-key hash. One service holding 10^6 records in a
   single hashtable pays resize pauses proportional to the whole store and
   pins one huge bucket array; sixteen shards cap each resize at a sixteenth
   of the store and keep every lookup O(1) within its shard. Shards also
   give revocation cascades and future parallel walks an embarrassingly
   partitionable layout. *)

let shard_bits = 4
let shard_count = 1 lsl shard_bits

type shard = {
  records : t Ident.Tbl.t;
  by_name : (string, t Ident.Tbl.t) Hashtbl.t;
}

type store = { shards : shard array; mutable valid : int }

let name_key ~issuer ~name = Ident.to_string issuer ^ "\x00" ^ name

let create_store () =
  {
    shards =
      Array.init shard_count (fun _ ->
          { records = Ident.Tbl.create 32; by_name = Hashtbl.create 8 });
    valid = 0;
  }

let record_shard store cert_id = store.shards.(Ident.hash cert_id land (shard_count - 1))

let name_shard store key = store.shards.(Hashtbl.hash key land (shard_count - 1))

let add store ~cert_id ~issuer ~kind ~principal ~name ~args ~issued_at =
  let shard = record_shard store cert_id in
  if Ident.Tbl.mem shard.records cert_id then
    invalid_arg
      (Printf.sprintf "Credential_record.add: duplicate certificate %s" (Ident.to_string cert_id));
  let record = { cert_id; issuer; kind; principal; name; args; issued_at; status = Valid } in
  Ident.Tbl.replace shard.records cert_id record;
  let key = name_key ~issuer ~name in
  let by_name = (name_shard store key).by_name in
  let bucket =
    match Hashtbl.find_opt by_name key with
    | Some b -> b
    | None ->
        let b = Ident.Tbl.create 8 in
        Hashtbl.replace by_name key b;
        b
  in
  Ident.Tbl.replace bucket cert_id record;
  store.valid <- store.valid + 1;
  record

let find store cert_id = Ident.Tbl.find_opt (record_shard store cert_id).records cert_id

let find_named store ~issuer ~name =
  let key = name_key ~issuer ~name in
  match Hashtbl.find_opt (name_shard store key).by_name key with
  | None -> []
  | Some bucket -> Ident.Tbl.fold (fun _ record acc -> record :: acc) bucket []

let revoke store cert_id ~at ~reason =
  match find store cert_id with
  | Some record when is_valid record ->
      record.status <- Revoked { at; reason };
      store.valid <- store.valid - 1;
      Some record
  | Some _ | None -> None

let count store =
  Array.fold_left (fun acc shard -> acc + Ident.Tbl.length shard.records) 0 store.shards

let valid_count store = store.valid

let iter store f =
  Array.iter (fun shard -> Ident.Tbl.iter (fun _ record -> f record) shard.records) store.shards
