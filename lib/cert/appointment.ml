module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Secret = Oasis_crypto.Secret
module Hmac = Oasis_crypto.Hmac
module Sha256 = Oasis_crypto.Sha256

type t = {
  id : Ident.t;
  issuer : Ident.t;
  kind : string;
  args : Value.t list;
  holder : string;
  issued_at : float;
  expires_at : float option;
  epoch : int;
  signature : Sha256.digest;
}

let tag = "appt"

let protected_fields t =
  [
    Wire.Fident t.id;
    Wire.Fident t.issuer;
    Wire.Fstring t.kind;
    Wire.Fvalues t.args;
    Wire.Fstring t.holder;
    Wire.Ffloat t.issued_at;
    Wire.Ffloat (match t.expires_at with Some e -> e | None -> Float.infinity);
    Wire.Fint t.epoch;
  ]

let signing_bytes t = Wire.encode tag (protected_fields t)

let sign ~master_secret t =
  let epoch_secret = Secret.rotate master_secret ~epoch:t.epoch in
  Hmac.mac ~key:(Secret.to_key epoch_secret) (signing_bytes t)

let issue ~master_secret ~epoch ~id ~issuer ~kind ~args ~holder ~issued_at ?expires_at () =
  let unsigned =
    { id; issuer; kind; args; holder; issued_at; expires_at; epoch;
      signature = Sha256.digest_string "" }
  in
  { unsigned with signature = sign ~master_secret unsigned }

let of_parts ~id ~issuer ~kind ~args ~holder ~issued_at ~expires_at ~epoch ~signature =
  { id; issuer; kind; args; holder; issued_at; expires_at; epoch; signature }

let expired ~now t = match t.expires_at with Some e -> now >= e | None -> false

let verify_ignoring_epoch ~master_secret ~now t =
  (not (expired ~now t)) && Sha256.equal t.signature (sign ~master_secret t)

let verify ~master_secret ~current_epoch ~now t =
  t.epoch = current_epoch && verify_ignoring_epoch ~master_secret ~now t

let with_holder t holder = { t with holder }

let with_args t args = { t with args }

let size_bytes t = Wire.size_bytes tag (protected_fields t)

let pp ppf t =
  Format.fprintf ppf "APPT[%a %s(%a) holder=%s by %a%s]" Ident.pp t.id t.kind
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Value.pp)
    t.args t.holder Ident.pp t.issuer
    (match t.expires_at with Some e -> Printf.sprintf " exp=%g" e | None -> "")
