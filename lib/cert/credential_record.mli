(** Credential records (CR) — issuer-side validity state (Fig. 1, 4, 5).

    "The issuer keeps information on the RMC, including its current
    validity, in a credential record (CR). The credential record reference
    (CRR) in the RMC allows the issuer and the CR to be located." (Sect. 4)

    A store holds the records of one issuing service. Each record names the
    event channel ({!topic}) on which the issuer announces invalidation, so
    remote caches and dependent roles can subscribe (the ECR proxies of
    Fig. 5 are those subscriptions).

    Storage is sharded sixteen ways by key hash (DESIGN.md §14): a store of
    10^6 records pays per-shard hashtable resizes instead of store-wide
    pauses, and lookups stay O(1) within a shard. The interface is
    unchanged — sharding is invisible except to the allocator. *)

type status =
  | Valid
  | Revoked of { at : float; reason : string }

type kind = Kind_rmc | Kind_appointment

type t = private {
  cert_id : Oasis_util.Ident.t;
  issuer : Oasis_util.Ident.t;
  kind : kind;
  principal : Oasis_util.Ident.t;  (** real principal identity, kept for audit *)
  name : string;  (** role name or appointment kind *)
  args : Oasis_util.Value.t list;
  issued_at : float;
  mutable status : status;
}

val topic : t -> string
(** The record's event channel name, derived from the CRR. *)

val topic_of : issuer:Oasis_util.Ident.t -> cert_id:Oasis_util.Ident.t -> string

val is_valid : t -> bool

type store

val create_store : unit -> store

val add :
  store ->
  cert_id:Oasis_util.Ident.t ->
  issuer:Oasis_util.Ident.t ->
  kind:kind ->
  principal:Oasis_util.Ident.t ->
  name:string ->
  args:Oasis_util.Value.t list ->
  issued_at:float ->
  t
(** Raises [Invalid_argument] on duplicate certificate ids. *)

val find : store -> Oasis_util.Ident.t -> t option

val find_named : store -> issuer:Oasis_util.Ident.t -> name:string -> t list
(** Every record (valid or revoked) issued by [issuer] for role or
    appointment kind [name], in unspecified order. Served from a secondary
    index maintained on {!add}: cost is proportional to the matching
    records, never the store size. *)

val revoke : store -> Oasis_util.Ident.t -> at:float -> reason:string -> t option
(** Marks the record revoked. [Some record] if it existed and was valid
    (i.e. this call changed its state); [None] otherwise. Revocation is
    permanent — OASIS re-activates roles by issuing fresh certificates, it
    never resurrects old ones. *)

val count : store -> int

val valid_count : store -> int
(** The number of currently valid records; maintained incrementally, O(1). *)

val iter : store -> (t -> unit) -> unit
