(** Appointment certificates (Sect. 1, 2, 4.1).

    "Appointment certificates ... are certificates whose lifetime is
    independent of the duration of the session of activation of the
    appointer role. They may be long-lived, such as when they are used to
    certify academic or professional qualification ... They may be
    transient, for example when certifying that someone is authorised to
    stand in for a colleague."

    Unlike RMCs they cannot be bound to a session, so they are bound to a
    {e persistent} principal id (a long-lived public key), carry an optional
    expiry, and are signed under a rotatable epoch secret so that they can be
    "re-issued, encrypted with a new server secret, from time to time"
    (Sect. 4.1). *)

type t = private {
  id : Oasis_util.Ident.t;
  issuer : Oasis_util.Ident.t;  (** the appointer's service (validates on demand) *)
  kind : string;  (** e.g. ["medically_qualified"], ["employed_as_doctor"] *)
  args : Oasis_util.Value.t list;
  holder : string;  (** persistent principal binding, e.g. a long-lived public key; a protected, readable field *)
  issued_at : float;
  expires_at : float option;
  epoch : int;  (** which rotation of the issuer secret signed this *)
  signature : Oasis_crypto.Sha256.digest;
}

val issue :
  master_secret:Oasis_crypto.Secret.t ->
  epoch:int ->
  id:Oasis_util.Ident.t ->
  issuer:Oasis_util.Ident.t ->
  kind:string ->
  args:Oasis_util.Value.t list ->
  holder:string ->
  issued_at:float ->
  ?expires_at:float ->
  unit ->
  t

val verify : master_secret:Oasis_crypto.Secret.t -> current_epoch:int -> now:float -> t -> bool
(** Checks the signature under the certificate's epoch secret, that the
    epoch is still current (an older epoch means the issuer has rotated its
    secret: the certificate must be re-issued), and expiry. *)

val verify_ignoring_epoch : master_secret:Oasis_crypto.Secret.t -> now:float -> t -> bool
(** Signature and expiry only; lets tests separate the failure causes. *)

val of_parts :
  id:Oasis_util.Ident.t ->
  issuer:Oasis_util.Ident.t ->
  kind:string ->
  args:Oasis_util.Value.t list ->
  holder:string ->
  issued_at:float ->
  expires_at:float option ->
  epoch:int ->
  signature:Oasis_crypto.Sha256.digest ->
  t
(** Reassembles a certificate parsed off the wire; unauthoritative until
    {!verify} accepts it. *)

val expired : now:float -> t -> bool

val signing_bytes : t -> string
(** The canonical byte string every signature scheme (epoch-HMAC here,
    {!Oasis_cert.Signed} offline signatures) covers: all protected fields
    including the holder binding, expiry and epoch, in wire encoding. *)

val with_holder : t -> string -> t
(** Theft attempt: same certificate re-bound to a different holder, original
    signature. Must fail {!verify}. *)

val with_args : t -> Oasis_util.Value.t list -> t

val size_bytes : t -> int
val pp : Format.formatter -> t -> unit
