(** Role membership certificates (Fig. 4).

    "RMCs are encryption-protected to guard against tampering and are
    principal-specific to guard against theft. ... Although not visible as a
    parameter field in the RMC, a principal id is an argument to the
    encryption function that generates the signature." (Sect. 4)

    The [principal_key] argument below is that hidden binding: a
    session-specific token or the session public key (Sect. 4.1). It is an
    input to signing and verification but {e not} a field of the
    certificate, exactly as in Fig. 4. *)

type t = private {
  id : Oasis_util.Ident.t;  (** certificate id; the credential record reference (CRR) names it *)
  issuer : Oasis_util.Ident.t;  (** issuing service, locatable from the CRR *)
  role : string;
  args : Oasis_util.Value.t list;  (** protected parameter fields L1…Ln *)
  issued_at : float;
  signature : Oasis_crypto.Sha256.digest;
}

val issue :
  secret:Oasis_crypto.Secret.t ->
  principal_key:string ->
  id:Oasis_util.Ident.t ->
  issuer:Oasis_util.Ident.t ->
  role:string ->
  args:Oasis_util.Value.t list ->
  issued_at:float ->
  t

val verify : secret:Oasis_crypto.Secret.t -> principal_key:string -> t -> bool
(** Recomputes the signature from the presented fields and the claimed
    principal binding. Fails for tampered fields, forged signatures, and
    stolen certificates presented under a different principal key. *)

val of_parts :
  id:Oasis_util.Ident.t ->
  issuer:Oasis_util.Ident.t ->
  role:string ->
  args:Oasis_util.Value.t list ->
  issued_at:float ->
  signature:Oasis_crypto.Sha256.digest ->
  t
(** Reassembles a certificate parsed off the wire. The signature is taken
    as presented; it carries no authority until {!verify} accepts it. *)

val with_args : t -> Oasis_util.Value.t list -> t
(** The certificate with altered parameter fields and the {e original}
    signature — an adversary's tampering attempt, for tests. *)

val crr : t -> Oasis_util.Ident.t * Oasis_util.Ident.t
(** The credential record reference: [(issuer, id)]. *)

val signing_bytes : principal_key:string -> t -> string
(** The canonical byte string every signature scheme (HMAC here,
    {!Oasis_cert.Signed} offline signatures) covers: the protected fields
    prefixed by the hidden principal binding, in wire encoding. *)

val size_bytes : t -> int
val pp : Format.formatter -> t -> unit
