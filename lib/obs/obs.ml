type label = string * string

module Counter = struct
  type t = { mutable n : int }

  let inc t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
  let reset t = t.n <- 0
end

module Gauge = struct
  type t = { mutable v : float }

  let set t v = t.v <- v
  let add t d = t.v <- t.v +. d
  let value t = t.v
  let reset t = t.v <- 0.0
end

module Histogram = struct
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let observe t v =
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
  let min t = t.min
  let max t = t.max

  let reset t =
    t.count <- 0;
    t.sum <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type phase = Begin | End | Instant

type event = {
  seq : int;
  at : float;
  name : string;
  phase : phase;
  span : int;
  labels : label list;
}

type sink = event -> unit

type t = {
  now : unit -> float;
  metrics : (string, string * label list * metric) Hashtbl.t;
      (* rendered key -> (name, labels, metric) *)
  mutable sinks : sink list;  (* attach order *)
  mutable tracing : bool;
  mutable seq : int;
  mutable next_span : int;
}

let create ?(now = fun () -> 0.0) () =
  { now; metrics = Hashtbl.create 64; sinks = []; tracing = false; seq = 0; next_span = 0 }

let null () = create ()

let tracing t = t.tracing

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let render_key name labels =
  match labels with
  | [] -> name
  | labels ->
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
      name ^ "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) sorted) ^ "}"

let find_or_create t name labels make =
  let key = render_key name labels in
  match Hashtbl.find_opt t.metrics key with
  | Some (_, _, metric) -> metric
  | None ->
      let metric = make () in
      Hashtbl.replace t.metrics key (name, labels, metric);
      metric

let kind_error key = invalid_arg (Printf.sprintf "Obs: %s registered as a different metric kind" key)

let counter t ?(labels = []) name =
  match find_or_create t name labels (fun () -> M_counter { Counter.n = 0 }) with
  | M_counter c -> c
  | _ -> kind_error (render_key name labels)

let gauge t ?(labels = []) name =
  match find_or_create t name labels (fun () -> M_gauge { Gauge.v = 0.0 }) with
  | M_gauge g -> g
  | _ -> kind_error (render_key name labels)

let histogram t ?(labels = []) name =
  match
    find_or_create t name labels (fun () ->
        M_histogram { Histogram.count = 0; sum = 0.0; min = infinity; max = neg_infinity })
  with
  | M_histogram h -> h
  | _ -> kind_error (render_key name labels)

let metric_values t =
  Hashtbl.fold
    (fun key (name, labels, metric) acc ->
      match metric with
      | M_counter c -> (key, float_of_int (Counter.value c)) :: acc
      | M_gauge g -> (key, Gauge.value g) :: acc
      | M_histogram h ->
          let derived suffix v = (render_key (name ^ suffix) labels, v) in
          derived ".count" (float_of_int (Histogram.count h))
          :: derived ".sum" (Histogram.sum h)
          :: derived ".mean" (Histogram.mean h)
          :: derived ".max" (Histogram.max h)
          :: acc)
    t.metrics []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let value t key = List.assoc_opt key (metric_values t)

(* ------------------------------------------------------------------ *)
(* Tracing                                                            *)
(* ------------------------------------------------------------------ *)

let attach t sink =
  t.sinks <- t.sinks @ [ sink ];
  t.tracing <- true

let detach_all t =
  t.sinks <- [];
  t.tracing <- false

let emit t ~phase ~span ~labels name =
  t.seq <- t.seq + 1;
  let e = { seq = t.seq; at = t.now (); name; phase; span; labels } in
  List.iter (fun sink -> sink e) t.sinks

let event t ?(labels = []) name = if t.tracing then emit t ~phase:Instant ~span:0 ~labels name

let last_seq t = t.seq

let span t ?(labels = []) name f =
  if not t.tracing then f ()
  else begin
    t.next_span <- t.next_span + 1;
    let id = t.next_span in
    emit t ~phase:Begin ~span:id ~labels name;
    let t0 = Sys.time () in
    let finish extra =
      let wall_ms = (Sys.time () -. t0) *. 1000.0 in
      emit t ~phase:End ~span:id
        ~labels:(labels @ (("wall_ms", Printf.sprintf "%.3f" wall_ms) :: extra))
        name
    in
    match f () with
    | v ->
        finish [];
        v
    | exception exn ->
        finish [ ("error", Printexc.to_string exn) ];
        raise exn
  end

let memory_sink () =
  let events = ref [] in
  ((fun e -> events := e :: !events), fun () -> List.rev !events)

(* ------------------------------------------------------------------ *)
(* JSONL export                                                       *)
(* ------------------------------------------------------------------ *)

let phase_to_string = function Begin -> "B" | End -> "E" | Instant -> "I"

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_to_jsonl e =
  let labels =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape_json k) (escape_json v)) e.labels)
  in
  Printf.sprintf "{\"seq\":%d,\"ts\":%.9g,\"ph\":\"%s\",\"span\":%d,\"name\":\"%s\",\"labels\":{%s}}"
    e.seq e.at (phase_to_string e.phase) e.span (escape_json e.name) labels

(* A minimal JSON parser covering exactly the subset the exporter writes:
   objects, strings, numbers. Enough for round-tripping and for the schema
   check — no external json dependency. *)

type json = J_num of float | J_str of string | J_obj of (string * json) list

exception Bad of string

let parse_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "expected '%c' at %d, found '%c'" c !pos d
    | None -> fail "expected '%c' at %d, found end of line" c !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = line.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          if !pos >= n then fail "dangling escape";
          let e = line.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub line !pos 4 in
              pos := !pos + 4;
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape %s" hex
              in
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else fail "non-ASCII \\u escape unsupported"
          | c -> fail "unknown escape \\%c" c);
          go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match line.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected a number at %d" start;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number %s" (String.sub line start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> J_obj (parse_object ())
    | Some '"' -> J_str (parse_string ())
    | Some _ -> J_num (parse_number ())
    | None -> fail "unexpected end of line"
  and parse_object () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      []
    end
    else
      let rec fields acc =
        skip_ws ();
        let key = parse_string () in
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
        | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
        | _ -> fail "expected ',' or '}' at %d" !pos
      in
      fields []
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at %d" !pos;
  v

let event_of_jsonl line =
  match parse_json line with
  | exception Bad m -> Error m
  | J_num _ | J_str _ -> Error "top level is not an object"
  | J_obj fields -> (
      let get name =
        match List.assoc_opt name fields with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing field %s" name)
      in
      let int_field name =
        match get name with
        | Ok (J_num f) when Float.is_integer f && f >= 0.0 -> Ok (int_of_float f)
        | Ok _ -> Error (Printf.sprintf "field %s is not a non-negative integer" name)
        | Error _ as e -> e
      in
      let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
      let* seq = int_field "seq" in
      let* () = if seq >= 1 then Ok () else Error "seq must be positive" in
      let* at = match get "ts" with Ok (J_num f) -> Ok f | Ok _ -> Error "ts is not a number" | Error _ as e -> e in
      let* phase =
        match get "ph" with
        | Ok (J_str "B") -> Ok Begin
        | Ok (J_str "E") -> Ok End
        | Ok (J_str "I") -> Ok Instant
        | Ok _ -> Error "ph must be \"B\", \"E\" or \"I\""
        | Error _ as e -> e
      in
      let* span = int_field "span" in
      let* name =
        match get "name" with
        | Ok (J_str s) when s <> "" -> Ok s
        | Ok (J_str _) -> Error "name must be non-empty"
        | Ok _ -> Error "name is not a string"
        | Error _ as e -> e
      in
      let* labels =
        match get "labels" with
        | Ok (J_obj pairs) ->
            let rec strings acc = function
              | [] -> Ok (List.rev acc)
              | (k, J_str v) :: rest -> strings ((k, v) :: acc) rest
              | (k, _) :: _ -> Error (Printf.sprintf "label %s is not a string" k)
            in
            strings [] pairs
        | Ok _ -> Error "labels is not an object"
        | Error _ as e -> e
      in
      Ok { seq; at; name; phase; span; labels })

let validate_jsonl_line line = Result.map (fun (_ : event) -> ()) (event_of_jsonl line)
