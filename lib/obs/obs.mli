(** Unified observability: a metrics registry and a span/event tracer.

    The paper's active-security claims (Sect. 4, Fig. 5) are claims about
    runtime behaviour — how fast an env change cascades into revocation, how
    many messages a validation round costs. Every layer of the reproduction
    therefore reports into one shared registry owned by the world, and the
    per-module [stats] records ({!Oasis_sim.Network.stats},
    {!Oasis_event.Broker.stats}, [Service.stats], …) are views over it
    rather than private mutable state. Spans and events stream to pluggable
    sinks: an in-memory sink for tests and a JSONL exporter for tooling
    ([oasisctl trace]). See DESIGN.md §10.

    {b Cost model.} Metrics are always live: a counter increment is one
    mutable-field update, exactly what the old private records paid. Tracing
    is off until a sink is attached; the hot-path idiom is

    {[ if Obs.tracing obs then Obs.event obs "net.drop" ~labels:[ ... ] ]}

    so a sink-less ("null") configuration pays one load-and-branch per
    potential event and allocates nothing. *)

type label = string * string
(** A key/value pair qualifying a metric or event, e.g. [("cause", "link_loss")]. *)

(** Monotone integer counters. *)
module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Last-value float gauges. *)
module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
  val reset : t -> unit
end

(** Streaming histograms (count / sum / min / max; no buckets — the
    experiments report aggregates). One histogram records one unit,
    virtual seconds or wall seconds; the name says which. *)
module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** [nan] while empty. *)

  val min : t -> float
  val max : t -> float
  val reset : t -> unit
end

type t
(** A registry plus tracer. Each {!Oasis_core.World} owns one; components
    created outside a world default to a private instance. *)

val create : ?now:(unit -> float) -> unit -> t
(** [now] supplies event timestamps — virtual time when driven by an
    engine. Defaults to a constant 0 clock. *)

val null : unit -> t
(** A fresh instance with no sinks and the constant clock: metrics work,
    tracing stays off. The zero-overhead configuration benchmarks run in. *)

val tracing : t -> bool
(** [true] iff at least one sink is attached. Guard event construction with
    this so disabled tracing costs one branch. *)

(** {1 Registry} *)

val counter : t -> ?labels:label list -> string -> Counter.t
(** Finds or creates the counter registered under [name] and [labels]
    (label order is irrelevant). Raises [Invalid_argument] if the key is
    registered as a different metric kind. *)

val gauge : t -> ?labels:label list -> string -> Gauge.t
val histogram : t -> ?labels:label list -> string -> Histogram.t

val render_key : string -> label list -> string
(** The canonical textual key: [name] or [name{k=v,k2=v2}] with labels
    sorted by key — the format {!metric_values}, {!value} and the
    scenario-script [expect-metric] directive use. *)

val metric_values : t -> (string * float) list
(** Every registered metric as [(rendered key, value)], sorted by key.
    Histograms expand into [name.count], [name.sum], [name.mean],
    [name.max] entries. *)

val value : t -> string -> float option
(** Looks one rendered key up in {!metric_values}. *)

(** {1 Tracing} *)

type phase = Begin | End | Instant

type event = {
  seq : int;  (** 1-based, strictly increasing per registry: total order *)
  at : float;  (** virtual time from [now] *)
  name : string;
  phase : phase;
  span : int;  (** joins the Begin/End pair of one span; 0 for instants *)
  labels : label list;
}

type sink = event -> unit

val attach : t -> sink -> unit
(** Sinks receive every subsequent event, in attach order. Attaching the
    first sink turns {!tracing} on. *)

val detach_all : t -> unit
(** Removes every sink and turns tracing off. *)

val event : t -> ?labels:label list -> string -> unit
(** Emits an [Instant] event; a no-op without sinks. *)

val last_seq : t -> int
(** Sequence number of the most recently emitted event; 0 before any event
    (or while tracing is off). Decision-provenance records store this to
    correlate an audit-log entry with the trace neighbourhood it was made
    in. *)

val span : t -> ?labels:label list -> string -> (unit -> 'a) -> 'a
(** Runs the thunk between a [Begin] and an [End] event sharing a fresh
    span id; the [End] carries a ["wall_ms"] label with the wall-clock
    duration. Without sinks the thunk runs with no other work. An exception
    still emits the [End] (labelled ["error"]) and re-raises. *)

val memory_sink : unit -> sink * (unit -> event list)
(** An in-memory sink and a function returning everything captured so far,
    in emission order. *)

(** {1 JSONL export}

    One event per line:
    [{"seq":12,"ts":0.004,"ph":"I","span":0,"name":"net.drop","labels":{"cause":"link_loss"}}] *)

val event_to_jsonl : event -> string
(** Without the trailing newline. *)

val event_of_jsonl : string -> (event, string) result
(** Parses and schema-checks one line: required fields [seq] (positive
    integer), [ts] (number), [ph] (["B"|"E"|"I"]), [span] (non-negative
    integer), [name] (non-empty string), [labels] (object of strings).
    Round-trips {!event_to_jsonl} exactly. *)

val validate_jsonl_line : string -> (unit, string) result
(** {!event_of_jsonl} with the event discarded — the schema check
    [oasisctl trace --check] and [make trace-smoke] run. *)
