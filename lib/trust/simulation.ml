module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng

type server_kind = Honest | Byzantine of float | Colluder of int

let pp_server_kind ppf = function
  | Honest -> Format.pp_print_string ppf "honest"
  | Byzantine p -> Format.fprintf ppf "byzantine(p=%g)" p
  | Colluder k -> Format.fprintf ppf "colluder(pad=%d)" k

type params = {
  servers : int;
  clients : int;
  byzantine_fraction : float;
  byzantine_breach_probability : float;
  colluder_fraction : float;
  colluder_padding : int;
  rounds : int;
  interactions_per_round : int;
  threshold : float;
  discounting : bool;
  favourable_presentation : bool;
  seed : int;
}

let default_params =
  {
    servers = 40;
    clients = 40;
    byzantine_fraction = 0.25;
    byzantine_breach_probability = 0.9;
    colluder_fraction = 0.0;
    colluder_padding = 2;
    rounds = 30;
    interactions_per_round = 80;
    threshold = 0.5;
    discounting = true;
    favourable_presentation = false;
    seed = 42;
  }

type round_stats = {
  round : int;
  proceeded_with_good : int;
  proceeded_with_bad : int;
  refused_good : int;
  refused_bad : int;
  accuracy : float;
  mean_rogue_weight : float;
}

type result = { params : params; per_round : round_stats list; final_accuracy : float }

type server = { s_id : Ident.t; kind : server_kind; s_history : History.t }

type client = { c_id : Ident.t; assessor : Assess.t; mutable decisions : int }

let is_bad = function Honest -> false | Byzantine _ | Colluder _ -> true

let run params =
  if params.servers < 2 || params.clients < 1 then invalid_arg "Simulation.run: population too small";
  let rng = Rng.create params.seed in
  let honest_registrar = Registrar.create (Rng.split rng) ~name:"main" () in
  let rogue_registrar = Registrar.create (Rng.split rng) ~name:"rogue" ~honest:false () in
  let n_byz = int_of_float (Float.round (params.byzantine_fraction *. float_of_int params.servers)) in
  let n_col = int_of_float (Float.round (params.colluder_fraction *. float_of_int params.servers)) in
  if n_byz + n_col > params.servers then invalid_arg "Simulation.run: fractions exceed 1";
  let server_gen = Ident.generator "server" in
  let servers =
    Array.init params.servers (fun i ->
        let kind =
          if i < n_byz then Byzantine params.byzantine_breach_probability
          else if i < n_byz + n_col then Colluder params.colluder_padding
          else Honest
        in
        let s_id = Ident.fresh server_gen in
        { s_id; kind; s_history = History.create s_id })
  in
  (* Shuffle so kind does not correlate with identifier order. *)
  Rng.shuffle rng servers;
  let client_gen = Ident.generator "client" in
  let clients =
    Array.init params.clients (fun _ ->
        {
          c_id = Ident.fresh client_gen;
          assessor = Assess.create ~threshold:params.threshold ~discounting:params.discounting ();
          decisions = 0;
        })
  in
  let validate cert =
    let r : Audit.t = cert in
    if Ident.equal r.registrar (Registrar.id honest_registrar) then
      Registrar.validate honest_registrar cert
    else if Ident.equal r.registrar (Registrar.id rogue_registrar) then
      Registrar.validate rogue_registrar cert
    else false
  in
  let per_round = ref [] in
  for round = 1 to params.rounds do
    let now = float_of_int round in
    (* Colluders pad their histories before the round's business. *)
    Array.iter
      (fun server ->
        match server.kind with
        | Colluder padding ->
            for _ = 1 to padding do
              let fake_client = Ident.make "ghost" (Rng.int rng 1000000) in
              ignore
                (History.add server.s_history
                   (Registrar.fabricate rogue_registrar ~client:fake_client ~server:server.s_id
                      ~at:now)
                  : bool)
            done
        | Honest | Byzantine _ -> ())
      servers;
    let good_yes = ref 0 and bad_yes = ref 0 and good_no = ref 0 and bad_no = ref 0 in
    for _ = 1 to params.interactions_per_round do
      let client = clients.(Rng.int rng (Array.length clients)) in
      let server = servers.(Rng.int rng (Array.length servers)) in
      let presented =
        if params.favourable_presentation then History.present_favourable server.s_history
        else History.present server.s_history
      in
      let verdict = Assess.assess client.assessor ~validate ~subject:server.s_id ~presented in
      client.decisions <- client.decisions + 1;
      let bad = is_bad server.kind in
      if verdict.proceed then begin
        if bad then incr bad_yes else incr good_yes;
        let server_outcome =
          match server.kind with
          | Honest -> Audit.Fulfilled
          | Byzantine p -> if Rng.bernoulli rng p then Audit.Breached else Audit.Fulfilled
          | Colluder _ -> Audit.Breached
        in
        let cert =
          Registrar.record_interaction honest_registrar ~client:client.c_id ~server:server.s_id
            ~at:now ~client_outcome:Audit.Fulfilled ~server_outcome
        in
        ignore (History.add server.s_history cert : bool);
        Assess.feedback client.assessor verdict ~actual:server_outcome
      end
      else if bad then incr bad_no
      else incr good_no
    done;
    let decisions = !good_yes + !bad_yes + !good_no + !bad_no in
    let correct = !good_yes + !bad_no in
    let mean_rogue_weight =
      Array.fold_left
        (fun acc client ->
          acc +. Assess.registrar_weight client.assessor (Registrar.id rogue_registrar))
        0.0 clients
      /. float_of_int (Array.length clients)
    in
    per_round :=
      {
        round;
        proceeded_with_good = !good_yes;
        proceeded_with_bad = !bad_yes;
        refused_good = !good_no;
        refused_bad = !bad_no;
        accuracy = (if decisions = 0 then 1.0 else float_of_int correct /. float_of_int decisions);
        mean_rogue_weight;
      }
      :: !per_round
  done;
  let per_round = List.rev !per_round in
  let tail = max 1 (params.rounds / 4) in
  let last = List.filteri (fun i _ -> i >= params.rounds - tail) per_round in
  let final_accuracy =
    List.fold_left (fun acc r -> acc +. r.accuracy) 0.0 last /. float_of_int (List.length last)
  in
  { params; per_round; final_accuracy }
