(** Audit-certificate registrars: CIV services extended per Sect. 6.

    "If a certificate issuing and validation (CIV) service already exists in
    a domain its function might be extended to generate such a certificate."

    The paper also names the failure modes this module lets experiments
    exercise: "a client and service might collude to build up a false
    history of trustworthiness. Similarly, a rogue domain might provide
    valueless audit certificates, or repudiate those issued to clients who
    had acted in good faith." A rogue registrar will {!fabricate} histories
    and can {!repudiate} genuine certificates; honest ones will not. *)

type t

val create : Oasis_util.Rng.t -> name:string -> ?honest:bool -> unit -> t
(** [honest] defaults to [true]. Deterministic ids derive from [name]. *)

val id : t -> Oasis_util.Ident.t
val is_honest : t -> bool

val record_interaction :
  t ->
  client:Oasis_util.Ident.t ->
  server:Oasis_util.Ident.t ->
  at:float ->
  client_outcome:Audit.outcome ->
  server_outcome:Audit.outcome ->
  Audit.t
(** Issues the audit certificate for a real interaction witnessed by this
    registrar's domain. *)

val fabricate :
  t ->
  client:Oasis_util.Ident.t ->
  server:Oasis_util.Ident.t ->
  at:float ->
  Audit.t
(** Rogue only: a certificate for an interaction that never happened, both
    sides marked {!Audit.Fulfilled}. Raises [Invalid_argument] on an honest
    registrar. *)

val repudiate : t -> Oasis_util.Ident.t -> unit
(** Rogue only: subsequently deny a certificate it genuinely issued. *)

val validate : t -> Audit.t -> bool
(** Checks the signature, that this registrar issued it, and that it has not
    been repudiated. Counts toward {!validations}. *)

val issued_count : t -> int

val issued_certs : t -> Audit.t list
(** Every certificate this registrar ever issued, in issue order — the
    registrar's own durable record, which anti-entropy re-delivers after a
    crash left only one party's wallet updated (DESIGN.md §16). Wallet
    dedup makes re-delivery idempotent. *)

val validations : t -> int
