module Ident = Oasis_util.Ident

type t = { owner : Ident.t; mutable certs : Audit.t list; seen : unit Ident.Tbl.t }

let create owner = { owner; certs = []; seen = Ident.Tbl.create 16 }

let owner t = t.owner

let add t cert =
  (* Dedup by certificate id: re-presenting the same certificate must not
     inflate the wallet (and hence the beta estimate downstream). *)
  if Audit.involves cert t.owner && not (Ident.Tbl.mem t.seen cert.Audit.id) then begin
    Ident.Tbl.replace t.seen cert.Audit.id ();
    t.certs <- cert :: t.certs;
    true
  end
  else false

let present t = t.certs

let present_favourable t =
  List.filter (fun cert -> Audit.outcome_for cert t.owner = Some Audit.Fulfilled) t.certs

let size t = List.length t.certs
