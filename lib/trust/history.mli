(** A party's interaction history.

    "Each party will accumulate audit certificates which embody its
    interaction history" (abstract). Parties present their history when
    approaching an unknown counterparty; the assessor validates what is
    presented. A party controls its own wallet — it can withhold
    unfavourable certificates, which is why assessors also weigh volume and
    recency ({!Assess}). *)

type t

val create : Oasis_util.Ident.t -> t
val owner : t -> Oasis_util.Ident.t

val add : t -> Audit.t -> bool
(** Only certificates involving the owner are kept; others are ignored, as
    is any certificate whose id the wallet already holds (re-presenting one
    favourable certificate ten times must not count it ten times). Returns
    whether the certificate was actually filed — [false] means it was a
    duplicate or did not involve the owner, so downstream aggregates need
    no update (anti-entropy re-delivery relies on this idempotence). *)

val present : t -> Audit.t list
(** Everything, newest first. *)

val present_favourable : t -> Audit.t list
(** What a strategic party shows: only certificates where its own outcome is
    {!Audit.Fulfilled}. *)

val size : t -> int
