module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng
module Secret = Oasis_crypto.Secret

type t = {
  rid : Ident.t;
  honest : bool;
  secret : Secret.t;
  cert_gen : Ident.gen;
  issued : Audit.t Ident.Tbl.t;
  repudiated : unit Ident.Tbl.t;
  mutable validation_count : int;
}

let create rng ~name ?(honest = true) () =
  {
    rid = Ident.make ("registrar-" ^ name) 0;
    honest;
    secret = Secret.generate rng;
    cert_gen = Ident.generator ("audit-" ^ name);
    issued = Ident.Tbl.create 256;
    repudiated = Ident.Tbl.create 16;
    validation_count = 0;
  }

let id t = t.rid
let is_honest t = t.honest

let issue_cert t ~client ~server ~at ~client_outcome ~server_outcome =
  let cert_id = Ident.fresh t.cert_gen in
  let cert =
    Audit.issue ~secret:t.secret ~id:cert_id ~registrar:t.rid ~client ~server ~at ~client_outcome
      ~server_outcome
  in
  Ident.Tbl.replace t.issued cert_id cert;
  cert

let record_interaction t ~client ~server ~at ~client_outcome ~server_outcome =
  issue_cert t ~client ~server ~at ~client_outcome ~server_outcome

let fabricate t ~client ~server ~at =
  if t.honest then invalid_arg "Registrar.fabricate: honest registrars do not fabricate";
  issue_cert t ~client ~server ~at ~client_outcome:Audit.Fulfilled
    ~server_outcome:Audit.Fulfilled

let repudiate t cert_id =
  if t.honest then invalid_arg "Registrar.repudiate: honest registrars do not repudiate";
  Ident.Tbl.replace t.repudiated cert_id ()

let validate t (cert : Audit.t) =
  t.validation_count <- t.validation_count + 1;
  Ident.equal cert.registrar t.rid
  && Ident.Tbl.mem t.issued cert.id
  && (not (Ident.Tbl.mem t.repudiated cert.id))
  && Audit.verify ~secret:t.secret cert

let issued_count t = Ident.Tbl.length t.issued

let issued_certs t =
  Ident.Tbl.fold (fun _ cert acc -> cert :: acc) t.issued []
  |> List.sort (fun (a : Audit.t) (b : Audit.t) -> Ident.compare a.id b.id)

let validations t = t.validation_count
