(** Hash-chained, append-only log of access-control decisions.

    Sect. 6 motivates "a distributed record of the histories of services
    and principals". The per-service decision log is the service-side half
    of that record: every grant, deny, revoke, suspect and reconcile
    decision is appended with full provenance — the rule that fired, the
    credentials and environmental facts it rested on, and the obs trace
    sequence number it correlates with — and chained with SHA-256 so that
    any later mutation of any byte of any record is detectable.

    Chaining: record [i] stores [prev], the hash of record [i-1] (record 0
    stores a genesis digest derived from the owning service's identifier),
    and [hash = SHA256(prev_raw || payload_i)] where [payload_i] is the
    canonical {!Oasis_cert.Wire} encoding of the record's fields. The
    exported textual form ({!export}) can be re-verified offline with
    {!verify_string} — flipping a single byte anywhere in the export makes
    verification fail ([oasisctl audit verify --tamper] demonstrates
    this). *)

type decision = Grant | Deny | Revoke | Suspect | Reconcile

val decision_label : decision -> string
(** ["grant"], ["deny"], ["revoke"], ["suspect"], ["reconcile"]. *)

val decision_of_label : string -> decision option

(** One decision with its provenance. *)
type record = {
  seq : int;  (** position in the chain, from 0 *)
  at : float;  (** simulated time of the decision *)
  decision : decision;
  principal : Oasis_util.Ident.t;  (** the party the decision is about *)
  action : string;  (** e.g. ["activate:doctor"], ["invoke:read_record"] *)
  args : Oasis_util.Value.t list;  (** role / privilege parameters *)
  rule : string;  (** canonical text of the rule that fired, or the reason *)
  creds : Oasis_util.Ident.t list;  (** credential ids supporting the decision *)
  env_facts : string list;  (** environmental constraints consulted *)
  trace_seq : int;  (** obs event seq this correlates with; 0 = tracing off *)
  prev : Oasis_crypto.Sha256.digest;
  hash : Oasis_crypto.Sha256.digest;
}

type t

val create : service:Oasis_util.Ident.t -> t

val append :
  t ->
  at:float ->
  decision:decision ->
  principal:Oasis_util.Ident.t ->
  action:string ->
  ?args:Oasis_util.Value.t list ->
  ?rule:string ->
  ?creds:Oasis_util.Ident.t list ->
  ?env_facts:string list ->
  ?trace_seq:int ->
  unit ->
  record

val service : t -> Oasis_util.Ident.t
val length : t -> int

val head : t -> Oasis_crypto.Sha256.digest
(** Hash of the most recent record (the genesis digest when empty). *)

val records : t -> record list
(** Oldest first. A chain rebuilt with {!resume} holds its pre-crash prefix
    only as verified bytes, so [records] returns just the post-resume
    (typed) records; {!length} still counts the whole chain. *)

val imported_count : t -> int
(** How many records in the chain are the opaque resumed prefix (0 for a
    chain that never crossed a crash). *)

val find : t -> seq:int -> record option

val verify : t -> (int, int * string) result
(** Recomputes the whole chain from genesis. [Ok n] means all [n] records
    are intact; [Error (seq, why)] names the first record that fails. *)

val export : t -> string
(** Textual chain: a header line naming the service, then one line per
    record — hex canonical payload and hex chain hash. [prev] is implicit
    (the previous line's hash). Suitable for writing to a file and
    re-verifying offline. [export t = export_header t ^ concat of
    export_line per record], which is what lets services mirror the chain
    into their durable store incrementally — one {!export_line} per append
    — instead of rewriting the whole export every time. *)

val export_header : t -> string
(** Just the header line (newline-terminated) — written once when the
    durable mirror of a chain is created. *)

val export_line : record -> string
(** One record's export line (newline-terminated) — appended to the durable
    mirror as the decision is logged. *)

val resume : service:Oasis_util.Ident.t -> string -> (t, int * string) result
(** Rebuild a chain from its durable export after a crash: verifies every
    line against the genesis digest for [service] (a chain exported by a
    different service is rejected outright) and returns a log whose length
    and head continue exactly where the export stopped. The verified prefix
    is kept as opaque bytes (the wire encoding is one-way); new appends
    chain onto it and re-exports reproduce the prefix byte-for-byte.
    [Error (seq, why)] is the fail-closed signal: the durable record was
    tampered with or truncated mid-line, and the service must refuse to
    build on it. *)

val verify_string : string -> (int, int * string) result
(** Verifies an {!export}ed chain without access to the original log.
    [Ok n] = [n] records intact. Any single-byte change to the exported
    string — payload, hash, header or structure — yields [Error]. *)

val tamper : string -> byte:int -> string
(** [tamper s ~byte] flips the low bit of byte [byte mod length] of [s] —
    the adversary move that {!verify_string} must detect, whether the byte
    lands in a payload, a hash, the header or a line separator. *)
