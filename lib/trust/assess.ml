module Ident = Oasis_util.Ident

(* Per-subject running beta aggregates, valued at [t_ref] on the virtual
   clock. Because exponential decay scales every already-folded weight by
   the same factor exp(-lambda * dt), an aggregate can be brought forward
   to any later instant with one multiplication instead of re-walking the
   wallet — the basis of O(certs-for-subject) assessment. *)
type agg = {
  mutable s : float; (* decayed success mass, valued at t_ref *)
  mutable f : float; (* decayed failure mass, valued at t_ref *)
  mutable t_ref : float;
  mutable count : int; (* certificates folded in, for diagnostics *)
}

type t = {
  thr : float;
  discounting : bool;
  weights : float Ident.Tbl.t; (* registrar -> credibility *)
  mutable decay_rate : float; (* lambda; 0.0 = ageless (legacy) *)
  aggregates : agg Ident.Tbl.t; (* subject -> running aggregate *)
}

let create ?(threshold = 0.5) ?(discounting = true) ?(decay_rate = 0.0) () =
  if threshold <= 0.0 || threshold >= 1.0 then
    invalid_arg "Assess.create: threshold must lie in (0, 1)";
  if decay_rate < 0.0 then invalid_arg "Assess.create: decay_rate must be >= 0";
  {
    thr = threshold;
    discounting;
    weights = Ident.Tbl.create 16;
    decay_rate;
    aggregates = Ident.Tbl.create 16;
  }

let threshold t = t.thr
let decay_rate t = t.decay_rate

let invalidate t = Ident.Tbl.reset t.aggregates

let set_decay_rate t rate =
  if rate < 0.0 then invalid_arg "Assess.set_decay_rate: rate must be >= 0";
  if rate <> t.decay_rate then begin
    t.decay_rate <- rate;
    invalidate t
  end

let registrar_weight t registrar =
  match Ident.Tbl.find_opt t.weights registrar with Some w -> w | None -> 1.0

(* Weight one certificate carries at virtual time [now]: registrar
   credibility times exp(-lambda * age). A certificate "from the future"
   (clock skew in hand-built tests) counts at full weight. *)
let cert_weight t ~now (cert : Audit.t) =
  let age = Float.max 0.0 (now -. cert.Audit.at) in
  registrar_weight t cert.Audit.registrar *. exp (-.t.decay_rate *. age)

let beta_score ~successes ~failures =
  (successes +. 1.0) /. (successes +. failures +. 2.0)

(* Bring an aggregate forward to [now]. Never rewinds: assessing at an
   earlier instant than the aggregate's reference would need the undecayed
   terms back, so callers fall through to a full recompute instead. *)
let advance t agg ~now =
  if now > agg.t_ref then begin
    let k = exp (-.t.decay_rate *. (now -. agg.t_ref)) in
    agg.s <- agg.s *. k;
    agg.f <- agg.f *. k;
    agg.t_ref <- now
  end

let observe t ~subject ~now cert =
  match Ident.Tbl.find_opt t.aggregates subject with
  | None -> () (* no running aggregate yet; first full assess seeds it *)
  | Some agg ->
      advance t agg ~now;
      let w = cert_weight t ~now cert in
      (match Audit.outcome_for cert subject with
      | Some Audit.Fulfilled -> agg.s <- agg.s +. w
      | Some Audit.Breached -> agg.f <- agg.f +. w
      | None -> ());
      agg.count <- agg.count + 1

let cached_score t ~subject ~now =
  match Ident.Tbl.find_opt t.aggregates subject with
  | None -> None
  | Some agg ->
      if now < agg.t_ref then None
      else begin
        advance t agg ~now;
        Some (beta_score ~successes:agg.s ~failures:agg.f)
      end

let aggregate_count t ~subject =
  match Ident.Tbl.find_opt t.aggregates subject with
  | None -> None
  | Some agg -> Some agg.count

type verdict = {
  subject : Ident.t;
  score : float;
  proceed : bool;
  evidence : (Audit.t * float) list;
  rejected : int;
  rejected_not_about_subject : int;
  rejected_validation_failed : int;
  rejected_duplicate : int;
}

let assess_at ?(remember = false) t ~now ~validate ~subject ~presented =
  let seen = Ident.Tbl.create 16 in
  let evidence, not_about, invalid, dup =
    List.fold_left
      (fun (evidence, not_about, invalid, dup) cert ->
        if Ident.Tbl.mem seen cert.Audit.id then (evidence, not_about, invalid, dup + 1)
        else begin
          Ident.Tbl.replace seen cert.Audit.id ();
          if not (Audit.involves cert subject) then (evidence, not_about + 1, invalid, dup)
          else if not (validate cert) then (evidence, not_about, invalid + 1, dup)
          else ((cert, cert_weight t ~now cert) :: evidence, not_about, invalid, dup)
        end)
      ([], 0, 0, 0) presented
  in
  let successes, failures =
    List.fold_left
      (fun (s, f) ((cert : Audit.t), weight) ->
        match Audit.outcome_for cert subject with
        | Some Audit.Fulfilled -> (s +. weight, f)
        | Some Audit.Breached -> (s, f +. weight)
        | None -> (s, f))
      (0.0, 0.0) evidence
  in
  (* Beta-reputation point estimate with a uniform prior. *)
  let score = beta_score ~successes ~failures in
  if remember then
    Ident.Tbl.replace t.aggregates subject
      { s = successes; f = failures; t_ref = now; count = List.length evidence };
  {
    subject;
    score;
    proceed = score >= t.thr;
    evidence;
    rejected = not_about + invalid + dup;
    rejected_not_about_subject = not_about;
    rejected_validation_failed = invalid;
    rejected_duplicate = dup;
  }

(* Ageless assessment: with [now = 0.0] every age clamps to zero, so the
   decay factor is 1 and only registrar credibility weighs — the pre-decay
   behaviour, kept for callers outside the simulated clock. *)
let assess t ~validate ~subject ~presented =
  assess_at t ~now:0.0 ~validate ~subject ~presented

let clamp lo hi x = Float.max lo (Float.min hi x)

let feedback t verdict ~actual =
  if t.discounting then
    let vouchers =
      (* Registrars whose certificates spoke in the subject's favour. *)
      List.filter_map
        (fun ((cert : Audit.t), _w) ->
          match Audit.outcome_for cert verdict.subject with
          | Some Audit.Fulfilled -> Some cert.registrar
          | Some Audit.Breached | None -> None)
        verdict.evidence
      |> List.sort_uniq Ident.compare
    in
    let adjust factor registrar =
      let w = clamp 0.01 1.0 (registrar_weight t registrar *. factor) in
      Ident.Tbl.replace t.weights registrar w
    in
    let punish_or_reward () =
      match actual with
      | Audit.Breached when verdict.proceed ->
          (* The vouched-for party betrayed: the vouchers lose credibility fast. *)
          List.iter (adjust 0.5) vouchers
      | Audit.Fulfilled ->
          (* Consistent testimony: slow recovery. *)
          List.iter (adjust 1.1) vouchers
      | Audit.Breached -> ()
    in
    punish_or_reward ();
    (* Registrar credibilities moved, so every running aggregate that folded
       their certificates in at the old weight is stale. *)
    if vouchers <> [] then invalidate t
