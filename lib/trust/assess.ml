module Ident = Oasis_util.Ident

type t = {
  thr : float;
  discounting : bool;
  weights : float Ident.Tbl.t; (* registrar -> credibility *)
}

let create ?(threshold = 0.5) ?(discounting = true) () =
  if threshold <= 0.0 || threshold >= 1.0 then
    invalid_arg "Assess.create: threshold must lie in (0, 1)";
  { thr = threshold; discounting; weights = Ident.Tbl.create 16 }

let threshold t = t.thr

let registrar_weight t registrar =
  match Ident.Tbl.find_opt t.weights registrar with Some w -> w | None -> 1.0

type verdict = {
  subject : Ident.t;
  score : float;
  proceed : bool;
  evidence : (Audit.t * float) list;
  rejected : int;
  rejected_not_about_subject : int;
  rejected_validation_failed : int;
  rejected_duplicate : int;
}

let assess t ~validate ~subject ~presented =
  let seen = Ident.Tbl.create 16 in
  let evidence, not_about, invalid, dup =
    List.fold_left
      (fun (evidence, not_about, invalid, dup) cert ->
        if Ident.Tbl.mem seen cert.Audit.id then (evidence, not_about, invalid, dup + 1)
        else begin
          Ident.Tbl.replace seen cert.Audit.id ();
          if not (Audit.involves cert subject) then (evidence, not_about + 1, invalid, dup)
          else if not (validate cert) then (evidence, not_about, invalid + 1, dup)
          else ((cert, registrar_weight t cert.Audit.registrar) :: evidence, not_about, invalid, dup)
        end)
      ([], 0, 0, 0) presented
  in
  let successes, failures =
    List.fold_left
      (fun (s, f) ((cert : Audit.t), weight) ->
        match Audit.outcome_for cert subject with
        | Some Audit.Fulfilled -> (s +. weight, f)
        | Some Audit.Breached -> (s, f +. weight)
        | None -> (s, f))
      (0.0, 0.0) evidence
  in
  (* Beta-reputation point estimate with a uniform prior. *)
  let score = (successes +. 1.0) /. (successes +. failures +. 2.0) in
  {
    subject;
    score;
    proceed = score >= t.thr;
    evidence;
    rejected = not_about + invalid + dup;
    rejected_not_about_subject = not_about;
    rejected_validation_failed = invalid;
    rejected_duplicate = dup;
  }

let clamp lo hi x = Float.max lo (Float.min hi x)

let feedback t verdict ~actual =
  if t.discounting then
    let vouchers =
      (* Registrars whose certificates spoke in the subject's favour. *)
      List.filter_map
        (fun ((cert : Audit.t), _w) ->
          match Audit.outcome_for cert verdict.subject with
          | Some Audit.Fulfilled -> Some cert.registrar
          | Some Audit.Breached | None -> None)
        verdict.evidence
      |> List.sort_uniq Ident.compare
    in
    let adjust factor registrar =
      let w = clamp 0.01 1.0 (registrar_weight t registrar *. factor) in
      Ident.Tbl.replace t.weights registrar w
    in
    match actual with
    | Audit.Breached when verdict.proceed ->
        (* The vouched-for party betrayed: the vouchers lose credibility fast. *)
        List.iter (adjust 0.5) vouchers
    | Audit.Fulfilled ->
        (* Consistent testimony: slow recovery. *)
        List.iter (adjust 1.1) vouchers
    | Audit.Breached -> ()
