module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Wire = Oasis_cert.Wire
module Sha256 = Oasis_crypto.Sha256

type decision = Grant | Deny | Revoke | Suspect | Reconcile

let decision_label = function
  | Grant -> "grant"
  | Deny -> "deny"
  | Revoke -> "revoke"
  | Suspect -> "suspect"
  | Reconcile -> "reconcile"

let decision_of_label = function
  | "grant" -> Some Grant
  | "deny" -> Some Deny
  | "revoke" -> Some Revoke
  | "suspect" -> Some Suspect
  | "reconcile" -> Some Reconcile
  | _ -> None

type record = {
  seq : int;
  at : float;
  decision : decision;
  principal : Ident.t;
  action : string;
  args : Value.t list;
  rule : string;
  creds : Ident.t list;
  env_facts : string list;
  trace_seq : int;
  prev : Sha256.digest;
  hash : Sha256.digest;
}

(* A chain resumed from a durable export holds its pre-crash prefix as
   opaque (payload, hash) pairs: the wire encoding is one-way, so the
   typed fields are gone, but the bytes are exactly what re-export and
   re-verification need, and the chain keeps extending from the same
   head. *)
type entry = Full of record | Imported of { payload : string; hash : Sha256.digest }

type t = {
  owner : Ident.t;
  mutable rev_entries : entry list; (* newest first *)
  mutable length : int;
  mutable head : Sha256.digest;
}

(* Binding the genesis digest to the service identifier means a chain
   exported by one service can never verify as another's. *)
let genesis owner = Sha256.digest_string ("oasis-decision-log:" ^ Ident.to_string owner)

let create ~service = { owner = service; rev_entries = []; length = 0; head = genesis service }

let payload r =
  Wire.encode "decision"
    [
      Wire.Fint r.seq;
      Wire.Ffloat r.at;
      Wire.Fstring (decision_label r.decision);
      Wire.Fident r.principal;
      Wire.Fstring r.action;
      Wire.Fvalues r.args;
      Wire.Fstring r.rule;
      Wire.Fvalues (List.map (fun id -> Value.Id id) r.creds);
      Wire.Fstring (String.concat ";" r.env_facts);
      Wire.Fint r.trace_seq;
    ]

let chain_hash ~prev body = Sha256.digest_string (Sha256.to_raw_string prev ^ body)

let append t ~at ~decision ~principal ~action ?(args = []) ?(rule = "") ?(creds = [])
    ?(env_facts = []) ?(trace_seq = 0) () =
  let r =
    {
      seq = t.length;
      at;
      decision;
      principal;
      action;
      args;
      rule;
      creds;
      env_facts;
      trace_seq;
      prev = t.head;
      hash = t.head;
    }
  in
  let r = { r with hash = chain_hash ~prev:t.head (payload r) } in
  t.rev_entries <- Full r :: t.rev_entries;
  t.length <- t.length + 1;
  t.head <- r.hash;
  r

let service t = t.owner
let length t = t.length
let head t = t.head

let records t =
  List.rev
    (List.filter_map (function Full r -> Some r | Imported _ -> None) t.rev_entries)

let imported_count t =
  List.length (List.filter (function Imported _ -> true | Full _ -> false) t.rev_entries)

let find t ~seq =
  List.find_opt
    (fun r -> r.seq = seq)
    (List.filter_map (function Full r -> Some r | Imported _ -> None) t.rev_entries)

let entry_payload = function Full r -> payload r | Imported { payload; _ } -> payload
let entry_hash = function Full r -> r.hash | Imported { hash; _ } -> hash

let verify t =
  let rec go seq prev = function
    | [] -> Ok t.length
    | e :: rest -> (
        match e with
        | Full r when not (Sha256.equal r.prev prev) -> Error (r.seq, "prev-hash mismatch")
        | _ ->
            let expect = chain_hash ~prev (entry_payload e) in
            if not (Sha256.equal expect (entry_hash e)) then
              Error (seq, "record hash mismatch")
            else go (seq + 1) expect rest)
  in
  go 0 (genesis t.owner) (List.rev t.rev_entries)

(* Textual export: hex payloads so the file survives editors and diffs, and
   so a one-byte tamper is always visible to the verifier (bad hex parses
   are failures too). *)

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let string_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let digit c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | _ -> None
    in
    let buf = Buffer.create (n / 2) in
    let rec go i =
      if i >= n then Some (Buffer.contents buf)
      else
        match (digit s.[i], digit s.[i + 1]) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> None
    in
    go 0

let header_magic = "oasis-decision-log v1 "

let export_header t = header_magic ^ Ident.to_string t.owner ^ "\n"

let line_of ~body ~hash = hex_of_string body ^ " " ^ Sha256.to_hex hash ^ "\n"

let export_line r = line_of ~body:(payload r) ~hash:r.hash

let export t =
  let buf = Buffer.create (256 * (t.length + 1)) in
  Buffer.add_string buf (export_header t);
  List.iter
    (fun e -> Buffer.add_string buf (line_of ~body:(entry_payload e) ~hash:(entry_hash e)))
    (List.rev t.rev_entries);
  Buffer.contents buf

let verify_string s =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> l <> "") lines in
  match lines with
  | [] -> Error (0, "empty chain file")
  | header :: rest ->
      let magic_len = String.length header_magic in
      if
        String.length header < magic_len
        || not (String.equal (String.sub header 0 magic_len) header_magic)
      then Error (0, "bad header")
      else
        let owner_s = String.sub header magic_len (String.length header - magic_len) in
        (match Ident.of_string owner_s with
        | None -> Error (0, "unparseable service identifier in header")
        | Some owner ->
            let rec go seq prev = function
              | [] -> Ok seq
              | line :: rest -> (
                  match String.index_opt line ' ' with
                  | None -> Error (seq, "malformed record line")
                  | Some sp -> (
                      let payload_hex = String.sub line 0 sp in
                      let hash_hex = String.sub line (sp + 1) (String.length line - sp - 1) in
                      match string_of_hex payload_hex with
                      | None -> Error (seq, "payload is not valid hex")
                      | Some body ->
                          let expect = chain_hash ~prev body in
                          if not (String.equal (Sha256.to_hex expect) hash_hex) then
                            Error (seq, "chain hash mismatch")
                          else go (seq + 1) expect rest))
            in
            go 0 (genesis owner) rest)

let resume ~service s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  match lines with
  | [] -> Error (0, "empty chain file")
  | header :: rest -> (
      let magic_len = String.length header_magic in
      if
        String.length header < magic_len
        || not (String.equal (String.sub header 0 magic_len) header_magic)
      then Error (0, "bad header")
      else
        let owner_s = String.sub header magic_len (String.length header - magic_len) in
        match Ident.of_string owner_s with
        | None -> Error (0, "unparseable service identifier in header")
        | Some owner ->
            if not (Ident.equal owner service) then
              Error (0, "chain belongs to a different service")
            else
              let rec go seq prev acc = function
                | [] -> Ok { owner; rev_entries = acc; length = seq; head = prev }
                | line :: rest -> (
                    match String.index_opt line ' ' with
                    | None -> Error (seq, "malformed record line")
                    | Some sp -> (
                        let payload_hex = String.sub line 0 sp in
                        let hash_hex = String.sub line (sp + 1) (String.length line - sp - 1) in
                        match string_of_hex payload_hex with
                        | None -> Error (seq, "payload is not valid hex")
                        | Some body ->
                            let expect = chain_hash ~prev body in
                            if not (String.equal (Sha256.to_hex expect) hash_hex) then
                              Error (seq, "chain hash mismatch")
                            else
                              go (seq + 1) expect
                                (Imported { payload = body; hash = expect } :: acc)
                                rest))
              in
              go 0 (genesis owner) [] rest)

let tamper s ~byte =
  let n = String.length s in
  if n = 0 then s
  else
    let i = ((byte mod n) + n) mod n in
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
