(** Risk assessment over presented audit certificates (Sect. 6).

    "Each party may then take a calculated risk on whether to proceed ...
    The domain of the auditing service for a certificate is a factor that
    must be taken into account when assessing the risk."

    The assessor keeps a per-registrar credibility weight, scores a
    counterparty's presented history with a beta-reputation estimate over
    validated certificates, and proceeds when the score clears a threshold.
    When an interaction's actual outcome contradicts what the presented
    history predicted, the registrars that vouched are discounted — this is
    the mechanism that defeats collusion through rogue domains, ablated in
    experiment E8. *)

type t

val create : ?threshold:float -> ?discounting:bool -> unit -> t
(** Defaults: threshold 0.5, discounting on. *)

val threshold : t -> float

val registrar_weight : t -> Oasis_util.Ident.t -> float
(** Current credibility of a registrar; 1.0 until evidence accumulates. *)

(** The verdict on one counterparty, with the evidence that produced it. *)
type verdict = {
  subject : Oasis_util.Ident.t;
  score : float;  (** beta estimate in (0, 1); 0.5 with no evidence *)
  proceed : bool;
  evidence : (Audit.t * float) list;  (** validated certificates and the weight each carried *)
  rejected : int;  (** total presentations not counted; sum of the per-cause fields *)
  rejected_not_about_subject : int;  (** certificate does not involve [subject] *)
  rejected_validation_failed : int;  (** registrar refused to validate it *)
  rejected_duplicate : int;  (** same certificate id presented again *)
}

val assess :
  t ->
  validate:(Audit.t -> bool) ->
  subject:Oasis_util.Ident.t ->
  presented:Audit.t list ->
  verdict
(** [validate] is the callback to the certificate's registrar (the caller
    routes it; network or direct). Certificates not involving [subject],
    failing validation, or repeating an already-presented certificate id
    count as rejected, each under its own cause. *)

val feedback : t -> verdict -> actual:Audit.outcome -> unit
(** After proceeding, report how the counterparty actually behaved. If the
    history said "trustworthy" and the party breached, every registrar whose
    certificates vouched is discounted multiplicatively; consistent
    registrars recover slowly. No-op when discounting is off. *)
