(** Risk assessment over presented audit certificates (Sect. 6).

    "Each party may then take a calculated risk on whether to proceed ...
    The domain of the auditing service for a certificate is a factor that
    must be taken into account when assessing the risk."

    The assessor keeps a per-registrar credibility weight, scores a
    counterparty's presented history with a beta-reputation estimate over
    validated certificates, and proceeds when the score clears a threshold.
    When an interaction's actual outcome contradicts what the presented
    history predicted, the registrars that vouched are discounted — this is
    the mechanism that defeats collusion through rogue domains, ablated in
    experiment E8.

    Evidence is {e time-decayed} (DESIGN.md §16): a certificate's weight is
    its registrar credibility times [exp (-. decay_rate *. age)] on the
    world's virtual clock, so stale testimony fades toward the uniform
    prior. Because the same factor scales every already-counted
    certificate, the assessor can keep a per-subject running aggregate and
    bring it forward to any later instant in O(1), making repeat
    assessments O(certs for the subject) rather than O(wallet) per check. *)

type t

val create :
  ?threshold:float -> ?discounting:bool -> ?decay_rate:float -> unit -> t
(** Defaults: threshold 0.5, discounting on, decay_rate 0.0 (ageless —
    every certificate keeps full weight forever, the pre-decay
    behaviour). *)

val threshold : t -> float

val decay_rate : t -> float

val set_decay_rate : t -> float -> unit
(** Changes lambda and drops every cached aggregate (they were folded under
    the old rate). Raises [Invalid_argument] on a negative rate. *)

val registrar_weight : t -> Oasis_util.Ident.t -> float
(** Current credibility of a registrar; 1.0 until evidence accumulates. *)

val cert_weight : t -> now:float -> Audit.t -> float
(** The weight one certificate carries at virtual time [now]: registrar
    credibility times the decay factor for its age. *)

(** The verdict on one counterparty, with the evidence that produced it. *)
type verdict = {
  subject : Oasis_util.Ident.t;
  score : float;  (** beta estimate in (0, 1); 0.5 with no evidence *)
  proceed : bool;
  evidence : (Audit.t * float) list;  (** validated certificates and the weight each carried *)
  rejected : int;  (** total presentations not counted; sum of the per-cause fields *)
  rejected_not_about_subject : int;  (** certificate does not involve [subject] *)
  rejected_validation_failed : int;  (** registrar refused to validate it *)
  rejected_duplicate : int;  (** same certificate id presented again *)
}

val assess :
  t ->
  validate:(Audit.t -> bool) ->
  subject:Oasis_util.Ident.t ->
  presented:Audit.t list ->
  verdict
(** [validate] is the callback to the certificate's registrar (the caller
    routes it; network or direct). Certificates not involving [subject],
    failing validation, or repeating an already-presented certificate id
    count as rejected, each under its own cause. Ageless: equivalent to
    {!assess_at} with [now = 0.0], under which every age clamps to zero and
    decay is a no-op. *)

val assess_at :
  ?remember:bool ->
  t ->
  now:float ->
  validate:(Audit.t -> bool) ->
  subject:Oasis_util.Ident.t ->
  presented:Audit.t list ->
  verdict
(** {!assess} on the virtual clock: evidence ages are measured against
    [now] and decayed at the assessor's rate. [remember] (default false)
    seeds the subject's running aggregate from this full recompute — pass
    it only when [presented] is the subject's {e complete} wallet, or later
    {!cached_score} reads will be wrong. *)

val observe : t -> subject:Oasis_util.Ident.t -> now:float -> Audit.t -> unit
(** Fold one freshly issued, already-validated certificate into the
    subject's running aggregate (no-op if no aggregate has been seeded by a
    remembered {!assess} yet). The caller vouches for validity and
    dedup — wallets dedup by certificate id before filing. *)

val cached_score :
  t -> subject:Oasis_util.Ident.t -> now:float -> float option
(** The subject's score at [now] from the running aggregate, brought
    forward with one decay multiplication. [None] when no aggregate exists
    (never assessed with [remember], or invalidated since) or when [now]
    precedes the aggregate's reference instant — fall back to a full
    {!assess}. *)

val aggregate_count : t -> subject:Oasis_util.Ident.t -> int option
(** Number of certificates folded into the subject's running aggregate,
    for tests and diagnostics. *)

val invalidate : t -> unit
(** Drop all running aggregates (registrar weights or decay parameters
    changed out of band). *)

val feedback : t -> verdict -> actual:Audit.outcome -> unit
(** After proceeding, report how the counterparty actually behaved. If the
    history said "trustworthy" and the party breached, every registrar whose
    certificates vouched is discounted multiplicatively; consistent
    registrars recover slowly. No-op when discounting is off. Any weight
    adjustment also drops cached aggregates. *)
