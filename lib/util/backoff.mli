(** Capped exponential backoff with deterministic jitter.

    Every RPC call site that retries after a lost message shares this one
    policy type, so retry behaviour is configured — and observable — in a
    single place instead of as scattered ad-hoc loop counts. Delays are
    jittered from an explicit {!Rng.t}, keeping retry schedules replayable
    from a seed like everything else in the simulator. *)

type policy = {
  base : float;  (** delay before the first retry, seconds of virtual time *)
  factor : float;  (** multiplier applied per attempt (>= 1.0) *)
  cap : float;  (** upper bound on any single delay *)
  max_attempts : int;  (** total tries including the first (>= 1) *)
  jitter : float;  (** fraction of the delay randomized away, in [0, 1] *)
}

val default : policy
(** 4 attempts, 50 ms base doubling to a 1 s cap, 25% jitter — tuned so a
    full retry cycle stays well inside a heartbeat deadline. *)

val no_retry : policy
(** A single attempt: the fail-fast behaviour of a bare RPC. *)

val fixed : int -> policy
(** [fixed n] reproduces the legacy fixed-count retry: [n] attempts with no
    delay between them ([n] is clamped to at least 1). *)

val delay : policy -> Rng.t -> attempt:int -> float
(** [delay p rng ~attempt] is the pause before retry number [attempt]
    (1-based: [attempt = 1] follows the first failure). Deterministic given
    the generator state: [base *. factor^(attempt-1)] capped at [cap], minus
    a uniform jitter share. Never negative. *)

val retry :
  policy ->
  Rng.t ->
  sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay:float -> unit) ->
  (unit -> ('a, 'err) result) ->
  ('a, 'err) result
(** [retry p rng ~sleep f] runs [f] up to [p.max_attempts] times, invoking
    [sleep] with the jittered delay between tries. The sleep function is
    supplied by the caller ([Proc.sleep] inside simulated processes) so this
    module stays free of simulator dependencies. [on_retry] fires before
    each sleep — call sites use it to count [rpc.retries{site=..}]. The
    first [Ok] wins; the last [Error] is returned after exhaustion. *)
