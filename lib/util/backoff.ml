type policy = {
  base : float;
  factor : float;
  cap : float;
  max_attempts : int;
  jitter : float;
}

let default = { base = 0.05; factor = 2.0; cap = 1.0; max_attempts = 4; jitter = 0.25 }
let no_retry = { base = 0.0; factor = 1.0; cap = 0.0; max_attempts = 1; jitter = 0.0 }
let fixed n = { base = 0.0; factor = 1.0; cap = 0.0; max_attempts = max 1 n; jitter = 0.0 }

let delay p rng ~attempt =
  let raw = p.base *. (p.factor ** float_of_int (max 0 (attempt - 1))) in
  let capped = Float.min raw p.cap in
  let jittered =
    if p.jitter > 0.0 && capped > 0.0 then capped -. Rng.float rng (capped *. p.jitter)
    else capped
  in
  Float.max 0.0 jittered

let retry p rng ~sleep ?(on_retry = fun ~attempt:_ ~delay:_ -> ()) f =
  let attempts = max 1 p.max_attempts in
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error _ as err when attempt >= attempts -> err
    | Error _ ->
        let d = delay p rng ~attempt in
        on_retry ~attempt ~delay:d;
        if d > 0.0 then sleep d;
        go (attempt + 1)
  in
  go 1
