(** Scenario scripts: drive an OASIS world from a text file.

    A scenario bundles services (with inline policy), principals,
    certificates and a sequence of actions with expectations, so whole
    access-control workflows can be expressed, replayed and checked without
    writing OCaml — `oasisctl run scenario.scn` executes one. The test
    suite and the `scenarios/` directory contain examples.

    Format (one command per line; [#] starts a comment):
    {v
    seed 7                      # optional, first
    service hospital {          # inline policy until the closing brace
      initial logged_in(u) <- appt:employee(u)@civ ;
      doctor(u) <- *logged_in(u), *appt:qualified(u)@civ ;
      priv read(u) <- doctor(u) ;
    }
    declare hospital assigned   # declare an env fact predicate
    fact hospital assigned(alice, 5)
    retract hospital assigned(alice, 5)

    principal alice
    grant employee(alice) to alice as emp        # issued by the built-in CIV "civ"
    grant qualified(alice) to alice as qual expires 500.0

    session alice s
    activate alice s hospital logged_in expect granted
    activate alice s hospital doctor as docrole expect granted
    invoke alice s hospital read(alice) expect granted

    revoke qual                 # labels name certificates (appointments or RMCs)
    settle
    invoke alice s hospital read(alice) expect denied
    expect-active hospital 1
    expect-metric service.revocations{service=hospital} >= 1
    trace after first revocation  # emits a scenario.mark trace event
    show hospital
    logout alice s
    run-until 1000.0

    suspect-grace 5.0           # config for services created after it
    offline-verify off          # legacy HMAC + callback-per-check path
    fault partition wan hospital|civ   # sides are comma-separated services
    fault heal wan
    fault crash hospital
    fault restart hospital
    v}

    Trust directives (DESIGN.md §15): [interact CLIENT SERVER OUTCOME
    [OUTCOME]] has the domain CIV's registrar witness a contracted
    interaction between two parties (principals or services) and issue the
    Sect. 6 audit certificate live into both parties' wallets; outcomes are
    [fulfilled]/[breached], and one token applies to both sides.
    [expect-trust SUBJECT OP VALUE] checks the subject's live
    beta-reputation score from the world assessor ([trust_score] env
    predicates re-check on every new certificate, so breaches can revoke
    trust-gated roles mid-scenario).

    Trust-robustness directives (DESIGN.md §16): [trust-decay RATE [TICK]]
    turns on time-decayed reputation — certificate weights fade as
    [exp (-RATE * age)] on the virtual clock, and a positive TICK
    re-scores every walleted party that often so decay alone can cross
    gates. [interact-crash CLIENT SERVER OUTCOME [OUTCOME]] issues the
    audit certificate but crashes the registrar between the two wallet
    filings (client filed, server not); [fault restart civ] then runs
    anti-entropy re-delivery, completing the missing half. [expect-wallet
    PARTY OP N] checks a party's wallet size — the observable that makes
    half-issuance and its repair assertable.

    [expect-metric KEY OP VALUE] checks a rendered registry key (see
    {!Oasis_obs.Obs.render_key}) against a number with one of [== != <= >=
    < >]; failures land in [outcome.failures] like any other expectation.
    [trace NOTE...] emits a [scenario.mark] event so exported timelines can
    be segmented by scenario position.

    Fault directives (DESIGN.md §11) drive the world's {!Oasis_sim.Fault}
    controller: [fault partition NAME A|B] cuts every pair across the two
    comma-separated service groups (RPCs and event channels both), [fault
    heal NAME] removes it, and [fault crash]/[fault restart] take a service
    down (dropping its in-memory monitoring state) and rebuild it from
    durable credential records. [suspect-grace F] configures services
    created {e after} it to keep failure-detected roles active-but-suspect
    for [F] virtual seconds of anti-entropy reconciliation before
    fail-closed deactivation ([0] — the default — deactivates
    immediately). [offline-verify on|off] (default on) controls whether
    services issue root-certified signed credentials and verify presented
    ones locally with zero RPCs (DESIGN.md §12); place it before the first
    world-creating directive so the CIV's signing mode matches.

    Argument tokens inside parentheses: a declared principal name denotes
    its identity; integers, floats (times), ["strings"], [true]/[false] are
    constants; in [activate] pins, [_] leaves a parameter unconstrained. *)

type outcome = {
  log : string list;  (** human-readable trace, in execution order *)
  failures : string list;
      (** failed [expect]/[expect-active]/[expect-metric]/[expect-trust]
          checks *)
  metrics : (string * float) list;
      (** the world registry's final state, as rendered key/value pairs
          ({!Oasis_obs.Obs.metric_values}); empty if no world was created *)
  chains : (string * Oasis_trust.Decision_log.t) list;
      (** each service's hash-chained decision log (DESIGN.md §15), by
          service name — what [oasisctl audit] verifies and queries *)
}

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val run_string : ?sink:Oasis_obs.Obs.sink -> string -> (outcome, error) result
(** Parses and executes a scenario. [Error] is a syntax or setup problem
    (unknown names, malformed commands); expectation failures are data in
    the [outcome]. [sink] attaches to the world's tracer before anything
    runs, streaming the full event timeline ([oasisctl trace]). *)

val run_file : ?sink:Oasis_obs.Obs.sink -> string -> (outcome, error) result

val extract_policies : string -> (Oasis_policy.Analysis.service_policy list, error) result
(** Reads only the [service NAME { … }] blocks of a scenario (plus the
    implicit CIV, which can issue any kind the policies mention), for
    whole-world static analysis without executing anything —
    [oasisctl analyze-world]. *)

val extract_lint_services : string -> (Oasis_policy.Lint.service list, error) result
(** Same extraction, shaped for the policy linter ([oasisctl lint]); the
    implicit CIV appears with the mentioned kinds as [s_extra_kinds].
    Statement locations are absolute within the scenario file. *)
