(* Trust-churn chaos core (DESIGN.md §16).

   One seed = one world with a CIV registrar and a "gate" service whose
   [trusted] role is gated on a live trust score with a hysteresis band.
   The schedule randomises contracted interactions (scores flap across the
   gate), registrar crashes mid-issuance (half-filed audit certificates),
   partitions isolating the trust owner, and gate crash/restart cycles
   (durable decision-log resume). Shared by test/test_chaos_trust.ml and
   the E17 bench so the invariants and the ablations run the exact same
   schedules. *)

module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Durable = Oasis_core.Durable
module Civ = Oasis_domain.Civ
module Fault = Oasis_sim.Fault
module Dlog = Oasis_trust.Decision_log
module History = Oasis_trust.History
module Audit = Oasis_trust.Audit
module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Rng = Oasis_util.Rng

(* The trust gate: grant at [theta], hold (with a band) down to
   [theta - band]. *)
let theta = 0.6

type config = {
  seed : int;
  steps : int;
  band : float;  (* hysteresis δ; 0.0 is the flappy ablation *)
  decay_rate : float;  (* λ in exp(-λ·age); 0.0 disables decay *)
  decay_tick : float;  (* periodic re-assessment period *)
  fail_open_chain : bool;  (* ablation: skip durable-chain verification *)
  tamper : bool;  (* corrupt the durable export mid-run *)
}

let default_config =
  {
    seed = 1;
    steps = 30;
    band = 0.1;
    decay_rate = 0.05;
    decay_tick = 0.5;
    fail_open_chain = false;
    tamper = false;
  }

type t = {
  cfg : config;
  world : World.t;
  civ : Civ.t;
  gate : Service.t;
  subject : Principal.t;
  subject_id : Ident.t;
  peer_id : Ident.t;
  session : Principal.session;
  mutable customer : Ident.t option;  (* RMC id of the prerequisite role *)
  mutable trusted : Ident.t option;  (* RMC id of the live trusted role *)
  mutable grants : int;
  mutable interactions : int;
  mutable mid_crashes : int;
  mutable gate_restarts : int;
  mutable partitioned : bool;
  mutable tampered : bool;
  mutable tamper_detected : bool;
  mutable violations : string list;
}

type summary = {
  seed : int;
  t_end : float;
  interactions : int;
  mid_crashes : int;
  gate_restarts : int;
  grants : int;
  cascade_deactivations : int;
  flaps_suppressed : int;
  final_score : float;
  trusted_at_end : bool;
  wallet_subject : int;
  wallet_peer : int;
  chain_length : int;
  tampered : bool;
  tamper_detected : bool;
  violations : string list;
}

let violation (c : t) fmt = Printf.ksprintf (fun m -> c.violations <- m :: c.violations) fmt
let score (c : t) = World.trust_score c.world c.subject_id

let build (cfg : config) =
  let world = World.create ~seed:cfg.seed () in
  let civ = Civ.create world ~name:"civ" () in
  if cfg.decay_rate > 0.0 then World.set_trust_decay world ~rate:cfg.decay_rate ~tick:cfg.decay_tick;
  let config = { Service.default_config with fail_open_chain = cfg.fail_open_chain } in
  let policy =
    Printf.sprintf
      "initial customer(u) <- *appt:account(u)@civ ;\n\
       trusted(u) <- *customer(u), *env:trust_score(u) >= %g%s ;\n\
       priv order(u) <- trusted(u) ;"
      theta
      (if cfg.band > 0.0 then Printf.sprintf " ~ %g" cfg.band else "")
  in
  let gate = Service.create world ~name:"gate" ~config ~policy () in
  let subject = Principal.create world ~name:"subject" in
  let peer = Principal.create world ~name:"peer" in
  let appt =
    Civ.issue civ ~kind:"account"
      ~args:[ Value.Id (Principal.id subject) ]
      ~holder:(Principal.id subject)
      ~holder_key:(Principal.longterm_public subject)
      ()
  in
  Principal.grant_appointment subject appt;
  let customer = ref None in
  let session =
    World.run_proc world (fun () ->
        let s = Principal.start_session subject in
        (match Principal.activate subject s gate ~role:"customer" () with
        | Ok rmc -> customer := Some rmc.Oasis_cert.Rmc.id
        | Error d ->
            failwith ("churn setup: customer denied: " ^ Protocol.denial_to_string d));
        s)
  in
  World.settle world;
  {
    cfg;
    world;
    civ;
    gate;
    subject;
    subject_id = Principal.id subject;
    peer_id = Principal.id peer;
    session;
    customer = !customer;
    trusted = None;
    grants = 0;
    interactions = 0;
    mid_crashes = 0;
    gate_restarts = 0;
    partitioned = false;
    tampered = false;
    tamper_detected = false;
    violations = [];
  }

let trusted_active c =
  match c.trusted with
  | None -> false
  | Some id ->
      if Service.is_valid_certificate c.gate id then true
      else begin
        c.trusted <- None;
        false
      end

let customer_active c =
  match c.customer with
  | None -> false
  | Some id ->
      if Service.is_valid_certificate c.gate id then true
      else begin
        c.customer <- None;
        false
      end

(* A registrar crash can take the monitored [customer] prerequisite down
   with it (the appointment no longer re-validates); re-earn it first or
   the [trusted] activation below is dead on arrival for the whole run. *)
let try_activate c =
  if not (customer_active c) then
    World.run_proc c.world (fun () ->
        match Principal.activate c.subject c.session c.gate ~role:"customer" () with
        | Ok rmc -> c.customer <- Some rmc.Oasis_cert.Rmc.id
        | Error _ -> ());
  if customer_active c && not (trusted_active c) then
    World.run_proc c.world (fun () ->
        match Principal.activate c.subject c.session c.gate ~role:"trusted" () with
        | Ok rmc ->
            c.trusted <- Some rmc.Oasis_cert.Rmc.id;
            c.grants <- c.grants + 1
        | Error _ -> ())

let interact c rng ~crash_mid =
  (* Steer outcomes toward the threshold: breach-heavy above the gate,
     fulfilment-heavy below it. The score spends the run oscillating
     through the hysteresis band — the regime the harness exists to
     stress — instead of settling on one side of it. *)
  let toward_gate = Rng.int rng 4 < 3 in
  let above = score c >= theta in
  let breach = if toward_gate then above else not above in
  let outcome = if breach then Audit.Breached else Audit.Fulfilled in
  let record = if crash_mid then Civ.record_interaction_crashing else Civ.record_interaction in
  match
    record c.civ ~client:c.subject_id ~server:c.peer_id ~client_outcome:outcome
      ~server_outcome:Audit.Fulfilled
  with
  | _ ->
      c.interactions <- c.interactions + 1;
      if crash_mid then c.mid_crashes <- c.mid_crashes + 1
  | exception Civ.Primary_unavailable -> ()

(* Restart the gate through the fault controller; classify the outcome
   against whether we actually tampered with its durable chain. *)
let restart_gate c =
  match Service.restart c.gate with
  | () ->
      c.gate_restarts <- c.gate_restarts + 1;
      if c.tampered && not c.cfg.fail_open_chain then
        violation c "chain: tampered durable log admitted on fail-closed restart";
      if not c.tampered then begin
        match Dlog.verify (Service.decision_log c.gate) with
        | Ok _ -> ()
        | Error (seq, why) ->
            violation c "chain: verify failed after restart at seq %d (%s)" seq why
      end
  | exception Service.Chain_tampered { seq; why; _ } ->
      if c.tampered then c.tamper_detected <- true
      else violation c "chain: restart refused without tampering (seq %d: %s)" seq why

let tamper_blob c =
  if not (Service.is_crashed c.gate) then Service.crash c.gate;
  let key = "dlog:" ^ Ident.to_string (Service.id c.gate) in
  if Durable.corrupt (World.durable c.world) key ~byte:(41 + c.cfg.seed) then c.tampered <- true

(* Decay drifts a score between the poke that last rechecked the gate and
   the moment we observe it; bound the drift over a 2 s window so the
   invariant doesn't flag reads the event machinery hasn't seen yet. *)
let drift_margin c = (0.5 *. (1.0 -. exp (-2.0 *. c.cfg.decay_rate))) +. 1e-9

(* The gate invariant: a role still active while the score sits below the
   full hysteresis band (θ - δ, minus decay drift) is a stale grant. *)
let check_gate c =
  if not (Service.is_crashed c.gate) then begin
    let s = score c in
    if trusted_active c && s < theta -. c.cfg.band -. drift_margin c then
      violation c "gate: trusted still active at score %.4f < %g - %g" s theta c.cfg.band
  end

let step c rng =
  World.run_until c.world (World.now c.world +. (0.3 +. Rng.float rng 0.7));
  (match Rng.int rng 12 with
  | 0 | 1 | 2 | 3 -> interact c rng ~crash_mid:false
  | 4 -> interact c rng ~crash_mid:true
  | 5 ->
      let fa = World.fault c.world in
      if Fault.is_crashed fa (Civ.id c.civ) then Fault.restart fa (Civ.id c.civ)
  | 6 ->
      if Service.is_crashed c.gate then restart_gate c
      else Service.crash c.gate
  | 7 ->
      if not c.partitioned then begin
        Fault.partition (World.fault c.world) ~name:"iso" [ c.subject_id ]
          [ Service.id c.gate; Civ.id c.civ ];
        c.partitioned <- true
      end
  | 8 ->
      if c.partitioned then begin
        Fault.heal (World.fault c.world) "iso";
        c.partitioned <- false
      end
  | 9 ->
      (* A quiet stretch: decay does the moving, ticks do the poking. *)
      World.run_until c.world (World.now c.world +. 5.0)
  | _ -> ());
  try_activate c;
  World.settle c.world;
  check_gate c

let finish c =
  Fault.heal_all (World.fault c.world);
  c.partitioned <- false;
  let fa = World.fault c.world in
  if Fault.is_crashed fa (Civ.id c.civ) then Fault.restart fa (Civ.id c.civ);
  if Service.is_crashed c.gate then restart_gate c;
  World.run_until c.world (World.now c.world +. Float.max c.cfg.decay_tick 1.0 +. 2.0);
  if not (Service.is_crashed c.gate) then begin
    try_activate c;
    World.settle c.world
  end;
  check_gate c;
  (* Anti-entropy: with the registrar healed, every issued certificate
     must have reached both wallets — and only the wallets' dedup keeps
     the re-delivered halves from double counting. *)
  let ws = History.size (World.wallet c.world c.subject_id)
  and wp = History.size (World.wallet c.world c.peer_id) in
  if ws <> wp then violation c "anti-entropy: wallets differ after heal (%d vs %d)" ws wp;
  if Civ.pending_filings c.civ <> 0 then
    violation c "anti-entropy: %d pending filings after heal" (Civ.pending_filings c.civ);
  if (not c.tampered) && not (Service.is_crashed c.gate) then begin
    match Dlog.verify (Service.decision_log c.gate) with
    | Ok _ -> ()
    | Error (seq, why) -> violation c "chain: final verify failed at seq %d (%s)" seq why
  end

let summarise c =
  let st = Service.stats c.gate in
  {
    seed = c.cfg.seed;
    t_end = World.now c.world;
    interactions = c.interactions;
    mid_crashes = c.mid_crashes;
    gate_restarts = c.gate_restarts;
    grants = c.grants;
    cascade_deactivations = st.Service.cascade_deactivations;
    flaps_suppressed = st.Service.flaps_suppressed;
    final_score = score c;
    trusted_at_end = trusted_active c;
    wallet_subject = History.size (World.wallet c.world c.subject_id);
    wallet_peer = History.size (World.wallet c.world c.peer_id);
    chain_length = Dlog.length (Service.decision_log c.gate);
    tampered = c.tampered;
    tamper_detected = c.tamper_detected;
    violations = List.rev c.violations;
  }

let run (cfg : config) =
  let c = build cfg in
  let rng = Rng.create ((cfg.seed * 2654435761) lxor 0x9e3779b9) in
  for i = 1 to cfg.steps do
    if c.cfg.tamper && i = Int.max 1 (cfg.steps / 2) then tamper_blob c;
    step c rng
  done;
  finish c;
  summarise c

let trace_line s =
  Printf.sprintf
    "seed=%d t=%.3f n=%d mid=%d rs=%d grants=%d casc=%d flaps=%d score=%.4f active=%b ws=%d wp=%d chain=%d"
    s.seed s.t_end s.interactions s.mid_crashes s.gate_restarts s.grants s.cascade_deactivations
    s.flaps_suppressed s.final_score s.trusted_at_end s.wallet_subject s.wallet_peer s.chain_length
