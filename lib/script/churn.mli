(** Trust-churn chaos core (DESIGN.md §16).

    Builds one world per seed — a CIV registrar plus a "gate" service whose
    [trusted] role is gated on [env:trust_score(u) >= θ ~ δ] — and runs a
    randomised schedule of contracted interactions (the score flaps across
    the gate), registrar crashes between the two wallet filings
    (half-issuance), partitions isolating the trust owner, gate
    crash/restart cycles (durable decision-log resume), and quiet decay
    stretches. Invariant violations are collected, not asserted, so the
    ablations ([band = 0.0], [fail_open_chain], [tamper]) can count them:
    the test suite ({!test_chaos_trust}) asserts zero on the real
    configuration and nonzero detection on the broken ones, and bench E17
    reports the same numbers.

    Invariants checked per seed:
    - {b gate}: no [trusted] role stays active while the subject's score
      sits below θ - δ (minus a small decay-drift margin);
    - {b chain}: the gate's decision-log chain verifies after every
      crash/restart, and a restart is refused {e only} when the durable
      export was actually tampered with;
    - {b anti-entropy}: once every fault heals, both parties' wallets hold
      the same certificates and the registrar has no half-filed issuance
      left. *)

val theta : float
(** The grant threshold used in the generated gate policy. *)

type config = {
  seed : int;
  steps : int;
  band : float;  (** hysteresis δ; [0.0] is the flappy ablation *)
  decay_rate : float;  (** λ in [exp (-λ·age)]; [0.0] disables decay *)
  decay_tick : float;  (** periodic re-assessment period (virtual s) *)
  fail_open_chain : bool;  (** ablation: resume without verifying *)
  tamper : bool;  (** corrupt the durable chain export mid-run *)
}

val default_config : config
(** Seed 1, 30 steps, δ = 0.1, λ = 0.02 with a 0.5 s tick, fail-closed,
    no tampering. *)

type summary = {
  seed : int;
  t_end : float;  (** virtual end time *)
  interactions : int;  (** audit certificates issued *)
  mid_crashes : int;  (** registrar crashes injected mid-issuance *)
  gate_restarts : int;  (** successful gate restarts (chain resumed) *)
  grants : int;  (** times the trusted role was (re-)granted *)
  cascade_deactivations : int;  (** monitoring-driven revocations at the gate *)
  flaps_suppressed : int;  (** rechecks the hysteresis band absorbed *)
  final_score : float;
  trusted_at_end : bool;
  wallet_subject : int;
  wallet_peer : int;
  chain_length : int;
  tampered : bool;  (** the durable export was actually corrupted *)
  tamper_detected : bool;  (** a restart refused with [Chain_tampered] *)
  violations : string list;  (** empty iff every invariant held *)
}

val run : config -> summary
(** Runs one full schedule (deterministic in [config]) and returns its
    summary; violations are data, the function never asserts. *)

val trace_line : summary -> string
(** A one-line digest of everything deterministic in a run — two runs of
    the same config must produce equal trace lines (the determinism
    check), and unequal seeds almost always differ. *)
