module World = Oasis_core.World
module Service = Oasis_core.Service
module Principal = Oasis_core.Principal
module Protocol = Oasis_core.Protocol
module Civ = Oasis_domain.Civ
module Env = Oasis_policy.Env
module Value = Oasis_util.Value
module Ident = Oasis_util.Ident
module Obs = Oasis_obs.Obs
module Fault = Oasis_sim.Fault

type outcome = {
  log : string list;
  failures : string list;
  metrics : (string * float) list;
  chains : (string * Oasis_trust.Decision_log.t) list;
}

type error = { line : int; message : string }

let pp_error ppf { line; message } = Format.fprintf ppf "scenario error, line %d: %s" line message

exception Stop of error

let fail line fmt = Format.kasprintf (fun message -> raise (Stop { line; message })) fmt

(* A certificate a label can refer to. *)
type labelled =
  | Civ_appt of Oasis_cert.Appointment.t
  | Svc_appt of Service.t * Oasis_cert.Appointment.t
  | Role_rmc of Service.t * Oasis_cert.Rmc.t

type state = {
  mutable world : World.t option;
  mutable civ : Civ.t option;
  sink : Obs.sink option;
  mutable seed : int;
  mutable svc_config : Service.config option;
      (* config overrides (suspect-grace …) applied to services created
         after the directive; [None] keeps [Service.default_config] *)
  mutable offline_sign : bool;
      (* whether the CIV created with the world enrols a root-certified
         signing key; mirrors svc_config.offline_verify and must be set
         before the first world-creating directive to take effect *)
  services : (string, Service.t) Hashtbl.t;
  principals : (string, Principal.t) Hashtbl.t;
  sessions : (string, Principal.t * Principal.session) Hashtbl.t;
  labels : (string, labelled) Hashtbl.t;
  mutable log : string list;
  mutable failures : string list;
}

let fresh_state ?sink () =
  {
    world = None;
    civ = None;
    sink;
    seed = 1;
    svc_config = None;
    offline_sign = true;
    services = Hashtbl.create 8;
    principals = Hashtbl.create 8;
    sessions = Hashtbl.create 8;
    labels = Hashtbl.create 8;
    log = [];
    failures = [];
  }

let say st fmt = Format.kasprintf (fun s -> st.log <- s :: st.log) fmt

let world st line =
  match st.world with
  | Some w -> w
  | None ->
      let w = World.create ~seed:st.seed () in
      (* The sink must see every event, so it attaches before any service
         or certificate exists. *)
      (match st.sink with Some sink -> Obs.attach (World.obs w) sink | None -> ());
      let civ = Civ.create w ~name:"civ" ~offline_sign:st.offline_sign () in
      st.world <- Some w;
      st.civ <- Some civ;
      ignore line;
      w

let civ st line =
  ignore (world st line);
  Option.get st.civ

let find tbl line kind name =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None -> fail line "unknown %s %s" kind name

(* ------------------------------------------------------------------ *)
(* Line-level tokenizing                                              *)
(* ------------------------------------------------------------------ *)

let strip_comment s = match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s

(* Splits "name(arg, arg)" into (name, Some "arg, arg"); plain names give
   (name, None). *)
let split_call line s =
  match String.index_opt s '(' with
  | None -> (s, None)
  | Some i ->
      if s.[String.length s - 1] <> ')' then fail line "missing ')' in %s" s;
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 2)))

let arg_tokens s =
  (* Split on commas outside quotes. *)
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let in_string = ref false in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_string := not !in_string;
        Buffer.add_char buf c
      end
      else if c = ',' && not !in_string then begin
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  (* [parts] accumulated in reverse; rev_map restores source order. *)
  List.rev_map String.trim !parts |> List.filter (fun p -> p <> "")

let parse_value st line token =
  match Hashtbl.find_opt st.principals token with
  | Some p -> Value.Id (Principal.id p)
  | None -> (
      match int_of_string_opt token with
      | Some n -> Value.Int n
      | None -> (
          if token = "true" then Value.Bool true
          else if token = "false" then Value.Bool false
          else if String.length token >= 2 && token.[0] = '"' then
            Value.Str (String.sub token 1 (String.length token - 2))
          else
            match float_of_string_opt token with
            | Some f -> Value.Time f
            | None -> fail line "cannot read argument %s (unknown principal?)" token))

let parse_args st line = function
  | None -> []
  | Some s -> List.map (parse_value st line) (arg_tokens s)

let parse_pins st line = function
  | None -> []
  | Some s ->
      List.map
        (fun token -> if token = "_" then None else Some (parse_value st line token))
        (arg_tokens s)

(* Pulls "expect granted|denied", "as LABEL", "expires F", "to NAME" options
   off the tail of a word list. Returns (remaining, options). *)
type opts = {
  mutable expect : [ `Granted | `Denied ] option;
  mutable label : string option;
  mutable expires : float option;
  mutable recipient : string option;
}

let take_options line words =
  let opts = { expect = None; label = None; expires = None; recipient = None } in
  let rec go = function
    | "expect" :: "granted" :: rest ->
        opts.expect <- Some `Granted;
        go rest
    | "expect" :: "denied" :: rest ->
        opts.expect <- Some `Denied;
        go rest
    | "as" :: label :: rest ->
        opts.label <- Some label;
        go rest
    | "expires" :: f :: rest ->
        (match float_of_string_opt f with
        | Some v -> opts.expires <- Some v
        | None -> fail line "bad expiry %s" f);
        go rest
    | "to" :: name :: rest ->
        opts.recipient <- Some name;
        go rest
    | [] -> []
    | word :: _ -> fail line "unexpected word %s" word
  in
  let rec split acc = function
    | ("expect" | "as" | "expires" | "to") :: _ as tail ->
        ignore (go tail);
        List.rev acc
    | w :: rest -> split (w :: acc) rest
    | [] -> List.rev acc
  in
  let remaining = split [] words in
  (remaining, opts)

let check_expectation st line what result opts =
  match (opts.expect, result) with
  | None, _ -> ()
  | Some `Granted, Ok () -> ()
  | Some `Denied, Error _ -> ()
  | Some `Granted, Error denial ->
      st.failures <-
        Printf.sprintf "line %d: %s expected granted, was denied (%s)" line what
          (Protocol.denial_to_string denial)
        :: st.failures
  | Some `Denied, Ok () ->
      st.failures <- Printf.sprintf "line %d: %s expected denied, was granted" line what :: st.failures

(* ------------------------------------------------------------------ *)
(* Command execution                                                  *)
(* ------------------------------------------------------------------ *)

let remember_label st opts labelled =
  match opts.label with Some l -> Hashtbl.replace st.labels l labelled | None -> ()

let exec_grant st line words opts =
  match words with
  | [ call ] ->
      let kind, args = split_call line call in
      let holder_name =
        match opts.recipient with Some n -> n | None -> fail line "grant needs 'to PRINCIPAL'"
      in
      let holder = find st.principals line "principal" holder_name in
      let appt =
        Civ.issue (civ st line) ~kind
          ~args:(parse_args st line args)
          ~holder:(Principal.id holder)
          ~holder_key:(Principal.longterm_public holder)
          ?expires_at:opts.expires ()
      in
      Principal.grant_appointment holder appt;
      remember_label st opts (Civ_appt appt);
      say st "granted %s to %s" call holder_name
  | _ -> fail line "grant KIND(args) to PRINCIPAL [as LABEL] [expires F]"

let exec_activate st line words opts =
  match words with
  | [ pname; sname; svc_name; call ] ->
      let p, session =
        ( find st.principals line "principal" pname,
          snd (find st.sessions line "session" sname) )
      in
      let svc = find st.services line "service" svc_name in
      let role, pins = split_call line call in
      let args = parse_pins st line pins in
      let result =
        World.run_proc (world st line) (fun () -> Principal.activate p session svc ~role ~args ())
      in
      (match result with
      | Ok rmc ->
          remember_label st opts (Role_rmc (svc, rmc));
          say st "%s activated %s at %s" pname call svc_name
      | Error d -> say st "%s denied %s at %s (%s)" pname call svc_name (Protocol.denial_to_string d));
      check_expectation st line (Printf.sprintf "activate %s" call)
        (Result.map (fun _ -> ()) result)
        opts
  | _ -> fail line "activate PRINCIPAL SESSION SERVICE ROLE[(pins)] [as LABEL] [expect ...]"

let exec_invoke st line words opts =
  match words with
  | [ pname; sname; svc_name; call ] ->
      let p = find st.principals line "principal" pname in
      let _, session = find st.sessions line "session" sname in
      let svc = find st.services line "service" svc_name in
      let privilege, args = split_call line call in
      let result =
        World.run_proc (world st line) (fun () ->
            Principal.invoke p session svc ~privilege ~args:(parse_args st line args))
      in
      (match result with
      | Ok _ -> say st "%s invoked %s at %s" pname call svc_name
      | Error d -> say st "%s refused %s at %s (%s)" pname call svc_name (Protocol.denial_to_string d));
      check_expectation st line (Printf.sprintf "invoke %s" call)
        (Result.map (fun _ -> ()) result)
        opts
  | _ -> fail line "invoke PRINCIPAL SESSION SERVICE PRIV(args) [expect ...]"

let exec_appoint st line words opts =
  match words with
  | [ pname; sname; svc_name; call ] ->
      let p = find st.principals line "principal" pname in
      let _, session = find st.sessions line "session" sname in
      let svc = find st.services line "service" svc_name in
      let kind, args = split_call line call in
      let holder_name =
        match opts.recipient with Some n -> n | None -> fail line "appoint needs 'to PRINCIPAL'"
      in
      let holder = find st.principals line "principal" holder_name in
      let result =
        World.run_proc (world st line) (fun () ->
            Principal.appoint p session svc ~kind ~args:(parse_args st line args) ~holder
              ?expires_at:opts.expires ())
      in
      (match result with
      | Ok appt ->
          remember_label st opts (Svc_appt (svc, appt));
          say st "%s appointed %s to %s at %s" pname call holder_name svc_name
      | Error d -> say st "%s refused appointment %s (%s)" svc_name call (Protocol.denial_to_string d));
      check_expectation st line (Printf.sprintf "appoint %s" call)
        (Result.map (fun _ -> ()) result)
        opts
  | _ -> fail line "appoint PRINCIPAL SESSION SERVICE KIND(args) to HOLDER [as LABEL] [expect ...]"

let exec_revoke st line words =
  match words with
  | [ label ] -> (
      match find st.labels line "label" label with
      | Civ_appt appt ->
          let changed =
            Civ.revoke (civ st line) appt.Oasis_cert.Appointment.id ~reason:"scenario revoke"
          in
          say st "revoked %s (%b)" label changed
      | Svc_appt (svc, appt) ->
          let changed =
            Service.revoke_certificate svc appt.Oasis_cert.Appointment.id
              ~reason:"scenario revoke"
          in
          say st "revoked %s (%b)" label changed
      | Role_rmc (svc, rmc) ->
          let changed =
            Service.revoke_certificate svc rmc.Oasis_cert.Rmc.id ~reason:"scenario revoke"
          in
          say st "revoked %s (%b)" label changed)
  | _ -> fail line "revoke LABEL"

let exec_fact st line assertp words =
  match words with
  | [ svc_name; call ] ->
      let svc = find st.services line "service" svc_name in
      let pred, args = split_call line call in
      let values = parse_args st line args in
      if assertp then Env.assert_fact (Service.env svc) pred values
      else Env.retract_fact (Service.env svc) pred values;
      say st "%s %s at %s" (if assertp then "asserted" else "retracted") call svc_name
  | _ -> fail line "fact|retract SERVICE PRED(args)"

let resolve_node st line name =
  match World.resolve (world st line) name with
  | Some id -> id
  | None -> fail line "unknown service %s" name

let parse_group st line s =
  match
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun x -> x <> "")
  with
  | [] -> fail line "empty partition side"
  | names -> List.map (resolve_node st line) names

let exec_fault st line words =
  let fault = World.fault (world st line) in
  match words with
  | [ "partition"; name; groups ] -> (
      match String.split_on_char '|' groups with
      | [ left; right ] -> (
          let left = parse_group st line left and right = parse_group st line right in
          match Fault.partition fault ~name left right with
          | () -> say st "partition %s installed: %s" name groups
          | exception Invalid_argument m -> fail line "%s" m)
      | _ -> fail line "fault partition NAME A,B|C,D")
  | [ "heal"; name ] -> (
      match Fault.heal fault name with
      | () -> say st "partition %s healed" name
      | exception Invalid_argument m -> fail line "%s" m)
  | [ "crash"; node ] ->
      Fault.crash fault (resolve_node st line node);
      say st "crashed %s" node
  | [ "restart"; node ] -> (
      match Fault.restart fault (resolve_node st line node) with
      | () -> say st "restarted %s" node
      | exception Service.Chain_tampered { service; seq; why } ->
          fail line "restart refused: %s decision log tampered at seq %d (%s)" service seq why)
  | _ -> fail line "fault partition NAME A|B, fault heal NAME, fault crash|restart SERVICE"

let show st line svc_name =
  let svc = find st.services line "service" svc_name in
  let stats = Service.stats svc in
  say st "%s: %d active role(s); act +%d/-%d; inv +%d/-%d; revocations %d" svc_name
    (List.length (Service.active_roles svc))
    stats.Service.activations_granted stats.Service.activations_denied
    stats.Service.invocations_granted stats.Service.invocations_denied stats.Service.revocations;
  List.iter
    (fun (_, role, args, principal) ->
      say st "  %s(%s) held by %s" role
        (String.concat ", " (List.map Value.to_string args))
        (Ident.to_string principal))
    (Service.active_roles svc)

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

(* Removes whitespace inside parentheses (but not inside quotes) so that
   "read_record(alice, 5)" is one word. *)
let normalize_calls s =
  let buf = Buffer.create (String.length s) in
  let depth = ref 0 and in_string = ref false in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_string := not !in_string;
        Buffer.add_char buf c
      end
      else if (c = ' ' || c = '\t') && !depth > 0 && not !in_string then ()
      else begin
        if not !in_string then
          if c = '(' then incr depth else if c = ')' then decr depth;
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

(* Whitespace split that keeps quoted strings intact. *)
let split_words s =
  let s = normalize_calls s in
  let words = ref [] in
  let buf = Buffer.create 16 in
  let in_string = ref false in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_string := not !in_string;
        Buffer.add_char buf c
      end
      else if (c = ' ' || c = '\t') && not !in_string then flush ()
      else Buffer.add_char buf c)
    s;
  flush ();
  List.rev !words

(* Collects a service's policy block: lines until a '}' line. [header] is
   the line number of the opening "service NAME {"; the returned text is
   padded with that many leading newlines so parser positions (and hence
   lint/parse diagnostics) are absolute within the scenario file. *)
let collect_policy ~header lines =
  let rec go lines acc =
    match lines with
    | [] -> None
    | (_, text) :: rest ->
        if String.trim text = "}" then
          Some (String.make header '\n' ^ String.concat "\n" (List.rev acc), rest)
        else go rest (strip_comment text :: acc)
  in
  go lines []

let comparator line op =
  match op with
  | "==" -> ( = )
  | "!=" -> ( <> )
  | "<=" -> ( <= )
  | ">=" -> ( >= )
  | "<" -> ( < )
  | ">" -> ( > )
  | _ -> fail line "bad comparison %s (use == != <= >= < >)" op

(* expect-metric KEY OP VALUE over the world registry's rendered keys. *)
let exec_expect_metric st line key op want =
  let w = world st line in
  let want =
    match float_of_string_opt want with
    | Some v -> v
    | None -> fail line "bad metric value %s" want
  in
  let compare_fn = comparator line op in
  match Obs.value (World.obs w) key with
  | None ->
      st.failures <-
        Printf.sprintf "line %d: metric %s not registered" line key :: st.failures
  | Some got ->
      if not (compare_fn got want) then
        st.failures <-
          Printf.sprintf "line %d: expected %s %s %g, found %g" line key op want got
          :: st.failures

(* A party to an audited interaction: a declared principal, or a service
   (servers earn trust scores too). *)
let party st line name =
  match Hashtbl.find_opt st.principals name with
  | Some p -> Principal.id p
  | None -> (
      match Hashtbl.find_opt st.services name with
      | Some svc -> Service.id svc
      | None -> fail line "unknown party %s (declare a principal or service)" name)

let parse_party_outcome line s =
  match s with
  | "fulfilled" -> Oasis_trust.Audit.Fulfilled
  | "breached" -> Oasis_trust.Audit.Breached
  | _ -> fail line "bad outcome %s (use fulfilled|breached)" s

(* interact CLIENT SERVER CLIENT_OUTCOME [SERVER_OUTCOME] — the domain CIV's
   registrar witnesses a contracted interaction (Sect. 6) and issues the
   audit certificate live into both parties' wallets; trust-gated roles
   re-check. One outcome token applies to both sides. The [crash] variant
   ([interact-crash]) injects a registrar crash between the two wallet
   filings: the client's wallet gets the certificate, the server's misses
   it until a later [fault restart civ] runs anti-entropy. *)
let exec_interact st line ~crash = function
  | ([ client; server; oc ] | [ client; server; oc; _ ]) as words ->
      let client_outcome = parse_party_outcome line oc in
      let server_outcome =
        match words with
        | [ _; _; _; os ] -> parse_party_outcome line os
        | _ -> client_outcome
      in
      let c = party st line client and s = party st line server in
      let record =
        if crash then Civ.record_interaction_crashing else Civ.record_interaction
      in
      let cert =
        try record (civ st line) ~client:c ~server:s ~client_outcome ~server_outcome
        with Civ.Primary_unavailable -> fail line "interact: CIV primary is down"
      in
      say st "audit certificate %s%s: %s %s / %s %s" (Ident.to_string cert.Oasis_trust.Audit.id)
        (if crash then " (registrar crashed mid-issuance)" else "")
        client oc server
        (match server_outcome with Oasis_trust.Audit.Fulfilled -> "fulfilled" | _ -> "breached");
      World.settle (world st line)
  | _ -> fail line "interact takes CLIENT SERVER OUTCOME [OUTCOME]"

(* trust-decay RATE [TICK] — configure time-decayed reputation on the
   world assessor: weights decay as exp(-RATE * age); with TICK > 0 the
   world re-scores walleted parties every TICK virtual seconds so decay
   alone can cross gates (DESIGN.md §16). *)
let exec_trust_decay st line = function
  | ([ rate ] | [ rate; _ ]) as words ->
      let parse what s =
        match float_of_string_opt s with
        | Some v when v >= 0.0 -> v
        | _ -> fail line "bad %s %s" what s
      in
      let rate = parse "decay rate" rate in
      let tick = match words with [ _; t ] -> parse "tick" t | _ -> 0.0 in
      World.set_trust_decay (world st line) ~rate ~tick;
      say st "trust decay rate %g, re-assessment tick %g" rate tick
  | _ -> fail line "trust-decay takes RATE [TICK]"

(* expect-wallet PARTY OP N over the party's wallet size — the observable
   for half-issuance: a registrar crash between filings leaves the two
   parties' wallets one certificate apart until anti-entropy heals them. *)
let exec_expect_wallet st line subject op want =
  let w = world st line in
  let want =
    match int_of_string_opt want with
    | Some v -> v
    | None -> fail line "bad wallet size %s" want
  in
  let compare_fn = comparator line op in
  let got = Oasis_trust.History.size (World.wallet w (party st line subject)) in
  if not (compare_fn got want) then
    st.failures <-
      Printf.sprintf "line %d: expected wallet(%s) %s %d, found %d" line subject op want got
      :: st.failures

(* expect-trust SUBJECT OP VALUE against the world assessor's live score. *)
let exec_expect_trust st line subject op want =
  let w = world st line in
  let want =
    match float_of_string_opt want with
    | Some v -> v
    | None -> fail line "bad trust value %s" want
  in
  let compare_fn = comparator line op in
  let got = World.trust_score w (party st line subject) in
  if not (compare_fn got want) then
    st.failures <-
      Printf.sprintf "line %d: expected trust(%s) %s %g, found %g" line subject op want got
      :: st.failures

let run_lines ?sink lines =
  let st = fresh_state ?sink () in
  let rec step = function
    | [] -> ()
    | (line, raw) :: rest -> (
        let text = String.trim (strip_comment raw) in
        if text = "" then step rest
        else
          let words = split_words text in
          match words with
          | [ "seed"; n ] ->
              (match int_of_string_opt n with
              | Some seed when st.world = None -> st.seed <- seed
              | Some _ -> fail line "seed must come before anything else"
              | None -> fail line "bad seed %s" n);
              step rest
          | [ "service"; name; "{" ] -> (
              match collect_policy ~header:line rest with
              | None -> fail line "unterminated service block for %s" name
              | Some (policy, rest) ->
                  let w = world st line in
                  (match Service.create w ~name ?config:st.svc_config ~policy () with
                  | svc ->
                      Hashtbl.replace st.services name svc;
                      say st "service %s installed" name
                  | exception Failure m -> fail line "%s" m
                  | exception Service.Policy_rejected findings ->
                      fail line "policy for %s rejected: %s" name
                        (String.concat "; "
                           (List.map
                              (Format.asprintf "%a" Oasis_policy.Lint.pp_finding)
                              findings)));
                  step rest)
          | [ "principal"; name ] ->
              Hashtbl.replace st.principals name (Principal.create (world st line) ~name);
              say st "principal %s" name;
              step rest
          | [ "session"; pname; sname ] ->
              let p = find st.principals line "principal" pname in
              Hashtbl.replace st.sessions sname (p, Principal.start_session p);
              say st "session %s for %s" sname pname;
              step rest
          | "grant" :: tail ->
              let words, opts = take_options line tail in
              exec_grant st line words opts;
              World.settle (world st line);
              step rest
          | "activate" :: tail ->
              let words, opts = take_options line tail in
              exec_activate st line words opts;
              step rest
          | "invoke" :: tail ->
              let words, opts = take_options line tail in
              exec_invoke st line words opts;
              step rest
          | "appoint" :: tail ->
              let words, opts = take_options line tail in
              exec_appoint st line words opts;
              step rest
          | "revoke" :: tail ->
              exec_revoke st line tail;
              step rest
          | [ "offline-verify"; v ] ->
              (match v with
              | "on" | "off" ->
                  let enabled = String.equal v "on" in
                  let base = Option.value st.svc_config ~default:Service.default_config in
                  st.svc_config <- Some { base with offline_verify = enabled };
                  st.offline_sign <- enabled
              | _ -> fail line "offline-verify takes on|off, not %s" v);
              step rest
          | [ "suspect-grace"; f ] ->
              (match float_of_string_opt f with
              | Some g when g >= 0.0 ->
                  let base = Option.value st.svc_config ~default:Service.default_config in
                  st.svc_config <- Some { base with suspect_grace = g }
              | _ -> fail line "bad grace %s" f);
              step rest
          | "fault" :: tail ->
              exec_fault st line tail;
              step rest
          | "fact" :: tail ->
              exec_fact st line true tail;
              step rest
          | "retract" :: tail ->
              exec_fact st line false tail;
              step rest
          | [ "declare"; svc_name; pred ] ->
              let svc = find st.services line "service" svc_name in
              Env.declare_fact (Service.env svc) pred;
              step rest
          | [ "settle" ] ->
              World.settle (world st line);
              step rest
          | [ "run-until"; f ] ->
              (match float_of_string_opt f with
              | Some t -> World.run_until (world st line) t
              | None -> fail line "bad time %s" f);
              step rest
          | [ "logout"; pname; sname ] ->
              let p = find st.principals line "principal" pname in
              let _, session = find st.sessions line "session" sname in
              World.run_proc (world st line) (fun () -> Principal.logout p session);
              say st "%s logged out of %s" pname sname;
              step rest
          | "trace" :: note ->
              (* Emits a mark into the event timeline, so exported traces
                 can be segmented by scenario position. *)
              let w = world st line in
              Obs.event (World.obs w) "scenario.mark"
                ~labels:[ ("line", string_of_int line); ("note", String.concat " " note) ];
              step rest
          | [ "expect-metric"; key; op; v ] ->
              exec_expect_metric st line key op v;
              step rest
          | [ "expect-active"; svc_name; n ] ->
              let svc = find st.services line "service" svc_name in
              let want =
                match int_of_string_opt n with Some v -> v | None -> fail line "bad count %s" n
              in
              let got = List.length (Service.active_roles svc) in
              if got <> want then
                st.failures <-
                  Printf.sprintf "line %d: expected %d active role(s) at %s, found %d" line want
                    svc_name got
                  :: st.failures;
              step rest
          | "interact" :: tail ->
              exec_interact st line ~crash:false tail;
              step rest
          | "interact-crash" :: tail ->
              exec_interact st line ~crash:true tail;
              step rest
          | "trust-decay" :: tail ->
              exec_trust_decay st line tail;
              step rest
          | [ "expect-trust"; subject; op; v ] ->
              exec_expect_trust st line subject op v;
              step rest
          | [ "expect-wallet"; subject; op; n ] ->
              exec_expect_wallet st line subject op n;
              step rest
          | [ "show"; svc_name ] ->
              show st line svc_name;
              step rest
          | word :: _ -> fail line "unknown command %s" word
          | [] -> step rest)
  in
  step lines;
  let metrics =
    match st.world with Some w -> Obs.metric_values (World.obs w) | None -> []
  in
  let chains =
    Hashtbl.fold (fun name svc acc -> (name, Service.decision_log svc) :: acc) st.services []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { log = List.rev st.log; failures = List.rev st.failures; metrics; chains }

let run_string ?sink source =
  let lines = String.split_on_char '\n' source |> List.mapi (fun i l -> (i + 1, l)) in
  match run_lines ?sink lines with
  | outcome -> Ok outcome
  | exception Stop e -> Error e
  | exception Failure message -> Error { line = 0; message }

let run_file ?sink path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  run_string ?sink s

(* ------------------------------------------------------------------ *)
(* Static extraction for analyze-world                                *)
(* ------------------------------------------------------------------ *)

(* The [service NAME { … }] blocks of a scenario, parsed. Statement
   positions are absolute within the scenario file (see collect_policy). *)
let gather_blocks source =
  let lines = String.split_on_char '\n' source |> List.mapi (fun i l -> (i + 1, l)) in
  let rec gather acc = function
    | [] -> List.rev acc
    | (line, raw) :: rest -> (
        let text = String.trim (strip_comment raw) in
        match split_words text with
        | [ "service"; name; "{" ] -> (
            match collect_policy ~header:line rest with
            | None -> fail line "unterminated service block for %s" name
            | Some (policy, rest) -> (
                match Oasis_policy.Parser.parse policy with
                | Error e ->
                    fail e.Oasis_policy.Parser.line "in service %s: %s" name
                      e.Oasis_policy.Parser.message
                | Ok statements -> gather ((name, statements) :: acc) rest))
        | _ -> gather acc rest)
  in
  gather [] lines

(* The implicit CIV can issue whatever kind any rule asks of it. *)
let civ_kinds services =
  List.concat_map
    (fun (_, statements) ->
      List.concat_map
        (fun (a : Oasis_policy.Rule.activation) ->
          List.filter_map
            (function
              | Oasis_policy.Rule.Appointment { Oasis_policy.Rule.service = Some "civ"; name; _ }
                ->
                  Some name
              | _ -> None)
            a.conditions)
        (Oasis_policy.Parser.activations statements))
    services
  |> List.sort_uniq compare

let extract_policies source =
  match gather_blocks source with
  | exception Stop e -> Error e
  | services ->
      let civ =
        {
          Oasis_policy.Analysis.sp_name = "civ";
          activations = [];
          authorizations = [];
          appointers = [];
          appointment_kinds = civ_kinds services;
        }
      in
      Ok
        (civ
        :: List.map
             (fun (name, statements) -> Oasis_policy.Analysis.of_statements ~name statements)
             services)

let extract_lint_services source =
  match gather_blocks source with
  | exception Stop e -> Error e
  | services ->
      let civ =
        {
          Oasis_policy.Lint.s_name = "civ";
          s_activations = [];
          s_authorizations = [];
          s_appointers = [];
          s_extra_kinds = civ_kinds services;
        }
      in
      Ok
        (civ
        :: List.map
             (fun (name, statements) -> Oasis_policy.Lint.of_statements ~name statements)
             services)
