(** SHA-256 (FIPS 180-4), implemented from scratch.

    No cryptographic package is available in the build environment, so the
    hash underlying certificate signatures (Fig. 4) is provided here. The
    implementation is the straightforward 32-bit reference algorithm —
    adequate for a reproduction; not hardened against side channels. *)

type digest
(** A 32-byte digest. *)

val digest_string : string -> digest
val digest_bytes : bytes -> digest

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
val feed_string : ctx -> string -> unit
val feed_bytes : ctx -> bytes -> unit
val finalize : ctx -> digest
(** [finalize] consumes the context; feeding it afterwards raises
    [Invalid_argument]. *)

val to_raw_string : digest -> string
(** The 32 raw bytes. *)

val to_hex : digest -> string
(** Lowercase hexadecimal, 64 characters. *)

val of_raw_string : string -> digest option
(** Re-wraps 32 raw bytes (e.g. parsed off the wire); [None] on wrong size. *)

val equal_ct : digest -> digest -> bool
(** Constant-time comparison: runs over all 32 bytes regardless of where the
    first mismatch sits, so MAC checks leak no prefix-length timing signal.
    This is the comparison every verifier (HMAC, signature pad checks) must
    use on secret-derived digests. *)

val equal : digest -> digest -> bool
(** Alias of {!equal_ct}; kept for callers that compare public digests. *)

val pp : Format.formatter -> digest -> unit
