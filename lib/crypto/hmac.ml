let block_size = 64

let normalise_key key =
  let key = if String.length key > block_size then Sha256.(to_raw_string (digest_string key)) else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  Bytes.to_string padded

let xor_with pad c =
  String.map (fun k -> Char.chr (Char.code k lxor c)) pad

let mac ~key msg =
  let key0 = normalise_key key in
  let ipad = xor_with key0 0x36 in
  let opad = xor_with key0 0x5c in
  let inner = Sha256.init () in
  Sha256.feed_string inner ipad;
  Sha256.feed_string inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed_string outer opad;
  Sha256.feed_string outer (Sha256.to_raw_string inner_digest);
  Sha256.finalize outer

let verify ~key msg expected = Sha256.equal_ct (mac ~key msg) expected

let derive_key ~key label =
  Sha256.to_raw_string (mac ~key ("oasis-kdf\x00" ^ label))
