(** ElGamal over GF(2^61 − 1): the simulated public-key layer.

    Sect. 4.1 integrates OASIS with public/private key cryptography: "a
    key-pair can be created by the principal and the public key sent to the
    service to be bound into the certificate". This module supplies such key
    pairs and the asymmetric encryption used by the challenge–response
    protocol. Toy field size; genuine algorithm (see DESIGN.md §3). *)

type public = int64
type private_key

type keypair = { public : public; private_key : private_key }

val generate : Oasis_util.Rng.t -> keypair

type ciphertext = { c1 : int64; c2 : int64 }

val encrypt : Oasis_util.Rng.t -> public -> int64 -> ciphertext
(** [encrypt rng pub m] encrypts a field element under [pub]. *)

val decrypt : private_key -> ciphertext -> int64

val valid_public : public -> bool
(** Partial public-key validation (SP 800-56A style): [2 <= y <= p - 2],
    excluding the identity and the order-2 element — the two
    subgroup-confinement points a bare range check would admit. Full
    membership of the generator's subgroup is not cheaply decidable here;
    DESIGN.md §12 records the residual gap. *)

val public_to_string : public -> string

val public_of_string : string -> public option
(** Strict canonical decimal (no sign, hex, underscores or leading zeros)
    and [valid_public]; every accepted key has exactly one encoding. *)

val proves : private_key -> public -> bool
(** [proves priv pub] — whether [priv] is the private key of [pub]; used by
    tests and by local key-consistency checks. *)
