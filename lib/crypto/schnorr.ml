(* Schnorr signatures over GF(2^61 - 1).

   Exponent arithmetic is modulo the group exponent n = p - 1 (Fermat:
   g^(k mod (p-1)) = g^k for any g in the field, whatever ord(g)), so the
   scheme is sound even though full <g>-membership of keys is not checked.
   Products x*e overflow int64, hence the double-and-add [mulmod]. *)

type signature = { e : int64; s : int64 }

type keypair = { public : int64; secret : int64 }

(* n = p - 1 = 2^61 - 2: the exponent group order. *)
let n = Int64.sub Modp.p 1L

(* Both operands < n < 2^61, so a + b < 2^62 never wraps int64. *)
let addm a b =
  let sum = Int64.add a b in
  if sum >= n then Int64.sub sum n else sum

let mulmod a b =
  let acc = ref 0L and a = ref (Int64.rem a n) and b = ref (Int64.rem b n) in
  while !b > 0L do
    if Int64.logand !b 1L = 1L then acc := addm !acc !a;
    a := addm !a !a;
    b := Int64.shift_right_logical !b 1
  done;
  !acc

(* k - x*e mod n, with k <= n and xe < n. *)
let subm a b = if a >= b then Int64.sub a b else Int64.sub (Int64.add a n) b

let rec generate rng =
  let x = Modp.random rng in
  let public = Modp.pow Modp.generator x in
  if Elgamal.valid_public public then { public; secret = x } else generate rng

let int64_be v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Bytes.to_string b

(* First 8 digest bytes (sign bit cleared) reduced mod n. *)
let hash_to_scalar msg =
  let d = Sha256.to_raw_string (Sha256.digest_string msg) in
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code d.[i]))
  done;
  Int64.rem (Int64.logand !v Int64.max_int) n

let challenge r msg = hash_to_scalar ("oasis-schnorr\x00" ^ int64_be r ^ msg)

let sign ~secret rng msg =
  let k = Modp.random rng in
  let r = Modp.pow Modp.generator k in
  let e = challenge r msg in
  { e; s = subm (Int64.rem k n) (mulmod secret e) }

(* e and s are public once the signature is on the wire, so the int64
   comparison needs no masking; the verifier recomputes only from public
   data. *)
let verify ~public msg { e; s } =
  e >= 0L && e < n && s >= 0L && s < n
  && Elgamal.valid_public public
  &&
  let r' = Modp.mul (Modp.pow Modp.generator s) (Modp.pow public e) in
  Int64.equal (challenge r' msg) e

(* ------------------------------------------------------------------ *)
(* Packing into the 32-byte certificate signature field               *)
(* ------------------------------------------------------------------ *)

(* e (8 bytes BE) || s (8 bytes BE) || 16 zero bytes, carried in the same
   [Sha256.digest]-typed field HMAC certificates use. An HMAC digest read
   as a packed signature fails the zero-pad check (and the scalar range
   checks) with overwhelming probability, so the two schemes cannot be
   confused on the wire. *)
let zero_pad = String.make 16 '\x00'

let to_digest { e; s } =
  match Sha256.of_raw_string (int64_be e ^ int64_be s ^ zero_pad) with
  | Some d -> d
  | None -> assert false

let of_digest d =
  let raw = Sha256.to_raw_string d in
  let scalar off =
    let v = ref 0L in
    for i = off to off + 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code raw.[i]))
    done;
    !v
  in
  let e = scalar 0 and s = scalar 8 in
  if String.equal (String.sub raw 16 16) zero_pad && e >= 0L && e < n && s >= 0L && s < n then
    Some { e; s }
  else None
