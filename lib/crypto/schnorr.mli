(** Schnorr signatures over GF(2^61 − 1): the offline-verifiable layer.

    Sect. 4 certificates are "public-key certificates"; this module provides
    the signature half so relying services can verify credentials with zero
    network round trips (DESIGN.md §12). Same toy field caveat as {!Modp} —
    genuine algorithm, 61-bit security parameter, recorded in DESIGN.md. *)

type signature = { e : int64; s : int64 }
(** A (challenge, response) pair; both scalars are in [\[0, p − 1)]. *)

type keypair = { public : int64; secret : int64 }

val generate : Oasis_util.Rng.t -> keypair
(** Fresh keypair whose public key passes {!Elgamal.valid_public}. *)

val sign : secret:int64 -> Oasis_util.Rng.t -> string -> signature

val verify : public:int64 -> string -> signature -> bool
(** Rejects out-of-range scalars and invalid public keys before the group
    equation; verification uses public data only. *)

val to_digest : signature -> Sha256.digest
(** Packs [e ‖ s] (8-byte big-endian each) plus 16 zero bytes into the
    32-byte signature field certificates already carry. *)

val of_digest : Sha256.digest -> signature option
(** Inverse of {!to_digest}; [None] if the pad is non-zero or either scalar
    is out of range — which is where HMAC digests land, so scheme confusion
    on the wire is rejected here. *)
