type public = int64
type private_key = int64

type keypair = { public : public; private_key : private_key }

(* Valid public keys exclude the two subgroup-confinement points that
   survive a bare range check: 1 (the identity) and p − 1 (the unique
   element of order 2). Full membership of <generator> is not cheaply
   decidable in this field, so validation is the standard "partial public
   key validation" of SP 800-56A: canonical encoding + 2 <= y <= p − 2. *)
let valid_public v = v >= 2L && v <= Int64.sub Modp.p 2L

let rec generate rng =
  let x = Modp.random rng in
  let public = Modp.pow Modp.generator x in
  (* x = p − 1 maps to the identity; re-draw rather than hand out a key
     every holder of the group order could forge against. *)
  if valid_public public then { public; private_key = x } else generate rng

type ciphertext = { c1 : int64; c2 : int64 }

let encrypt rng pub m =
  let k = Modp.random rng in
  { c1 = Modp.pow Modp.generator k; c2 = Modp.mul (Modp.of_int64 m) (Modp.pow pub k) }

let decrypt x { c1; c2 } = Modp.mul c2 (Modp.inv (Modp.pow c1 x))

let public_to_string = Int64.to_string

let public_of_string s =
  (* Canonical decimal only: [Int64.of_string_opt] alone would admit hex,
     octal, sign prefixes, underscores and leading zeros, giving one key
     many encodings. Re-encoding and comparing rejects all of them. *)
  match Int64.of_string_opt s with
  | Some v when String.equal (Int64.to_string v) s && valid_public v -> Some v
  | _ -> None

let proves x pub = Modp.pow Modp.generator x = pub
