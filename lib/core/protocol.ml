module Ident = Oasis_util.Ident
module Value = Oasis_util.Value

type credentials = {
  rmcs : Oasis_cert.Rmc.t list;
  appointments : Oasis_cert.Appointment.t list;
}

let no_credentials = { rmcs = []; appointments = [] }

type denial =
  | Unknown_role of string
  | Unknown_privilege of string
  | No_proof
  | Bad_credential of Ident.t
  | Challenge_failed
  | Bad_request of string

let denial_to_string = function
  | Unknown_role r -> Printf.sprintf "unknown role %s" r
  | Unknown_privilege p -> Printf.sprintf "unknown privilege %s" p
  | No_proof -> "no activation or authorization rule satisfied"
  | Bad_credential id -> Printf.sprintf "credential %s failed validation" (Ident.to_string id)
  | Challenge_failed -> "challenge-response failed"
  | Bad_request m -> Printf.sprintf "bad request: %s" m

let pp_denial ppf d = Format.pp_print_string ppf (denial_to_string d)

type msg =
  | Activate of {
      principal : Ident.t;
      session_key : string;
      role : string;
      requested : Value.t option list;
      creds : credentials;
    }
  | Activate_ok of { rmc : Oasis_cert.Rmc.t; initial : bool }
  | Invoke of {
      principal : Ident.t;
      session_key : string;
      privilege : string;
      args : Value.t list;
      creds : credentials;
    }
  | Invoke_ok of Value.t option
  | Appoint of {
      principal : Ident.t;
      session_key : string;
      kind : string;
      args : Value.t list;
      holder : Ident.t;
      holder_key : string;
      expires_at : float option;
      creds : credentials;
    }
  | Appoint_ok of Oasis_cert.Appointment.t
  | Deactivate of { cert_id : Ident.t; session_key : string }
  | Deactivate_ok
  | Validate_rmc of { rmc : Oasis_cert.Rmc.t; principal_key : string }
  | Validate_appt of { appt : Oasis_cert.Appointment.t }
  | Validate_result of bool
  | Challenge_msg of { challenge : Oasis_crypto.Challenge.challenge; key_hint : string }
  | Challenge_response of string
  | Env_check of { pred : string; args : Value.t list }
  | Env_result of bool
  | Check_cr of { cert_id : Ident.t }
  | Cr_status of { valid : bool }
  | Denied of denial

let pp_msg ppf = function
  | Activate { role; principal; _ } ->
      Format.fprintf ppf "Activate(%s by %a)" role Ident.pp principal
  | Activate_ok { rmc; _ } -> Format.fprintf ppf "Activate_ok(%a)" Oasis_cert.Rmc.pp rmc
  | Invoke { privilege; principal; _ } ->
      Format.fprintf ppf "Invoke(%s by %a)" privilege Ident.pp principal
  | Invoke_ok _ -> Format.pp_print_string ppf "Invoke_ok"
  | Appoint { kind; holder; _ } -> Format.fprintf ppf "Appoint(%s to %a)" kind Ident.pp holder
  | Appoint_ok a -> Format.fprintf ppf "Appoint_ok(%a)" Oasis_cert.Appointment.pp a
  | Deactivate { cert_id; _ } -> Format.fprintf ppf "Deactivate(%a)" Ident.pp cert_id
  | Deactivate_ok -> Format.pp_print_string ppf "Deactivate_ok"
  | Validate_rmc { rmc; _ } -> Format.fprintf ppf "Validate_rmc(%a)" Ident.pp rmc.Oasis_cert.Rmc.id
  | Validate_appt { appt } ->
      Format.fprintf ppf "Validate_appt(%a)" Ident.pp appt.Oasis_cert.Appointment.id
  | Validate_result ok -> Format.fprintf ppf "Validate_result(%b)" ok
  | Challenge_msg _ -> Format.pp_print_string ppf "Challenge"
  | Challenge_response _ -> Format.pp_print_string ppf "Challenge_response"
  | Env_check { pred; _ } -> Format.fprintf ppf "Env_check(%s)" pred
  | Env_result ok -> Format.fprintf ppf "Env_result(%b)" ok
  | Check_cr { cert_id } -> Format.fprintf ppf "Check_cr(%a)" Ident.pp cert_id
  | Cr_status { valid } -> Format.fprintf ppf "Cr_status(%b)" valid
  | Denied d -> Format.fprintf ppf "Denied(%a)" pp_denial d

type event =
  | Invalidated of { issuer : Ident.t; cert_id : Ident.t; reason : string }
  | Beat of { issuer : Ident.t; cert_id : Ident.t }
  | Replicated of { issuer : Ident.t; cert_id : Ident.t; valid : bool }

let pp_event ppf = function
  | Invalidated { cert_id; reason; _ } ->
      Format.fprintf ppf "Invalidated(%a: %s)" Ident.pp cert_id reason
  | Beat { cert_id; _ } -> Format.fprintf ppf "Beat(%a)" Ident.pp cert_id
  | Replicated { cert_id; valid; _ } ->
      Format.fprintf ppf "Replicated(%a valid=%b)" Ident.pp cert_id valid

let header_bytes = 24 (* addressing, kind tag, request id *)

let creds_size { rmcs; appointments } =
  List.fold_left (fun acc r -> acc + Oasis_cert.Rmc.size_bytes r) 0 rmcs
  + List.fold_left (fun acc a -> acc + Oasis_cert.Appointment.size_bytes a) 0 appointments

let values_size args =
  List.fold_left (fun acc v -> acc + String.length (Value.to_string v) + 4) 0 args

let size_of msg =
  header_bytes
  +
  match msg with
  | Activate { session_key; role; requested; creds; _ } ->
      String.length session_key + String.length role
      + (4 * List.length requested)
      + values_size (List.filter_map Fun.id requested)
      + creds_size creds
  | Activate_ok { rmc; _ } -> Oasis_cert.Rmc.size_bytes rmc + 1
  | Invoke { session_key; privilege; args; creds; _ } ->
      String.length session_key + String.length privilege + values_size args + creds_size creds
  | Invoke_ok result -> values_size (Option.to_list result)
  | Appoint { session_key; kind; args; holder_key; creds; _ } ->
      String.length session_key + String.length kind + values_size args
      + String.length holder_key + 8 + creds_size creds
  | Appoint_ok appt -> Oasis_cert.Appointment.size_bytes appt
  | Deactivate { session_key; _ } -> 16 + String.length session_key
  | Deactivate_ok -> 0
  | Validate_rmc { rmc; principal_key } ->
      Oasis_cert.Rmc.size_bytes rmc + String.length principal_key
  | Validate_appt { appt } -> Oasis_cert.Appointment.size_bytes appt
  | Validate_result _ -> 1
  | Challenge_msg { key_hint; _ } -> 16 + 16 + String.length key_hint
  | Challenge_response r -> String.length r
  | Env_check { pred; args } -> String.length pred + values_size args
  | Env_result _ -> 1
  | Check_cr _ -> 16
  | Cr_status _ -> 1
  | Denied d -> String.length (denial_to_string d)
