(** Simulated durable storage (DESIGN.md §16).

    A crash drops a node's in-memory state; what it wrote here survives.
    One store per world, keyed by opaque strings (services prefix their
    own identifier). Decision-log chains are mirrored into it
    incrementally — {!append} one export line per logged decision — and
    {!get} hands the whole blob back to {!Oasis_trust.Decision_log.resume}
    on restart. *)

type t

val create : unit -> t

val set : t -> string -> string -> unit
(** Replace the blob under a key (creating it if absent). *)

val append : t -> string -> string -> unit
(** Append to the blob under a key (creating it if absent) — the
    incremental path: cost is the appended bytes, never the blob size. *)

val get : t -> string -> string option

val mem : t -> string -> bool

val remove : t -> string -> unit

val size : t -> string -> int
(** Blob length in bytes; 0 when absent. *)

val corrupt : t -> string -> byte:int -> bool
(** Flip the low bit of byte [byte mod size] of the stored blob — the
    adversary tampering with "disk" while the node is down. Returns
    [false] when there is nothing to corrupt. *)
