(** Wire protocol between OASIS nodes.

    One message type covers the four paths of Fig. 2 (role entry 1–2 and
    service use 3–4), validation callbacks, appointment issuance, explicit
    deactivation, and the challenge–response sub-protocol of Sect. 4.1.
    Event-channel traffic (Fig. 5) uses the separate {!event} type carried
    by the broker. *)

type credentials = {
  rmcs : Oasis_cert.Rmc.t list;
  appointments : Oasis_cert.Appointment.t list;
}

val no_credentials : credentials

(** Why a request was refused. The service deliberately reports coarse
    reasons to clients (fine-grained refusal reasons leak policy); the
    per-service statistics record the detail. *)
type denial =
  | Unknown_role of string
  | Unknown_privilege of string
  | No_proof  (** no activation/authorization rule could be satisfied *)
  | Bad_credential of Oasis_util.Ident.t  (** failed validation: forged, revoked, expired or stolen *)
  | Challenge_failed
  | Bad_request of string

val pp_denial : Format.formatter -> denial -> unit
val denial_to_string : denial -> string

type msg =
  (* Path 1: role entry request. [session_key] is the session-specific
     principal id bound into the RMC signature (Sect. 4.1). [requested]
     optionally pins head parameters positionally. *)
  | Activate of {
      principal : Oasis_util.Ident.t;
      session_key : string;
      role : string;
      requested : Oasis_util.Value.t option list;
      creds : credentials;
    }
  (* Path 2: the RMC, with whether the role is an initial (session-root) role. *)
  | Activate_ok of { rmc : Oasis_cert.Rmc.t; initial : bool }
  (* Path 3: service invocation. *)
  | Invoke of {
      principal : Oasis_util.Ident.t;
      session_key : string;
      privilege : string;
      args : Oasis_util.Value.t list;
      creds : credentials;
    }
  (* Path 4: result of the invocation's operation (if any is registered). *)
  | Invoke_ok of Oasis_util.Value.t option
  (* Appointment issuance: the appointer asks the service to certify
     [holder]. The appointer's own credentials must satisfy the service's
     appointer policy for [kind]. *)
  | Appoint of {
      principal : Oasis_util.Ident.t;
      session_key : string;
      kind : string;
      args : Oasis_util.Value.t list;
      holder : Oasis_util.Ident.t;
      holder_key : string;
      expires_at : float option;
      creds : credentials;
    }
  | Appoint_ok of Oasis_cert.Appointment.t
  (* Voluntary role deactivation / logout; must prove the session binding. *)
  | Deactivate of { cert_id : Oasis_util.Ident.t; session_key : string }
  | Deactivate_ok
  (* Validation callbacks to the issuer (Sect. 4): the full certificate is
     presented; only the issuer can check the signature (it holds SECRET). *)
  | Validate_rmc of { rmc : Oasis_cert.Rmc.t; principal_key : string }
  | Validate_appt of { appt : Oasis_cert.Appointment.t }
  | Validate_result of bool
  (* Challenge–response against a claimed public key; [key_hint] tells the
     responder which of its keys is being challenged. *)
  | Challenge_msg of { challenge : Oasis_crypto.Challenge.challenge; key_hint : string }
  | Challenge_response of string
  (* Remote environmental lookup: "the user is a member of a group; this may
     be ascertained by database lookup at some service" (Sect. 2). *)
  | Env_check of { pred : string; args : Oasis_util.Value.t list }
  | Env_result of bool
  (* Anti-entropy reconciliation: after a partition heals or a node
     restarts, a dependent service asks the issuer point-blank whether a
     credential record is still valid. Cheaper than a full validation
     callback — the dependent already holds the certificate; only the
     issuer's current record state is in question. *)
  | Check_cr of { cert_id : Oasis_util.Ident.t }
  | Cr_status of { valid : bool }
  | Denied of denial

val pp_msg : Format.formatter -> msg -> unit
(** Constructor-level summary for logs and traces. *)

val size_of : msg -> int
(** Estimated wire size in bytes: certificates at their exact {!Oasis_cert}
    encodings, other fields at representative sizes. Feeds the network's
    byte counters. *)

(** Event-channel payloads (Fig. 5): invalidation change events, or
    heartbeats asserting continued validity. *)
type event =
  | Invalidated of { issuer : Oasis_util.Ident.t; cert_id : Oasis_util.Ident.t; reason : string }
  | Beat of { issuer : Oasis_util.Ident.t; cert_id : Oasis_util.Ident.t }
  | Replicated of { issuer : Oasis_util.Ident.t; cert_id : Oasis_util.Ident.t; valid : bool }
      (** CIV-cluster state replication: primary → replicas (ref [10]). *)

val pp_event : Format.formatter -> event -> unit
