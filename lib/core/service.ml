module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Rng = Oasis_util.Rng
module Engine = Oasis_sim.Engine
module Network = Oasis_sim.Network
module Broker = Oasis_event.Broker
module Heartbeat = Oasis_event.Heartbeat
module Env = Oasis_policy.Env
module Rule = Oasis_policy.Rule
module Term = Oasis_policy.Term
module Solve = Oasis_policy.Solve
module Parser = Oasis_policy.Parser
module Lint = Oasis_policy.Lint
module Rmc = Oasis_cert.Rmc
module Appointment = Oasis_cert.Appointment
module Cr = Oasis_cert.Credential_record
module Vcache = Oasis_cert.Validation_cache
module Secret = Oasis_crypto.Secret
module Elgamal = Oasis_crypto.Elgamal
module Challenge = Oasis_crypto.Challenge
module Obs = Oasis_obs.Obs

let log = Logs.Src.create "oasis.service" ~doc:"OASIS service events"

module Log = (val Logs.src_log log)

type config = {
  challenge_on_activation : bool;
  challenge_on_invocation : bool;
  challenge_appointment_holders : bool;
  cache_remote_validation : bool;
  validation_retries : int;
  index_env_watches : bool;
  strict_install : bool;
}

let default_config =
  {
    challenge_on_activation = false;
    challenge_on_invocation = false;
    challenge_appointment_holders = false;
    cache_remote_validation = true;
    validation_retries = 2;
    index_env_watches = true;
    strict_install = true;
  }

type audit_entry = {
  at : float;
  principal : Ident.t;
  action : string;
  args : Value.t list;
  creds_used : Ident.t list;
}

(* Watch state for one remote credential supporting an active role or a
   cached validation verdict. *)
type watch =
  | Watch_event of Broker.subscription
  | Watch_beat of Heartbeat.monitor
  | Watch_timer of Engine.cancel option ref
      (* the slot holds the currently armed re-check timer; re-arming
         replaces the handle instead of accumulating dead ones *)

(* An RMC this service has issued, with its active-security state. *)
type issued_rmc = {
  rmc : Rmc.t;
  record : Cr.t;
  initial : bool;
  session_key : string;
  ir_principal : Ident.t;
  mutable watches : watch list;
  mutable env_watch : (string * Value.t list) list;
      (* ground membership env constraints; first component may carry '!' *)
  mutable beats : Heartbeat.emitter option;
}

type issued_appt = {
  appt : Appointment.t;
  appt_record : Cr.t;
  mutable appt_beats : Heartbeat.emitter option;
}

(* Per-service counters in the world's registry, labelled
   [service=<name>] — e.g. [service.env_rechecks{service=hospital}]. The
   public [stats] record below is a view over them. *)
type counters = {
  activations_granted : Obs.Counter.t;
  activations_denied : Obs.Counter.t;
  invocations_granted : Obs.Counter.t;
  invocations_denied : Obs.Counter.t;
  appointments_granted : Obs.Counter.t;
  appointments_denied : Obs.Counter.t;
  callbacks_in : Obs.Counter.t;
  callbacks_out : Obs.Counter.t;
  validation_failures : Obs.Counter.t;
  revocations : Obs.Counter.t;
  cascade_deactivations : Obs.Counter.t;
  env_rechecks : Obs.Counter.t;
}

type stats = {
  activations_granted : int;
  activations_denied : int;
  invocations_granted : int;
  invocations_denied : int;
  appointments_granted : int;
  appointments_denied : int;
  callbacks_in : int;
  callbacks_out : int;
  validation_failures : int;
  revocations : int;
  cascade_deactivations : int;
  env_rechecks : int;
  cache : Vcache.stats;
}

type t = {
  world : World.t;
  sid : Ident.t;
  sname : string;
  obs : Obs.t;
  config : config;
  env : Env.t;
  secret : Secret.t;
  mutable epoch : int;
  activations : (string, Rule.activation Queue.t) Hashtbl.t;
  authorizations : (string, Rule.authorization Queue.t) Hashtbl.t;
  appointers : (string, Rule.authorization Queue.t) Hashtbl.t;
  operations : (string, principal:Ident.t -> Value.t list -> Value.t option) Hashtbl.t;
  crs : Cr.store;
  rmcs : issued_rmc Ident.Tbl.t;
  env_index : (string, issued_rmc Ident.Tbl.t) Hashtbl.t;
      (* predicate base name -> issued RMCs whose membership rule watches it *)
  appts : issued_appt Ident.Tbl.t;
  cache : Vcache.t;
  cache_watched : watch Ident.Tbl.t;  (* remote cert id -> invalidation watch *)
  st : counters;
  mutable audit : audit_entry list;
}

let id t = t.sid
let service_name t = t.sname
let env t = t.env
let world t = t.world
let current_epoch t = t.epoch

(* ------------------------------------------------------------------ *)
(* Policy installation                                                *)
(* ------------------------------------------------------------------ *)

(* Appends in O(1) while preserving installation order: a rule installed
   first is tried first, and bulk policy installation stays linear in the
   number of rules per role. *)
let multi_add table key v =
  match Hashtbl.find_opt table key with
  | Some q -> Queue.push v q
  | None ->
      let q = Queue.create () in
      Queue.push v q;
      Hashtbl.replace table key q

let add_activation_rule t (rule : Rule.activation) = multi_add t.activations rule.role rule

let add_authorization_rule t (rule : Rule.authorization) =
  multi_add t.authorizations rule.privilege rule

let set_appointer t ~kind ~rule = multi_add t.appointers kind rule

let register_operation t privilege handler = Hashtbl.replace t.operations privilege handler

(* ------------------------------------------------------------------ *)
(* Credential validation                                              *)
(* ------------------------------------------------------------------ *)

let verify_own_rmc t ~principal_key (rmc : Rmc.t) =
  Rmc.verify ~secret:t.secret ~principal_key rmc
  && (match Cr.find t.crs rmc.id with Some record -> Cr.is_valid record | None -> false)

let verify_own_appt t (appt : Appointment.t) =
  Appointment.verify ~master_secret:t.secret ~current_epoch:t.epoch ~now:(World.now t.world) appt
  && (match Cr.find t.crs appt.id with Some record -> Cr.is_valid record | None -> false)

(* Starts an invalidation watch for a remote certificate, used both for
   membership monitoring and for cache invalidation. *)
let watch_invalidation t ~issuer ~cert_id ~on_dead =
  let topic = Cr.topic_of ~issuer ~cert_id in
  match World.monitoring t.world with
  | Change_events ->
      let sub =
        Broker.subscribe (World.broker t.world) topic ~owner:t.sid (fun _topic event ->
            match event with
            | Protocol.Invalidated { reason; _ } -> on_dead reason
            | Protocol.Beat _ | Protocol.Replicated _ -> ())
      in
      Watch_event sub
  | Heartbeats { deadline; _ } ->
      let monitor =
        Heartbeat.watch
          ~accept:(function Protocol.Beat _ -> true | _ -> false)
          (World.broker t.world) (World.engine t.world) ~topic ~deadline
          ~on_miss:(fun () -> on_dead "heartbeat missed")
      in
      Watch_beat monitor

let drop_watch t = function
  | Watch_event sub -> Broker.unsubscribe (World.broker t.world) sub
  | Watch_beat monitor -> Heartbeat.cancel_watch monitor
  | Watch_timer slot -> (
      match !slot with
      | Some cancel ->
          Engine.cancel (World.engine t.world) cancel;
          slot := None
      | None -> ())

(* ------------------------------------------------------------------ *)
(* The env reverse index (predicate base name -> watching RMCs)       *)
(* ------------------------------------------------------------------ *)

(* A fact change must touch only the RMCs whose membership rule mentions
   the changed predicate, not every RMC the service ever issued; the index
   is maintained on issue and deactivation. *)
let index_env_watch t issued (name, _args) =
  let base = Env.base_name name in
  let watchers =
    match Hashtbl.find_opt t.env_index base with
    | Some w -> w
    | None ->
        let w = Ident.Tbl.create 8 in
        Hashtbl.replace t.env_index base w;
        w
  in
  Ident.Tbl.replace watchers issued.rmc.Rmc.id issued

let unindex_env_watches t issued =
  List.iter
    (fun (name, _args) ->
      let base = Env.base_name name in
      match Hashtbl.find_opt t.env_index base with
      | None -> ()
      | Some watchers ->
          Ident.Tbl.remove watchers issued.rmc.Rmc.id;
          if Ident.Tbl.length watchers = 0 then Hashtbl.remove t.env_index base)
    issued.env_watch

(* Remote validation with optional caching (Sect. 4, experiment E3).

   Positive verdicts are cached with an invalidation watch on the issuer's
   event channel; when that watch reports the certificate dead, the entry
   is converted to a cached negative verdict (revocation is permanent), so
   re-presenting a revoked certificate answers locally instead of issuing
   the callback again. A plain [false] wire verdict is never cached — RMC
   validity depends on the presented session key, not the cert id alone. *)
let validate_remote t ~make_request ~cert_id ~issuer =
  let trace_verdict source ok =
    if Obs.tracing t.obs then
      Obs.event t.obs "svc.validate"
        ~labels:
          [
            ("service", t.sname);
            ("cert", Ident.to_string cert_id);
            ("source", source);
            ("ok", if ok then "true" else "false");
          ];
    ok
  in
  let cached = if t.config.cache_remote_validation then Vcache.lookup t.cache cert_id else None in
  match cached with
  | Some Vcache.Valid -> trace_verdict "cache" true
  | Some Vcache.Invalid -> trace_verdict "cache" false
  | None -> (
      (* Datagram loss must not turn into a spurious denial: retry a bounded
         number of times before giving up (the verdict itself is never
         retried — a 'false' answer is authoritative). *)
      let rec attempt tries_left =
        Obs.Counter.inc t.st.callbacks_out;
        match Network.rpc (World.network t.world) ~src:t.sid ~dst:issuer (make_request ()) with
        | reply -> reply
        | exception Network.Rpc_dropped ->
            if tries_left > 0 then attempt (tries_left - 1) else raise Network.Rpc_dropped
      in
      match attempt t.config.validation_retries with
      | Protocol.Validate_result ok ->
          if ok && t.config.cache_remote_validation then begin
            Vcache.cache_valid t.cache cert_id;
            if not (Ident.Tbl.mem t.cache_watched cert_id) then begin
              let watch =
                watch_invalidation t ~issuer ~cert_id ~on_dead:(fun _reason ->
                    Vcache.invalidate t.cache cert_id;
                    match Ident.Tbl.find_opt t.cache_watched cert_id with
                    | Some w ->
                        Ident.Tbl.remove t.cache_watched cert_id;
                        drop_watch t w
                    | None -> ())
              in
              Ident.Tbl.replace t.cache_watched cert_id watch
            end
          end;
          trace_verdict "callback" ok
      | _ -> trace_verdict "callback" false
      | exception Network.Rpc_dropped -> trace_verdict "callback_lost" false)

(* Challenge-response against a claimed public key (Sect. 4.1). *)
let challenge_key t ~dst ~key =
  match Elgamal.public_of_string key with
  | None -> false
  | Some public -> (
      let challenge, pending = Challenge.issue (World.rng t.world) public in
      match
        Network.rpc (World.network t.world) ~src:t.sid ~dst
          (Protocol.Challenge_msg { challenge; key_hint = key })
      with
      | Protocol.Challenge_response response -> Challenge.check pending response
      | _ -> false
      | exception Network.Rpc_dropped -> false)

(* Validates every presented credential, returning solver candidates.
   Invalid credentials are dropped (and counted): a wallet may legitimately
   contain certificates that have expired or been revoked. *)
let validate_presented t ~src ~session_key (creds : Protocol.credentials) =
  let rmc_ok (rmc : Rmc.t) =
    if Ident.equal rmc.issuer t.sid then verify_own_rmc t ~principal_key:session_key rmc
    else
      validate_remote t ~cert_id:rmc.id ~issuer:rmc.issuer ~make_request:(fun () ->
          Protocol.Validate_rmc { rmc; principal_key = session_key })
  in
  let appt_ok (appt : Appointment.t) =
    (if Ident.equal appt.issuer t.sid then verify_own_appt t appt
     else
       validate_remote t ~cert_id:appt.id ~issuer:appt.issuer ~make_request:(fun () ->
           Protocol.Validate_appt { appt }))
    && ((not t.config.challenge_appointment_holders)
       (* Prove possession of the long-lived holder key: defeats stolen
          appointment certificates (Sect. 4.1). *)
       || challenge_key t ~dst:src ~key:appt.holder)
  in
  let keep_rmcs =
    List.filter
      (fun rmc ->
        let ok = rmc_ok rmc in
        if not ok then Obs.Counter.inc t.st.validation_failures;
        ok)
      creds.rmcs
  in
  let keep_appts =
    List.filter
      (fun appt ->
        let ok = appt_ok appt in
        if not ok then Obs.Counter.inc t.st.validation_failures;
        ok)
      creds.appointments
  in
  let rmc_creds =
    List.map
      (fun (rmc : Rmc.t) ->
        { Solve.cred_id = rmc.id; issuer = rmc.issuer; cred_name = rmc.role; cred_args = rmc.args })
      keep_rmcs
  in
  let appt_creds =
    List.map
      (fun (appt : Appointment.t) ->
        {
          Solve.cred_id = appt.id;
          issuer = appt.issuer;
          cred_name = appt.kind;
          cred_args = appt.args;
        })
      keep_appts
  in
  (rmc_creds, appt_creds)

(* Candidate credentials indexed by (issuer, name): built once per request,
   then each rule condition looks up exactly its matching candidates instead
   of filtering the whole presented wallet (a rule with many conditions over
   a fat wallet was quadratic). Presentation order is preserved within a
   bucket, so proof search tries credentials in the order presented. *)
let index_creds creds =
  let key issuer name = Ident.to_string issuer ^ "\x00" ^ name in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c : Solve.cred) ->
      let k = key c.issuer c.cred_name in
      match Hashtbl.find_opt tbl k with
      | Some bucket -> bucket := c :: !bucket
      | None -> Hashtbl.replace tbl k (ref [ c ]))
    creds;
  Hashtbl.iter (fun _ bucket -> bucket := List.rev !bucket) tbl;
  fun issuer name -> match Hashtbl.find_opt tbl (key issuer name) with
    | Some bucket -> !bucket
    | None -> []

let solver_context t ~rmc_creds ~appt_creds =
  let find_rmc = index_creds rmc_creds in
  let find_appt = index_creds appt_creds in
  let resolve = function
    | None -> Some t.sid
    | Some symbolic -> World.resolve t.world symbolic
  in
  let by_issuer find service name =
    match resolve service with None -> [] | Some issuer -> find issuer name
  in
  {
    Solve.find_rmcs = (fun ~service ~name -> by_issuer find_rmc service name);
    find_appointments = (fun ~issuer ~name -> by_issuer find_appt issuer name);
    env_check = Env.check t.env;
    env_enumerate = Env.enumerate t.env;
  }

(* ------------------------------------------------------------------ *)
(* Revocation and cascading deactivation (Fig. 5)                     *)
(* ------------------------------------------------------------------ *)

let announce_invalidation t record reason =
  Broker.publish (World.broker t.world) (Cr.topic record)
    (Protocol.Invalidated { issuer = t.sid; cert_id = record.Cr.cert_id; reason })

let deactivate_rmc t (issued : issued_rmc) ~reason ~cascade =
  match Cr.revoke t.crs issued.rmc.Rmc.id ~at:(World.now t.world) ~reason with
  | None -> () (* already revoked *)
  | Some record ->
      Obs.Counter.inc t.st.revocations;
      if cascade then Obs.Counter.inc t.st.cascade_deactivations;
      if Obs.tracing t.obs then
        Obs.event t.obs "svc.revoke"
          ~labels:
            [
              ("service", t.sname);
              ("cert", Ident.to_string issued.rmc.Rmc.id);
              ("role", issued.rmc.Rmc.role);
              ("cascade", if cascade then "true" else "false");
              ("reason", reason);
            ];
      Log.debug (fun m ->
          m "%s deactivates %s (%s): %s" t.sname (Ident.to_string issued.rmc.Rmc.id)
            issued.rmc.Rmc.role reason);
      (match issued.beats with Some e -> Heartbeat.stop_emitter e | None -> ());
      List.iter (drop_watch t) issued.watches;
      issued.watches <- [];
      unindex_env_watches t issued;
      issued.env_watch <- [];
      announce_invalidation t record reason

let revoke_appt t (ia : issued_appt) ~reason =
  match Cr.revoke t.crs ia.appt.Appointment.id ~at:(World.now t.world) ~reason with
  | None -> false
  | Some record ->
      Obs.Counter.inc t.st.revocations;
      (match ia.appt_beats with Some e -> Heartbeat.stop_emitter e | None -> ());
      announce_invalidation t record reason;
      true

let revoke_certificate t cert_id ~reason =
  match Ident.Tbl.find_opt t.rmcs cert_id with
  | Some issued ->
      let was_valid = Cr.is_valid issued.record in
      deactivate_rmc t issued ~reason ~cascade:false;
      was_valid
  | None -> (
      match Ident.Tbl.find_opt t.appts cert_id with
      | Some ia -> revoke_appt t ia ~reason
      | None -> false)

let rotate_secret t = t.epoch <- t.epoch + 1

let decommission t ~reason =
  (* Withdraw every credential this service ever issued; dependents
     everywhere collapse through the usual channels. *)
  let count = ref 0 in
  Ident.Tbl.iter
    (fun _ issued ->
      if Cr.is_valid issued.record then begin
        deactivate_rmc t issued ~reason ~cascade:false;
        incr count
      end)
    t.rmcs;
  Ident.Tbl.iter
    (fun _ ia -> if revoke_appt t ia ~reason then incr count)
    t.appts;
  (* This service also holds state about *other* services' certificates:
     invalidation watches backing the validation cache. A decommissioned
     service must not keep subscriptions or heartbeat monitors alive on
     foreign event channels, nor keep serving cached verdicts. *)
  Ident.Tbl.iter (fun _ watch -> drop_watch t watch) t.cache_watched;
  Ident.Tbl.reset t.cache_watched;
  Vcache.clear t.cache;
  !count

(* ------------------------------------------------------------------ *)
(* Membership monitoring for a freshly issued RMC                     *)
(* ------------------------------------------------------------------ *)

let start_beats t record =
  match World.monitoring t.world with
  | Change_events -> None
  | Heartbeats { period; _ } ->
      Some
        (Heartbeat.start_emitter (World.broker t.world) (World.engine t.world)
           ~topic:(Cr.topic record) ~period
           ~beat:(Protocol.Beat { issuer = t.sid; cert_id = record.Cr.cert_id }))

let monitor_membership t (issued : issued_rmc) (proof : Solve.proof) =
  let membership = proof.rule.membership in
  let watch_cred (cred : Solve.cred) =
    let watch =
      watch_invalidation t ~issuer:cred.issuer ~cert_id:cred.cred_id ~on_dead:(fun why ->
          deactivate_rmc t issued ~cascade:true
            ~reason:
              (Printf.sprintf "supporting credential %s invalid: %s"
                 (Ident.to_string cred.cred_id) why))
    in
    issued.watches <- watch :: issued.watches
  in
  List.iteri
    (fun i support ->
      match support with
      | Solve.By_rmc cred ->
          (* Prerequisite RMCs are ALWAYS monitored: "active roles form
             trees of role dependencies rooted on initial roles. If a
             single initial role is deactivated ... all the active roles
             dependent on it collapse" (Sect. 4). The '*' marker governs
             the other condition kinds. *)
          watch_cred cred
      | Solve.By_appointment cred -> if List.nth membership i then watch_cred cred
      | Solve.By_env _ when not (List.nth membership i) -> ()
      | Solve.By_env (name, args) -> (
            issued.env_watch <- (name, args) :: issued.env_watch;
            index_env_watch t issued (name, args);
            (* Time-dependent constraints change truth value spontaneously:
               schedule a re-check at the earliest possible flip. One timer
               slot per constraint — re-arming replaces the pending handle
               rather than growing the watch list without bound. *)
            match Env.next_change_time t.env name args with
            | None -> ()
            | Some at ->
                let slot = ref None in
                let rec arm at =
                  slot :=
                    Some
                      (Engine.schedule_at (World.engine t.world) ~at:(at +. 1e-9) (fun () ->
                           slot := None;
                           if Cr.is_valid issued.record then
                             if not (Env.check t.env name args) then
                               deactivate_rmc t issued ~cascade:true
                                 ~reason:(Printf.sprintf "constraint %s no longer holds" name)
                             else
                               match Env.next_change_time t.env name args with
                               | Some at' -> arm at'
                               | None -> ()))
                in
                arm at;
                issued.watches <- Watch_timer slot :: issued.watches))
    proof.support

(* One env listener per service re-checks membership constraints whose
   predicate was touched by a fact change (assert or retract: negated
   conditions are falsified by assertions).

   The indexed path consults the reverse index, so the cost of a fact
   change is proportional to the RMCs actually watching the changed
   predicate. The legacy path (config.index_env_watches = false) re-scans
   every issued RMC — kept only as the benchmark ablation baseline.
   [env_rechecks] counts RMCs examined per change in both modes, which is
   what the scale tests and the E9 benchmark assert on. *)
let recheck_env_watches t issued changed_name =
  Obs.Counter.inc t.st.env_rechecks;
  if Obs.tracing t.obs then
    Obs.event t.obs "svc.recheck"
      ~labels:
        [
          ("service", t.sname);
          ("cert", Ident.to_string issued.rmc.Rmc.id);
          ("pred", changed_name);
        ];
  List.iter
    (fun (name, args) ->
      if
        String.equal (Env.base_name name) changed_name
        && Cr.is_valid issued.record
        && not (Env.check t.env name args)
      then
        deactivate_rmc t issued ~cascade:true
          ~reason:(Printf.sprintf "constraint %s no longer holds" name))
    issued.env_watch

let trace_env_change t changed_name =
  if Obs.tracing t.obs then
    Obs.event t.obs "env.change" ~labels:[ ("service", t.sname); ("pred", changed_name) ]

let install_env_listener t =
  if t.config.index_env_watches then
    Env.on_change t.env (fun changed_name _args _change ->
        trace_env_change t changed_name;
        match Hashtbl.find_opt t.env_index changed_name with
        | None -> ()
        | Some watchers ->
            (* Snapshot first: a failed re-check deactivates the RMC, which
               removes it from the very table being traversed. *)
            let snapshot = Ident.Tbl.fold (fun _ issued acc -> issued :: acc) watchers [] in
            List.iter
              (fun issued ->
                if Cr.is_valid issued.record then recheck_env_watches t issued changed_name)
              snapshot)
  else
    Env.on_change t.env (fun changed_name _args _change ->
        trace_env_change t changed_name;
        Ident.Tbl.iter
          (fun _ issued ->
            if Cr.is_valid issued.record then recheck_env_watches t issued changed_name)
          t.rmcs)

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)
(* ------------------------------------------------------------------ *)

let record_audit t ~principal ~action ~args ~support =
  let creds_used =
    List.filter_map
      (function
        | Solve.By_rmc c | Solve.By_appointment c -> Some c.Solve.cred_id
        | Solve.By_env _ -> None)
      support
  in
  t.audit <- { at = World.now t.world; principal; action; args; creds_used } :: t.audit

let seed_from_requested (rule : Rule.activation) requested =
  (* Positional unification of the requested parameter pins. *)
  if requested = [] then Some Term.Subst.empty
  else if List.length requested <> List.length rule.params then None
  else
    List.fold_left2
      (fun acc param pin ->
        match (acc, pin) with
        | None, _ -> None
        | Some subst, None -> Some subst
        | Some subst, Some value -> Term.unify subst param value)
      (Some Term.Subst.empty) rule.params requested

let handle_activate t ~src ~principal ~session_key ~role ~requested ~creds =
  match Hashtbl.find_opt t.activations role with
  | None ->
      Obs.Counter.inc t.st.activations_denied;
      Protocol.Denied (Protocol.Unknown_role role)
  | Some rules ->
      let rmc_creds, appt_creds = validate_presented t ~src ~session_key creds in
      let ctx = solver_context t ~rmc_creds ~appt_creds in
      let challenge_ok =
        (not t.config.challenge_on_activation) || challenge_key t ~dst:src ~key:session_key
      in
      if not challenge_ok then begin
        Obs.Counter.inc t.st.activations_denied;
        Protocol.Denied Protocol.Challenge_failed
      end
      else
        let proof =
          (* A rule that proves but leaves a head parameter unbound, one
             naming an unknown predicate, or one negating a non-ground
             constraint is a policy configuration error: refuse the request
             and log, never crash the service. *)
          try
            Ok
              (Seq.find_map
                 (fun rule ->
                   match seed_from_requested rule requested with
                   | None -> None
                   | Some seed -> Solve.activation ~obs:t.obs ctx rule ~seed ())
                 (Queue.to_seq rules))
          with
          | Oasis_policy.Solve.Unbound_head (r, v) ->
              Error (Printf.sprintf "policy error: unbound head parameter %s in role %s" v r)
          | Oasis_policy.Solve.Nonground_negation p ->
              Error (Printf.sprintf "policy error: non-ground negated constraint %s" p)
          | Env.Unknown_predicate p ->
              Error (Printf.sprintf "policy error: unknown predicate %s" p)
        in
        match proof with
        | Error message ->
            Obs.Counter.inc t.st.activations_denied;
            Log.err (fun m -> m "%s: %s" t.sname message);
            Protocol.Denied (Protocol.Bad_request message)
        | Ok None ->
            Obs.Counter.inc t.st.activations_denied;
            Protocol.Denied Protocol.No_proof
        | Ok (Some proof) ->
            let cert_id = World.fresh_cert_id t.world in
            let now = World.now t.world in
            let rmc =
              Rmc.issue ~secret:t.secret ~principal_key:session_key ~id:cert_id ~issuer:t.sid
                ~role ~args:proof.role_args ~issued_at:now
            in
            let record =
              Cr.add t.crs ~cert_id ~issuer:t.sid ~kind:Cr.Kind_rmc ~principal ~name:role
                ~args:proof.role_args ~issued_at:now
            in
            let issued =
              {
                rmc;
                record;
                initial = proof.rule.initial;
                session_key;
                ir_principal = principal;
                watches = [];
                env_watch = [];
                beats = start_beats t record;
              }
            in
            Ident.Tbl.replace t.rmcs cert_id issued;
            monitor_membership t issued proof;
            record_audit t ~principal ~action:("activate:" ^ role) ~args:proof.role_args
              ~support:proof.support;
            Obs.Counter.inc t.st.activations_granted;
            Log.debug (fun m ->
                m "%s grants %s(%s) to %a" t.sname role
                  (String.concat ", " (List.map Value.to_string proof.role_args))
                  Ident.pp principal);
            Protocol.Activate_ok { rmc; initial = proof.rule.initial }

(* Authorization search with the same policy-error containment. *)
let solve_privilege ~obs ctx rules args =
  try
    Ok
      (Seq.find_map
         (fun (rule : Rule.authorization) ->
           if List.length rule.priv_args <> List.length args then None
           else
             match
               List.fold_left2
                 (fun acc param value ->
                   match acc with None -> None | Some s -> Term.unify s param value)
                 (Some Term.Subst.empty) rule.priv_args args
             with
             | None -> None
             | Some seed -> Solve.authorization ~obs ctx rule ~seed ())
         (Queue.to_seq rules))
  with
  | Env.Unknown_predicate p -> Error (Printf.sprintf "policy error: unknown predicate %s" p)
  | Oasis_policy.Solve.Nonground_negation p ->
      Error (Printf.sprintf "policy error: non-ground negated constraint %s" p)

let handle_invoke t ~src ~principal ~session_key ~privilege ~args ~creds =
  match Hashtbl.find_opt t.authorizations privilege with
  | None ->
      Obs.Counter.inc t.st.invocations_denied;
      Protocol.Denied (Protocol.Unknown_privilege privilege)
  | Some rules ->
      let rmc_creds, appt_creds = validate_presented t ~src ~session_key creds in
      let ctx = solver_context t ~rmc_creds ~appt_creds in
      let challenge_ok =
        (not t.config.challenge_on_invocation) || challenge_key t ~dst:src ~key:session_key
      in
      if not challenge_ok then begin
        Obs.Counter.inc t.st.invocations_denied;
        Protocol.Denied Protocol.Challenge_failed
      end
      else
        match solve_privilege ~obs:t.obs ctx rules args with
        | Error message ->
            Obs.Counter.inc t.st.invocations_denied;
            Log.err (fun m -> m "%s: %s" t.sname message);
            Protocol.Denied (Protocol.Bad_request message)
        | Ok None ->
            Obs.Counter.inc t.st.invocations_denied;
            Protocol.Denied Protocol.No_proof
        | Ok (Some (_subst, support)) ->
            record_audit t ~principal ~action:privilege ~args ~support;
            Obs.Counter.inc t.st.invocations_granted;
            let result =
              match Hashtbl.find_opt t.operations privilege with
              | Some operation -> operation ~principal args
              | None -> None
            in
            Protocol.Invoke_ok result

let handle_appoint t ~src ~principal ~session_key ~kind ~args ~holder ~holder_key ~expires_at
    ~creds =
  match Hashtbl.find_opt t.appointers kind with
  | None ->
      Obs.Counter.inc t.st.appointments_denied;
      Protocol.Denied (Protocol.Unknown_privilege ("appoint:" ^ kind))
  | Some rules ->
      let rmc_creds, appt_creds = validate_presented t ~src ~session_key creds in
      let ctx = solver_context t ~rmc_creds ~appt_creds in
      let challenge_ok =
        (not t.config.challenge_on_invocation) || challenge_key t ~dst:src ~key:session_key
      in
      if not challenge_ok then begin
        Obs.Counter.inc t.st.appointments_denied;
        Protocol.Denied Protocol.Challenge_failed
      end
      else
        match solve_privilege ~obs:t.obs ctx rules args with
        | Error message ->
            Obs.Counter.inc t.st.appointments_denied;
            Log.err (fun m -> m "%s: %s" t.sname message);
            Protocol.Denied (Protocol.Bad_request message)
        | Ok None ->
            Obs.Counter.inc t.st.appointments_denied;
            Protocol.Denied Protocol.No_proof
        | Ok (Some (_subst, support)) ->
            let cert_id = World.fresh_cert_id t.world in
            let now = World.now t.world in
            let appt =
              Appointment.issue ~master_secret:t.secret ~epoch:t.epoch ~id:cert_id
                ~issuer:t.sid ~kind ~args ~holder:holder_key ~issued_at:now ?expires_at ()
            in
            let record =
              Cr.add t.crs ~cert_id ~issuer:t.sid ~kind:Cr.Kind_appointment ~principal:holder
                ~name:kind ~args ~issued_at:now
            in
            let ia = { appt; appt_record = record; appt_beats = start_beats t record } in
            Ident.Tbl.replace t.appts cert_id ia;
            (* The issuer announces expiry on the event channel so dependent
               roles collapse at the deadline, not at next validation. *)
            (match expires_at with
            | Some at when at > now ->
                ignore
                  (Engine.schedule_at (World.engine t.world) ~at (fun () ->
                       ignore (revoke_appt t ia ~reason:"expired")))
            | Some _ | None -> ());
            record_audit t ~principal ~action:("appoint:" ^ kind) ~args ~support;
            Obs.Counter.inc t.st.appointments_granted;
            Protocol.Appoint_ok appt

let handle_deactivate t ~cert_id ~session_key =
  match Ident.Tbl.find_opt t.rmcs cert_id with
  | Some issued when String.equal issued.session_key session_key ->
      deactivate_rmc t issued ~reason:"deactivated by principal" ~cascade:false;
      Protocol.Deactivate_ok
  | Some _ -> Protocol.Denied (Protocol.Bad_credential cert_id)
  | None -> Protocol.Denied (Protocol.Bad_credential cert_id)

let handle_validate_rmc t ~rmc ~principal_key =
  Obs.Counter.inc t.st.callbacks_in;
  Protocol.Validate_result (verify_own_rmc t ~principal_key rmc)

let handle_validate_appt t ~appt =
  Obs.Counter.inc t.st.callbacks_in;
  Protocol.Validate_result (verify_own_appt t appt)

let handle_rpc t ~src msg =
  match msg with
  | Protocol.Activate { principal; session_key; role; requested; creds } ->
      handle_activate t ~src ~principal ~session_key ~role ~requested ~creds
  | Protocol.Invoke { principal; session_key; privilege; args; creds } ->
      handle_invoke t ~src ~principal ~session_key ~privilege ~args ~creds
  | Protocol.Appoint { principal; session_key; kind; args; holder; holder_key; expires_at; creds }
    ->
      handle_appoint t ~src ~principal ~session_key ~kind ~args ~holder ~holder_key ~expires_at
        ~creds
  | Protocol.Deactivate { cert_id; session_key } -> handle_deactivate t ~cert_id ~session_key
  | Protocol.Validate_rmc { rmc; principal_key } -> handle_validate_rmc t ~rmc ~principal_key
  | Protocol.Validate_appt { appt } -> handle_validate_appt t ~appt
  | Protocol.Env_check { pred; args } ->
      (* Answer remote environmental lookups against our database (Sect. 2:
         "database lookup at some service"). Unknown predicates answer
         [false] to the remote — our own policy errors stay local. *)
      Protocol.Env_result (match Env.check t.env pred args with ok -> ok | exception Env.Unknown_predicate _ -> false)
  | Protocol.Activate_ok _ | Protocol.Invoke_ok _ | Protocol.Appoint_ok _
  | Protocol.Deactivate_ok | Protocol.Validate_result _ | Protocol.Challenge_msg _
  | Protocol.Challenge_response _ | Protocol.Env_result _ | Protocol.Denied _ ->
      Protocol.Denied (Protocol.Bad_request "not a request")

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

exception Policy_rejected of Lint.finding list

let install_policy t statements =
  if t.config.strict_install then begin
    (* Lint the batch as a single open world: cross-service references and
       world-level resolution are a deployment concern (oasisctl lint);
       what must never reach the rule tables are the findings that can
       only ever fail at request time (Lint.install_blocking). *)
    let blocking =
      Lint.check ~closed:false [ Lint.of_statements ~name:t.sname statements ]
      |> List.filter Lint.install_blocking
    in
    if blocking <> [] then raise (Policy_rejected blocking)
  end;
  List.iter
    (function
      | Parser.Activation rule -> add_activation_rule t rule
      | Parser.Authorization rule -> add_authorization_rule t rule
      | Parser.Appointer rule -> set_appointer t ~kind:rule.Rule.privilege ~rule)
    statements

let create world ~name ?(config = default_config) ?env ~policy () =
  let sid = World.fresh_service_id world in
  let env =
    match env with Some e -> e | None -> Env.create (Engine.clock (World.engine world))
  in
  let obs = World.obs world in
  let labels = [ ("service", name) ] in
  let counter cname = Obs.counter obs cname ~labels in
  let t =
    {
      world;
      sid;
      sname = name;
      obs;
      config;
      env;
      secret = Secret.generate (World.rng world);
      epoch = 0;
      activations = Hashtbl.create 16;
      authorizations = Hashtbl.create 16;
      appointers = Hashtbl.create 8;
      operations = Hashtbl.create 8;
      crs = Cr.create_store ();
      rmcs = Ident.Tbl.create 64;
      env_index = Hashtbl.create 16;
      appts = Ident.Tbl.create 64;
      cache = Vcache.create ~obs ~labels ();
      cache_watched = Ident.Tbl.create 64;
      st =
        {
          activations_granted = counter "service.activations_granted";
          activations_denied = counter "service.activations_denied";
          invocations_granted = counter "service.invocations_granted";
          invocations_denied = counter "service.invocations_denied";
          appointments_granted = counter "service.appointments_granted";
          appointments_denied = counter "service.appointments_denied";
          callbacks_in = counter "service.callbacks_in";
          callbacks_out = counter "service.callbacks_out";
          validation_failures = counter "service.validation_failures";
          revocations = counter "service.revocations";
          cascade_deactivations = counter "service.cascade_deactivations";
          env_rechecks = counter "service.env_rechecks";
        };
      audit = [];
    }
  in
  install_policy t (Parser.parse_exn policy);
  install_env_listener t;
  World.register_service world ~name sid;
  Oasis_sim.Network.add_node (World.network world) sid
    {
      on_oneway = (fun ~src:_ _msg -> ());
      on_rpc = (fun ~src msg -> handle_rpc t ~src msg);
    };
  t

(* Registers [local_name] as a computed predicate answered by [at]'s
   environment over the network. Must be evaluated from within a simulated
   process (true during request handling). A network failure counts as
   "does not hold". *)
let register_remote_predicate t ~local_name ~at ~remote_name =
  Env.register t.env local_name (fun args ->
      match
        Network.rpc (World.network t.world) ~src:t.sid ~dst:at
          (Protocol.Env_check { pred = remote_name; args })
      with
      | Protocol.Env_result ok -> ok
      | _ -> false
      | exception Network.Rpc_dropped -> false)

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

let is_valid_certificate t cert_id =
  match Cr.find t.crs cert_id with Some record -> Cr.is_valid record | None -> false

let active_roles t =
  Ident.Tbl.fold
    (fun cert_id issued acc ->
      if Cr.is_valid issued.record then
        (cert_id, issued.rmc.Rmc.role, issued.rmc.Rmc.args, issued.ir_principal) :: acc
      else acc)
    t.rmcs []

let active_roles_named t role =
  List.filter_map
    (fun (record : Cr.t) ->
      if record.Cr.kind = Cr.Kind_rmc && Cr.is_valid record then
        Some (record.Cr.cert_id, record.Cr.args, record.Cr.principal)
      else None)
    (Cr.find_named t.crs ~issuer:t.sid ~name:role)

let env_watcher_count t predicate =
  match Hashtbl.find_opt t.env_index (Env.base_name predicate) with
  | Some watchers -> Ident.Tbl.length watchers
  | None -> 0

let roles_defined t = Hashtbl.fold (fun role _ acc -> role :: acc) t.activations [] |> List.sort compare

let privileges_defined t =
  Hashtbl.fold (fun privilege _ acc -> privilege :: acc) t.authorizations [] |> List.sort compare

let audit_log t = t.audit

let stats t =
  {
    activations_granted = Obs.Counter.value t.st.activations_granted;
    activations_denied = Obs.Counter.value t.st.activations_denied;
    invocations_granted = Obs.Counter.value t.st.invocations_granted;
    invocations_denied = Obs.Counter.value t.st.invocations_denied;
    appointments_granted = Obs.Counter.value t.st.appointments_granted;
    appointments_denied = Obs.Counter.value t.st.appointments_denied;
    callbacks_in = Obs.Counter.value t.st.callbacks_in;
    callbacks_out = Obs.Counter.value t.st.callbacks_out;
    validation_failures = Obs.Counter.value t.st.validation_failures;
    revocations = Obs.Counter.value t.st.revocations;
    cascade_deactivations = Obs.Counter.value t.st.cascade_deactivations;
    env_rechecks = Obs.Counter.value t.st.env_rechecks;
    cache = Vcache.stats t.cache;
  }

let reset_stats t =
  Obs.Counter.reset t.st.activations_granted;
  Obs.Counter.reset t.st.activations_denied;
  Obs.Counter.reset t.st.invocations_granted;
  Obs.Counter.reset t.st.invocations_denied;
  Obs.Counter.reset t.st.appointments_granted;
  Obs.Counter.reset t.st.appointments_denied;
  Obs.Counter.reset t.st.callbacks_in;
  Obs.Counter.reset t.st.callbacks_out;
  Obs.Counter.reset t.st.validation_failures;
  Obs.Counter.reset t.st.revocations;
  Obs.Counter.reset t.st.cascade_deactivations;
  Obs.Counter.reset t.st.env_rechecks;
  Vcache.reset_stats t.cache
