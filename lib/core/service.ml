module Ident = Oasis_util.Ident
module Value = Oasis_util.Value
module Rng = Oasis_util.Rng
module Backoff = Oasis_util.Backoff
module Proc = Oasis_sim.Proc
module Engine = Oasis_sim.Engine
module Network = Oasis_sim.Network
module Broker = Oasis_event.Broker
module Heartbeat = Oasis_event.Heartbeat
module Env = Oasis_policy.Env
module Rule = Oasis_policy.Rule
module Term = Oasis_policy.Term
module Solve = Oasis_policy.Solve
module Parser = Oasis_policy.Parser
module Lint = Oasis_policy.Lint
module Rmc = Oasis_cert.Rmc
module Appointment = Oasis_cert.Appointment
module Cr = Oasis_cert.Credential_record
module Vcache = Oasis_cert.Validation_cache
module Secret = Oasis_crypto.Secret
module Elgamal = Oasis_crypto.Elgamal
module Schnorr = Oasis_crypto.Schnorr
module Signed = Oasis_cert.Signed
module Challenge = Oasis_crypto.Challenge
module Obs = Oasis_obs.Obs
module Dlog = Oasis_trust.Decision_log

let log = Logs.Src.create "oasis.service" ~doc:"OASIS service events"

module Log = (val Logs.src_log log)

type config = {
  challenge_on_activation : bool;
  challenge_on_invocation : bool;
  challenge_appointment_holders : bool;
  cache_remote_validation : bool;
  retry : Backoff.policy;
  suspect_grace : float;
  reconcile_batch : int;
  fail_open : bool;
  index_env_watches : bool;
  strict_install : bool;
  offline_verify : bool;
  fail_open_chain : bool;
}

let default_config =
  {
    challenge_on_activation = false;
    challenge_on_invocation = false;
    challenge_appointment_holders = false;
    cache_remote_validation = true;
    (* Three immediate attempts: byte-for-byte the historical fixed-count
       retry. Fault-tolerant deployments swap in a jittered policy. *)
    retry = Backoff.fixed 3;
    suspect_grace = 0.0;
    reconcile_batch = 8;
    fail_open = false;
    index_env_watches = true;
    strict_install = true;
    offline_verify = true;
    (* Restart refuses to build on a durable decision-log chain that fails
       verification; [true] is the ablation that resumes blindly. *)
    fail_open_chain = false;
  }

type audit_entry = {
  at : float;
  principal : Ident.t;
  action : string;
  args : Value.t list;
  creds_used : Ident.t list;
}

(* Watch state for one remote credential supporting an active role or a
   cached validation verdict. *)
type watch =
  | Watch_event of Broker.subscription
  | Watch_beat of Heartbeat.monitor
  | Watch_timer of Engine.cancel option ref
      (* the slot holds the currently armed re-check timer; re-arming
         replaces the handle instead of accumulating dead ones *)

(* A remote (or local prerequisite) credential supporting an active role.
   Durable: survives crash (unlike the live watch), so restart can rebuild
   monitors and reconciliation knows what to re-validate. *)
type dep = {
  dep_issuer : Ident.t;
  dep_cert : Ident.t;
  mutable dep_watch : watch option;  (* None while silent/crashed *)
}

(* Per-role suspect state (DESIGN.md §11): the failure detector fired but
   revocation is not yet confirmed. Resolved by reconciliation (reinstate or
   revoke) or by the grace timer (fail-closed degradation). *)
type suspect_state = { mutable sus_timer : Engine.cancel option }

(* An RMC this service has issued, with its active-security state. *)
type issued_rmc = {
  rmc : Rmc.t;
  record : Cr.t;
  initial : bool;
  session_key : string;
  ir_principal : Ident.t;
  mutable deps : dep list;
  mutable watches : watch list;  (* env re-check timers *)
  mutable env_watch : (string * Value.t list) list;
      (* ground membership env constraints; first component may carry '!' *)
  mutable beats : Heartbeat.emitter option;
  mutable suspect : suspect_state option;
  mutable reconciling : bool;  (* queued or running in the reconciler *)
}

type issued_appt = {
  appt : Appointment.t;
  appt_record : Cr.t;
  mutable appt_beats : Heartbeat.emitter option;
}

(* Per-service counters in the world's registry, labelled
   [service=<name>] — e.g. [service.env_rechecks{service=hospital}]. The
   public [stats] record below is a view over them. *)
type counters = {
  activations_granted : Obs.Counter.t;
  activations_denied : Obs.Counter.t;
  invocations_granted : Obs.Counter.t;
  invocations_denied : Obs.Counter.t;
  appointments_granted : Obs.Counter.t;
  appointments_denied : Obs.Counter.t;
  callbacks_in : Obs.Counter.t;
  callbacks_out : Obs.Counter.t;
  offline_validations : Obs.Counter.t;
  validation_failures : Obs.Counter.t;
  revocations : Obs.Counter.t;
  cascade_deactivations : Obs.Counter.t;
  env_rechecks : Obs.Counter.t;
  suspects : Obs.Counter.t;
  reconciled_reinstated : Obs.Counter.t;
  reconciled_revoked : Obs.Counter.t;
  retries_validate : Obs.Counter.t;
  retries_reconcile : Obs.Counter.t;
  flaps_suppressed : Obs.Counter.t;
}

type stats = {
  activations_granted : int;
  activations_denied : int;
  invocations_granted : int;
  invocations_denied : int;
  appointments_granted : int;
  appointments_denied : int;
  callbacks_in : int;
  callbacks_out : int;
  offline_validations : int;
  validation_failures : int;
  revocations : int;
  cascade_deactivations : int;
  env_rechecks : int;
  suspects : int;
  reconciled_reinstated : int;
  reconciled_revoked : int;
  flaps_suppressed : int;
  cache : Vcache.stats;
}

type t = {
  world : World.t;
  sid : Ident.t;
  sname : string;
  obs : Obs.t;
  config : config;
  env : Env.t;
  secret : Secret.t;
  signing : Schnorr.keypair option;  (* present iff offline_verify: this key is enrolled with the domain root *)
  root_address : string;
  mutable epoch : int;
  activations : (string, Rule.activation Queue.t) Hashtbl.t;
  authorizations : (string, Rule.authorization Queue.t) Hashtbl.t;
  appointers : (string, Rule.authorization Queue.t) Hashtbl.t;
  operations : (string, principal:Ident.t -> Value.t list -> Value.t option) Hashtbl.t;
  crs : Cr.store;
  rmcs : issued_rmc Ident.Tbl.t;
  env_index : (string, issued_rmc Ident.Tbl.t) Hashtbl.t;
      (* predicate base name -> issued RMCs whose membership rule watches it *)
  watchers_by_issuer : issued_rmc Ident.Tbl.t Ident.Tbl.t;
      (* remote issuer -> issued RMCs holding a dependency on that issuer;
         an issuer-unreachable sweep touches only its watchers, never the
         whole RMC table *)
  appts : issued_appt Ident.Tbl.t;
  cache : Vcache.t;
  cache_watched : watch Ident.Tbl.t;  (* remote cert id -> invalidation watch *)
  st : counters;
  mutable dlog : Dlog.t; (* replaced by the durable-resume on restart *)
  mutable audit : audit_entry list;
  mutable crashed : bool;
  (* Reconciliation scheduler: at most [config.reconcile_batch] suspect
     roles re-validate concurrently; the rest queue. *)
  mutable recon_running : int;
  recon_queue : issued_rmc Queue.t;
}

let id t = t.sid
let service_name t = t.sname
let env t = t.env
let world t = t.world
let current_epoch t = t.epoch

(* ------------------------------------------------------------------ *)
(* Policy installation                                                *)
(* ------------------------------------------------------------------ *)

(* Appends in O(1) while preserving installation order: a rule installed
   first is tried first, and bulk policy installation stays linear in the
   number of rules per role. *)
let multi_add table key v =
  match Hashtbl.find_opt table key with
  | Some q -> Queue.push v q
  | None ->
      let q = Queue.create () in
      Queue.push v q;
      Hashtbl.replace table key q

let add_activation_rule t (rule : Rule.activation) = multi_add t.activations rule.role rule

let add_authorization_rule t (rule : Rule.authorization) =
  multi_add t.authorizations rule.privilege rule

let set_appointer t ~kind ~rule = multi_add t.appointers kind rule

let register_operation t privilege handler = Hashtbl.replace t.operations privilege handler

(* ------------------------------------------------------------------ *)
(* Credential validation                                              *)
(* ------------------------------------------------------------------ *)

(* Own certificates verify under whichever scheme this service issues:
   packed Schnorr signatures when enrolled with the domain root, epoch-HMAC
   otherwise. Either way the credential record store has the last word —
   a perfectly signed but revoked certificate is dead. *)
let verify_own_rmc t ~principal_key (rmc : Rmc.t) =
  (match t.signing with
  | Some kp -> (
      match Schnorr.of_digest rmc.signature with
      | Some sg -> Schnorr.verify ~public:kp.Schnorr.public (Rmc.signing_bytes ~principal_key rmc) sg
      | None -> false)
  | None -> Rmc.verify ~secret:t.secret ~principal_key rmc)
  && (match Cr.find t.crs rmc.id with Some record -> Cr.is_valid record | None -> false)

let verify_own_appt t (appt : Appointment.t) =
  let now = World.now t.world in
  (match t.signing with
  | Some kp ->
      appt.epoch = t.epoch
      && (not (Appointment.expired ~now appt))
      && (match Schnorr.of_digest appt.signature with
         | Some sg -> Schnorr.verify ~public:kp.Schnorr.public (Appointment.signing_bytes appt) sg
         | None -> false)
  | None -> Appointment.verify ~master_secret:t.secret ~current_epoch:t.epoch ~now appt)
  && (match Cr.find t.crs appt.id with Some record -> Cr.is_valid record | None -> false)

(* Starts an invalidation watch for a remote certificate, used both for
   membership monitoring and for cache invalidation. [on_dead] learns how
   the credential died: [`Revoked reason] is definitive (the issuer said
   so); [`Silence] is a failure-detector verdict (heartbeats stopped) — the
   issuer may be partitioned away, not revoking (DESIGN.md §11). *)
let watch_invalidation t ~issuer ~cert_id ~on_dead =
  let topic = Cr.topic_of ~issuer ~cert_id in
  match World.monitoring t.world with
  | Change_events ->
      let sub =
        (* Legacy validation RPCs precede every watch, so the watched
           certificate is known live and no tombstone can exist. The offline
           path installs watches without asking the issuer and must pick up
           a retained Invalidated published before it subscribed. *)
        Broker.subscribe ~replay_retained:t.config.offline_verify (World.broker t.world) topic
          ~owner:t.sid (fun _topic event ->
            match event with
            | Protocol.Invalidated { reason; _ } -> on_dead (`Revoked reason)
            | Protocol.Beat _ | Protocol.Replicated _ -> ())
      in
      Watch_event sub
  | Heartbeats { deadline; _ } ->
      let monitor =
        Heartbeat.watch
          ~accept:(function Protocol.Beat _ -> true | _ -> false)
          ~owner:t.sid (World.broker t.world) (World.engine t.world) ~topic ~deadline
          ~on_miss:(fun () -> on_dead `Silence)
      in
      Watch_beat monitor

let drop_watch t = function
  | Watch_event sub -> Broker.unsubscribe (World.broker t.world) sub
  | Watch_beat monitor -> Heartbeat.cancel_watch monitor
  | Watch_timer slot -> (
      match !slot with
      | Some cancel ->
          Engine.cancel (World.engine t.world) cancel;
          slot := None
      | None -> ())

(* ------------------------------------------------------------------ *)
(* The env reverse index (predicate base name -> watching RMCs)       *)
(* ------------------------------------------------------------------ *)

(* A fact change must touch only the RMCs whose membership rule mentions
   the changed predicate, not every RMC the service ever issued; the index
   is maintained on issue and deactivation. *)
let index_env_watch t issued (name, _args) =
  let base = Env.base_name name in
  let watchers =
    match Hashtbl.find_opt t.env_index base with
    | Some w -> w
    | None ->
        let w = Ident.Tbl.create 8 in
        Hashtbl.replace t.env_index base w;
        w
  in
  Ident.Tbl.replace watchers issued.rmc.Rmc.id issued

let unindex_env_watches t issued =
  List.iter
    (fun (name, _args) ->
      let base = Env.base_name name in
      match Hashtbl.find_opt t.env_index base with
      | None -> ()
      | Some watchers ->
          Ident.Tbl.remove watchers issued.rmc.Rmc.id;
          if Ident.Tbl.length watchers = 0 then Hashtbl.remove t.env_index base)
    issued.env_watch

(* ------------------------------------------------------------------ *)
(* The dependency reverse index (remote issuer -> watching RMCs)      *)
(* ------------------------------------------------------------------ *)

(* Mirror of the durable [issued.deps] lists, maintained on dependency
   creation and role deactivation: an unreachable-issuer verdict must cost
   the roles actually depending on that issuer, not a scan of every RMC the
   service ever issued. Own-issuer dependencies are never indexed — local
   state cannot be unreachable. *)
let index_dep t issued dep =
  if not (Ident.equal dep.dep_issuer t.sid) then begin
    let bucket =
      match Ident.Tbl.find_opt t.watchers_by_issuer dep.dep_issuer with
      | Some b -> b
      | None ->
          let b = Ident.Tbl.create 8 in
          Ident.Tbl.replace t.watchers_by_issuer dep.dep_issuer b;
          b
    in
    Ident.Tbl.replace bucket issued.rmc.Rmc.id issued
  end

let unindex_deps t issued =
  List.iter
    (fun dep ->
      if not (Ident.equal dep.dep_issuer t.sid) then
        match Ident.Tbl.find_opt t.watchers_by_issuer dep.dep_issuer with
        | None -> ()
        | Some bucket ->
            Ident.Tbl.remove bucket issued.rmc.Rmc.id;
            if Ident.Tbl.length bucket = 0 then
              Ident.Tbl.remove t.watchers_by_issuer dep.dep_issuer)
    issued.deps

(* ------------------------------------------------------------------ *)
(* Revocation and cascading deactivation (Fig. 5)                     *)
(* ------------------------------------------------------------------ *)

let announce_invalidation t record reason =
  (* Retained: a revocation is true forever, and offline verification needs
     late dependency watches to find the tombstone on the channel. *)
  Broker.publish ~src:t.sid ~retain:true (World.broker t.world) (Cr.topic record)
    (Protocol.Invalidated { issuer = t.sid; cert_id = record.Cr.cert_id; reason })

let cancel_suspect t issued =
  match issued.suspect with
  | None -> ()
  | Some s ->
      (match s.sus_timer with
      | Some c ->
          Engine.cancel (World.engine t.world) c;
          s.sus_timer <- None
      | None -> ());
      issued.suspect <- None

(* The decision-log chain is mirrored into the world's durable store under
   this key: the header once at creation, then one export line per
   appended record (incremental — the write cost per decision is that
   line, never the chain). Restart resumes from the blob; see
   [resume_chain]. *)
let chain_key t = "dlog:" ^ Ident.to_string t.sid

(* Every access-control decision lands in the hash-chained per-service
   decision log with its provenance, plus the audit.records counter. The
   trace_seq snapshot correlates the record with the obs event emitted just
   before it (0 while tracing is off). *)
let log_decision t ~decision ~principal ~action ?(args = []) ?(rule = "") ?(creds = [])
    ?(env_facts = []) () =
  Obs.Counter.inc
    (Obs.counter t.obs "audit.records"
       ~labels:[ ("service", t.sname); ("decision", Dlog.decision_label decision) ]);
  let r =
    Dlog.append t.dlog ~at:(World.now t.world) ~decision ~principal ~action ~args ~rule ~creds
      ~env_facts ~trace_seq:(Obs.last_seq t.obs) ()
  in
  Durable.append (World.durable t.world) (chain_key t) (Dlog.export_line r)

let render_env_fact (name, args) =
  if args = [] then name
  else Printf.sprintf "%s(%s)" name (String.concat ", " (List.map Value.to_string args))

let support_env_facts support =
  List.filter_map
    (function
      | Solve.By_env (name, args) -> Some (render_env_fact (name, args))
      | Solve.By_rmc _ | Solve.By_appointment _ -> None)
    support

let support_creds support =
  List.filter_map
    (function
      | Solve.By_rmc (c : Solve.cred) | Solve.By_appointment c -> Some c.Solve.cred_id
      | Solve.By_env _ -> None)
    support

let deactivate_rmc t (issued : issued_rmc) ~reason ~cascade =
  match Cr.revoke t.crs issued.rmc.Rmc.id ~at:(World.now t.world) ~reason with
  | None -> () (* already revoked *)
  | Some record ->
      Obs.Counter.inc t.st.revocations;
      if cascade then Obs.Counter.inc t.st.cascade_deactivations;
      if Obs.tracing t.obs then
        Obs.event t.obs "svc.revoke"
          ~labels:
            [
              ("service", t.sname);
              ("cert", Ident.to_string issued.rmc.Rmc.id);
              ("role", issued.rmc.Rmc.role);
              ("cascade", if cascade then "true" else "false");
              ("reason", reason);
            ];
      Log.debug (fun m ->
          m "%s deactivates %s (%s): %s" t.sname (Ident.to_string issued.rmc.Rmc.id)
            issued.rmc.Rmc.role reason);
      log_decision t ~decision:Dlog.Revoke ~principal:issued.ir_principal
        ~action:("revoke:" ^ issued.rmc.Rmc.role) ~args:issued.rmc.Rmc.args ~rule:reason
        ~creds:[ issued.rmc.Rmc.id ]
        ~env_facts:(List.map render_env_fact issued.env_watch)
        ();
      (match issued.beats with Some e -> Heartbeat.stop_emitter e | None -> ());
      issued.beats <- None;
      cancel_suspect t issued;
      List.iter
        (fun dep ->
          match dep.dep_watch with
          | Some w ->
              dep.dep_watch <- None;
              drop_watch t w
          | None -> ())
        issued.deps;
      List.iter (drop_watch t) issued.watches;
      issued.watches <- [];
      unindex_env_watches t issued;
      issued.env_watch <- [];
      unindex_deps t issued;
      announce_invalidation t record reason

(* ------------------------------------------------------------------ *)
(* Suspect state and anti-entropy reconciliation (DESIGN.md §11)      *)
(* ------------------------------------------------------------------ *)

let dep_locally_valid t dep =
  match Cr.find t.crs dep.dep_cert with Some r -> Cr.is_valid r | None -> false

(* How long a reconciler waits between rounds while the issuer stays
   unreachable. The backoff cap, so a heal is noticed within one cap —
   configure cap < suspect_grace and suspects resolve inside the grace
   window of heal (the chaos invariant). *)
let poll_interval t =
  let cap = t.config.retry.Backoff.cap in
  if cap > 0.0 then cap else 0.05

let trace_role t what (issued : issued_rmc) extra =
  if Obs.tracing t.obs then
    Obs.event t.obs what
      ~labels:
        ([
           ("service", t.sname);
           ("cert", Ident.to_string issued.rmc.Rmc.id);
           ("role", issued.rmc.Rmc.role);
         ]
        @ extra)

(* The mutually recursive core: a watch going silent enters suspect state,
   suspect roles enqueue for reconciliation, reconciliation re-creates
   watches on reinstatement. *)
let rec watch_dep t issued dep =
  let watch =
    watch_invalidation t ~issuer:dep.dep_issuer ~cert_id:dep.dep_cert ~on_dead:(function
      | `Revoked why ->
          (* Offline verification has no issuer round trip at presentation
             time, so a definitive revocation learnt here must be remembered
             locally: the poisoned cache entry makes a re-presented revoked
             certificate fail the offline check. Gated on the flag so the
             legacy path's cache statistics are untouched. *)
          if t.config.offline_verify then Vcache.invalidate t.cache dep.dep_cert;
          deactivate_rmc t issued ~cascade:true
            ~reason:
              (Printf.sprintf "supporting credential %s invalid: %s"
                 (Ident.to_string dep.dep_cert) why)
      | `Silence ->
          (* The monitor is dead after a miss; retire the handle so
             reinstatement knows to rebuild it. *)
          (match dep.dep_watch with
          | Some w ->
              dep.dep_watch <- None;
              drop_watch t w
          | None -> ());
          note_silence t issued dep)
  in
  dep.dep_watch <- Some watch

and note_silence t issued dep =
  if t.crashed then ()
  else if t.config.suspect_grace <= 0.0 || Ident.equal dep.dep_issuer t.sid then
    (* Legacy fail-closed-immediately behaviour: silence is revocation.
       Own-issuer credentials never go suspect — local state is always
       reachable, so silence on a local channel is authoritative. *)
    deactivate_rmc t issued ~cascade:true
      ~reason:
        (Printf.sprintf "supporting credential %s invalid: heartbeat missed"
           (Ident.to_string dep.dep_cert))
  else
    enter_suspect t issued
      ~why:(Printf.sprintf "heartbeat missed for %s" (Ident.to_string dep.dep_cert))

and enter_suspect t issued ~why =
  if (not t.crashed) && Option.is_none issued.suspect && Cr.is_valid issued.record then begin
    Obs.Counter.inc t.st.suspects;
    trace_role t "svc.suspect" issued [ ("why", why) ];
    log_decision t ~decision:Dlog.Suspect ~principal:issued.ir_principal
      ~action:("suspect:" ^ issued.rmc.Rmc.role) ~args:issued.rmc.Rmc.args ~rule:why
      ~creds:[ issued.rmc.Rmc.id ] ();
    let s = { sus_timer = None } in
    issued.suspect <- Some s;
    let at = World.now t.world +. Float.max 0.0 t.config.suspect_grace in
    s.sus_timer <-
      Some
        (Engine.schedule_at (World.engine t.world) ~at (fun () ->
             s.sus_timer <- None;
             match issued.suspect with
             | Some s' when s' == s && Cr.is_valid issued.record ->
                 issued.suspect <- None;
                 if t.config.fail_open then
                   (* Deliberately broken ablation (the chaos harness's "test
                      of the test"): on grace expiry the role is optimistically
                      kept active, violating the paper's membership contract. *)
                   trace_role t "svc.fail_open" issued []
                 else begin
                   trace_role t "svc.degrade" issued [ ("why", why) ];
                   deactivate_rmc t issued ~cascade:true
                     ~reason:
                       (Printf.sprintf "fail-closed degradation: %s unresolved within grace" why)
                 end
             | Some _ | None -> ()));
    enqueue_reconcile t issued
  end

and enqueue_reconcile t issued =
  if not issued.reconciling then begin
    issued.reconciling <- true;
    Queue.push issued t.recon_queue;
    pump_reconcile t
  end

and pump_reconcile t =
  if (not t.crashed) && t.recon_running < max 1 t.config.reconcile_batch then
    match Queue.take_opt t.recon_queue with
    | None -> ()
    | Some issued ->
        t.recon_running <- t.recon_running + 1;
        World.spawn t.world (fun () -> reconcile_worker t issued);
        pump_reconcile t

(* One round-trip per remote dependency, with the shared backoff policy.
   [Some valid] is authoritative; [None] means the issuer stayed
   unreachable (or does not speak Check_cr) — keep polling, never guess. *)
and check_dep t dep =
  if Ident.equal dep.dep_issuer t.sid then Some (dep_locally_valid t dep)
  else
    match
      Backoff.retry t.config.retry (World.rng t.world) ~sleep:Proc.sleep
        ~on_retry:(fun ~attempt:_ ~delay:_ -> Obs.Counter.inc t.st.retries_reconcile)
        (fun () ->
          match
            Network.rpc (World.network t.world) ~src:t.sid ~dst:dep.dep_issuer
              (Protocol.Check_cr { cert_id = dep.dep_cert })
          with
          | Protocol.Cr_status { valid } -> Ok (Some valid)
          | _ -> Ok None
          | exception Network.Rpc_dropped -> Error ())
    with
    | Ok verdict -> verdict
    | Error () -> None

and reconcile_worker t issued =
  let live () = (not t.crashed) && Cr.is_valid issued.record && Option.is_some issued.suspect in
  let rec loop () =
    if live () then begin
      let dead = ref false and unresolved = ref false in
      List.iter
        (fun dep ->
          if live () && not !dead then
            match check_dep t dep with
            | Some true -> ()
            | Some false -> dead := true
            | None -> unresolved := true)
        issued.deps;
      if not (live ()) then ()
      else if !dead then begin
        cancel_suspect t issued;
        Obs.Counter.inc t.st.reconciled_revoked;
        trace_role t "svc.reconcile" issued [ ("outcome", "revoked") ];
        log_decision t ~decision:Dlog.Reconcile ~principal:issued.ir_principal
          ~action:("reconcile:" ^ issued.rmc.Rmc.role) ~args:issued.rmc.Rmc.args ~rule:"revoked"
          ~creds:[ issued.rmc.Rmc.id ] ();
        deactivate_rmc t issued ~cascade:true
          ~reason:"reconciliation: supporting credential revoked at issuer"
      end
      else if !unresolved then begin
        Proc.sleep (poll_interval t);
        loop ()
      end
      else begin
        (* Every dependency vouched for: reinstate. Rebuild the watches the
           silence (or crash) tore down; monitoring resumes from now. *)
        cancel_suspect t issued;
        List.iter (fun dep -> if Option.is_none dep.dep_watch then watch_dep t issued dep) issued.deps;
        Obs.Counter.inc t.st.reconciled_reinstated;
        trace_role t "svc.reconcile" issued [ ("outcome", "reinstated") ];
        log_decision t ~decision:Dlog.Reconcile ~principal:issued.ir_principal
          ~action:("reconcile:" ^ issued.rmc.Rmc.role) ~args:issued.rmc.Rmc.args
          ~rule:"reinstated" ~creds:[ issued.rmc.Rmc.id ] ()
      end
    end
  in
  loop ();
  issued.reconciling <- false;
  t.recon_running <- t.recon_running - 1;
  pump_reconcile t

(* Validation-RPC unreachability is a failure-detector signal too: every
   active role depending on that issuer becomes suspect (Change_events
   worlds have no heartbeat to miss). Gated on a positive grace — under the
   legacy configuration an unreachable issuer only fails the one request. *)
let note_unreachable t issuer =
  if (not t.crashed) && t.config.suspect_grace > 0.0 && not (Ident.equal issuer t.sid) then
    match Ident.Tbl.find_opt t.watchers_by_issuer issuer with
    | None -> ()
    | Some bucket ->
        (* Snapshot: entering suspect state can kick off reconciliation that
           deactivates roles, which unindexes them from this very bucket. *)
        let watchers = Ident.Tbl.fold (fun _ issued acc -> issued :: acc) bucket [] in
        List.iter
          (fun issued ->
            if Cr.is_valid issued.record && Option.is_none issued.suspect then
              enter_suspect t issued
                ~why:(Printf.sprintf "issuer %s unreachable" (Ident.to_string issuer)))
          watchers

(* Remote validation with optional caching (Sect. 4, experiment E3).

   Positive verdicts are cached with an invalidation watch on the issuer's
   event channel; when that watch reports the certificate dead, the entry
   is converted to a cached negative verdict (revocation is permanent), so
   re-presenting a revoked certificate answers locally instead of issuing
   the callback again. A plain [false] wire verdict is never cached — RMC
   validity depends on the presented session key, not the cert id alone. *)
let validate_remote t ~make_request ~cert_id ~issuer =
  let trace_verdict source ok =
    if Obs.tracing t.obs then
      Obs.event t.obs "svc.validate"
        ~labels:
          [
            ("service", t.sname);
            ("cert", Ident.to_string cert_id);
            ("source", source);
            ("ok", if ok then "true" else "false");
          ];
    ok
  in
  let cached = if t.config.cache_remote_validation then Vcache.lookup t.cache cert_id else None in
  match cached with
  | Some Vcache.Valid -> trace_verdict "cache" true
  | Some Vcache.Invalid -> trace_verdict "cache" false
  | None -> (
      (* Datagram loss must not turn into a spurious denial: retry under the
         shared backoff policy before giving up (the verdict itself is never
         retried — a 'false' answer is authoritative). *)
      let attempt () =
        Obs.Counter.inc t.st.callbacks_out;
        match Network.rpc (World.network t.world) ~src:t.sid ~dst:issuer (make_request ()) with
        | reply -> Ok reply
        | exception Network.Rpc_dropped -> Error ()
      in
      match
        Backoff.retry t.config.retry (World.rng t.world) ~sleep:Proc.sleep
          ~on_retry:(fun ~attempt:_ ~delay:_ -> Obs.Counter.inc t.st.retries_validate)
          attempt
      with
      | Ok (Protocol.Validate_result ok) ->
          if ok && t.config.cache_remote_validation then begin
            Vcache.cache_valid t.cache cert_id;
            if not (Ident.Tbl.mem t.cache_watched cert_id) then begin
              let watch =
                watch_invalidation t ~issuer ~cert_id ~on_dead:(fun cause ->
                    (* Definitive revocation poisons the entry (permanent
                       negative); mere silence only retires it — the verdict
                       became unknown, not false. Under the legacy zero-grace
                       configuration silence keeps its historical meaning. *)
                    (match cause with
                    | `Revoked _ -> Vcache.invalidate t.cache cert_id
                    | `Silence ->
                        if t.config.suspect_grace > 0.0 then Vcache.drop t.cache cert_id
                        else Vcache.invalidate t.cache cert_id);
                    match Ident.Tbl.find_opt t.cache_watched cert_id with
                    | Some w ->
                        Ident.Tbl.remove t.cache_watched cert_id;
                        drop_watch t w
                    | None -> ())
              in
              Ident.Tbl.replace t.cache_watched cert_id watch
            end
          end;
          trace_verdict "callback" ok
      | Ok _ -> trace_verdict "callback" false
      | Error () ->
          note_unreachable t issuer;
          trace_verdict "callback_lost" false)

(* Challenge-response against a claimed public key (Sect. 4.1). *)
let challenge_key t ~dst ~key =
  match Elgamal.public_of_string key with
  | None -> false
  | Some public -> (
      let challenge, pending = Challenge.issue (World.rng t.world) public in
      match
        Network.rpc (World.network t.world) ~src:t.sid ~dst
          (Protocol.Challenge_msg { challenge; key_hint = key })
      with
      | Protocol.Challenge_response response -> Challenge.check pending response
      | _ -> false
      | exception Network.Rpc_dropped -> false)

(* Validates every presented credential, returning solver candidates.
   Invalid credentials are dropped (and counted): a wallet may legitimately
   contain certificates that have expired or been revoked. *)
let validate_presented t ~src ~session_key (creds : Protocol.credentials) =
  (* Zero-RPC verification (DESIGN.md §12): when the presenting issuer has
     an enrolled key chain and this service trusts the domain root, the
     signature is checked locally and no callback is made. A chain in hand
     is authoritative for *authenticity*; freshness still comes from the
     dep watches installed after the grant (and from the poisoned cache for
     revocations this service has already witnessed). Issuers without a
     chain — legacy HMAC signers — fall back to the callback RPC. *)
  let offline_chain issuer =
    if t.config.offline_verify then Signed.chain_for (World.authority t.world) issuer else None
  in
  (* The certificate's event channel retains its Invalidated notice, so a
     verifier that never watched this certificate still sees the revocation
     at presentation time — a push-based revocation list. A partition hides
     the tombstone like it hides the live event; the heartbeat / suspect
     machinery bounds that staleness as usual. *)
  let revoked_on_channel ~issuer ~cert_id =
    match
      Broker.retained (World.broker t.world) (Cr.topic_of ~issuer ~cert_id) ~reader:t.sid
    with
    | Some (Protocol.Invalidated _) -> true
    | Some _ | None -> false
  in
  let offline_verdict ~issuer cert_id verify =
    Obs.Counter.inc t.st.offline_validations;
    let ok =
      Vcache.lookup t.cache cert_id <> Some Vcache.Invalid
      && (not (revoked_on_channel ~issuer ~cert_id))
      && verify ()
    in
    if Obs.tracing t.obs then
      Obs.event t.obs "svc.validate"
        ~labels:
          [
            ("service", t.sname);
            ("cert", Ident.to_string cert_id);
            ("source", "offline");
            ("ok", if ok then "true" else "false");
          ];
    ok
  in
  let rmc_ok (rmc : Rmc.t) =
    if Ident.equal rmc.issuer t.sid then verify_own_rmc t ~principal_key:session_key rmc
    else
      match offline_chain rmc.issuer with
      | Some chain ->
          offline_verdict ~issuer:rmc.issuer rmc.id (fun () ->
              Signed.verify_rmc ~address:t.root_address ~chain ~principal_key:session_key rmc)
      | None ->
          validate_remote t ~cert_id:rmc.id ~issuer:rmc.issuer ~make_request:(fun () ->
              Protocol.Validate_rmc { rmc; principal_key = session_key })
  in
  let appt_ok (appt : Appointment.t) =
    (if Ident.equal appt.issuer t.sid then verify_own_appt t appt
     else
       match offline_chain appt.issuer with
       | Some chain ->
           offline_verdict ~issuer:appt.issuer appt.id (fun () ->
               Signed.verify_appointment ~address:t.root_address ~chain ~now:(World.now t.world)
                 appt)
       | None ->
           validate_remote t ~cert_id:appt.id ~issuer:appt.issuer ~make_request:(fun () ->
               Protocol.Validate_appt { appt }))
    && ((not t.config.challenge_appointment_holders)
       (* Prove possession of the long-lived holder key: defeats stolen
          appointment certificates (Sect. 4.1). *)
       || challenge_key t ~dst:src ~key:appt.holder)
  in
  let keep_rmcs =
    List.filter
      (fun rmc ->
        let ok = rmc_ok rmc in
        if not ok then Obs.Counter.inc t.st.validation_failures;
        ok)
      creds.rmcs
  in
  let keep_appts =
    List.filter
      (fun appt ->
        let ok = appt_ok appt in
        if not ok then Obs.Counter.inc t.st.validation_failures;
        ok)
      creds.appointments
  in
  let rmc_creds =
    List.map
      (fun (rmc : Rmc.t) ->
        { Solve.cred_id = rmc.id; issuer = rmc.issuer; cred_name = rmc.role; cred_args = rmc.args })
      keep_rmcs
  in
  let appt_creds =
    List.map
      (fun (appt : Appointment.t) ->
        {
          Solve.cred_id = appt.id;
          issuer = appt.issuer;
          cred_name = appt.kind;
          cred_args = appt.args;
        })
      keep_appts
  in
  (rmc_creds, appt_creds)

(* Candidate credentials indexed by (issuer, name): built once per request,
   then each rule condition looks up exactly its matching candidates instead
   of filtering the whole presented wallet (a rule with many conditions over
   a fat wallet was quadratic). Presentation order is preserved within a
   bucket, so proof search tries credentials in the order presented. *)
let index_creds creds =
  let key issuer name = Ident.to_string issuer ^ "\x00" ^ name in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c : Solve.cred) ->
      let k = key c.issuer c.cred_name in
      match Hashtbl.find_opt tbl k with
      | Some bucket -> bucket := c :: !bucket
      | None -> Hashtbl.replace tbl k (ref [ c ]))
    creds;
  Hashtbl.iter (fun _ bucket -> bucket := List.rev !bucket) tbl;
  fun issuer name -> match Hashtbl.find_opt tbl (key issuer name) with
    | Some bucket -> !bucket
    | None -> []

let solver_context t ~rmc_creds ~appt_creds =
  let find_rmc = index_creds rmc_creds in
  let find_appt = index_creds appt_creds in
  let resolve = function
    | None -> Some t.sid
    | Some symbolic -> World.resolve t.world symbolic
  in
  let by_issuer find service name =
    match resolve service with None -> [] | Some issuer -> find issuer name
  in
  {
    Solve.find_rmcs = (fun ~service ~name -> by_issuer find_rmc service name);
    find_appointments = (fun ~issuer ~name -> by_issuer find_appt issuer name);
    env_check = Env.check t.env;
    env_enumerate = Env.enumerate t.env;
  }

(* ------------------------------------------------------------------ *)
(* Administrative revocation (Fig. 5)                                 *)
(* ------------------------------------------------------------------ *)

let revoke_appt t (ia : issued_appt) ~reason =
  match Cr.revoke t.crs ia.appt.Appointment.id ~at:(World.now t.world) ~reason with
  | None -> false
  | Some record ->
      Obs.Counter.inc t.st.revocations;
      (match ia.appt_beats with Some e -> Heartbeat.stop_emitter e | None -> ());
      announce_invalidation t record reason;
      true

let revoke_certificate t cert_id ~reason =
  match Ident.Tbl.find_opt t.rmcs cert_id with
  | Some issued ->
      let was_valid = Cr.is_valid issued.record in
      deactivate_rmc t issued ~reason ~cascade:false;
      was_valid
  | None -> (
      match Ident.Tbl.find_opt t.appts cert_id with
      | Some ia -> revoke_appt t ia ~reason
      | None -> false)

let rotate_secret t =
  t.epoch <- t.epoch + 1;
  (* Re-certify the issuing key under the new epoch: appointments of older
     epochs then fail offline verification exactly as they fail the HMAC
     scheme's current-epoch check, and must be re-issued. *)
  match t.signing with
  | Some kp ->
      ignore
        (Signed.enrol (World.authority t.world) ~subject:t.sid ~subject_pk:kp.Schnorr.public
           ~key_epoch:t.epoch ~now:(World.now t.world))
  | None -> ()

let decommission t ~reason =
  (* Withdraw every credential this service ever issued; dependents
     everywhere collapse through the usual channels. *)
  let count = ref 0 in
  Ident.Tbl.iter
    (fun _ issued ->
      if Cr.is_valid issued.record then begin
        deactivate_rmc t issued ~reason ~cascade:false;
        incr count
      end)
    t.rmcs;
  Ident.Tbl.iter
    (fun _ ia -> if revoke_appt t ia ~reason then incr count)
    t.appts;
  (* This service also holds state about *other* services' certificates:
     invalidation watches backing the validation cache. A decommissioned
     service must not keep subscriptions or heartbeat monitors alive on
     foreign event channels, nor keep serving cached verdicts. *)
  Ident.Tbl.iter (fun _ watch -> drop_watch t watch) t.cache_watched;
  Ident.Tbl.reset t.cache_watched;
  Vcache.clear t.cache;
  (* Withdraw the issuing-key chain too: a decommissioned issuer's
     certificates must stop verifying offline, not just stop answering
     callbacks. *)
  Signed.revoke_chain (World.authority t.world) t.sid;
  !count

(* ------------------------------------------------------------------ *)
(* Membership monitoring for a freshly issued RMC                     *)
(* ------------------------------------------------------------------ *)

let start_beats t record =
  match World.monitoring t.world with
  | Change_events -> None
  | Heartbeats { period; _ } ->
      Some
        (Heartbeat.start_emitter ~src:t.sid (World.broker t.world) (World.engine t.world)
           ~topic:(Cr.topic record) ~period
           ~beat:(Protocol.Beat { issuer = t.sid; cert_id = record.Cr.cert_id }))

(* Time-dependent constraints change truth value spontaneously: schedule a
   re-check at the earliest possible flip. One timer slot per constraint —
   re-arming replaces the pending handle rather than growing the watch list
   without bound. Also used by restart to rebuild timers. *)

(* Membership re-checks distinguish granting from holding: a predicate
   with a registered hold variant (gate hysteresis, DESIGN.md §16) keeps
   an existing membership alive inside the band even though a fresh
   activation would be denied — a score dithering around the threshold
   must not thrash the revoke cascade. Each retained membership counts as
   a suppressed flap. *)
let env_watch_holds t (name, args) =
  if Env.check t.env name args then true
  else if Env.check_hold t.env name args then begin
    Obs.Counter.inc t.st.flaps_suppressed;
    if Obs.tracing t.obs then
      Obs.event t.obs "svc.flap_suppressed"
        ~labels:[ ("service", t.sname); ("pred", Env.base_name name) ];
    true
  end
  else false

let arm_env_timer t (issued : issued_rmc) (name, args) =
  match Env.next_change_time t.env name args with
  | None -> ()
  | Some at ->
      let slot = ref None in
      let rec arm at =
        slot :=
          Some
            (Engine.schedule_at (World.engine t.world) ~at:(at +. 1e-9) (fun () ->
                 slot := None;
                 if Cr.is_valid issued.record then
                   if not (env_watch_holds t (name, args)) then
                     deactivate_rmc t issued ~cascade:true
                       ~reason:(Printf.sprintf "constraint %s no longer holds" name)
                   else
                     match Env.next_change_time t.env name args with
                     | Some at' -> arm at'
                     | None -> ()))
      in
      arm at;
      issued.watches <- Watch_timer slot :: issued.watches

let monitor_membership t (issued : issued_rmc) (proof : Solve.proof) =
  let membership = proof.rule.membership in
  let watch_cred (cred : Solve.cred) =
    let dep = { dep_issuer = cred.issuer; dep_cert = cred.cred_id; dep_watch = None } in
    issued.deps <- dep :: issued.deps;
    index_dep t issued dep;
    watch_dep t issued dep
  in
  List.iteri
    (fun i support ->
      match support with
      | Solve.By_rmc cred ->
          (* Prerequisite RMCs are ALWAYS monitored: "active roles form
             trees of role dependencies rooted on initial roles. If a
             single initial role is deactivated ... all the active roles
             dependent on it collapse" (Sect. 4). The '*' marker governs
             the other condition kinds. *)
          watch_cred cred
      | Solve.By_appointment cred -> if List.nth membership i then watch_cred cred
      | Solve.By_env _ when not (List.nth membership i) -> ()
      | Solve.By_env (name, args) ->
          issued.env_watch <- (name, args) :: issued.env_watch;
          index_env_watch t issued (name, args);
          arm_env_timer t issued (name, args))
    proof.support

(* One env listener per service re-checks membership constraints whose
   predicate was touched by a fact change (assert or retract: negated
   conditions are falsified by assertions).

   The indexed path consults the reverse index, so the cost of a fact
   change is proportional to the RMCs actually watching the changed
   predicate. The legacy path (config.index_env_watches = false) re-scans
   every issued RMC — kept only as the benchmark ablation baseline.
   [env_rechecks] counts RMCs examined per change in both modes, which is
   what the scale tests and the E9 benchmark assert on. *)
let recheck_env_watches t issued changed_name =
  Obs.Counter.inc t.st.env_rechecks;
  if Obs.tracing t.obs then
    Obs.event t.obs "svc.recheck"
      ~labels:
        [
          ("service", t.sname);
          ("cert", Ident.to_string issued.rmc.Rmc.id);
          ("pred", changed_name);
        ];
  List.iter
    (fun (name, args) ->
      if
        String.equal (Env.base_name name) changed_name
        && Cr.is_valid issued.record
        && not (env_watch_holds t (name, args))
      then
        deactivate_rmc t issued ~cascade:true
          ~reason:(Printf.sprintf "constraint %s no longer holds" name))
    issued.env_watch

let trace_env_change t changed_name =
  if Obs.tracing t.obs then
    Obs.event t.obs "env.change" ~labels:[ ("service", t.sname); ("pred", changed_name) ]

let install_env_listener t =
  (* A crashed node reacts to nothing: changes missed while down are caught
     by the restart re-check (anti-entropy), not by live listeners. *)
  if t.config.index_env_watches then
    Env.on_change t.env (fun changed_name _args _change ->
        if not t.crashed then begin
          trace_env_change t changed_name;
          match Hashtbl.find_opt t.env_index changed_name with
          | None -> ()
          | Some watchers ->
              (* Snapshot first: a failed re-check deactivates the RMC, which
                 removes it from the very table being traversed. *)
              let snapshot = Ident.Tbl.fold (fun _ issued acc -> issued :: acc) watchers [] in
              List.iter
                (fun issued ->
                  if Cr.is_valid issued.record then recheck_env_watches t issued changed_name)
                snapshot
        end)
  else
    Env.on_change t.env (fun changed_name _args _change ->
        if not t.crashed then begin
          trace_env_change t changed_name;
          Ident.Tbl.iter
            (fun _ issued ->
              if Cr.is_valid issued.record then recheck_env_watches t issued changed_name)
            t.rmcs
        end)

(* ------------------------------------------------------------------ *)
(* Crash and restart (DESIGN.md §11)                                  *)
(* ------------------------------------------------------------------ *)

(* Crash drops all in-flight, in-memory state: emitters, watches, monitors,
   suspect timers, the validation cache and the reconciliation queue. What
   survives is the durable part — credential records, issued certificates,
   policy, and each role's dependency list — exactly what restart rebuilds
   from. *)
let crash_node t =
  t.crashed <- true;
  Ident.Tbl.iter
    (fun _ issued ->
      (match issued.beats with Some e -> Heartbeat.stop_emitter e | None -> ());
      issued.beats <- None;
      List.iter
        (fun dep ->
          match dep.dep_watch with
          | Some w ->
              dep.dep_watch <- None;
              drop_watch t w
          | None -> ())
        issued.deps;
      List.iter (drop_watch t) issued.watches;
      issued.watches <- [];
      cancel_suspect t issued)
    t.rmcs;
  Ident.Tbl.iter
    (fun _ ia ->
      (match ia.appt_beats with Some e -> Heartbeat.stop_emitter e | None -> ());
      ia.appt_beats <- None)
    t.appts;
  Ident.Tbl.iter (fun _ watch -> drop_watch t watch) t.cache_watched;
  Ident.Tbl.reset t.cache_watched;
  Vcache.clear t.cache;
  Queue.iter (fun issued -> issued.reconciling <- false) t.recon_queue;
  Queue.clear t.recon_queue
  (* Running reconcile workers notice [t.crashed] at their next step and
     exit through the normal path, releasing their batch slots. *)

exception Chain_tampered of { service : string; seq : int; why : string }

(* Resume the decision-log chain from its durable mirror: re-verify every
   line and continue appending from the verified head. Verification
   failure means the "disk" was tampered with (or truncated mid-line)
   while the node was down; a fail-closed service refuses to restart on it
   — building new decisions onto a forged prefix would launder the
   forgery. The [fail_open_chain] ablation keeps the in-memory chain and
   skips verification, which is exactly how tampering goes unnoticed
   (demonstrated in bench E17). *)
let resume_chain t =
  if not t.config.fail_open_chain then
    match Durable.get (World.durable t.world) (chain_key t) with
    | None -> () (* never wrote anything durable: nothing to resume *)
    | Some blob -> (
        let outcome label =
          Obs.Counter.inc
            (Obs.counter t.obs "audit.chain"
               ~labels:[ ("service", t.sname); ("outcome", label) ])
        in
        match Dlog.resume ~service:t.sid blob with
        | Ok dlog ->
            outcome "resumed";
            t.dlog <- dlog
        | Error (seq, why) ->
            outcome "tampered";
            raise (Chain_tampered { service = t.sname; seq; why }))

(* Restart rebuilds the active-security machinery from durable records:
   emitters resume for valid certificates, env constraints are re-checked
   (changes missed while down deactivate now), own-issuer prerequisites are
   verified locally, and every role resting on a remote credential becomes
   suspect until anti-entropy reconciliation re-validates it — invalidations
   announced while we were down were never delivered, so trusting the old
   watch state would be fail-open. The durable decision-log chain resumes
   first: if it fails verification the service stays crashed and
   {!Chain_tampered} propagates. *)
let restart_node t =
  resume_chain t;
  t.crashed <- false;
  Ident.Tbl.iter
    (fun _ ia ->
      if Cr.is_valid ia.appt_record && ia.appt_beats = None then
        ia.appt_beats <- start_beats t ia.appt_record)
    t.appts;
  (* Snapshot: the rebuild may deactivate records, mutating the table. *)
  let live =
    Ident.Tbl.fold (fun _ i acc -> if Cr.is_valid i.record then i :: acc else acc) t.rmcs []
  in
  List.iter
    (fun issued ->
      if Cr.is_valid issued.record then begin
        if issued.beats = None then issued.beats <- start_beats t issued.record;
        if
          not
            (List.for_all
               (fun (name, args) ->
                 match env_watch_holds t (name, args) with
                 | ok -> ok
                 | exception Env.Unknown_predicate _ -> false)
               issued.env_watch)
        then
          deactivate_rmc t issued ~cascade:true
            ~reason:"restart: membership constraint no longer holds"
        else if
          List.exists
            (fun dep -> Ident.equal dep.dep_issuer t.sid && not (dep_locally_valid t dep))
            issued.deps
        then
          deactivate_rmc t issued ~cascade:true ~reason:"restart: supporting credential revoked"
        else begin
          List.iter (fun c -> arm_env_timer t issued c) issued.env_watch;
          List.iter
            (fun dep -> if Option.is_none dep.dep_watch then watch_dep t issued dep)
            issued.deps;
          if List.exists (fun dep -> not (Ident.equal dep.dep_issuer t.sid)) issued.deps then
            enter_suspect t issued ~why:"restart: remote credentials unverified"
        end
      end)
    live

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)
(* ------------------------------------------------------------------ *)

let record_audit t ?issued ~principal ~action ~args ~support ~rule () =
  let creds_used = support_creds support in
  t.audit <- { at = World.now t.world; principal; action; args; creds_used } :: t.audit;
  (* A grant that mints a certificate leads with it, then the supporting
     credentials — [oasisctl audit why --cert] finds either. *)
  let creds = match issued with Some id -> id :: creds_used | None -> creds_used in
  log_decision t ~decision:Dlog.Grant ~principal ~action ~args ~rule ~creds
    ~env_facts:(support_env_facts support) ()

(* Denials are decisions too: they enter the chain with the refusal reason
   in the rule slot, so [oasisctl audit why] explains refusals as well as
   grants. *)
let record_denial t ~principal ~action ~reason =
  log_decision t ~decision:Dlog.Deny ~principal ~action ~rule:reason ()

let seed_from_requested (rule : Rule.activation) requested =
  (* Positional unification of the requested parameter pins. *)
  if requested = [] then Some Term.Subst.empty
  else if List.length requested <> List.length rule.params then None
  else
    List.fold_left2
      (fun acc param pin ->
        match (acc, pin) with
        | None, _ -> None
        | Some subst, None -> Some subst
        | Some subst, Some value -> Term.unify subst param value)
      (Some Term.Subst.empty) rule.params requested

let handle_activate t ~src ~principal ~session_key ~role ~requested ~creds =
  match Hashtbl.find_opt t.activations role with
  | None ->
      Obs.Counter.inc t.st.activations_denied;
      record_denial t ~principal ~action:("activate:" ^ role) ~reason:"unknown role";
      Protocol.Denied (Protocol.Unknown_role role)
  | Some rules ->
      let rmc_creds, appt_creds = validate_presented t ~src ~session_key creds in
      let ctx = solver_context t ~rmc_creds ~appt_creds in
      let challenge_ok =
        (not t.config.challenge_on_activation) || challenge_key t ~dst:src ~key:session_key
      in
      if not challenge_ok then begin
        Obs.Counter.inc t.st.activations_denied;
        record_denial t ~principal ~action:("activate:" ^ role) ~reason:"challenge failed";
        Protocol.Denied Protocol.Challenge_failed
      end
      else
        let proof =
          (* A rule that proves but leaves a head parameter unbound, one
             naming an unknown predicate, or one negating a non-ground
             constraint is a policy configuration error: refuse the request
             and log, never crash the service. *)
          try
            Ok
              (Seq.find_map
                 (fun rule ->
                   match seed_from_requested rule requested with
                   | None -> None
                   | Some seed -> Solve.activation ~obs:t.obs ctx rule ~seed ())
                 (Queue.to_seq rules))
          with
          | Oasis_policy.Solve.Unbound_head (r, v) ->
              Error (Printf.sprintf "policy error: unbound head parameter %s in role %s" v r)
          | Oasis_policy.Solve.Nonground_negation p ->
              Error (Printf.sprintf "policy error: non-ground negated constraint %s" p)
          | Env.Unknown_predicate p ->
              Error (Printf.sprintf "policy error: unknown predicate %s" p)
        in
        match proof with
        | Error message ->
            Obs.Counter.inc t.st.activations_denied;
            Log.err (fun m -> m "%s: %s" t.sname message);
            record_denial t ~principal ~action:("activate:" ^ role) ~reason:message;
            Protocol.Denied (Protocol.Bad_request message)
        | Ok None ->
            Obs.Counter.inc t.st.activations_denied;
            record_denial t ~principal ~action:("activate:" ^ role) ~reason:"no proof";
            Protocol.Denied Protocol.No_proof
        | Ok (Some proof) ->
            let cert_id = World.fresh_cert_id t.world in
            let now = World.now t.world in
            let rmc =
              match t.signing with
              | Some keypair ->
                  Signed.issue_rmc ~keypair
                    ~rng:(Signed.rng (World.authority t.world))
                    ~principal_key:session_key ~id:cert_id ~issuer:t.sid ~role
                    ~args:proof.role_args ~issued_at:now
              | None ->
                  Rmc.issue ~secret:t.secret ~principal_key:session_key ~id:cert_id ~issuer:t.sid
                    ~role ~args:proof.role_args ~issued_at:now
            in
            let record =
              Cr.add t.crs ~cert_id ~issuer:t.sid ~kind:Cr.Kind_rmc ~principal ~name:role
                ~args:proof.role_args ~issued_at:now
            in
            let issued =
              {
                rmc;
                record;
                initial = proof.rule.initial;
                session_key;
                ir_principal = principal;
                deps = [];
                watches = [];
                env_watch = [];
                beats = start_beats t record;
                suspect = None;
                reconciling = false;
              }
            in
            Ident.Tbl.replace t.rmcs cert_id issued;
            monitor_membership t issued proof;
            record_audit t ~issued:cert_id ~principal ~action:("activate:" ^ role)
              ~args:proof.role_args ~support:proof.support
              ~rule:(Parser.print_statement (Parser.Activation proof.rule))
              ();
            Obs.Counter.inc t.st.activations_granted;
            Log.debug (fun m ->
                m "%s grants %s(%s) to %a" t.sname role
                  (String.concat ", " (List.map Value.to_string proof.role_args))
                  Ident.pp principal);
            Protocol.Activate_ok { rmc; initial = proof.rule.initial }

(* Authorization search with the same policy-error containment. *)
let solve_privilege ~obs ctx rules args =
  try
    Ok
      (Seq.find_map
         (fun (rule : Rule.authorization) ->
           if List.length rule.priv_args <> List.length args then None
           else
             match
               List.fold_left2
                 (fun acc param value ->
                   match acc with None -> None | Some s -> Term.unify s param value)
                 (Some Term.Subst.empty) rule.priv_args args
             with
             | None -> None
             | Some seed ->
                 Option.map
                   (fun (subst, support) -> (rule, subst, support))
                   (Solve.authorization ~obs ctx rule ~seed ()))
         (Queue.to_seq rules))
  with
  | Env.Unknown_predicate p -> Error (Printf.sprintf "policy error: unknown predicate %s" p)
  | Oasis_policy.Solve.Nonground_negation p ->
      Error (Printf.sprintf "policy error: non-ground negated constraint %s" p)

let handle_invoke t ~src ~principal ~session_key ~privilege ~args ~creds =
  match Hashtbl.find_opt t.authorizations privilege with
  | None ->
      Obs.Counter.inc t.st.invocations_denied;
      record_denial t ~principal ~action:("invoke:" ^ privilege) ~reason:"unknown privilege";
      Protocol.Denied (Protocol.Unknown_privilege privilege)
  | Some rules ->
      let rmc_creds, appt_creds = validate_presented t ~src ~session_key creds in
      let ctx = solver_context t ~rmc_creds ~appt_creds in
      let challenge_ok =
        (not t.config.challenge_on_invocation) || challenge_key t ~dst:src ~key:session_key
      in
      if not challenge_ok then begin
        Obs.Counter.inc t.st.invocations_denied;
        record_denial t ~principal ~action:("invoke:" ^ privilege) ~reason:"challenge failed";
        Protocol.Denied Protocol.Challenge_failed
      end
      else
        match solve_privilege ~obs:t.obs ctx rules args with
        | Error message ->
            Obs.Counter.inc t.st.invocations_denied;
            Log.err (fun m -> m "%s: %s" t.sname message);
            record_denial t ~principal ~action:("invoke:" ^ privilege) ~reason:message;
            Protocol.Denied (Protocol.Bad_request message)
        | Ok None ->
            Obs.Counter.inc t.st.invocations_denied;
            record_denial t ~principal ~action:("invoke:" ^ privilege) ~reason:"no proof";
            Protocol.Denied Protocol.No_proof
        | Ok (Some (rule, _subst, support)) ->
            record_audit t ~principal ~action:privilege ~args ~support
              ~rule:(Parser.print_statement (Parser.Authorization rule))
              ();
            Obs.Counter.inc t.st.invocations_granted;
            let result =
              match Hashtbl.find_opt t.operations privilege with
              | Some operation -> operation ~principal args
              | None -> None
            in
            Protocol.Invoke_ok result

let handle_appoint t ~src ~principal ~session_key ~kind ~args ~holder ~holder_key ~expires_at
    ~creds =
  match Hashtbl.find_opt t.appointers kind with
  | None ->
      Obs.Counter.inc t.st.appointments_denied;
      record_denial t ~principal ~action:("appoint:" ^ kind) ~reason:"unknown appointment kind";
      Protocol.Denied (Protocol.Unknown_privilege ("appoint:" ^ kind))
  | Some rules ->
      let rmc_creds, appt_creds = validate_presented t ~src ~session_key creds in
      let ctx = solver_context t ~rmc_creds ~appt_creds in
      let challenge_ok =
        (not t.config.challenge_on_invocation) || challenge_key t ~dst:src ~key:session_key
      in
      if not challenge_ok then begin
        Obs.Counter.inc t.st.appointments_denied;
        record_denial t ~principal ~action:("appoint:" ^ kind) ~reason:"challenge failed";
        Protocol.Denied Protocol.Challenge_failed
      end
      else
        match solve_privilege ~obs:t.obs ctx rules args with
        | Error message ->
            Obs.Counter.inc t.st.appointments_denied;
            Log.err (fun m -> m "%s: %s" t.sname message);
            record_denial t ~principal ~action:("appoint:" ^ kind) ~reason:message;
            Protocol.Denied (Protocol.Bad_request message)
        | Ok None ->
            Obs.Counter.inc t.st.appointments_denied;
            record_denial t ~principal ~action:("appoint:" ^ kind) ~reason:"no proof";
            Protocol.Denied Protocol.No_proof
        | Ok (Some (rule, _subst, support)) ->
            let cert_id = World.fresh_cert_id t.world in
            let now = World.now t.world in
            let appt =
              match t.signing with
              | Some keypair ->
                  Signed.issue_appointment ~keypair
                    ~rng:(Signed.rng (World.authority t.world))
                    ~epoch:t.epoch ~id:cert_id ~issuer:t.sid ~kind ~args ~holder:holder_key
                    ~issued_at:now ?expires_at ()
              | None ->
                  Appointment.issue ~master_secret:t.secret ~epoch:t.epoch ~id:cert_id
                    ~issuer:t.sid ~kind ~args ~holder:holder_key ~issued_at:now ?expires_at ()
            in
            let record =
              Cr.add t.crs ~cert_id ~issuer:t.sid ~kind:Cr.Kind_appointment ~principal:holder
                ~name:kind ~args ~issued_at:now
            in
            let ia = { appt; appt_record = record; appt_beats = start_beats t record } in
            Ident.Tbl.replace t.appts cert_id ia;
            (* The issuer announces expiry on the event channel so dependent
               roles collapse at the deadline, not at next validation. *)
            (match expires_at with
            | Some at when at > now ->
                ignore
                  (Engine.schedule_at (World.engine t.world) ~at (fun () ->
                       ignore (revoke_appt t ia ~reason:"expired")))
            | Some _ | None -> ());
            record_audit t ~issued:cert_id ~principal ~action:("appoint:" ^ kind) ~args ~support
              ~rule:(Parser.print_statement (Parser.Appointer rule))
              ();
            Obs.Counter.inc t.st.appointments_granted;
            Protocol.Appoint_ok appt

let handle_deactivate t ~cert_id ~session_key =
  match Ident.Tbl.find_opt t.rmcs cert_id with
  | Some issued when String.equal issued.session_key session_key ->
      deactivate_rmc t issued ~reason:"deactivated by principal" ~cascade:false;
      Protocol.Deactivate_ok
  | Some _ -> Protocol.Denied (Protocol.Bad_credential cert_id)
  | None -> Protocol.Denied (Protocol.Bad_credential cert_id)

let handle_validate_rmc t ~rmc ~principal_key =
  Obs.Counter.inc t.st.callbacks_in;
  Protocol.Validate_result (verify_own_rmc t ~principal_key rmc)

let handle_validate_appt t ~appt =
  Obs.Counter.inc t.st.callbacks_in;
  Protocol.Validate_result (verify_own_appt t appt)

let handle_rpc t ~src msg =
  match msg with
  | Protocol.Activate { principal; session_key; role; requested; creds } ->
      handle_activate t ~src ~principal ~session_key ~role ~requested ~creds
  | Protocol.Invoke { principal; session_key; privilege; args; creds } ->
      handle_invoke t ~src ~principal ~session_key ~privilege ~args ~creds
  | Protocol.Appoint { principal; session_key; kind; args; holder; holder_key; expires_at; creds }
    ->
      handle_appoint t ~src ~principal ~session_key ~kind ~args ~holder ~holder_key ~expires_at
        ~creds
  | Protocol.Deactivate { cert_id; session_key } -> handle_deactivate t ~cert_id ~session_key
  | Protocol.Validate_rmc { rmc; principal_key } -> handle_validate_rmc t ~rmc ~principal_key
  | Protocol.Validate_appt { appt } -> handle_validate_appt t ~appt
  | Protocol.Env_check { pred; args } ->
      (* Answer remote environmental lookups against our database (Sect. 2:
         "database lookup at some service"). Unknown predicates answer
         [false] to the remote — our own policy errors stay local. *)
      Protocol.Env_result (match Env.check t.env pred args with ok -> ok | exception Env.Unknown_predicate _ -> false)
  | Protocol.Check_cr { cert_id } ->
      (* Anti-entropy: answer point-blank from the credential store. Any
         service can vouch for (or disown) the certificates it issued. *)
      Protocol.Cr_status
        {
          valid =
            (match Cr.find t.crs cert_id with Some record -> Cr.is_valid record | None -> false);
        }
  | Protocol.Activate_ok _ | Protocol.Invoke_ok _ | Protocol.Appoint_ok _
  | Protocol.Deactivate_ok | Protocol.Validate_result _ | Protocol.Challenge_msg _
  | Protocol.Challenge_response _ | Protocol.Env_result _ | Protocol.Cr_status _
  | Protocol.Denied _ ->
      Protocol.Denied (Protocol.Bad_request "not a request")

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

exception Policy_rejected of Lint.finding list

let install_policy t statements =
  if t.config.strict_install then begin
    (* Lint the batch as a single open world: cross-service references and
       world-level resolution are a deployment concern (oasisctl lint);
       what must never reach the rule tables are the findings that can
       only ever fail at request time (Lint.install_blocking). *)
    let blocking =
      Lint.check ~closed:false [ Lint.of_statements ~name:t.sname statements ]
      |> List.filter Lint.install_blocking
    in
    if blocking <> [] then raise (Policy_rejected blocking)
  end;
  List.iter
    (function
      | Parser.Activation rule -> add_activation_rule t rule
      | Parser.Authorization rule -> add_authorization_rule t rule
      | Parser.Appointer rule -> set_appointer t ~kind:rule.Rule.privilege ~rule)
    statements

let create world ~name ?(config = default_config) ?env ~policy () =
  let sid = World.fresh_service_id world in
  let env =
    match env with Some e -> e | None -> Env.create (Engine.clock (World.engine world))
  in
  let obs = World.obs world in
  let labels = [ ("service", name) ] in
  let counter cname = Obs.counter obs cname ~labels in
  let authority = World.authority world in
  let signing =
    if config.offline_verify then begin
      let kp = Signed.generate_keypair authority in
      ignore
        (Signed.enrol authority ~subject:sid ~subject_pk:kp.Schnorr.public ~key_epoch:0
           ~now:(World.now world));
      Some kp
    end
    else None
  in
  let t =
    {
      world;
      sid;
      sname = name;
      obs;
      config;
      env;
      secret = Secret.generate (World.rng world);
      signing;
      root_address = Signed.address authority;
      epoch = 0;
      activations = Hashtbl.create 16;
      authorizations = Hashtbl.create 16;
      appointers = Hashtbl.create 8;
      operations = Hashtbl.create 8;
      crs = Cr.create_store ();
      rmcs = Ident.Tbl.create 64;
      env_index = Hashtbl.create 16;
      watchers_by_issuer = Ident.Tbl.create 8;
      appts = Ident.Tbl.create 64;
      cache = Vcache.create ~obs ~labels ();
      cache_watched = Ident.Tbl.create 64;
      st =
        {
          activations_granted = counter "service.activations_granted";
          activations_denied = counter "service.activations_denied";
          invocations_granted = counter "service.invocations_granted";
          invocations_denied = counter "service.invocations_denied";
          appointments_granted = counter "service.appointments_granted";
          appointments_denied = counter "service.appointments_denied";
          callbacks_in = counter "service.callbacks_in";
          callbacks_out = counter "service.callbacks_out";
          offline_validations = counter "service.offline_validations";
          validation_failures = counter "service.validation_failures";
          revocations = counter "service.revocations";
          cascade_deactivations = counter "service.cascade_deactivations";
          env_rechecks = counter "service.env_rechecks";
          suspects = counter "svc.suspect";
          reconciled_reinstated =
            Obs.counter obs "svc.reconciled" ~labels:(("outcome", "reinstated") :: labels);
          reconciled_revoked =
            Obs.counter obs "svc.reconciled" ~labels:(("outcome", "revoked") :: labels);
          retries_validate = Obs.counter obs "rpc.retries" ~labels:[ ("site", "validate") ];
          retries_reconcile = Obs.counter obs "rpc.retries" ~labels:[ ("site", "reconcile") ];
          flaps_suppressed = Obs.counter obs "trust.flaps_suppressed" ~labels;
        };
      dlog = Dlog.create ~service:sid;
      audit = [];
      crashed = false;
      recon_running = 0;
      recon_queue = Queue.create ();
    }
  in
  (* Seed the chain's durable mirror: the header once, then every logged
     decision appends its own line (see [log_decision]). *)
  Durable.set (World.durable world) (chain_key t) (Dlog.export_header t.dlog);
  install_policy t (Parser.parse_exn policy);
  install_env_listener t;
  (* Bridge the world's live trust assessor behind the [trust_score]
     predicate (shadowing the fail-closed stub Env.create registered), and
     re-check trust-gated roles whenever a score may have moved — the same
     env-change→recheck→revoke chain fact changes drive. The grant check
     demands the full threshold whatever the arity; the hold check (asked
     only for existing memberships, [env_watch_holds]) accepts the
     hysteresis band when a third argument supplies one. *)
  let as_threshold = function
    | Value.Time thr -> Some thr
    | Value.Int thr -> Some (float_of_int thr)
    | Value.Str _ | Value.Bool _ | Value.Id _ -> None
  in
  let score_at_least subject threshold =
    match as_threshold threshold with
    | Some thr -> World.trust_score world subject >= thr
    | None -> false
  in
  Env.register t.env "trust_score" (fun args ->
      match args with
      | [ Value.Id subject; threshold ] | [ Value.Id subject; threshold; _ ] ->
          score_at_least subject threshold
      | _ -> false);
  Env.register_hold t.env "trust_score" (fun args ->
      match args with
      | [ Value.Id subject; threshold ] -> score_at_least subject threshold
      | [ Value.Id subject; threshold; band ] -> (
          match (as_threshold threshold, as_threshold band) with
          | Some thr, Some delta ->
              World.trust_score world subject >= thr -. Float.max 0.0 delta
          | _ -> false)
      | _ -> false);
  World.on_trust_change world (fun _subject ->
      if not t.crashed then Env.poke t.env "trust_score");
  World.register_service world ~name sid;
  Oasis_sim.Network.add_node (World.network world) sid
    {
      on_oneway = (fun ~src:_ _msg -> ());
      on_rpc = (fun ~src msg -> handle_rpc t ~src msg);
    };
  Oasis_sim.Fault.set_hooks (World.fault world) sid
    ~on_crash:(fun () -> crash_node t)
    ~on_restart:(fun () -> restart_node t);
  t

(* Crash/restart are driven through the world's fault controller so network
   down-state, the broker's partition filter and the service hooks stay in
   lock-step; these are conveniences for tests and application code. *)
let crash t = Oasis_sim.Fault.crash (World.fault t.world) t.sid
let restart t = Oasis_sim.Fault.restart (World.fault t.world) t.sid
let is_crashed t = t.crashed

(* Registers [local_name] as a computed predicate answered by [at]'s
   environment over the network. Must be evaluated from within a simulated
   process (true during request handling). A network failure counts as
   "does not hold". *)
let register_remote_predicate t ~local_name ~at ~remote_name =
  Env.register t.env local_name (fun args ->
      match
        Network.rpc (World.network t.world) ~src:t.sid ~dst:at
          (Protocol.Env_check { pred = remote_name; args })
      with
      | Protocol.Env_result ok -> ok
      | _ -> false
      | exception Network.Rpc_dropped -> false)

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

let is_valid_certificate t cert_id =
  match Cr.find t.crs cert_id with Some record -> Cr.is_valid record | None -> false

let active_roles t =
  Ident.Tbl.fold
    (fun cert_id issued acc ->
      if Cr.is_valid issued.record then
        (cert_id, issued.rmc.Rmc.role, issued.rmc.Rmc.args, issued.ir_principal) :: acc
      else acc)
    t.rmcs []

let active_roles_named t role =
  List.filter_map
    (fun (record : Cr.t) ->
      if record.Cr.kind = Cr.Kind_rmc && Cr.is_valid record then
        Some (record.Cr.cert_id, record.Cr.args, record.Cr.principal)
      else None)
    (Cr.find_named t.crs ~issuer:t.sid ~name:role)

let suspect_roles t =
  Ident.Tbl.fold
    (fun cert_id issued acc ->
      if Option.is_some issued.suspect && Cr.is_valid issued.record then
        (cert_id, issued.rmc.Rmc.role) :: acc
      else acc)
    t.rmcs []

let suspect_count t = List.length (suspect_roles t)

let env_watcher_count t predicate =
  match Hashtbl.find_opt t.env_index (Env.base_name predicate) with
  | Some watchers -> Ident.Tbl.length watchers
  | None -> 0

let issuer_watcher_count t issuer =
  match Ident.Tbl.find_opt t.watchers_by_issuer issuer with
  | Some bucket -> Ident.Tbl.length bucket
  | None -> 0

let roles_defined t = Hashtbl.fold (fun role _ acc -> role :: acc) t.activations [] |> List.sort compare

let privileges_defined t =
  Hashtbl.fold (fun privilege _ acc -> privilege :: acc) t.authorizations [] |> List.sort compare

let audit_log t = t.audit
let decision_log t = t.dlog

let stats t =
  {
    activations_granted = Obs.Counter.value t.st.activations_granted;
    activations_denied = Obs.Counter.value t.st.activations_denied;
    invocations_granted = Obs.Counter.value t.st.invocations_granted;
    invocations_denied = Obs.Counter.value t.st.invocations_denied;
    appointments_granted = Obs.Counter.value t.st.appointments_granted;
    appointments_denied = Obs.Counter.value t.st.appointments_denied;
    callbacks_in = Obs.Counter.value t.st.callbacks_in;
    callbacks_out = Obs.Counter.value t.st.callbacks_out;
    offline_validations = Obs.Counter.value t.st.offline_validations;
    validation_failures = Obs.Counter.value t.st.validation_failures;
    revocations = Obs.Counter.value t.st.revocations;
    cascade_deactivations = Obs.Counter.value t.st.cascade_deactivations;
    env_rechecks = Obs.Counter.value t.st.env_rechecks;
    suspects = Obs.Counter.value t.st.suspects;
    reconciled_reinstated = Obs.Counter.value t.st.reconciled_reinstated;
    reconciled_revoked = Obs.Counter.value t.st.reconciled_revoked;
    flaps_suppressed = Obs.Counter.value t.st.flaps_suppressed;
    cache = Vcache.stats t.cache;
  }

let reset_stats t =
  Obs.Counter.reset t.st.activations_granted;
  Obs.Counter.reset t.st.activations_denied;
  Obs.Counter.reset t.st.invocations_granted;
  Obs.Counter.reset t.st.invocations_denied;
  Obs.Counter.reset t.st.appointments_granted;
  Obs.Counter.reset t.st.appointments_denied;
  Obs.Counter.reset t.st.callbacks_in;
  Obs.Counter.reset t.st.callbacks_out;
  Obs.Counter.reset t.st.offline_validations;
  Obs.Counter.reset t.st.validation_failures;
  Obs.Counter.reset t.st.revocations;
  Obs.Counter.reset t.st.cascade_deactivations;
  Obs.Counter.reset t.st.env_rechecks;
  Obs.Counter.reset t.st.suspects;
  Obs.Counter.reset t.st.reconciled_reinstated;
  Obs.Counter.reset t.st.reconciled_revoked;
  Obs.Counter.reset t.st.flaps_suppressed;
  Vcache.reset_stats t.cache
