module Engine = Oasis_sim.Engine
module Network = Oasis_sim.Network
module Proc = Oasis_sim.Proc
module Broker = Oasis_event.Broker
module Rng = Oasis_util.Rng
module Ident = Oasis_util.Ident
module Obs = Oasis_obs.Obs

type heartbeat_config = { period : float; deadline : float }

type monitoring =
  | Change_events
  | Heartbeats of heartbeat_config

(* The world-owned trust state (Sect. 6): one assessor scoring every
   party from the audit certificates in its wallet, validator callbacks
   keyed by registrar, and listeners the active-security layer uses to
   re-check trust-gated roles when a score may have moved. *)
type trust = {
  assessor : Oasis_trust.Assess.t;
  wallets : Oasis_trust.History.t Ident.Tbl.t;
  validators : (Oasis_trust.Audit.t -> bool) Ident.Tbl.t;
  mutable trust_listeners : (Ident.t -> unit) list;
  last_scores : float Ident.Tbl.t;
      (* score each subject's listeners last saw: notifications that would
         repeat it are suppressed (no-op pokes must not trigger the
         recheck cascade) *)
  mutable decay_tick : Oasis_sim.Engine.cancel option;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  obs : Obs.t;
  network : Protocol.msg Network.t;
  broker : Protocol.event Broker.t;
  fault : Protocol.msg Oasis_sim.Fault.t;
  monitoring : monitoring;
  authority : Oasis_cert.Signed.authority;
  names : (string, Ident.t) Hashtbl.t;
  ids : string Ident.Tbl.t;
  cert_gen : Ident.gen;
  service_gen : Ident.gen;
  principal_gen : Ident.gen;
  anon_gen : Ident.gen;
  trust : trust;
  durable : Durable.t;
}

let create ?(seed = 1) ?(net_latency = 0.001) ?(net_jitter = 0.0) ?(notify_latency = 0.001)
    ?(monitoring = Change_events) () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  (* One registry per world, on the engine's virtual clock; the network,
     broker and every service report into it. *)
  let obs = Obs.create ~now:(fun () -> Engine.now engine) () in
  let network =
    Network.create engine (Rng.split rng) ~default_latency:net_latency ~default_jitter:net_jitter
      ~size_of:Protocol.size_of ~obs ()
  in
  let broker = Broker.create engine (Rng.split rng) ~notify_latency ~obs () in
  let fault = Oasis_sim.Fault.create network in
  (* The domain root authority draws from its own stream derived from the
     seed — not from [rng] — so adding signatures perturbs none of the
     latency/secret draws existing seeds produce. *)
  let authority = Oasis_cert.Signed.create_authority (Rng.create ((seed * 2654435761) lxor 0x0a515) ) in
  (* Partitions sever event channels exactly as they sever the network:
     publishes that name their source are filtered against the fault map. *)
  Broker.set_filter broker
    (Some (fun ~publisher ~owner -> Oasis_sim.Fault.is_cut fault publisher owner));
  {
    engine;
    rng;
    obs;
    network;
    broker;
    fault;
    monitoring;
    authority;
    names = Hashtbl.create 16;
    ids = Ident.Tbl.create 16;
    cert_gen = Ident.generator "cert";
    service_gen = Ident.generator "service";
    principal_gen = Ident.generator "principal";
    anon_gen = Ident.generator "anon";
    trust =
      {
        assessor = Oasis_trust.Assess.create ();
        wallets = Ident.Tbl.create 16;
        validators = Ident.Tbl.create 4;
        trust_listeners = [];
        last_scores = Ident.Tbl.create 16;
        decay_tick = None;
      };
    durable = Durable.create ();
  }

let engine t = t.engine
let rng t = t.rng
let durable t = t.durable
let obs t = t.obs
let network t = t.network
let broker t = t.broker
let fault t = t.fault
let monitoring t = t.monitoring
let authority t = t.authority
let now t = Engine.now t.engine

let fresh_cert_id t = Ident.fresh t.cert_gen
let fresh_service_id t = Ident.fresh t.service_gen
let fresh_principal_id t = Ident.fresh t.principal_gen
let fresh_anon_id t = Ident.fresh t.anon_gen

let register_service t ~name id =
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "World.register_service: name %s already bound" name);
  Hashtbl.replace t.names name id;
  Ident.Tbl.replace t.ids id name

let resolve t name = Hashtbl.find_opt t.names name

let service_name t id = Ident.Tbl.find_opt t.ids id

let spawn t f = Proc.spawn t.engine f

let run t = Engine.run t.engine

let run_until t horizon = Engine.run_until t.engine horizon

let settle ?(horizon = 1.0) t = Engine.run_until t.engine (Engine.now t.engine +. horizon)

(* ------------------------------------------------------------------ *)
(* Trust (Sect. 6): wallets, assessor, change propagation              *)
(* ------------------------------------------------------------------ *)

let assessor t = t.trust.assessor

let wallet t party =
  match Ident.Tbl.find_opt t.trust.wallets party with
  | Some w -> w
  | None ->
      let w = Oasis_trust.History.create party in
      Ident.Tbl.replace t.trust.wallets party w;
      w

let register_trust_validator t ~registrar f = Ident.Tbl.replace t.trust.validators registrar f

let trust_validate t cert =
  (* Fail closed: certificates from registrars nobody bridged in never
     count as evidence. *)
  match Ident.Tbl.find_opt t.trust.validators cert.Oasis_trust.Audit.registrar with
  | Some f -> f cert
  | None -> false

let on_trust_change t f = t.trust.trust_listeners <- f :: t.trust.trust_listeners

let set_score_gauge t subject score =
  Obs.Gauge.set
    (Obs.gauge t.obs "trust.score" ~labels:[ ("subject", Ident.to_string subject) ])
    score

let assess t subject =
  let presented = Oasis_trust.History.present (wallet t subject) in
  (* Full recompute over the wallet, seeding the assessor's running
     aggregate so subsequent {!trust_score} reads are O(1) until the next
     certificate arrives (then O(1) again via [Assess.observe]). *)
  let verdict =
    Oasis_trust.Assess.assess_at ~remember:true t.trust.assessor ~now:(now t)
      ~validate:(trust_validate t) ~subject ~presented
  in
  set_score_gauge t subject verdict.Oasis_trust.Assess.score;
  let bump cause n =
    if n > 0 then
      Obs.Counter.add (Obs.counter t.obs "trust.rejected" ~labels:[ ("cause", cause) ]) n
  in
  bump "not_about_subject" verdict.Oasis_trust.Assess.rejected_not_about_subject;
  bump "validation_failed" verdict.Oasis_trust.Assess.rejected_validation_failed;
  bump "duplicate" verdict.Oasis_trust.Assess.rejected_duplicate;
  verdict

let trust_score t subject =
  match Oasis_trust.Assess.cached_score t.trust.assessor ~subject ~now:(now t) with
  | Some score ->
      set_score_gauge t subject score;
      score
  | None -> (assess t subject).Oasis_trust.Assess.score

(* Every trust notification flows through here. A notification whose score
   matches what listeners already saw is a no-op poke: fanning it out
   would re-check every trust-gated role for nothing, so it is counted and
   dropped instead. *)
let notify_trust_change t subject =
  let score = trust_score t subject in
  match Ident.Tbl.find_opt t.trust.last_scores subject with
  | Some prev when Float.equal prev score ->
      Obs.Counter.inc (Obs.counter t.obs "trust.notify_suppressed")
  | _ ->
      Ident.Tbl.replace t.trust.last_scores subject score;
      List.iter (fun f -> f subject) (List.rev t.trust.trust_listeners)

let trust_feedback t verdict ~actual =
  Oasis_trust.Assess.feedback t.trust.assessor verdict ~actual;
  (* Discounting moves registrar weights, which moves every score their
     certificates contribute to; let watchers re-check. *)
  notify_trust_change t verdict.Oasis_trust.Assess.subject

(* File into one party's wallet. Split from the both-parties path so a
   registrar crash mid-issuance can leave exactly one wallet updated —
   the inconsistency anti-entropy later repairs (idempotently, thanks to
   wallet dedup). *)
let file_audit_certificate t cert ~party =
  if Oasis_trust.History.add (wallet t party) cert then begin
    Oasis_trust.Assess.observe t.trust.assessor ~subject:party ~now:(now t) cert;
    Obs.Counter.inc
      (Obs.counter t.obs "trust.certificates_filed" ~labels:[ ("party", Ident.to_string party) ]);
    notify_trust_change t party;
    true
  end
  else begin
    (* Duplicate delivery (anti-entropy replay): nothing moved, nobody is
       poked. *)
    notify_trust_change t party;
    false
  end

let record_audit_certificate t cert =
  let client = cert.Oasis_trust.Audit.client and server = cert.Oasis_trust.Audit.server in
  Obs.Counter.inc (Obs.counter t.obs "trust.certificates");
  ignore (file_audit_certificate t cert ~party:client : bool);
  ignore (file_audit_certificate t cert ~party:server : bool)

(* Decay makes scores time-varying even with no new evidence, so the world
   re-assesses every walleted party each [tick] and pokes only the
   subjects whose score actually moved (the change detection above). *)
let set_trust_decay t ~rate ~tick =
  Oasis_trust.Assess.set_decay_rate t.trust.assessor rate;
  (match t.trust.decay_tick with
  | Some handle ->
      Engine.cancel t.engine handle;
      t.trust.decay_tick <- None
  | None -> ());
  if tick > 0.0 then
    t.trust.decay_tick <-
      Some
        (Engine.every t.engine ~period:tick (fun () ->
             let subjects = Ident.Tbl.fold (fun s _ acc -> s :: acc) t.trust.wallets [] in
             List.iter (fun subject -> notify_trust_change t subject) subjects;
             true))

let run_proc t f =
  let result = ref None in
  spawn t (fun () -> result := Some (f ()));
  (* Step rather than run to completion: recurring activity (heartbeat
     emitters) keeps the queue non-empty forever. *)
  while Option.is_none !result && Engine.step t.engine do
    ()
  done;
  match !result with
  | Some v -> v
  | None -> failwith "World.run_proc: process did not complete (deadlock or lost message?)"
