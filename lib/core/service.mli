(** An OASIS-secured service (Fig. 2).

    A service names its client roles, holds the formally specified policy for
    role activation and invocation, issues encryption-protected RMCs, keeps
    credential records, answers validation callbacks, and — through the event
    middleware — actively monitors the membership conditions of every role it
    has granted, deactivating immediately when one becomes false (Sect. 2–4).

    Server-side message handling runs inside simulated processes, so a
    service's policy evaluation may itself perform validation callbacks to
    other services, and its registered operations may invoke further
    services — the cross-domain chains of Fig. 3. *)

type t

type config = {
  challenge_on_activation : bool;
      (** run ISO/9798 challenge–response against the claimed session key
          before granting a role (Sect. 4.1); default off, as within a
          firewall-protected domain (Sect. 4.1 opening) *)
  challenge_on_invocation : bool;
  challenge_appointment_holders : bool;
      (** on presenting an appointment certificate, challenge the presenter
          to prove possession of the long-lived holder key bound into it —
          the Sect. 4.1 defence against stolen appointment certificates;
          default off (the firewalled-domain assumption) *)
  cache_remote_validation : bool;
      (** cache positive callback verdicts, invalidated over the issuer's
          event channel (Sect. 4); default on *)
  retry : Oasis_util.Backoff.policy;
      (** the shared retry policy for RPC call sites (validation callbacks,
          anti-entropy reconciliation) when a datagram is lost; a negative
          verdict is never retried. Default [Backoff.fixed 3] — three
          immediate attempts, byte-for-byte the historical fixed-count
          retry; fault-tolerant deployments use a jittered exponential
          policy whose [cap] is below [suspect_grace]. *)
  suspect_grace : float;
      (** how long a role whose failure detector fired (heartbeat silence,
          validation-RPC unreachability) may stay active as {e suspect}
          before fail-closed degradation deactivates it. Default [0.0]:
          silence is treated as revocation immediately — the historical
          behaviour. Positive values enable the suspect state machine and
          anti-entropy reconciliation (DESIGN.md §11). *)
  reconcile_batch : int;
      (** at most this many suspect roles re-validate against their issuers
          concurrently after a heal or restart; the rest queue. Bounds the
          post-heal re-validation storm (experiment E12); default 8 *)
  fail_open : bool;
      (** deliberately broken ablation for the chaos harness's
          test-of-the-test: on grace expiry the suspect role is kept active
          instead of deactivated, violating the paper's membership
          contract. Never enable outside that experiment; default off *)
  index_env_watches : bool;
      (** serve fact-change notifications from the reverse index (predicate
          base name → watching RMCs), so a change touches only the RMCs
          that actually watch the changed predicate; default on. Off falls
          back to re-scanning every issued RMC per change — kept solely as
          the baseline for the E9 benchmark ablation. *)
  strict_install : bool;
      (** statically lint policies before installing them and refuse
          ({!Policy_rejected}) any with error findings that could only ever
          fail at request time — unbound head parameters, non-ground
          negation, arity mismatches ({!Oasis_policy.Lint.install_blocking});
          default on. Off preserves the historical behaviour where such
          rules install silently and every matching request is answered
          [Bad_request]. *)
  offline_verify : bool;
      (** issue Schnorr-signed credentials under a key certified by the
          world's domain root, and verify presented credentials from
          enrolled issuers locally — chain, signature, expiry, epoch — with
          zero validation RPCs (DESIGN.md §12); default on. Presented
          credentials whose issuer has no chain (a legacy HMAC signer, or a
          decommissioned issuer) fall back to the validation callback.
          Freshness is unchanged: dep watches, heartbeats and anti-entropy
          reconciliation still bound revocation propagation, and
          revocations witnessed over a watch poison the validation cache so
          re-presenting a known-dead certificate is refused locally. Off
          restores the historical HMAC + callback-per-check behaviour. *)
  fail_open_chain : bool;
      (** deliberately broken ablation for the durable decision-log chain:
          on restart, skip verifying the durable export and keep the
          in-memory chain, so tampering with the "disk" while the node is
          down goes unnoticed (demonstrated in bench E17). Default off —
          restart re-verifies the whole durable chain and refuses to
          resume ({!Chain_tampered}) on any mismatch. *)
}

val default_config : config

exception Policy_rejected of Oasis_policy.Lint.finding list
(** Raised by {!install_policy} (and hence {!create}) under
    [strict_install] when the policy contains install-blocking lint
    errors; the findings carry positions within the policy text. *)

val create :
  World.t ->
  name:string ->
  ?config:config ->
  ?env:Oasis_policy.Env.t ->
  policy:string ->
  unit ->
  t
(** Creates the service, registers it on the network and in the world's
    name registry, and installs the parsed policy. Raises [Failure] on a
    policy syntax error and {!Policy_rejected} on install-blocking lint
    errors (unless [config.strict_install] is off). The [env] defaults to
    a fresh environment private
    to this service; pass a shared one to model services reading one
    domain database. *)

val id : t -> Oasis_util.Ident.t
val service_name : t -> string
val env : t -> Oasis_policy.Env.t
val world : t -> World.t

(** {1 Policy administration} *)

val install_policy : t -> Oasis_policy.Parser.statement list -> unit
(** Installs a batch of parsed statements. Under [strict_install] the batch
    is first linted as a single open world (cross-service references are
    left to [oasisctl lint]) and rejected wholesale — no partial install —
    if any finding is {!Oasis_policy.Lint.install_blocking}. *)

val add_activation_rule : t -> Oasis_policy.Rule.activation -> unit
val add_authorization_rule : t -> Oasis_policy.Rule.authorization -> unit

val set_appointer : t -> kind:string -> rule:Oasis_policy.Rule.authorization -> unit
(** Installs the policy governing who may issue appointment certificates of
    [kind] at this service ("being active in certain roles carries the
    privilege of issuing appointment certificates", Sect. 1). The rule's
    [priv_args] bind the appointment's parameters. *)

val register_operation :
  t -> string -> (principal:Oasis_util.Ident.t -> Oasis_util.Value.t list -> Oasis_util.Value.t option) -> unit
(** Binds application code to a privilege; run after authorization succeeds.
    The handler executes inside a simulated process and may therefore invoke
    other services. A privilege without an operation authorizes and audits
    but returns no value. *)

val register_remote_predicate :
  t -> local_name:string -> at:Oasis_util.Ident.t -> remote_name:string -> unit
(** Makes [env:local_name(args)] a database lookup at another service
    (Sect. 2: "the user is a member of a group; this may be ascertained by
    database lookup at some service"). Evaluation performs an RPC to [at]
    at rule-evaluation time; unreachable or unknown remote predicates count
    as not holding. Note: remote predicates cannot be actively monitored —
    use them in activation conditions, not membership rules, or mirror the
    facts locally. *)

(** {1 Administration} *)

val revoke_certificate : t -> Oasis_util.Ident.t -> reason:string -> bool
(** Administratively revokes a certificate issued here (RMC or appointment):
    the credential record is invalidated, the change is announced on its
    event channel, and dependent roles everywhere collapse (Fig. 5). [false]
    if unknown or already revoked. *)

val decommission : t -> reason:string -> int
(** Administrative shutdown: revokes every certificate this service issued
    (RMCs and appointments); returns how many were withdrawn. Every session
    and foreign role that depended on this service's credentials collapses
    through the event infrastructure. *)

val rotate_secret : t -> unit
(** Advances the appointment-signing epoch: all previously issued
    appointment certificates stop validating and must be re-issued
    (Sect. 4.1). RMCs are unaffected — they are session-scoped. *)

val current_epoch : t -> int

(** {1 Faults} *)

val crash : t -> unit
(** Crashes this node through the world's fault controller
    ({!Oasis_sim.Fault}): the network node goes down, emitters fall silent,
    and all in-memory active-security state (watches, monitors, suspect
    timers, validation cache, reconciliation queue) is dropped. Durable
    state — credential records, issued certificates, policy, per-role
    dependency lists — survives for {!restart} to rebuild from. *)

exception Chain_tampered of { service : string; seq : int; why : string }
(** Raised by {!restart} (fail-closed, the default) when the durable
    export of the decision-log chain does not verify — the "disk" was
    tampered with or truncated while the node was down. The service stays
    crashed: building new decisions onto a forged prefix would launder the
    forgery. [seq] is the first record that fails; [why] the cause. *)

val restart : t -> unit
(** Rebuilds subscriptions, monitors and emitters from the durable
    credential records. The durable decision-log chain is re-verified and
    resumed first — on any mismatch the service refuses to come back
    ({!Chain_tampered}) unless the [fail_open_chain] ablation is set.
    Environmental constraints are re-checked on the spot
    (changes missed while down deactivate now); roles resting on remote
    credentials become {e suspect} and are re-validated by anti-entropy
    reconciliation — invalidations announced while down were never
    delivered, so the stale watch state cannot be trusted. A no-op unless
    crashed. *)

val is_crashed : t -> bool

val suspect_roles : t -> (Oasis_util.Ident.t * string) list
(** [(cert_id, role)] for every active role currently in suspect state:
    its failure detector fired but revocation is unconfirmed, and either
    reconciliation or the grace timer will resolve it. *)

val suspect_count : t -> int

(** {1 Introspection} *)

val is_valid_certificate : t -> Oasis_util.Ident.t -> bool
(** Whether this issuer's credential record for the certificate is valid. *)

val active_roles : t -> (Oasis_util.Ident.t * string * Oasis_util.Value.t list * Oasis_util.Ident.t) list
(** [(cert_id, role, args, principal)] for every currently valid RMC. *)

val active_roles_named :
  t -> string -> (Oasis_util.Ident.t * Oasis_util.Value.t list * Oasis_util.Ident.t) list
(** [(cert_id, args, principal)] for every currently valid RMC of one role,
    served from the credential store's (issuer, name) index: cost is the
    records of that role, not a scan of everything ever issued. *)

val env_watcher_count : t -> string -> int
(** How many currently active RMCs watch the given environmental predicate
    (membership-marked constraints only), read from the reverse index the
    fact-change hot path uses. A leading ['!'] is ignored. *)

val issuer_watcher_count : t -> Oasis_util.Ident.t -> int
(** How many issued RMCs currently hold a dependency on a credential of the
    given remote issuer, read from the reverse index the unreachable-issuer
    sweep uses ({!val-stats}: suspects): cost of that sweep is this count,
    not the size of the RMC table. *)

val roles_defined : t -> string list
val privileges_defined : t -> string list

(** An audit record of a granted request; Sect. 3 requires "the identity of
    the original requester ... recorded for audit". *)
type audit_entry = {
  at : float;
  principal : Oasis_util.Ident.t;
  action : string;  (** privilege name, or ["activate:role"] / ["appoint:kind"] *)
  args : Oasis_util.Value.t list;
  creds_used : Oasis_util.Ident.t list;  (** certificate ids supporting the proof *)
}

val audit_log : t -> audit_entry list
(** Newest first. *)

val decision_log : t -> Oasis_trust.Decision_log.t
(** The hash-chained decision log (DESIGN.md §15): every grant, deny,
    revoke, suspect and reconcile decision this service has taken, with
    the rule that fired, the credentials and env facts it rested on, and
    the obs trace seq it correlates with. Surfaced by [oasisctl audit]. *)

type stats = {
  activations_granted : int;
  activations_denied : int;
  invocations_granted : int;
  invocations_denied : int;
  appointments_granted : int;
  appointments_denied : int;
  callbacks_in : int;  (** validation requests answered as issuer *)
  callbacks_out : int;  (** validation requests made about remote certificates *)
  offline_validations : int;
      (** remote credentials checked locally against an issuer chain —
          presentations that under the legacy path would each have been a
          [callbacks_out] RPC *)
  validation_failures : int;  (** presented credentials dropped as invalid *)
  revocations : int;  (** credential records invalidated here *)
  cascade_deactivations : int;  (** revocations triggered by monitoring, not administration *)
  env_rechecks : int;
      (** RMCs whose membership constraints were re-examined because a fact
          changed; with indexing on this counts only watchers of the changed
          predicate *)
  suspects : int;  (** roles that entered suspect state ([svc.suspect{service=..}]) *)
  reconciled_reinstated : int;
      (** suspect roles reconciliation re-validated and kept active *)
  reconciled_revoked : int;
      (** suspect roles reconciliation confirmed revoked and deactivated *)
  flaps_suppressed : int;
      (** membership re-checks that failed the grant condition but survived
          inside a hysteresis band ([trust.flaps_suppressed{service=..}]) —
          each one is a revocation the gate's band absorbed *)
  cache : Oasis_cert.Validation_cache.stats;
}

val stats : t -> stats
val reset_stats : t -> unit
