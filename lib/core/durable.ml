(* Simulated durable storage: string-keyed blobs that survive a node crash
   (crash/restart hooks drop only in-memory state; nothing ever clears
   this store except its owner). Services mirror their decision-log chains
   here incrementally — one appended line per logged decision — and resume
   from the blob on restart. [corrupt] is the adversary move for the
   fail-closed resume tests: flip one byte of what is on "disk" while the
   node is down. *)

type t = { blobs : (string, Buffer.t) Hashtbl.t }

let create () = { blobs = Hashtbl.create 16 }

let bucket t key =
  match Hashtbl.find_opt t.blobs key with
  | Some b -> b
  | None ->
      let b = Buffer.create 256 in
      Hashtbl.replace t.blobs key b;
      b

let set t key data =
  let b = bucket t key in
  Buffer.clear b;
  Buffer.add_string b data

let append t key data = Buffer.add_string (bucket t key) data

let get t key =
  match Hashtbl.find_opt t.blobs key with
  | Some b -> Some (Buffer.contents b)
  | None -> None

let mem t key = Hashtbl.mem t.blobs key

let remove t key = Hashtbl.remove t.blobs key

let size t key =
  match Hashtbl.find_opt t.blobs key with Some b -> Buffer.length b | None -> 0

let corrupt t key ~byte =
  match Hashtbl.find_opt t.blobs key with
  | None -> false
  | Some b when Buffer.length b = 0 -> false
  | Some b ->
      let data = Buffer.contents b in
      let n = String.length data in
      let i = ((byte mod n) + n) mod n in
      let bytes = Bytes.of_string data in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 1));
      Buffer.clear b;
      Buffer.add_bytes b bytes;
      true
