(** A simulated OASIS world: engine, network, event middleware, registries.

    The world owns the shared infrastructure every node plugs into and the
    symbolic service-name registry that policy rules resolve against
    ("@hospital" in a rule body → the hospital service's identifier). *)

(** How services monitor the membership conditions of active roles (the
    Fig. 5 ablation, experiment E5):
    - [Change_events]: issuers publish invalidation events; dependents react
      immediately on delivery.
    - [Heartbeats]: issuers beat every [period] per valid credential record;
      dependents declare a credential dead after [deadline] without a beat. *)
type heartbeat_config = { period : float; deadline : float }

type monitoring =
  | Change_events
  | Heartbeats of heartbeat_config

type t

val create :
  ?seed:int ->
  ?net_latency:float ->
  ?net_jitter:float ->
  ?notify_latency:float ->
  ?monitoring:monitoring ->
  unit ->
  t
(** Defaults: seed 1, 1 ms network latency, no jitter, 1 ms notification
    latency, change-event monitoring. Latencies are in (virtual) seconds. *)

val engine : t -> Oasis_sim.Engine.t
val rng : t -> Oasis_util.Rng.t

(** The world's shared metrics registry and tracer (DESIGN.md §10). The
    network, broker and every service report into it; attach a sink to
    stream the event timeline. *)
val obs : t -> Oasis_obs.Obs.t
val network : t -> Protocol.msg Oasis_sim.Network.t
val broker : t -> Protocol.event Oasis_event.Broker.t

val fault : t -> Protocol.msg Oasis_sim.Fault.t
(** The world's fault controller. Named partitions installed here cut both
    the network and (via the broker's delivery filter) event channels;
    services register crash/restart hooks with it at creation. *)

val monitoring : t -> monitoring

val authority : t -> Oasis_cert.Signed.authority
(** The world's domain root (DESIGN.md §12): certifies per-service issuing
    keys so relying services can verify credentials offline. Stands in for
    out-of-band root-address distribution; seeded independently of {!rng}
    so signature support leaves existing deterministic runs untouched. *)

val now : t -> float

val fresh_cert_id : t -> Oasis_util.Ident.t
val fresh_service_id : t -> Oasis_util.Ident.t
val fresh_principal_id : t -> Oasis_util.Ident.t

val fresh_anon_id : t -> Oasis_util.Ident.t
(** Pseudonymous principal aliases for anonymous invocation (Sect. 5). *)

val register_service : t -> name:string -> Oasis_util.Ident.t -> unit
(** Binds a symbolic service name. Raises [Invalid_argument] on rebinding. *)

val resolve : t -> string -> Oasis_util.Ident.t option
val service_name : t -> Oasis_util.Ident.t -> string option

val spawn : t -> (unit -> unit) -> unit
(** Starts a simulated process (see {!Oasis_sim.Proc}). *)

val run : t -> unit
(** Runs the engine until quiescence. *)

val run_until : t -> float -> unit

val settle : ?horizon:float -> t -> unit
(** [settle t] runs one virtual second (by default) past the current time —
    long enough for in-flight messages, notifications and cascades to
    complete at millisecond latencies, without executing far-future timers
    such as certificate expiries. Use {!run} only when draining the whole
    timeline (including expiries) is intended. *)

val run_proc : t -> (unit -> 'a) -> 'a
(** [run_proc t f] spawns [f] and executes engine events until [f]
    completes, then returns its result (leaving later-scheduled events —
    e.g. recurring heartbeats — pending). Raises [Failure] if the event
    queue drains without [f] completing (deadlock or lost message) — tests
    want that loudly. *)
