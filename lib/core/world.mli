(** A simulated OASIS world: engine, network, event middleware, registries.

    The world owns the shared infrastructure every node plugs into and the
    symbolic service-name registry that policy rules resolve against
    ("@hospital" in a rule body → the hospital service's identifier). *)

(** How services monitor the membership conditions of active roles (the
    Fig. 5 ablation, experiment E5):
    - [Change_events]: issuers publish invalidation events; dependents react
      immediately on delivery.
    - [Heartbeats]: issuers beat every [period] per valid credential record;
      dependents declare a credential dead after [deadline] without a beat. *)
type heartbeat_config = { period : float; deadline : float }

type monitoring =
  | Change_events
  | Heartbeats of heartbeat_config

type t

val create :
  ?seed:int ->
  ?net_latency:float ->
  ?net_jitter:float ->
  ?notify_latency:float ->
  ?monitoring:monitoring ->
  unit ->
  t
(** Defaults: seed 1, 1 ms network latency, no jitter, 1 ms notification
    latency, change-event monitoring. Latencies are in (virtual) seconds. *)

val engine : t -> Oasis_sim.Engine.t
val rng : t -> Oasis_util.Rng.t

(** The world's shared metrics registry and tracer (DESIGN.md §10). The
    network, broker and every service report into it; attach a sink to
    stream the event timeline. *)
val obs : t -> Oasis_obs.Obs.t
val network : t -> Protocol.msg Oasis_sim.Network.t
val broker : t -> Protocol.event Oasis_event.Broker.t

val fault : t -> Protocol.msg Oasis_sim.Fault.t
(** The world's fault controller. Named partitions installed here cut both
    the network and (via the broker's delivery filter) event channels;
    services register crash/restart hooks with it at creation. *)

val monitoring : t -> monitoring

val durable : t -> Durable.t
(** The world's simulated durable store: blobs written here survive node
    crashes (services mirror their decision-log chains into it and resume
    from it on restart, DESIGN.md §16). *)

val authority : t -> Oasis_cert.Signed.authority
(** The world's domain root (DESIGN.md §12): certifies per-service issuing
    keys so relying services can verify credentials offline. Stands in for
    out-of-band root-address distribution; seeded independently of {!rng}
    so signature support leaves existing deterministic runs untouched. *)

val now : t -> float

val fresh_cert_id : t -> Oasis_util.Ident.t
val fresh_service_id : t -> Oasis_util.Ident.t
val fresh_principal_id : t -> Oasis_util.Ident.t

val fresh_anon_id : t -> Oasis_util.Ident.t
(** Pseudonymous principal aliases for anonymous invocation (Sect. 5). *)

val register_service : t -> name:string -> Oasis_util.Ident.t -> unit
(** Binds a symbolic service name. Raises [Invalid_argument] on rebinding. *)

val resolve : t -> string -> Oasis_util.Ident.t option
val service_name : t -> Oasis_util.Ident.t -> string option

val spawn : t -> (unit -> unit) -> unit
(** Starts a simulated process (see {!Oasis_sim.Proc}). *)

val run : t -> unit
(** Runs the engine until quiescence. *)

val run_until : t -> float -> unit

val settle : ?horizon:float -> t -> unit
(** [settle t] runs one virtual second (by default) past the current time —
    long enough for in-flight messages, notifications and cascades to
    complete at millisecond latencies, without executing far-future timers
    such as certificate expiries. Use {!run} only when draining the whole
    timeline (including expiries) is intended. *)

(** {1 Trust (Sect. 6)}

    The world owns one {!Oasis_trust.Assess} instance and one certificate
    wallet per party. CIVs push the audit certificates they issue into the
    wallets with {!record_audit_certificate} and bridge their registrar in
    with {!register_trust_validator}; services read scores through
    {!trust_score} (the [trust_score(subject, θ)] env predicate) and
    subscribe to {!on_trust_change} so a score crossing re-triggers the
    env-watch recheck→revoke chain. *)

val assessor : t -> Oasis_trust.Assess.t

val wallet : t -> Oasis_util.Ident.t -> Oasis_trust.History.t
(** The party's interaction-history wallet, created on first use. *)

val register_trust_validator :
  t -> registrar:Oasis_util.Ident.t -> (Oasis_trust.Audit.t -> bool) -> unit
(** Routes validation of certificates naming [registrar] to [f].
    Certificates from unregistered registrars fail validation (fail
    closed). *)

val record_audit_certificate : t -> Oasis_trust.Audit.t -> unit
(** Files the certificate in both parties' wallets (deduplicated by id)
    and notifies trust-change listeners for both. *)

val file_audit_certificate : t -> Oasis_trust.Audit.t -> party:Oasis_util.Ident.t -> bool
(** Files the certificate in one party's wallet only, returning whether it
    was new to that wallet. {!record_audit_certificate} is two of these; a
    registrar crashing between them leaves exactly one wallet updated —
    the half-issuance anti-entropy repairs by re-delivering (idempotent:
    replaying an already-filed certificate changes nothing and pokes
    nobody). *)

val assess : t -> Oasis_util.Ident.t -> Oasis_trust.Assess.verdict
(** Scores a party from its wallet via the world assessor, updating the
    [trust.score{subject=..}] gauge and [trust.rejected{cause=..}]
    counters. *)

val trust_score : t -> Oasis_util.Ident.t -> float
(** The subject's current score. Served from the assessor's running
    aggregate (one decay multiplication) whenever possible; falls back to
    a full {!assess} of the wallet — so repeated [trust_score] env checks
    cost O(1), not O(wallet). *)

val set_trust_decay : t -> rate:float -> tick:float -> unit
(** Configures time-decayed reputation (DESIGN.md §16): certificate
    weights decay as [exp (-rate * age)] on the virtual clock, and every
    [tick] virtual seconds the world re-scores all walleted parties,
    poking only subjects whose score actually moved (trust-gated roles
    then re-check through the ordinary env-change cascade). [tick <= 0]
    disables the periodic re-assessment (scores still decay whenever they
    are read). Calling again replaces the previous configuration. *)

val trust_feedback : t -> Oasis_trust.Assess.verdict -> actual:Oasis_trust.Audit.outcome -> unit
(** Reports an interaction's actual outcome against a prior verdict
    (registrar discounting), then notifies trust-change listeners. *)

val on_trust_change : t -> (Oasis_util.Ident.t -> unit) -> unit
(** [f subject] runs synchronously whenever [subject]'s score may have
    moved — a new certificate was filed or registrar weights shifted. *)

val run_proc : t -> (unit -> 'a) -> 'a
(** [run_proc t f] spawns [f] and executes engine events until [f]
    completes, then returns its result (leaving later-scheduled events —
    e.g. recurring heartbeats — pending). Raises [Failure] if the event
    queue drains without [f] completing (deadlock or lost message) — tests
    want that loudly. *)
