module Ident = Oasis_util.Ident
module Obs = Oasis_obs.Obs

type hooks = { on_crash : unit -> unit; on_restart : unit -> unit }

type 'msg t = {
  net : 'msg Network.t;
  partitions : (string, (Ident.t * Ident.t) list) Hashtbl.t;
  hooks : hooks Ident.Tbl.t;
  crashed : bool Ident.Tbl.t;
  c_partitions : Obs.Counter.t;
}

let create net =
  {
    net;
    partitions = Hashtbl.create 8;
    hooks = Ident.Tbl.create 16;
    crashed = Ident.Tbl.create 16;
    c_partitions = Obs.counter (Network.obs net) "net.partitioned";
  }

let cross_pairs left right =
  List.concat_map
    (fun a ->
      List.filter_map (fun b -> if Ident.equal a b then None else Some (a, b)) right)
    left

let partition t ~name left right =
  if Hashtbl.mem t.partitions name then
    invalid_arg (Printf.sprintf "Fault.partition: %s already active" name);
  let pairs = cross_pairs left right in
  List.iter
    (fun (a, b) ->
      Network.block_pair t.net a b;
      Network.block_pair t.net b a)
    pairs;
  Hashtbl.replace t.partitions name pairs;
  Obs.Counter.inc t.c_partitions;
  let obs = Network.obs t.net in
  if Obs.tracing obs then Obs.event obs "fault.partition" ~labels:[ ("name", name) ]

let heal t name =
  match Hashtbl.find_opt t.partitions name with
  | None -> invalid_arg (Printf.sprintf "Fault.heal: no partition named %s" name)
  | Some pairs ->
      Hashtbl.remove t.partitions name;
      List.iter
        (fun (a, b) ->
          Network.unblock_pair t.net a b;
          Network.unblock_pair t.net b a)
        pairs;
      let obs = Network.obs t.net in
      if Obs.tracing obs then Obs.event obs "fault.heal" ~labels:[ ("name", name) ]

let active_partitions t = Hashtbl.fold (fun name _ acc -> name :: acc) t.partitions []
let heal_all t = List.iter (heal t) (active_partitions t)

let set_hooks t id ~on_crash ~on_restart = Ident.Tbl.replace t.hooks id { on_crash; on_restart }
let clear_hooks t id = Ident.Tbl.remove t.hooks id
let is_crashed t id = Option.value ~default:false (Ident.Tbl.find_opt t.crashed id)

(* Only faults injected here count: a plain [Network.set_down] (the legacy
   lossy-link experiments) keeps its historical network-only semantics and
   does not sever event channels. *)
let is_cut t src dst = Network.pair_blocked t.net src dst || is_crashed t src || is_crashed t dst

let trace_node t what id =
  let obs = Network.obs t.net in
  if Obs.tracing obs then Obs.event obs what ~labels:[ ("node", Ident.to_string id) ]

let crash t id =
  if not (is_crashed t id) then begin
    Ident.Tbl.replace t.crashed id true;
    Network.set_down t.net id true;
    trace_node t "fault.crash" id;
    match Ident.Tbl.find_opt t.hooks id with Some h -> h.on_crash () | None -> ()
  end

let restart t id =
  if is_crashed t id then begin
    Ident.Tbl.remove t.crashed id;
    Network.set_down t.net id false;
    trace_node t "fault.restart" id;
    match Ident.Tbl.find_opt t.hooks id with
    | None -> ()
    | Some h -> (
        (* A restart hook that raises means the node refused to come back
           (e.g. its durable state failed verification). Roll the node back
           to crashed so the network view matches, then let the refusal
           propagate. *)
        try h.on_restart ()
        with e ->
          Ident.Tbl.replace t.crashed id true;
          Network.set_down t.net id true;
          trace_node t "fault.restart_refused" id;
          raise e)
  end
