(** Minimal binary min-heap keyed by [(time, sequence)].

    The sequence number breaks ties so that events scheduled for the same
    instant fire in scheduling order — a determinism requirement for
    replayable simulations.

    Storage is three parallel arrays (the time column is an unboxed float
    array), so a push allocates nothing and a {!pop_min} returns without
    allocating. Popped and filtered-out slots are overwritten with the
    [dummy] value supplied at creation, so the heap never retains a value
    (and the event closure it carries) past its removal; the arrays shrink
    when occupancy falls below a quarter of capacity. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] is a sentinel used to clear vacated slots; it is never returned
    by {!pop} or {!pop_min}. *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val capacity : 'a t -> int
(** Physical slots currently allocated (for boundedness assertions). *)

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Removes and returns the minimum element. *)

val min_time : 'a t -> float
(** The key of the minimum element. Raises [Invalid_argument] when empty. *)

val pop_min : 'a t -> 'a
(** Allocation-free {!pop}: removes the minimum element and returns its
    value only ({!min_time} reads its key first). Raises [Invalid_argument]
    when empty. *)

val peek_time : 'a t -> float option
(** The key of the minimum element without removing it. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Drops every element whose value fails the predicate, clears the vacated
    slots, and restores the heap property in O(n) (Floyd heapify). Used by
    the engine to compact cancelled-timer tombstones. *)
