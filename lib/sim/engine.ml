module Clock = Oasis_util.Clock

(* Event lifecycle: Pending (in the heap) -> Fired | Tombstone. A cancelled
   pending event becomes a tombstone: its closure is released immediately
   (the thunk slot is the only strong reference) and the heap entry is
   reclaimed either when its fire time arrives or by compaction, whichever
   comes first. Heartbeat monitors re-arm and cancel timers constantly; at
   10^6 RMCs, letting tombstones ride to their fire time grows the heap
   without bound. *)
type event = {
  mutable state : int;  (* 0 = pending, 1 = fired, 2 = tombstone *)
  mutable thunk : unit -> unit;
}

(* A handle outlives the event it points at: recurring timers ({!every})
   retarget it at each re-arm, and [dead] stops a recurrence even when the
   cancel lands while its callback is running. *)
type cancel = { mutable target : event; mutable dead : bool }

let fired_event () = { state = 1; thunk = ignore }

type t = {
  clock : Clock.t;
  queue : event Heap.t;
  mutable seq : int;
  mutable executed : int;
  mutable tombstones : int;
}

(* Compaction below this heap size is churn, not reclamation. *)
let compact_min = 64

let create ?(start = 0.0) () =
  {
    clock = Clock.manual ~start ();
    queue = Heap.create ~dummy:(fired_event ()) ();
    seq = 0;
    executed = 0;
    tombstones = 0;
  }

let clock t = t.clock

let now t = Clock.now t.clock

let schedule_event t ~at thunk =
  let event = { state = 0; thunk } in
  Heap.push t.queue ~time:at ~seq:t.seq event;
  t.seq <- t.seq + 1;
  event

let schedule_at t ~at thunk =
  if at < now t then
    invalid_arg (Printf.sprintf "Engine.schedule_at: %g is in the past (now %g)" at (now t));
  { target = schedule_event t ~at thunk; dead = false }

let schedule t ~after thunk =
  if after < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(now t +. after) thunk

let cancel t handle =
  handle.dead <- true;
  let event = handle.target in
  if event.state = 0 then begin
    event.state <- 2;
    event.thunk <- ignore;
    t.tombstones <- t.tombstones + 1;
    if t.tombstones >= compact_min && 2 * t.tombstones > Heap.size t.queue then begin
      Heap.filter_in_place t.queue (fun e -> e.state <> 2);
      t.tombstones <- 0
    end
  end

let every t ~period f =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let handle = { target = fired_event (); dead = false } in
  let rec tick () =
    if (not handle.dead) && f () then
      handle.target <- schedule_event t ~at:(now t +. period) tick
  in
  handle.target <- schedule_event t ~at:(now t +. period) tick;
  handle

let step t =
  if Heap.is_empty t.queue then false
  else begin
    let time = Heap.min_time t.queue in
    let event = Heap.pop_min t.queue in
    Clock.advance_to t.clock time;
    if event.state = 2 then t.tombstones <- t.tombstones - 1
    else begin
      event.state <- 1;
      t.executed <- t.executed + 1;
      let thunk = event.thunk in
      (* A fired event's closure is unreachable from here on even if the
         caller keeps its cancel handle. *)
      event.thunk <- ignore;
      thunk ()
    end;
    true
  end

let run t =
  while step t do
    ()
  done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Heap.peek_time t.queue with
    | Some time when time <= horizon -> ignore (step t)
    | _ -> continue := false
  done;
  if horizon > now t then Clock.advance_to t.clock horizon

let pending t = Heap.size t.queue - t.tombstones

let heap_size t = Heap.size t.queue

let events_executed t = t.executed
