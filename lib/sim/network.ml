module Ident = Oasis_util.Ident
module Rng = Oasis_util.Rng
module Obs = Oasis_obs.Obs

type 'msg handler = {
  on_oneway : src:Ident.t -> 'msg -> unit;
  on_rpc : src:Ident.t -> 'msg -> 'msg;
}

type link = { latency : float; jitter : float; loss : float }

type 'msg node = { handler : 'msg handler; mutable down : bool }

type stats = { sent : int; delivered : int; dropped : int; rpcs : int; bytes_sent : int }

(* The drop counters, one per cause — the registry view `oasisctl stats`
   and the drop-accounting regression tests read. *)
type drop_counters = {
  src_down : Obs.Counter.t;
  dst_missing : Obs.Counter.t;
  partitioned : Obs.Counter.t;
  link_loss : Obs.Counter.t;
  in_flight_down : Obs.Counter.t;
  handler_error : Obs.Counter.t;
}

type 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  obs : Obs.t;
  nodes : 'msg node Ident.Tbl.t;
  links : (Ident.t * Ident.t, link) Hashtbl.t;
  (* Directed pairs severed by named partitions (Fault). Refcounted so
     overlapping partitions compose: a pair stays cut until every partition
     naming it has healed. *)
  blocked : (Ident.t * Ident.t, int) Hashtbl.t;
  default : link;
  size_of : 'msg -> int;
  mutable tracer : (src:Ident.t -> dst:Ident.t -> 'msg -> unit) option;
  c_sent : Obs.Counter.t;
  c_delivered : Obs.Counter.t;
  c_rpcs : Obs.Counter.t;
  c_bytes : Obs.Counter.t;
  drops : drop_counters;
}

exception Rpc_dropped

let create engine rng ~default_latency ?(default_jitter = 0.0) ?(size_of = fun _ -> 0) ?obs () =
  let obs =
    match obs with
    | Some obs -> obs
    | None -> Obs.create ~now:(fun () -> Engine.now engine) ()
  in
  let drop cause = Obs.counter obs "net.dropped" ~labels:[ ("cause", cause) ] in
  {
    engine;
    rng;
    obs;
    nodes = Ident.Tbl.create 64;
    links = Hashtbl.create 64;
    blocked = Hashtbl.create 16;
    default = { latency = default_latency; jitter = default_jitter; loss = 0.0 };
    size_of;
    tracer = None;
    c_sent = Obs.counter obs "net.sent";
    c_delivered = Obs.counter obs "net.delivered";
    c_rpcs = Obs.counter obs "net.rpcs";
    c_bytes = Obs.counter obs "net.bytes_sent";
    drops =
      {
        src_down = drop "src_down";
        dst_missing = drop "dst_missing";
        partitioned = drop "partitioned";
        link_loss = drop "link_loss";
        in_flight_down = drop "in_flight_down";
        handler_error = drop "handler_error";
      };
  }

let engine t = t.engine
let obs t = t.obs

let add_node t id handler =
  if Ident.Tbl.mem t.nodes id then
    invalid_arg (Printf.sprintf "Network.add_node: %s already registered" (Ident.to_string id));
  Ident.Tbl.replace t.nodes id { handler; down = false }

let remove_node t id =
  Ident.Tbl.remove t.nodes id;
  (* Purge link overrides touching the removed node in both directions: a
     later node reusing the ident must start from the network defaults, not
     silently inherit the old latency/jitter/loss profile. *)
  Hashtbl.filter_map_inplace
    (fun (src, dst) link ->
      if Ident.equal src id || Ident.equal dst id then None else Some link)
    t.links

let set_link t src dst ~latency ?(jitter = 0.0) ?(loss = 0.0) () =
  Hashtbl.replace t.links (src, dst) { latency; jitter; loss }

let is_down t id =
  match Ident.Tbl.find_opt t.nodes id with Some node -> node.down | None -> true

let has_node t id = Ident.Tbl.mem t.nodes id

let set_down t id down =
  match Ident.Tbl.find_opt t.nodes id with
  | Some node -> node.down <- down
  | None -> invalid_arg (Printf.sprintf "Network.set_down: unknown node %s" (Ident.to_string id))

let block_pair t src dst =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.blocked (src, dst)) in
  Hashtbl.replace t.blocked (src, dst) (n + 1)

let unblock_pair t src dst =
  match Hashtbl.find_opt t.blocked (src, dst) with
  | None -> ()
  | Some n when n <= 1 -> Hashtbl.remove t.blocked (src, dst)
  | Some n -> Hashtbl.replace t.blocked (src, dst) (n - 1)

let pair_blocked t src dst = Hashtbl.mem t.blocked (src, dst)

let link_for t src dst =
  match Hashtbl.find_opt t.links (src, dst) with Some l -> l | None -> t.default

let delay_of t link = link.latency +. (if link.jitter > 0.0 then Rng.float t.rng link.jitter else 0.0)

let endpoint_labels src dst = [ ("src", Ident.to_string src); ("dst", Ident.to_string dst) ]

(* Attempts one message leg. [k] runs at delivery time with the destination
   node; [lost] runs immediately if the leg cannot complete. Each drop is
   counted under its cause; the legacy [stats.dropped] field is the sum. *)
let transmit t ~src ~dst ~msg ~k ~lost =
  Obs.Counter.inc t.c_sent;
  Obs.Counter.add t.c_bytes (t.size_of msg);
  (match t.tracer with Some trace -> trace ~src ~dst msg | None -> ());
  if Obs.tracing t.obs then Obs.event t.obs "net.send" ~labels:(endpoint_labels src dst);
  let drop cause counter =
    Obs.Counter.inc counter;
    if Obs.tracing t.obs then
      Obs.event t.obs "net.drop" ~labels:(("cause", cause) :: endpoint_labels src dst);
    lost ()
  in
  let src_down = match Ident.Tbl.find_opt t.nodes src with Some n -> n.down | None -> false in
  if src_down then drop "src_down" t.drops.src_down
  else if not (Ident.Tbl.mem t.nodes dst) then drop "dst_missing" t.drops.dst_missing
  else if pair_blocked t src dst then drop "partitioned" t.drops.partitioned
  else
    let link = link_for t src dst in
    if link.loss > 0.0 && Rng.bernoulli t.rng link.loss then drop "link_loss" t.drops.link_loss
    else
      let delay = delay_of t link in
      ignore
        (Engine.schedule t.engine ~after:delay (fun () ->
             match Ident.Tbl.find_opt t.nodes dst with
             | Some node when not node.down ->
                 Obs.Counter.inc t.c_delivered;
                 if Obs.tracing t.obs then
                   Obs.event t.obs "net.deliver" ~labels:(endpoint_labels src dst);
                 k node
             | Some _ | None ->
                 (* Destination vanished or went down in flight. *)
                 drop "in_flight_down" t.drops.in_flight_down))

let send t ~src ~dst msg =
  transmit t ~src ~dst ~msg
    ~k:(fun node -> node.handler.on_oneway ~src msg)
    ~lost:(fun () -> ())

type 'msg rpc_outcome = Ok_reply of 'msg | Lost | Handler_failed of string

let rpc ?timeout t ~src ~dst msg =
  let iv : 'msg rpc_outcome Proc.ivar = Proc.ivar () in
  let lost () =
    (* With a timeout the caller waits it out (models a lost datagram);
       without one we fail fast — see the interface comment. *)
    match timeout with
    | Some _ -> ()
    | None -> if Proc.poll iv = None then Proc.fill iv Lost
  in
  transmit t ~src ~dst ~msg ~lost ~k:(fun node ->
      Proc.spawn t.engine (fun () ->
          match node.handler.on_rpc ~src msg with
          | reply ->
              transmit t ~src:dst ~dst:src ~msg:reply ~lost ~k:(fun _src_node ->
                  if Proc.poll iv = None then Proc.fill iv (Ok_reply reply))
          | exception exn ->
              (* A raising handler must not strand the caller on an ivar
                 that is never filled (it used to block forever at a fixed
                 virtual time). Contain the exception, record it, and fail
                 the round trip — even under a timeout: the simulator knows
                 the server died, the caller need not wait it out. *)
              let what = Printexc.to_string exn in
              Obs.Counter.inc t.drops.handler_error;
              if Obs.tracing t.obs then
                Obs.event t.obs "net.rpc_handler_error"
                  ~labels:(("exn", what) :: endpoint_labels src dst);
              if Proc.poll iv = None then Proc.fill iv (Handler_failed what)));
  let outcome =
    match timeout with
    | None -> Proc.read iv
    | Some timeout -> Proc.read_timeout t.engine iv ~timeout
  in
  match outcome with
  | Ok_reply reply ->
      Obs.Counter.inc t.c_rpcs;
      reply
  | Lost | Handler_failed _ -> raise Rpc_dropped

let set_tracer t tracer = t.tracer <- tracer

let dropped_total d =
  Obs.Counter.value d.src_down + Obs.Counter.value d.dst_missing
  + Obs.Counter.value d.partitioned + Obs.Counter.value d.link_loss
  + Obs.Counter.value d.in_flight_down + Obs.Counter.value d.handler_error

let stats t =
  {
    sent = Obs.Counter.value t.c_sent;
    delivered = Obs.Counter.value t.c_delivered;
    dropped = dropped_total t.drops;
    rpcs = Obs.Counter.value t.c_rpcs;
    bytes_sent = Obs.Counter.value t.c_bytes;
  }

let dropped_by_cause t =
  [
    ("src_down", Obs.Counter.value t.drops.src_down);
    ("dst_missing", Obs.Counter.value t.drops.dst_missing);
    ("partitioned", Obs.Counter.value t.drops.partitioned);
    ("link_loss", Obs.Counter.value t.drops.link_loss);
    ("in_flight_down", Obs.Counter.value t.drops.in_flight_down);
    ("handler_error", Obs.Counter.value t.drops.handler_error);
  ]

let reset_stats t =
  Obs.Counter.reset t.c_sent;
  Obs.Counter.reset t.c_delivered;
  Obs.Counter.reset t.c_rpcs;
  Obs.Counter.reset t.c_bytes;
  Obs.Counter.reset t.drops.src_down;
  Obs.Counter.reset t.drops.dst_missing;
  Obs.Counter.reset t.drops.partitioned;
  Obs.Counter.reset t.drops.link_loss;
  Obs.Counter.reset t.drops.in_flight_down;
  Obs.Counter.reset t.drops.handler_error
