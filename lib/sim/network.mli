(** Simulated message-passing network.

    Substitutes for the paper's real inter-service communication. Nodes are
    named by {!Oasis_util.Ident.t}; links have latency, deterministic jitter
    and an optional loss probability; traffic counters feed the benchmark
    harness (messages and round trips are the paper-shape quantities we
    report, see DESIGN.md §4).

    The payload type ['msg] is chosen by the instantiating layer (the OASIS
    core defines a protocol variant). RPC handlers run inside {!Proc}
    processes, so a handler may itself perform nested RPCs — exactly the
    structure of Fig. 3, where the local EHR service calls back the hospital
    and onward to the national service. *)

type 'msg t

type 'msg handler = {
  on_oneway : src:Oasis_util.Ident.t -> 'msg -> unit;
      (** One-way messages: event notifications, heartbeats. *)
  on_rpc : src:Oasis_util.Ident.t -> 'msg -> 'msg;
      (** Request/response; runs in a process and may suspend. *)
}

val create :
  Engine.t ->
  Oasis_util.Rng.t ->
  default_latency:float ->
  ?default_jitter:float ->
  ?size_of:('msg -> int) ->
  ?obs:Oasis_obs.Obs.t ->
  unit ->
  'msg t
(** [size_of] estimates a message's wire size for the byte counters;
    defaults to 0 (bytes not tracked). [obs] is the registry traffic
    counters and trace events report into — normally the world's shared
    instance; defaults to a private one so standalone networks behave as
    before. *)

val engine : 'msg t -> Engine.t

val obs : 'msg t -> Oasis_obs.Obs.t
(** The registry this network reports into. *)

val add_node : 'msg t -> Oasis_util.Ident.t -> 'msg handler -> unit
(** Registering the same node twice raises [Invalid_argument]. *)

val remove_node : 'msg t -> Oasis_util.Ident.t -> unit
(** Also purges every link override touching the node (both directions), so
    a later node reusing the ident starts from the network defaults. *)

val set_link :
  'msg t -> Oasis_util.Ident.t -> Oasis_util.Ident.t -> latency:float -> ?jitter:float -> ?loss:float -> unit -> unit
(** Directed link override; unset pairs use the network defaults. *)

val set_down : 'msg t -> Oasis_util.Ident.t -> bool -> unit
(** A down node neither sends nor receives; messages to/from it are dropped
    (counted). Used for failure injection. *)

val is_down : 'msg t -> Oasis_util.Ident.t -> bool
(** [true] for down or unregistered nodes. *)

val has_node : 'msg t -> Oasis_util.Ident.t -> bool

val block_pair : 'msg t -> Oasis_util.Ident.t -> Oasis_util.Ident.t -> unit
(** Severs the directed [src -> dst] pair: messages are dropped at the
    sender (counted under the [partitioned] cause). Blocks are refcounted so
    overlapping partitions compose; call {!unblock_pair} once per block.
    {!Fault} installs these in both directions for named partitions. *)

val unblock_pair : 'msg t -> Oasis_util.Ident.t -> Oasis_util.Ident.t -> unit
(** Releases one block on the pair; a no-op when none is held. *)

val pair_blocked : 'msg t -> Oasis_util.Ident.t -> Oasis_util.Ident.t -> bool
(** Whether any block is currently held on the directed pair. *)

val send : 'msg t -> src:Oasis_util.Ident.t -> dst:Oasis_util.Ident.t -> 'msg -> unit
(** One-way send; delivery is scheduled after link latency. Sends to unknown
    nodes are dropped and counted. Callable from any context. *)

exception Rpc_dropped

val rpc :
  ?timeout:float -> 'msg t -> src:Oasis_util.Ident.t -> dst:Oasis_util.Ident.t -> 'msg -> 'msg
(** Request/response round trip; must be called inside a {!Proc} process.
    If the request or the response is lost and [timeout] is given, raises
    {!Proc.Timeout} after that much virtual time; without a timeout, a loss
    raises {!Rpc_dropped} immediately at the point of loss detection
    (simulator privilege: we know the packet died — this keeps lossless
    experiments free of timeout tuning). A handler that raises fails the
    round trip with {!Rpc_dropped} in both modes (counted under the
    [handler_error] drop cause and recorded as a trace event) — the caller
    is never stranded on an unfilled ivar. *)

val set_tracer :
  'msg t -> (src:Oasis_util.Ident.t -> dst:Oasis_util.Ident.t -> 'msg -> unit) option -> unit
(** Observes every message handed to the network (including ones that will
    be lost), before delivery scheduling. For debugging and packet traces;
    [None] removes the tracer. *)

(** Traffic statistics — a view over the registry counters. *)
type stats = {
  sent : int;  (** messages handed to the network, including lost ones *)
  delivered : int;
  dropped : int;  (** sum over the per-cause counters, see {!dropped_by_cause} *)
  rpcs : int;  (** completed round trips *)
  bytes_sent : int;  (** per [size_of]; 0 when no estimator was given *)
}

val stats : 'msg t -> stats

val dropped_by_cause : 'msg t -> (string * int) list
(** Per-cause drop counts ([src_down], [dst_missing], [partitioned],
    [link_loss], [in_flight_down], [handler_error]); the registry keys are
    [net.dropped{cause=...}]. [stats.dropped] is their sum. *)

val reset_stats : 'msg t -> unit
