(** Discrete-event simulation engine.

    The reproduction substitutes a deterministic discrete-event simulator for
    the paper's distributed deployment (DESIGN.md §3). The engine owns the
    virtual clock; all asynchrony — network delivery, event-channel
    notification, heartbeats — is expressed as thunks scheduled at virtual
    times and executed in [(time, scheduling order)] order.

    Timer lifecycle (DESIGN.md §14): cancelling releases the event closure
    immediately, and cancelled entries are compacted out of the heap once
    tombstones exceed half of it, so heap occupancy stays proportional to
    the number of live timers under arbitrary schedule/cancel churn. *)

type t

type cancel
(** Handle to a scheduled event; see {!cancel}. *)

val create : ?start:float -> unit -> t

val clock : t -> Oasis_util.Clock.t
val now : t -> float

val schedule : t -> after:float -> (unit -> unit) -> cancel
(** [schedule t ~after f] runs [f] at [now t +. after]. [after < 0] raises
    [Invalid_argument]. *)

val schedule_at : t -> at:float -> (unit -> unit) -> cancel

val cancel : t -> cancel -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. The
    event closure is released immediately; the heap slot is reclaimed lazily
    (at fire time or by tombstone compaction). Cancelling an {!every} handle
    stops the recurrence, including from within its own callback. *)

val every : t -> period:float -> (unit -> bool) -> cancel
(** [every t ~period f] runs [f] each [period]; stops when [f] returns
    [false] or when the returned handle is cancelled. Used for heartbeat
    emitters and pollers — decommissioning must be able to stop them, so the
    handle is not optional. *)

val run : t -> unit
(** Executes events until the queue is empty, advancing the clock. *)

val run_until : t -> float -> unit
(** Executes events with time ≤ the horizon, then advances the clock to the
    horizon exactly. *)

val step : t -> bool
(** Executes the single next event; [false] if the queue was empty. *)

val pending : t -> int
(** Live (uncancelled) scheduled events. *)

val heap_size : t -> int
(** Physical heap entries, live plus not-yet-compacted tombstones; bounded
    by twice {!pending} (plus a small constant) by compaction. *)

val events_executed : t -> int
