(** Deterministic fault injection on the virtual clock.

    Three failure shapes, all replayable from a seed because they run on the
    simulation engine rather than wall time:

    - {b named partitions} — bidirectional link cuts between two node sets,
      installed with {!partition} and removed with {!heal}. Overlapping
      partitions compose (the underlying {!Network} blocks are refcounted).
    - {b crash} — the node goes down ({!Network.set_down}) and its
      registered [on_crash] hook runs, dropping in-flight state and
      silencing emitters.
    - {b restart} — the node comes back up and its [on_restart] hook
      rebuilds subscriptions and monitors from durable credential records.

    The controller lives in the sim layer, so it only knows node idents; the
    layers above register per-node hooks ({!set_hooks}) and consult
    {!is_cut} to make non-network channels (the event broker) honour the
    same partitions. Partition installs are counted as [net.partitioned] in
    the registry. *)

type 'msg t

val create : 'msg Network.t -> 'msg t

val partition :
  'msg t -> name:string -> Oasis_util.Ident.t list -> Oasis_util.Ident.t list -> unit
(** [partition t ~name left right] cuts every (left, right) pair in both
    directions. Raises [Invalid_argument] if [name] is already active. Nodes
    appearing on both sides are not cut from themselves. *)

val heal : 'msg t -> string -> unit
(** Removes the named partition. Raises [Invalid_argument] on an unknown
    name — a typo in a scenario must surface loudly. *)

val heal_all : 'msg t -> unit

val active_partitions : 'msg t -> string list
(** Names of partitions currently installed, in no particular order. *)

val is_cut : 'msg t -> Oasis_util.Ident.t -> Oasis_util.Ident.t -> bool
(** Whether traffic from the first node to the second is currently severed —
    by a partition, or because either endpoint was {!crash}ed. The event
    broker consults this so partitions cut notification channels too. A
    plain [Network.set_down] does not register here: the legacy lossy-link
    experiments keep their network-only semantics. *)

val set_hooks :
  'msg t -> Oasis_util.Ident.t -> on_crash:(unit -> unit) -> on_restart:(unit -> unit) -> unit
(** Registers crash/restart behaviour for a node. Re-registering replaces
    the hooks (a service decommissioned and re-created under the same
    ident). *)

val clear_hooks : 'msg t -> Oasis_util.Ident.t -> unit

val crash : 'msg t -> Oasis_util.Ident.t -> unit
(** Takes the node down, then runs its [on_crash] hook (if any). Idempotent
    while crashed. *)

val restart : 'msg t -> Oasis_util.Ident.t -> unit
(** Brings the node up, then runs its [on_restart] hook (if any). A no-op
    unless the node was crashed by {!crash}. If the hook raises — the node
    refused to resume, e.g. its durable decision-log chain failed
    verification — the node is rolled back to crashed (network down,
    [is_crashed] true) and the exception propagates to the caller. *)

val is_crashed : 'msg t -> Oasis_util.Ident.t -> bool
