(* Flat binary min-heap: keys and values live in three parallel arrays
   (times is an unboxed float array), so pushing an event allocates nothing
   beyond the caller's closure, and popping allocates nothing at all on the
   [pop_min] path. Vacated slots are overwritten with [dummy] so the heap
   never retains a popped value — at 10^6 heartbeat timers, a stale slot
   keeping an event closure (and everything it captures) alive is a leak
   measured in hundreds of megabytes. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
  dummy : 'a;
}

let min_capacity = 16

let create ~dummy () = { times = [||]; seqs = [||]; vals = [||]; len = 0; dummy }

let is_empty t = t.len = 0

let size t = t.len

let capacity t = Array.length t.vals

let less t i j =
  t.times.(i) < t.times.(j) || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let ti = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- ti;
  let si = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- si;
  let vi = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- vi

let resize t ncap =
  let ntimes = Array.make ncap 0.0 in
  let nseqs = Array.make ncap 0 in
  let nvals = Array.make ncap t.dummy in
  Array.blit t.times 0 ntimes 0 t.len;
  Array.blit t.seqs 0 nseqs 0 t.len;
  Array.blit t.vals 0 nvals 0 t.len;
  t.times <- ntimes;
  t.seqs <- nseqs;
  t.vals <- nvals

let sift_up t start =
  let i = ref start in
  while !i > 0 && less t !i ((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    swap t !i parent;
    i := parent
  done

let sift_down t start =
  let i = ref start in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && less t l !smallest then smallest := l;
    if r < t.len && less t r !smallest then smallest := r;
    if !smallest = !i then continue := false
    else begin
      swap t !smallest !i;
      i := !smallest
    end
  done

let push t ~time ~seq value =
  let cap = capacity t in
  if t.len = cap then resize t (max min_capacity (2 * cap));
  t.times.(t.len) <- time;
  t.seqs.(t.len) <- seq;
  t.vals.(t.len) <- value;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

(* Shrinks when occupancy drops below a quarter, so a burst of 10^6 timers
   followed by mass cancellation returns the arrays to the allocator instead
   of pinning the high-water mark forever. *)
let maybe_shrink t =
  let cap = capacity t in
  if cap > min_capacity && t.len < cap / 4 then resize t (max min_capacity (cap / 2))

let remove_min t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.times.(0) <- t.times.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.vals.(0) <- t.vals.(t.len)
  end;
  t.vals.(t.len) <- t.dummy;
  if t.len > 0 then sift_down t 0;
  maybe_shrink t

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) and value = t.vals.(0) in
    remove_min t;
    Some (time, seq, value)
  end

let min_time t =
  if t.len = 0 then invalid_arg "Heap.min_time: empty heap";
  t.times.(0)

let pop_min t =
  if t.len = 0 then invalid_arg "Heap.pop_min: empty heap";
  let value = t.vals.(0) in
  remove_min t;
  value

let peek_time t = if t.len = 0 then None else Some t.times.(0)

let filter_in_place t keep =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    if keep t.vals.(i) then begin
      if !j <> i then begin
        t.times.(!j) <- t.times.(i);
        t.seqs.(!j) <- t.seqs.(i);
        t.vals.(!j) <- t.vals.(i)
      end;
      incr j
    end
  done;
  for i = !j to t.len - 1 do
    t.vals.(i) <- t.dummy
  done;
  t.len <- !j;
  (* Floyd heapify: O(n), cheaper than n pushes. *)
  for i = (t.len / 2) - 1 downto 0 do
    sift_down t i
  done;
  maybe_shrink t
