# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint analyze fuzz trace-smoke trust-smoke chaos chaos-trust check bench bench-scale bench-trust doc clean examples

all: build

build:
	dune build @all

test:
	dune runtest

# Static policy lint over the shipped policies and scenarios; exits
# non-zero on any error-severity finding.
lint: build
	dune exec bin/oasisctl.exe -- lint policies/hospital.oasis --name hospital --kinds is_admin,is_rota_manager
	dune exec bin/oasisctl.exe -- lint scenarios/hospital.scn
	dune exec bin/oasisctl.exe -- lint scenarios/nurse_allocation.scn

# Symbolic reachability analysis (DESIGN.md §13) over the same surfaces:
# classic report plus the R001-R003 findings; exits non-zero on any
# error-severity finding, so the shipped policies must analyze clean (or
# carry explicit lint:allow waivers).
analyze: build
	dune exec bin/oasisctl.exe -- analyze policies/hospital.oasis --name hospital --kinds is_admin,is_rota_manager
	dune exec bin/oasisctl.exe -- analyze scenarios/hospital.scn
	dune exec bin/oasisctl.exe -- analyze scenarios/nurse_allocation.scn

# Property-driven scenario fuzzer: random worlds random-walked through the
# real Service/Solve engine, every activation cross-checked against the
# symbolic analyzer's verdict and every reachable verdict replayed as a
# concrete witness plan (test/test_fuzz.ml; also part of `dune runtest`).
fuzz: build
	dune exec test/test_main.exe -- test fuzz

# Traces the hospital scenario end to end and schema-checks every JSONL
# event line (--check re-parses what the sink wrote); proves the whole
# observability pipeline — world registry, trace sinks, exporter — runs.
trace-smoke: build
	dune exec bin/oasisctl.exe -- trace scenarios/hospital.scn --check -o /dev/null

# The trust/audit pipeline (DESIGN.md §15): E16 at smoke scale (live
# score-gated revocation, collusion ablation, chain tamper drill), then
# `oasisctl audit verify` proves the hospital scenario's decision chains
# re-verify from genesis and that a single flipped bit is detected.
trust-smoke: build
	dune exec bench/main.exe -- E16 --smoke
	dune exec bin/oasisctl.exe -- audit verify scenarios/hospital.scn
	dune exec bin/oasisctl.exe -- audit verify scenarios/hospital.scn --tamper 1234

# Randomised fault schedules (partitions, crash/restart, revocation)
# against the DESIGN.md §11 safety properties, including the fail-open
# test-of-the-test. Also part of `dune runtest` via the fault/chaos suites.
chaos: build
	dune exec test/test_main.exe -- test chaos

# Trust-churn chaos (DESIGN.md §16): randomised interaction schedules flap
# a score across the hysteresis-banded gate while the registrar crashes
# mid-issuance and the gate crash/restarts through its durable decision-log
# chain. CHAOS_QUICK=1 trims seeds/steps but keeps every assertion,
# including both ablations (δ=0 flaps more; fail-open admits tampering).
chaos-trust: build
	CHAOS_QUICK=1 dune exec test/test_main.exe -- test chaos-trust

# The full gate: build everything, run the test suite, lint and
# reachability-analyze the shipped policies, smoke the trace pipeline, run
# the chaos harness and the analyzer/engine cross-check fuzzer, and smoke
# the bench harness (single cheap iteration; proves the JSON emitters run).
check: build test lint analyze trace-smoke trust-smoke chaos chaos-trust fuzz
	dune exec bench/main.exe -- E9 E11 E12 E13 E15 E16 E17 --smoke

# Regenerates every paper figure/scenario (see EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

# The scale curve (DESIGN.md §14): activation throughput, revocation-cascade
# latency and memory from 10^3 to 10^5 sessions plus a 10^6-timer engine
# churn, written to BENCH_scale.json.
bench-scale:
	dune exec bench/main.exe -- E15

# Trust and audit (DESIGN.md §15): live score-gated revocation with the
# Fig. 5 causal trace, collusion vs registrar discounting, the Byzantine
# minority bound, and the 10^4-decision chain verify/tamper drill, written
# to BENCH_trust.json. (Explicit target: `trust` is not an experiment name,
# so the bench-% pattern must not catch this one.)
bench-trust:
	dune exec bench/main.exe -- E16

# A subset, e.g. `make bench-E3 bench-E5`.
bench-%:
	dune exec bench/main.exe -- $*

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ehr_cross_domain.exe
	dune exec examples/visiting_doctor.exe
	dune exec examples/anonymous_clinic.exe
	dune exec examples/accident_emergency.exe
	dune exec examples/night_shift.exe
	dune exec examples/trust_marketplace.exe

doc:
	dune build @doc

clean:
	dune clean
